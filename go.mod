module vmshortcut

go 1.22

// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, one (family) per experiment. They run at laptop scale by
// default; cmd/shortcutbench reproduces the full sweeps and -paperscale
// restores the original workload sizes.
//
//	go test -bench=. -benchmem
package vmshortcut

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vmshortcut/internal/core"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/pool"
	"vmshortcut/internal/sys"
	"vmshortcut/internal/vmsim"
	"vmshortcut/internal/workload"
)

var benchSink uint64

// benchNode builds a wide inner node over `leaves` pooled pages with the
// given slot count and fan-in, in both variants.
func benchNode(b *testing.B, slots, fanIn int) (*pool.Pool, *core.Traditional, *core.Shortcut) {
	b.Helper()
	leaves := slots / fanIn
	if leaves < 1 {
		leaves = 1
	}
	p, err := pool.New(pool.Config{GrowChunkPages: 1 << 10, MaxPages: leaves + (1 << 12)})
	if err != nil {
		b.Fatal(err)
	}
	run, err := p.AllocContiguous(leaves)
	if err != nil {
		b.Fatal(err)
	}
	ps := sys.PageSize()
	trad := core.NewTraditional(p, slots)
	for i := 0; i < slots; i++ {
		trad.Set(i, run+pool.Ref((i/fanIn)*ps))
	}
	sc, err := core.NewShortcut(p, slots)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sc.SetFromTraditional(trad, true); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sc.Close(); p.Close() })
	return p, trad, sc
}

// --- Figure 2: random accesses through one wide inner node. ---

func BenchmarkFig2Access(b *testing.B) {
	const slots = 1 << 16 // 256 MB of leaves at fan-in 1
	_, trad, sc := benchNode(b, slots, 1)
	rng := workload.NewRNG(42)

	b.Run("Traditional", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			slot := rng.Intn(slots)
			benchSink += *(*uint64)(sys.AddrToPointer(trad.LeafAddr(slot)))
		}
	})
	base := sc.Base()
	ps := uintptr(sys.PageSize())
	b.Run("Shortcut", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			slot := rng.Intn(slots)
			benchSink += *(*uint64)(sys.AddrToPointer(base + uintptr(slot)*ps))
		}
	})
}

// --- Table 1: construction phases. ---

func BenchmarkTable1SetIndirection(b *testing.B) {
	b.Run("TraditionalPointerStore", func(b *testing.B) {
		p, err := pool.New(pool.Config{MaxPages: 1 << 12})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		ref, err := p.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		node := core.NewTraditional(p, 1<<10)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			node.Set(i&1023, ref)
		}
	})
	b.Run("ShortcutRemapLazy", func(b *testing.B) {
		benchRemap(b, false)
	})
	b.Run("ShortcutRemapPopulated", func(b *testing.B) {
		benchRemap(b, true)
	})
}

func benchRemap(b *testing.B, populate bool) {
	p, err := pool.New(pool.Config{MaxPages: 1 << 12})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	refs, err := p.AllocN(64)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := core.NewShortcut(p, 1<<10)
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sc.Set(i&1023, refs[i&63], populate); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1PopulatePerPage(b *testing.B) {
	p, err := pool.New(pool.Config{MaxPages: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	const pages = 1 << 10
	run, err := p.AllocContiguous(pages)
	if err != nil {
		b.Fatal(err)
	}
	ps := sys.PageSize()
	refs := make([]pool.Ref, pages)
	for i := range refs {
		refs[i] = run + pool.Ref(i*ps)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += pages {
		b.StopTimer()
		sc, err := core.NewShortcut(p, pages)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sc.SetAll(refs, false); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := sc.Populate(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		sc.Close()
		b.StartTimer()
	}
}

// --- Figure 4: fan-in sweep. ---

func BenchmarkFig4FanIn(b *testing.B) {
	const slots = 1 << 16
	for _, fanIn := range []int{64, 8, 1} {
		_, trad, sc := benchNode(b, slots, fanIn)
		rng := workload.NewRNG(42)
		b.Run(fmt.Sprintf("fanin=%d/Traditional", fanIn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				slot := rng.Intn(slots)
				benchSink += *(*uint64)(sys.AddrToPointer(trad.LeafAddr(slot)))
			}
		})
		base := sc.Base()
		ps := uintptr(sys.PageSize())
		b.Run(fmt.Sprintf("fanin=%d/Shortcut", fanIn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				slot := rng.Intn(slots)
				benchSink += *(*uint64)(sys.AddrToPointer(base + uintptr(slot)*ps))
			}
		})
	}
}

// --- Figure 5: remap cost (the shootdown driver's primitive). ---

func BenchmarkFig5Remap(b *testing.B) {
	p, err := pool.New(pool.Config{MaxPages: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	const pages = 1 << 12
	refs, err := p.AllocN(pages)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := core.NewShortcut(p, pages)
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.SetAll(refs, true); err != nil {
		b.Fatal(err)
	}
	rng := workload.NewRNG(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sc.Set(rng.Intn(pages), refs[rng.Intn(pages)], true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7a: insertions. ---

// openBenchStore opens one competitor by legend name via the facade; only
// the requested kind is constructed so no unrelated pool or mapper thread
// runs during the timed loop.
func openBenchStore(b *testing.B, name string) Store {
	b.Helper()
	kind, err := ParseKind(strings.ToLower(name))
	if err != nil {
		b.Fatal(err)
	}
	var opts []Option
	if kind == KindCH {
		opts = append(opts, WithTableBytes(32<<20))
	}
	s, err := Open(kind, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func BenchmarkFig7aInsert(b *testing.B) {
	for _, name := range []string{"HT", "HTI", "CH", "EH", "Shortcut-EH"} {
		b.Run(name, func(b *testing.B) {
			idx := openBenchStore(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.Insert(workload.Key(1, uint64(i)), uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 7b: hit-only lookups on a filled index. ---

func BenchmarkFig7bLookup(b *testing.B) {
	const n = 1 << 20
	for _, name := range []string{"HT", "HTI", "CH", "EH", "Shortcut-EH"} {
		b.Run(name, func(b *testing.B) {
			idx := openBenchStore(b, name)
			for i := 0; i < n; i++ {
				if err := idx.Insert(workload.Key(1, uint64(i)), uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			if !idx.WaitSync(time.Minute) {
				b.Fatal("shortcut never synced")
			}
			rng := workload.NewRNG(9)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := workload.Key(1, uint64(rng.Intn(n)))
				if _, ok := idx.Lookup(k); !ok {
					b.Fatal("unexpected miss")
				}
			}
		})
	}
}

// --- Figure 8: the mixed workload op stream on Shortcut-EH. ---

func BenchmarkFig8Mixed(b *testing.B) {
	idx, err := Open(KindShortcutEH)
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	const bulk = 1 << 19
	for i := 0; i < bulk; i++ {
		if err := idx.Insert(workload.Key(3, uint64(i)), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	idx.WaitSync(time.Minute)
	rng := workload.NewRNG(11)
	next := uint64(bulk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%100 == 0 { // 1% inserts, like the paper's waves
			if err := idx.Insert(workload.Key(3, next), next); err != nil {
				b.Fatal(err)
			}
			next++
		} else {
			k := workload.Key(3, uint64(rng.Intn(int(next))))
			if _, ok := idx.Lookup(k); !ok {
				b.Fatal("miss")
			}
		}
	}
}

// --- Ablations. ---

func BenchmarkAblationCoalesce(b *testing.B) {
	p, err := pool.New(pool.Config{MaxPages: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	const pages = 1 << 10
	run, err := p.AllocContiguous(pages)
	if err != nil {
		b.Fatal(err)
	}
	ps := sys.PageSize()
	refs := make([]pool.Ref, pages)
	for i := range refs {
		refs[i] = run + pool.Ref(i*ps)
	}
	b.Run("PerSlot", func(b *testing.B) {
		for i := 0; i < b.N; i += pages {
			sc, err := core.NewShortcut(p, pages)
			if err != nil {
				b.Fatal(err)
			}
			for j, r := range refs {
				if err := sc.Set(j, r, false); err != nil {
					b.Fatal(err)
				}
			}
			sc.Close()
		}
	})
	b.Run("Coalesced", func(b *testing.B) {
		for i := 0; i < b.N; i += pages {
			sc, err := core.NewShortcut(p, pages)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sc.SetAll(refs, false); err != nil {
				b.Fatal(err)
			}
			sc.Close()
		}
	})
}

func BenchmarkAblationMaintenance(b *testing.B) {
	for _, v := range []struct {
		name string
		opts []Option
	}{
		{"AsyncMapper", nil},
		{"Synchronous", []Option{WithSynchronousMaintenance(true)}},
		{"NoShortcut", []Option{WithDisableShortcut(true)}},
	} {
		b.Run(v.name, func(b *testing.B) {
			idx, err := Open(KindShortcutEH, v.opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer idx.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.Insert(workload.Key(5, uint64(i)), uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- YCSB core mixes over EH vs Shortcut-EH. ---

func BenchmarkYCSB(b *testing.B) {
	const loaded = 1 << 19
	for _, mix := range []workload.Mix{workload.MixA, workload.MixC, workload.MixF} {
		for _, variant := range []string{"EH", "Shortcut-EH"} {
			b.Run("mix"+mix.Name+"/"+variant, func(b *testing.B) {
				kind := KindEH
				if variant == "Shortcut-EH" {
					kind = KindShortcutEH
				}
				idx, err := Open(kind)
				if err != nil {
					b.Fatal(err)
				}
				defer idx.Close()
				for i := 0; i < loaded; i++ {
					if err := idx.Insert(workload.Key(8, uint64(i)), uint64(i)); err != nil {
						b.Fatal(err)
					}
				}
				idx.WaitSync(time.Minute)
				b.ReportAllocs()
				b.ResetTimer()
				done := 0
				for done < b.N {
					workload.YCSB(uint64(done), mix, loaded, b.N-done, func(op workload.YCSBOp) {
						k := workload.Key(8, op.KeyIndex)
						switch op.Kind {
						case workload.OpRead:
							idx.Lookup(k)
						case workload.OpUpdate, workload.OpInsert:
							idx.Insert(k, op.KeyIndex)
						case workload.OpReadModifyWrite:
							if v, ok := idx.Lookup(k); ok {
								idx.Insert(k, v+1)
							}
						}
						done++
					})
				}
			})
		}
	}
}

// --- Facade batch operations vs loops of single calls. ---

// BenchmarkBatchVsSingle compares InsertBatch/LookupBatch against loops of
// single calls through the same Store surface. The batch variants amortize
// interface dispatch, the closed-store check, and (for Shortcut-EH) the
// per-lookup routing decision, so their per-op cost must not exceed the
// single-call loop's.
func BenchmarkBatchVsSingle(b *testing.B) {
	const batch = 1024
	const probeCount = 1 << 15 // multiple of batch
	for _, name := range []string{"HT", "HTI", "CH", "EH", "Shortcut-EH"} {
		b.Run(name+"/InsertSingle", func(b *testing.B) {
			idx := openBenchStore(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.Insert(workload.Key(4, uint64(i)), uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/InsertBatch", func(b *testing.B) {
			idx := openBenchStore(b, name)
			keys := make([]uint64, batch)
			vals := make([]uint64, batch)
			b.ReportAllocs()
			b.ResetTimer()
			harness.Chunks(b.N, batch, func(lo, hi int) {
				k, v := keys[:hi-lo], vals[:hi-lo]
				for i := range k {
					k[i] = workload.Key(4, uint64(lo+i))
					v[i] = uint64(lo + i)
				}
				if err := idx.InsertBatch(k, v); err != nil {
					b.Fatal(err)
				}
			})
		})

		loaded := func(b *testing.B) (Store, []uint64) {
			b.Helper()
			idx := openBenchStore(b, name)
			const n = 1 << 19
			for i := 0; i < n; i++ {
				if err := idx.Insert(workload.Key(4, uint64(i)), uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			if !idx.WaitSync(time.Minute) {
				b.Fatal("shortcut never synced")
			}
			rng := workload.NewRNG(17)
			probes := make([]uint64, probeCount)
			for i := range probes {
				probes[i] = workload.Key(4, uint64(rng.Intn(n)))
			}
			return idx, probes
		}
		b.Run(name+"/LookupSingle", func(b *testing.B) {
			idx, probes := loaded(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := idx.Lookup(probes[i%probeCount]); !ok {
					b.Fatal("miss")
				}
			}
		})
		b.Run(name+"/LookupBatch", func(b *testing.B) {
			idx, probes := loaded(b)
			out := make([]uint64, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += batch {
				k := probes[done%probeCount:]
				if len(k) > batch {
					k = k[:batch]
				}
				if done+len(k) > b.N {
					k = k[:b.N-done]
				}
				for _, ok := range idx.LookupBatch(k, out[:len(k)]) {
					if !ok {
						b.Fatal("miss")
					}
				}
			}
		})
	}
}

// --- Sharded store: multi-goroutine batch throughput vs the single lock. ---

// shardCounts sweeps 1, 2, 4, ... up to GOMAXPROCS. shards=1 (plus
// WithConcurrency) is the old single-global-lock wrapper every other
// count is compared against.
func shardCounts() []int {
	counts := []int{1}
	for n := 2; n <= runtime.GOMAXPROCS(0); n *= 2 {
		counts = append(counts, n)
	}
	return counts
}

func openShardedBench(b *testing.B, shards int) Store {
	b.Helper()
	s, err := Open(KindShortcutEH,
		WithShards(shards),
		WithConcurrency(true), // shards=1 → the global-lock baseline
		WithPollInterval(time.Millisecond),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// BenchmarkShardedInsertBatch measures concurrent batched insertion: every
// parallel goroutine claims a disjoint key range and pushes 1024-entry
// batches. One op is one batch. With shards=1 all writers serialize on the
// single write lock; higher shard counts stripe the lock and fan each
// batch out across shard goroutines.
func BenchmarkShardedInsertBatch(b *testing.B) {
	const batch = 1024
	for _, shards := range shardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := openShardedBench(b, shards)
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				keys := make([]uint64, batch)
				vals := make([]uint64, batch)
				for pb.Next() {
					base := next.Add(batch) - batch
					for i := range keys {
						keys[i] = workload.Key(6, base+uint64(i))
						vals[i] = base + uint64(i)
					}
					if err := s.InsertBatch(keys, vals); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "inserts/s")
		})
	}
}

// BenchmarkShardedInsert measures contended single-op insertion: parallel
// goroutines each claim keys from a shared counter and insert one at a
// time. This isolates pure lock striping — with shards=1 every insert
// fights for the one write lock; sharding divides the contention without
// any batch fan-out machinery in the path.
func BenchmarkShardedInsert(b *testing.B) {
	for _, shards := range shardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := openShardedBench(b, shards)
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1) - 1
					if err := s.Insert(workload.Key(6, i), i); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkShardedLookupBatch measures concurrent batched lookups against
// a preloaded store. Reads already scale under the single RW lock, so this
// isolates what sharding adds on the read path (independent per-shard
// routing decisions and cache-local directories).
func BenchmarkShardedLookupBatch(b *testing.B) {
	const batch = 1024
	const n = 1 << 20
	for _, shards := range shardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := openShardedBench(b, shards)
			keys := make([]uint64, batch)
			vals := make([]uint64, batch)
			harness.Chunks(n, batch, func(lo, hi int) {
				k, v := keys[:hi-lo], vals[:hi-lo]
				for i := range k {
					k[i] = workload.Key(6, uint64(lo+i))
					v[i] = uint64(lo + i)
				}
				if err := s.InsertBatch(k, v); err != nil {
					b.Fatal(err)
				}
			})
			if !s.WaitSync(time.Minute) {
				b.Fatal("shards never synced")
			}
			var cursor atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				probe := make([]uint64, batch)
				out := make([]uint64, batch)
				for pb.Next() {
					base := cursor.Add(batch)
					for i := range probe {
						probe[i] = workload.Key(6, (base+uint64(i)*2654435761)%n)
					}
					for _, ok := range s.LookupBatch(probe, out) {
						if !ok {
							b.Fatal("miss")
						}
					}
				}
			})
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "lookups/s")
		})
	}
}

// --- vmsim: the simulated translation path itself. ---

func BenchmarkSimAccess(b *testing.B) {
	m := vmsim.New(vmsim.Config{})
	m.AutoFault = true
	const pages = 1 << 14
	for p := uint64(0); p < pages; p++ {
		m.Map(p, p)
	}
	rng := workload.NewRNG(13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MustAccess(uint64(rng.Intn(pages)) << 12)
	}
}

// --- Shortcut-EH vs EH lookup head-to-head (the headline result). ---

func BenchmarkHeadlineLookup(b *testing.B) {
	const n = 1 << 20
	ehTbl, err := Open(KindEH)
	if err != nil {
		b.Fatal(err)
	}
	defer ehTbl.Close()
	scTbl, err := Open(KindShortcutEH)
	if err != nil {
		b.Fatal(err)
	}
	defer scTbl.Close()
	for i := 0; i < n; i++ {
		k := workload.Key(2, uint64(i))
		if err := ehTbl.Insert(k, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if err := scTbl.Insert(k, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if !scTbl.WaitSync(time.Minute) {
		b.Fatal("never synced")
	}
	rng := workload.NewRNG(21)
	b.Run("EH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := ehTbl.Lookup(workload.Key(2, uint64(rng.Intn(n)))); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("Shortcut-EH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := scTbl.Lookup(workload.Key(2, uint64(rng.Intn(n)))); !ok {
				b.Fatal("miss")
			}
		}
	})
}

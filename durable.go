package vmshortcut

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut/internal/obs"
	"vmshortcut/internal/op"
	"vmshortcut/persist"
	"vmshortcut/wal"
)

// FsyncMode re-exports the WAL's fsync policy for WithFsync.
type FsyncMode = wal.FsyncMode

// The fsync policies: sync before every acknowledged write (group-
// committed), on a background interval, or never (OS writeback only).
const (
	FsyncAlways   = wal.FsyncAlways
	FsyncInterval = wal.FsyncInterval
	FsyncOff      = wal.FsyncOff
)

// ParseFsyncMode re-exports the flag-style parser ("always", "interval",
// "off") for command-line surfaces.
func ParseFsyncMode(name string) (FsyncMode, error) { return wal.ParseFsyncMode(name) }

// WithWAL makes the store durable: every mutation batch is appended to a
// write-ahead log in dir before it is acknowledged, point-in-time
// snapshots bound recovery time, and Open recovers the keyspace from the
// newest valid snapshot plus the log tail — truncating a torn final
// record — before serving. The other durability options (WithFsync,
// WithFsyncInterval, WithSnapshotEvery, WithWALSegmentBytes) only apply
// together with WithWAL and are ignored otherwise.
func WithWAL(dir string) Option {
	return func(o *storeOptions) {
		if dir == "" {
			o.fail("vmshortcut: WithWAL(\"\"): directory required")
			return
		}
		o.walDir = dir
	}
}

// WithFsync selects when log appends reach stable storage: FsyncAlways
// (the default — an acknowledged write survives kill -9), FsyncInterval,
// or FsyncOff.
func WithFsync(mode FsyncMode) Option {
	return func(o *storeOptions) {
		if mode != FsyncAlways && mode != FsyncInterval && mode != FsyncOff {
			o.fail("vmshortcut: WithFsync(%v): unknown mode", mode)
			return
		}
		o.fsyncMode = mode
	}
}

// WithFsyncInterval sets the background sync period used by
// FsyncInterval. Default 100ms.
func WithFsyncInterval(d time.Duration) Option {
	return func(o *storeOptions) {
		if d <= 0 {
			o.fail("vmshortcut: WithFsyncInterval(%v): must be positive", d)
			return
		}
		o.fsyncInterval = d
	}
}

// WithSnapshotEvery takes an automatic snapshot (and compacts the log)
// after every n appended WAL records. 0, the default, snapshots only on
// explicit request (Durable.Snapshot) — the log then grows until one is
// taken.
func WithSnapshotEvery(n int) Option {
	return func(o *storeOptions) {
		if n < 0 {
			o.fail("vmshortcut: WithSnapshotEvery(%d): must be non-negative", n)
			return
		}
		o.snapshotEvery = n
	}
}

// WithWALSegmentBytes sets the log's segment rotation threshold (default
// 64 MiB). Mostly for tests, which rotate small segments quickly.
func WithWALSegmentBytes(n int64) Option {
	return func(o *storeOptions) {
		if n <= 0 {
			o.fail("vmshortcut: WithWALSegmentBytes(%d): must be positive", n)
			return
		}
		o.walSegmentBytes = n
	}
}

// WithChainedWAL maintains a tamper-evidence hash chain over the WAL's
// record sequence (see wal.Chain): every append extends it, recovery
// recomputes it, Replicable.ChainHead publishes it, and wal.VerifyChain
// audits the segment files against it offline.
func WithChainedWAL(on bool) Option {
	return func(o *storeOptions) { o.chainedWAL = on }
}

// WithFsyncHist records the duration of every WAL fsync syscall into h —
// the observability layer's eh_stage_wal_fsync_ns histogram. Fsyncs are
// timed globally rather than per batch because one group-commit leader's
// sync covers many batches. Nil (the default) disables recording.
func WithFsyncHist(h *obs.Hist) Option {
	return func(o *storeOptions) { o.fsyncHist = h }
}

// WithLSNTraces stamps every appended WAL record into m: its LSN, the
// trace ID of the batch that produced it (0 when the request was not
// sampled), and the append wall clock. The replication source reads the
// ring back to forward trace context downstream and to turn follower
// acknowledgements into time-lag measurements. Nil (the default)
// disables stamping.
func WithLSNTraces(m *obs.LSNTraces) Option {
	return func(o *storeOptions) { o.lsnTraces = m }
}

// Durable is the management surface of a store opened with WithWAL,
// recovered through AsDurable.
type Durable interface {
	// Snapshot writes a point-in-time snapshot of the keyspace to the
	// WAL directory (atomically: temp file, fsync, rename) and prunes
	// snapshots it supersedes. Mutations are blocked for the duration.
	Snapshot() error
	// CompactWAL removes log segments the newest snapshot has made
	// redundant, returning how many were deleted.
	CompactWAL() (int, error)
	// WALStats snapshots the underlying log's counters.
	WALStats() wal.Stats
}

// AsDurable returns the durability management surface of a store opened
// with WithWAL, and reports whether s is one.
func AsDurable(s Store) (Durable, bool) {
	d, ok := s.(*durableStore)
	return d, ok
}

// snapName formats the snapshot filename for the WAL position it covers.
func snapName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

// parseSnapName extracts the covered LSN from a snapshot filename.
func parseSnapName(name string) (uint64, bool) {
	var lsn uint64
	if _, err := fmt.Sscanf(name, "snap-%016x.snap", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// durableStore wraps an inner store (sharded or not) with the WAL and the
// snapshot layer. The ordering contract per mutation batch: inserts apply
// to the inner store first and then append one log record (a record is
// only ever logged for a batch the store accepted, so replay cannot
// re-fail a rejected insert — e.g. a radix key out of range); deletes log
// first and apply after (they cannot fail, and their result slice has no
// error channel, so nothing may be applied ahead of its record). Under
// FsyncAlways the append has fsynced before it returns, so a batch is
// only acknowledged once durable. Concurrent
// mutations of the same key have no defined order (exactly as on a
// non-durable concurrent store); the log serializes them in some valid
// order and recovery reproduces that one.
type durableStore struct {
	inner Store
	log   *wal.Log
	dir   string

	// lsnTraces, when set, receives one (lsn, traceID, append time) stamp
	// per appended record for the replication lag/trace path. Nil-safe.
	lsnTraces *obs.LSNTraces

	// mu coordinates mutations (read side) with snapshots and Close
	// (write side): a snapshot sees a quiescent keyspace whose log
	// position is exact.
	mu        sync.RWMutex
	closed    atomic.Bool
	snapLSN   atomic.Uint64 // position covered by the newest snapshot
	snapEvery uint64
	snapping  atomic.Bool    // an automatic snapshot is already in flight
	bg        sync.WaitGroup // automatic-snapshot goroutines; joined by Close
}

// openDurable recovers the keyspace from o.walDir into a freshly built
// inner store and returns the durable wrapper. Recovery order: newest
// valid snapshot (invalid ones are skipped in favor of older), then the
// log tail — records at or before the snapshot's position are skipped,
// later ones replayed through the inner store's own batch paths.
func openDurable(inner Store, o *storeOptions) (Store, error) {
	fail := func(err error) (Store, error) {
		inner.Close()
		return nil, err
	}
	if err := os.MkdirAll(o.walDir, 0o755); err != nil {
		return fail(fmt.Errorf("vmshortcut: creating WAL dir: %w", err))
	}
	baseLSN, err := restoreNewestSnapshot(o.walDir, inner)
	if err != nil {
		return fail(err)
	}
	// Replay pushes each record — uniform or mixed, it is the same
	// op.Batch representation the serving stack logged — back through the
	// store's own batch path. GET entries inside a mixed record replay as
	// lookups, i.e. as no-ops; a rejected insert aborts recovery (such a
	// batch is never logged, so hitting one means the log and the store
	// configuration disagree).
	var rres op.Results
	replay := func(lsn uint64, b *op.Batch) error {
		if lsn <= baseLSN {
			return nil // the snapshot already covers this record
		}
		return inner.ApplyBatch(b, &rres)
	}
	log, err := wal.Open(o.walDir, wal.Options{
		Mode:         o.fsyncMode,
		Interval:     o.fsyncInterval,
		SegmentBytes: o.walSegmentBytes,
		Chained:      o.chainedWAL,
		FsyncHist:    o.fsyncHist,
	}, replay)
	if err != nil {
		return fail(fmt.Errorf("vmshortcut: opening WAL: %w", err))
	}
	// The snapshot and the log must meet: records in (baseLSN, oldest)
	// exist nowhere, and a log that ends before the snapshot position
	// would hand out already-covered LSNs to new writes. Either means
	// the newest snapshot was lost/corrupt after its WAL prefix was
	// compacted (or files were deleted by hand) — refuse loudly instead
	// of serving a keyspace with a silent hole.
	if oldest := log.OldestLSN(); oldest > baseLSN+1 {
		log.Close()
		return fail(fmt.Errorf("vmshortcut: recovery hole: WAL starts at LSN %d but the newest restorable snapshot covers only LSN %d (a newer snapshot is missing or corrupt)",
			oldest, baseLSN))
	}
	if last := log.LastLSN(); last < baseLSN {
		log.Close()
		return fail(fmt.Errorf("vmshortcut: recovery hole: WAL ends at LSN %d but the newest snapshot covers LSN %d (log truncated?)",
			last, baseLSN))
	}
	d := &durableStore{inner: inner, log: log, dir: o.walDir, snapEvery: uint64(o.snapshotEvery), lsnTraces: o.lsnTraces}
	d.snapLSN.Store(baseLSN)
	return d, nil
}

// restoreNewestSnapshot loads the newest valid snapshot in dir into the
// store and returns the WAL position it covers (0 when none). Each
// candidate is verified end to end before a single pair is applied, so an
// invalid snapshot cannot leave the store partially populated.
func restoreNewestSnapshot(dir string, into Store) (uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("vmshortcut: reading WAL dir: %w", err)
	}
	var lsns []uint64
	for _, e := range entries {
		if lsn, ok := parseSnapName(e.Name()); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	for _, lsn := range lsns {
		path := filepath.Join(dir, snapName(lsn))
		ok, err := func() (bool, error) {
			f, err := os.Open(path)
			if err != nil {
				return false, nil // unreadable: fall through to older
			}
			defer f.Close()
			if _, err := persist.Verify(f); err != nil {
				return false, nil // invalid: fall through to older
			}
			if _, err := f.Seek(0, 0); err != nil {
				return false, err
			}
			if _, err := persist.Restore(f, into.InsertBatch); err != nil {
				return false, fmt.Errorf("vmshortcut: restoring %s: %w", path, err)
			}
			return true, nil
		}()
		if err != nil {
			return 0, err
		}
		if ok {
			return lsn, nil
		}
	}
	return 0, nil
}

func (d *durableStore) Kind() Kind { return d.inner.Kind() }

func (d *durableStore) Lookup(key uint64) (uint64, bool) { return d.inner.Lookup(key) }

func (d *durableStore) LookupBatch(keys []uint64, out []uint64) []bool {
	return d.inner.LookupBatch(keys, out)
}

func (d *durableStore) Len() int { return d.inner.Len() }

func (d *durableStore) Range(fn func(key, value uint64) bool) { d.inner.Range(fn) }

func (d *durableStore) WaitSync(timeout time.Duration) bool { return d.inner.WaitSync(timeout) }

func (d *durableStore) Insert(key, value uint64) error {
	k := [1]uint64{key}
	v := [1]uint64{value}
	return d.InsertBatch(k[:], v[:])
}

func (d *durableStore) Delete(key uint64) bool {
	k := [1]uint64{key}
	return d.DeleteBatch(k[:])[0]
}

func (d *durableStore) InsertBatch(keys, values []uint64) error {
	if len(keys) == 0 {
		return nil
	}
	if d.closed.Load() {
		return ErrClosed
	}
	d.mu.RLock()
	err := d.inner.InsertBatch(keys, values)
	var lsn uint64
	if err == nil {
		lsn, err = d.log.AppendPut(keys, values)
		if err == nil {
			d.stampLSN(lsn, 0)
			// Still under the read lock: the bg.Add inside is thereby
			// ordered before any Close (which needs the write lock
			// first), so Close's bg.Wait cannot race the Add.
			d.maybeSnapshot(lsn)
		}
	}
	d.mu.RUnlock()
	return err
}

// ApplyBatch applies the mixed batch to the inner store and then appends
// ONE log record for it — the record's payload being the batch's own
// wire payload, handed to the log zero-copy (op.Batch.Payload returns
// the received frame bytes when the batch came off a socket, and encodes
// exactly once otherwise). A batch with no mutations is not logged.
//
// Ordering: apply-then-log for the whole batch. ApplyBatch — unlike
// DeleteBatch — has an error channel, so the delete side no longer needs
// the log-first ordering: on any failure (a rejected insert, an append
// error) the whole batch fails as a unit and the caller acknowledges
// nothing, which keeps "acknowledged ⇒ durable" intact. The flip side,
// shared with every failed append on this log, is that a FAILED batch
// may have taken effect in memory without a record; the log is fail-stop
// (the first I/O error is sticky), so that window is one batch. And as
// on the insert path, a record is only ever logged for a batch the store
// accepted, so replay cannot re-fail.
func (d *durableStore) ApplyBatch(b *op.Batch, res *op.Results) error {
	if b.Len() == 0 {
		res.Reset(0)
		return nil
	}
	if d.closed.Load() {
		res.Reset(b.Len())
		return ErrClosed
	}
	if b.Mutations() == 0 {
		// Pure reads need no record and no (keyspace, LSN) exactness, so
		// they bypass d.mu entirely — a running snapshot (which holds the
		// write lock for its O(keyspace) duration) must not stall the
		// serving path's GET traffic.
		return d.inner.ApplyBatch(b, res)
	}
	// Validate the record BEFORE applying: rejecting after the apply
	// would leave mutations live in memory with no record and no sticky
	// log error — silent divergence a crash would then surface as loss.
	// (The keys/values paths split oversized batches across records; one
	// mixed batch is one record by design, so it must fit.)
	if b.Len() > wal.MaxRecordPairs {
		res.Reset(b.Len())
		return fmt.Errorf("vmshortcut: ApplyBatch: %d entries exceed one WAL record's capacity (%d); split the batch",
			b.Len(), wal.MaxRecordPairs)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	// Split the batch's trace at the apply/append boundary: StageApply is
	// the in-memory store mutation, StageWALAppend is the log append
	// including any group-commit wait for the fsync covering this record.
	tr := b.Trace()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	if err := d.inner.ApplyBatch(b, res); err != nil {
		return err
	}
	if tr != nil {
		now := time.Now()
		tr.Add(obs.StageApply, now.Sub(t0))
		t0 = now
	}
	code, payload := b.Payload()
	lsn, err := d.log.AppendBatch(code, payload)
	if err != nil {
		return err
	}
	if tr != nil {
		tr.Add(obs.StageWALAppend, time.Since(t0))
	}
	b.SetLSN(lsn)
	d.stampLSN(lsn, b.TraceID())
	d.maybeSnapshot(lsn) // under the read lock; see InsertBatch
	return nil
}

// stampLSN records (lsn, traceID, now) into the LSN-trace ring, if one
// was configured. Every record is stamped — not only sampled ones — so
// replication time lag is measurable without any client sampling.
func (d *durableStore) stampLSN(lsn, traceID uint64) {
	if d.lsnTraces != nil {
		d.lsnTraces.Put(lsn, traceID, time.Now().UnixNano())
	}
}

func (d *durableStore) DeleteBatch(keys []uint64) []bool {
	if len(keys) == 0 || d.closed.Load() {
		return make([]bool, len(keys))
	}
	d.mu.RLock()
	// Log before applying — the reverse of the insert path. A delete
	// cannot fail on the inner store, so replaying a DEL record for an
	// unapplied delete is harmless; and the Delete signature has no
	// error channel, which is exactly why the mutation must not happen
	// ahead of its record here. On append failure nothing is applied and
	// all-false is returned. Caveat, shared with every non-atomic log:
	// a failed append can still leave a durable prefix of the batch's
	// records (a flushed chunk of a split batch, or a flushed record
	// whose fsync failed), which recovery will apply — i.e. an
	// UNacknowledged operation may take partial effect after a crash.
	// The log is fail-stop (the first I/O error is sticky and every
	// later mutation fails loudly), so the window is one batch.
	lsn, err := d.log.AppendDelete(keys)
	if err != nil {
		d.mu.RUnlock()
		return make([]bool, len(keys))
	}
	oks := d.inner.DeleteBatch(keys)
	d.stampLSN(lsn, 0)
	d.maybeSnapshot(lsn) // under the read lock; see InsertBatch
	d.mu.RUnlock()
	return oks
}

// maybeSnapshot triggers the automatic snapshot once the log has grown
// snapEvery records past the last one. The CAS admits one trigger at a
// time, and the snapshot itself runs on its own goroutine — the request
// that crossed the threshold is not held hostage for the O(keyspace)
// write. Writers do still pause while the snapshot holds the write lock;
// what the async hand-off removes is the triggering client's extra wait
// and the serving goroutine's involvement.
//
// Callers invoke this while holding d.mu.RLock: that orders the bg.Add
// before any Close (write lock), so Close's bg.Wait never races the Add
// — and the goroutine itself starts by taking the write lock, so it
// cannot run before the caller's read lock is released.
func (d *durableStore) maybeSnapshot(lsn uint64) {
	if d.snapEvery == 0 {
		return
	}
	// A writer can reach here with an lsn older than a snapshot another
	// writer just took; the subtraction would underflow and trigger a
	// spurious (stop-the-world) snapshot right after the real one.
	if base := d.snapLSN.Load(); lsn < base || lsn-base < d.snapEvery {
		return
	}
	if !d.snapping.CompareAndSwap(false, true) {
		return
	}
	d.bg.Add(1)
	go func() {
		defer d.bg.Done()
		defer d.snapping.Store(false)
		if err := d.Snapshot(); err != nil {
			return // ErrClosed during shutdown, or an I/O failure
		}
		d.CompactWAL()
	}()
}

// Snapshot writes a point-in-time snapshot covering the current log
// position: temp file, fsync, atomic rename, directory fsync — then
// prunes older snapshots. Mutations are excluded for the duration, so
// the (keyspace, LSN) pair is exact.
func (d *durableStore) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed.Load() {
		return ErrClosed
	}
	// Force every appended record onto disk before adopting the current
	// position as the snapshot's LSN. Without this (under FsyncInterval/
	// FsyncOff) the snapshot could cover records that exist only in the
	// write buffer; after a crash the log's replayable tail would end
	// below the snapshot position, and post-restart appends would reuse
	// LSNs the snapshot already claims.
	if err := d.log.Sync(); err != nil {
		return err
	}
	lsn := d.log.LastLSN()
	path := filepath.Join(d.dir, snapName(lsn))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("vmshortcut: creating snapshot: %w", err)
	}
	if err := persist.Snapshot(f, d.inner); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("vmshortcut: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("vmshortcut: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("vmshortcut: publishing snapshot: %w", err)
	}
	if err := wal.SyncDir(d.dir); err != nil {
		return fmt.Errorf("vmshortcut: syncing WAL dir: %w", err)
	}
	d.snapLSN.Store(lsn)
	d.pruneSnapshotsLocked(lsn)
	return nil
}

// pruneSnapshotsLocked removes snapshots older than the one covering
// keep. Failures are ignored: a stale snapshot costs disk, not
// correctness.
func (d *durableStore) pruneSnapshotsLocked(keep uint64) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if lsn, ok := parseSnapName(e.Name()); ok && lsn < keep {
			os.Remove(filepath.Join(d.dir, e.Name()))
		}
	}
}

// CompactWAL drops log segments fully covered by the newest snapshot.
func (d *durableStore) CompactWAL() (int, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	return d.log.Compact(d.snapLSN.Load())
}

// WALStats snapshots the log's counters.
func (d *durableStore) WALStats() wal.Stats { return d.log.Stats() }

// Stats reports the inner store's counters with the durability fields
// filled in.
func (d *durableStore) Stats() Stats {
	st := d.inner.Stats()
	ls := d.log.Stats()
	st.WALRecords = ls.LastLSN
	st.WALSyncs = ls.Syncs
	st.WALSegments = ls.Segments
	st.WALBytes = ls.Bytes
	st.SnapshotLSN = d.snapLSN.Load()
	st.DurableLSN = ls.SyncedLSN
	return st
}

// Close drains in-flight mutations, stops the log's background syncer (a
// final flush+fsync makes every applied mutation durable regardless of
// the fsync policy), closes the log, and closes the inner store — in that
// order, so no background goroutine outlives Close.
func (d *durableStore) Close() error {
	d.mu.Lock()
	if d.closed.Swap(true) {
		d.mu.Unlock()
		return nil
	}
	firstErr := d.log.Close()
	if err := d.inner.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	d.mu.Unlock()
	// Join any automatic-snapshot goroutine (it may be parked on mu; once
	// it runs it sees closed and exits), upholding the Close ordering
	// guarantee: no goroutine started by this store survives Close.
	d.bg.Wait()
	return firstErr
}

// Command shortcutbench regenerates every table and figure of the paper's
// evaluation, plus the ablations, on either the real memory subsystem
// (mmap/memfd rewiring, wall-clock time) or the deterministic vmsim
// backend (simulated nanoseconds).
//
// Usage:
//
//	shortcutbench [flags] <experiment>
//
// Experiments:
//
//	fig2     wide inner node: traditional vs shortcut, size sweep
//	table1   creation + access cost phases (lazy/eager populate)
//	fig4     fan-in sweep (TLB thrashing crossover)
//	fig5     TLB shootdown shooter/reader costs
//	fig7a    insertion of N entries into all five indexes
//	fig7b    hit-only lookups after fig7a (runs both)
//	fig8     mixed workload: shortcut desync and catch-up trace
//	ablate   coalescing, routing threshold, poll interval, sync maintenance
//	shards   sharded-store scaling: parallel batched ops vs the single lock
//	all      everything above
//
// Flags scale the workloads; the defaults run in seconds on a laptop. Use
// -paperscale for the paper's original sizes (needs ≥32 GB RAM and
// patience).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"vmshortcut/internal/experiments"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/vmsim"
)

func main() {
	var (
		sim        = flag.Bool("sim", false, "run on the vmsim simulated MMU instead of real memory")
		both       = flag.Bool("both", false, "run real and simulated variants")
		accesses   = flag.Int("accesses", 1_000_000, "microbenchmark accesses (paper: 10M)")
		slots      = flag.Int("slots", 1<<18, "inner-node slots for table1/fig4 (paper: 2^22)")
		entries    = flag.Int("entries", 2_000_000, "fig7 insertions/lookups (paper: 100M)")
		bulk       = flag.Int("bulk", 1_000_000, "fig8 bulk-load size (paper: 92M)")
		paperscale = flag.Bool("paperscale", false, "use the paper's original workload sizes")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		nested     = flag.Bool("nested", false, "simulate nested paging (EPT) in the vmsim variants")
		seed       = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()
	if *paperscale {
		*accesses = 10_000_000
		*slots = 1 << 22
		*entries = 100_000_000
		*bulk = 92_000_000
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	exp := flag.Arg(0)

	r := runner{
		sim: *sim, both: *both, csv: *csv, nested: *nested,
		accesses: *accesses, slots: *slots,
		entries: *entries, bulk: *bulk, seed: *seed,
	}
	start := time.Now()
	if err := r.run(exp); err != nil {
		fmt.Fprintf(os.Stderr, "shortcutbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n(total wall time: %s)\n", time.Since(start).Round(time.Millisecond))
}

type runner struct {
	sim, both, csv, nested bool
	accesses, slots        int
	entries, bulk          int
	seed                   uint64
}

// simConfig builds the vmsim machine for the sim variants.
func (r runner) simConfig() vmsim.Config {
	return vmsim.Config{NestedPaging: r.nested}
}

func (r runner) run(exp string) error {
	switch exp {
	case "fig2":
		return r.fig2()
	case "table1":
		return r.table1()
	case "fig4":
		return r.fig4()
	case "fig5":
		return r.fig5()
	case "fig7a", "fig7b", "fig7":
		return r.fig7()
	case "fig8":
		return r.fig8()
	case "ablate":
		return r.ablate()
	case "shards":
		return r.shards()
	case "all":
		for _, e := range []string{"fig2", "table1", "fig4", "fig5", "fig7", "fig8", "ablate", "shards"} {
			if err := r.run(e); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

func (r runner) renderSeries(title, x string, series []harness.Series) {
	if r.csv {
		tbl := harness.NewTable(title)
		for i := range series[0].Points {
			pairs := []string{x, series[0].Points[i].X}
			for _, s := range series {
				pairs = append(pairs, s.Label, fmt.Sprintf("%.3f", s.Points[i].Y))
			}
			tbl.AddRow(pairs...)
		}
		tbl.RenderCSV(os.Stdout)
		return
	}
	harness.RenderSeries(os.Stdout, title, x, series)
}

func (r runner) renderTable(t *harness.Table) {
	if r.csv {
		t.RenderCSV(os.Stdout)
		return
	}
	t.Render(os.Stdout)
}

func (r runner) fig2() error {
	cfg := experiments.Fig2Config{Accesses: r.accesses, Seed: r.seed, Sim: r.simConfig()}
	if !r.sim || r.both {
		series, err := experiments.Fig2(cfg)
		if err != nil {
			return err
		}
		r.renderSeries(
			fmt.Sprintf("Figure 2: %d random accesses through one wide inner node (real)", r.accesses),
			"dirMB,bucketMB(paper-equivalent)", series)
	}
	if r.sim || r.both {
		series, err := experiments.Fig2Sim(cfg)
		if err != nil {
			return err
		}
		r.renderSeries(
			fmt.Sprintf("Figure 2: %d random accesses (vmsim, simulated ms)", r.accesses),
			"dirMB,bucketMB(paper-equivalent)", series)
	}
	return nil
}

func (r runner) table1() error {
	cfg := experiments.Table1Config{Slots: r.slots, Accesses: r.accesses, Seed: r.seed, Sim: r.simConfig()}
	if !r.sim || r.both {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		r.renderTable(experiments.Table1Render(rows))
	}
	if r.sim || r.both {
		rows, err := experiments.Table1Sim(cfg)
		if err != nil {
			return err
		}
		r.renderTable(experiments.Table1Render(rows))
	}
	return nil
}

func (r runner) fig4() error {
	cfg := experiments.Fig4Config{Slots: r.slots, Accesses: r.accesses, Seed: r.seed, Sim: r.simConfig()}
	if !r.sim || r.both {
		series, err := experiments.Fig4(cfg)
		if err != nil {
			return err
		}
		r.renderSeries("Figure 4: impact of fan-in (real, total ms)", "fan-in", series)
	}
	if r.sim || r.both {
		series, err := experiments.Fig4Sim(cfg)
		if err != nil {
			return err
		}
		r.renderSeries("Figure 4: impact of fan-in (vmsim, simulated ms)", "fan-in", series)
	}
	return nil
}

func (r runner) fig5() error {
	cfg := experiments.Fig5Config{Seed: r.seed, Sim: r.simConfig()}
	if !r.sim || r.both {
		results, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		t := experiments.Fig5Render(results)
		t.Title += " — real threads (needs multi-core for the paper shape)"
		r.renderTable(t)
	}
	if r.sim || r.both {
		results, err := experiments.Fig5Sim(cfg)
		if err != nil {
			return err
		}
		t := experiments.Fig5Render(results)
		t.Title += " — vmsim (deterministic)"
		r.renderTable(t)
	}
	return nil
}

func (r runner) fig7() error {
	if !r.sim || r.both {
		res, err := experiments.Fig7(experiments.Fig7Config{Entries: r.entries, Seed: r.seed})
		if err != nil {
			return err
		}
		r.renderSeries(
			fmt.Sprintf("Figure 7a: accumulated insertion time [s], %d uniform entries, max load 0.35", r.entries),
			"inserted", res.Insert)
		r.renderTable(res.Lookup)
	}
	if r.sim || r.both {
		// The sim variant runs at the paper's 100M-entry scale, where the
		// EH directory outgrows the caches — the regime Figure 7b targets.
		entries := r.entries
		if entries < 100_000_000 {
			entries = 100_000_000
		}
		_, tbl, err := experiments.Fig7bSim(experiments.Fig7Config{
			Entries: entries, Seed: r.seed, Sim: r.simConfig(),
		})
		if err != nil {
			return err
		}
		r.renderTable(tbl)
	}
	return nil
}

func (r runner) fig8() error {
	points, err := experiments.Fig8(experiments.Fig8Config{BulkLoad: r.bulk, Seed: r.seed})
	if err != nil {
		return err
	}
	r.renderTable(experiments.Fig8Render(points))
	return nil
}

// shards sweeps the procs×shards grid on the concurrent sharded store —
// not a paper figure (the prototype is single-writer); it measures how
// far the WithShards fan-out scales batched mutation past the
// single-lock wrapper, and whether the scaling holds as scheduler
// parallelism grows. On a single-CPU box the procs axis collapses to
// one value and the table reduces to the plain shard sweep.
func (r runner) shards() error {
	var procs []int
	for n := 1; n <= runtime.NumCPU(); n *= 2 {
		procs = append(procs, n)
	}
	rows, err := experiments.ShardScale(experiments.ShardScaleConfig{
		Entries: r.entries / 2, Seed: r.seed, Procs: procs,
	})
	if err != nil {
		return err
	}
	r.renderTable(experiments.ShardScaleRender(rows))
	return nil
}

func (r runner) ablate() error {
	coal, err := experiments.AblationCoalesce(1 << 14)
	if err != nil {
		return err
	}
	r.renderTable(coal)

	thr, err := experiments.AblationThreshold(experiments.Fig4Config{
		Slots: r.slots / 4, Accesses: r.accesses / 4, Seed: r.seed,
	})
	if err != nil {
		return err
	}
	r.renderTable(thr)

	poll, err := experiments.AblationPollInterval(r.entries/4, nil)
	if err != nil {
		return err
	}
	r.renderTable(poll)

	sync, err := experiments.AblationSyncMaintenance(r.entries / 4)
	if err != nil {
		return err
	}
	r.renderTable(sync)

	huge, err := experiments.AblationHugePagesSim(r.accesses/2, nil)
	if err != nil {
		return err
	}
	r.renderTable(huge)

	if experiments.HugePagesAvailable() {
		hreal, err := experiments.AblationHugePagesReal(0, r.accesses, r.seed)
		if err != nil {
			return err
		}
		r.renderTable(hreal)
	} else {
		fmt.Println("\n(real huge-page ablation skipped: set vm.nr_hugepages to enable)")
	}
	return nil
}

package main

import (
	"os"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout during fn and returns what was
// written — the runner prints straight to stdout.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errCh := make(chan error, 1)
	go func() { errCh <- fn() }()
	runErr := <-errCh
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	if runErr != nil {
		t.Fatalf("runner: %v", runErr)
	}
	return string(buf[:n])
}

// tinyRunner keeps every experiment in the sub-second range.
func tinyRunner() runner {
	return runner{
		sim:      true, // sim variants are the fast deterministic path
		accesses: 20000,
		slots:    1 << 10,
		entries:  20000,
		bulk:     20000,
		seed:     42,
	}
}

func TestRunnerFig2Sim(t *testing.T) {
	out := captureStdout(t, func() error { return tinyRunner().run("fig2") })
	if !strings.Contains(out, "Shortcut (sim)") {
		t.Fatalf("fig2 output missing series:\n%s", out)
	}
}

func TestRunnerTable1Sim(t *testing.T) {
	out := captureStdout(t, func() error { return tinyRunner().run("table1") })
	for _, want := range []string{"Shortcut lazy (sim)", "Shortcut eager (sim)", "set-indir"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunnerFig4Sim(t *testing.T) {
	out := captureStdout(t, func() error { return tinyRunner().run("fig4") })
	if !strings.Contains(out, "fan-in") {
		t.Fatalf("fig4 output:\n%s", out)
	}
}

func TestRunnerFig5Sim(t *testing.T) {
	out := captureStdout(t, func() error { return tinyRunner().run("fig5") })
	if !strings.Contains(out, "shooter") {
		t.Fatalf("fig5 output:\n%s", out)
	}
}

func TestRunnerFig8(t *testing.T) {
	r := tinyRunner()
	r.sim = false
	out := captureStdout(t, func() error { return r.run("fig8") })
	if !strings.Contains(out, "via shortcut") {
		t.Fatalf("fig8 output:\n%s", out)
	}
}

func TestRunnerCSVMode(t *testing.T) {
	r := tinyRunner()
	r.csv = true
	out := captureStdout(t, func() error { return r.run("fig4") })
	if !strings.Contains(out, ",") || strings.Contains(out, "==") {
		t.Fatalf("CSV mode not CSV:\n%s", out)
	}
}

func TestRunnerNestedFlag(t *testing.T) {
	r := tinyRunner()
	r.nested = true
	if !r.simConfig().NestedPaging {
		t.Fatal("nested flag not propagated")
	}
	out := captureStdout(t, func() error { return r.run("fig4") })
	if !strings.Contains(out, "fan-in") {
		t.Fatal("nested fig4 run failed")
	}
}

func TestRunnerUnknownExperiment(t *testing.T) {
	if err := tinyRunner().run("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

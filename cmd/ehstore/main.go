// Command ehstore is a workbench for the hash indexes behind the
// vmshortcut.Open facade: it loads a generated keyspace into a chosen
// index kind, fires a query mix, and prints throughput plus the uniform
// Stats counters. Useful for quick what-if runs outside the full
// benchmark harness.
//
// With -wal-dir the index is opened durable: the keyspace is recovered
// from the newest snapshot plus the WAL tail before the run, and every
// mutation is logged. -admin runs one administrative operation against
// such a directory and exits: "snap" takes a point-in-time snapshot,
// "compact" drops the WAL segments the newest snapshot covers. Snapshots
// store plain (key, value) pairs, so they are portable across index
// kinds — a keyspace written under -index eh restores into -index ht.
//
// Usage:
//
//	ehstore [-index shortcut-eh|eh|ht|hti|ch] [-n 1000000] [-reads 1000000]
//	        [-deletes 0.1] [-poll 25ms] [-batch 0] [-shards 1] [-workers 1]
//	ehstore -wal-dir /var/lib/ehstore -admin snap
//	ehstore -wal-dir /var/lib/ehstore -admin compact
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"vmshortcut"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/workload"
)

func main() {
	index := flag.String("index", "shortcut-eh", "index kind: shortcut-eh | eh | ht | hti | ch")
	n := flag.Int("n", 1_000_000, "entries to load")
	reads := flag.Int("reads", 1_000_000, "hit-only lookups to fire")
	deletes := flag.Float64("deletes", 0, "fraction of entries to delete after the read phase")
	poll := flag.Duration("poll", vmshortcut.DefaultPollInterval, "mapper poll interval (shortcut-eh)")
	seed := flag.Uint64("seed", 42, "keyspace seed")
	hist := flag.Bool("hist", false, "print a read-latency histogram")
	batch := flag.Int("batch", 0, "run load and read phases through InsertBatch/LookupBatch in chunks of this size (0 = single ops)")
	shards := flag.Int("shards", 1, "hash-partition the keyspace across this many independent shards")
	workers := flag.Int("workers", 1, "goroutines driving the load and read phases (>1 requires -shards > 1 or implies a shared-lock store)")
	trace := flag.String("trace", "", "replay an operation trace file instead of the generated workload (I/L/D lines)")
	walDir := flag.String("wal-dir", "", "open the index durable: recover from (and log mutations to) this WAL directory")
	fsyncName := flag.String("fsync", "always", "WAL fsync policy with -wal-dir: always | interval | off")
	admin := flag.String("admin", "", "administrative operation against -wal-dir, then exit: snap | compact")
	flag.Parse()

	kind, err := vmshortcut.ParseKind(*index)
	if err != nil {
		log.Fatal(err)
	}
	if *hist && *batch > 0 {
		log.Fatal("-hist records per-op latencies and requires -batch=0")
	}
	if *hist && *workers > 1 {
		log.Fatal("-hist records per-op latencies and requires -workers=1")
	}
	opts := []vmshortcut.Option{
		vmshortcut.WithPollInterval(*poll),
		vmshortcut.WithShards(*shards),
	}
	if *workers > 1 && *shards <= 1 {
		// Multi-goroutine driving of an unsharded store needs the global
		// readers-writer lock; say so rather than racing.
		opts = append(opts, vmshortcut.WithConcurrency(true))
	}
	if kind == vmshortcut.KindCH {
		// The paper's 10-bytes-per-entry directory budget for CH.
		opts = append(opts, vmshortcut.WithTableBytes(*n*10))
	}
	if *walDir != "" {
		mode, err := vmshortcut.ParseFsyncMode(*fsyncName)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, vmshortcut.WithWAL(*walDir), vmshortcut.WithFsync(mode))
	}
	if *admin != "" && *walDir == "" {
		log.Fatal("-admin requires -wal-dir")
	}
	idx, err := vmshortcut.Open(kind, opts...)
	if err != nil {
		log.Fatalf("open %s: %v", kind, err)
	}
	defer idx.Close()

	if *admin != "" {
		if err := runAdmin(idx, *admin); err != nil {
			log.Fatalf("admin %s: %v", *admin, err)
		}
		return
	}

	if *trace != "" {
		if err := replayTrace(idx, *trace); err != nil {
			log.Fatalf("trace: %v", err)
		}
		return
	}

	fmt.Printf("index=%s n=%d reads=%d batch=%d shards=%d workers=%d\n",
		kind, *n, *reads, *batch, *shards, *workers)

	start := time.Now()
	harness.ParallelChunks(*n, *workers, func(w, wlo, whi int) {
		if *batch > 0 {
			keys := make([]uint64, *batch)
			vals := make([]uint64, *batch)
			harness.Chunks(whi-wlo, *batch, func(clo, chi int) {
				lo := wlo + clo
				k, v := keys[:chi-clo], vals[:chi-clo]
				for i := range k {
					k[i] = workload.Key(*seed, uint64(lo+i))
					v[i] = uint64(lo + i)
				}
				if err := idx.InsertBatch(k, v); err != nil {
					log.Fatalf("insert batch [%d,%d): %v", lo, lo+len(k), err)
				}
			})
			return
		}
		for i := wlo; i < whi; i++ {
			if err := idx.Insert(workload.Key(*seed, uint64(i)), uint64(i)); err != nil {
				log.Fatalf("insert %d: %v", i, err)
			}
		}
	})
	loadDur := time.Since(start)
	fmt.Printf("load:    %10s  (%.0f inserts/s)\n", loadDur.Round(time.Millisecond),
		float64(*n)/loadDur.Seconds())

	start = time.Now()
	if idx.WaitSync(time.Minute) && kind == vmshortcut.KindShortcutEH {
		fmt.Printf("sync:    %10s  (shortcut directory caught up)\n",
			time.Since(start).Round(time.Millisecond))
	}

	var latencies harness.Histogram
	start = time.Now()
	workerMisses := make([]int, *workers)
	harness.ParallelChunks(*reads, *workers, func(w, wlo, whi int) {
		// Each worker draws its own lookup stream (seed offset by worker)
		// so streams are independent and need no shared RNG state.
		wseed := *seed + uint64(w)*0x9E3779B97F4A7C15
		count := whi - wlo
		if *batch > 0 {
			keys := make([]uint64, 0, *batch)
			out := make([]uint64, *batch)
			flush := func() {
				for _, ok := range idx.LookupBatch(keys, out) {
					if !ok {
						workerMisses[w]++
					}
				}
				keys = keys[:0]
			}
			workload.LookupStream(wseed, *n, count, func(i int) {
				keys = append(keys, workload.Key(*seed, uint64(i)))
				if len(keys) == *batch {
					flush()
				}
			})
			if len(keys) > 0 {
				flush()
			}
			return
		}
		workload.LookupStream(wseed, *n, count, func(i int) {
			if *hist { // -hist forces workers=1, so latencies is unshared
				t0 := time.Now()
				if _, ok := idx.Lookup(workload.Key(*seed, uint64(i))); !ok {
					workerMisses[w]++
				}
				latencies.Record(uint64(time.Since(t0).Nanoseconds()))
				return
			}
			if _, ok := idx.Lookup(workload.Key(*seed, uint64(i))); !ok {
				workerMisses[w]++
			}
		})
	})
	readDur := time.Since(start)
	misses := 0
	for _, m := range workerMisses {
		misses += m
	}
	fmt.Printf("read:    %10s  (%.0f lookups/s, %d misses)\n", readDur.Round(time.Millisecond),
		float64(*reads)/readDur.Seconds(), misses)

	if *hist {
		latencies.Render(os.Stdout, "read latency [ns]")
	}

	if *deletes > 0 {
		nd := int(float64(*n) * *deletes)
		start = time.Now()
		removed := 0
		for i := 0; i < nd; i++ {
			if idx.Delete(workload.Key(*seed, uint64(i))) {
				removed++
			}
		}
		fmt.Printf("delete:  %10s  (%d removed, %d remain)\n",
			time.Since(start).Round(time.Millisecond), removed, idx.Len())
	}

	st := idx.Stats()
	switch kind {
	case vmshortcut.KindShortcutEH:
		fmt.Printf("stats:   global_depth=%d buckets=%d fan_in=%.2f shortcut_lookups=%d traditional=%d remaps=%d\n",
			st.GlobalDepth, st.Buckets, st.AvgFanIn,
			st.ShortcutLookups, st.TraditionalLookups, st.Remaps)
	case vmshortcut.KindEH:
		fmt.Printf("stats:   global_depth=%d buckets=%d fan_in=%.2f structural_mods=%d\n",
			st.GlobalDepth, st.Buckets, st.AvgFanIn, st.StructuralMods)
	default:
		fmt.Printf("stats:   entries=%d structural_mods=%d\n", st.Entries, st.StructuralMods)
	}
	if *walDir != "" {
		fmt.Printf("wal:     records=%d syncs=%d durable_lsn=%d snapshot_lsn=%d segments=%d bytes=%d\n",
			st.WALRecords, st.WALSyncs, st.DurableLSN, st.SnapshotLSN, st.WALSegments, st.WALBytes)
	}
}

// runAdmin executes one durability administration operation: SNAP takes
// a point-in-time snapshot of the recovered keyspace, COMPACT drops the
// WAL segments the newest snapshot has made redundant.
func runAdmin(idx vmshortcut.Store, op string) error {
	d, ok := vmshortcut.AsDurable(idx)
	if !ok {
		return fmt.Errorf("store is not durable")
	}
	switch op {
	case "snap":
		start := time.Now()
		if err := d.Snapshot(); err != nil {
			return err
		}
		st := idx.Stats()
		fmt.Printf("snap: %d entries snapshotted at LSN %d in %s\n",
			st.Entries, st.SnapshotLSN, time.Since(start).Round(time.Millisecond))
	case "compact":
		removed, err := d.CompactWAL()
		if err != nil {
			return err
		}
		ws := d.WALStats()
		fmt.Printf("compact: %d segments removed; %d remain (%d bytes, last LSN %d)\n",
			removed, ws.Segments, ws.Bytes, ws.LastLSN)
	default:
		return fmt.Errorf("unknown operation %q (want snap or compact)", op)
	}
	return nil
}

// replayTrace streams a trace file through the index and reports counts
// and throughput.
func replayTrace(idx vmshortcut.Store, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var ins, hits, missed, dels int
	start := time.Now()
	err = workload.ReadTrace(f, func(op workload.TraceOp) error {
		switch op.Kind {
		case 'I':
			ins++
			return idx.Insert(op.Key, op.Value)
		case 'L':
			if _, ok := idx.Lookup(op.Key); ok {
				hits++
			} else {
				missed++
			}
		case 'D':
			if idx.Delete(op.Key) {
				dels++
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	total := ins + hits + missed + dels
	dur := time.Since(start)
	fmt.Printf("trace:   %d ops in %s (%.0f ops/s): %d inserts, %d hits, %d misses, %d deletes; %d entries remain\n",
		total, dur.Round(time.Millisecond), float64(total)/dur.Seconds(),
		ins, hits, missed, dels, idx.Len())
	return nil
}

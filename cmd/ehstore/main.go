// Command ehstore is a workbench for the five hash indexes: it loads a
// generated keyspace into a chosen index, fires a query mix, and prints
// throughput plus index-specific statistics. Useful for quick what-if runs
// outside the full benchmark harness.
//
// Usage:
//
//	ehstore [-index shortcut-eh|eh|ht|hti|ch] [-n 1000000] [-reads 1000000]
//	        [-deletes 0.1] [-poll 25ms]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"vmshortcut"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/workload"
)

func main() {
	index := flag.String("index", "shortcut-eh", "index: shortcut-eh | eh | ht | hti | ch")
	n := flag.Int("n", 1_000_000, "entries to load")
	reads := flag.Int("reads", 1_000_000, "hit-only lookups to fire")
	deletes := flag.Float64("deletes", 0, "fraction of entries to delete after the read phase")
	poll := flag.Duration("poll", vmshortcut.DefaultPollInterval, "mapper poll interval (shortcut-eh)")
	seed := flag.Uint64("seed", 42, "keyspace seed")
	hist := flag.Bool("hist", false, "print a read-latency histogram")
	trace := flag.String("trace", "", "replay an operation trace file instead of the generated workload (I/L/D lines)")
	flag.Parse()

	var (
		idx     vmshortcut.Index
		cleanup func()
	)
	switch *index {
	case "ht":
		idx, cleanup = vmshortcut.NewHashTable(vmshortcut.HashTableConfig{}), func() {}
	case "hti":
		idx, cleanup = vmshortcut.NewIncrementalHashTable(vmshortcut.IncrementalConfig{}), func() {}
	case "ch":
		idx, cleanup = vmshortcut.NewChainedHashTable(vmshortcut.ChainedConfig{TableBytes: *n * 10}), func() {}
	case "eh":
		p, err := vmshortcut.NewPool(vmshortcut.PoolConfig{})
		if err != nil {
			log.Fatalf("pool: %v", err)
		}
		t, err := vmshortcut.NewExtendibleHashing(p, vmshortcut.ExtendibleConfig{})
		if err != nil {
			log.Fatalf("eh: %v", err)
		}
		idx, cleanup = t, func() { p.Close() }
	case "shortcut-eh":
		p, err := vmshortcut.NewPool(vmshortcut.PoolConfig{})
		if err != nil {
			log.Fatalf("pool: %v", err)
		}
		t, err := vmshortcut.NewShortcutEH(p, vmshortcut.ShortcutEHConfig{PollInterval: *poll})
		if err != nil {
			log.Fatalf("shortcut-eh: %v", err)
		}
		idx, cleanup = t, func() { t.Close(); p.Close() }
	default:
		log.Fatalf("unknown index %q", *index)
	}
	defer cleanup()

	if *trace != "" {
		if err := replayTrace(idx, *trace); err != nil {
			log.Fatalf("trace: %v", err)
		}
		return
	}

	fmt.Printf("index=%s n=%d reads=%d\n", *index, *n, *reads)

	start := time.Now()
	for i := 0; i < *n; i++ {
		if err := idx.Insert(workload.Key(*seed, uint64(i)), uint64(i)); err != nil {
			log.Fatalf("insert %d: %v", i, err)
		}
	}
	loadDur := time.Since(start)
	fmt.Printf("load:    %10s  (%.0f inserts/s)\n", loadDur.Round(time.Millisecond),
		float64(*n)/loadDur.Seconds())

	if sct, ok := idx.(*vmshortcut.ShortcutEH); ok {
		start = time.Now()
		if sct.WaitSync(time.Minute) {
			fmt.Printf("sync:    %10s  (shortcut directory caught up)\n",
				time.Since(start).Round(time.Millisecond))
		}
	}

	var latencies harness.Histogram
	start = time.Now()
	misses := 0
	workload.LookupStream(*seed, *n, *reads, func(i int) {
		if *hist {
			t0 := time.Now()
			if _, ok := idx.Lookup(workload.Key(*seed, uint64(i))); !ok {
				misses++
			}
			latencies.Record(uint64(time.Since(t0).Nanoseconds()))
			return
		}
		if _, ok := idx.Lookup(workload.Key(*seed, uint64(i))); !ok {
			misses++
		}
	})
	readDur := time.Since(start)
	fmt.Printf("read:    %10s  (%.0f lookups/s, %d misses)\n", readDur.Round(time.Millisecond),
		float64(*reads)/readDur.Seconds(), misses)

	if *hist {
		latencies.Render(os.Stdout, "read latency [ns]")
	}

	if *deletes > 0 {
		nd := int(float64(*n) * *deletes)
		start = time.Now()
		removed := 0
		for i := 0; i < nd; i++ {
			if idx.Delete(workload.Key(*seed, uint64(i))) {
				removed++
			}
		}
		fmt.Printf("delete:  %10s  (%d removed, %d remain)\n",
			time.Since(start).Round(time.Millisecond), removed, idx.Len())
	}

	if sct, ok := idx.(*vmshortcut.ShortcutEH); ok {
		s := sct.Stats()
		fmt.Printf("stats:   global_depth=%d buckets=%d fan_in=%.2f shortcut_lookups=%d traditional=%d remaps=%d\n",
			sct.EH().GlobalDepth(), sct.EH().Buckets(), sct.AvgFanIn(),
			s.ShortcutLookups, s.TraditionalLookups, s.Remaps)
	}
	if et, ok := idx.(*vmshortcut.ExtendibleHashing); ok {
		fmt.Printf("stats:   global_depth=%d buckets=%d fan_in=%.2f splits=%d doubles=%d\n",
			et.GlobalDepth(), et.Buckets(), et.AvgFanIn(), et.Splits, et.Doubles)
	}
}

// replayTrace streams a trace file through the index and reports counts
// and throughput.
func replayTrace(idx vmshortcut.Index, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var ins, hits, missed, dels int
	start := time.Now()
	err = workload.ReadTrace(f, func(op workload.TraceOp) error {
		switch op.Kind {
		case 'I':
			ins++
			return idx.Insert(op.Key, op.Value)
		case 'L':
			if _, ok := idx.Lookup(op.Key); ok {
				hits++
			} else {
				missed++
			}
		case 'D':
			if idx.Delete(op.Key) {
				dels++
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	total := ins + hits + missed + dels
	dur := time.Since(start)
	fmt.Printf("trace:   %d ops in %s (%.0f ops/s): %d inserts, %d hits, %d misses, %d deletes; %d entries remain\n",
		total, dur.Round(time.Millisecond), float64(total)/dur.Seconds(),
		ins, hits, missed, dels, idx.Len())
	return nil
}

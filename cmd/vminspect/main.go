// Command vminspect runs a synthetic access pattern through the vmsim
// software MMU and prints the translation cost breakdown: TLB hit rates,
// page-walk counts, cache residency of page-table entries, and the derived
// per-access cost. It makes the mechanism behind the paper's Figures 2
// and 4 visible without hardware counters.
//
// Usage:
//
//	vminspect [-pages N] [-accesses N] [-pattern random|sequential|strided]
package main

import (
	"flag"
	"fmt"
	"os"

	"vmshortcut/internal/vmsim"
	"vmshortcut/internal/workload"
)

func main() {
	pages := flag.Int("pages", 1<<16, "working-set size in pages")
	accesses := flag.Int("accesses", 1_000_000, "number of simulated accesses")
	pattern := flag.String("pattern", "random", "access pattern: random | sequential | strided")
	stride := flag.Int("stride", 8, "page stride for -pattern strided")
	seed := flag.Uint64("seed", 42, "workload seed")
	nested := flag.Bool("nested", false, "simulate nested paging (EPT)")
	flag.Parse()

	m := vmsim.New(vmsim.Config{NestedPaging: *nested})
	m.AutoFault = true
	cfg := m.Config()

	fmt.Printf("simulated machine: L1 TLB %d entries, L2 TLB %d, caches %dK/%dK/%dM, DRAM %.0fns\n",
		cfg.TLB1Entries, cfg.TLB2Entries,
		cfg.L1Size>>10, cfg.L2Size>>10, cfg.L3Size>>20, cfg.LatDRAM)
	fmt.Printf("working set: %d pages (%d MB), pattern %s\n\n",
		*pages, *pages>>8, *pattern)

	// Warm-up pass to populate page table and caches.
	touch := func(p int) {
		m.MustAccess(uint64(p) << 12)
	}
	for p := 0; p < *pages; p++ {
		touch(p)
	}
	m.ResetTime()
	warm := m.Stats()

	switch *pattern {
	case "random":
		workload.SlotStream(*seed, *pages, *accesses, touch)
	case "sequential":
		for i := 0; i < *accesses; i++ {
			touch(i % *pages)
		}
	case "strided":
		p := 0
		for i := 0; i < *accesses; i++ {
			touch(p)
			p = (p + *stride) % *pages
		}
	default:
		fmt.Fprintf(os.Stderr, "vminspect: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	st := m.Stats()
	n := float64(*accesses)
	d := func(a, b uint64) uint64 { return a - b }
	fmt.Printf("per-access cost: %.2f simulated ns\n\n", m.Time()/n)
	fmt.Printf("%-22s %12s %9s\n", "event", "count", "rate")
	row := func(name string, c uint64) {
		fmt.Printf("%-22s %12d %8.2f%%\n", name, c, 100*float64(c)/n)
	}
	row("L1 TLB hits", d(st.TLB1Hits, warm.TLB1Hits))
	row("L2 TLB hits", d(st.TLB2Hits, warm.TLB2Hits))
	row("page-table walks", d(st.Walks, warm.Walks))
	row("page faults", d(st.PageFaults, warm.PageFaults))
	if *nested {
		row("EPT entry reads", d(st.EPTRefs, warm.EPTRefs))
	}
	fmt.Println()
	memRefs := float64(d(st.L1Hits, warm.L1Hits) + d(st.L2Hits, warm.L2Hits) +
		d(st.L3Hits, warm.L3Hits) + d(st.DRAM, warm.DRAM))
	memRow := func(name string, c uint64) {
		fmt.Printf("%-22s %12d %8.2f%%\n", name, c, 100*float64(c)/memRefs)
	}
	memRow("L1D hits", d(st.L1Hits, warm.L1Hits))
	memRow("L2 hits", d(st.L2Hits, warm.L2Hits))
	memRow("L3 hits", d(st.L3Hits, warm.L3Hits))
	memRow("DRAM accesses", d(st.DRAM, warm.DRAM))
	fmt.Printf("\npage table: %d radix nodes (%d KB simulated)\n",
		m.PageTableNodes(), m.PageTableNodes()*4)
}

package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildEhload compiles the command once per test binary, so the flag
// table runs against the real main() — flag registration, validation
// order, exit codes and all.
func buildEhload(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ehload")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ehload: %v\n%s", err, out)
	}
	return bin
}

// TestFlagValidation pins the usage-error contract: an invalid
// invocation exits 2 (flag-package convention, distinct from a failed
// run's exit 1) with a message naming the offending flag, before any
// connection is attempted.
func TestFlagValidation(t *testing.T) {
	bin := buildEhload(t)
	tests := []struct {
		name string
		args []string
		want string // required substring of stderr
	}{
		{"conns zero", []string{"-conns", "0"}, "-conns"},
		{"conns negative", []string{"-conns", "-3"}, "-conns"},
		{"pipeline zero", []string{"-pipeline", "0"}, "-pipeline"},
		{"pipeline negative", []string{"-pipeline", "-1"}, "-pipeline"},
		{"batch malformed", []string{"-batch", "banana"}, "-batch"},
		{"batch negative", []string{"-batch", "-5"}, "-batch"},
		{"load zero", []string{"-load", "0"}, "-load"},
		{"ops negative", []string{"-ops", "-1"}, "-ops"},
		{"duration zero without ops", []string{"-duration", "0s"}, "-duration"},
		{"unknown mix", []string{"-mix", "Z"}, "mix"},
		{"unknown dist", []string{"-dist", "pareto"}, "distribution"},
		{"failover without follower addr", []string{"-failover-check"}, "-follower-addr"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, tc.args...)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("args %v: err = %v (output %q), want a usage-error exit", tc.args, err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("args %v: exit code = %d, want 2\noutput: %s", tc.args, code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("args %v: stderr %q does not mention %q", tc.args, out, tc.want)
			}
		})
	}
}

// TestFailoverCheckCmdValidation pins the managed-process mode's own
// prechecks: they run before any process is started and fail with exit 1
// and a message naming the missing ingredient.
func TestFailoverCheckCmdValidation(t *testing.T) {
	bin := buildEhload(t)
	tests := []struct {
		name string
		args []string
		want string
	}{
		{
			"missing cmds",
			[]string{"-failover-check", "-follower-addr", "x:1"},
			"-primary-cmd and -follower-cmd",
		},
		{
			"primary without wal-dir",
			[]string{"-failover-check", "-follower-addr", "x:1", "-primary-cmd", "srv", "-follower-cmd", "srv -replica-of x"},
			"-wal-dir",
		},
		{
			"primary without repl-sync",
			[]string{"-failover-check", "-follower-addr", "x:1", "-primary-cmd", "srv -wal-dir d", "-follower-cmd", "srv -replica-of x"},
			"-repl-sync",
		},
		{
			"follower without replica-of",
			[]string{"-failover-check", "-follower-addr", "x:1", "-primary-cmd", "srv -wal-dir d -repl-sync", "-follower-cmd", "srv"},
			"-replica-of",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, tc.args...)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 1 {
				t.Fatalf("args %v: err = %v, want exit 1\noutput: %s", tc.args, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("args %v: output %q does not mention %q", tc.args, out, tc.want)
			}
		})
	}
}

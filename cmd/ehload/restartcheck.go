// The -restart-check mode: an end-to-end crash-recovery verification.
// ehload manages the server process itself — start it, write
// acknowledged keys while it runs, kill -9 mid-run, restart it, and
// verify that every write acknowledged before the kill is present with
// the right value. With -fsync always on the server this must hold
// exactly; a single missing or mismatched key fails the check (and the
// CI crash-recovery job built on it).
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"vmshortcut/client"
	"vmshortcut/internal/workload"
)

// restartConfig parameterizes one restart check.
type restartConfig struct {
	addr      string
	serverCmd string
	maxKeys   int           // stop writing after this many acknowledged keys
	duration  time.Duration // kill the server this long into the write phase
	seed      uint64        // key derivation seed (same scheme as the benchmark)
}

// checkChunk is the PutBatch/GetBatch size of the write and verify loops.
const checkChunk = 128

func runRestartCheck(cfg restartConfig) error {
	if cfg.serverCmd == "" {
		return errors.New("-server-cmd is required")
	}
	if !strings.Contains(cfg.serverCmd, "-wal-dir") {
		return errors.New("-server-cmd must include -wal-dir: without a WAL there is nothing to recover")
	}
	if cfg.maxKeys <= 0 {
		return errors.New("-load must be positive (it caps the written keyspace)")
	}
	if cfg.duration <= 0 {
		return errors.New("-duration must be positive (it sets the kill point)")
	}
	// The command is split on whitespace with no shell-style quoting:
	// quoted arguments would reach the server as literal quote characters
	// and fail in confusing ways (e.g. a directory named `"/var`), so
	// reject them up front.
	if strings.ContainsAny(cfg.serverCmd, `"'`) {
		return errors.New("-server-cmd is split on whitespace and does not support quoting; use paths without spaces")
	}
	parts := strings.Fields(cfg.serverCmd)
	start := func() (*exec.Cmd, error) {
		cmd := exec.Command(parts[0], parts[1:]...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("starting server: %w", err)
		}
		return cmd, nil
	}

	// Phase 1: bring the server up and write until the kill lands.
	proc, err := start()
	if err != nil {
		return err
	}
	var acked atomic.Int64
	writeErr := make(chan error, 1)
	go func() { writeErr <- writePhase(cfg, &acked) }()

	time.Sleep(cfg.duration)
	// kill -9: no drain, no final fsync — only what the WAL policy made
	// durable survives.
	if err := proc.Process.Kill(); err != nil {
		return fmt.Errorf("kill -9: %w", err)
	}
	proc.Wait()
	// The writer either errored out when the connection died (expected)
	// or had already written every key; both are fine.
	if err := <-writeErr; err != nil && acked.Load() == 0 {
		return fmt.Errorf("no writes acknowledged before the kill: %w", err)
	}
	n := acked.Load()
	fmt.Printf("restart-check: %d writes acknowledged, server killed with SIGKILL\n", n)
	if n == 0 {
		return errors.New("the write phase acknowledged nothing; increase -duration")
	}

	// Phase 2: restart and verify. Dial success implies recovery is
	// complete — the durable server only listens after replaying.
	proc2, err := start()
	if err != nil {
		return err
	}
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()
	missing, mismatched, err := verifyPhase(cfg, n)
	if err != nil {
		return err
	}
	fmt.Printf("restart-check: verified %d acknowledged writes after restart: %d missing, %d mismatched\n",
		n, missing, mismatched)
	if missing+mismatched > 0 {
		return fmt.Errorf("%d acknowledged writes lost (%d missing, %d wrong value)", missing+mismatched, missing, mismatched)
	}
	fmt.Println("restart-check: OK — no acknowledged write was lost")
	return nil
}

// writePhase puts keys 0,1,2,... (through the benchmark's key mapping)
// in acknowledged batches until maxKeys or the connection dies under the
// kill. acked counts only fully acknowledged batches.
func writePhase(cfg restartConfig, acked *atomic.Int64) error {
	c, err := client.DialConnRetry(cfg.addr, 15*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	keys := make([]uint64, 0, checkChunk)
	vals := make([]uint64, 0, checkChunk)
	for lo := 0; lo < cfg.maxKeys; lo += checkChunk {
		hi := lo + checkChunk
		if hi > cfg.maxKeys {
			hi = cfg.maxKeys
		}
		keys, vals = keys[:0], vals[:0]
		for i := lo; i < hi; i++ {
			keys = append(keys, workload.Key(cfg.seed, uint64(i)))
			vals = append(vals, uint64(i))
		}
		if err := c.PutBatch(keys, vals); err != nil {
			return err // the kill landed (or the server fell over early)
		}
		acked.Store(int64(hi))
	}
	return nil
}

// verifyPhase reads back every acknowledged key after the restart.
func verifyPhase(cfg restartConfig, n int64) (missing, mismatched int64, err error) {
	c, err := client.DialConnRetry(cfg.addr, 30*time.Second)
	if err != nil {
		return 0, 0, fmt.Errorf("server did not come back: %w", err)
	}
	defer c.Close()
	keys := make([]uint64, 0, checkChunk)
	out := make([]uint64, checkChunk)
	for lo := int64(0); lo < n; lo += checkChunk {
		hi := lo + checkChunk
		if hi > n {
			hi = n
		}
		keys = keys[:0]
		for i := lo; i < hi; i++ {
			keys = append(keys, workload.Key(cfg.seed, uint64(i)))
		}
		oks, err := c.GetBatch(keys, out[:len(keys)])
		if err != nil {
			return missing, mismatched, fmt.Errorf("verify read: %w", err)
		}
		for j, ok := range oks {
			switch {
			case !ok:
				missing++
			case out[j] != uint64(lo)+uint64(j):
				mismatched++
			}
		}
	}
	return missing, mismatched, nil
}

// Command ehload is the YCSB-style load generator for ehserver: it
// preloads a keyspace, then drives one of the standard operation mixes
// (A/B/C/D/F, zipfian or uniform) over N client connections with deep
// pipelining, verifying every response, and reports throughput plus an
// HDR latency histogram (p50/p95/p99) both on stdout and as
// BENCH_server.json. The driver itself lives in internal/bench, shared
// with cmd/ehbench's experiment grid.
//
// Latency is recorded per pipelined round trip: one Flush of -pipeline
// operations is one sample, which is the unit of work the protocol (and
// the server's coalescer) is built around. Set -pipeline 1 for per-op
// round-trip latency.
//
// Every response is verified (values must equal the key's index; reads
// must hit); any mismatch, protocol error, or transport error counts in
// "errors" and makes ehload exit non-zero — the CI smoke test relies on
// this.
//
// With -restart-check, ehload is a crash-recovery verifier instead of a
// benchmark: it starts the server itself (-server-cmd, which must point
// at a WAL directory), writes acknowledged keys, kills the server with
// SIGKILL mid-run, restarts it, and fails unless every acknowledged
// write survived.
//
// With -failover-check, it verifies replication failover the same way:
// it starts a primary (-primary-cmd, which must run -repl-sync) and a
// follower (-follower-cmd), waits for the follower to attach, writes
// acknowledged keys, kills the primary with SIGKILL mid-run, promotes
// the follower over the wire, and fails unless every acknowledged write
// is on the new primary.
//
// Usage:
//
//	ehload -addr :6380 -mix A -conns 4 -pipeline 32 -load 100000 -duration 10s
//	ehload -mix C -dist uniform -batch 64 -out BENCH_server.json
//	ehload -mix F -batch mixed -duration 5s   # one MIXEDBATCH frame per round trip
//	ehload -restart-check -addr 127.0.0.1:16390 -load 200000 -duration 2s \
//	       -server-cmd "ehserver -addr 127.0.0.1:16390 -kind eh -wal-dir /tmp/wal -fsync always"
//	ehload -failover-check -addr 127.0.0.1:16395 -follower-addr 127.0.0.1:16396 \
//	       -load 200000 -duration 2s \
//	       -primary-cmd "ehserver -addr 127.0.0.1:16395 -kind ht -wal-dir /tmp/p -repl-sync" \
//	       -follower-cmd "ehserver -addr 127.0.0.1:16396 -kind ht -wal-dir /tmp/f -replica-of 127.0.0.1:16395"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"vmshortcut/internal/bench"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/workload"
)

func main() {
	addr := flag.String("addr", "localhost:6380", "server address")
	mixName := flag.String("mix", "A", "YCSB mix: A (50/50 r/u) | B (95/5) | C (read-only) | D (95/5 r/insert) | F (50/50 r/rmw)")
	dist := flag.String("dist", "", "request distribution override: zipfian | uniform (default: the mix's own)")
	conns := flag.Int("conns", 4, "client connections, one worker goroutine each")
	pipeline := flag.Int("pipeline", 32, "operations in flight per connection round trip")
	batch := flag.String("batch", "0", "native batch frames: N gathers same-kind runs into batch frames of up to N ops; 'mixed' submits each round trip as one MIXEDBATCH frame; 0 = pipelined single-op frames")
	load := flag.Int("load", 100_000, "keyspace entries preloaded before the measured run")
	warmup := flag.Duration("warmup", 0, "drive the workload for this long after the preload and discard the results, so the measured run starts warm")
	duration := flag.Duration("duration", 10*time.Second, "measured run length")
	ops := flag.Int("ops", 0, "fixed op budget per connection instead of -duration (0 = use -duration)")
	seed := flag.Uint64("seed", 42, "keyspace and workload seed")
	out := flag.String("out", "BENCH_server.json", "benchmark JSON output path (empty = none)")
	adminAddr := flag.String("admin-addr", "", "server admin HTTP address (its -admin flag); scrapes /metrics around the measured run and embeds the server-side stage breakdown in the report")
	sample := flag.Float64("sample", 0, "trace-sampling probability per pipelined round trip, 0..1; sampled traces land in the server's flight recorder (its /tracez admin endpoint)")
	statsDelta := flag.Bool("stats-delta", false, "print the server-side delta for the measured window (ops, coalesced batches, rejects, per-stage latency); requires -admin-addr")
	readCache := flag.Bool("read-cache", false, "record that the server runs its hot-key read cache (ehserver -read-cache); flows into the report so runs stay self-describing")
	adaptiveWindow := flag.Bool("batch-window-adaptive", false, "record that the server retunes its coalescing window adaptively (ehserver -batch-window-adaptive); flows into the report")
	restartCheck := flag.Bool("restart-check", false, "crash-recovery verification instead of a benchmark: start the server (-server-cmd), write acknowledged keys, kill -9 mid-run, restart, verify nothing acknowledged was lost")
	serverCmd := flag.String("server-cmd", "", "server command line managed by -restart-check; must include -wal-dir (split on whitespace, no shell quoting)")
	failoverCheck := flag.Bool("failover-check", false, "replication-failover verification instead of a benchmark: start a primary (-primary-cmd, which must run -repl-sync) and a follower (-follower-cmd), write acknowledged keys, kill -9 the primary mid-run, promote the follower, verify nothing acknowledged was lost")
	primaryCmd := flag.String("primary-cmd", "", "primary command line managed by -failover-check; must include -wal-dir and -repl-sync (split on whitespace, no shell quoting)")
	followerCmd := flag.String("follower-cmd", "", "follower command line managed by -failover-check; must include -replica-of")
	followerAddr := flag.String("follower-addr", "", "follower server address for -failover-check (the primary's is -addr)")
	flag.Parse()

	// The verification modes manage their own server processes and run no
	// measured window, so the read-path annotations are meaningless there;
	// reject the combination before dispatching into either mode.
	if (*readCache || *adaptiveWindow) && (*restartCheck || *failoverCheck) {
		usageError("-read-cache and -batch-window-adaptive describe a measured benchmark run; they cannot be combined with -restart-check or -failover-check")
	}
	if *restartCheck {
		if err := runRestartCheck(restartConfig{
			addr: *addr, serverCmd: *serverCmd,
			maxKeys: *load, duration: *duration, seed: *seed,
		}); err != nil {
			log.Fatalf("restart-check: %v", err)
		}
		return
	}
	if *failoverCheck {
		if *followerAddr == "" {
			usageError("-failover-check requires -follower-addr")
		}
		if err := runFailoverCheck(failoverConfig{
			primaryAddr: *addr, followerAddr: *followerAddr,
			primaryCmd: *primaryCmd, followerCmd: *followerCmd,
			maxKeys: *load, duration: *duration, seed: *seed, out: *out,
		}); err != nil {
			log.Fatalf("failover-check: %v", err)
		}
		return
	}

	mix, ok := workload.MixByName(*mixName)
	if !ok {
		usageError("unknown mix %q (want A, B, C, D, or F)", *mixName)
	}
	switch strings.ToLower(*dist) {
	case "":
	case "zipfian", "zipf":
		mix.Zipf = true
	case "uniform":
		mix.Zipf = false
	default:
		usageError("unknown distribution %q (want zipfian or uniform)", *dist)
	}
	if *load <= 0 {
		usageError("-load must be positive: reads need a non-empty keyspace")
	}
	if *conns <= 0 || *pipeline <= 0 {
		usageError("-conns and -pipeline must be positive")
	}
	if *ops < 0 {
		usageError("-ops must be non-negative")
	}
	if *ops == 0 && *duration <= 0 {
		usageError("-duration must be positive when -ops is 0 (the run would never stop)")
	}
	if *warmup < 0 {
		usageError("-warmup must be non-negative")
	}
	if *statsDelta && *adminAddr == "" {
		usageError("-stats-delta requires -admin-addr: the delta comes from /metrics scrapes")
	}
	if *sample < 0 || *sample > 1 {
		usageError("-sample must be in [0, 1], got %v", *sample)
	}
	batchMode, batchSize := bench.BatchNone, 0
	switch strings.ToLower(*batch) {
	case "", "0", bench.BatchNone:
	case bench.BatchMixed:
		batchMode = bench.BatchMixed
	default:
		n, err := strconv.Atoi(*batch)
		if err != nil || n < 0 {
			usageError("-batch must be a non-negative size or 'mixed', got %q", *batch)
		}
		if n > 0 {
			batchMode, batchSize = bench.BatchKind, n
		}
	}
	cfg := bench.Config{
		Addr: *addr, Mix: mix, Conns: *conns,
		Pipeline: *pipeline, BatchSize: batchSize, BatchMode: batchMode, Load: *load,
		Warmup: *warmup, Duration: *duration, Ops: *ops, Seed: *seed,
		AdminAddr: *adminAddr, SampleRate: *sample,
		ReadCache: *readCache, AdaptiveWindow: *adaptiveWindow,
	}

	report, err := bench.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report.WriteSummary(os.Stdout)
	if *statsDelta {
		// A missing delta means the scrapes did not bracket the run after
		// all; reporting zeros here would read as "the server did nothing",
		// which is exactly the wrong conclusion. Fail loudly instead.
		if report.ServerDelta == nil {
			log.Fatalf("-stats-delta: no server delta in the report: the /metrics scrapes against %s did not produce one", *adminAddr)
		}
		writeStatsDelta(os.Stdout, report.ServerDelta)
	}
	if *out != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if report.Errors > 0 {
		log.Fatalf("%d errors during the run", report.Errors)
	}
}

// writeStatsDelta prints the -stats-delta block: the server's own view
// of exactly the measured window, from /metrics scrapes bracketing it.
// The caller has already established sd is non-nil; a scrape failure
// aborts the run inside bench.Run instead of reaching here.
func writeStatsDelta(w io.Writer, sd *bench.ServerDelta) {
	fmt.Fprintln(w, "server delta (measured window):")
	fmt.Fprintf(w, "  ops=%d frames=%d coalesced_batches=%d coalesced_ops=%d errors=%d rejects=%d slow_ops=%d\n",
		sd.Ops, sd.Frames, sd.CoalescedBatches, sd.CoalescedOps, sd.Errors, sd.Rejects, sd.SlowOps)
	if sd.FastpathCache+sd.FastpathSeqlock+sd.FastpathLocked > 0 {
		fmt.Fprintf(w, "  read_fastpath cache=%d seqlock=%d locked=%d cache_misses=%d cache_hit_rate=%.3f\n",
			sd.FastpathCache, sd.FastpathSeqlock, sd.FastpathLocked, sd.CacheMisses, sd.CacheHitRate)
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		sw, ok := sd.Stages[s.String()]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  stage %-13s count=%-9d mean %-10s p50 %-10s p99 %s\n",
			s, sw.Count, time.Duration(sw.MeanNS).Round(time.Nanosecond),
			time.Duration(sw.P50NS), time.Duration(sw.P99NS))
	}
}

// usageError reports a flag-validation failure the way the flag package
// does: the message, then the usage text, then exit code 2 — so scripts
// can tell "you invoked me wrong" from a failed run (exit 1).
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ehload: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

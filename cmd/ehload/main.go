// Command ehload is the YCSB-style load generator for ehserver: it
// preloads a keyspace, then drives one of the standard operation mixes
// (A/B/C/D/F, zipfian or uniform) over N client connections with deep
// pipelining, verifying every response, and reports throughput plus an
// HDR latency histogram (p50/p95/p99) both on stdout and as
// BENCH_server.json.
//
// Latency is recorded per pipelined round trip: one Flush of -pipeline
// operations is one sample, which is the unit of work the protocol (and
// the server's coalescer) is built around. Set -pipeline 1 for per-op
// round-trip latency.
//
// Every response is verified (values must equal the key's index; reads
// must hit); any mismatch, protocol error, or transport error counts in
// "errors" and makes ehload exit non-zero — the CI smoke test relies on
// this.
//
// With -restart-check, ehload is a crash-recovery verifier instead of a
// benchmark: it starts the server itself (-server-cmd, which must point
// at a WAL directory), writes acknowledged keys, kills the server with
// SIGKILL mid-run, restarts it, and fails unless every acknowledged
// write survived.
//
// With -failover-check, it verifies replication failover the same way:
// it starts a primary (-primary-cmd, which must run -repl-sync) and a
// follower (-follower-cmd), waits for the follower to attach, writes
// acknowledged keys, kills the primary with SIGKILL mid-run, promotes
// the follower over the wire, and fails unless every acknowledged write
// is on the new primary.
//
// Usage:
//
//	ehload -addr :6380 -mix A -conns 4 -pipeline 32 -load 100000 -duration 10s
//	ehload -mix C -dist uniform -batch 64 -out BENCH_server.json
//	ehload -mix F -batch mixed -duration 5s   # one MIXEDBATCH frame per round trip
//	ehload -restart-check -addr 127.0.0.1:16390 -load 200000 -duration 2s \
//	       -server-cmd "ehserver -addr 127.0.0.1:16390 -kind eh -wal-dir /tmp/wal -fsync always"
//	ehload -failover-check -addr 127.0.0.1:16395 -follower-addr 127.0.0.1:16396 \
//	       -load 200000 -duration 2s \
//	       -primary-cmd "ehserver -addr 127.0.0.1:16395 -kind ht -wal-dir /tmp/p -repl-sync" \
//	       -follower-cmd "ehserver -addr 127.0.0.1:16396 -kind ht -wal-dir /tmp/f -replica-of 127.0.0.1:16395"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut"
	"vmshortcut/client"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/wire"
	"vmshortcut/internal/workload"
)

// Batch modes: how each worker turns its generated ops into wire frames.
const (
	batchNone  = "none"  // pipelined single-op frames (the server coalesces)
	batchKind  = "kind"  // same-kind runs as native GETBATCH/PUTBATCH frames
	batchMixed = "mixed" // each round trip as ONE MIXEDBATCH frame
)

type config struct {
	addr      string
	mix       workload.Mix
	dist      string
	conns     int
	pipeline  int
	batch     int    // batch size in kind mode; 0 otherwise
	batchMode string // batchNone | batchKind | batchMixed
	load      int
	duration  time.Duration
	ops       int
	seed      uint64
	out       string
}

func main() {
	addr := flag.String("addr", "localhost:6380", "server address")
	mixName := flag.String("mix", "A", "YCSB mix: A (50/50 r/u) | B (95/5) | C (read-only) | D (95/5 r/insert) | F (50/50 r/rmw)")
	dist := flag.String("dist", "", "request distribution override: zipfian | uniform (default: the mix's own)")
	conns := flag.Int("conns", 4, "client connections, one worker goroutine each")
	pipeline := flag.Int("pipeline", 32, "operations in flight per connection round trip")
	batch := flag.String("batch", "0", "native batch frames: N gathers same-kind runs into batch frames of up to N ops; 'mixed' submits each round trip as one MIXEDBATCH frame; 0 = pipelined single-op frames")
	load := flag.Int("load", 100_000, "keyspace entries preloaded before the measured run")
	duration := flag.Duration("duration", 10*time.Second, "measured run length")
	ops := flag.Int("ops", 0, "fixed op budget per connection instead of -duration (0 = use -duration)")
	seed := flag.Uint64("seed", 42, "keyspace and workload seed")
	out := flag.String("out", "BENCH_server.json", "benchmark JSON output path (empty = none)")
	restartCheck := flag.Bool("restart-check", false, "crash-recovery verification instead of a benchmark: start the server (-server-cmd), write acknowledged keys, kill -9 mid-run, restart, verify nothing acknowledged was lost")
	serverCmd := flag.String("server-cmd", "", "server command line managed by -restart-check; must include -wal-dir (split on whitespace, no shell quoting)")
	failoverCheck := flag.Bool("failover-check", false, "replication-failover verification instead of a benchmark: start a primary (-primary-cmd, which must run -repl-sync) and a follower (-follower-cmd), write acknowledged keys, kill -9 the primary mid-run, promote the follower, verify nothing acknowledged was lost")
	primaryCmd := flag.String("primary-cmd", "", "primary command line managed by -failover-check; must include -wal-dir and -repl-sync (split on whitespace, no shell quoting)")
	followerCmd := flag.String("follower-cmd", "", "follower command line managed by -failover-check; must include -replica-of")
	followerAddr := flag.String("follower-addr", "", "follower server address for -failover-check (the primary's is -addr)")
	flag.Parse()

	if *restartCheck {
		if err := runRestartCheck(restartConfig{
			addr: *addr, serverCmd: *serverCmd,
			maxKeys: *load, duration: *duration, seed: *seed,
		}); err != nil {
			log.Fatalf("restart-check: %v", err)
		}
		return
	}
	if *failoverCheck {
		if *followerAddr == "" {
			usageError("-failover-check requires -follower-addr")
		}
		if err := runFailoverCheck(failoverConfig{
			primaryAddr: *addr, followerAddr: *followerAddr,
			primaryCmd: *primaryCmd, followerCmd: *followerCmd,
			maxKeys: *load, duration: *duration, seed: *seed, out: *out,
		}); err != nil {
			log.Fatalf("failover-check: %v", err)
		}
		return
	}

	mix, ok := workload.MixByName(*mixName)
	if !ok {
		usageError("unknown mix %q (want A, B, C, D, or F)", *mixName)
	}
	switch strings.ToLower(*dist) {
	case "":
	case "zipfian", "zipf":
		mix.Zipf = true
	case "uniform":
		mix.Zipf = false
	default:
		usageError("unknown distribution %q (want zipfian or uniform)", *dist)
	}
	if *load <= 0 {
		usageError("-load must be positive: reads need a non-empty keyspace")
	}
	if *conns <= 0 || *pipeline <= 0 {
		usageError("-conns and -pipeline must be positive")
	}
	if *ops < 0 {
		usageError("-ops must be non-negative")
	}
	if *ops == 0 && *duration <= 0 {
		usageError("-duration must be positive when -ops is 0 (the run would never stop)")
	}
	batchMode, batchSize := batchNone, 0
	switch strings.ToLower(*batch) {
	case "", "0", batchNone:
	case batchMixed:
		batchMode = batchMixed
	default:
		n, err := strconv.Atoi(*batch)
		if err != nil || n < 0 {
			usageError("-batch must be a non-negative size or 'mixed', got %q", *batch)
		}
		if n > 0 {
			batchMode, batchSize = batchKind, n
		}
	}
	cfg := config{
		addr: *addr, mix: mix, dist: distName(mix), conns: *conns,
		pipeline: *pipeline, batch: batchSize, batchMode: batchMode, load: *load,
		duration: *duration, ops: *ops, seed: *seed, out: *out,
	}

	report, err := run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	printSummary(report)
	if cfg.out != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(cfg.out, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", cfg.out)
	}
	if report.Errors > 0 {
		log.Fatalf("%d errors during the run", report.Errors)
	}
}

// usageError reports a flag-validation failure the way the flag package
// does: the message, then the usage text, then exit code 2 — so scripts
// can tell "you invoked me wrong" from a failed run (exit 1).
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ehload: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func distName(mix workload.Mix) string {
	if mix.Zipf {
		return "zipfian"
	}
	return "uniform"
}

// report is the BENCH_server.json schema.
type report struct {
	Bench    string `json:"bench"`
	Addr     string `json:"addr"`
	Mix      string `json:"mix"`
	Dist     string `json:"dist"`
	Conns    int    `json:"conns"`
	Pipeline int    `json:"pipeline"`
	// BatchMode is how ops became frames: none | kind | mixed. Batch is
	// the kind-mode batch size; it predates BatchMode (it used to be the
	// only batch field and read 0 ambiguously) and is kept one release
	// for consumers that still parse it.
	BatchMode  string  `json:"batch_mode"`
	Batch      int     `json:"batch"`
	Loaded     int     `json:"loaded"`
	Seed       uint64  `json:"seed"`
	DurationS  float64 `json:"duration_seconds"`
	Ops        uint64  `json:"ops"`
	Errors     uint64  `json:"errors"`
	Throughput float64 `json:"throughput_ops_per_sec"`
	LoadS      float64 `json:"load_seconds"`
	LoadRate   float64 `json:"load_ops_per_sec"`

	// Latency of one pipelined round trip (Pipeline ops per sample),
	// nanoseconds.
	Latency latencyNS `json:"latency_ns"`

	// Operations by YCSB kind (an RMW counts once here but is two wire
	// ops).
	OpCounts map[string]uint64 `json:"op_counts"`

	Server wire.ServerCounters `json:"server"`
	Store  vmshortcut.Stats    `json:"store"`
	// Durability is the server store's WAL state (zero without -wal-dir).
	Durability wire.DurabilityCounters `json:"durability"`
}

type latencyNS struct {
	Samples uint64  `json:"samples"`
	Mean    float64 `json:"mean"`
	Min     uint64  `json:"min"`
	P50     uint64  `json:"p50"`
	P95     uint64  `json:"p95"`
	P99     uint64  `json:"p99"`
	Max     uint64  `json:"max"`
}

// workerResult is one connection's tally.
type workerResult struct {
	ops      uint64
	errors   uint64
	opCounts [4]uint64 // by workload.OpKind
	hist     harness.HDR
}

func run(cfg config) (*report, error) {
	// Preload [0, load) across the connections, through native batch
	// frames — PutBatch is the bulk-load path.
	loadStart := time.Now()
	if err := preload(cfg); err != nil {
		return nil, fmt.Errorf("preload: %w", err)
	}
	loadDur := time.Since(loadStart)

	results := make([]*workerResult, cfg.conns)
	errs := make([]error, cfg.conns)
	var stop atomic.Bool
	if cfg.ops == 0 {
		time.AfterFunc(cfg.duration, func() { stop.Store(true) })
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = worker(cfg, w, &stop)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rep := &report{
		Bench: "server", Addr: cfg.addr, Mix: cfg.mix.Name, Dist: cfg.dist,
		Conns: cfg.conns, Pipeline: cfg.pipeline,
		BatchMode: cfg.batchMode, Batch: cfg.batch,
		Loaded: cfg.load, Seed: cfg.seed,
		DurationS: elapsed.Seconds(),
		LoadS:     loadDur.Seconds(),
		OpCounts:  map[string]uint64{},
	}
	if s := loadDur.Seconds(); s > 0 {
		rep.LoadRate = float64(cfg.load) / s
	}
	var hist harness.HDR
	for _, r := range results {
		rep.Ops += r.ops
		rep.Errors += r.errors
		hist.Merge(&r.hist)
		for kind, n := range r.opCounts {
			rep.OpCounts[opName(workload.OpKind(kind))] += n
		}
	}
	rep.Throughput = float64(rep.Ops) / elapsed.Seconds()
	rep.Latency = latencyNS{
		Samples: hist.Count(),
		Mean:    hist.Mean(),
		Min:     hist.Min(),
		P50:     hist.Percentile(50),
		P95:     hist.Percentile(95),
		P99:     hist.Percentile(99),
		Max:     hist.Max(),
	}

	// Final server/store snapshot for the report.
	c, err := client.DialConn(cfg.addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return nil, err
	}
	rep.Server = st.Server
	rep.Store = st.Store
	rep.Durability = st.Durability
	return rep, nil
}

func opName(k workload.OpKind) string {
	switch k {
	case workload.OpRead:
		return "read"
	case workload.OpUpdate:
		return "update"
	case workload.OpInsert:
		return "insert"
	default:
		return "rmw"
	}
}

// preload bulk-loads keys [0, load) over cfg.conns parallel connections.
func preload(cfg config) error {
	const chunk = 4096
	errs := make([]error, cfg.conns)
	harness.ParallelChunks(cfg.load, cfg.conns, func(w, lo, hi int) {
		c, err := client.DialConn(cfg.addr)
		if err != nil {
			errs[w] = err
			return
		}
		defer c.Close()
		keys := make([]uint64, 0, chunk)
		vals := make([]uint64, 0, chunk)
		harness.Chunks(hi-lo, chunk, func(clo, chi int) {
			if errs[w] != nil {
				return
			}
			keys, vals = keys[:0], vals[:0]
			for i := lo + clo; i < lo+chi; i++ {
				keys = append(keys, workload.Key(cfg.seed, uint64(i)))
				vals = append(vals, uint64(i))
			}
			errs[w] = c.PutBatch(keys, vals)
		})
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// expected tracks what one queued wire op must return for the run to be
// error-free.
type expected struct {
	read bool   // a GET whose value must equal idx
	idx  uint64 // global key index
}

// worker drives one connection until the stop flag (or its op budget) is
// reached. Each worker owns a disjoint insert range: its generator's
// fresh local indexes are strided across workers, so no worker ever reads
// a key another worker is concurrently inserting.
func worker(cfg config, w int, stop *atomic.Bool) (*workerResult, error) {
	c, err := client.DialConn(cfg.addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	res := &workerResult{}
	gen := workload.NewYCSB(cfg.seed+uint64(w)*0x9E3779B9, cfg.mix, cfg.load)
	global := func(local uint64) uint64 {
		if local < uint64(cfg.load) {
			return local
		}
		return uint64(cfg.load) + (local-uint64(cfg.load))*uint64(cfg.conns) + uint64(w)
	}

	p := c.Pipeline()
	var exp []expected
	var mixed client.MixedBatch
	var batchKeys, batchVals []uint64
	var batchRead bool
	flushBatch := func() {
		if cfg.batchMode == batchMixed {
			// The whole round trip is one MIXEDBATCH frame: one decode,
			// one store call, one WAL record server-side.
			p.Mixed(&mixed)
			mixed.Reset()
			return
		}
		if len(batchKeys) == 0 {
			return
		}
		if batchRead {
			p.GetBatch(batchKeys)
		} else {
			p.PutBatch(batchKeys, batchVals)
		}
		batchKeys = batchKeys[:0]
		batchVals = batchVals[:0]
	}
	queue := func(read bool, idx uint64) {
		key := workload.Key(cfg.seed, idx)
		switch {
		case cfg.batchMode == batchMixed:
			if read {
				mixed.Get(key)
			} else {
				mixed.Put(key, idx)
			}
		case cfg.batch > 0:
			if len(batchKeys) > 0 && (batchRead != read || len(batchKeys) >= cfg.batch) {
				flushBatch()
			}
			batchRead = read
			batchKeys = append(batchKeys, key)
			if !read {
				batchVals = append(batchVals, idx)
			}
		case read:
			p.Get(key)
		default:
			p.Put(key, idx)
		}
		exp = append(exp, expected{read: read, idx: idx})
	}

	budget := cfg.ops
	var results []client.Result
	for !stop.Load() && (cfg.ops == 0 || budget > 0) {
		exp = exp[:0]
		for i := 0; i < cfg.pipeline; i++ {
			op := gen.Next()
			res.opCounts[op.Kind]++
			idx := global(op.KeyIndex)
			switch op.Kind {
			case workload.OpRead:
				queue(true, idx)
			case workload.OpUpdate, workload.OpInsert:
				queue(false, idx)
			case workload.OpReadModifyWrite:
				queue(true, idx)
				queue(false, idx)
			}
		}
		flushBatch()

		start := time.Now()
		results, err = p.Flush(results[:0])
		if err != nil {
			return nil, fmt.Errorf("conn %d: %w", w, err)
		}
		res.hist.Record(uint64(time.Since(start).Nanoseconds()))
		res.ops += uint64(len(results))
		budget -= len(results)
		for i, r := range results {
			e := exp[i]
			switch {
			case r.Err != nil:
				res.errors++
			case e.read && (!r.Found || r.Value != e.idx):
				res.errors++
			case !e.read && !r.Found:
				res.errors++
			}
		}
	}
	return res, nil
}

func printSummary(r *report) {
	batch := r.BatchMode
	if r.BatchMode == batchKind {
		batch = fmt.Sprintf("%s(%d)", batchKind, r.Batch)
	}
	fmt.Printf("mix %s (%s)  conns=%d pipeline=%d batch=%s  loaded=%d\n",
		r.Mix, r.Dist, r.Conns, r.Pipeline, batch, r.Loaded)
	fmt.Printf("load: %d entries in %.2fs (%.0f ops/s)\n", r.Loaded, r.LoadS, r.LoadRate)
	fmt.Printf("run:  %d ops in %.2fs = %.0f ops/s, %d errors\n",
		r.Ops, r.DurationS, r.Throughput, r.Errors)
	fmt.Printf("latency per round trip (%d ops deep): p50 %s  p95 %s  p99 %s  max %s\n",
		r.Pipeline,
		time.Duration(r.Latency.P50), time.Duration(r.Latency.P95),
		time.Duration(r.Latency.P99), time.Duration(r.Latency.Max))
	fmt.Printf("server: %d coalesced batches carrying %d ops; store batches I/L/D %d/%d/%d\n",
		r.Server.CoalescedBatches, r.Server.CoalescedOps,
		r.Store.InsertBatches, r.Store.LookupBatches, r.Store.DeleteBatches)
	if d := r.Durability; d.WALRecords > 0 {
		fmt.Printf("durability: %d WAL records, %d fsyncs, durable LSN %d, snapshot LSN %d\n",
			d.WALRecords, d.WALSyncs, d.DurableLSN, d.SnapshotLSN)
	}
}

// The -failover-check mode: an end-to-end replication-failover
// verification, the replication analogue of -restart-check. ehload
// manages both processes itself — start a primary (which must run
// synchronous replication) and a follower, wait until the follower is
// attached, write acknowledged keys against the primary, kill -9 the
// primary mid-run, promote the follower over the wire, and verify that
// every write acknowledged before the kill is present on the new
// primary with the right value. A single missing or mismatched key
// fails the check (and the CI replication-smoke job built on it).
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"vmshortcut/client"
)

// failoverConfig parameterizes one failover check.
type failoverConfig struct {
	primaryAddr  string
	followerAddr string
	primaryCmd   string
	followerCmd  string
	maxKeys      int           // stop writing after this many acknowledged keys
	duration     time.Duration // kill the primary this long into the write phase
	seed         uint64
	out          string // JSON report path ("" = none)
}

// failoverReport is the -out JSON schema of a failover check.
type failoverReport struct {
	Bench      string  `json:"bench"` // "failover-check"
	Acked      int64   `json:"acked_writes"`
	Missing    int64   `json:"missing"`
	Mismatched int64   `json:"mismatched"`
	PromoteS   float64 `json:"promote_seconds"`
	VerifyS    float64 `json:"verify_seconds"`
	OK         bool    `json:"ok"`
}

func runFailoverCheck(cfg failoverConfig) error {
	switch {
	case cfg.primaryCmd == "" || cfg.followerCmd == "":
		return errors.New("-primary-cmd and -follower-cmd are both required")
	case !strings.Contains(cfg.primaryCmd, "-wal-dir"):
		return errors.New("-primary-cmd must include -wal-dir: replication ships the write-ahead log")
	case !strings.Contains(cfg.primaryCmd, "-repl-sync"):
		// Without synchronous replication an acknowledged write may not
		// have reached the follower when the kill lands, and "no acked
		// write lost" is not a claim the check can make.
		return errors.New("-primary-cmd must include -repl-sync: only synchronous replication guarantees acknowledged writes survive failover")
	case !strings.Contains(cfg.followerCmd, "-replica-of"):
		return errors.New("-follower-cmd must include -replica-of: the follower must replicate from the primary")
	case strings.ContainsAny(cfg.primaryCmd+cfg.followerCmd, `"'`):
		return errors.New("command lines are split on whitespace and do not support quoting; use paths without spaces")
	case cfg.maxKeys <= 0:
		return errors.New("-load must be positive (it caps the written keyspace)")
	case cfg.duration <= 0:
		return errors.New("-duration must be positive (it sets the kill point)")
	}

	start := func(cmdline string) (*exec.Cmd, error) {
		parts := strings.Fields(cmdline)
		cmd := exec.Command(parts[0], parts[1:]...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("starting %s: %w", parts[0], err)
		}
		return cmd, nil
	}

	primary, err := start(cfg.primaryCmd)
	if err != nil {
		return err
	}
	primaryDown := false
	defer func() {
		if !primaryDown {
			primary.Process.Kill()
			primary.Wait()
		}
	}()
	follower, err := start(cfg.followerCmd)
	if err != nil {
		return err
	}
	defer func() {
		follower.Process.Signal(syscall.SIGTERM)
		follower.Wait()
	}()

	// Soundness gate: until the follower is attached, the primary
	// acknowledges in degraded (unreplicated) mode and those writes carry
	// no failover guarantee — so nothing is written before this.
	if err := waitFollowerAttached(cfg.primaryAddr); err != nil {
		return err
	}
	fmt.Println("failover-check: follower attached; starting the write phase")

	var acked atomic.Int64
	writeErr := make(chan error, 1)
	go func() {
		writeErr <- writePhase(restartConfig{addr: cfg.primaryAddr, maxKeys: cfg.maxKeys, seed: cfg.seed}, &acked)
	}()

	time.Sleep(cfg.duration)
	// kill -9 the primary: no drain, no goodbye to the follower.
	if err := primary.Process.Kill(); err != nil {
		return fmt.Errorf("kill -9 primary: %w", err)
	}
	primary.Wait()
	primaryDown = true
	if err := <-writeErr; err != nil && acked.Load() == 0 {
		return fmt.Errorf("no writes acknowledged before the kill: %w", err)
	}
	n := acked.Load()
	fmt.Printf("failover-check: %d writes acknowledged, primary killed with SIGKILL\n", n)
	if n == 0 {
		return errors.New("the write phase acknowledged nothing; increase -duration")
	}

	// Promote the follower over the wire — the same PROMOTE frame any
	// operator tooling would send.
	promoteStart := time.Now()
	fc, err := client.DialConnRetry(cfg.followerAddr, 15*time.Second)
	if err != nil {
		return fmt.Errorf("dialing follower: %w", err)
	}
	if err := fc.Promote(); err != nil {
		fc.Close()
		return fmt.Errorf("promote: %w", err)
	}
	fc.Close()
	promoteDur := time.Since(promoteStart)
	fmt.Printf("failover-check: follower promoted in %s\n", promoteDur.Round(time.Millisecond))

	verifyStart := time.Now()
	missing, mismatched, err := verifyPhase(restartConfig{addr: cfg.followerAddr, seed: cfg.seed}, n)
	if err != nil {
		return err
	}
	verifyDur := time.Since(verifyStart)
	fmt.Printf("failover-check: verified %d acknowledged writes on the new primary: %d missing, %d mismatched\n",
		n, missing, mismatched)

	// The new primary must also take writes now.
	fc2, err := client.DialConnRetry(cfg.followerAddr, 15*time.Second)
	if err != nil {
		return err
	}
	werr := fc2.Put(^uint64(0), 1)
	fc2.Close()
	if werr != nil {
		return fmt.Errorf("post-promote write refused: %w", werr)
	}

	if cfg.out != "" {
		rep := failoverReport{
			Bench: "failover-check", Acked: n,
			Missing: missing, Mismatched: mismatched,
			PromoteS: promoteDur.Seconds(), VerifyS: verifyDur.Seconds(),
			OK: missing+mismatched == 0,
		}
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.out)
	}
	if missing+mismatched > 0 {
		return fmt.Errorf("%d acknowledged writes lost in failover (%d missing, %d wrong value)", missing+mismatched, missing, mismatched)
	}
	fmt.Println("failover-check: OK — no acknowledged write was lost")
	return nil
}

// waitFollowerAttached polls the primary's STATS until its replication
// source reports a connected follower.
func waitFollowerAttached(addr string) error {
	c, err := client.DialConnRetry(addr, 15*time.Second)
	if err != nil {
		return fmt.Errorf("dialing primary: %w", err)
	}
	defer c.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Stats()
		if err != nil {
			return fmt.Errorf("primary stats: %w", err)
		}
		if st.Replication != nil && st.Replication.Primary != nil && st.Replication.Primary.Followers >= 1 {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("follower never attached to the primary (is -replica-of pointing at the right address?)")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

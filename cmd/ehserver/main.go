// Command ehserver serves a vmshortcut.Store over TCP with the binary
// wire protocol of package server: GET/PUT/DEL/STATS plus native batch
// frames, with pipelined requests coalesced into store batch calls.
//
// Every Open option is a flag, so the served index can be shaped exactly
// like the in-process experiments: kind, shard count, capacity
// pre-sizing, load factors, the Shortcut-EH mapper knobs, and so on.
//
// SIGINT/SIGTERM shut down gracefully: accepting stops, in-flight and
// pipelined requests drain, the shortcut directory is given -waitsync to
// catch up, and the store closes.
//
// Usage:
//
//	ehserver -addr :6380 -kind shortcut-eh -shards 4 -batch-window 0
//	ehserver -kind ht -capacity 10000000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vmshortcut"
	"vmshortcut/server"
)

func main() {
	// Serving flags.
	addr := flag.String("addr", ":6380", "listen address")
	batchWindow := flag.Duration("batch-window", 0, "how long the per-connection coalescer waits for more pipelined requests before executing a batch (0 = only coalesce what is already buffered)")
	maxBatch := flag.Int("max-batch", server.DefaultMaxBatch, "max ops per coalesced store batch call")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget before connections are closed forcibly")
	waitSync := flag.Duration("waitsync", 10*time.Second, "how long shutdown waits for asynchronous maintenance (the Shortcut-EH mapper) to catch up")

	// Store shape: every Open option. Zero/negative defaults mean "not
	// set" and defer to the implementation's defaults.
	kindName := flag.String("kind", "shortcut-eh", "index kind: shortcut-eh | eh | ht | hti | ch | radix")
	shards := flag.Int("shards", 1, "hash-partition the keyspace across this many independent shards")
	capacity := flag.Int("capacity", 0, "pre-size for this many entries (required for -kind radix: the exclusive key bound)")
	maxLoad := flag.Float64("max-load-factor", 0, "occupancy threshold triggering growth/splits (default 0.35)")
	tableBytes := flag.Int("table-bytes", 0, "fixed directory size for -kind ch")
	migrationBatch := flag.Int("migration-batch", 0, "entries migrated per access for -kind hti (default 64)")
	globalDepth := flag.Int("global-depth", -1, "initial EH directory depth (overrides -capacity's derivation)")
	mergeLoad := flag.Float64("merge-load-factor", 0, "enable bucket coalescing on delete below this load factor (EH kinds)")
	poll := flag.Duration("poll", 0, "Shortcut-EH mapper poll interval (default 25ms)")
	fanIn := flag.Float64("fanin", 0, "Shortcut-EH fan-in threshold for shortcut routing (default 8)")
	adaptive := flag.Bool("adaptive", false, "Shortcut-EH: measure both access paths online instead of the fixed fan-in threshold")
	syncMaint := flag.Bool("sync-maintenance", false, "Shortcut-EH: apply shortcut maintenance on the writer instead of the mapper thread")
	noShortcut := flag.Bool("no-shortcut", false, "route every read through the traditional pointer path")
	flag.Parse()

	kind, err := parseKind(*kindName)
	if err != nil {
		log.Fatal(err)
	}

	opts := []vmshortcut.Option{
		vmshortcut.WithShards(*shards),
		// The server runs one goroutine per connection; shards=1 still
		// needs the readers-writer wrapper.
		vmshortcut.WithConcurrency(true),
		vmshortcut.WithAdaptiveRouting(*adaptive),
		vmshortcut.WithSynchronousMaintenance(*syncMaint),
		vmshortcut.WithDisableShortcut(*noShortcut),
	}
	if *capacity > 0 {
		opts = append(opts, vmshortcut.WithCapacity(*capacity))
	}
	if *maxLoad > 0 {
		opts = append(opts, vmshortcut.WithMaxLoadFactor(*maxLoad))
	}
	if *tableBytes > 0 {
		opts = append(opts, vmshortcut.WithTableBytes(*tableBytes))
	}
	if *migrationBatch > 0 {
		opts = append(opts, vmshortcut.WithMigrationBatch(*migrationBatch))
	}
	if *globalDepth >= 0 {
		opts = append(opts, vmshortcut.WithInitialGlobalDepth(uint(*globalDepth)))
	}
	if *mergeLoad > 0 {
		opts = append(opts, vmshortcut.WithMergeLoadFactor(*mergeLoad))
	}
	if *poll > 0 {
		opts = append(opts, vmshortcut.WithPollInterval(*poll))
	}
	if *fanIn > 0 {
		opts = append(opts, vmshortcut.WithFanInThreshold(*fanIn))
	}

	store, err := vmshortcut.Open(kind, opts...)
	if err != nil {
		log.Fatalf("open %s: %v", kind, err)
	}

	srv, err := server.New(server.Config{
		Store:       store,
		BatchWindow: *batchWindow,
		MaxBatch:    *maxBatch,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() {
		log.Printf("ehserver: %s (shards=%d) listening on %s", kind, *shards, *addr)
		serveErr <- srv.ListenAndServe(*addr)
	}()

	select {
	case err := <-serveErr:
		store.Close()
		log.Fatalf("serve: %v", err)
	case sig := <-sigs:
		log.Printf("ehserver: %v — draining", sig)
	}

	// Graceful shutdown: drain connections, let asynchronous maintenance
	// catch up, then release the store.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("ehserver: drain incomplete: %v", err)
	}
	<-serveErr // Serve has returned once the listener died
	if !store.WaitSync(*waitSync) {
		log.Printf("ehserver: WaitSync(%v) timed out", *waitSync)
	}
	c := srv.Counters()
	st := store.Stats()
	log.Printf("ehserver: served %d ops over %d conns (%d coalesced batches carrying %d ops, %d errors); store: %d entries, batches I/L/D %d/%d/%d",
		c.Ops, c.TotalConns, c.CoalescedBatches, c.CoalescedOps, c.Errors,
		st.Entries, st.InsertBatches, st.LookupBatches, st.DeleteBatches)
	if err := store.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
}

// parseKind resolves an index kind, tolerating dashless spellings
// ("shortcuteh" for "shortcut-eh") so scripted invocations do not need to
// remember the canonical hyphenation.
func parseKind(name string) (vmshortcut.Kind, error) {
	if k, err := vmshortcut.ParseKind(name); err == nil {
		return k, nil
	}
	stripped := strings.ReplaceAll(strings.ToLower(name), "-", "")
	for _, k := range vmshortcut.Kinds() {
		if strings.ReplaceAll(k.String(), "-", "") == stripped {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown index kind %q (want one of %v)", name, vmshortcut.Kinds())
}

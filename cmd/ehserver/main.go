// Command ehserver serves a vmshortcut.Store over TCP with the binary
// wire protocol of package server: GET/PUT/DEL/STATS plus native batch
// frames, with pipelined requests coalesced into store batch calls.
//
// Every Open option is a flag, so the served index can be shaped exactly
// like the in-process experiments: kind, shard count, capacity
// pre-sizing, load factors, the Shortcut-EH mapper knobs, and so on.
//
// With -wal-dir the store is durable: every mutation batch is logged
// (and, with -fsync always, fsynced — group-committed — before the ack),
// and startup recovers the keyspace from the newest snapshot plus the
// WAL tail before the listener comes up. kill -9 loses nothing that was
// acknowledged.
//
// A durable server is also a replication primary: replicas started with
// -replica-of stream its WAL (full-syncing via snapshot when needed) and
// serve reads; -repl-sync holds each write's acknowledgement until a
// connected replica applied it, making failover lossless for every
// acknowledged write. SIGUSR1 (or a client PROMOTE frame) promotes a
// replica to primary. -chained adds a SHA-256 hash chain over the log
// and the stream, so replicas and offline audits detect tampering.
//
// SIGINT/SIGTERM shut down gracefully: accepting stops, in-flight and
// pipelined requests drain, the shortcut directory is given -waitsync to
// catch up, a final snapshot is taken (-snapshot-on-exit), and the store
// closes.
//
// Usage:
//
//	ehserver -addr :6380 -kind shortcut-eh -shards 4 -batch-window 0
//	ehserver -kind ht -capacity 10000000
//	ehserver -kind eh -wal-dir /var/lib/ehserver -fsync always -snapshot-every 1000000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vmshortcut"
	"vmshortcut/internal/obs"
	"vmshortcut/repl"
	"vmshortcut/server"
)

func main() {
	// Serving flags.
	addr := flag.String("addr", ":6380", "listen address")
	batchWindow := flag.Duration("batch-window", 0, "how long the per-connection coalescer waits for more pipelined requests before executing a batch (0 = only coalesce what is already buffered)")
	batchWindowAdaptive := flag.Bool("batch-window-adaptive", false, "retune each connection's coalescing window from its wait outcomes: the window widens (up to -batch-window, or 100µs when unset) only while rounds fill to -max-batch with every armed wait cut short by arriving data; a round ending on a wait that expired empty collapses it to zero with probe backoff")
	maxBatch := flag.Int("max-batch", server.DefaultMaxBatch, "max ops per coalesced store batch call")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget before connections are closed forcibly")
	waitSync := flag.Duration("waitsync", 10*time.Second, "how long shutdown waits for asynchronous maintenance (the Shortcut-EH mapper) to catch up")

	// Observability: the admin listener is a second, HTTP port — metrics
	// scraping and profiling never contend with the binary protocol, and
	// /readyz keeps answering (503) while the main listener drains.
	adminAddr := flag.String("admin", "", "admin HTTP listen address serving /metrics, /statsz, /tracez, /healthz, /readyz and /debug/pprof (empty = no admin listener)")
	slowOp := flag.Duration("slow-op", 10*time.Millisecond, "log batches whose server-side time exceeds this, with a per-stage breakdown (0 = disabled)")

	// Durability: a WAL directory makes the store restart-safe — Open
	// recovers the keyspace from the newest snapshot plus the log tail
	// before the listener comes up, so a served GET never sees a
	// half-recovered store.
	walDir := flag.String("wal-dir", "", "write-ahead-log directory; empty serves from memory only")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always (ack ⇒ durable) | interval | off")
	fsyncInterval := flag.Duration("fsync-interval", 0, "background sync period for -fsync interval (default 100ms)")
	snapshotEvery := flag.Int("snapshot-every", 0, "take a snapshot (and compact the WAL) every N log records — one record is one coalesced batch (0 = only on shutdown)")
	snapshotOnExit := flag.Bool("snapshot-on-exit", true, "take a final snapshot and compact the WAL during graceful shutdown")

	// Replication: -replica-of makes this server a read replica of a
	// primary; the replication-source side needs no flag beyond -wal-dir
	// (any durable server serves REPLSYNC streams). SIGUSR1 or a client
	// PROMOTE frame promotes a replica to primary at runtime.
	replicaOf := flag.String("replica-of", "", "replicate from this primary (host:port); serves reads only until promoted (SIGUSR1 or a PROMOTE frame)")
	stalenessBound := flag.Duration("staleness-bound", 0, "refuse reads with STALE after losing the primary for this long (0 = serve reads indefinitely; requires -replica-of)")
	replSync := flag.Bool("repl-sync", false, "synchronous replication: acknowledge a write only after a connected replica applied it (requires -wal-dir)")
	chained := flag.Bool("chained", false, "maintain a tamper-evidence SHA-256 hash chain over the WAL (requires -wal-dir); with -replica-of, verify the primary's stream per record")
	replTrace := flag.Bool("repl-trace", false, "request trace metadata on the replication stream: per-record trace IDs and append timestamps flow downstream, apply spans flow back (requires -replica-of and a trace-aware primary)")

	// Store shape: every Open option. Zero/negative defaults mean "not
	// set" and defer to the implementation's defaults.
	kindName := flag.String("kind", "shortcut-eh", "index kind: shortcut-eh | eh | ht | hti | ch | radix")
	shards := flag.Int("shards", 1, "hash-partition the keyspace across this many independent shards")
	capacity := flag.Int("capacity", 0, "pre-size for this many entries (required for -kind radix: the exclusive key bound)")
	maxLoad := flag.Float64("max-load-factor", 0, "occupancy threshold triggering growth/splits (default 0.35)")
	tableBytes := flag.Int("table-bytes", 0, "fixed directory size for -kind ch")
	migrationBatch := flag.Int("migration-batch", 0, "entries migrated per access for -kind hti (default 64)")
	globalDepth := flag.Int("global-depth", -1, "initial EH directory depth (overrides -capacity's derivation)")
	mergeLoad := flag.Float64("merge-load-factor", 0, "enable bucket coalescing on delete below this load factor (EH kinds)")
	poll := flag.Duration("poll", 0, "Shortcut-EH mapper poll interval (default 25ms)")
	fanIn := flag.Float64("fanin", 0, "Shortcut-EH fan-in threshold for shortcut routing (default 8)")
	adaptive := flag.Bool("adaptive", false, "Shortcut-EH: measure both access paths online instead of the fixed fan-in threshold")
	syncMaint := flag.Bool("sync-maintenance", false, "Shortcut-EH: apply shortcut maintenance on the writer instead of the mapper thread")
	noShortcut := flag.Bool("no-shortcut", false, "route every read through the traditional pointer path")
	readCache := flag.Bool("read-cache", false, "front GETs with a per-shard hot-key read cache (invalidated wholesale on any write to the shard); best under skewed read-heavy traffic")
	flag.Parse()

	kind, err := parseKind(*kindName)
	if err != nil {
		log.Fatal(err)
	}
	if *stalenessBound != 0 && *replicaOf == "" {
		log.Fatal("-staleness-bound requires -replica-of: only a replica has a primary to be stale against")
	}
	if *replSync && *walDir == "" {
		log.Fatal("-repl-sync requires -wal-dir: replication ships the write-ahead log")
	}
	if *chained && *walDir == "" && *replicaOf == "" {
		log.Fatal("-chained requires -wal-dir (chain the local WAL) or -replica-of (verify the primary's stream)")
	}
	if *replTrace && *replicaOf == "" {
		log.Fatal("-repl-trace requires -replica-of: the follower side requests trace metadata; a primary serves it automatically")
	}

	// Metrics exist even without -admin: the STATS frame's obs section and
	// the slow-op log want them, and pre-registered counters cost nothing
	// until recorded into.
	metrics := server.NewMetrics(obs.NewRegistry())

	opts := []vmshortcut.Option{
		vmshortcut.WithShards(*shards),
		// The server runs one goroutine per connection; shards=1 still
		// needs the readers-writer wrapper.
		vmshortcut.WithConcurrency(true),
		vmshortcut.WithAdaptiveRouting(*adaptive),
		vmshortcut.WithSynchronousMaintenance(*syncMaint),
		vmshortcut.WithDisableShortcut(*noShortcut),
		vmshortcut.WithReadCache(*readCache),
		vmshortcut.WithSeqlockRetryHist(metrics.Registry().Hist(
			"eh_seqlock_retry_attempts",
			"Retries needed per successful optimistic GET pass.")),
	}
	if *capacity > 0 {
		opts = append(opts, vmshortcut.WithCapacity(*capacity))
	}
	if *maxLoad > 0 {
		opts = append(opts, vmshortcut.WithMaxLoadFactor(*maxLoad))
	}
	if *tableBytes > 0 {
		opts = append(opts, vmshortcut.WithTableBytes(*tableBytes))
	}
	if *migrationBatch > 0 {
		opts = append(opts, vmshortcut.WithMigrationBatch(*migrationBatch))
	}
	if *globalDepth >= 0 {
		opts = append(opts, vmshortcut.WithInitialGlobalDepth(uint(*globalDepth)))
	}
	if *mergeLoad > 0 {
		opts = append(opts, vmshortcut.WithMergeLoadFactor(*mergeLoad))
	}
	if *poll > 0 {
		opts = append(opts, vmshortcut.WithPollInterval(*poll))
	}
	if *fanIn > 0 {
		opts = append(opts, vmshortcut.WithFanInThreshold(*fanIn))
	}
	// lsnTraces maps appended LSNs back to trace IDs and append times; the
	// durable layer stamps it, the replication source reads it back for
	// stream trace metadata and ack-lag gauges.
	var lsnTraces *obs.LSNTraces
	if *walDir != "" {
		mode, err := vmshortcut.ParseFsyncMode(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		lsnTraces = obs.NewLSNTraces(4096)
		opts = append(opts, vmshortcut.WithWAL(*walDir), vmshortcut.WithFsync(mode),
			// fsync latency is recorded by the WAL itself (a group commit
			// serves many batches; per-batch attribution would be a lie).
			vmshortcut.WithFsyncHist(metrics.Pipeline().Hist(obs.StageWALFsync)),
			vmshortcut.WithLSNTraces(lsnTraces))
		if *chained {
			opts = append(opts, vmshortcut.WithChainedWAL(true))
		}
		if *fsyncInterval > 0 {
			opts = append(opts, vmshortcut.WithFsyncInterval(*fsyncInterval))
		}
		if *snapshotEvery > 0 {
			opts = append(opts, vmshortcut.WithSnapshotEvery(*snapshotEvery))
		}
	} else {
		// An operator passing durability flags without -wal-dir believes
		// the server is durable when it is memory-only; refuse rather
		// than silently dropping the flags.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "fsync", "fsync-interval", "snapshot-every", "snapshot-on-exit":
				log.Fatalf("-%s requires -wal-dir: without a WAL directory the server is memory-only", f.Name)
			}
		})
	}

	openStart := time.Now()
	store, err := vmshortcut.Open(kind, opts...)
	if err != nil {
		log.Fatalf("open %s: %v", kind, err)
	}
	if *walDir != "" {
		log.Printf("ehserver: recovered %d entries from %s in %s (fsync=%s)",
			store.Len(), *walDir, time.Since(openStart).Round(time.Millisecond), *fsync)
	}

	scfg := server.Config{
		Store:               store,
		BatchWindow:         *batchWindow,
		BatchWindowAdaptive: *batchWindowAdaptive,
		MaxBatch:            *maxBatch,
		Logf:                log.Printf,
		Metrics:             metrics,
		SlowOp:              *slowOp,
	}

	// Replication wiring. The Config fields are interfaces: assign only
	// concrete non-nil values, or the server's nil checks pass vacuously.
	var source *repl.Source
	var follower *repl.Follower
	if rep, ok := vmshortcut.AsReplicable(store); ok {
		// Every durable server serves replication streams — including a
		// replica, which after promotion is a full primary for the next
		// tier of followers.
		source = repl.NewSource(rep, repl.SourceConfig{
			Sync:     *replSync,
			Traces:   lsnTraces,
			Recorder: metrics.Recorder(),
			Logf:     log.Printf,
		})
		scfg.Repl = source
	}
	if *replicaOf != "" {
		follower, err = repl.StartFollower(repl.FollowerConfig{
			Primary:   *replicaOf,
			Store:     store,
			BaseDir:   *walDir,
			Staleness: *stalenessBound,
			Chained:   *chained,
			Trace:     *replTrace,
			Recorder:  metrics.Recorder(),
			Pipeline:  metrics.Pipeline(),
			Logf:      log.Printf,
		})
		if err != nil {
			store.Close()
			log.Fatalf("replica: %v", err)
		}
		scfg.Replica = follower
		log.Printf("ehserver: replicating from %s (staleness-bound=%v chained=%v)", *replicaOf, *stalenessBound, *chained)
	}

	srv, err := server.New(scfg)
	if err != nil {
		log.Fatal(err)
	}

	// The admin listener outlives the drain on purpose: /readyz flips to
	// 503 the moment shutdown starts (load balancers stop routing), while
	// /metrics stays scrapable until the store is about to close.
	var adminLn net.Listener
	if *adminAddr != "" {
		adminLn, err = net.Listen("tcp", *adminAddr)
		if err != nil {
			store.Close()
			log.Fatalf("admin listen: %v", err)
		}
		go http.Serve(adminLn, srv.AdminHandler())
		log.Printf("ehserver: admin HTTP on %s (/metrics /statsz /tracez /healthz /readyz /debug/pprof)", adminLn.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGUSR1)
	serveErr := make(chan error, 1)
	go func() {
		log.Printf("ehserver: %s (shards=%d) listening on %s", kind, *shards, *addr)
		serveErr <- srv.ListenAndServe(*addr)
	}()

wait:
	for {
		select {
		case err := <-serveErr:
			store.Close()
			log.Fatalf("serve: %v", err)
		case sig := <-sigs:
			if sig == syscall.SIGUSR1 {
				if follower == nil {
					log.Printf("ehserver: SIGUSR1 ignored: not a replica")
					continue
				}
				// Promote drains the replication stream before returning;
				// do it off the signal loop so shutdown stays responsive.
				go func() {
					lsn := follower.Promote()
					log.Printf("ehserver: promoted to primary at LSN %d", lsn)
				}()
				continue
			}
			log.Printf("ehserver: %v — draining", sig)
			break wait
		}
	}

	// Graceful shutdown: drain connections, let asynchronous maintenance
	// catch up, then release the store.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("ehserver: drain incomplete: %v", err)
	}
	<-serveErr // Serve has returned once the listener died
	if adminLn != nil {
		adminLn.Close()
	}
	if source != nil {
		source.Close()
	}
	if follower != nil {
		follower.Close()
	}
	if !store.WaitSync(*waitSync) {
		log.Printf("ehserver: WaitSync(%v) timed out", *waitSync)
	}
	// With the connections drained, a final snapshot bounds the next
	// start's recovery time and lets the WAL be compacted away.
	if d, ok := vmshortcut.AsDurable(store); ok && *snapshotOnExit {
		if err := d.Snapshot(); err != nil {
			log.Printf("ehserver: final snapshot: %v", err)
		} else if removed, err := d.CompactWAL(); err != nil {
			log.Printf("ehserver: compacting WAL: %v", err)
		} else {
			log.Printf("ehserver: final snapshot taken, %d WAL segments compacted", removed)
		}
	}
	c := srv.Counters()
	st := store.Stats()
	log.Printf("ehserver: served %d ops over %d conns (%d coalesced batches carrying %d ops, %d errors); store: %d entries, batches I/L/D %d/%d/%d",
		c.Ops, c.TotalConns, c.CoalescedBatches, c.CoalescedOps, c.Errors,
		st.Entries, st.InsertBatches, st.LookupBatches, st.DeleteBatches)
	if err := store.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
}

// parseKind resolves an index kind, tolerating dashless spellings
// ("shortcuteh" for "shortcut-eh") so scripted invocations do not need to
// remember the canonical hyphenation.
func parseKind(name string) (vmshortcut.Kind, error) {
	if k, err := vmshortcut.ParseKind(name); err == nil {
		return k, nil
	}
	stripped := strings.ReplaceAll(strings.ToLower(name), "-", "")
	for _, k := range vmshortcut.Kinds() {
		if strings.ReplaceAll(k.String(), "-", "") == stripped {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown index kind %q (want one of %v)", name, vmshortcut.Kinds())
}

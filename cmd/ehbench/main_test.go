package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildEhbench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ehbench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ehbench: %v\n%s", err, out)
	}
	return bin
}

// summaryJSON fabricates a minimal summary.json with one cell at the
// given mean throughput.
func summaryJSON(t *testing.T, dir, name string, tput float64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, _ := json.Marshal(map[string]any{
		"stamp": name, "go": "go-test", "num_cpu": 1,
		"cells": []map[string]any{{
			"key":                    "e/mixA",
			"throughput_ops_per_sec": map[string]float64{"mean": tput},
			"p99_ns":                 map[string]float64{"mean": 1000},
		}},
	})
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareExitCodes pins the regression gate's CLI contract: exit 0
// on self-compare, exit 1 past the threshold, exit 0 again under
// -advisory, exit 2 on misuse.
func TestCompareExitCodes(t *testing.T) {
	bin := buildEhbench(t)
	dir := t.TempDir()
	base := summaryJSON(t, dir, "base.json", 1000)
	slow := summaryJSON(t, dir, "slow.json", 700) // -30%

	run := func(args ...string) (int, string) {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("ehbench %v: %v\n%s", args, err, out)
		}
		return ee.ExitCode(), string(out)
	}

	if code, out := run("-compare", base, base); code != 0 || !strings.Contains(out, "PASS") {
		t.Fatalf("self-compare: exit %d\n%s", code, out)
	}
	if code, out := run("-compare", "-threshold", "0.15", base, slow); code != 1 || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("30%% drop at 15%% threshold: exit %d, want 1\n%s", code, out)
	}
	if code, _ := run("-compare", "-threshold", "0.5", base, slow); code != 0 {
		t.Fatalf("30%% drop at 50%% threshold: exit %d, want 0", code)
	}
	if code, out := run("-compare", "-advisory", base, slow); code != 0 || !strings.Contains(out, "advisory") {
		t.Fatalf("advisory mode: exit %d, want 0\n%s", code, out)
	}
	if code, _ := run("-compare", base); code != 2 {
		t.Fatalf("-compare with one arg: exit %d, want usage error 2", code)
	}
	if code, _ := run("-analyze"); code != 2 {
		t.Fatalf("-analyze with no dir: exit %d, want usage error 2", code)
	}
	if code, _ := run("unexpected-positional"); code != 2 {
		t.Fatalf("stray positional: exit %d, want usage error 2", code)
	}
}

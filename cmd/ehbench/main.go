// Command ehbench is the reproducible experiment grid runner: it reads a
// declarative experiments.json (mixes × distributions × batch modes ×
// fsync modes × shard counts × GOMAXPROCS × replication), launches a
// fresh in-process ehserver per measured run, drives it with the same
// verified YCSB machinery as ehload (internal/bench), repeats every cell
// N times with a warmup, and writes the artifacts the paper workflow
// needs under bench_runs/<stamp>/: per-run JSON records, a per-run CSV,
// and a grouped summary.json with mean/std/min/max per cell.
//
// Modes:
//
//	ehbench                                  # run ./experiments.json, analyze, print the table
//	ehbench -grid grid.json -out bench_runs  # explicit grid and output root
//	ehbench -repeats 1 -duration 200ms -load 2000 -max-cells 2   # CI-sized override
//	ehbench -analyze bench_runs/<stamp>      # (re)summarize an existing run directory
//	ehbench -history BENCH_history.json ...  # append the summary to the perf trajectory
//	ehbench -compare old.json new.json       # regression gate: non-zero exit past -threshold
//
// The regression gate joins cells on their grid key and fails (exit 1)
// when a cell's mean throughput dropped more than -threshold; -advisory
// reports but always exits 0, for CI runners whose absolute numbers are
// not comparable to the committed baseline's machine. -compare accepts
// either summary.json files or BENCH_history.json trajectories (the
// newest entry is compared).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"vmshortcut/internal/bench"
)

func main() {
	log.SetFlags(0)
	gridPath := flag.String("grid", "experiments.json", "experiment grid definition")
	out := flag.String("out", bench.DefaultRunsRoot, "output root; artifacts land in <out>/<stamp>/")
	stamp := flag.String("stamp", "", "run directory name (default: current time, 20060102_150405)")
	history := flag.String("history", "", "append the run's summary to this BENCH_history.json trajectory")
	label := flag.String("label", "", "label recorded with the history entry (e.g. the PR number)")
	analyze := flag.Bool("analyze", false, "analyze an existing run directory (positional arg) instead of running the grid")
	compare := flag.Bool("compare", false, "regression gate: compare two summaries/trajectories (positional args: old new)")
	threshold := flag.Float64("threshold", 0.15, "relative mean-throughput drop that fails -compare (0.15 = 15%)")
	advisory := flag.Bool("advisory", false, "with -compare: report regressions but exit 0")

	// Grid overrides, so CI can run a committed grid at smoke size
	// without a second experiments.json. 0 (or empty) keeps the grid's
	// own values.
	repeats := flag.Int("repeats", 0, "override the grid's repeats")
	duration := flag.Duration("duration", 0, "override every cell's measured duration")
	warmup := flag.Duration("warmup", -1, "override every cell's warmup (-1 = keep the grid's)")
	load := flag.Int("load", 0, "override every cell's preloaded keyspace size")
	conns := flag.Int("conns", 0, "override every cell's connection count")
	pipeline := flag.Int("pipeline", 0, "override every cell's pipeline depth")
	maxCells := flag.Int("max-cells", 0, "run only the first N cells of the grid (0 = all)")
	flag.Parse()

	switch {
	case *compare:
		if flag.NArg() != 2 {
			usageError("-compare needs exactly two paths (old new), got %d", flag.NArg())
		}
		runCompare(flag.Arg(0), flag.Arg(1), *threshold, *advisory)
	case *analyze:
		if flag.NArg() != 1 {
			usageError("-analyze needs exactly one run directory, got %d", flag.NArg())
		}
		runAnalyze(flag.Arg(0), *history, *label)
	default:
		if flag.NArg() != 0 {
			usageError("unexpected arguments %v (did you mean -analyze or -compare?)", flag.Args())
		}
		runGrid(gridConfig{
			gridPath: *gridPath, out: *out, stamp: *stamp,
			history: *history, label: *label,
			repeats: *repeats, duration: *duration, warmup: *warmup,
			load: *load, conns: *conns, pipeline: *pipeline, maxCells: *maxCells,
		})
	}
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ehbench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

type gridConfig struct {
	gridPath, out, stamp, history, label string
	repeats                              int
	duration, warmup                     time.Duration
	load, conns, pipeline, maxCells      int
}

// applyOverrides rewrites the grid in place with the CI-sized knobs, so
// the copy persisted into the run directory reflects what actually ran.
func (c gridConfig) applyOverrides(g *bench.Grid) {
	if c.repeats > 0 {
		g.Repeats = c.repeats
	}
	for i := range g.Experiments {
		a := &g.Experiments[i].Axes
		if c.duration > 0 {
			a.Duration = bench.Duration(c.duration)
		}
		if c.warmup >= 0 {
			a.Warmup = bench.Duration(c.warmup)
		}
		if c.load > 0 {
			a.Load = c.load
		}
		if c.conns > 0 {
			a.Conns = c.conns
		}
		if c.pipeline > 0 {
			a.Pipeline = c.pipeline
		}
	}
	if c.duration > 0 {
		g.Defaults.Duration = bench.Duration(c.duration)
	}
	if c.warmup >= 0 {
		g.Defaults.Warmup = bench.Duration(c.warmup)
	}
	if c.load > 0 {
		g.Defaults.Load = c.load
	}
	if c.conns > 0 {
		g.Defaults.Conns = c.conns
	}
	if c.pipeline > 0 {
		g.Defaults.Pipeline = c.pipeline
	}
}

func runGrid(c gridConfig) {
	g, err := bench.LoadGrid(c.gridPath)
	if err != nil {
		log.Fatalf("ehbench: %v", err)
	}
	c.applyOverrides(g)
	cells, err := g.Cells()
	if err != nil {
		log.Fatalf("ehbench: %v", err)
	}
	if c.maxCells > 0 && len(cells) > c.maxCells {
		log.Printf("ehbench: -max-cells %d: running %d of %d cells", c.maxCells, c.maxCells, len(cells))
		cells = cells[:c.maxCells]
	}
	stamp := c.stamp
	if stamp == "" {
		stamp = time.Now().Format("20060102_150405")
	}
	dir := filepath.Join(c.out, stamp)
	log.Printf("ehbench: %d cell(s) × %d repeat(s) from %s -> %s", len(cells), g.Repeats, c.gridPath, dir)

	start := time.Now()
	// Repeats interleave round-robin across cells (see bench.RunCells):
	// host-load phases land on every cell instead of biasing whole cells.
	results, err := bench.RunCells(cells, log.Printf)
	if err != nil {
		log.Fatalf("ehbench: %v", err)
	}
	sum := bench.Summarize(stamp, results)
	if err := bench.WriteRunDir(dir, g, results, sum); err != nil {
		log.Fatalf("ehbench: writing %s: %v", dir, err)
	}
	// Analyze immediately: one invocation yields every artifact.
	if _, err := bench.Analyze(dir); err != nil {
		log.Fatalf("ehbench: %v", err)
	}
	sum.WriteMarkdown(os.Stdout)
	log.Printf("ehbench: wrote %s (%d runs) in %s", dir,
		len(cells)*g.Repeats, time.Since(start).Round(time.Second))
	appendHistory(c.history, sum, c.label)
	var errs uint64
	for _, cs := range sum.Cells {
		errs += cs.Errors
	}
	if errs > 0 {
		log.Fatalf("ehbench: %d verification errors across the grid", errs)
	}
}

func runAnalyze(dir, history, label string) {
	sum, err := bench.Analyze(dir)
	if err != nil {
		log.Fatalf("ehbench: %v", err)
	}
	sum.WriteMarkdown(os.Stdout)
	log.Printf("ehbench: rewrote %s and %s under %s",
		bench.SummaryName, bench.AnalysisName, dir)
	appendHistory(history, sum, label)
}

func appendHistory(path string, sum *bench.Summary, label string) {
	if path == "" {
		return
	}
	if err := bench.AppendHistory(path, sum.Entry(label)); err != nil {
		log.Fatalf("ehbench: appending %s: %v", path, err)
	}
	log.Printf("ehbench: appended entry %s to %s", sum.Stamp, path)
}

func runCompare(oldPath, newPath string, threshold float64, advisory bool) {
	base, err := bench.LoadComparable(oldPath)
	if err != nil {
		log.Fatalf("ehbench: %v", err)
	}
	cur, err := bench.LoadComparable(newPath)
	if err != nil {
		log.Fatalf("ehbench: %v", err)
	}
	cmp, err := bench.Compare(base, cur, threshold)
	if err != nil {
		log.Fatalf("ehbench: %v", err)
	}
	fmt.Printf("baseline %s (%s) vs %s (%s), threshold %.0f%%\n",
		base.Stamp, base.Go, cur.Stamp, cur.Go, threshold*100)
	fmt.Print(cmp.String())
	if cmp.Failed() {
		if advisory {
			fmt.Println("advisory mode: regressions reported, exit 0")
			return
		}
		os.Exit(1)
	}
	fmt.Println("regression gate: PASS")
}

package vmshortcut

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vmshortcut/internal/obs"
	"vmshortcut/internal/op"
)

// applyGets drives one pure-GET batch through ApplyBatch, the serve
// path the fast path fronts.
func applyGets(t *testing.T, s Store, b *op.Batch, res *op.Results, keys ...uint64) {
	t.Helper()
	b.Reset()
	for _, k := range keys {
		b.Get(k)
	}
	if err := s.ApplyBatch(b, res); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
}

func TestReadCacheServesAndInvalidates(t *testing.T) {
	s, err := Open(KindShortcutEH, WithConcurrency(true), WithReadCache(true))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(0); i < 64; i++ {
		if err := s.Insert(i, i*10); err != nil {
			t.Fatal(err)
		}
	}

	var b op.Batch
	var res op.Results
	// Repeated reads of the same keys must populate the cache (the
	// admission sketch needs to see a key more than once) and then serve
	// from it.
	for round := 0; round < 10; round++ {
		applyGets(t, s, &b, &res, 1, 2, 3, 4)
		for i, want := range []uint64{10, 20, 30, 40} {
			if !res.Found[i] || res.Vals[i] != want {
				t.Fatalf("round %d entry %d: got (%d, %v), want (%d, true)", round, i, res.Vals[i], res.Found[i], want)
			}
		}
	}
	st := s.Stats()
	if st.FastpathCacheReads == 0 {
		t.Fatalf("no cache-served reads after 10 identical rounds: %+v", st)
	}

	// An acked overwrite must invalidate: the very next read returns the
	// new value, never the cached old one.
	if err := s.Insert(2, 9999); err != nil {
		t.Fatal(err)
	}
	applyGets(t, s, &b, &res, 2)
	if !res.Found[0] || res.Vals[0] != 9999 {
		t.Fatalf("read after acked overwrite: got (%d, %v), want (9999, true)", res.Vals[0], res.Found[0])
	}

	// Deletes invalidate the same way.
	if !s.Delete(3) {
		t.Fatal("Delete(3) reported not found")
	}
	applyGets(t, s, &b, &res, 3)
	if res.Found[0] {
		t.Fatalf("read after delete still found value %d", res.Vals[0])
	}

	top, ok := HotKeys(s, 8)
	if !ok {
		t.Fatal("HotKeys reported no cache on a WithReadCache store")
	}
	if len(top) == 0 {
		t.Fatal("HotKeys returned no residents after a hot read loop")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Hits > top[i-1].Hits {
			t.Fatalf("HotKeys not sorted hottest-first: %v", top)
		}
	}
}

func TestHotKeysReportsNoCache(t *testing.T) {
	s, err := Open(KindHT, WithConcurrency(true))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := HotKeys(s, 8); ok {
		t.Fatal("HotKeys reported a cache on a store opened without WithReadCache")
	}
}

func TestHTIKeepsLockedPath(t *testing.T) {
	// KindHTI reads migrate entries: readSafe is off, no cache attaches,
	// and every GET must be served under the lock.
	s, err := Open(KindHTI, WithConcurrency(true), WithReadCache(true))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(0); i < 32; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	var b op.Batch
	var res op.Results
	for round := 0; round < 5; round++ {
		applyGets(t, s, &b, &res, 1, 2, 3)
	}
	st := s.Stats()
	if st.FastpathCacheReads != 0 || st.FastpathSeqlockReads != 0 {
		t.Fatalf("KindHTI took a lock-free path: %+v", st)
	}
	if st.FastpathLockedReads == 0 {
		t.Fatalf("KindHTI locked GETs not counted: %+v", st)
	}
}

// TestFastpathNeverServesStaleReads is the linearizability spot-check
// for the version-counter invalidation: writers hammer overwrites into
// a two-shard store while readers sit on the cache/seqlock path, and
// every read must observe a value at least as new as the last overwrite
// the writer had acknowledged before the read began. Values per key are
// monotonically increasing, so "stale after ack" is a single compare.
// Run under -race this also proves the surviving fast path (the cache)
// is free of data races.
func TestFastpathNeverServesStaleReads(t *testing.T) {
	s, err := Open(KindHT, WithShards(2), WithReadCache(true))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const keys = 16
	var acked [keys]atomic.Uint64 // floor: highest value acked per key
	for k := uint64(0); k < keys; k++ {
		if err := s.Insert(k, 1); err != nil {
			t.Fatal(err)
		}
		acked[k].Store(1)
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	if testing.Short() {
		deadline = time.Now().Add(100 * time.Millisecond)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// One writer per key parity, overwriting with increasing values.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var b op.Batch
			var res op.Results
			for v := uint64(2); time.Now().Before(deadline); v++ {
				for k := uint64(w); k < keys; k += 2 {
					b.Reset()
					b.Put(k, v)
					if err := s.ApplyBatch(&b, &res); err != nil {
						t.Errorf("writer: %v", err)
						return
					}
					// The write is acked: publish the new floor. A reader
					// that starts after this store must see >= v.
					acked[k].Store(v)
				}
			}
		}(w)
	}

	readErr := make(chan string, 1)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b op.Batch
			var res op.Results
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Load the floors BEFORE the read: the read linearizes
				// after these loads, so it must return at least them.
				var floor [keys]uint64
				b.Reset()
				for k := uint64(0); k < keys; k++ {
					floor[k] = acked[k].Load()
					b.Get(k)
				}
				if err := s.ApplyBatch(&b, &res); err != nil {
					select {
					case readErr <- err.Error():
					default:
					}
					return
				}
				for k := uint64(0); k < keys; k++ {
					if !res.Found[k] || res.Vals[k] < floor[k] {
						select {
						case readErr <- "stale read: key " + itoa(k) + " returned " +
							itoa(res.Vals[k]) + " after value " + itoa(floor[k]) + " was acked":
						default:
						}
						return
					}
				}
			}
		}()
	}

	for time.Now().Before(deadline) {
		select {
		case msg := <-readErr:
			close(stop)
			wg.Wait()
			t.Fatal(msg)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-readErr:
		t.Fatal(msg)
	default:
	}

	st := s.Stats()
	total := st.FastpathCacheReads + st.FastpathSeqlockReads + st.FastpathLockedReads
	if total == 0 {
		t.Fatal("no GET entries counted on any fast-path level")
	}
	t.Logf("reads: cache=%d seqlock=%d locked=%d retries=%d fallbacks=%d",
		st.FastpathCacheReads, st.FastpathSeqlockReads, st.FastpathLockedReads,
		st.SeqlockRetries, st.SeqlockFallbacks)
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestSeqlockRetryHistRecords(t *testing.T) {
	if raceEnabled {
		t.Skip("seqlock path is disabled under -race")
	}
	reg := obs.NewRegistry()
	h := reg.Hist("test_seqlock_retries", "retries per optimistic read")
	s, err := Open(KindEH, WithConcurrency(true), WithSeqlockRetryHist(h))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(0); i < 16; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	var b op.Batch
	var res op.Results
	applyGets(t, s, &b, &res, 1, 2, 3)
	if h.Count() == 0 {
		t.Fatal("seqlock retry histogram recorded nothing for an optimistic read")
	}
	if st := s.Stats(); st.FastpathSeqlockReads != 3 {
		t.Fatalf("FastpathSeqlockReads = %d, want 3 (%+v)", st.FastpathSeqlockReads, st)
	}
}

func TestClosedBatchPathsDoNotAllocate(t *testing.T) {
	s, err := Open(KindHT, WithConcurrency(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	keys := []uint64{1, 2, 3}
	out := make([]uint64, 3)
	if n := testing.AllocsPerRun(100, func() {
		found := s.LookupBatch(keys, out)
		for i := range found {
			if found[i] {
				t.Error("closed LookupBatch reported a hit")
			}
		}
	}); n != 0 {
		t.Fatalf("closed LookupBatch allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		found := s.DeleteBatch(keys)
		for i := range found {
			if found[i] {
				t.Error("closed DeleteBatch reported a hit")
			}
		}
	}); n != 0 {
		t.Fatalf("closed DeleteBatch allocates %.1f times per call, want 0", n)
	}
}

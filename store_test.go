package vmshortcut

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// openKinds enumerates every kind with the options that make it openable
// in a test (radix needs a capacity; shortcut-EH syncs fast with a short
// poll interval).
func openKinds(tb testing.TB, n int, extra ...Option) map[string]Store {
	tb.Helper()
	out := map[string]Store{}
	for _, k := range Kinds() {
		opts := []Option{WithCapacity(n)}
		if k == KindShortcutEH {
			opts = append(opts, WithPollInterval(time.Millisecond))
		}
		opts = append(opts, extra...)
		s, err := Open(k, opts...)
		if err != nil {
			tb.Fatalf("Open(%s): %v", k, err)
		}
		tb.Cleanup(func() { s.Close() })
		out[k.String()] = s
	}
	return out
}

// TestOpenConformance drives the same insert/lookup/delete/batch workload
// through the Store surface of every kind. Keys stay below n so they fit
// the radix kind's bounded key space.
func TestOpenConformance(t *testing.T) {
	const n = 20000
	for name, s := range openKinds(t, n) {
		t.Run(name, func(t *testing.T) {
			// Single-op phase over the first half of the key space.
			for k := uint64(0); k < n/2; k++ {
				if err := s.Insert(k, k*2+1); err != nil {
					t.Fatalf("Insert(%d): %v", k, err)
				}
			}
			// Batch phase over the second half.
			keys := make([]uint64, 0, n/2)
			vals := make([]uint64, 0, n/2)
			for k := uint64(n / 2); k < n; k++ {
				keys = append(keys, k)
				vals = append(vals, k*2+1)
			}
			if err := s.InsertBatch(keys, vals); err != nil {
				t.Fatalf("InsertBatch: %v", err)
			}
			if s.Len() != n {
				t.Fatalf("Len = %d, want %d", s.Len(), n)
			}
			if !s.WaitSync(10 * time.Second) {
				t.Fatal("WaitSync timed out")
			}

			// Single lookups agree with batch lookups.
			all := make([]uint64, n)
			for i := range all {
				all[i] = uint64(i)
			}
			out := make([]uint64, n)
			ok := s.LookupBatch(all, out)
			for i, k := range all {
				v1, ok1 := s.Lookup(k)
				if !ok1 || v1 != k*2+1 {
					t.Fatalf("Lookup(%d) = %d,%v", k, v1, ok1)
				}
				if !ok[i] || out[i] != v1 {
					t.Fatalf("LookupBatch[%d] = %d,%v, want %d", i, out[i], ok[i], v1)
				}
			}
			if _, miss := s.Lookup(n + 1); miss && s.Kind() != KindRadix {
				t.Fatal("lookup of absent key reported present")
			}

			// Delete semantics: once true, then false.
			if !s.Delete(5) || s.Delete(5) {
				t.Fatal("delete semantics broken")
			}
			if s.Len() != n-1 {
				t.Fatalf("Len after delete = %d", s.Len())
			}

			// DeleteBatch agrees with single deletes: present keys report
			// true (including a duplicate that is gone by its second
			// occurrence), already-deleted keys false.
			dels := []uint64{7, 8, 5, 7}
			wantOK := []bool{true, true, false, false}
			delOK := s.DeleteBatch(dels)
			for i := range dels {
				if delOK[i] != wantOK[i] {
					t.Fatalf("DeleteBatch[%d] (key %d) = %v, want %v", i, dels[i], delOK[i], wantOK[i])
				}
			}
			if s.Len() != n-3 {
				t.Fatalf("Len after DeleteBatch = %d, want %d", s.Len(), n-3)
			}
			if _, ok := s.Lookup(7); ok {
				t.Fatal("key 7 still present after DeleteBatch")
			}

			// Stats carries the kind, the live entry count, and the batch
			// call counters everywhere.
			st := s.Stats()
			if st.Kind.String() != name || st.Entries != n-3 {
				t.Fatalf("Stats = {Kind:%s Entries:%d}, want {%s %d}", st.Kind, st.Entries, name, n-3)
			}
			if st.InsertBatches != 1 || st.LookupBatches != 1 || st.DeleteBatches != 1 {
				t.Fatalf("batch counters = {I:%d L:%d D:%d}, want {1 1 1}",
					st.InsertBatches, st.LookupBatches, st.DeleteBatches)
			}
		})
	}
}

// TestApplyBatchConformance drives a mixed operation batch — including
// same-key sequences whose per-entry order is observable — through every
// kind, plain and concurrent. ApplyBatch is the serving stack's one
// execution path, so its semantics must match running the entries one by
// one.
func TestApplyBatchConformance(t *testing.T) {
	const n = 4096
	run := func(t *testing.T, s Store) {
		var b OpBatch
		b.Put(1, 10) // 0: accepted
		b.Get(1)     // 1: 10
		b.Put(1, 11) // 2: accepted — overwrites after the read
		b.Get(1)     // 3: 11
		b.Del(1)     // 4: found
		b.Get(1)     // 5: miss
		b.Del(1)     // 6: miss
		for k := uint64(100); k < 140; k++ {
			b.Put(k, k*2) // a long uniform run: one InsertBatch
		}
		for k := uint64(100); k < 140; k++ {
			b.Get(k) // a long uniform run: one LookupBatch
		}
		var res OpResults
		if err := s.ApplyBatch(&b, &res); err != nil {
			t.Fatalf("ApplyBatch: %v", err)
		}
		wantFound := []bool{true, true, true, true, true, false, false}
		wantVals := []uint64{0, 10, 0, 11, 0, 0, 0}
		for i := range wantFound {
			if res.Found[i] != wantFound[i] || res.Vals[i] != wantVals[i] {
				t.Fatalf("entry %d = (%v, %d), want (%v, %d)",
					i, res.Found[i], res.Vals[i], wantFound[i], wantVals[i])
			}
		}
		for i := 0; i < 40; i++ {
			put, get := 7+i, 47+i
			if !res.Found[put] || !res.Found[get] || res.Vals[get] != uint64(100+i)*2 {
				t.Fatalf("run entries %d/%d = (%v, %v, %d)", put, get,
					res.Found[put], res.Found[get], res.Vals[get])
			}
		}
		// The uniform runs went through the native batch paths: visible
		// in the batch counters exactly like a same-kind batch call.
		st := s.Stats()
		if st.InsertBatches == 0 || st.LookupBatches == 0 {
			t.Fatalf("multi-entry runs did not count as batches: %+v", st)
		}
		// An empty batch is a no-op.
		var empty OpBatch
		if err := s.ApplyBatch(&empty, &res); err != nil || len(res.Found) != 0 {
			t.Fatalf("empty ApplyBatch = %v, %d results", err, len(res.Found))
		}
	}
	for name, s := range openKinds(t, n) {
		t.Run(name, func(t *testing.T) { run(t, s) })
	}
	for name, s := range openKinds(t, n, WithConcurrency(true)) {
		t.Run(name+"/concurrent", func(t *testing.T) { run(t, s) })
	}
}

// TestApplyBatchClosed pins the lifecycle contract: ApplyBatch on a
// closed store fails with ErrClosed and zeroed results.
func TestApplyBatchClosed(t *testing.T) {
	for _, opts := range [][]Option{nil, {WithConcurrency(true)}} {
		s, err := Open(KindHT, opts...)
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		var b OpBatch
		b.Put(1, 2)
		b.Get(1)
		var res OpResults
		if err := s.ApplyBatch(&b, &res); !errors.Is(err, ErrClosed) {
			t.Fatalf("ApplyBatch after Close = %v, want ErrClosed", err)
		}
		if len(res.Found) != 2 || res.Found[0] || res.Found[1] {
			t.Fatalf("closed ApplyBatch results = %+v", res)
		}
	}
}

// TestApplyBatchUnitFailure pins the unit-failure contract: a rejected
// insert (radix key out of range) fails the whole batch with the insert
// error, even though other entries executed.
func TestApplyBatchUnitFailure(t *testing.T) {
	s, err := Open(KindRadix, WithCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var b OpBatch
	b.Put(1, 10)
	b.Put(1<<40, 1) // out of the radix key-space bound
	b.Get(1)
	var res OpResults
	if err := s.ApplyBatch(&b, &res); err == nil {
		t.Fatal("ApplyBatch accepted an out-of-range radix insert")
	}
}

// TestOpenErrors exercises Open's failure paths.
func TestOpenErrors(t *testing.T) {
	if _, err := Open(Kind(99)); err == nil {
		t.Fatal("Open(unknown kind) succeeded")
	}
	if _, err := Open(KindRadix); err == nil {
		t.Fatal("Open(KindRadix) without capacity succeeded")
	}
	if _, err := Open(KindShortcutEH, WithPool(nil)); err == nil {
		t.Fatal("WithPool(nil) accepted")
	}
	if _, err := Open(KindHT, WithCapacity(-1)); err == nil {
		t.Fatal("WithCapacity(-1) accepted")
	}
	if _, err := Open(KindHT, WithMaxLoadFactor(1.5)); err == nil {
		t.Fatal("WithMaxLoadFactor(1.5) accepted")
	}
	if _, err := ParseKind("btree"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
	for _, k := range Kinds() {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), back, err)
		}
	}
}

// TestStoreClose verifies the uniform lifecycle: Close is idempotent for
// every kind and operations on a closed store fail with ErrClosed.
func TestStoreClose(t *testing.T) {
	const n = 1000
	for name, s := range openKinds(t, n) {
		t.Run(name, func(t *testing.T) {
			if err := s.Insert(1, 2); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if err := s.Insert(3, 4); !errors.Is(err, ErrClosed) {
				t.Fatalf("Insert after Close = %v, want ErrClosed", err)
			}
			if err := s.InsertBatch([]uint64{3}, []uint64{4}); !errors.Is(err, ErrClosed) {
				t.Fatalf("InsertBatch after Close = %v, want ErrClosed", err)
			}
			if _, ok := s.Lookup(1); ok {
				t.Fatal("Lookup after Close reported present")
			}
			if ok := s.LookupBatch([]uint64{1}, make([]uint64, 1)); ok[0] {
				t.Fatal("LookupBatch after Close reported present")
			}
			if s.Delete(1) || s.Len() != 0 {
				t.Fatal("Delete/Len after Close not inert")
			}
			if st := s.Stats(); st.Entries != 0 || st.Kind.String() != name {
				t.Fatalf("Stats after Close = %+v", st)
			}
		})
	}
}

// TestBatchLengthMismatch checks the error is reported, not panicked.
func TestBatchLengthMismatch(t *testing.T) {
	for name, s := range openKinds(t, 100) {
		if err := s.InsertBatch([]uint64{1, 2}, []uint64{1}); err == nil {
			t.Fatalf("%s: InsertBatch length mismatch accepted", name)
		}
	}
}

// TestOpenWithInjectedPool verifies pool ownership: Close must leave an
// injected pool usable.
func TestOpenWithInjectedPool(t *testing.T) {
	p, err := NewPool(PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s, err := Open(KindShortcutEH, WithPool(p), WithPollInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(7, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatalf("injected pool unusable after store Close: %v", err)
	}
}

// TestOpenConcurrency smoke-tests WithConcurrency across kinds: concurrent
// writers and readers, then a consistent final state.
func TestOpenConcurrency(t *testing.T) {
	const n = 4000
	const writers = 4
	for name, s := range openKinds(t, n, WithConcurrency(true)) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for k := uint64(w); k < n; k += writers {
						if err := s.Insert(k, k+1); err != nil {
							t.Errorf("Insert(%d): %v", k, err)
							return
						}
					}
				}(w)
				wg.Add(1)
				go func() {
					defer wg.Done()
					out := make([]uint64, 64)
					keys := make([]uint64, 64)
					for i := range keys {
						keys[i] = uint64(i * 7 % n)
					}
					for r := 0; r < 50; r++ {
						s.LookupBatch(keys, out)
					}
				}()
			}
			wg.Wait()
			if s.Len() != n {
				t.Fatalf("Len = %d, want %d", s.Len(), n)
			}
			for k := uint64(0); k < n; k += 97 {
				if v, ok := s.Lookup(k); !ok || v != k+1 {
					t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
				}
			}
		})
	}
}

// TestConcurrentCloseUnderFire closes a WithConcurrency store while
// readers are mid-flight: the wrapper must drain them before the backing
// pool is unmapped, and late operations must observe the closed state
// instead of dereferencing released memory.
func TestConcurrentCloseUnderFire(t *testing.T) {
	for _, kind := range []Kind{KindEH, KindShortcutEH} {
		t.Run(kind.String(), func(t *testing.T) {
			s, err := Open(kind, WithConcurrency(true), WithPollInterval(time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			const n = 50000
			for k := uint64(0); k < n; k++ {
				if err := s.Insert(k, k+1); err != nil {
					t.Fatal(err)
				}
			}
			s.WaitSync(10 * time.Second)

			var wg sync.WaitGroup
			for r := 0; r < 8; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					keys := make([]uint64, 256)
					out := make([]uint64, 256)
					for i := range keys {
						keys[i] = uint64((i * 31) % n)
					}
					for i := 0; ; i++ {
						if i%2 == 0 {
							s.LookupBatch(keys, out)
						} else if _, ok := s.Lookup(uint64(r)); !ok {
							return // closed observed
						}
					}
				}(r)
			}
			time.Sleep(2 * time.Millisecond)
			if err := s.Close(); err != nil {
				t.Fatalf("Close under fire: %v", err)
			}
			wg.Wait()
		})
	}
}

// TestAsEscapeHatches verifies the typed accessors reach the concrete
// tables behind the facade.
func TestAsEscapeHatches(t *testing.T) {
	sc, err := Open(KindShortcutEH, WithPollInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, ok := AsShortcutEH(sc); !ok {
		t.Fatal("AsShortcutEH failed on a KindShortcutEH store")
	}
	if _, ok := AsExtendibleHashing(sc); ok {
		t.Fatal("AsExtendibleHashing succeeded on a KindShortcutEH store")
	}

	ehs, err := Open(KindEH)
	if err != nil {
		t.Fatal(err)
	}
	defer ehs.Close()
	if _, ok := AsExtendibleHashing(ehs); !ok {
		t.Fatal("AsExtendibleHashing failed on a KindEH store")
	}

	r, err := Open(KindRadix, WithCapacity(10000))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m, ok := AsRadixMap(r)
	if !ok {
		t.Fatal("AsRadixMap failed on a KindRadix store")
	}
	if err := r.Insert(42, 7); err != nil {
		t.Fatal(err)
	}
	seen := 0
	m.Range(func(k, v uint64) bool { seen++; return true })
	if seen != 1 {
		t.Fatalf("Range over the unwrapped map saw %d entries", seen)
	}
	r.Close()
	if _, ok := AsRadixMap(r); ok {
		t.Fatal("AsRadixMap succeeded on a closed store")
	}
}

// TestOpenShortcutRouting checks the paper-facing behavior survives the
// facade: after sync, lookups route through the shortcut directory.
func TestOpenShortcutRouting(t *testing.T) {
	s, err := Open(KindShortcutEH, WithPollInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for k := uint64(1); k <= 50000; k++ {
		if err := s.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if !s.WaitSync(10 * time.Second) {
		t.Fatal("never synced")
	}
	st := s.Stats()
	if !st.InSync || !st.UsingShortcut {
		t.Fatalf("Stats after sync: InSync=%v UsingShortcut=%v", st.InSync, st.UsingShortcut)
	}
	before := st.ShortcutLookups
	keys := make([]uint64, 1024)
	out := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	for i, ok := range s.LookupBatch(keys, out) {
		if !ok || out[i] != keys[i] {
			t.Fatalf("LookupBatch[%d] = %d,%v", i, out[i], ok)
		}
	}
	if got := s.Stats().ShortcutLookups; got != before+1024 {
		t.Fatalf("shortcut lookups = %d, want %d", got, before+1024)
	}
}

// End-to-end replication tests: real TCP servers, real stores, real WAL
// directories — primary and replica in one process so the failover test
// can run under the race detector.
package repl_test

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"vmshortcut"
	"vmshortcut/client"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/op"
	"vmshortcut/internal/wire"
	"vmshortcut/repl"
	"vmshortcut/server"
	"vmshortcut/wal"
)

// node is one served store: a primary or a replica, with its replication
// halves attached.
type node struct {
	store    vmshortcut.Store
	srv      *server.Server
	source   *repl.Source
	follower *repl.Follower
	metrics  *server.Metrics
	addr     string
	dir      string
}

// startNode opens a store and serves it on a loopback port. dir != ""
// makes it durable; primaryOf wires a Source (with syncMode); replicaOf
// wires a Follower. Heartbeats are fast so staleness tests stay quick.
func startNode(t *testing.T, dir string, syncMode bool, replicaOf string, fcfg repl.FollowerConfig, storeOpts ...vmshortcut.Option) *node {
	t.Helper()
	metrics := server.NewMetrics(obs.NewRegistry())
	traces := obs.NewLSNTraces(1024)
	opts := append([]vmshortcut.Option{vmshortcut.WithConcurrency(true)}, storeOpts...)
	if dir != "" {
		opts = append(opts, vmshortcut.WithWAL(dir), vmshortcut.WithFsync(vmshortcut.FsyncOff),
			vmshortcut.WithLSNTraces(traces))
		if fcfg.Chained {
			opts = append(opts, vmshortcut.WithChainedWAL(true))
		}
	}
	st, err := vmshortcut.Open(vmshortcut.KindHT, opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	n := &node{store: st, metrics: metrics, dir: dir}
	cfg := server.Config{Store: st, Logf: t.Logf, Metrics: metrics}
	if rep, ok := vmshortcut.AsReplicable(st); ok {
		n.source = repl.NewSource(rep, repl.SourceConfig{
			Sync:              syncMode,
			HeartbeatInterval: 20 * time.Millisecond,
			Traces:            traces,
			Recorder:          metrics.Recorder(),
			Logf:              t.Logf,
		})
		cfg.Repl = n.source
	}
	if replicaOf != "" {
		fcfg.Primary = replicaOf
		fcfg.Store = st
		fcfg.BaseDir = dir
		fcfg.Logf = t.Logf
		f, err := repl.StartFollower(fcfg)
		if err != nil {
			st.Close()
			t.Fatalf("StartFollower: %v", err)
		}
		n.follower = f
		cfg.Replica = f
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	n.srv = srv
	n.addr = ln.Addr().String()
	t.Cleanup(func() { n.kill() })
	return n
}

// kill tears the node down hard, idempotently: listener and connections
// die first (the network is gone), then replication, then the store.
func (n *node) kill() {
	n.srv.Close()
	if n.follower != nil {
		n.follower.Close()
	}
	if n.source != nil {
		n.source.Close()
	}
	n.store.Close()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitCaughtUp waits until the replica has applied the primary's whole
// log.
func waitCaughtUp(t *testing.T, primary, replica *node) {
	t.Helper()
	rep, _ := vmshortcut.AsReplicable(primary.store)
	waitFor(t, "replica catch-up", func() bool {
		return replica.follower.Counters().AppliedLSN >= rep.LastLSN()
	})
}

func mustDial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.DialConnRetry(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestReplicaServesReadsRejectsWrites(t *testing.T) {
	primary := startNode(t, t.TempDir(), false, "", repl.FollowerConfig{})
	pc := mustDial(t, primary.addr)
	for k := uint64(1); k <= 200; k++ {
		if err := pc.Put(k, k*10); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}

	replica := startNode(t, "", false, primary.addr, repl.FollowerConfig{})
	waitCaughtUp(t, primary, replica)

	rc := mustDial(t, replica.addr)
	for _, k := range []uint64{1, 77, 200} {
		v, found, err := rc.Get(k)
		if err != nil || !found || v != k*10 {
			t.Fatalf("replica Get(%d) = %d, %v, %v; want %d, true", k, v, found, err, k*10)
		}
	}
	if _, found, err := rc.Get(9999); err != nil || found {
		t.Fatalf("replica Get(absent) = %v, %v", found, err)
	}

	// Every mutation shape is refused with ErrReadOnly — and the
	// connection survives the refusal.
	if err := rc.Put(5, 5); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("replica Put err = %v, want ErrReadOnly", err)
	}
	if _, err := rc.Del(5); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("replica Del err = %v, want ErrReadOnly", err)
	}
	if err := rc.PutBatch([]uint64{1, 2}, []uint64{1, 2}); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("replica PutBatch err = %v, want ErrReadOnly", err)
	}
	if _, err := rc.DelBatch([]uint64{1, 2}); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("replica DelBatch err = %v, want ErrReadOnly", err)
	}
	if v, found, err := rc.Get(1); err != nil || !found || v != 10 {
		t.Fatalf("Get(1) after refusals = %d, %v, %v; the connection should survive", v, found, err)
	}

	// A pipelined mix answers per request frame: reads served, writes
	// refused, order preserved.
	p := rc.Pipeline()
	p.Get(1)
	p.Put(42, 42)
	p.Get(77)
	res, err := p.Flush(nil)
	if err != nil {
		t.Fatalf("pipeline Flush: %v", err)
	}
	if res[0].Err != nil || !res[0].Found || res[0].Value != 10 {
		t.Fatalf("pipelined Get(1) = %+v", res[0])
	}
	if !errors.Is(res[1].Err, client.ErrReadOnly) {
		t.Fatalf("pipelined Put err = %v, want ErrReadOnly", res[1].Err)
	}
	if res[2].Err != nil || !res[2].Found || res[2].Value != 770 {
		t.Fatalf("pipelined Get(77) = %+v", res[2])
	}

	// The primary still takes writes, and they flow through.
	if err := pc.Put(777, 7770); err != nil {
		t.Fatalf("primary Put: %v", err)
	}
	waitCaughtUp(t, primary, replica)
	if v, found, err := rc.Get(777); err != nil || !found || v != 7770 {
		t.Fatalf("replicated Get(777) = %d, %v, %v", v, found, err)
	}

	// Roles in STATS.
	ps, err := pc.Stats()
	if err != nil {
		t.Fatalf("primary Stats: %v", err)
	}
	if ps.Role != "primary" || ps.Replication == nil || ps.Replication.Primary == nil ||
		ps.Replication.Primary.Followers != 1 {
		t.Fatalf("primary stats role=%q replication=%+v; want primary with 1 follower", ps.Role, ps.Replication)
	}
	rs, err := rc.Stats()
	if err != nil {
		t.Fatalf("replica Stats: %v", err)
	}
	if rs.Role != "replica" || rs.Replication == nil || rs.Replication.Replica == nil ||
		!rs.Replication.Replica.Connected {
		t.Fatalf("replica stats role=%q replication=%+v; want connected replica", rs.Role, rs.Replication)
	}
}

func TestFullSyncAfterCompaction(t *testing.T) {
	// Small segments so compaction can actually drop the log's prefix;
	// with one big segment the whole log stays tailable and no follower
	// ever needs a snapshot.
	primary := startNode(t, t.TempDir(), false, "", repl.FollowerConfig{},
		vmshortcut.WithWALSegmentBytes(512))
	pc := mustDial(t, primary.addr)
	for k := uint64(1); k <= 100; k++ {
		if err := pc.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot and compact: the log's prefix is gone, so a from-zero
	// follower MUST take the snapshot path.
	d, _ := vmshortcut.AsDurable(primary.store)
	if err := d.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := d.CompactWAL(); err != nil {
		t.Fatalf("CompactWAL: %v", err)
	}
	for k := uint64(101); k <= 150; k++ {
		if err := pc.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}

	replica := startNode(t, t.TempDir(), false, primary.addr, repl.FollowerConfig{})
	waitCaughtUp(t, primary, replica)
	if fs := replica.follower.Counters().FullSyncs; fs != 1 {
		t.Fatalf("FullSyncs = %d, want 1", fs)
	}
	rc := mustDial(t, replica.addr)
	for _, k := range []uint64{1, 100, 101, 150} {
		if v, found, err := rc.Get(k); err != nil || !found || v != k {
			t.Fatalf("replica Get(%d) = %d, %v, %v", k, v, found, err)
		}
	}
}

func TestDurableReplicaRestartResumes(t *testing.T) {
	primary := startNode(t, t.TempDir(), false, "", repl.FollowerConfig{})
	pc := mustDial(t, primary.addr)
	for k := uint64(1); k <= 50; k++ {
		if err := pc.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}

	rdir := t.TempDir()
	replica := startNode(t, rdir, false, primary.addr, repl.FollowerConfig{})
	waitCaughtUp(t, primary, replica)
	applied := replica.follower.Counters().AppliedLSN
	replica.kill()

	// Writes continue while the replica is down.
	for k := uint64(51); k <= 90; k++ {
		if err := pc.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}

	// The restarted replica resumes from its local WAL position — no
	// full sync, and the handshake position maps back into the primary's
	// LSN space via the REPLBASE metadata.
	replica2 := startNode(t, rdir, false, primary.addr, repl.FollowerConfig{})
	waitCaughtUp(t, primary, replica2)
	c := replica2.follower.Counters()
	if c.FullSyncs != 0 {
		t.Fatalf("restarted replica FullSyncs = %d, want 0 (should resume)", c.FullSyncs)
	}
	if c.AppliedLSN <= applied {
		t.Fatalf("restarted replica AppliedLSN = %d, want > %d", c.AppliedLSN, applied)
	}
	rc := mustDial(t, replica2.addr)
	for _, k := range []uint64{1, 50, 51, 90} {
		if v, found, err := rc.Get(k); err != nil || !found || v != k {
			t.Fatalf("replica Get(%d) = %d, %v, %v", k, v, found, err)
		}
	}
}

// TestFailoverLosesNoAckedWrite is the subsystem's reason to exist:
// under synchronous replication, writers hammer the primary from
// several connections, the primary dies mid-stream without warning, the
// replica is promoted — and every write any client saw acknowledged is
// on the new primary.
func TestFailoverLosesNoAckedWrite(t *testing.T) {
	primary := startNode(t, t.TempDir(), true /* sync */, "", repl.FollowerConfig{})
	replica := startNode(t, t.TempDir(), false, primary.addr, repl.FollowerConfig{})

	// Sync-mode soundness gate: until a follower is attached, the
	// primary acknowledges without replication (degraded mode), and
	// those writes carry no failover guarantee.
	waitFor(t, "follower attach", func() bool {
		return primary.source.Counters().Followers >= 1
	})

	const writers = 4
	var (
		mu    sync.Mutex
		acked []uint64
	)
	var wg sync.WaitGroup
	stopWriters := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.DialConnRetry(primary.addr, 2*time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			for i := uint64(0); ; i++ {
				select {
				case <-stopWriters:
					return
				default:
				}
				key := uint64(w)<<32 | i
				if err := c.Put(key, key+1); err != nil {
					return // the primary died under us; unacked, uncounted
				}
				mu.Lock()
				acked = append(acked, key)
				mu.Unlock()
			}
		}(w)
	}

	// Let the writers build up real traffic, then kill the primary
	// abruptly — connections and all, no drain.
	waitFor(t, "some acked writes", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(acked) >= 500
	})
	primary.kill()
	close(stopWriters)
	wg.Wait()

	// Before promotion the replica still refuses writes.
	rc := mustDial(t, replica.addr)
	if err := rc.Put(1, 1); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("pre-promote Put err = %v, want ErrReadOnly", err)
	}

	// Promote over the wire (the same frame ehload's failover check
	// uses), then verify: every acknowledged write must be present.
	if err := rc.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	mu.Lock()
	keys := append([]uint64(nil), acked...)
	mu.Unlock()
	t.Logf("verifying %d acked writes after failover", len(keys))
	for _, k := range keys {
		v, found, err := rc.Get(k)
		if err != nil {
			t.Fatalf("Get(%d) after promote: %v", k, err)
		}
		if !found || v != k+1 {
			t.Fatalf("ACKED WRITE LOST: key %d (found=%v v=%d)", k, found, v)
		}
	}
	// And the new primary takes writes.
	if err := rc.Put(424242, 1); err != nil {
		t.Fatalf("post-promote Put: %v", err)
	}
	if s, err := rc.Stats(); err != nil || s.Role != "primary" {
		t.Fatalf("post-promote Stats role = %q, %v; want primary", s.Role, err)
	}
}

func TestStalenessGate(t *testing.T) {
	primary := startNode(t, t.TempDir(), false, "", repl.FollowerConfig{})
	pc := mustDial(t, primary.addr)
	if err := pc.Put(1, 10); err != nil {
		t.Fatal(err)
	}
	replica := startNode(t, "", false, primary.addr, repl.FollowerConfig{
		Staleness: 250 * time.Millisecond,
	})
	waitCaughtUp(t, primary, replica)

	rc := mustDial(t, replica.addr)
	if v, found, err := rc.Get(1); err != nil || !found || v != 10 {
		t.Fatalf("fresh replica Get = %d, %v, %v", v, found, err)
	}

	// Primary vanishes; once the staleness bound passes with no
	// heartbeat, reads flip to ErrStale (writes stay ErrReadOnly).
	primary.kill()
	waitFor(t, "staleness bound to pass", func() bool {
		_, _, err := rc.Get(1)
		return errors.Is(err, client.ErrStale)
	})
	if err := rc.Put(2, 2); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("stale replica Put err = %v, want ErrReadOnly", err)
	}
	if _, err := rc.GetBatch([]uint64{1}, make([]uint64, 1)); !errors.Is(err, client.ErrStale) {
		t.Fatalf("stale replica GetBatch err = %v, want ErrStale", err)
	}

	// Promotion clears staleness: the replica is its own authority now.
	if err := rc.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if v, found, err := rc.Get(1); err != nil || !found || v != 10 {
		t.Fatalf("post-promote Get = %d, %v, %v", v, found, err)
	}
}

func TestChainedStreamReplicates(t *testing.T) {
	primary := startNode(t, t.TempDir(), false, "", repl.FollowerConfig{Chained: true})
	pc := mustDial(t, primary.addr)
	for k := uint64(1); k <= 100; k++ {
		if err := pc.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	replica := startNode(t, "", false, primary.addr, repl.FollowerConfig{Chained: true})
	waitCaughtUp(t, primary, replica)
	if err := replica.follower.Err(); err != nil {
		t.Fatalf("chained stream halted: %v", err)
	}
	rc := mustDial(t, replica.addr)
	for _, k := range []uint64{1, 50, 100} {
		if v, found, err := rc.Get(k); err != nil || !found || v != k {
			t.Fatalf("Get(%d) = %d, %v, %v", k, v, found, err)
		}
	}
	// The primary's stats publish the chain head.
	s, err := pc.Stats()
	if err != nil || s.Replication == nil || s.Replication.Primary == nil {
		t.Fatalf("Stats: %v, %+v", err, s.Replication)
	}
	if s.Replication.Primary.ChainHead == "" {
		t.Fatal("chained primary published no chain head")
	}
}

// TestChainedStreamDetectsTamper runs a follower against a fake primary
// that ships one valid record and one whose chain digest belongs to a
// different payload — as a man-in-the-middle altering a shipped write
// would produce. The follower must apply the first, halt fatally on the
// second, and never apply the altered bytes.
func TestChainedStreamDetectsTamper(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Two put-batch records as a primary would ship them.
	payloadFor := func(key, val uint64) (byte, []byte) {
		var b op.Batch
		b.Put(key, val)
		code, p := b.Payload()
		return code, append([]byte(nil), p...)
	}
	served := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			served <- err
			return
		}
		defer c.Close()
		var buf []byte
		tag, payload, _, err := wire.ReadReplFrame(c, buf)
		if err != nil || tag != wire.OpReplSync {
			served <- fmt.Errorf("handshake: tag 0x%02x, %v", tag, err)
			return
		}
		from, flags, err := wire.DecodeReplSync(payload)
		if err != nil || flags&wire.ReplFlagChained == 0 {
			served <- fmt.Errorf("handshake: from=%d flags=0x%02x, %v", from, flags, err)
			return
		}
		chain := wal.NewChain(from)
		var out []byte
		// Record 1: honest.
		code, p1 := payloadFor(1, 10)
		sum, _ := chain.Extend(from+1, code, p1)
		out = wire.AppendReplRecord(out, from+1, code, &sum, p1)
		// Record 2: the shipped bytes say Put(2, 666), but the digest was
		// computed over the original Put(2, 20) — an in-flight alteration.
		code2, honest := payloadFor(2, 20)
		sum2, _ := chain.Extend(from+2, code2, honest)
		_, altered := payloadFor(2, 666)
		out = wire.AppendReplRecord(out, from+2, code2, &sum2, altered)
		if _, err := c.Write(out); err != nil {
			served <- err
			return
		}
		// Hold the connection open: the follower must halt on its own
		// verdict, not on EOF.
		ack := make([]byte, 64)
		c.SetReadDeadline(time.Now().Add(10 * time.Second))
		for {
			if _, err := c.Read(ack); err != nil {
				served <- nil
				return
			}
		}
	}()

	st, err := vmshortcut.Open(vmshortcut.KindHT, vmshortcut.WithConcurrency(true))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	f, err := repl.StartFollower(repl.FollowerConfig{
		Primary: ln.Addr().String(),
		Store:   st,
		Chained: true,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	waitFor(t, "tamper verdict", func() bool { return f.Err() != nil })
	if got := f.Err().Error(); !strings.Contains(got, "chain digest mismatch") {
		t.Fatalf("fatal error = %q, want a chain digest mismatch", got)
	}
	// The honest record applied; the altered one did not.
	var out [1]uint64
	if oks := st.LookupBatch([]uint64{1}, out[:]); !oks[0] || out[0] != 10 {
		t.Fatalf("honest record not applied: %v %d", oks[0], out[0])
	}
	if oks := st.LookupBatch([]uint64{2}, out[:]); oks[0] {
		t.Fatal("altered record was applied")
	}
	if c := f.Counters(); c.RecordsApplied != 1 {
		t.Fatalf("RecordsApplied = %d, want 1", c.RecordsApplied)
	}
	if err := <-served; err != nil {
		t.Fatalf("fake primary: %v", err)
	}
}

package repl

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut"
	"vmshortcut/client"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/op"
	"vmshortcut/internal/wire"
	"vmshortcut/persist"
	"vmshortcut/wal"
)

// FollowerConfig configures a replica's connection to its primary.
type FollowerConfig struct {
	// Primary is the primary server's host:port. Required.
	Primary string
	// Store is the local store records are applied to. Required. A
	// durable store gives the replica its own WAL and snapshots, so a
	// restart resumes from its last applied position instead of taking a
	// full sync.
	Store vmshortcut.Store
	// BaseDir is where the replica keeps its position metadata (the
	// REPLBASE file). Required when Store is durable — pass the store's
	// WAL directory; ignored for in-memory stores.
	BaseDir string
	// Staleness bounds how long the replica keeps serving reads after
	// losing contact with the primary; past it, reads are refused with
	// StatusStale until contact resumes. 0 serves reads indefinitely.
	Staleness time.Duration
	// Chained requests per-record chain digests and verifies each one,
	// halting replication at the first divergence.
	Chained bool
	// Trace opts the stream into trace metadata (wire.ReplFlagTrace): the
	// primary interleaves per-record trace context and append timestamps,
	// and the follower returns its apply spans upstream. Leave false
	// against a primary that predates the flag — old primaries reject
	// unknown handshake flags, loudly.
	Trace bool
	// Recorder, when set, captures the follower's own apply spans for
	// sampled records, so the replica's /tracez shows its side of each
	// trace. Requires Trace (without the stream metadata the follower
	// never learns a record's trace ID).
	Recorder *obs.Recorder
	// Pipeline, when set, records every record's apply span into the
	// follower_apply stage histogram — independent of Trace, so a replica
	// has apply latency percentiles even on an untraced stream.
	Pipeline *obs.Pipeline
	// DialTimeout bounds each connection attempt. Default 2s (the
	// reconnect loop retries indefinitely regardless).
	DialTimeout time.Duration
	// Logf receives replication events; nil discards them.
	Logf func(format string, args ...any)
}

// Follower replicates a primary into a local store and serves the
// replica side of the server's gating: WritesAllowed, Stale, Promote.
// Start it with StartFollower; it reconnects on its own until promoted
// or closed.
type Follower struct {
	cfg FollowerConfig
	rep vmshortcut.Replicable // nil for in-memory stores

	// now is the staleness clock; nil means time.Now. Tests inject a
	// fake so the READ→STALE transition is deterministic, without
	// sleeping out a real staleness bound.
	now func() time.Time

	// applied is the primary-log LSN the local store reflects; base maps
	// local WAL positions to primary positions (primary = base + local)
	// and is only touched by the session goroutine after startup.
	applied     atomic.Uint64
	base        uint64
	primaryLSN  atomic.Uint64
	lastContact atomic.Int64 // unix nanos of last primary frame; 0 = never
	connected   atomic.Bool
	promoted    atomic.Bool

	fullSyncs      atomic.Uint64
	reconnects     atomic.Uint64
	recordsApplied atomic.Uint64

	// applyLagMS is the append-to-apply time lag of the most recently
	// applied record, milliseconds (-1 until measurable — requires a
	// trace-enabled stream carrying append timestamps). Primary and
	// replica clocks both contribute, so skew between the machines skews
	// the gauge; it is a lag indicator, not a precision measurement.
	applyLagMS atomic.Int64

	fatalMu  sync.Mutex
	fatalErr error

	stopOnce sync.Once
	stopc    chan struct{}
	done     chan struct{}
	connMu   sync.Mutex
	conn     net.Conn // live session's connection, for interrupt
}

// replBase is the REPLBASE file: how a durable replica's local WAL
// positions map back to the primary's log after a restart. Written once
// per full sync, read once at startup.
type replBase struct {
	// Base is the primary LSN the local log's position 0 corresponds to:
	// primaryLSN = Base + localLSN.
	Base uint64 `json:"base"`
	// Primary records which primary the state came from, for operator
	// sanity-checks in logs.
	Primary string `json:"primary"`
}

const replBaseName = "REPLBASE"

func readReplBase(dir string) (replBase, bool, error) {
	var rb replBase
	b, err := os.ReadFile(filepath.Join(dir, replBaseName))
	if os.IsNotExist(err) {
		return rb, false, nil
	}
	if err != nil {
		return rb, false, err
	}
	if err := json.Unmarshal(b, &rb); err != nil {
		return rb, false, fmt.Errorf("repl: corrupt %s: %w", replBaseName, err)
	}
	return rb, true, nil
}

func writeReplBase(dir string, rb replBase) error {
	b, err := json.Marshal(rb)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, replBaseName+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err == nil {
		f.Sync()
		f.Close()
	}
	return os.Rename(tmp, filepath.Join(dir, replBaseName))
}

// StartFollower validates the replica's local state against its
// metadata, then starts the replication loop in the background. Local
// state without replication metadata is refused loudly — silently
// layering a primary's stream over unrelated data would corrupt both —
// the fix is wiping the replica's data directory.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, errors.New("repl: follower needs a primary address")
	}
	if cfg.Store == nil {
		return nil, errors.New("repl: follower needs a store")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	f := &Follower{
		cfg:   cfg,
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
	f.applyLagMS.Store(-1)
	if rep, ok := vmshortcut.AsReplicable(cfg.Store); ok {
		if cfg.BaseDir == "" {
			return nil, errors.New("repl: a durable replica needs BaseDir (its WAL directory) for position metadata")
		}
		f.rep = rep
		rb, found, err := readReplBase(cfg.BaseDir)
		if err != nil {
			return nil, err
		}
		local := rep.LastLSN()
		switch {
		case found:
			f.base = rb.Base
			f.applied.Store(rb.Base + local)
		case local > 0 || cfg.Store.Len() > 0:
			return nil, fmt.Errorf("repl: %s has local state but no %s; refusing to replicate over it (wipe the directory to make this a replica)",
				cfg.BaseDir, replBaseName)
		default:
			// A fresh replica tails from zero, so local LSNs equal primary
			// LSNs (base 0). Written now — before any record lands — so a
			// restart at any point resumes instead of being refused as
			// foreign state.
			if err := writeReplBase(cfg.BaseDir, replBase{Base: 0, Primary: cfg.Primary}); err != nil {
				return nil, fmt.Errorf("repl: writing %s: %w", replBaseName, err)
			}
		}
	} else if cfg.Store.Len() > 0 {
		return nil, errors.New("repl: refusing to replicate into a non-empty store")
	}
	go f.run()
	return f, nil
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

func (f *Follower) stopped() bool {
	select {
	case <-f.stopc:
		return true
	default:
		return false
	}
}

// fatal records an unrecoverable divergence (tampered stream, apply
// failure, state mismatch) and returns it; run stops reconnecting once
// one is set. The replica keeps serving whatever it has — its staleness
// bound, if any, takes over the freshness story.
func (f *Follower) fatal(err error) error {
	f.fatalMu.Lock()
	if f.fatalErr == nil {
		f.fatalErr = err
	}
	f.fatalMu.Unlock()
	return err
}

// Err reports the fatal error that halted replication, if any.
func (f *Follower) Err() error {
	f.fatalMu.Lock()
	defer f.fatalMu.Unlock()
	return f.fatalErr
}

// clock returns the follower's time source (the real clock unless a
// test injected one).
func (f *Follower) clock() time.Time {
	if f.now != nil {
		return f.now()
	}
	return time.Now()
}

func (f *Follower) touch() { f.lastContact.Store(f.clock().UnixNano()) }

// WritesAllowed implements the server's Replica gate: false until
// promoted.
func (f *Follower) WritesAllowed() bool { return f.promoted.Load() }

// Stale reports whether reads should be refused: the primary has been
// silent past the configured staleness bound. A promoted replica is
// never stale; without a bound, reads are served indefinitely.
func (f *Follower) Stale() bool {
	bound := f.cfg.Staleness
	if bound <= 0 || f.promoted.Load() {
		return false
	}
	last := f.lastContact.Load()
	if last == 0 {
		return true // never heard from the primary yet
	}
	return f.clock().Sub(time.Unix(0, last)) > bound
}

// Promote makes the replica a primary: replication stops, the applied
// stream is drained, and writes are accepted from the return onward. It
// returns the last primary LSN applied — everything the old primary
// acknowledged (under synchronous replication) is in the store. Safe to
// call more than once.
func (f *Follower) Promote() uint64 {
	f.promoted.Store(true)
	f.shutdown()
	<-f.done
	applied := f.applied.Load()
	f.logf("repl: promoted at primary LSN %d; accepting writes", applied)
	return applied
}

// Close stops replication without promoting. Safe alongside Promote.
func (f *Follower) Close() {
	f.shutdown()
	<-f.done
}

func (f *Follower) shutdown() {
	f.stopOnce.Do(func() {
		close(f.stopc)
		f.connMu.Lock()
		if f.conn != nil {
			f.conn.Close()
		}
		f.connMu.Unlock()
	})
}

// Counters snapshots the replica-side replication stats.
func (f *Follower) Counters() *wire.ReplicaReplCounters {
	applied := f.applied.Load()
	primary := f.primaryLSN.Load()
	if primary < applied {
		primary = applied
	}
	lastMS := int64(-1)
	if lc := f.lastContact.Load(); lc > 0 {
		lastMS = f.clock().Sub(time.Unix(0, lc)).Milliseconds()
	}
	return &wire.ReplicaReplCounters{
		PrimaryAddr:      f.cfg.Primary,
		Connected:        f.connected.Load(),
		AppliedLSN:       applied,
		PrimaryLSN:       primary,
		LastContactMS:    lastMS,
		StalenessBoundMS: f.cfg.Staleness.Milliseconds(),
		Stale:            f.Stale(),
		Promoted:         f.promoted.Load(),
		FullSyncs:        f.fullSyncs.Load(),
		Reconnects:       f.reconnects.Load(),
		RecordsApplied:   f.recordsApplied.Load(),
		LagRecords:       primary - applied,
		LagMS:            f.applyLagMS.Load(),
	}
}

// run is the replication loop: one session per connection, reconnecting
// with a short backoff until closed, promoted, or fatally diverged.
func (f *Follower) run() {
	defer close(f.done)
	defer f.connected.Store(false)
	for first := true; ; first = false {
		if f.stopped() {
			return
		}
		if !first {
			f.reconnects.Add(1)
		}
		err := f.session()
		if f.stopped() {
			return
		}
		if f.Err() != nil {
			f.logf("repl: replication halted: %v", f.Err())
			return
		}
		if err != nil {
			f.logf("repl: session with %s ended: %v; reconnecting", f.cfg.Primary, err)
		}
		select {
		case <-f.stopc:
			return
		case <-time.After(300 * time.Millisecond):
		}
	}
}

// session runs one connection's lifetime: dial, handshake, then apply
// stream frames until the connection dies or the follower stops.
func (f *Follower) session() error {
	cc, err := client.DialConnRetry(f.cfg.Primary, f.cfg.DialTimeout)
	if err != nil {
		return err
	}
	nc, br, bw := cc.Hijack()
	f.connMu.Lock()
	if f.stopped() {
		f.connMu.Unlock()
		nc.Close()
		return nil
	}
	f.conn = nc
	f.connMu.Unlock()
	defer func() {
		f.connMu.Lock()
		f.conn = nil
		f.connMu.Unlock()
		nc.Close()
		f.connected.Store(false)
	}()

	from := f.applied.Load()
	var flags byte
	if f.cfg.Chained {
		flags |= wire.ReplFlagChained
	}
	if f.cfg.Trace {
		flags |= wire.ReplFlagTrace
	}
	if _, err := bw.Write(wire.AppendReplSync(nil, from, flags)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	f.connected.Store(true)
	f.logf("repl: streaming from %s after LSN %d", f.cfg.Primary, from)

	// The stream chain re-anchors at each session's start position; a
	// full sync re-anchors it again at the snapshot position.
	chain := wal.NewChain(from)
	var (
		buf, ack []byte
		b        op.Batch
		res      op.Results
		// Stashed TRACEMETA for the record that follows it, matched by
		// LSN. Session-local: the primary interleaves each meta frame
		// immediately before its record on the same stream.
		metaLSN, metaTraceID uint64
		metaAppendNS         int64
	)
	for {
		tag, payload, nbuf, err := wire.ReadReplFrame(br, buf)
		buf = nbuf
		if err != nil {
			if f.stopped() {
				return nil
			}
			return err
		}
		f.touch()
		switch tag {
		case wire.ReplSnapBegin:
			snapLSN, err := f.restoreSnapshot(payload, br, &buf)
			if err != nil {
				return err
			}
			chain = wal.NewChain(snapLSN)
			f.fullSyncs.Add(1)
			f.logf("repl: full sync restored through LSN %d", snapLSN)

		case wire.ReplRecord, wire.ReplRecordHashed:
			lsn, code, hash, rp, err := wire.DecodeReplRecord(tag, payload)
			if err != nil {
				return err
			}
			want := f.applied.Load() + 1
			if lsn != want {
				return fmt.Errorf("repl: stream gap: got record %d, want %d", lsn, want)
			}
			if f.cfg.Chained {
				if hash == nil {
					return f.fatal(errors.New("repl: primary sent an unhashed record on a chained stream"))
				}
				sum, err := chain.Extend(lsn, code, rp)
				if err != nil {
					return f.fatal(err)
				}
				if !bytes.Equal(sum[:], hash) {
					return f.fatal(fmt.Errorf("repl: chain digest mismatch at record %d: the stream was tampered with or the logs diverged", lsn))
				}
			}
			if err := wire.DecodeBatch(code, rp, &b); err != nil {
				return f.fatal(fmt.Errorf("repl: record %d: %w", lsn, err))
			}
			// The same apply path crash recovery uses; on a durable
			// replica this also appends the record to the local WAL —
			// byte-identical to the primary's, zero re-encode.
			applyStart := time.Now()
			if err := f.cfg.Store.ApplyBatch(&b, &res); err != nil {
				return f.fatal(fmt.Errorf("repl: applying record %d: %w", lsn, err))
			}
			span := time.Since(applyStart)
			f.cfg.Pipeline.Record(obs.StageFollowerApply, uint64(span))
			f.applied.Store(lsn)
			f.recordsApplied.Add(1)
			if lsn > f.primaryLSN.Load() {
				f.primaryLSN.Store(lsn)
			}
			ack = ack[:0]
			if metaLSN == lsn {
				// Append-to-apply time lag, from the primary's append
				// timestamp to the replica's clock now.
				if lag := (f.clock().UnixNano() - metaAppendNS) / int64(time.Millisecond); lag >= 0 {
					f.applyLagMS.Store(lag)
				}
				if metaTraceID != 0 {
					// The record belongs to a sampled trace: capture the
					// apply span locally and return it upstream so the
					// primary's flight recorder joins both sides.
					rec := obs.TraceRecord{
						ID: metaTraceID, StartNS: applyStart.UnixNano(),
						Origin: obs.OriginFollower, Ops: b.Len(), LSN: lsn,
					}
					rec.NS[obs.StageFollowerApply] = uint64(span)
					rec.Set[obs.StageFollowerApply] = true
					f.cfg.Recorder.Record(rec)
					ack = wire.AppendReplSpan(ack, metaTraceID, lsn, uint64(span))
				}
				metaLSN, metaTraceID, metaAppendNS = 0, 0, 0
			}
			ack = wire.AppendReplU64(ack, wire.ReplAck, lsn)
			if _, err := bw.Write(ack); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}

		case wire.ReplTraceMeta:
			metaLSN, metaTraceID, metaAppendNS, err = wire.DecodeReplTraceMeta(payload)
			if err != nil {
				return err
			}

		case wire.ReplHeartbeat:
			lsn, err := wire.DecodeReplU64(payload)
			if err != nil {
				return err
			}
			if lsn > f.primaryLSN.Load() {
				f.primaryLSN.Store(lsn)
			}

		case wire.StatusErr:
			return f.fatal(fmt.Errorf("repl: primary refused the stream: %s", payload))

		default:
			return fmt.Errorf("repl: unexpected stream frame 0x%02x", tag)
		}
	}
}

// restoreSnapshot consumes a full-sync stream (SNAPBEGIN already read;
// its payload is hdr) into the local store and records the position
// mapping. A full sync is only legal into an empty replica — the
// primary only sends one when the follower asked to start below its
// oldest retained record, which an empty replica does and a caught-up
// one does not; anything else means operator error, refused fatally.
func (f *Follower) restoreSnapshot(hdr []byte, br *bufio.Reader, buf *[]byte) (uint64, error) {
	snapLSN, size, err := wire.DecodeReplSnapBegin(hdr)
	if err != nil {
		return 0, err
	}
	if f.applied.Load() != 0 || f.cfg.Store.Len() != 0 {
		return 0, f.fatal(errors.New("repl: primary requires a full sync but the replica has local state " +
			"(the primary's compaction outpaced this replica, or the state is foreign); " +
			"wipe the replica's data directory and restart to take the full sync"))
	}
	f.logf("repl: full sync: restoring %d-byte snapshot through LSN %d", size, snapLSN)
	fr := &snapFrameReader{br: br, buf: buf, touch: f.touch}
	if _, err := persist.Restore(fr, f.cfg.Store.InsertBatch); err != nil {
		return 0, f.fatal(fmt.Errorf("repl: restoring snapshot: %w", err))
	}
	if err := fr.drain(); err != nil {
		return 0, err
	}
	if f.rep != nil {
		// The snapshot's pairs entered through InsertBatch, which on a
		// durable store logs them locally; the local log position now
		// corresponds to the primary's snapLSN.
		f.base = snapLSN - f.rep.LastLSN()
		if err := writeReplBase(f.cfg.BaseDir, replBase{Base: f.base, Primary: f.cfg.Primary}); err != nil {
			return 0, f.fatal(fmt.Errorf("repl: writing %s: %w", replBaseName, err))
		}
	}
	f.applied.Store(snapLSN)
	if snapLSN > f.primaryLSN.Load() {
		f.primaryLSN.Store(snapLSN)
	}
	return snapLSN, nil
}

// snapFrameReader adapts the chunked snapshot frames into the io.Reader
// persist.Restore expects. It returns io.EOF at the SNAPEND frame, so a
// buffered reader inside Restore can over-read harmlessly.
type snapFrameReader struct {
	br    *bufio.Reader
	buf   *[]byte
	cur   []byte
	done  bool
	touch func()
}

func (fr *snapFrameReader) Read(p []byte) (int, error) {
	for len(fr.cur) == 0 {
		if fr.done {
			return 0, io.EOF
		}
		tag, payload, nbuf, err := wire.ReadReplFrame(fr.br, *fr.buf)
		*fr.buf = nbuf
		if err != nil {
			return 0, err
		}
		fr.touch()
		switch tag {
		case wire.ReplSnapChunk:
			fr.cur = payload
		case wire.ReplSnapEnd:
			fr.done = true
			return 0, io.EOF
		default:
			return 0, fmt.Errorf("repl: unexpected frame 0x%02x inside a snapshot stream", tag)
		}
	}
	n := copy(p, fr.cur)
	fr.cur = fr.cur[n:]
	return n, nil
}

// drain consumes through the SNAPEND frame if Restore's own buffering
// stopped short of it, so the record stream resumes frame-aligned.
func (fr *snapFrameReader) drain() error {
	var p [4096]byte
	for !fr.done {
		if _, err := fr.Read(p[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
	return nil
}

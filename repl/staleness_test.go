// Deterministic staleness-bound coverage: a fake clock injected into the
// follower drives the READ→STALE transition after primary loss without a
// single real sleep, and pins that renewed contact (a reconnected
// session's first frame — every stream frame calls touch) clears STALE.
package repl

import (
	"testing"
	"time"

	"vmshortcut/internal/wire"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// newStalenessFollower builds a follower with the staleness machinery
// wired to a fake clock, bypassing the network: Stale is a pure function
// of lastContact, the bound, and promotion, all of which the replication
// session drives through touch()/Promote().
func newStalenessFollower(bound time.Duration, clk *fakeClock) *Follower {
	return &Follower{
		cfg:   FollowerConfig{Primary: "test:0", Staleness: bound},
		now:   clk.now,
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
}

func TestStalenessTransitions(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	const bound = 250 * time.Millisecond
	f := newStalenessFollower(bound, clk)

	// Before any contact the follower has nothing trustworthy to serve.
	if !f.Stale() {
		t.Fatal("a follower that never heard from its primary must be stale")
	}

	// First frame arrives: reads are fresh.
	f.touch()
	if f.Stale() {
		t.Fatal("stale immediately after contact")
	}

	// Time passes with the primary alive (frames keep arriving): never
	// stale, even across many bounds' worth of wall time.
	for i := 0; i < 10; i++ {
		clk.advance(bound / 2)
		f.touch()
		if f.Stale() {
			t.Fatalf("stale at step %d despite steady contact", i)
		}
	}

	// Primary dies: silence up to the bound is still servable …
	clk.advance(bound)
	if f.Stale() {
		t.Fatal("stale at exactly the bound; the bound itself is still fresh")
	}
	// … one tick past it is not. This is the READ→STALE transition the
	// server surfaces as StatusStale.
	clk.advance(1)
	if !f.Stale() {
		t.Fatal("not stale past the bound after primary loss")
	}

	// Counters must agree with the gate while stale.
	c := f.Counters()
	if !c.Stale || c.StalenessBoundMS != bound.Milliseconds() {
		t.Fatalf("counters disagree with Stale(): %+v", c)
	}
	if want := (bound + 1).Milliseconds(); c.LastContactMS != want {
		t.Fatalf("LastContactMS = %d, want %d", c.LastContactMS, want)
	}

	// The primary comes back: the reconnected session's first frame
	// clears STALE immediately.
	f.touch()
	if f.Stale() {
		t.Fatal("reconnect did not clear STALE")
	}
	if c := f.Counters(); c.Stale || c.LastContactMS != 0 {
		t.Fatalf("counters not reset after reconnect: %+v", c)
	}

	// Losing the primary again re-trips the bound — staleness is not
	// one-shot.
	clk.advance(bound + 1)
	if !f.Stale() {
		t.Fatal("second primary loss did not re-trip staleness")
	}
}

func TestStalenessPromotionAndNoBound(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}

	// A promoted replica is the primary: never stale, no matter how long
	// ago the old primary was heard from.
	f := newStalenessFollower(100*time.Millisecond, clk)
	f.touch()
	clk.advance(time.Hour)
	if !f.Stale() {
		t.Fatal("precondition: un-promoted follower should be stale")
	}
	f.promoted.Store(true)
	if f.Stale() {
		t.Fatal("a promoted replica must never refuse reads as stale")
	}

	// Without a bound, reads are served indefinitely — even having never
	// heard from the primary.
	g := newStalenessFollower(0, clk)
	if g.Stale() {
		t.Fatal("boundless follower reported stale before contact")
	}
	g.touch()
	clk.advance(1000 * time.Hour)
	if g.Stale() {
		t.Fatal("boundless follower reported stale after silence")
	}
}

// TestStalenessCountersAreWireVisible pins that the gate state tests
// above drive the exact struct served to STATS clients, so an operator
// diagnosing STALE refusals sees the same numbers the gate used.
func TestStalenessCountersAreWireVisible(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	f := newStalenessFollower(50*time.Millisecond, clk)
	f.touch()
	clk.advance(51 * time.Millisecond)
	var c *wire.ReplicaReplCounters = f.Counters()
	if !c.Stale {
		t.Fatalf("wire counters missed the stale transition: %+v", c)
	}
}

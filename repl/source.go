package repl

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/wire"
	"vmshortcut/wal"
)

// SourceConfig configures the primary side of replication.
type SourceConfig struct {
	// Sync makes replication synchronous: the server holds each mutation's
	// acknowledgement until a connected follower has acknowledged applying
	// it (see WaitShipped for the degrade semantics).
	Sync bool
	// SyncTimeout bounds how long a synchronous write waits for a follower
	// acknowledgement before degrading. Default 5s.
	SyncTimeout time.Duration
	// HeartbeatInterval paces the idle-stream keepalive frames that carry
	// the primary's position to followers. Default 500ms.
	HeartbeatInterval time.Duration
	// Traces is the primary's LSN→(trace ID, append time) ring, stamped by
	// the durable layer (vmshortcut.WithLSNTraces). When set, streams that
	// negotiated wire.ReplFlagTrace get a ReplTraceMeta frame ahead of each
	// record, and follower acknowledgements are turned into append-to-ack
	// time-lag measurements. Nil disables both.
	Traces *obs.LSNTraces
	// Recorder, when set, receives follower apply spans returning upstream
	// as ReplSpan frames: each is merged into the matching trace's flight-
	// recorder entry under obs.StageFollowerApply, joining the follower's
	// side of the pipeline to the primary's trace.
	Recorder *obs.Recorder
	// Logf receives replication events; nil discards them.
	Logf func(format string, args ...any)
}

// Source serves replication streams off a Replicable store. One Source
// is shared by every follower connection; the server hands connections
// over via ServeConn after decoding their REPLSYNC handshake.
type Source struct {
	rep vmshortcut.Replicable
	cfg SourceConfig

	mu        sync.Mutex
	followers map[*followerConn]struct{}
	ackC      chan struct{} // closed and replaced whenever acks/membership change
	closed    bool
	stopc     chan struct{}

	recordsShipped   atomic.Uint64
	bytesShipped     atomic.Uint64
	snapshotsShipped atomic.Uint64
	syncTimeouts     atomic.Uint64

	// ackLagMS is the append-to-ack time lag of the most recently
	// acknowledged record, milliseconds (-1 until measurable — requires
	// cfg.Traces and an ack whose LSN is still in the ring).
	ackLagMS atomic.Int64
}

// followerConn is one connected stream's shared state: the connection
// (for teardown) and the highest LSN the follower has acknowledged.
type followerConn struct {
	c     net.Conn
	acked atomic.Uint64
}

// NewSource returns a Source shipping rep's log. Close it before closing
// the store.
func NewSource(rep vmshortcut.Replicable, cfg SourceConfig) *Source {
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 5 * time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	s := &Source{
		rep:       rep,
		cfg:       cfg,
		followers: make(map[*followerConn]struct{}),
		ackC:      make(chan struct{}),
		stopc:     make(chan struct{}),
	}
	s.ackLagMS.Store(-1)
	return s
}

// SyncMode reports whether writes should wait for follower
// acknowledgement.
func (s *Source) SyncMode() bool { return s.cfg.Sync }

// LastLSN is the primary log's position (the target WaitShipped waits
// for after a mutation).
func (s *Source) LastLSN() uint64 { return s.rep.LastLSN() }

func (s *Source) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// bumpAcks wakes every WaitShipped waiter to re-evaluate; called when a
// follower acknowledges progress, connects, or disconnects.
func (s *Source) bumpAcks() {
	s.mu.Lock()
	close(s.ackC)
	s.ackC = make(chan struct{})
	s.mu.Unlock()
}

// WaitShipped blocks until some connected follower has acknowledged
// applying lsn, and reports whether one did. It degrades rather than
// stalling the write path: with no follower connected it returns true
// immediately (an unreplicated primary still serves), and after
// SyncTimeout it returns false and counts a sync timeout. "Some
// follower" — not all — is the useful guarantee: it means at least one
// promotable replica holds every acknowledged write.
func (s *Source) WaitShipped(lsn uint64) bool {
	var timer *time.Timer
	for {
		s.mu.Lock()
		if s.closed || len(s.followers) == 0 {
			s.mu.Unlock()
			return true
		}
		shipped := false
		for fc := range s.followers {
			if fc.acked.Load() >= lsn {
				shipped = true
				break
			}
		}
		ch := s.ackC
		s.mu.Unlock()
		if shipped {
			return true
		}
		if timer == nil {
			timer = time.NewTimer(s.cfg.SyncTimeout)
			defer timer.Stop()
		}
		select {
		case <-ch:
		case <-timer.C:
			s.syncTimeouts.Add(1)
			return false
		}
	}
}

// Counters snapshots the primary-side replication stats.
func (s *Source) Counters() *wire.PrimaryReplCounters {
	pc := &wire.PrimaryReplCounters{
		SyncMode:         s.cfg.Sync,
		LastLSN:          s.rep.LastLSN(),
		RecordsShipped:   s.recordsShipped.Load(),
		BytesShipped:     s.bytesShipped.Load(),
		SnapshotsShipped: s.snapshotsShipped.Load(),
		SyncTimeouts:     s.syncTimeouts.Load(),
	}
	pc.LagMS = s.ackLagMS.Load()
	s.mu.Lock()
	pc.Followers = len(s.followers)
	for fc := range s.followers {
		if a := fc.acked.Load(); pc.MinAckedLSN == 0 || a < pc.MinAckedLSN {
			pc.MinAckedLSN = a
		}
	}
	s.mu.Unlock()
	if pc.Followers > 0 && pc.LastLSN > pc.MinAckedLSN {
		pc.LagRecords = pc.LastLSN - pc.MinAckedLSN
	}
	if _, _, head, ok := s.rep.ChainHead(); ok {
		pc.ChainHead = hex.EncodeToString(head[:])
	}
	return pc
}

// Close stops every follower stream and refuses new ones. Safe to call
// more than once.
func (s *Source) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stopc)
	for fc := range s.followers {
		fc.c.Close()
	}
	s.mu.Unlock()
	s.bumpAcks()
}

// ServeConn runs one replication stream until the follower disconnects
// or the source closes: full sync if the follower's position has been
// compacted away, then the record tail, with heartbeats while idle and
// an ack reader upstream. It owns the connection from here on (the
// server's request loop has exited) but does not close it — the caller
// does, uniformly with regular connections. br carries any bytes the
// server over-read past the handshake; bw is the connection's writer.
func (s *Source) ServeConn(c net.Conn, br *bufio.Reader, bw *bufio.Writer, from uint64, flags byte) error {
	fc := &followerConn{c: c}
	fc.acked.Store(from)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("repl: source closed")
	}
	s.followers[fc] = struct{}{}
	s.mu.Unlock()
	s.bumpAcks()
	defer func() {
		s.mu.Lock()
		delete(s.followers, fc)
		s.mu.Unlock()
		s.bumpAcks() // sync writers must not wait on a vanished follower
	}()

	// stop fans every local goroutine's exit into the tail loop; any of
	// connection death, source close, or ack-reader error closes it.
	stop := make(chan struct{})
	var stopOnce sync.Once
	closeStop := func() { stopOnce.Do(func() { close(stop) }) }
	defer closeStop()
	go func() {
		select {
		case <-s.stopc:
			c.Close()
			closeStop()
		case <-stop:
		}
	}()

	// Ack reader: the only upstream traffic after the handshake. A read
	// error means the connection is gone; tearing down the stream side
	// via closeStop unblocks the tail loop's next write promptly.
	go func() {
		defer closeStop()
		defer c.Close()
		var buf []byte
		for {
			tag, payload, nbuf, err := wire.ReadReplFrame(br, buf)
			buf = nbuf
			if err != nil {
				return
			}
			switch tag {
			case wire.ReplAck:
			case wire.ReplSpan:
				// A follower's apply span returning for a sampled trace:
				// merge it into the flight recorder so /tracez shows the
				// follower's side of the pipeline on the primary.
				if id, _, spanNS, err := wire.DecodeReplSpan(payload); err == nil {
					s.cfg.Recorder.Merge(id, obs.StageFollowerApply, spanNS)
				}
				continue
			default:
				continue // tolerate future upstream frame kinds
			}
			lsn, err := wire.DecodeReplU64(payload)
			if err != nil {
				return
			}
			// Append-to-ack time lag: the acked record's append timestamp is
			// still in the LSN ring unless the follower is very far behind.
			if ent, ok := s.cfg.Traces.Get(lsn); ok {
				if lag := (time.Now().UnixNano() - ent.AppendNS) / int64(time.Millisecond); lag >= 0 {
					s.ackLagMS.Store(lag)
				}
			}
			if lsn > fc.acked.Load() {
				fc.acked.Store(lsn)
				s.bumpAcks()
			}
		}
	}()

	// wmu serializes the heartbeat goroutine and the shipping loop on bw.
	var wmu sync.Mutex

	start := from
	if oldest := s.rep.OldestLSN(); start+1 < oldest {
		// The follower's next record has been compacted away (or the
		// follower is brand new); ship a full snapshot and resume the
		// stream from its position.
		snapLSN, err := s.streamSnapshot(bw, &wmu)
		if err != nil {
			return fmt.Errorf("repl: streaming full sync: %w", err)
		}
		s.snapshotsShipped.Add(1)
		s.logf("repl: full sync through LSN %d served to %s", snapLSN, c.RemoteAddr())
		start = snapLSN
		fc.acked.Store(snapLSN)
	} else if last := s.rep.LastLSN(); start > last {
		// A follower ahead of the primary means it replicated from
		// someone else (or the primary lost its log): refusing loudly
		// beats silently diverging.
		wmu.Lock()
		bw.Write(wire.AppendError(nil, fmt.Sprintf("repl: follower at LSN %d is ahead of primary at %d", start, last)))
		bw.Flush()
		wmu.Unlock()
		return fmt.Errorf("repl: follower at LSN %d ahead of primary at %d", start, last)
	}

	// Per-stream chain, anchored at the stream's start position. Each
	// session re-anchors: the digest authenticates what THIS stream
	// shipped, and the follower verifies it against the same anchor.
	var chain *wal.Chain
	if flags&wire.ReplFlagChained != 0 {
		ch := wal.NewChain(start)
		chain = &ch
	}

	// Heartbeats carry the primary's position while the stream is idle,
	// feeding the follower's staleness clock and lag accounting.
	go func() {
		t := time.NewTicker(s.cfg.HeartbeatInterval)
		defer t.Stop()
		var hb []byte
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			hb = wire.AppendReplU64(hb[:0], wire.ReplHeartbeat, s.rep.LastLSN())
			wmu.Lock()
			_, err := bw.Write(hb)
			if err == nil {
				err = bw.Flush()
			}
			wmu.Unlock()
			if err != nil {
				c.Close()
				closeStop()
				return
			}
		}
	}()

	// Trace metadata ships only on streams that negotiated it: an old
	// primary rejects the flag outright, and an old follower would error
	// on the unknown downstream frame, so both sides must opt in.
	traced := flags&wire.ReplFlagTrace != 0 && s.cfg.Traces != nil

	var frame []byte
	err := s.rep.TailWAL(start, stop, func(r wal.TailRecord) error {
		var hp *[wire.ReplHashSize]byte
		if chain != nil {
			sum, err := chain.Extend(r.LSN, r.Code, r.Payload)
			if err != nil {
				return err
			}
			hp = &sum
		}
		frame = frame[:0]
		if traced {
			// One TRACEMETA frame ahead of the record it describes, in the
			// same write: the follower stashes it and matches it to the
			// next record by LSN. A ring miss (follower far behind) just
			// omits the frame — lag falls back to record counts.
			if ent, ok := s.cfg.Traces.Get(r.LSN); ok {
				frame = wire.AppendReplTraceMeta(frame, ent.LSN, ent.TraceID, ent.AppendNS)
			}
		}
		frame = wire.AppendReplRecord(frame, r.LSN, r.Code, hp, r.Payload)
		wmu.Lock()
		_, err := bw.Write(frame)
		if err == nil {
			err = bw.Flush()
		}
		wmu.Unlock()
		if err != nil {
			return err
		}
		s.recordsShipped.Add(1)
		s.bytesShipped.Add(uint64(len(frame)))
		return nil
	})
	if err == nil || errors.Is(err, wal.ErrClosed) {
		return nil
	}
	if errors.Is(err, wal.ErrCompacted) {
		// Compaction outran a slow follower mid-stream; dropping the
		// connection makes it reconnect and take the full-sync path.
		s.logf("repl: follower %s fell behind compaction; disconnecting for full sync", c.RemoteAddr())
	}
	return err
}

// streamSnapshot takes a snapshot via the store's regular snapshot path
// and streams the published file as SNAPBEGIN/CHUNK.../SNAPEND frames.
// It holds wmu across the whole snapshot so heartbeats cannot interleave
// with the chunk stream.
func (s *Source) streamSnapshot(bw *bufio.Writer, wmu *sync.Mutex) (uint64, error) {
	rc, lsn, size, err := s.rep.SnapshotReader()
	if err != nil {
		return 0, err
	}
	defer rc.Close()

	wmu.Lock()
	defer wmu.Unlock()
	var frame []byte
	if _, err := bw.Write(wire.AppendReplSnapBegin(frame, lsn, size)); err != nil {
		return 0, err
	}
	chunk := make([]byte, 256<<10)
	for {
		n, rerr := rc.Read(chunk)
		if n > 0 {
			frame = wire.AppendFrame(frame[:0], wire.ReplSnapChunk, chunk[:n])
			if _, err := bw.Write(frame); err != nil {
				return 0, err
			}
			s.bytesShipped.Add(uint64(n))
		}
		if rerr != nil {
			if rerr == io.EOF {
				break
			}
			return 0, rerr
		}
	}
	if _, err := bw.Write(wire.AppendEmpty(frame[:0], wire.ReplSnapEnd)); err != nil {
		return 0, err
	}
	return lsn, bw.Flush()
}

package repl_test

import (
	"testing"

	"vmshortcut/internal/obs"
	"vmshortcut/repl"
)

// TestTracedStreamJoinsFollowerSpans drives the whole distributed
// tracing path: a sampled client write on the primary, its trace context
// shipped down a ReplFlagTrace stream, the follower's apply span
// recorded locally AND returned upstream into the primary's flight
// recorder under the same trace ID — plus the lag gauges on both ends.
func TestTracedStreamJoinsFollowerSpans(t *testing.T) {
	primary := startNode(t, t.TempDir(), false, "", repl.FollowerConfig{})
	frec := obs.NewRecorder(64)
	replica := startNode(t, t.TempDir(), false, primary.addr, repl.FollowerConfig{
		Trace:    true,
		Recorder: frec,
	})

	c := mustDial(t, primary.addr)
	c.SetSampling(1)
	for i := uint64(0); i < 20; i++ {
		if err := c.Put(i, i*10); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	lastID := c.LastTraceID()
	if lastID == 0 {
		t.Fatal("sampling at 1.0 left no trace ID")
	}
	waitCaughtUp(t, primary, replica)

	// The follower recorded its own apply span for the sampled record.
	waitFor(t, "follower-side trace record", func() bool {
		for _, r := range frec.Snapshot() {
			if r.ID == lastID && r.Origin == obs.OriginFollower && r.Set[obs.StageFollowerApply] {
				return true
			}
		}
		return false
	})

	// The span also returned upstream: a primary flight-recorder entry
	// now carries the follower_apply stage next to the primary-side
	// stages — one trace, both nodes. (Any of the 20 sampled traces will
	// do: a span whose record was not yet in the recorder when it
	// returned is dropped by design.)
	waitFor(t, "follower span merged into a primary trace", func() bool {
		for _, r := range primary.metrics.Recorder().Snapshot() {
			if r.ID != 0 && r.Origin == obs.OriginPrimary &&
				r.Set[obs.StageFollowerApply] && r.Set[obs.StageWALAppend] && r.Set[obs.StageTotal] {
				return true
			}
		}
		return false
	})

	// Lag gauges: the follower measured append-to-apply lag from the
	// stream's trace metadata; the primary measured append-to-ack lag
	// from its LSN ring when the acks returned.
	waitFor(t, "replica lag gauge", func() bool {
		return replica.follower.Counters().LagMS >= 0
	})
	waitFor(t, "primary ack-lag gauge", func() bool {
		return primary.source.Counters().LagMS >= 0
	})
	if lr := replica.follower.Counters().LagRecords; lr != 0 {
		t.Fatalf("caught-up replica reports lag_records=%d", lr)
	}
}

// TestUntracedStreamStaysQuiet pins the default: without FollowerConfig
// Trace, the handshake never sets the flag, no trace metadata flows, and
// the lag time gauges stay at their "unknown" sentinel — while record
// counting lag still works from plain LSN arithmetic.
func TestUntracedStreamStaysQuiet(t *testing.T) {
	primary := startNode(t, t.TempDir(), false, "", repl.FollowerConfig{})
	frec := obs.NewRecorder(64)
	replica := startNode(t, t.TempDir(), false, primary.addr, repl.FollowerConfig{
		Recorder: frec, // recorder set, but no Trace: it must stay empty
	})

	c := mustDial(t, primary.addr)
	c.SetSampling(1)
	for i := uint64(0); i < 10; i++ {
		if err := c.Put(i, i); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	waitCaughtUp(t, primary, replica)

	if recs := frec.Snapshot(); len(recs) != 0 {
		t.Fatalf("untraced stream produced %d follower trace records", len(recs))
	}
	if lag := replica.follower.Counters().LagMS; lag != -1 {
		t.Fatalf("untraced replica LagMS = %d, want -1 (unknown)", lag)
	}
	// The primary's recorder still has the client-sampled traces — just
	// without follower spans.
	for _, r := range primary.metrics.Recorder().Snapshot() {
		if r.Set[obs.StageFollowerApply] {
			t.Fatalf("follower span appeared on an untraced stream: %+v", r)
		}
	}
}

// Package repl is the replication subsystem: WAL shipping from a primary
// to read replicas, with full sync, resume-from-LSN, optional synchronous
// acknowledgement, optional tamper-evidence hashing, and runtime
// promotion.
//
// # Topology
//
// One primary serves any number of followers over the same TCP port as
// regular clients: a follower's connection starts as an ordinary client
// connection, sends one REPLSYNC frame, and becomes a one-directional
// record stream (plus REPLACK frames flowing back). The primary side is
// Source, attached to a server via its replication hook; the follower
// side is Follower, which owns the connection lifecycle: dial (with
// retry), handshake, restore, apply, reconnect, promote.
//
// # What a follower receives
//
// The handshake names the last primary LSN the follower has applied. If
// the primary's WAL still holds the successor record, the stream resumes
// right there; otherwise (the follower is new, or compaction has
// outpaced it) the primary streams a persist-format snapshot first —
// taken via the store's regular snapshot path, so it carries an exact
// log position — and the record stream starts at that position. Records
// are shipped as their on-disk payload bytes (which are the wire payload
// bytes the write arrived in: the zero-re-encode invariant, pinned by
// TestWALRecordIsWirePayload), and the follower replays them through the
// same ApplyBatch path crash recovery uses — so a replica IS a continuous
// crash recovery, fed over the network instead of from local segments.
//
// # Consistency
//
// Replication is asynchronous by default: an acknowledged write is
// durable on the primary and *eventually* on the followers. With
// SourceConfig.Sync, the server holds each mutation's response until a
// connected follower has acknowledged applying its LSN (degrading — with
// a counter — when no follower is connected or the wait times out), which
// makes "kill -9 the primary, promote the follower" lossless for every
// acknowledged write while a follower is attached. Followers reject
// writes with StatusReadOnly until promoted, and optionally reject reads
// with StatusStale once the primary has been silent past a configured
// bound — so a partitioned replica fails loudly instead of serving
// arbitrarily old data.
//
// # Tamper evidence
//
// With the chained mode (wal.Chain), each shipped record carries the
// stream's running SHA-256 chain digest; the follower recomputes and
// compares per record, so a modified, reordered, or dropped record —
// anywhere in the shipped prefix — breaks the chain at the first
// divergence. The same chain can be maintained over the primary's
// on-disk log (WithChainedWAL) and audited offline (wal.VerifyChain).
package repl

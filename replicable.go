// Replication hooks on the durable store. The repl package builds its
// primary (Source) on exactly four capabilities, all of which the
// durability layer already maintains for its own sake: a consistent
// snapshot with an exact log position (full sync), an ordered feed of log
// records after a position (tail shipping), the log's bounds (resume
// vs. full-sync decisions), and the optional chain head (tamper-evidence
// publication). Exposing them as an interface — rather than handing out
// the *wal.Log — keeps the replication layer off the store's internals
// and the lock ordering in one place.
package vmshortcut

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vmshortcut/wal"
)

// Replicable is the replication surface of a store opened with WithWAL,
// obtained through AsReplicable. All methods are safe for concurrent use
// with each other and with serving traffic.
type Replicable interface {
	// SnapshotReader takes a fresh snapshot and returns a reader over its
	// persist-format stream, the log position it covers, and its size.
	// The caller must Close the reader. Mutations pause only while the
	// snapshot is written, not while it is streamed.
	SnapshotReader() (rc io.ReadCloser, lsn uint64, size int64, err error)
	// TailWAL delivers every log record after from to fn in order, then
	// follows live appends; see wal.Log.Tail for the termination and
	// ErrCompacted contract.
	TailWAL(from uint64, stop <-chan struct{}, fn wal.TailFunc) error
	// LastLSN is the newest appended record's position; OldestLSN is the
	// oldest position the log can still replay.
	LastLSN() uint64
	OldestLSN() uint64
	// ChainHead reports the live tamper-evidence chain (WithChainedWAL);
	// ok is false without one.
	ChainHead() (anchor, lsn uint64, head [wal.ChainHashSize]byte, ok bool)
}

// AsReplicable returns the replication surface of a store opened with
// WithWAL, and reports whether s has one.
func AsReplicable(s Store) (Replicable, bool) {
	d, ok := s.(*durableStore)
	return d, ok
}

// SnapshotReader takes a snapshot via the regular Snapshot path (write
// lock, fsync, atomic rename) and then streams the published FILE — not
// the live keyspace — so the socket's pace never holds the store's lock.
// The file may be unlinked by a racing newer snapshot's prune while
// streaming; the open file descriptor keeps the bytes readable.
func (d *durableStore) SnapshotReader() (io.ReadCloser, uint64, int64, error) {
	for attempt := 0; ; attempt++ {
		if err := d.Snapshot(); err != nil {
			return nil, 0, 0, err
		}
		lsn := d.snapLSN.Load()
		f, err := os.Open(filepath.Join(d.dir, snapName(lsn)))
		if err != nil {
			// A racing automatic snapshot may have superseded and pruned
			// ours between the Store and the Open; take another.
			if os.IsNotExist(err) && attempt < 2 {
				continue
			}
			return nil, 0, 0, fmt.Errorf("vmshortcut: opening snapshot for streaming: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, 0, 0, fmt.Errorf("vmshortcut: sizing snapshot for streaming: %w", err)
		}
		return f, lsn, fi.Size(), nil
	}
}

// TailWAL implements Replicable by delegating to the log's tail
// subscription.
func (d *durableStore) TailWAL(from uint64, stop <-chan struct{}, fn wal.TailFunc) error {
	return d.log.Tail(from, stop, fn)
}

// LastLSN implements Replicable.
func (d *durableStore) LastLSN() uint64 { return d.log.LastLSN() }

// OldestLSN implements Replicable.
func (d *durableStore) OldestLSN() uint64 { return d.log.OldestLSN() }

// ChainHead implements Replicable.
func (d *durableStore) ChainHead() (uint64, uint64, [wal.ChainHashSize]byte, bool) {
	return d.log.ChainHead()
}

package ch

import (
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	tbl := New(Config{TableBytes: 1 << 16})
	const n = 20000 // far more than slots: chains must form
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k^5)
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if tbl.ChainedBuckets == 0 {
		t.Fatal("expected overflow chains at this density")
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tbl.Lookup(k)
		if !ok || v != k^5 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tbl.Lookup(n + 9); ok {
		t.Fatal("phantom key")
	}
}

func TestFixedTableNeverGrows(t *testing.T) {
	tbl := New(Config{TableBytes: 1 << 12})
	slots := tbl.Slots()
	for k := uint64(0); k < 10000; k++ {
		tbl.Insert(k, k)
	}
	if tbl.Slots() != slots {
		t.Fatal("CH must never resize its table")
	}
}

func TestUpsertInlineAndChained(t *testing.T) {
	tbl := New(Config{TableBytes: 64}) // tiny: 2 slots, heavy chaining
	for k := uint64(0); k < 100; k++ {
		tbl.Insert(k, k)
	}
	for k := uint64(0); k < 100; k++ {
		tbl.Insert(k, k+1000)
	}
	if tbl.Len() != 100 {
		t.Fatalf("Len = %d after upserts", tbl.Len())
	}
	for k := uint64(0); k < 100; k++ {
		if v, _ := tbl.Lookup(k); v != k+1000 {
			t.Fatalf("key %d = %d", k, v)
		}
	}
}

func TestDelete(t *testing.T) {
	tbl := New(Config{TableBytes: 256})
	const n = 500
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k)
	}
	for k := uint64(0); k < n; k += 2 {
		if !tbl.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tbl.Delete(n + 3) {
		t.Fatal("deleted absent key")
	}
	if tbl.Len() != n/2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for k := uint64(0); k < n; k++ {
		_, ok := tbl.Lookup(k)
		if k%2 == 0 && ok {
			t.Fatalf("deleted key %d present", k)
		}
		if k%2 == 1 && !ok {
			t.Fatalf("key %d lost", k)
		}
	}
	// Deleted space must be reusable.
	for k := uint64(0); k < n; k += 2 {
		tbl.Insert(k, k*2)
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d after reinsert", tbl.Len())
	}
}

func TestZeroKey(t *testing.T) {
	tbl := New(Config{TableBytes: 1 << 12})
	tbl.Insert(0, 11)
	if v, ok := tbl.Lookup(0); !ok || v != 11 {
		t.Fatalf("Lookup(0) = %d,%v", v, ok)
	}
	if !tbl.Delete(0) {
		t.Fatal("Delete(0) failed")
	}
	if _, ok := tbl.Lookup(0); ok {
		t.Fatal("zero key survived delete")
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	tbl := New(Config{TableBytes: 512}) // force dense chains
	model := map[uint64]uint64{}
	check := func(kRaw uint16, v uint64, op uint8) bool {
		k := uint64(kRaw % 1024)
		switch op % 4 {
		case 0, 1:
			tbl.Insert(k, v)
			model[k] = v
		case 2:
			got, ok := tbl.Lookup(k)
			want, mok := model[k]
			if ok != mok || (ok && got != want) {
				return false
			}
		case 3:
			_, mok := model[k]
			if tbl.Delete(k) != mok {
				return false
			}
			delete(model, k)
		}
		return tbl.Len() == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

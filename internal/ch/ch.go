// Package ch implements the paper's Chained Hashing (CH) baseline (§4.2):
// a fixed-size hash table whose slots either contain an entry inline or
// link to a chain of fixed-size buckets. When a bucket overflows, a new
// bucket is created, linked, and the entry inserted there. Buckets are
// searched linearly. CH never rehashes, which gives it the best insertion
// profile in Figure 7a — at the price of a fixed directory footprint
// (1 GB in the paper) and slower lookups once chains form.
package ch

import (
	"fmt"

	"vmshortcut/internal/hashfn"
)

// BucketEntries is the number of entries per 128-byte chain bucket:
// 8 words of keys minus one word for the next pointer, paired with values
// packed alongside → 7 (key,value) pairs plus the link ≈ 128 bytes.
const BucketEntries = 7

// chainBucket is a fixed-size 128-byte overflow bucket.
type chainBucket struct {
	keys [BucketEntries]uint64
	vals [BucketEntries]uint64
	used uint8
	next *chainBucket
}

// slot is one directory slot: an inline entry plus an optional chain.
type slot struct {
	key   uint64
	val   uint64
	used  bool
	chain *chainBucket
}

// Config tunes a Table. The zero value selects scaled-down defaults.
type Config struct {
	// TableBytes fixes the directory size. The paper uses 1 GB; the
	// default here is 16 MB so examples and tests stay laptop-friendly —
	// the benchmark harness scales it with the workload.
	TableBytes int
}

const slotBytes = 32 // approximate in-memory size of a slot

func (c *Config) fill() {
	if c.TableBytes <= 0 {
		c.TableBytes = 16 << 20
	}
}

// Table is a chained hash table. Not safe for concurrent use.
type Table struct {
	slots []slot
	mask  uint64
	count int

	// ChainedBuckets counts allocated overflow buckets.
	ChainedBuckets int
}

// New creates a table with a fixed slot array of roughly cfg.TableBytes.
func New(cfg Config) *Table {
	cfg.fill()
	n := 1
	for n*slotBytes < cfg.TableBytes {
		n <<= 1
	}
	return &Table{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.count }

// Slots returns the directory capacity.
func (t *Table) Slots() int { return len(t.slots) }

// Insert upserts (key, value). Keys hash to a slot; overflow goes to the
// slot's bucket chain.
func (t *Table) Insert(key, value uint64) error {
	s := &t.slots[hashfn.Hash(key)&t.mask]
	if s.used && s.key == key {
		s.val = value
		return nil
	}
	if !s.used {
		s.used = true
		s.key = key
		s.val = value
		t.count++
		return nil
	}
	// Search the chain for an existing entry or a free cell.
	var freeB *chainBucket
	freeI := -1
	for b := s.chain; b != nil; b = b.next {
		for i := 0; i < int(b.used); i++ {
			if b.keys[i] == key {
				b.vals[i] = value
				return nil
			}
		}
		if int(b.used) < BucketEntries && freeB == nil {
			freeB = b
			freeI = int(b.used)
		}
	}
	if freeB == nil {
		freeB = &chainBucket{next: s.chain}
		s.chain = freeB
		freeI = 0
		t.ChainedBuckets++
	}
	freeB.keys[freeI] = key
	freeB.vals[freeI] = value
	if freeI == int(freeB.used) {
		freeB.used++
	}
	t.count++
	return nil
}

// Lookup returns the value stored for key.
func (t *Table) Lookup(key uint64) (uint64, bool) {
	s := &t.slots[hashfn.Hash(key)&t.mask]
	if s.used && s.key == key {
		return s.val, true
	}
	for b := s.chain; b != nil; b = b.next {
		for i := 0; i < int(b.used); i++ {
			if b.keys[i] == key {
				return b.vals[i], true
			}
		}
	}
	return 0, false
}

// InsertBatch upserts every (keys[i], values[i]) pair; semantically a loop
// of Insert calls with the per-call overhead amortized.
func (t *Table) InsertBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("ch: InsertBatch: %d keys, %d values", len(keys), len(values))
	}
	for i, k := range keys {
		if err := t.Insert(k, values[i]); err != nil {
			return err
		}
	}
	return nil
}

// LookupBatch looks up every key, writing values into out (which must
// have length at least len(keys)) and returning per-key presence.
func (t *Table) LookupBatch(keys []uint64, out []uint64) []bool {
	ok := make([]bool, len(keys))
	for i, k := range keys {
		out[i], ok[i] = t.Lookup(k)
	}
	return ok
}

// DeleteBatch removes every key, returning per-key presence; semantically
// a loop of Delete calls with the per-call overhead amortized.
func (t *Table) DeleteBatch(keys []uint64) []bool {
	ok := make([]bool, len(keys))
	for i, k := range keys {
		ok[i] = t.Delete(k)
	}
	return ok
}

// Range calls fn for every stored entry until fn returns false. Iteration
// order is unspecified. fn must not mutate the table.
func (t *Table) Range(fn func(key, value uint64) bool) {
	for i := range t.slots {
		s := &t.slots[i]
		if s.used && !fn(s.key, s.val) {
			return
		}
		for b := s.chain; b != nil; b = b.next {
			for j := 0; j < int(b.used); j++ {
				if !fn(b.keys[j], b.vals[j]) {
					return
				}
			}
		}
	}
}

// Delete removes key and reports whether it was present. Chain cells are
// back-filled from the bucket tail so chains stay dense.
func (t *Table) Delete(key uint64) bool {
	s := &t.slots[hashfn.Hash(key)&t.mask]
	if s.used && s.key == key {
		// Promote a chain entry into the inline slot if one exists.
		if b := s.chain; b != nil {
			last := int(b.used) - 1
			s.key = b.keys[last]
			s.val = b.vals[last]
			b.used--
			if b.used == 0 {
				s.chain = b.next
			}
		} else {
			s.used = false
			s.key, s.val = 0, 0
		}
		t.count--
		return true
	}
	for b := s.chain; b != nil; b = b.next {
		for i := 0; i < int(b.used); i++ {
			if b.keys[i] != key {
				continue
			}
			last := int(b.used) - 1
			b.keys[i] = b.keys[last]
			b.vals[i] = b.vals[last]
			b.keys[last], b.vals[last] = 0, 0
			b.used--
			if b.used == 0 && b == s.chain {
				s.chain = b.next
			}
			t.count--
			return true
		}
	}
	return false
}

package hashfn

import (
	"testing"
	"testing/quick"
)

func TestHashSpreadsLowBitKeys(t *testing.T) {
	// Sequential keys must not collide in the top bits that index the
	// directory: count distinct 8-bit prefixes of the first 4096 keys.
	seen := map[uint64]bool{}
	for k := uint64(0); k < 4096; k++ {
		seen[DirIndex(Hash(k), 8)] = true
	}
	if len(seen) < 250 {
		t.Fatalf("only %d of 256 directory slots hit by sequential keys", len(seen))
	}
}

func TestHashAndHash2Differ(t *testing.T) {
	same := 0
	for k := uint64(0); k < 1000; k++ {
		if Hash(k) == Hash2(k) {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d keys where Hash == Hash2", same)
	}
}

func TestDirIndexDepthZero(t *testing.T) {
	if DirIndex(^uint64(0), 0) != 0 {
		t.Fatal("depth 0 must map everything to slot 0")
	}
}

func TestDirIndexUsesMSB(t *testing.T) {
	h := uint64(0xF000000000000000)
	if got := DirIndex(h, 4); got != 0xF {
		t.Fatalf("DirIndex = %x, want f", got)
	}
	if got := DirIndex(h, 1); got != 1 {
		t.Fatalf("DirIndex depth1 = %d, want 1", got)
	}
}

func TestSplitBit(t *testing.T) {
	// ld=1: the split consults bit 62 (second most significant).
	if SplitBit(1<<62, 1) != 1 {
		t.Fatal("bit 62 should be 1")
	}
	if SplitBit(1<<63, 1) != 0 {
		t.Fatal("bit 63 must not leak into ld=1 split")
	}
}

func TestPrefixRange(t *testing.T) {
	// gd=3, ld=1: hash starting with bit 1 covers slots [4,8).
	h := uint64(1) << 63
	lo, hi := PrefixRange(h, 1, 3)
	if lo != 4 || hi != 8 {
		t.Fatalf("range = [%d,%d), want [4,8)", lo, hi)
	}
	// gd == ld: a single slot.
	lo, hi = PrefixRange(h, 3, 3)
	if hi-lo != 1 {
		t.Fatalf("span = %d, want 1", hi-lo)
	}
}

// Property: every slot in PrefixRange shares the ld-bit prefix of h, and
// slots just outside do not.
func TestQuickPrefixRangeInvariant(t *testing.T) {
	check := func(h uint64, ldRaw, gdRaw uint8) bool {
		gd := uint(gdRaw%16) + 1
		ld := uint(ldRaw) % (gd + 1)
		lo, hi := PrefixRange(h, ld, gd)
		if hi-lo != 1<<(gd-ld) {
			return false
		}
		prefix := h >> (64 - ld)
		if ld == 0 {
			prefix = 0
		}
		for s := lo; s < hi; s++ {
			sp := s >> (gd - ld)
			if ld == 0 {
				sp = 0
			}
			if sp != prefix {
				return false
			}
		}
		if lo > 0 && ld > 0 && (lo-1)>>(gd-ld) == prefix {
			return false
		}
		if hi < 1<<gd && ld > 0 && hi>>(gd-ld) == prefix {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: DirIndex is monotone in h — MSB indexing is order-preserving.
func TestQuickDirIndexMonotone(t *testing.T) {
	check := func(a, b uint64, dRaw uint8) bool {
		d := uint(dRaw%24) + 1
		if a > b {
			a, b = b, a
		}
		return DirIndex(a, d) <= DirIndex(b, d)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHashAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Hash(0x123456789ABCDEF)
	for bit := 0; bit < 64; bit += 7 {
		diff := base ^ Hash(0x123456789ABCDEF^(1<<bit))
		pop := popcount(diff)
		if pop < 16 || pop > 48 {
			t.Fatalf("bit %d avalanche popcount = %d", bit, pop)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

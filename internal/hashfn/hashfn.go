// Package hashfn provides the lightweight multiplicative hash function
// shared by all indexes in the evaluation (paper §4.2: "all methods utilize
// the same lightweight multiplicative hash function") plus the bit-slicing
// helpers extendible hashing needs: the directory is indexed with the most
// significant bits of the hash, and the in-bucket slot comes from an
// independent second hash.
package hashfn

import "math/bits"

// Multiplicative hashing constants: two independent 64-bit odd multipliers.
// fib64 is 2^64 / phi, the classic Fibonacci-hashing constant.
const (
	fib64  = 0x9E3779B97F4A7C15
	mix64b = 0xC2B2AE3D27D4EB4F
)

// Hash is the primary hash: multiplicative with an xor-fold so the most
// significant bits (which index the directory) also depend on the low key
// bits.
func Hash(key uint64) uint64 {
	x := key * fib64
	x ^= x >> 29
	x *= mix64b
	x ^= x >> 32
	return x
}

// Hash2 is the independent second hash used to pick the slot inside a
// bucket, so probe order does not correlate with directory placement.
func Hash2(key uint64) uint64 {
	x := key ^ 0x94D049BB133111EB
	x *= mix64b
	x ^= x >> 31
	x *= fib64
	x ^= x >> 33
	return x
}

// DirIndex extracts the globalDepth most significant bits of h — the
// directory slot of extendible hashing. depth 0 always yields 0.
func DirIndex(h uint64, globalDepth uint) uint64 {
	if globalDepth == 0 {
		return 0
	}
	return h >> (64 - globalDepth)
}

// SplitBit returns the bit that decides which of the two split buckets an
// entry with hash h moves to when a bucket of local depth ld splits: bit
// number ld (0-based) counted from the most significant end.
func SplitBit(h uint64, ld uint) uint64 {
	return (h >> (63 - ld)) & 1
}

// PrefixRange returns the half-open directory slot range [lo, hi) that
// shares the ld most significant hash bits with h in a directory of depth
// gd (gd >= ld). These are exactly the slots that reference the same
// bucket.
func PrefixRange(h uint64, ld, gd uint) (lo, hi uint64) {
	idx := DirIndex(h, gd)
	span := uint64(1) << (gd - ld)
	lo = idx &^ (span - 1)
	return lo, lo + span
}

// shardMix is a third multiplicative mixer, independent of Hash and Hash2,
// so shard routing does not correlate with directory placement or in-bucket
// probe order within a shard.
const shardMix = 0x2545F4914F6CDD1D

// ShardOf maps key onto one of n shards in [0, n). It is a pure function
// of (key, n): the same key always lands on the same shard, across single
// and batch operation paths. The reduction is Lemire's multiply-shift, so
// n need not be a power of two and no slow modulo is taken on the hot
// path.
func ShardOf(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	x := key ^ shardMix
	x *= fib64
	x ^= x >> 27
	x *= shardMix
	x ^= x >> 31
	hi, _ := bits.Mul64(x, uint64(n))
	return int(hi)
}

package harness

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram misbehaves")
	}
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean = %f", m)
	}
	// p50 of uniform 1..1000 is ~500; bucket upper bound gives ≤1023.
	p50 := h.Percentile(50)
	if p50 < 500 || p50 > 1023 {
		t.Fatalf("p50 = %d", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 990 || p99 > 1023 {
		t.Fatalf("p99 = %d", p99)
	}
}

func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	h.Record(0)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatal("zero sample mishandled")
	}
	if h.Percentile(100) > 1 {
		t.Fatalf("p100 = %d for a single zero", h.Percentile(100))
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	var h Histogram
	seed := uint64(12345)
	for i := 0; i < 10000; i++ {
		seed = seed*6364136223846793005 + 1
		h.Record(seed >> 40)
	}
	last := uint64(0)
	for p := 0.0; p <= 100; p += 5 {
		v := h.Percentile(p)
		if v < last {
			t.Fatalf("percentile not monotone at %f: %d < %d", p, v, last)
		}
		last = v
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := uint64(1); v <= 100; v++ {
		a.Record(v)
		b.Record(v * 1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 100000 {
		t.Fatalf("merged extremes = %d..%d", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 200 {
		t.Fatal("merging empty changed count")
	}
}

func TestHistogramRender(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(uint64(i%10 + 1))
	}
	var sb strings.Builder
	h.Render(&sb, "latencies")
	out := sb.String()
	for _, want := range []string{"latencies", "samples 100", "p99", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	var empty Histogram
	sb.Reset()
	empty.Render(&sb, "none")
	if !strings.Contains(sb.String(), "no samples") {
		t.Fatal("empty render broken")
	}
}

// Property: percentile upper bound is never below the true percentile of
// the recorded multiset (bucketing only rounds up).
func TestQuickHistogramUpperBound(t *testing.T) {
	check := func(vals []uint16, pRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		sorted := make([]uint64, len(vals))
		for i, v := range vals {
			h.Record(uint64(v))
			sorted[i] = uint64(v)
		}
		p := float64(pRaw % 101)
		rank := int(p / 100 * float64(len(sorted)))
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		// selection via simple sort
		for i := 0; i < len(sorted); i++ {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		return h.Percentile(p) >= sorted[rank]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package harness

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestScale(t *testing.T) {
	if Scale(0.1).N(100_000_000) != 10_000_000 {
		t.Fatal("scale 0.1 of 100M should be 10M")
	}
	if Scale(0.0000001).N(100) != 1 {
		t.Fatal("scale must floor at 1")
	}
	if Scale(1).N(42) != 42 {
		t.Fatal("scale 1 must be identity")
	}
}

func TestTimerPhases(t *testing.T) {
	var tm Timer
	tm.Start("a")
	time.Sleep(5 * time.Millisecond)
	tm.Start("b") // implicitly ends a
	time.Sleep(1 * time.Millisecond)
	tm.End()
	ph := tm.Phases()
	if len(ph) != 2 || ph[0].Name != "a" || ph[1].Name != "b" {
		t.Fatalf("phases = %+v", ph)
	}
	if tm.Get("a") < 4*time.Millisecond {
		t.Fatalf("phase a too short: %v", tm.Get("a"))
	}
	if tm.Get("missing") != 0 {
		t.Fatal("missing phase should be 0")
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo")
	tbl.AddRow("name", "alpha", "value", "1")
	tbl.AddRow("name", "beta-longer", "value", "23456")
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "beta-longer") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // banner, header, rule, two rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("csv")
	tbl.AddRow("x", "1", "y", "2.5")
	tbl.AddRow("x", "2", "y", "7.5")
	var sb strings.Builder
	tbl.RenderCSV(&sb)
	want := "x,y\n1,2.5\n2,7.5\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestRenderSeries(t *testing.T) {
	series := []Series{
		{Label: "Traditional", Points: []Point{{X: "1", Y: 10}, {X: "2", Y: 20}}},
		{Label: "Shortcut", Points: []Point{{X: "1", Y: 5}, {X: "2", Y: 8}}},
	}
	var sb strings.Builder
	RenderSeries(&sb, "fig", "size", series)
	out := sb.String()
	for _, want := range []string{"fig", "size", "Traditional", "Shortcut", "10.000", "8.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 5) != "2.00x" {
		t.Fatalf("Ratio = %s", Ratio(10, 5))
	}
	if Ratio(1, 0) != "inf" {
		t.Fatal("division by zero unguarded")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

func TestParallel(t *testing.T) {
	var hits [8]atomic.Int32
	Parallel(8, func(w int) { hits[w].Add(1) })
	for w := range hits {
		if hits[w].Load() != 1 {
			t.Fatalf("worker %d ran %d times", w, hits[w].Load())
		}
	}
	ran := 0
	Parallel(0, func(w int) {
		if w != 0 {
			t.Fatalf("degenerate Parallel passed worker %d", w)
		}
		ran++
	})
	if ran != 1 {
		t.Fatalf("degenerate Parallel ran %d times", ran)
	}
}

func TestParallelChunks(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{10, 3}, {10, 1}, {3, 8}, {100, 7}, {1, 1}, {0, 4},
	} {
		covered := make([]atomic.Int32, tc.n)
		ParallelChunks(tc.n, tc.workers, func(w, lo, hi int) {
			if lo >= hi {
				t.Errorf("n=%d workers=%d: empty span [%d,%d)", tc.n, tc.workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("n=%d workers=%d: index %d covered %d times", tc.n, tc.workers, i, covered[i].Load())
			}
		}
	}
}

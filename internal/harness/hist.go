package harness

import (
	"fmt"
	"io"
	"math/bits"
	"strings"

	"vmshortcut/internal/obs"
)

// Histogram is a log₂-bucketed latency histogram: values land in bucket
// floor(log2(v)), giving ~2× resolution over nine decades with 64 fixed
// buckets and no allocation on the record path. Good enough to separate
// "L1 hit", "TLB miss", "page fault", and "rehash stall" populations.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Record adds one value (e.g. nanoseconds).
func (h *Histogram) Record(v uint64) {
	b := 0
	if v > 0 {
		b = 63 - bits.LeadingZeros64(v)
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of recorded values.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the observed extremes.
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest recorded value.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns an upper bound for the p-th percentile (p in [0,100]):
// the top edge of the bucket containing it.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for b, n := range h.buckets {
		seen += n
		if seen > rank {
			if b == 63 {
				return ^uint64(0)
			}
			return 1<<(b+1) - 1
		}
	}
	return h.max
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// HDR is the high-dynamic-range latency histogram, promoted to
// internal/obs as the shared core of the server-side observability
// layer (which adds a striped concurrency-safe variant on top). The
// alias keeps harness callers — the load generator records one HDR per
// connection and merges them — source-compatible.
type HDR = obs.HDR

// Render writes a textual histogram with percentile summary.
func (h *Histogram) Render(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	if h.count == 0 {
		fmt.Fprintln(w, "(no samples)")
		return
	}
	fmt.Fprintf(w, "samples %d  mean %.1f  min %d  p50 %d  p99 %d  p99.9 %d  max %d\n",
		h.count, h.Mean(), h.min,
		h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.max)
	var peak uint64
	for _, n := range h.buckets {
		if n > peak {
			peak = n
		}
	}
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		bar := int(float64(n) / float64(peak) * 40)
		fmt.Fprintf(w, "%12d..%-12d %10d %s\n",
			uint64(1)<<b, (uint64(1)<<(b+1))-1, n, strings.Repeat("#", bar))
	}
}

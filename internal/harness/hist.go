package harness

import (
	"fmt"
	"io"
	"math/bits"
	"strings"
)

// Histogram is a log₂-bucketed latency histogram: values land in bucket
// floor(log2(v)), giving ~2× resolution over nine decades with 64 fixed
// buckets and no allocation on the record path. Good enough to separate
// "L1 hit", "TLB miss", "page fault", and "rehash stall" populations.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Record adds one value (e.g. nanoseconds).
func (h *Histogram) Record(v uint64) {
	b := 0
	if v > 0 {
		b = 63 - bits.LeadingZeros64(v)
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of recorded values.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the observed extremes.
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest recorded value.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns an upper bound for the p-th percentile (p in [0,100]):
// the top edge of the bucket containing it.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for b, n := range h.buckets {
		seen += n
		if seen > rank {
			if b == 63 {
				return ^uint64(0)
			}
			return 1<<(b+1) - 1
		}
	}
	return h.max
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// hdrSubBits sets the HDR histogram's sub-bucket resolution: each
// power-of-two range is split into 2^hdrSubBits linear sub-buckets, so
// the relative quantization error is at most 2^-hdrSubBits (~3%).
const hdrSubBits = 5

// hdrSize is the bucket count: values below 2^hdrSubBits get exact
// buckets, every higher power-of-two range gets 2^hdrSubBits sub-buckets.
const hdrSize = (64 - hdrSubBits + 1) << hdrSubBits

// HDR is a high-dynamic-range latency histogram in the style of
// HdrHistogram: fixed memory (1920 buckets, 15 KiB), no allocation on the
// record path, full uint64 range, and ≤3% relative error on any
// percentile — where the log₂-bucketed Histogram can only answer with
// power-of-two upper bounds, HDR resolves p50/p95/p99 to ~3%. The load
// generator (cmd/ehload) records per-round-trip latencies here and merges
// one HDR per connection.
type HDR struct {
	buckets [hdrSize]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// hdrIndex maps a value onto its bucket.
func hdrIndex(v uint64) int {
	if v < 1<<hdrSubBits {
		return int(v) // exact buckets for small values
	}
	msb := 63 - bits.LeadingZeros64(v)
	shift := msb - hdrSubBits
	group := msb - hdrSubBits + 1
	return group<<hdrSubBits + int(v>>shift)&(1<<hdrSubBits-1)
}

// hdrUpper returns the largest value a bucket holds — the percentile
// estimate reported for ranks landing in it.
func hdrUpper(idx int) uint64 {
	if idx < 1<<hdrSubBits {
		return uint64(idx)
	}
	group := idx >> hdrSubBits
	sub := idx & (1<<hdrSubBits - 1)
	msb := group + hdrSubBits - 1
	shift := msb - hdrSubBits
	return 1<<msb + uint64(sub+1)<<shift - 1
}

// Record adds one value (e.g. nanoseconds).
func (h *HDR) Record(v uint64) {
	h.buckets[hdrIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *HDR) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of recorded values.
func (h *HDR) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest recorded value.
func (h *HDR) Min() uint64 { return h.min }

// Max returns the largest recorded value.
func (h *HDR) Max() uint64 { return h.max }

// Percentile returns the p-th percentile (p in [0, 100]) to within the
// histogram's ~3% bucket resolution, clamped to the observed max.
func (h *HDR) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for idx, n := range h.buckets {
		seen += n
		if seen > rank {
			u := hdrUpper(idx)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Merge adds other's samples into h.
func (h *HDR) Merge(other *HDR) {
	if other.count == 0 {
		return
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Render writes a textual histogram with percentile summary.
func (h *Histogram) Render(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	if h.count == 0 {
		fmt.Fprintln(w, "(no samples)")
		return
	}
	fmt.Fprintf(w, "samples %d  mean %.1f  min %d  p50 %d  p99 %d  p99.9 %d  max %d\n",
		h.count, h.Mean(), h.min,
		h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.max)
	var peak uint64
	for _, n := range h.buckets {
		if n > peak {
			peak = n
		}
	}
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		bar := int(float64(n) / float64(peak) * 40)
		fmt.Fprintf(w, "%12d..%-12d %10d %s\n",
			uint64(1)<<b, (uint64(1)<<(b+1))-1, n, strings.Repeat("#", bar))
	}
}

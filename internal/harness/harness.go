// Package harness provides the shared machinery of the experiment
// drivers: phase timing, scaled workload sizing, and table/series printers
// that emit the same rows and series the paper's tables and figures
// report, in both human-readable and CSV form.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Scale shrinks paper-sized workloads to laptop-sized ones. A scale of 1.0
// reproduces the paper's counts (e.g. 100M inserts); the default harness
// scale is 0.1 or smaller per experiment.
type Scale float64

// N scales a paper-sized count, keeping at least 1.
func (s Scale) N(paperCount int) int {
	n := int(float64(paperCount) * float64(s))
	if n < 1 {
		n = 1
	}
	return n
}

// Chunks partitions [0, n) into consecutive [lo, hi) spans of at most
// batch elements — the iteration shape of the facade's InsertBatch and
// LookupBatch drivers. A batch of 0 or less yields the whole range at
// once.
func Chunks(n, batch int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if batch <= 0 {
		batch = n
	}
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}

// Parallel runs fn(worker) for worker in [0, workers) on concurrent
// goroutines and blocks until all return. workers <= 1 runs fn(0) on the
// calling goroutine — the degenerate case keeps single-threaded drivers
// free of goroutine overhead.
func Parallel(workers int, fn func(worker int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// ParallelChunks splits [0, n) into one contiguous [lo, hi) span per
// worker and runs them concurrently — the fan-out shape of the sharded
// store's multi-writer drivers. The first workers get the one-element
// remainder, so spans differ in size by at most one.
func ParallelChunks(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	span, rem := n/workers, n%workers
	Parallel(workers, func(w int) {
		lo := w*span + min(w, rem)
		hi := lo + span
		if w < rem {
			hi++
		}
		fn(w, lo, hi)
	})
}

// Timer measures named phases.
type Timer struct {
	phases []Phase
	start  time.Time
	name   string
}

// Phase is one named measured interval.
type Phase struct {
	Name     string
	Duration time.Duration
}

// Start begins measuring a named phase, ending any open one.
func (t *Timer) Start(name string) {
	t.End()
	t.name = name
	t.start = time.Now()
}

// End closes the open phase, if any.
func (t *Timer) End() {
	if t.name != "" {
		t.phases = append(t.phases, Phase{Name: t.name, Duration: time.Since(t.start)})
		t.name = ""
	}
}

// Phases returns all completed phases.
func (t *Timer) Phases() []Phase {
	t.End()
	return t.phases
}

// Get returns the duration of the named phase (0 if absent).
func (t *Timer) Get(name string) time.Duration {
	for _, p := range t.Phases() {
		if p.Name == name {
			return p.Duration
		}
	}
	return 0
}

// Series is one line of a figure: a label and (x, y) points.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, y) measurement; X may be numeric or categorical.
type Point struct {
	X string
	Y float64
}

// Table collects experiment output as rows of named columns, preserving
// insertion order of both.
type Table struct {
	Title   string
	columns []string
	rows    []map[string]string
}

// NewTable creates a titled output table.
func NewTable(title string) *Table { return &Table{Title: title} }

// AddRow appends a row given alternating column/value pairs.
func (t *Table) AddRow(pairs ...string) {
	row := map[string]string{}
	for i := 0; i+1 < len(pairs); i += 2 {
		col, val := pairs[i], pairs[i+1]
		row[col] = val
		if !contains(t.columns, col) {
			t.columns = append(t.columns, col)
		}
	}
	t.rows = append(t.rows, row)
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Render writes the table in aligned human-readable form.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.columns))
	for i, c := range t.columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, c := range t.columns {
			if l := len(row[c]); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var head strings.Builder
	for i, c := range t.columns {
		fmt.Fprintf(&head, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(head.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths)))
	for _, row := range t.rows {
		var b strings.Builder
		for i, c := range t.columns {
			fmt.Fprintf(&b, "%-*s  ", widths[i], row[c])
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

func lineWidth(widths []int) int {
	n := 0
	for _, w := range widths {
		n += w + 2
	}
	if n >= 2 {
		n -= 2
	}
	return n
}

// RenderCSV writes the table as CSV (no quoting needed for our values).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.columns, ","))
	for _, row := range t.rows {
		vals := make([]string, len(t.columns))
		for i, c := range t.columns {
			vals[i] = row[c]
		}
		fmt.Fprintln(w, strings.Join(vals, ","))
	}
}

// RenderSeries writes one or more series as an aligned x/y table, series
// as columns — the textual equivalent of a figure.
func RenderSeries(w io.Writer, title string, xLabel string, series []Series) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	// Collect the union of x values, preserving first-seen order.
	var xs []string
	seen := map[string]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	tbl := NewTable(title)
	tbl.Title = title
	for _, x := range xs {
		pairs := []string{xLabel, x}
		for _, s := range series {
			val := ""
			for _, p := range s.Points {
				if p.X == x {
					val = fmt.Sprintf("%.3f", p.Y)
					break
				}
			}
			pairs = append(pairs, s.Label, val)
		}
		tbl.AddRow(pairs...)
	}
	// Reuse the row renderer without re-printing the title banner.
	widths := make([]int, len(tbl.columns))
	for i, c := range tbl.columns {
		widths[i] = len(c)
	}
	for _, row := range tbl.rows {
		for i, c := range tbl.columns {
			if l := len(row[c]); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var head strings.Builder
	for i, c := range tbl.columns {
		fmt.Fprintf(&head, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(head.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths)))
	for _, row := range tbl.rows {
		var b strings.Builder
		for i, c := range tbl.columns {
			fmt.Fprintf(&b, "%-*s  ", widths[i], row[c])
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// Ratio formats a/b with a guard against division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// SortedKeys returns the sorted keys of a string-keyed map (stable output
// for deterministic experiment logs).
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

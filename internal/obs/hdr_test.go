package obs

import (
	"math"
	"testing"
)

// TestHDRIndexRoundTrip checks the bucket mapping is monotone and that
// every value lands in a bucket whose range contains it.
func TestHDRIndexRoundTrip(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 31, 32, 33, 63, 64, 65, 100, 1023, 1024,
		1 << 20, 1<<20 + 12345, 1 << 40, math.MaxUint64} {
		idx := hdrIndex(v)
		if idx < 0 || idx >= hdrSize {
			t.Fatalf("hdrIndex(%d) = %d out of range", v, idx)
		}
		if idx < prev {
			t.Fatalf("hdrIndex not monotone at %d", v)
		}
		prev = idx
		if u := hdrUpper(idx); v > u {
			t.Fatalf("value %d above its bucket's upper bound %d", v, u)
		}
		if idx > 0 {
			if l := hdrUpper(idx - 1); v <= l {
				t.Fatalf("value %d at or below the previous bucket's upper bound %d", v, l)
			}
		}
	}
}

// TestHDRPercentileAccuracy records a known uniform population and checks
// percentiles land within the promised ~3% relative error.
func TestHDRPercentileAccuracy(t *testing.T) {
	var h HDR
	const n = 100000
	for i := uint64(1); i <= n; i++ {
		h.Record(i)
	}
	if h.Count() != n || h.Min() != 1 || h.Max() != n {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	for _, p := range []float64{50, 95, 99, 99.9} {
		got := float64(h.Percentile(p))
		want := p / 100 * n
		if relErr := math.Abs(got-want) / want; relErr > 0.04 {
			t.Fatalf("p%v = %v, want ≈%v (rel err %.3f)", p, got, want, relErr)
		}
	}
	if h.Percentile(100) != n {
		t.Fatalf("p100 = %d, want clamped max %d", h.Percentile(100), uint64(n))
	}
	if mean := h.Mean(); math.Abs(mean-(n+1)/2) > 1 {
		t.Fatalf("mean = %v", mean)
	}
}

// TestHDRMerge checks merged histograms agree with one histogram fed the
// union of samples.
func TestHDRMerge(t *testing.T) {
	var a, b, all HDR
	for i := uint64(0); i < 10000; i++ {
		v := i * i % 99991
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge shape mismatch: %d/%d/%d vs %d/%d/%d",
			a.Count(), a.Min(), a.Max(), all.Count(), all.Min(), all.Max())
	}
	for _, p := range []float64{50, 95, 99} {
		if a.Percentile(p) != all.Percentile(p) {
			t.Fatalf("p%v: merged %d, combined %d", p, a.Percentile(p), all.Percentile(p))
		}
	}
	// Merging an empty histogram is a no-op.
	var empty HDR
	before := a.Count()
	a.Merge(&empty)
	if a.Count() != before {
		t.Fatal("merging empty changed the count")
	}
}

// TestHDRZeroAndExtremes covers the exact small-value buckets and the top
// of the range.
func TestHDRZeroAndExtremes(t *testing.T) {
	var h HDR
	h.Record(0)
	h.Record(math.MaxUint64)
	if h.Min() != 0 || h.Max() != math.MaxUint64 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Percentile(0) != 0 {
		t.Fatalf("p0 = %d", h.Percentile(0))
	}
	if h.Percentile(100) != math.MaxUint64 {
		t.Fatalf("p100 = %d", h.Percentile(100))
	}
	var zero HDR
	if zero.Percentile(50) != 0 || zero.Mean() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
}

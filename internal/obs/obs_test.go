package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistConcurrentRecordSnapshot hammers one striped histogram from
// many goroutines while a reader keeps snapshotting — the exact pattern
// /metrics scraping creates against a loaded server. Run under -race in
// CI; here we also pin that no recorded sample is lost once writers
// stop.
func TestHistConcurrentRecordSnapshot(t *testing.T) {
	var h Hist
	const writers = 8
	const perWriter = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count() > writers*perWriter {
				t.Error("snapshot fabricated samples")
				return
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(seed uint64) {
			defer ww.Done()
			x := seed*2654435761 + 1
			for i := 0; i < perWriter; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				h.Record(x % 1e9)
			}
		}(uint64(w))
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	final := h.Snapshot()
	if final.Count() != writers*perWriter {
		t.Fatalf("final count = %d, want %d", final.Count(), writers*perWriter)
	}
	if h.Count() != writers*perWriter {
		t.Fatalf("Count() = %d, want %d", h.Count(), writers*perWriter)
	}
	if final.Min() > final.Percentile(50) || final.Percentile(50) > final.Max() {
		t.Fatalf("disordered snapshot: min %d p50 %d max %d",
			final.Min(), final.Percentile(50), final.Max())
	}
}

// TestHistNil pins that a nil *Hist accepts records and snapshots as
// no-ops, so instrumentation points never need nil checks.
func TestHistNil(t *testing.T) {
	var h *Hist
	h.Record(42)
	h.RecordDur(5 * time.Millisecond)
	h.RecordSince(time.Now())
	if h.Count() != 0 {
		t.Fatal("nil hist counted")
	}
	if s := h.Snapshot(); s.Count() != 0 {
		t.Fatal("nil hist snapshot non-empty")
	}
}

// TestHistMatchesHDR pins that the striped histogram and the
// single-writer HDR agree exactly when fed the same samples — striping
// must not change any statistic.
func TestHistMatchesHDR(t *testing.T) {
	var striped Hist
	var plain HDR
	x := uint64(7)
	for i := 0; i < 50000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		v := x % (1 << 30)
		striped.Record(v)
		plain.Record(v)
	}
	s := striped.Snapshot()
	if s.Count() != plain.Count() || s.Sum() != plain.Sum() {
		t.Fatalf("count/sum: %d/%d vs %d/%d", s.Count(), s.Sum(), plain.Count(), plain.Sum())
	}
	for _, p := range []float64{0, 50, 95, 99, 99.9, 100} {
		// Snapshot min/max are bucket uppers, so compare percentiles
		// through the bucket lens: plain's clamp can only differ at the
		// extremes by the bucket-resolution ~3%.
		sp, pp := s.Percentile(p), plain.Percentile(p)
		if sp < pp || float64(sp-pp) > 0.04*float64(pp)+1 {
			t.Fatalf("p%v: striped %d vs plain %d", p, sp, pp)
		}
	}
}

// TestPrometheusGolden pins the exact exposition format: HELP/TYPE
// headers per base name, labeled counter series, gauge rendering, and
// the cumulative histogram with populated-bucket-only le bounds, +Inf,
// _sum, and _count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	ops := r.Counter("eh_ops_total", "Operations applied.")
	r.Counter(`eh_frames_total{op="get"}`, "Frames by opcode.")
	puts := r.Counter(`eh_frames_total{op="put"}`, "")
	r.GaugeFunc("eh_conns_active", "Active connections.", func() float64 { return 3 })
	h := r.Hist("eh_stage_demo_ns", "Demo stage latency.")

	ops.Add(41)
	ops.Inc()
	puts.Add(7)
	h.Record(10) // exact bucket: le="10"
	h.Record(10)
	h.Record(100) // bucket upper 101

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP eh_ops_total Operations applied.
# TYPE eh_ops_total counter
eh_ops_total 42
# HELP eh_frames_total Frames by opcode.
# TYPE eh_frames_total counter
eh_frames_total{op="get"} 0
eh_frames_total{op="put"} 7
# HELP eh_conns_active Active connections.
# TYPE eh_conns_active gauge
eh_conns_active 3
# HELP eh_stage_demo_ns Demo stage latency.
# TYPE eh_stage_demo_ns histogram
eh_stage_demo_ns_bucket{le="10"} 2
eh_stage_demo_ns_bucket{le="101"} 3
eh_stage_demo_ns_bucket{le="+Inf"} 3
eh_stage_demo_ns_sum 120
eh_stage_demo_ns_count 3
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestScrapeRoundTrip renders a registry, parses it back, and checks
// values and histogram percentiles survive; then takes a second scrape
// after more traffic and checks the windowed Delta reflects only the
// window.
func TestScrapeRoundTrip(t *testing.T) {
	r := NewRegistry()
	ops := r.Counter("eh_ops_total", "ops")
	h := r.Hist("eh_stage_demo_ns", "demo")

	ops.Add(100)
	for i := uint64(1); i <= 1000; i++ {
		h.Record(i) // 1..1000
	}
	var buf1 bytes.Buffer
	if err := r.WritePrometheus(&buf1); err != nil {
		t.Fatal(err)
	}
	before, err := ParseMetrics(strings.NewReader(buf1.String()))
	if err != nil {
		t.Fatal(err)
	}
	if before.Values["eh_ops_total"] != 100 {
		t.Fatalf("ops = %v", before.Values["eh_ops_total"])
	}
	bh, ok := before.Hists["eh_stage_demo_ns"]
	if !ok {
		t.Fatal("histogram not scraped")
	}
	if bh.Count != 1000 {
		t.Fatalf("scraped count = %d", bh.Count)
	}
	live := h.Snapshot()
	for _, p := range []float64{50, 95, 99} {
		if got, want := bh.Percentile(p), live.Percentile(p); got != want {
			t.Fatalf("p%v: scraped %d, live %d", p, got, want)
		}
	}

	// Second window: much slower samples (fewer than the fast mode, so
	// the cumulative p50 stays fast while the window p50 is slow), plus
	// more ops.
	ops.Add(50)
	for i := uint64(0); i < 900; i++ {
		h.Record(1e6 + i*1000) // ~1ms..1.9ms
	}
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	after, err := ParseMetrics(strings.NewReader(buf2.String()))
	if err != nil {
		t.Fatal(err)
	}
	if d := ValueDelta(after, before, "eh_ops_total"); d != 50 {
		t.Fatalf("ops delta = %v", d)
	}
	win := after.Hists["eh_stage_demo_ns"].Delta(bh)
	if win.Count != 900 {
		t.Fatalf("window count = %d", win.Count)
	}
	// The window holds only the slow samples: p50 must be ≥1ms even
	// though the cumulative histogram's p50 is still in the fast mode.
	if p50 := win.Percentile(50); p50 < 1e6 {
		t.Fatalf("window p50 = %d, polluted by pre-window samples", p50)
	}
	if p50 := after.Hists["eh_stage_demo_ns"].Percentile(50); p50 >= 1e6 {
		t.Fatalf("cumulative p50 = %d, want fast mode", p50)
	}
	if win.Mean() < 1e6 {
		t.Fatalf("window mean = %v", win.Mean())
	}
}

// TestTraceBreakdown pins the slow-op log's stage rendering and the
// skip-unset contract.
func TestTraceBreakdown(t *testing.T) {
	var tr Trace
	tr.Set(StageDecode, 1500*time.Nanosecond)
	tr.Add(StageApply, time.Millisecond)
	tr.Add(StageApply, time.Millisecond)
	tr.Set(StageTotal, 3*time.Millisecond)
	got := tr.Breakdown()
	want := "frame_decode=1.5µs shard_apply=2ms batch_total=3ms"
	if got != want {
		t.Fatalf("breakdown = %q, want %q", got, want)
	}
	var nilTr *Trace
	nilTr.Set(StageDecode, time.Second) // must not panic
	if nilTr.Breakdown() != "" || nilTr.Get(StageDecode) != 0 {
		t.Fatal("nil trace not inert")
	}
}

// TestLimiter pins the token-bucket behavior and suppressed counting.
func TestLimiter(t *testing.T) {
	l := NewLimiter(1, 2) // 1/s, burst 2
	now := time.Unix(1000, 0)
	ok1, _ := l.Allow(now)
	ok2, _ := l.Allow(now)
	ok3, _ := l.Allow(now)
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("burst: %v %v %v", ok1, ok2, ok3)
	}
	// After 1.5s one token refilled; the next Allow reports the one
	// suppressed event.
	ok4, sup := l.Allow(now.Add(1500 * time.Millisecond))
	if !ok4 || sup != 1 {
		t.Fatalf("refill: ok=%v suppressed=%d", ok4, sup)
	}
	if FormatSuppressed(0) != "" || FormatSuppressed(3) != " (+3 suppressed)" {
		t.Fatal("FormatSuppressed format")
	}
}

// TestPipelineRecordTrace pins that RecordTrace skips unset stages and
// never records the global fsync stage per batch.
func TestPipelineRecordTrace(t *testing.T) {
	r := NewRegistry()
	p := NewPipeline(r)
	var tr Trace
	tr.Set(StageDecode, 100)
	tr.Set(StageApply, 200)
	tr.Set(StageWALFsync, 999) // must be ignored
	tr.Set(StageTotal, 400)
	p.RecordTrace(&tr)
	if n := p.Hist(StageDecode).Count(); n != 1 {
		t.Fatalf("decode count %d", n)
	}
	if n := p.Hist(StageCoalesce).Count(); n != 0 {
		t.Fatalf("unset stage recorded: %d", n)
	}
	if n := p.Hist(StageWALFsync).Count(); n != 0 {
		t.Fatalf("fsync recorded per batch: %d", n)
	}
	if n := p.Hist(StageTotal).Count(); n != 1 {
		t.Fatalf("total count %d", n)
	}
	var nilP *Pipeline
	nilP.RecordTrace(&tr) // must not panic
	nilP.Record(StageDecode, 1)
}

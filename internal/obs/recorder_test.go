package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestRecorderRecordSnapshotNewestFirst(t *testing.T) {
	r := NewRecorder(8)
	for i := 1; i <= 5; i++ {
		r.Record(TraceRecord{ID: uint64(i), StartNS: int64(i)})
	}
	recs := r.Snapshot()
	if len(recs) != 5 {
		t.Fatalf("Snapshot len = %d, want 5", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(5 - i); rec.ID != want {
			t.Fatalf("Snapshot[%d].ID = %d, want %d (newest first)", i, rec.ID, want)
		}
	}
}

func TestRecorderRingEvictsOldest(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Record(TraceRecord{ID: uint64(i)})
	}
	recs := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("Snapshot len = %d, want ring size 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(10 - i); rec.ID != want {
			t.Fatalf("Snapshot[%d].ID = %d, want %d (oldest evicted)", i, rec.ID, want)
		}
	}
}

func TestRecorderMergeJoinsNewestMatch(t *testing.T) {
	r := NewRecorder(8)
	r.Record(TraceRecord{ID: 7, StartNS: 1})
	r.Record(TraceRecord{ID: 9, StartNS: 2})
	r.Record(TraceRecord{ID: 7, StartNS: 3}) // newer record with the same ID

	r.Merge(7, StageFollowerApply, 12345)
	var hits int
	for _, rec := range r.Snapshot() {
		if rec.ID != 7 || !rec.Set[StageFollowerApply] {
			continue
		}
		hits++
		if rec.StartNS != 3 {
			t.Fatalf("Merge landed on StartNS=%d, want the newest (3)", rec.StartNS)
		}
		if rec.NS[StageFollowerApply] != 12345 {
			t.Fatalf("merged span = %d", rec.NS[StageFollowerApply])
		}
	}
	if hits != 1 {
		t.Fatalf("merge hit %d records, want exactly 1", hits)
	}

	// Merging an unknown (or evicted) ID is a no-op, never a panic.
	r.Merge(0xFFFF, StageFollowerApply, 1)
	// Merges accumulate: a second span for the same stage adds.
	r.Merge(7, StageFollowerApply, 5)
	for _, rec := range r.Snapshot() {
		if rec.ID == 7 && rec.StartNS == 3 && rec.NS[StageFollowerApply] != 12350 {
			t.Fatalf("second merge did not accumulate: %d", rec.NS[StageFollowerApply])
		}
	}
}

func TestRecorderTotalNS(t *testing.T) {
	var rec TraceRecord
	rec.NS[StageApply], rec.Set[StageApply] = 10, true
	rec.NS[StageWALAppend], rec.Set[StageWALAppend] = 5, true
	if got := rec.TotalNS(); got != 15 {
		t.Fatalf("TotalNS without StageTotal = %d, want the stage sum 15", got)
	}
	rec.NS[StageTotal], rec.Set[StageTotal] = 100, true
	if got := rec.TotalNS(); got != 100 {
		t.Fatalf("TotalNS with StageTotal = %d, want 100", got)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(TraceRecord{ID: 1})
	r.Merge(1, StageTotal, 1)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil Snapshot = %v", got)
	}
	if r.Cap() != 0 {
		t.Fatalf("nil Cap = %d", r.Cap())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := uint64(g*1000 + i + 1)
				r.Record(TraceRecord{ID: id})
				r.Merge(id, StageFollowerApply, 1)
				r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Snapshot()); got != 32 {
		t.Fatalf("ring holds %d records after churn, want 32", got)
	}
}

func TestLSNTracesPutGet(t *testing.T) {
	m := NewLSNTraces(8)
	m.Put(3, 0xAB, 111)
	ent, ok := m.Get(3)
	if !ok || ent.TraceID != 0xAB || ent.AppendNS != 111 {
		t.Fatalf("Get(3) = (%+v, %v)", ent, ok)
	}
	// Slot reuse: LSN 11 lands on 3's slot in a ring of 8 and evicts it.
	m.Put(11, 0xCD, 222)
	if _, ok := m.Get(3); ok {
		t.Fatal("Get(3) hit after its slot was reused")
	}
	if ent, ok := m.Get(11); !ok || ent.TraceID != 0xCD {
		t.Fatalf("Get(11) = (%+v, %v)", ent, ok)
	}
	// Never-stamped and zero LSNs miss; nil rings are inert.
	if _, ok := m.Get(5); ok {
		t.Fatal("unstamped LSN hit")
	}
	if _, ok := m.Get(0); ok {
		t.Fatal("LSN 0 hit")
	}
	var nilRing *LSNTraces
	nilRing.Put(1, 2, 3)
	if _, ok := nilRing.Get(1); ok {
		t.Fatal("nil ring hit")
	}
}

func TestLSNTracesConcurrent(t *testing.T) {
	m := NewLSNTraces(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				lsn := uint64(i)
				m.Put(lsn, uint64(g), int64(i))
				if ent, ok := m.Get(lsn); ok && ent.LSN != lsn {
					panic(fmt.Sprintf("Get(%d) returned LSN %d", lsn, ent.LSN))
				}
			}
		}(g)
	}
	wg.Wait()
}

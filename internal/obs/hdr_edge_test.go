package obs

import (
	"math"
	"testing"
)

// TestHDRNoSamples pins the empty histogram as a total function: every
// accessor returns zero and no percentile panics, because the benchmark
// summarizer calls them unconditionally on cells that recorded nothing
// (e.g. a mix with no reads).
func TestHDRNoSamples(t *testing.T) {
	var h HDR
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty HDR not zero-valued: count=%d min=%d max=%d mean=%v",
			h.Count(), h.Min(), h.Max(), h.Mean())
	}
	for _, p := range []float64{-5, 0, 50, 95, 99, 100, 200} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty HDR p%v = %d, want 0", p, got)
		}
	}
	// Merging an empty histogram into an empty histogram stays empty.
	var other HDR
	h.Merge(&other)
	if h.Count() != 0 {
		t.Fatal("merging two empty HDRs fabricated samples")
	}
}

// TestHDRSingleSample pins that with one sample every percentile is that
// sample exactly — the clamp to the observed max must override bucket
// upper bounds, so a lone 999ns outlier reports p50=p99=999, not the
// bucket edge above it.
func TestHDRSingleSample(t *testing.T) {
	for _, v := range []uint64{0, 1, 31, 32, 999, 1 << 40, math.MaxUint64} {
		var h HDR
		h.Record(v)
		if h.Count() != 1 || h.Min() != v || h.Max() != v {
			t.Fatalf("v=%d: count/min/max = %d/%d/%d", v, h.Count(), h.Min(), h.Max())
		}
		if mean := h.Mean(); mean != float64(v) {
			t.Fatalf("v=%d: mean = %v", v, mean)
		}
		for _, p := range []float64{0, 50, 95, 99, 100} {
			if got := h.Percentile(p); got != v {
				t.Fatalf("v=%d: p%v = %d, want the sample itself", v, p, got)
			}
		}
	}
}

// TestHDRMaxBoundBucket walks the very top of the uint64 range: the last
// sub-buckets must index in range, bound their values, and never report
// a percentile above MaxUint64 or below the recorded value's bucket.
func TestHDRMaxBoundBucket(t *testing.T) {
	top := []uint64{
		math.MaxUint64,
		math.MaxUint64 - 1,
		1 << 63,
		1<<63 - 1,
		1<<63 + 1<<58, // interior sub-bucket of the top group
	}
	for _, v := range top {
		idx := hdrIndex(v)
		if idx < 0 || idx >= hdrSize {
			t.Fatalf("hdrIndex(%d) = %d out of [0,%d)", v, idx, hdrSize)
		}
		if u := hdrUpper(idx); u < v {
			t.Fatalf("hdrUpper(%d) = %d < value %d", idx, u, v)
		}
	}
	var h HDR
	for _, v := range top {
		h.Record(v)
	}
	if h.Max() != math.MaxUint64 {
		t.Fatalf("max = %d", h.Max())
	}
	if got := h.Percentile(100); got != math.MaxUint64 {
		t.Fatalf("p100 = %d, want MaxUint64", got)
	}
	if got := h.Percentile(50); got < 1<<63-1 || got > math.MaxUint64 {
		t.Fatalf("p50 = %d outside the recorded range", got)
	}
}

// TestHDRPercentileMonotonicity pins p50 ≤ p95 ≤ p99 ≤ p100 = max over
// assorted shapes — uniform, bimodal, constant, heavy one-bucket with an
// outlier — since the summary table and the regression gate both assume
// the quantiles are ordered.
func TestHDRPercentileMonotonicity(t *testing.T) {
	shapes := map[string]func(h *HDR){
		"uniform": func(h *HDR) {
			for i := uint64(1); i <= 5000; i++ {
				h.Record(i)
			}
		},
		"bimodal": func(h *HDR) {
			for i := 0; i < 900; i++ {
				h.Record(100)
			}
			for i := 0; i < 100; i++ {
				h.Record(1 << 30)
			}
		},
		"constant": func(h *HDR) {
			for i := 0; i < 1000; i++ {
				h.Record(777)
			}
		},
		"outlier": func(h *HDR) {
			for i := 0; i < 9999; i++ {
				h.Record(50)
			}
			h.Record(math.MaxUint64)
		},
		"lcg": func(h *HDR) {
			x := uint64(12345)
			for i := 0; i < 10000; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				h.Record(x >> (x % 50)) // spread across many decades
			}
		},
	}
	for name, fill := range shapes {
		var h HDR
		fill(&h)
		ps := []float64{0, 25, 50, 90, 95, 99, 99.9, 100}
		prev := uint64(0)
		for _, p := range ps {
			got := h.Percentile(p)
			if got < prev {
				t.Fatalf("%s: p%v = %d < p(previous) = %d; quantiles must be ordered", name, p, got, prev)
			}
			if got > h.Max() {
				t.Fatalf("%s: p%v = %d above max %d", name, p, got, h.Max())
			}
			if got < h.Min() {
				t.Fatalf("%s: p%v = %d below min %d", name, p, got, h.Min())
			}
			prev = got
		}
		if h.Percentile(100) != h.Max() {
			t.Fatalf("%s: p100 = %d, want max %d", name, h.Percentile(100), h.Max())
		}
	}
}

package obs

import (
	"strings"
	"testing"
)

// TestParseMetricsRejectsMalformed pins the scraper's failure mode on
// corrupt Prometheus exposition: every malformed input must return an
// error — never panic, and never parse into a quietly-wrong Scrape that
// a stats delta would then report as real server behavior.
func TestParseMetricsRejectsMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"truncated line, no value", "eh_server_ops_total"},
		{"truncated mid-value", "eh_server_ops_total 12\neh_frames"},
		{"empty value", "eh_server_ops_total "},
		{"bad float", "eh_server_ops_total twelve"},
		{"bad float exponent", "eh_server_ops_total 1e"},
		{"bad bucket count", `eh_stage_total_ns_bucket{le="100"} 1.5`},
		{"bad le bound", `eh_stage_total_ns_bucket{le="ten"} 3`},
		{"negative bucket count", `eh_stage_total_ns_bucket{le="100"} -1`},
		{"duplicate scalar series", "eh_server_ops_total 1\neh_server_ops_total 2"},
		{"duplicate bucket series", "eh_x_bucket{le=\"10\"} 1\neh_x_bucket{le=\"10\"} 2"},
		{"duplicate across types", "eh_y 1\neh_y 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ParseMetrics(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("malformed exposition parsed cleanly: %+v", s)
			}
		})
	}
}

// TestParseMetricsTolerance pins what stays accepted: comments, blank
// lines, unknown series, and distinct label sets of the same base name —
// the scraper must keep working against future servers.
func TestParseMetricsTolerance(t *testing.T) {
	input := strings.Join([]string{
		"# HELP eh_server_ops_total Operations.",
		"# TYPE eh_server_ops_total counter",
		"",
		"eh_server_ops_total 12",
		`eh_frames_total{op="get"} 3`,
		`eh_frames_total{op="teleport"} 1`, // unknown label value: fine
		"eh_future_metric 9.5",             // unknown series: fine
		`eh_stage_x_ns_bucket{le="100"} 2`,
		`eh_stage_x_ns_bucket{le="+Inf"} 2`,
		"eh_stage_x_ns_sum 150",
		"eh_stage_x_ns_count 2",
	}, "\n")
	s, err := ParseMetrics(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ParseMetrics: %v", err)
	}
	if s.Values["eh_server_ops_total"] != 12 || s.Values[`eh_frames_total{op="teleport"}`] != 1 {
		t.Fatalf("scalars = %+v", s.Values)
	}
	h := s.Hists["eh_stage_x_ns"]
	if h.Count != 2 || h.Sum != 150 || h.Buckets[100] != 2 {
		t.Fatalf("hist = %+v", h)
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ScrapedHist is one histogram reconstructed from Prometheus text
// exposition: cumulative counts keyed by "le" bound. Because the server
// emits full-resolution HDR bucket bounds, subtracting two scrapes
// (Delta) yields windowed percentiles at the same ~3% accuracy as the
// live histogram.
type ScrapedHist struct {
	Buckets map[uint64]uint64 // le bound (ns) -> cumulative count
	Count   uint64
	Sum     uint64
}

// Scrape is one parsed /metrics response: scalar series by full name
// (labels included) and histograms by base name.
type Scrape struct {
	Values map[string]float64
	Hists  map[string]ScrapedHist
}

// ParseMetrics parses Prometheus text exposition as produced by
// Registry.WritePrometheus. It tolerates unknown series and comment
// lines, so it can scrape future servers — but a duplicated series is an
// error, not a silent last-wins: it means the scrape is corrupt (a
// truncated response glued to a retry, or a broken server), and a delta
// computed from it would be quietly wrong.
func ParseMetrics(r io.Reader) (*Scrape, error) {
	out := &Scrape{
		Values: make(map[string]float64),
		Hists:  make(map[string]ScrapedHist),
	}
	type scalar struct {
		name string
		val  float64
	}
	var scalars []scalar
	seen := make(map[string]struct{})
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("obs: malformed metrics line %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		if _, dup := seen[series]; dup {
			return nil, fmt.Errorf("obs: duplicate series %q in exposition", series)
		}
		seen[series] = struct{}{}
		// Histogram bucket line: <base>_bucket{le="<bound>"} <cum>
		if i := strings.Index(series, "_bucket{le=\""); i >= 0 && strings.HasSuffix(series, "\"}") {
			base := series[:i]
			bound := series[i+len("_bucket{le=\"") : len(series)-2]
			cum, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: bad bucket count in %q: %v", line, err)
			}
			h := out.Hists[base]
			if h.Buckets == nil {
				h.Buckets = make(map[uint64]uint64)
			}
			if bound != "+Inf" {
				le, err := strconv.ParseUint(bound, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("obs: bad le bound in %q: %v", line, err)
				}
				h.Buckets[le] = cum
			}
			out.Hists[base] = h
			continue
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad value in %q: %v", line, err)
		}
		scalars = append(scalars, scalar{series, val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Assign _sum/_count to their histograms now that all bucket series
	// are known; everything else is a scalar value.
	for _, s := range scalars {
		if base, ok := strings.CutSuffix(s.name, "_sum"); ok {
			if h, isHist := out.Hists[base]; isHist {
				h.Sum = uint64(s.val)
				out.Hists[base] = h
				continue
			}
		}
		if base, ok := strings.CutSuffix(s.name, "_count"); ok {
			if h, isHist := out.Hists[base]; isHist {
				h.Count = uint64(s.val)
				out.Hists[base] = h
				continue
			}
		}
		out.Values[s.name] = s.val
	}
	return out, nil
}

// cumAt evaluates the cumulative count at bound x: the value at the
// greatest populated bound ≤ x (cumulative counts form a step function
// increasing only at populated bounds).
func (h ScrapedHist) cumAt(x uint64, sorted []uint64) uint64 {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > x })
	if i == 0 {
		return 0
	}
	return h.Buckets[sorted[i-1]]
}

func (h ScrapedHist) sortedBounds() []uint64 {
	bounds := make([]uint64, 0, len(h.Buckets))
	for le := range h.Buckets {
		bounds = append(bounds, le)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return bounds
}

// Delta returns the histogram of the window between two scrapes of the
// same (monotonic) histogram: after.Delta(before). Bucket counts in a
// live histogram never decrease, so every populated bound in before is
// populated in after, and the windowed cumulative at each bound is a
// plain subtraction.
func (h ScrapedHist) Delta(before ScrapedHist) ScrapedHist {
	out := ScrapedHist{Buckets: make(map[uint64]uint64)}
	beforeBounds := before.sortedBounds()
	for le, cum := range h.Buckets {
		b := before.cumAt(le, beforeBounds)
		if cum > b {
			out.Buckets[le] = cum - b
		}
	}
	if h.Count > before.Count {
		out.Count = h.Count - before.Count
	}
	if h.Sum > before.Sum {
		out.Sum = h.Sum - before.Sum
	}
	return out
}

// Percentile returns the p-th percentile bound of the scraped window.
func (h ScrapedHist) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	bounds := h.sortedBounds()
	for _, le := range bounds {
		if h.Buckets[le] > rank {
			return le
		}
	}
	if len(bounds) > 0 {
		return bounds[len(bounds)-1]
	}
	return 0
}

// Mean returns the mean of the scraped window.
func (h ScrapedHist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// ValueDelta returns after minus before for a scalar series, clamped at
// zero (gauges can move backwards; a windowed delta of a counter
// cannot).
func ValueDelta(after, before *Scrape, name string) float64 {
	d := after.Values[name] - before.Values[name]
	if d < 0 {
		return 0
	}
	return d
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. Add/Inc are single
// atomic adds — safe on the hot path. A nil *Counter is valid and
// counts nothing.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGaugeFunc
	kindHist
)

type metric struct {
	name string // full series name, may carry {label="v"} pairs
	base string // name up to the first '{' — HELP/TYPE are per base
	help string
	kind metricKind

	counter *Counter
	fn      func() float64
	hist    *Hist
}

func (m *metric) value() float64 {
	switch m.kind {
	case kindCounter:
		return float64(m.counter.Load())
	case kindCounterFunc, kindGaugeFunc:
		return m.fn()
	}
	return 0
}

// Registry holds a node's metrics and renders them as Prometheus text
// exposition (for /metrics and scrapers) or JSON (for /statsz).
// Registration is synchronized and expected at startup; reads of
// registered metrics are lock-free. Registries are instances, not
// globals, so an in-process bench harness can give each node its own.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) {
	if i := strings.IndexByte(m.name, '{'); i >= 0 {
		m.base = m.name[:i]
	} else {
		m.base = m.name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter. The name may carry label
// pairs (`eh_frames_total{op="get"}`); HELP/TYPE are emitted once per
// base name, with the help text of the first registration.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at render
// time — for pre-existing atomics (server op counts, WAL record counts)
// that should appear on /metrics without double bookkeeping. fn must be
// monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&metric{name: name, help: help, kind: kindCounterFunc,
		fn: func() float64 { return float64(fn()) }})
}

// GaugeFunc registers a gauge read from fn at render time (connection
// counts, LSN positions, staleness, boolean states as 0/1).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// Hist registers and returns a striped histogram rendered as a
// Prometheus histogram. Histogram names must be label-free.
func (r *Registry) Hist(name, help string) *Hist {
	if strings.IndexByte(name, '{') >= 0 {
		panic("obs: histogram names must not carry labels: " + name)
	}
	h := &Hist{}
	r.register(&metric{name: name, help: help, kind: kindHist, hist: h})
	return h
}

// snapshotMetrics copies the registration list so rendering doesn't hold
// the lock while reading values.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// WritePrometheus renders the whole registry in Prometheus text
// exposition format. Histograms emit cumulative `_bucket{le="..."}`
// lines for populated buckets only (bounds are the HDR bucket uppers in
// nanoseconds) plus `+Inf`, `_sum`, and `_count` — full-resolution
// cumulative buckets, so two scrapes can be subtracted to recover
// windowed percentiles (see ParseHists/Delta).
func (r *Registry) WritePrometheus(w io.Writer) error {
	metrics := r.snapshotMetrics()
	var lastBase string
	for _, m := range metrics {
		if m.base != lastBase {
			lastBase = m.base
			typ := "counter"
			switch m.kind {
			case kindGaugeFunc:
				typ = "gauge"
			case kindHist:
				typ = "histogram"
			}
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.base, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.base, typ); err != nil {
				return err
			}
		}
		if m.kind == kindHist {
			if err := writePromHist(w, m.name, m.hist.Snapshot()); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", m.name, formatPromValue(m.value())); err != nil {
			return err
		}
	}
	return nil
}

func writePromHist(w io.Writer, name string, h HDR) error {
	var cum uint64
	for b := 0; b < hdrSize; b++ {
		n := h.buckets[b]
		if n == 0 {
			continue
		}
		cum += n
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, hdrUpper(b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, h.sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.count)
	return err
}

// formatPromValue prints integers without an exponent and everything
// else in Go's shortest-roundtrip form.
func formatPromValue(v float64) string {
	if v == float64(uint64(v)) && v >= 0 {
		return fmt.Sprintf("%d", uint64(v))
	}
	return fmt.Sprintf("%g", v)
}

// JSONSnapshot is the registry rendered for /statsz: flat scalar series
// plus summarized histograms.
type JSONSnapshot struct {
	Counters   map[string]uint64        `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramJSON `json:"histograms,omitempty"`
}

// HistogramJSON is the JSON summary of one histogram.
type HistogramJSON struct {
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  uint64  `json:"p50_ns"`
	P95NS  uint64  `json:"p95_ns"`
	P99NS  uint64  `json:"p99_ns"`
	MaxNS  uint64  `json:"max_ns"`
}

// SummarizeHDR folds an HDR into the JSON summary shape.
func SummarizeHDR(h *HDR) HistogramJSON {
	return HistogramJSON{
		Count:  h.Count(),
		MeanNS: h.Mean(),
		P50NS:  h.Percentile(50),
		P95NS:  h.Percentile(95),
		P99NS:  h.Percentile(99),
		MaxNS:  h.Max(),
	}
}

// WriteJSON renders the registry as JSON (sorted keys via map marshal).
func (r *Registry) WriteJSON(w io.Writer) error {
	metrics := r.snapshotMetrics()
	out := JSONSnapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramJSON),
	}
	for _, m := range metrics {
		switch m.kind {
		case kindCounter, kindCounterFunc:
			out.Counters[m.name] = uint64(m.value())
		case kindGaugeFunc:
			out.Gauges[m.name] = m.value()
		case kindHist:
			h := m.hist.Snapshot()
			out.Histograms[m.name] = SummarizeHDR(&h)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Names returns all registered series names, sorted — for tests.
func (r *Registry) Names() []string {
	metrics := r.snapshotMetrics()
	names := make([]string, len(metrics))
	for i, m := range metrics {
		names[i] = m.name
	}
	sort.Strings(names)
	return names
}

package obs

import (
	"sync"
	"sync/atomic"
)

// TraceOrigin says which node recorded a TraceRecord — the primary
// serving the client batch or a follower applying the shipped record.
type TraceOrigin uint8

const (
	OriginPrimary TraceOrigin = iota
	OriginFollower
)

// String returns the origin's name as rendered in /tracez.
func (o TraceOrigin) String() string {
	switch o {
	case OriginPrimary:
		return "primary"
	case OriginFollower:
		return "follower"
	}
	return "unknown"
}

// TraceRecord is one finished batch's spans in the flight recorder: the
// trace ID (0 for server-originated slow-op captures that the client did
// not sample), the per-stage nanosecond spans, and enough identity (ops,
// LSN, wall-clock start) to correlate with the slow-op log and the WAL.
type TraceRecord struct {
	ID      uint64      // wire trace ID; 0 = unsampled slow-op capture
	StartNS int64       // wall clock at batch start, unix nanoseconds
	Origin  TraceOrigin // which node produced the record
	Slow    bool        // batch exceeded the slow-op threshold
	Ops     int         // ops in the batch
	LSN     uint64      // WAL LSN of the batch's record (0 = pure read)
	NS      [NumStages]uint64
	Set     [NumStages]bool
}

// TotalNS returns the record's end-to-end span: StageTotal when set,
// otherwise the sum of set stages (a follower record has only
// follower_apply).
func (r *TraceRecord) TotalNS() uint64 {
	if r.Set[StageTotal] {
		return r.NS[StageTotal]
	}
	var sum uint64
	for s := Stage(0); s < NumStages; s++ {
		if r.Set[s] {
			sum += r.NS[s]
		}
	}
	return sum
}

// FromTrace copies a finished Trace's spans into the record.
func (r *TraceRecord) FromTrace(t *Trace) {
	if t == nil {
		return
	}
	r.NS = t.ns
	r.Set = t.set
}

// Recorder is the flight recorder: a fixed ring of recent TraceRecords.
// Writers claim slots with one atomic add and take only that slot's
// mutex, so concurrent connections never contend unless they collide on
// the same slot; the write path is only reached for sampled or slow
// batches, so it stays off the per-op fast path entirely. Snapshot and
// Merge scan under the slot locks and may observe torn *ring order* (a
// slot mid-overwrite) but never torn records.
type Recorder struct {
	seq   atomic.Uint64
	slots []recSlot
}

type recSlot struct {
	mu  sync.Mutex
	seq uint64 // 1-based claim number; 0 = never written
	rec TraceRecord
}

// NewRecorder returns a recorder keeping the last n records (minimum 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{slots: make([]recSlot, n)}
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Record stores one finished trace, overwriting the oldest slot. Nil
// recorders drop the record, so callers need no nil checks.
func (r *Recorder) Record(rec TraceRecord) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	s := &r.slots[(seq-1)%uint64(len(r.slots))]
	s.mu.Lock()
	s.seq = seq
	s.rec = rec
	s.mu.Unlock()
}

// Merge folds a late-arriving span (a follower's apply time returning
// over the replication stream) into the newest record with the given
// trace ID. It reports whether a record was found; a miss means the ring
// has already evicted the trace, which is fine — the span is still in
// the follower's own histograms.
func (r *Recorder) Merge(id uint64, stage Stage, ns uint64) bool {
	if r == nil || id == 0 || stage < 0 || stage >= NumStages {
		return false
	}
	var best *recSlot
	var bestSeq uint64
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.seq != 0 && s.rec.ID == id && s.seq > bestSeq {
			best, bestSeq = s, s.seq
		}
		s.mu.Unlock()
	}
	if best == nil {
		return false
	}
	best.mu.Lock()
	// Re-check under the lock: the slot may have been overwritten since
	// the scan. Losing the race just degrades to a miss.
	if best.rec.ID == id {
		best.rec.NS[stage] += ns
		best.rec.Set[stage] = true
		best.mu.Unlock()
		return true
	}
	best.mu.Unlock()
	return false
}

// Snapshot copies out every live record, newest first.
func (r *Recorder) Snapshot() []TraceRecord {
	if r == nil {
		return nil
	}
	type seqRec struct {
		seq uint64
		rec TraceRecord
	}
	tmp := make([]seqRec, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.seq != 0 {
			tmp = append(tmp, seqRec{s.seq, s.rec})
		}
		s.mu.Unlock()
	}
	// Newest first by claim sequence (insertion sort: the ring is small).
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j].seq > tmp[j-1].seq; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	out := make([]TraceRecord, len(tmp))
	for i, t := range tmp {
		out[i] = t.rec
	}
	return out
}

package obs

// Stage identifies one segment of a batch's path through the server.
// The stages partition the server-side wall clock of a batch: decode,
// coalesce wait, shard apply, WAL append (including group-commit wait),
// replication sync-ack wait, and reply write, with StageTotal covering
// the whole span read-frame-done → reply-flushed. StageWALFsync is the
// odd one out: it times individual fsync syscalls globally (the group
// leader pays it once for many batches), so it does not sum into
// per-batch totals.
type Stage int

const (
	StageDecode Stage = iota
	StageCoalesce
	StageApply
	StageWALAppend
	StageWALFsync
	StageReplAck
	StageReplyWrite
	StageFollowerApply
	StageTotal
	NumStages
)

var stageNames = [NumStages]string{
	StageDecode:        "frame_decode",
	StageCoalesce:      "coalesce_wait",
	StageApply:         "shard_apply",
	StageWALAppend:     "wal_append",
	StageWALFsync:      "wal_fsync",
	StageReplAck:       "repl_sync_ack",
	StageReplyWrite:    "reply_write",
	StageFollowerApply: "follower_apply",
	StageTotal:         "batch_total",
}

var stageHelp = [NumStages]string{
	StageDecode:        "Wire frame decode into the op.Batch representation.",
	StageCoalesce:      "Wait in the per-connection coalescer before the batch was sealed.",
	StageApply:         "Store/shard apply (fan-out, index mutation, gather).",
	StageWALAppend:     "WAL append including any group-commit wait for durability.",
	StageWALFsync:      "Individual WAL fsync syscalls (global, not per batch).",
	StageReplAck:       "Wait for synchronous replication acknowledgement.",
	StageReplyWrite:    "Encode and write the reply frames to the connection.",
	StageFollowerApply: "Replica-side apply of a shipped record (recorded on the follower; merged into primary traces over the stream).",
	StageTotal:         "End-to-end server time for the batch, frame read to reply flushed.",
}

// String returns the stage's short name as used in metric names and the
// slow-op log.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// MetricName returns the stage histogram's Prometheus series name.
func (s Stage) MetricName() string { return "eh_stage_" + s.String() + "_ns" }

// Pipeline is the per-node set of stage histograms. All fields are
// nil-safe Hists, so a zero Pipeline (or a nil *Pipeline via its
// methods' receivers being unused) records nothing.
type Pipeline struct {
	hists [NumStages]*Hist
}

// NewPipeline registers one histogram per stage in r.
func NewPipeline(r *Registry) *Pipeline {
	p := &Pipeline{}
	for s := Stage(0); s < NumStages; s++ {
		p.hists[s] = r.Hist(s.MetricName(), stageHelp[s])
	}
	return p
}

// Hist returns the histogram for a stage (nil on a nil Pipeline, which
// is still safe to record into).
func (p *Pipeline) Hist(s Stage) *Hist {
	if p == nil || s < 0 || s >= NumStages {
		return nil
	}
	return p.hists[s]
}

// Record adds one nanosecond observation to a stage.
func (p *Pipeline) Record(s Stage, ns uint64) { p.Hist(s).Record(ns) }

// RecordTrace folds a finished batch trace into the stage histograms:
// every stage the trace touched, plus the total. Zero-valued stages the
// trace never set are skipped so empty stages don't distort percentiles
// (a non-durable store has no WAL append; an async primary has no repl
// ack).
func (p *Pipeline) RecordTrace(t *Trace) {
	if p == nil || t == nil {
		return
	}
	for s := Stage(0); s < NumStages; s++ {
		if s == StageWALFsync {
			continue // recorded globally by the WAL, not per batch
		}
		if ns := t.Get(s); ns > 0 || (s == StageTotal && t.set[s]) {
			p.Record(s, ns)
		}
	}
}

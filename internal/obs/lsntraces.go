package obs

import "sync"

// LSNTrace associates a WAL record with the trace that produced it and
// the wall clock of its append. The durable layer stamps one per
// appended batch; the replication source reads it back when shipping the
// record (to forward the trace context) and when acknowledgements return
// (to compute time lag without a clock on the wire).
type LSNTrace struct {
	LSN      uint64
	TraceID  uint64 // 0 = record was not part of a sampled trace
	AppendNS int64  // wall clock at append, unix nanoseconds
}

// LSNTraces is a fixed ring of LSNTrace entries indexed by LSN modulo
// the ring size. LSNs are assigned densely, so as long as the ship/ack
// path stays within ringSize records of the append path, lookups hit;
// beyond that Get misses and lag falls back to record counts only.
// Slots are individually locked: appenders and the repl source touch
// disjoint or briefly-contended slots, never a global lock.
type LSNTraces struct {
	slots []lsnSlot
}

type lsnSlot struct {
	mu  sync.Mutex
	ent LSNTrace
}

// NewLSNTraces returns a ring holding n entries (minimum 1).
func NewLSNTraces(n int) *LSNTraces {
	if n < 1 {
		n = 1
	}
	return &LSNTraces{slots: make([]lsnSlot, n)}
}

// Put stamps an LSN. Nil rings drop the stamp.
func (m *LSNTraces) Put(lsn, traceID uint64, appendNS int64) {
	if m == nil || lsn == 0 {
		return
	}
	s := &m.slots[lsn%uint64(len(m.slots))]
	s.mu.Lock()
	s.ent = LSNTrace{LSN: lsn, TraceID: traceID, AppendNS: appendNS}
	s.mu.Unlock()
}

// Get returns the entry for an LSN, reporting a miss when the slot has
// been reused for a newer record (or was never stamped).
func (m *LSNTraces) Get(lsn uint64) (LSNTrace, bool) {
	if m == nil || lsn == 0 {
		return LSNTrace{}, false
	}
	s := &m.slots[lsn%uint64(len(m.slots))]
	s.mu.Lock()
	ent := s.ent
	s.mu.Unlock()
	if ent.LSN != lsn {
		return LSNTrace{}, false
	}
	return ent, true
}

package obs

import (
	"strconv"
	"strings"
	"sync"
	"time"
)

// Trace accumulates one batch's per-stage durations as it moves through
// the pipeline. It lives on the connection state (one per connection,
// reset per batch), is filled by plain stores — no atomics, a batch is
// handled by one goroutine at a time — and is folded into the Pipeline
// histograms when the batch finishes. A nil *Trace is valid and records
// nothing, so the durable layer can time stages unconditionally.
type Trace struct {
	ns  [NumStages]uint64
	set [NumStages]bool
}

// Reset clears the trace for the next batch.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	*t = Trace{}
}

// Set records a stage's duration, replacing any previous value.
func (t *Trace) Set(s Stage, d time.Duration) {
	if t == nil || s < 0 || s >= NumStages {
		return
	}
	if d < 0 {
		d = 0
	}
	t.ns[s] = uint64(d)
	t.set[s] = true
}

// Add accumulates into a stage (a coalesced batch can decode several
// frames; their decode times sum).
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil || s < 0 || s >= NumStages {
		return
	}
	if d < 0 {
		d = 0
	}
	t.ns[s] += uint64(d)
	t.set[s] = true
}

// Get returns a stage's accumulated nanoseconds (0 if never set).
func (t *Trace) Get(s Stage) uint64 {
	if t == nil || s < 0 || s >= NumStages {
		return 0
	}
	return t.ns[s]
}

// Breakdown renders the set stages as "stage=dur stage=dur ..." for the
// slow-op log. Only called on the slow path; allocates freely.
func (t *Trace) Breakdown() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for s := Stage(0); s < NumStages; s++ {
		if !t.set[s] {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(stageNames[s])
		b.WriteByte('=')
		b.WriteString(time.Duration(t.ns[s]).String())
	}
	return b.String()
}

// Limiter is a token-bucket rate limiter for the slow-op log: at most
// burst events immediately, refilling at rate events per second. It is
// only consulted after a batch already exceeded the slow-op threshold,
// so a mutex is fine.
type Limiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	tokens  float64
	last    time.Time
	dropped uint64
}

// NewLimiter returns a limiter allowing rate events/second with the
// given burst.
func NewLimiter(rate, burst float64) *Limiter {
	return &Limiter{rate: rate, burst: burst, tokens: burst}
}

// Allow consumes a token if available. When it returns true it also
// returns the number of events dropped since the last allowed one, so
// the log line can carry "(+N suppressed)".
func (l *Limiter) Allow(now time.Time) (ok bool, suppressed uint64) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.last.IsZero() {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	if l.tokens < 1 {
		l.dropped++
		return false, 0
	}
	l.tokens--
	suppressed = l.dropped
	l.dropped = 0
	return true, suppressed
}

// FormatSuppressed renders the "(+N suppressed)" suffix, empty when N=0.
func FormatSuppressed(n uint64) string {
	if n == 0 {
		return ""
	}
	return " (+" + strconv.FormatUint(n, 10) + " suppressed)"
}

package obs

import (
	"sync/atomic"
	"time"
	"unsafe"
)

// histStripes is the number of independently-updated bucket arrays in a
// Hist. Recording picks a stripe from the goroutine's stack address, so
// concurrent recorders mostly touch different cache lines; 8 stripes is
// enough to keep contention negligible at the batch rates the server
// sees (one record per stage per batch, not per op).
const histStripes = 8

type histStripe struct {
	buckets [hdrSize]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	// Pad stripes apart so two recorders on adjacent stripes don't
	// false-share the count/sum words.
	_ [16]uint64
}

// Hist is the concurrency-safe counterpart of HDR: striped per-goroutine
// recording (two atomic adds per Record, no locks, no allocation) with
// snapshot-on-read into a plain HDR. A nil *Hist is valid and records
// nothing, so instrumentation points can stay unconditional.
//
// Min and max are not tracked atomically — they are derived at snapshot
// time from the extreme non-empty buckets, so Snapshot().Min()/Max() are
// bucket bounds (≤3% high) rather than exact observed values. Counts,
// sums, and percentiles are exact within bucket resolution.
type Hist struct {
	stripes [histStripes]histStripe
}

// Record adds one value. Safe for concurrent use; nil-safe; zero
// allocations.
func (h *Hist) Record(v uint64) {
	if h == nil {
		return
	}
	// Stripe by the address of a stack local: goroutines have distinct
	// stacks, so concurrent recorders spread across stripes without
	// needing a goroutine ID. The multiplicative hash mixes the
	// low-entropy address bits.
	var stackMark byte
	s := &h.stripes[(uintptr(unsafe.Pointer(&stackMark))*0x9E3779B97F4A7C15)>>59&(histStripes-1)]
	s.buckets[hdrIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// RecordSince records the elapsed time since start in nanoseconds.
func (h *Hist) RecordSince(start time.Time) {
	if h == nil {
		return
	}
	h.Record(uint64(time.Since(start)))
}

// RecordDur records a duration in nanoseconds (negative durations clamp
// to zero).
func (h *Hist) RecordDur(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the number of recorded values without materializing a
// full snapshot.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return n
}

// Snapshot folds all stripes into a point-in-time HDR. The snapshot is
// not a perfectly consistent cut under concurrent recording — a record
// landing mid-snapshot may or may not be included — but every bucket
// count is monotonic, so deltas between two snapshots are sound. Min and
// max are reconstructed from the extreme non-empty buckets.
func (h *Hist) Snapshot() HDR {
	var out HDR
	if h == nil {
		return out
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := range s.buckets {
			out.buckets[b] += s.buckets[b].Load()
		}
		out.count += s.count.Load()
		out.sum += s.sum.Load()
	}
	// Recover count from the buckets: the per-stripe count word may lag
	// or lead its bucket words mid-record, and Percentile walks buckets
	// against count, so the bucket total is the authoritative one.
	var total uint64
	for b := range out.buckets {
		total += out.buckets[b]
	}
	out.count = total
	if total == 0 {
		out.sum = 0
		return out
	}
	for b := range out.buckets {
		if out.buckets[b] != 0 {
			out.min = hdrUpper(b)
			break
		}
	}
	for b := len(out.buckets) - 1; b >= 0; b-- {
		if out.buckets[b] != 0 {
			out.max = hdrUpper(b)
			break
		}
	}
	return out
}

// Package obs is the server-side observability layer: a shared
// high-dynamic-range latency histogram (promoted from internal/harness,
// here in both a single-writer form and a striped concurrency-safe
// form), counter/gauge registries that render Prometheus text exposition
// and JSON, the serving pipeline's per-stage histogram set, a per-batch
// stage trace for slow-operation logging, and a parser for the
// Prometheus exposition — so a scraper (internal/bench, ehload
// -stats-delta) can diff two scrapes and recover windowed percentiles
// per stage.
//
// Everything on the record path is allocation-free: histograms are
// fixed-size bucket arrays, counters are single atomics, and the striped
// Hist records with two atomic adds. Snapshots, rendering, and parsing
// are off the hot path and allocate freely.
package obs

import "math/bits"

// hdrSubBits sets the HDR histogram's sub-bucket resolution: each
// power-of-two range is split into 2^hdrSubBits linear sub-buckets, so
// the relative quantization error is at most 2^-hdrSubBits (~3%).
const hdrSubBits = 5

// hdrSize is the bucket count: values below 2^hdrSubBits get exact
// buckets, every higher power-of-two range gets 2^hdrSubBits sub-buckets.
const hdrSize = (64 - hdrSubBits + 1) << hdrSubBits

// NumBuckets is the fixed bucket count of HDR and Hist. Exposition and
// scraping share one bucketization: BucketUpper(i) for i in [0,
// NumBuckets) enumerates every possible "le" bound.
const NumBuckets = hdrSize

// BucketUpper returns the largest value bucket idx holds — the "le"
// bound that bucket exposes in Prometheus text exposition.
func BucketUpper(idx int) uint64 { return hdrUpper(idx) }

// HDR is a high-dynamic-range latency histogram in the style of
// HdrHistogram: fixed memory (1920 buckets, 15 KiB), no allocation on the
// record path, full uint64 range, and ≤3% relative error on any
// percentile. It is single-writer (or externally synchronized); the
// concurrency-safe striped variant is Hist, which snapshots into an HDR.
type HDR struct {
	buckets [hdrSize]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// hdrIndex maps a value onto its bucket.
func hdrIndex(v uint64) int {
	if v < 1<<hdrSubBits {
		return int(v) // exact buckets for small values
	}
	msb := 63 - bits.LeadingZeros64(v)
	shift := msb - hdrSubBits
	group := msb - hdrSubBits + 1
	return group<<hdrSubBits + int(v>>shift)&(1<<hdrSubBits-1)
}

// hdrUpper returns the largest value a bucket holds — the percentile
// estimate reported for ranks landing in it.
func hdrUpper(idx int) uint64 {
	if idx < 1<<hdrSubBits {
		return uint64(idx)
	}
	group := idx >> hdrSubBits
	sub := idx & (1<<hdrSubBits - 1)
	msb := group + hdrSubBits - 1
	shift := msb - hdrSubBits
	return 1<<msb + uint64(sub+1)<<shift - 1
}

// Record adds one value (e.g. nanoseconds).
func (h *HDR) Record(v uint64) {
	h.buckets[hdrIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *HDR) Count() uint64 { return h.count }

// Sum returns the sum of recorded values.
func (h *HDR) Sum() uint64 { return h.sum }

// Mean returns the arithmetic mean of recorded values.
func (h *HDR) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest recorded value.
func (h *HDR) Min() uint64 { return h.min }

// Max returns the largest recorded value.
func (h *HDR) Max() uint64 { return h.max }

// Percentile returns the p-th percentile (p in [0, 100]) to within the
// histogram's ~3% bucket resolution, clamped to the observed max.
func (h *HDR) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for idx, n := range h.buckets {
		seen += n
		if seen > rank {
			u := hdrUpper(idx)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Merge adds other's samples into h.
func (h *HDR) Merge(other *HDR) {
	if other.count == 0 {
		return
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

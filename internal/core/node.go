// Package core implements the paper's primary contribution: shortcut inner
// nodes that express slot→leaf indirections directly in the page table of
// the OS instead of materializing pointers (paper §1.1, §2.1).
//
// A Traditional node is the baseline: an array of k pointers, one per slot,
// each referencing a page-sized leaf. Resolving slot i costs three
// indirections — translate the inner node, follow the pointer, translate
// the leaf.
//
// A Shortcut node reserves a consecutive virtual memory area of k pages —
// one virtual page per slot — and rewires each virtual page onto the
// physical page of the corresponding leaf. Resolving slot i is then a
// single, hardware-accelerated page-table translation.
package core

import (
	"errors"
	"fmt"

	"vmshortcut/internal/pool"
	"vmshortcut/internal/sys"
)

// Traditional is a pointer-based radix inner node: slot i holds the virtual
// address of leaf i inside the pool window (or 0 for an empty slot).
type Traditional struct {
	slots []uintptr
	pool  *pool.Pool
}

// NewTraditional allocates a traditional inner node with k empty slots.
// The slot array itself lives on the ordinary Go heap — the paper likewise
// allocates it with malloc/new since no shortcut ever targets inner nodes.
func NewTraditional(p *pool.Pool, k int) *Traditional {
	return &Traditional{slots: make([]uintptr, k), pool: p}
}

// Slots returns the fan-out k of the node.
func (t *Traditional) Slots() int { return len(t.slots) }

// Set points slot i at the pooled leaf page ref.
func (t *Traditional) Set(i int, ref pool.Ref) {
	t.slots[i] = t.pool.Addr(ref)
}

// Clear empties slot i.
func (t *Traditional) Clear(i int) { t.slots[i] = 0 }

// Leaf resolves slot i to the leaf page, or nil for an empty slot. This is
// the three-indirection traversal the paper measures.
func (t *Traditional) Leaf(i int) []byte {
	addr := t.slots[i]
	if addr == 0 {
		return nil
	}
	return sys.Bytes(addr, sys.PageSize())
}

// LeafAddr resolves slot i to the leaf's window address (0 if empty).
func (t *Traditional) LeafAddr(i int) uintptr { return t.slots[i] }

// Ref returns the pool page ref stored in slot i, or pool.NoRef.
func (t *Traditional) Ref(i int) pool.Ref {
	if t.slots[i] == 0 {
		return pool.NoRef
	}
	r, err := t.pool.RefOf(t.slots[i])
	if err != nil {
		return pool.NoRef
	}
	return r
}

// Shortcut is a page-table-expressed inner node: a reserved virtual area of
// k pages whose i-th page is rewired onto the physical page of leaf i.
type Shortcut struct {
	base   uintptr
	k      int
	pool   *pool.Pool
	mapped []bool // which slots have been rewired onto pool pages
	closed bool

	// Remaps counts mmap calls issued for this node (for the cost analyses
	// of paper §3.1).
	Remaps int
}

// ErrClosed is returned by operations on a released shortcut node.
var ErrClosed = errors.New("core: shortcut node closed")

// NewShortcut reserves the virtual memory area for a k-slot shortcut node.
// This is phase (1) of Table 1 — a mere reservation backed by anonymous
// memory, so it is essentially free and commits no physical pages.
func NewShortcut(p *pool.Pool, k int) (*Shortcut, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: shortcut needs k > 0, got %d", k)
	}
	base, err := sys.ReserveAnon(k * sys.PageSize())
	if err != nil {
		return nil, fmt.Errorf("core: reserving %d-slot shortcut: %w", k, err)
	}
	return &Shortcut{base: base, k: k, pool: p, mapped: make([]bool, k)}, nil
}

// Slots returns the fan-out k of the node.
func (s *Shortcut) Slots() int { return s.k }

// Base returns the start address of the node's virtual area.
func (s *Shortcut) Base() uintptr { return s.base }

// Set rewires slot i onto the pooled leaf page ref: one mmap with
// MAP_SHARED|MAP_FIXED replacing the slot's current mapping. With populate
// the new page-table entry is inserted eagerly; otherwise the next access
// takes a soft fault (paper §2.1 "Details").
func (s *Shortcut) Set(i int, ref pool.Ref, populate bool) error {
	if s.closed {
		return ErrClosed
	}
	if i < 0 || i >= s.k {
		return fmt.Errorf("core: slot %d out of range [0,%d)", i, s.k)
	}
	ps := sys.PageSize()
	addr := s.base + uintptr(i*ps)
	if err := sys.MapShared(addr, ps, s.pool.FD(), int64(ref), populate); err != nil {
		return err
	}
	s.mapped[i] = true
	s.Remaps++
	return nil
}

// SetFromTraditional replicates every occupied indirection of t into the
// shortcut, coalescing neighbouring slots that reference neighbouring
// physical pages into single mmap calls (paper §2.1, last paragraph).
// Slots of t that are empty are left anonymous. Returns the number of mmap
// calls issued.
func (s *Shortcut) SetFromTraditional(t *Traditional, populate bool) (int, error) {
	if s.closed {
		return 0, ErrClosed
	}
	if t.Slots() != s.k {
		return 0, fmt.Errorf("core: slot mismatch: traditional %d vs shortcut %d", t.Slots(), s.k)
	}
	refs := make([]pool.Ref, s.k)
	for i := 0; i < s.k; i++ {
		refs[i] = t.Ref(i)
	}
	return s.SetAll(refs, populate)
}

// SetAll rewires slot i onto refs[i] for every i with refs[i] != NoRef,
// coalescing runs of neighbouring slots that map to consecutive file
// offsets into a single mmap call. Returns the number of mmap calls.
func (s *Shortcut) SetAll(refs []pool.Ref, populate bool) (int, error) {
	if s.closed {
		return 0, ErrClosed
	}
	if len(refs) != s.k {
		return 0, fmt.Errorf("core: SetAll got %d refs for %d slots", len(refs), s.k)
	}
	ps := sys.PageSize()
	calls := 0
	i := 0
	for i < s.k {
		if refs[i] == pool.NoRef {
			i++
			continue
		}
		// Extend the run while slot i+n maps to file offset refs[i]+n.
		n := 1
		for i+n < s.k && refs[i+n] != pool.NoRef &&
			int64(refs[i+n]) == int64(refs[i])+int64(n*ps) {
			n++
		}
		addr := s.base + uintptr(i*ps)
		if err := sys.MapShared(addr, n*ps, s.pool.FD(), int64(refs[i]), populate); err != nil {
			return calls, err
		}
		for j := i; j < i+n; j++ {
			s.mapped[j] = true
		}
		calls++
		i += n
	}
	s.Remaps += calls
	return calls, nil
}

// ClearSlot detaches slot i back to anonymous memory (e.g. after its leaf
// was freed), so the slot no longer aliases a pool page.
func (s *Shortcut) ClearSlot(i int) error {
	if s.closed {
		return ErrClosed
	}
	if i < 0 || i >= s.k {
		return fmt.Errorf("core: slot %d out of range [0,%d)", i, s.k)
	}
	ps := sys.PageSize()
	if err := sys.MapAnonFixed(s.base+uintptr(i*ps), ps); err != nil {
		return err
	}
	s.mapped[i] = false
	return nil
}

// Mapped reports whether slot i has been rewired onto a pool page.
func (s *Shortcut) Mapped(i int) bool { return s.mapped[i] }

// Populate eagerly installs page-table entries for all rewired slots by
// touching one byte per page — phase (3) of Table 1 for nodes whose slots
// were set without MAP_POPULATE.
func (s *Shortcut) Populate() error {
	if s.closed {
		return ErrClosed
	}
	ps := sys.PageSize()
	i := 0
	for i < s.k {
		if !s.mapped[i] {
			i++
			continue
		}
		n := 1
		for i+n < s.k && s.mapped[i+n] {
			n++
		}
		if err := sys.Populate(s.base+uintptr(i*ps), n*ps); err != nil {
			return err
		}
		i += n
	}
	return nil
}

// Leaf resolves slot i to its leaf page with a single implicit indirection:
// the returned slice points straight into the rewired virtual page.
func (s *Shortcut) Leaf(i int) []byte {
	if !s.mapped[i] {
		return nil
	}
	ps := sys.PageSize()
	return sys.Bytes(s.base+uintptr(i*ps), ps)
}

// LeafAddr resolves slot i to the shortcut's virtual page address without
// bounds bookkeeping — the hot path used by index lookups.
func (s *Shortcut) LeafAddr(i int) uintptr {
	return s.base + uintptr(i*sys.PageSize())
}

// Close releases the node's virtual area. The leaf pages themselves belong
// to the pool and are untouched.
func (s *Shortcut) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return sys.Unmap(s.base, s.k*sys.PageSize())
}

package core

import (
	"testing"

	"vmshortcut/internal/sys"
)

func TestAccessors(t *testing.T) {
	p := newPool(t)
	trad := NewTraditional(p, 3)
	r, _ := p.Alloc()
	trad.Set(2, r)
	if trad.Slots() != 3 {
		t.Fatalf("Slots = %d", trad.Slots())
	}
	if trad.LeafAddr(2) != p.Addr(r) {
		t.Fatal("LeafAddr mismatch")
	}
	if trad.LeafAddr(0) != 0 {
		t.Fatal("empty LeafAddr should be 0")
	}

	sc, err := NewShortcut(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if sc.Slots() != 3 {
		t.Fatalf("shortcut Slots = %d", sc.Slots())
	}
	if sc.Base() == 0 {
		t.Fatal("Base not set")
	}
	ps := uintptr(sys.PageSize())
	if sc.LeafAddr(2) != sc.Base()+2*ps {
		t.Fatal("shortcut LeafAddr math wrong")
	}
}

func TestSetFromTraditionalSlotMismatch(t *testing.T) {
	p := newPool(t)
	trad := NewTraditional(p, 4)
	sc, err := NewShortcut(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.SetFromTraditional(trad, false); err == nil {
		t.Fatal("slot mismatch accepted")
	}
	sc.Close()
	if _, err := sc.SetFromTraditional(trad, false); err == nil {
		t.Fatal("closed shortcut accepted SetFromTraditional")
	}
}

package core

import (
	"errors"
	"testing"
	"testing/quick"

	"vmshortcut/internal/pool"
	"vmshortcut/internal/sys"
)

func newPool(t *testing.T) *pool.Pool {
	t.Helper()
	p, err := pool.New(pool.Config{GrowChunkPages: 8, MaxPages: 1 << 16})
	if err != nil {
		t.Fatalf("pool.New: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestTraditionalResolvesLeaves(t *testing.T) {
	p := newPool(t)
	node := NewTraditional(p, 4)
	refs, _ := p.AllocN(3)
	for i, r := range refs {
		p.Page(r)[0] = byte(10 + i)
		node.Set(i, r)
	}
	for i := range refs {
		leaf := node.Leaf(i)
		if leaf == nil || leaf[0] != byte(10+i) {
			t.Fatalf("slot %d resolved wrong leaf", i)
		}
	}
	if node.Leaf(3) != nil {
		t.Fatal("empty slot should resolve to nil")
	}
	node.Clear(0)
	if node.Leaf(0) != nil {
		t.Fatal("cleared slot should resolve to nil")
	}
}

func TestTraditionalRefRoundTrip(t *testing.T) {
	p := newPool(t)
	node := NewTraditional(p, 2)
	r, _ := p.Alloc()
	node.Set(1, r)
	if got := node.Ref(1); got != r {
		t.Fatalf("Ref = %d, want %d", got, r)
	}
	if got := node.Ref(0); got != pool.NoRef {
		t.Fatalf("empty Ref = %d, want NoRef", got)
	}
}

func TestShortcutMirrorsTraditional(t *testing.T) {
	p := newPool(t)
	const k = 8
	trad := NewTraditional(p, k)
	refs, _ := p.AllocN(5)
	for i, r := range refs {
		p.Page(r)[7] = byte(100 + i)
		trad.Set(i, r)
	}
	sc, err := NewShortcut(p, k)
	if err != nil {
		t.Fatalf("NewShortcut: %v", err)
	}
	defer sc.Close()
	if _, err := sc.SetFromTraditional(trad, true); err != nil {
		t.Fatalf("SetFromTraditional: %v", err)
	}
	for i := 0; i < k; i++ {
		want := trad.Leaf(i)
		got := sc.Leaf(i)
		if (want == nil) != (got == nil) {
			t.Fatalf("slot %d occupancy mismatch", i)
		}
		if want != nil && got[7] != want[7] {
			t.Fatalf("slot %d resolves different leaf: %d vs %d", i, got[7], want[7])
		}
	}
}

func TestShortcutAliasesPhysicalPage(t *testing.T) {
	p := newPool(t)
	sc, err := NewShortcut(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	r, _ := p.Alloc()
	if err := sc.Set(0, r, true); err != nil {
		t.Fatalf("Set: %v", err)
	}
	// Write through the pool window, read through the shortcut, and back.
	p.Page(r)[11] = 99
	if sc.Leaf(0)[11] != 99 {
		t.Fatal("shortcut does not alias the pool page")
	}
	sc.Leaf(0)[12] = 55
	if p.Page(r)[12] != 55 {
		t.Fatal("write through shortcut invisible in pool window")
	}
}

func TestShortcutFanIn(t *testing.T) {
	// Multiple slots rewired onto the same physical page — the situation
	// extendible hashing creates when global depth exceeds local depth.
	p := newPool(t)
	sc, err := NewShortcut(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	r, _ := p.Alloc()
	for i := 0; i < 4; i++ {
		if err := sc.Set(i, r, true); err != nil {
			t.Fatalf("Set(%d): %v", i, err)
		}
	}
	sc.Leaf(2)[0] = 123
	for i := 0; i < 4; i++ {
		if sc.Leaf(i)[0] != 123 {
			t.Fatalf("slot %d does not alias the shared page", i)
		}
	}
}

func TestSetAllCoalescesRuns(t *testing.T) {
	p := newPool(t)
	const k = 16
	run, err := p.AllocContiguous(k)
	if err != nil {
		t.Fatalf("AllocContiguous: %v", err)
	}
	ps := sys.PageSize()
	refs := make([]pool.Ref, k)
	for i := range refs {
		refs[i] = run + pool.Ref(i*ps)
		p.Page(refs[i])[0] = byte(i + 1)
	}
	sc, _ := NewShortcut(p, k)
	defer sc.Close()
	calls, err := sc.SetAll(refs, true)
	if err != nil {
		t.Fatalf("SetAll: %v", err)
	}
	if calls != 1 {
		t.Fatalf("contiguous refs should coalesce to 1 mmap, got %d", calls)
	}
	for i := 0; i < k; i++ {
		if sc.Leaf(i)[0] != byte(i+1) {
			t.Fatalf("slot %d wrong after coalesced map", i)
		}
	}
}

func TestSetAllMixedRuns(t *testing.T) {
	p := newPool(t)
	ps := sys.PageSize()
	run, _ := p.AllocContiguous(3)
	lone, _ := p.Alloc()
	refs := []pool.Ref{
		run, run + pool.Ref(ps), run + pool.Ref(2*ps), // one run of 3
		pool.NoRef, // hole
		lone,       // single page
	}
	sc, _ := NewShortcut(p, len(refs))
	defer sc.Close()
	calls, err := sc.SetAll(refs, false)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("expected 2 mmap calls (run + lone), got %d", calls)
	}
	if sc.Mapped(3) {
		t.Fatal("hole slot must stay unmapped")
	}
	if sc.Leaf(3) != nil {
		t.Fatal("hole slot must resolve nil")
	}
}

func TestClearSlotDetaches(t *testing.T) {
	p := newPool(t)
	sc, _ := NewShortcut(p, 2)
	defer sc.Close()
	r, _ := p.Alloc()
	sc.Set(0, r, true)
	sc.Leaf(0)[0] = 42
	if err := sc.ClearSlot(0); err != nil {
		t.Fatalf("ClearSlot: %v", err)
	}
	if sc.Mapped(0) {
		t.Fatal("slot still marked mapped")
	}
	if p.Page(r)[0] != 42 {
		t.Fatal("pool page lost data on slot clear")
	}
}

func TestPopulateAfterLazySet(t *testing.T) {
	p := newPool(t)
	const k = 32
	refs, _ := p.AllocN(k)
	sc, _ := NewShortcut(p, k)
	defer sc.Close()
	for i, r := range refs {
		if err := sc.Set(i, r, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.Populate(); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	for i := range refs {
		sc.Leaf(i)[0] = byte(i)
	}
	for i, r := range refs {
		if p.Page(r)[0] != byte(i) {
			t.Fatalf("slot %d not wired to page %d", i, r)
		}
	}
}

func TestShortcutUpdateReplacesMapping(t *testing.T) {
	// Reflecting an update = re-executing step (2) for the slot (paper §2.1).
	p := newPool(t)
	sc, _ := NewShortcut(p, 1)
	defer sc.Close()
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	p.Page(a)[0], p.Page(b)[0] = 1, 2
	sc.Set(0, a, true)
	if sc.Leaf(0)[0] != 1 {
		t.Fatal("slot should see page a")
	}
	sc.Set(0, b, true)
	if sc.Leaf(0)[0] != 2 {
		t.Fatal("slot should see page b after update")
	}
	if p.Page(a)[0] != 1 {
		t.Fatal("page a damaged by remap")
	}
}

func TestShortcutErrors(t *testing.T) {
	p := newPool(t)
	if _, err := NewShortcut(p, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
	sc, _ := NewShortcut(p, 2)
	r, _ := p.Alloc()
	if err := sc.Set(5, r, false); err == nil {
		t.Fatal("out-of-range slot should fail")
	}
	if err := sc.ClearSlot(-1); err == nil {
		t.Fatal("negative slot should fail")
	}
	if _, err := sc.SetAll([]pool.Ref{r}, false); err == nil {
		t.Fatal("length mismatch should fail")
	}
	sc.Close()
	if err := sc.Set(0, r, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("Set on closed = %v", err)
	}
	if err := sc.Populate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Populate on closed = %v", err)
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestSetFaultPropagates(t *testing.T) {
	p := newPool(t)
	sc, _ := NewShortcut(p, 1)
	defer sc.Close()
	r, _ := p.Alloc()
	boom := errors.New("boom")
	sys.SetFaultHook(func(op sys.Op) error {
		if op == sys.OpMapShared {
			return boom
		}
		return nil
	})
	err := sc.Set(0, r, false)
	sys.SetFaultHook(nil)
	if !errors.Is(err, boom) {
		t.Fatalf("Set = %v, want boom", err)
	}
	if sc.Mapped(0) {
		t.Fatal("failed Set must not mark slot mapped")
	}
}

// TestQuickShortcutEquivalence: for random occupancy patterns, a shortcut
// built from a traditional node resolves exactly the same leaves.
func TestQuickShortcutEquivalence(t *testing.T) {
	p := newPool(t)
	const k = 16
	refs, err := p.AllocN(k)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range refs {
		p.Page(r)[3] = byte(i + 1)
	}
	check := func(mask uint16) bool {
		trad := NewTraditional(p, k)
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				trad.Set(i, refs[i])
			}
		}
		sc, err := NewShortcut(p, k)
		if err != nil {
			return false
		}
		defer sc.Close()
		if _, err := sc.SetFromTraditional(trad, false); err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			tl, sl := trad.Leaf(i), sc.Leaf(i)
			if (tl == nil) != (sl == nil) {
				return false
			}
			if tl != nil && tl[3] != sl[3] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestRemapsCounter(t *testing.T) {
	p := newPool(t)
	sc, _ := NewShortcut(p, 4)
	defer sc.Close()
	refs, _ := p.AllocN(2)
	sc.Set(0, refs[0], false)
	sc.Set(1, refs[1], false)
	if sc.Remaps != 2 {
		t.Fatalf("Remaps = %d, want 2", sc.Remaps)
	}
}

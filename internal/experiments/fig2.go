package experiments

import (
	"fmt"
	"time"

	"vmshortcut/internal/core"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/sys"
	"vmshortcut/internal/vmsim"
	"vmshortcut/internal/workload"
)

// Fig2Config parameterizes the Figure 2 reproduction: random accesses
// through one wide inner node, traditional vs shortcut, sweeping the
// directory size.
type Fig2Config struct {
	// Accesses per configuration. Paper: 10^7.
	Accesses int
	// Scale shrinks the paper's directory/bucket sizes. The paper sweeps
	// directories of 1–64 MB indexing 512–24576 MB of buckets; scale 1/64
	// tops out at a 1 MB directory over 384 MB of buckets.
	Scale harness.Scale
	// Seed for the access stream.
	Seed uint64
	// Sim overrides the simulated machine for the vmsim variant (zero
	// value = the paper's i7-12700KF parameters).
	Sim vmsim.Config
}

func (c *Fig2Config) fill() {
	if c.Accesses <= 0 {
		c.Accesses = 1_000_000
	}
	if c.Scale <= 0 {
		c.Scale = 1.0 / 64
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// fig2Points are the paper's x-axis configurations: directory MB and total
// bucket MB.
var fig2Points = []struct{ dirMB, bucketMB int }{
	{1, 512}, {2, 1024}, {4, 2048}, {8, 4096}, {16, 8192}, {32, 16384}, {64, 24576},
}

// Fig2 runs the real-backend Figure 2 sweep and returns one series per
// variant (total milliseconds for the access stream).
func Fig2(cfg Fig2Config) ([]harness.Series, error) {
	cfg.fill()
	trad := harness.Series{Label: "Traditional"}
	short := harness.Series{Label: "Shortcut"}
	ps := sys.PageSize()
	for _, pt := range fig2Points {
		slots := cfg.Scale.N(pt.dirMB << 20 / 8)
		buckets := cfg.Scale.N(pt.bucketMB << 20 / ps)
		if buckets > slots {
			buckets = slots
		}
		label := fmt.Sprintf("%d,%d", pt.dirMB, pt.bucketMB)

		tms, sms, err := fig2One(slots, buckets, cfg.Accesses, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", label, err)
		}
		trad.Points = append(trad.Points, harness.Point{X: label, Y: tms})
		short.Points = append(short.Points, harness.Point{X: label, Y: sms})
	}
	return []harness.Series{trad, short}, nil
}

// fig2One measures one (slots, buckets) configuration and returns total
// milliseconds for traditional and shortcut variants.
func fig2One(slots, buckets, accesses int, seed uint64) (tradMS, shortMS float64, err error) {
	p, refs, err := leafSet(buckets)
	if err != nil {
		return 0, 0, err
	}
	defer p.Close()
	stampLeaves(p, refs)

	fanIn := slots / buckets
	if fanIn < 1 {
		fanIn = 1
	}

	tradNode := core.NewTraditional(p, slots)
	for i := 0; i < slots; i++ {
		tradNode.Set(i, refs[i/fanIn%buckets])
	}
	sc, err := core.NewShortcut(p, slots)
	if err != nil {
		return 0, 0, err
	}
	defer sc.Close()
	if _, err := sc.SetFromTraditional(tradNode, true); err != nil {
		return 0, 0, err
	}

	wpp := wordsPerPage()
	// Traditional: resolve the pointer, then read the leaf.
	start := time.Now()
	workload.SlotStream(seed, slots, accesses, func(slot int) {
		leaf := tradNode.LeafAddr(slot)
		sink += readWord(leaf + uintptr((slot&(wpp-1))*8))
	})
	tradMS = float64(time.Since(start).Microseconds()) / 1000

	// Shortcut: one access straight into the rewired virtual page.
	base := sc.Base()
	ps := uintptr(sys.PageSize())
	start = time.Now()
	workload.SlotStream(seed, slots, accesses, func(slot int) {
		sink += readWord(base + uintptr(slot)*ps + uintptr((slot&(wpp-1))*8))
	})
	shortMS = float64(time.Since(start).Microseconds()) / 1000
	return tradMS, shortMS, nil
}

package experiments

import (
	"fmt"
	"time"

	"vmshortcut/internal/core"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/sys"
	"vmshortcut/internal/vmsim"
	"vmshortcut/internal/workload"
)

// Fig4Config parameterizes the Figure 4 reproduction: the impact of
// fan-in (number of inner-node slots referencing the same leaf) on lookup
// performance, traditional vs shortcut. The paper finds the traditional
// variant wins for fan-ins above ~16 because the shortcut's k-page virtual
// footprint thrashes the TLB, while for low fan-ins the shortcut wins.
type Fig4Config struct {
	// Slots of the inner node. Paper: 2^22. Default 2^18.
	Slots int
	// Accesses per fan-in. Paper: 10^7.
	Accesses int
	// FanIns to sweep. Default: the paper's 512 … 1.
	FanIns []int
	Seed   uint64
	// Sim overrides the simulated machine for the vmsim variant.
	Sim vmsim.Config
}

func (c *Fig4Config) fill() {
	if c.Slots <= 0 {
		c.Slots = 1 << 18
	}
	if c.Accesses <= 0 {
		c.Accesses = 1_000_000
	}
	if len(c.FanIns) == 0 {
		c.FanIns = []int{512, 256, 128, 64, 32, 16, 8, 4, 2, 1}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Fig4 runs the real-backend fan-in sweep, returning total milliseconds
// per fan-in for both variants.
func Fig4(cfg Fig4Config) ([]harness.Series, error) {
	cfg.fill()
	trad := harness.Series{Label: "Traditional"}
	short := harness.Series{Label: "Shortcut"}
	for _, fanIn := range cfg.FanIns {
		if fanIn > cfg.Slots {
			continue
		}
		tms, sms, err := fig4One(cfg, fanIn)
		if err != nil {
			if fanIn > 1 {
				// Neighbouring virtual pages mapping the SAME physical
				// page cannot be merged into one kernel VMA, so a
				// fan-in > 1 shortcut needs one VMA per slot.
				return nil, fmt.Errorf(
					"fig4 fan-in %d: %w (a %d-slot shortcut at fan-in > 1 needs %d kernel VMAs; raise vm.max_map_count or lower -slots)",
					fanIn, err, cfg.Slots, cfg.Slots)
			}
			return nil, fmt.Errorf("fig4 fan-in %d: %w", fanIn, err)
		}
		x := fmt.Sprintf("%d", fanIn)
		trad.Points = append(trad.Points, harness.Point{X: x, Y: tms})
		short.Points = append(short.Points, harness.Point{X: x, Y: sms})
	}
	return []harness.Series{trad, short}, nil
}

func fig4One(cfg Fig4Config, fanIn int) (tradMS, shortMS float64, err error) {
	leaves := cfg.Slots / fanIn
	p, refs, err := leafSet(leaves)
	if err != nil {
		return 0, 0, err
	}
	defer p.Close()
	stampLeaves(p, refs)

	node := core.NewTraditional(p, cfg.Slots)
	for i := 0; i < cfg.Slots; i++ {
		node.Set(i, refs[i/fanIn])
	}
	sc, err := core.NewShortcut(p, cfg.Slots)
	if err != nil {
		return 0, 0, err
	}
	defer sc.Close()
	if _, err := sc.SetFromTraditional(node, true); err != nil {
		return 0, 0, err
	}

	wpp := wordsPerPage()
	start := time.Now()
	workload.SlotStream(cfg.Seed, cfg.Slots, cfg.Accesses, func(slot int) {
		sink += readWord(node.LeafAddr(slot) + uintptr((slot&(wpp-1))*8))
	})
	tradMS = us(time.Since(start)) / 1000

	base := sc.Base()
	ps := uintptr(sys.PageSize())
	start = time.Now()
	workload.SlotStream(cfg.Seed, cfg.Slots, cfg.Accesses, func(slot int) {
		sink += readWord(base + uintptr(slot)*ps + uintptr((slot&(wpp-1))*8))
	})
	shortMS = us(time.Since(start)) / 1000
	return tradMS, shortMS, nil
}

// Package experiments implements one driver per table and figure of the
// paper's evaluation, plus the ablations DESIGN.md calls out. Every driver
// is callable from both cmd/shortcutbench and the root benchmark suite,
// and returns its results as harness tables/series so the caller decides
// how to render them.
//
// Hardware-bound experiments (Table 1, Figures 2, 4, 5) come in two
// variants: a real-backend run (actual mmap/memfd rewiring, wall-clock
// time) and a vmsim run (deterministic simulated nanoseconds). The paper's
// shapes should hold in both; EXPERIMENTS.md records the comparison.
package experiments

import (
	"fmt"
	"unsafe"

	"vmshortcut/internal/pool"
	"vmshortcut/internal/sys"
)

// readWord reads one uint64 at addr — the "access a leaf" primitive of the
// microbenchmarks. It compiles to a single load.
func readWord(addr uintptr) uint64 {
	return *(*uint64)(sys.AddrToPointer(addr))
}

// sink prevents the compiler from eliding measured loads.
var sink uint64

// Sink exposes the accumulated sink so callers can keep it alive.
func Sink() uint64 { return sink }

// leafSet allocates n contiguous leaf pages from a fresh pool sized for
// the experiment and returns the pool and the page refs.
func leafSet(nPages int) (*pool.Pool, []pool.Ref, error) {
	p, err := pool.New(pool.Config{
		GrowChunkPages: 1 << 12,
		MaxPages:       nPages + (1 << 13),
	})
	if err != nil {
		return nil, nil, err
	}
	run, err := p.AllocContiguous(nPages)
	if err != nil {
		p.Close()
		return nil, nil, fmt.Errorf("allocating %d leaves: %w", nPages, err)
	}
	ps := sys.PageSize()
	refs := make([]pool.Ref, nPages)
	for i := range refs {
		refs[i] = run + pool.Ref(i*ps)
	}
	return p, refs, nil
}

// stampLeaves writes a recognizable word into each leaf page so reads can
// be verified cheaply.
func stampLeaves(p *pool.Pool, refs []pool.Ref) {
	for i, r := range refs {
		w := sys.Words(p.Addr(r), 8)
		w[0] = uint64(i) + 1
	}
}

// wordsPerPage is the number of uint64 words in one page.
func wordsPerPage() int { return sys.PageSize() / int(unsafe.Sizeof(uint64(0))) }

package experiments

import (
	"fmt"

	"vmshortcut/internal/harness"
	"vmshortcut/internal/vmsim"
	"vmshortcut/internal/workload"
)

// The vmsim variants rebuild the microbenchmarks on the simulated MMU.
// Virtual layout used throughout (page size 4 KB):
//
//	0x0000_0000_0000  inner-node pointer array (traditional)
//	0x1000_0000_0000  leaf pages (traditional's targets, and pool window)
//	0x2000_0000_0000  shortcut virtual area (one page per slot)
//
// Physical layout: leaves at ppn 0..m; the pointer array occupies its own
// physical pages; page-table nodes live in their own high region (see
// vmsim.pageTable).
const (
	simTradBase  = uint64(0x0000_0000_0000)
	simLeafBase  = uint64(0x1000_0000_0000)
	simShortBase = uint64(0x2000_0000_0000)
	simPageBits  = 12
	simPage      = uint64(1) << simPageBits
)

// simSetup maps, on m, a traditional inner node with `slots` pointer slots
// targeting `leaves` leaf pages (fan-in = slots/leaves) plus the
// equivalent shortcut area. Returns the leaf vaddr of each slot for the
// traditional traversal.
func simSetup(m *vmsim.MMU, slots, leaves int) {
	// Pointer array: slots * 8 bytes.
	arrayPages := (slots*8 + int(simPage) - 1) / int(simPage)
	for p := 0; p < arrayPages; p++ {
		m.Map(simTradBase/simPage+uint64(p), uint64(0x100000+p))
	}
	// Leaf pages: ppn 0..leaves.
	for l := 0; l < leaves; l++ {
		m.Map(simLeafBase/simPage+uint64(l), uint64(l))
	}
	// Shortcut: slot i aliases the physical page of leaf i/fanIn.
	fanIn := slots / leaves
	if fanIn < 1 {
		fanIn = 1
	}
	for s := 0; s < slots; s++ {
		m.Map(simShortBase/simPage+uint64(s), uint64(s/fanIn%leaves))
	}
}

// simOffset derives a per-slot in-page offset. The multiplicative mix
// decorrelates the offset from the slot number so page-aligned accesses do
// not stride pathologically through the set-associative cache model (real
// benchmarks touch varying bucket slots for the same reason).
func simOffset(slot int) uint64 {
	return (uint64(slot) * 0x9E3779B97F4A7C15 >> 32) & (simPage - 8) &^ 7
}

// simTraditionalAccess simulates one lookup through the traditional node:
// read the pointer slot, then read the leaf.
func simTraditionalAccess(m *vmsim.MMU, slot int, leaves, fanIn int) {
	m.MustAccess(simTradBase + uint64(slot)*8)
	leaf := uint64(slot/fanIn) % uint64(leaves)
	m.MustAccess(simLeafBase + leaf*simPage + simOffset(slot))
}

// simShortcutAccess simulates one lookup through the shortcut: a single
// access into the aliased virtual page.
func simShortcutAccess(m *vmsim.MMU, slot int) {
	m.MustAccess(simShortBase + uint64(slot)*simPage + simOffset(slot))
}

// Fig2Sim reproduces Figure 2 on the simulator: total simulated
// milliseconds for the access stream per configuration.
func Fig2Sim(cfg Fig2Config) ([]harness.Series, error) {
	cfg.fill()
	trad := harness.Series{Label: "Traditional (sim)"}
	short := harness.Series{Label: "Shortcut (sim)"}
	for _, pt := range fig2Points {
		slots := cfg.Scale.N(pt.dirMB << 20 / 8)
		leaves := cfg.Scale.N(pt.bucketMB << 20 / int(simPage))
		if leaves > slots {
			leaves = slots
		}
		fanIn := slots / leaves
		if fanIn < 1 {
			fanIn = 1
		}
		label := fmt.Sprintf("%d,%d", pt.dirMB, pt.bucketMB)

		m := vmsim.New(cfg.Sim)
		simSetup(m, slots, leaves)
		m.ResetTime()
		workload.SlotStream(cfg.Seed, slots, cfg.Accesses, func(slot int) {
			simTraditionalAccess(m, slot, leaves, fanIn)
		})
		trad.Points = append(trad.Points, harness.Point{X: label, Y: m.Time() / 1e6})

		m2 := vmsim.New(cfg.Sim)
		simSetup(m2, slots, leaves)
		m2.ResetTime()
		workload.SlotStream(cfg.Seed, slots, cfg.Accesses, func(slot int) {
			simShortcutAccess(m2, slot)
		})
		short.Points = append(short.Points, harness.Point{X: label, Y: m2.Time() / 1e6})
	}
	return []harness.Series{trad, short}, nil
}

// Fig4Sim reproduces the fan-in sweep of Figure 4 on the simulator. The
// crossover — traditional faster at high fan-in, shortcut faster at low —
// emerges from TLB reach: the shortcut always touches `slots` virtual
// pages while the traditional variant touches slots*8 bytes plus only
// `leaves` pages.
func Fig4Sim(cfg Fig4Config) ([]harness.Series, error) {
	cfg.fill()
	trad := harness.Series{Label: "Traditional (sim)"}
	short := harness.Series{Label: "Shortcut (sim)"}
	for _, fanIn := range cfg.FanIns {
		if fanIn > cfg.Slots {
			continue
		}
		leaves := cfg.Slots / fanIn
		x := fmt.Sprintf("%d", fanIn)

		m := vmsim.New(cfg.Sim)
		simSetup(m, cfg.Slots, leaves)
		m.ResetTime()
		workload.SlotStream(cfg.Seed, cfg.Slots, cfg.Accesses, func(slot int) {
			simTraditionalAccess(m, slot, leaves, fanIn)
		})
		trad.Points = append(trad.Points, harness.Point{X: x, Y: m.Time() / 1e6})

		m2 := vmsim.New(cfg.Sim)
		simSetup(m2, cfg.Slots, leaves)
		m2.ResetTime()
		workload.SlotStream(cfg.Seed, cfg.Slots, cfg.Accesses, func(slot int) {
			simShortcutAccess(m2, slot)
		})
		short.Points = append(short.Points, harness.Point{X: x, Y: m2.Time() / 1e6})
	}
	return []harness.Series{trad, short}, nil
}

// Table1Sim reproduces Table 1 on the simulator. Construction costs use
// the configured remap/populate latencies; access costs come from the
// TLB/cache model, with lazy population paying soft page faults on first
// touch.
func Table1Sim(cfg Table1Config) ([]Table1Row, error) {
	cfg.fill()
	var rows []Table1Row
	n := float64(cfg.Slots)

	// Traditional: pointer writes are one memory reference each; leaves
	// are premapped (the pool pre-faults them).
	{
		m := vmsim.New(cfg.Sim)
		simSetup(m, cfg.Slots, cfg.Slots)
		row := Table1Row{Variant: "Traditional (sim)"}
		m.ResetTime()
		for s := 0; s < cfg.Slots; s++ {
			m.MustAccess(simTradBase + uint64(s)*8) // store the pointer
		}
		row.SetPerPage = m.Time() / 1000 / n
		row.Access1 = simAccessPass(m, cfg, func(slot int) {
			simTraditionalAccess(m, slot, cfg.Slots, 1)
		})
		row.Access2 = simAccessPass(m, cfg, func(slot int) {
			simTraditionalAccess(m, slot, cfg.Slots, 1)
		})
		rows = append(rows, row)
	}

	for _, eager := range []bool{false, true} {
		m := vmsim.New(cfg.Sim)
		m.AutoFault = true
		// Leaves exist physically; the shortcut region is NOT premapped —
		// each Set is one remap; population is lazy or eager.
		variant := "Shortcut lazy (sim)"
		if eager {
			variant = "Shortcut eager (sim)"
		}
		row := Table1Row{Variant: variant}
		m.ResetTime()
		for s := 0; s < cfg.Slots; s++ {
			m.RemapCost(simShortBase/simPage+uint64(s), uint64(s), 1)
		}
		row.SetPerPage = m.Time() / 1000 / n

		if eager {
			m.ResetTime()
			m.Populate(simShortBase/simPage, cfg.Slots)
			row.PopPerPage = m.Time() / 1000 / n
		} else {
			// Lazy: drop the PTEs installed by RemapCost so first access
			// faults, mirroring mmap's PTE drop (paper §2.1 Details).
			for s := 0; s < cfg.Slots; s++ {
				m.Unmap(simShortBase/simPage + uint64(s))
			}
		}
		row.Access1 = simAccessPass(m, cfg, func(slot int) { simShortcutAccess(m, slot) })
		row.Access2 = simAccessPass(m, cfg, func(slot int) { simShortcutAccess(m, slot) })
		rows = append(rows, row)
	}
	return rows, nil
}

func simAccessPass(m *vmsim.MMU, cfg Table1Config, fn func(slot int)) float64 {
	m.ResetTime()
	workload.SlotStream(cfg.Seed, cfg.Slots, cfg.Accesses, func(slot int) { fn(slot) })
	return m.Time() / float64(cfg.Accesses)
}

// Fig5Sim reproduces the shootdown experiment on the simulated machine:
// the shooter's per-remap cost grows with the number of active reader
// cores (IPIs), while a reader's per-page cost stays flat.
func Fig5Sim(cfg Fig5Config) ([]Fig5Result, error) {
	cfg.fill()
	var out []Fig5Result
	for _, readers := range cfg.ReaderCounts {
		ma := vmsim.NewMachine(cfg.Sim, readers+1)
		ma.MapShared(0, 0, cfg.RegionPages)

		active := make([]int, readers)
		for i := range active {
			active[i] = i + 1
		}

		// Shooter on core 0; readers sweep sequentially. The simulation
		// interleaves one remap per reader sweep step at the paper's
		// remap:read ratio.
		res := Fig5Result{Readers: readers}
		shooter := ma.Core(0)
		rng := workload.NewRNG(cfg.Seed)
		shooter.ResetTime()
		for i := 0; i < cfg.Remaps; i++ {
			vpn := uint64(rng.Intn(cfg.RegionPages))
			ma.Remap(0, vpn, uint64(1<<20+i), 1, active)
		}
		res.RemapUS = shooter.Time() / 1000 / float64(cfg.Remaps)

		if readers > 0 {
			// One representative reader does a full sequential pass while
			// the shooter intersperses remaps (same ratio as above).
			rd := ma.Core(1)
			rng2 := workload.NewRNG(cfg.Seed ^ 1)
			remapEvery := cfg.RegionPages / cfg.Remaps
			if remapEvery < 1 {
				remapEvery = 1
			}
			rd.ResetTime()
			pages := 0
			for p := 0; p < cfg.RegionPages; p++ {
				rd.MustAccess(uint64(p) << simPageBits)
				pages++
				if p%remapEvery == 0 {
					ma.Remap(0, uint64(rng2.Intn(cfg.RegionPages)), uint64(1<<21+p), 1, active)
				}
			}
			res.ReadWithShootUS = rd.Time() / 1000 / float64(pages)
			res.PagesReadPerRead = int64(pages)

			// Quiet pass.
			rd.ResetTime()
			for p := 0; p < cfg.RegionPages; p++ {
				rd.MustAccess(uint64(p) << simPageBits)
			}
			res.ReadQuietUS = rd.Time() / 1000 / float64(cfg.RegionPages)
		}
		out = append(out, res)
	}
	return out, nil
}

package experiments

import (
	"fmt"
	"runtime"
	"time"

	"vmshortcut"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/workload"
)

// ShardScaleConfig parameterizes the shard-scaling experiment: concurrent
// writers and readers driving batched operations against the sharded
// Shortcut-EH store at increasing shard counts. It is not a paper figure —
// the paper's prototype is single-writer — but the scaling curve answers
// the production question the ROADMAP poses: does hash-partitioning the
// keyspace buy mutation throughput on multi-core hardware?
type ShardScaleConfig struct {
	// Entries inserted (and then looked up) per shard count. Default 1M.
	Entries int
	// Shards lists the shard counts to sweep. Default {1, 2, 4, ...} up
	// to GOMAXPROCS. Shard count 1 is the WithConcurrency single-lock
	// baseline every other row is normalized against.
	Shards []int
	// Procs lists GOMAXPROCS settings to sweep; each value is crossed
	// with every shard count, the same procs×shards grid cmd/ehbench
	// sweeps at the service level. 0 keeps the runtime's current
	// setting. Default {0} — a plain shard sweep.
	Procs []int
	// Workers is the number of driving goroutines. Default GOMAXPROCS.
	// Fixed once for the whole sweep, so rows differ only in the axis
	// under test, not in offered load.
	Workers int
	// Batch is the InsertBatch/LookupBatch chunk size per worker.
	// Default 1024.
	Batch int
	Seed  uint64
}

func (c *ShardScaleConfig) fill() {
	if c.Entries <= 0 {
		c.Entries = 1_000_000
	}
	if len(c.Shards) == 0 {
		maxProcs := runtime.GOMAXPROCS(0)
		for n := 1; n <= maxProcs; n *= 2 {
			c.Shards = append(c.Shards, n)
		}
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{0}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Batch <= 0 {
		c.Batch = 1024
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// ShardScaleRow is one (procs, shards) cell's measurement.
type ShardScaleRow struct {
	Procs     int // effective GOMAXPROCS the cell ran under
	Shards    int
	InsertMPS float64 // million inserts per second, all workers combined
	LookupMPS float64 // million lookups per second, all workers combined
}

// ShardScale sweeps the procs×shards grid and measures multi-goroutine
// batched insert and lookup throughput on the sharded Shortcut-EH store.
// GOMAXPROCS is restored to its entry value before returning.
func ShardScale(cfg ShardScaleConfig) ([]ShardScaleRow, error) {
	cfg.fill()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	rows := make([]ShardScaleRow, 0, len(cfg.Procs)*len(cfg.Shards))
	for _, procs := range cfg.Procs {
		effective := procs
		if procs > 0 {
			runtime.GOMAXPROCS(procs)
		} else {
			runtime.GOMAXPROCS(prev)
			effective = prev
		}
		for _, shards := range cfg.Shards {
			row, err := shardScaleOne(cfg, shards)
			if err != nil {
				return nil, fmt.Errorf("procs=%d shards=%d: %w", effective, shards, err)
			}
			row.Procs = effective
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func shardScaleOne(cfg ShardScaleConfig, shards int) (ShardScaleRow, error) {
	s, err := vmshortcut.Open(vmshortcut.KindShortcutEH,
		vmshortcut.WithShards(shards),
		vmshortcut.WithConcurrency(true), // shards=1 → today's single global lock
		vmshortcut.WithCapacity(cfg.Entries),
		vmshortcut.WithPollInterval(time.Millisecond),
	)
	if err != nil {
		return ShardScaleRow{}, err
	}
	defer s.Close()

	errs := make([]error, cfg.Workers)
	start := time.Now()
	harness.ParallelChunks(cfg.Entries, cfg.Workers, func(w, lo, hi int) {
		keys := make([]uint64, cfg.Batch)
		vals := make([]uint64, cfg.Batch)
		harness.Chunks(hi-lo, cfg.Batch, func(clo, chi int) {
			if errs[w] != nil {
				return
			}
			k, v := keys[:chi-clo], vals[:chi-clo]
			for i := range k {
				k[i] = workload.Key(cfg.Seed, uint64(lo+clo+i))
				v[i] = uint64(lo + clo + i)
			}
			errs[w] = s.InsertBatch(k, v)
		})
	})
	insertDur := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ShardScaleRow{}, err
		}
	}
	if !s.WaitSync(time.Minute) {
		return ShardScaleRow{}, fmt.Errorf("shortcut directories never synced")
	}

	missesBy := make([]int, cfg.Workers) // per-worker slot: no shared counter
	start = time.Now()
	harness.ParallelChunks(cfg.Entries, cfg.Workers, func(w, lo, hi int) {
		keys := make([]uint64, cfg.Batch)
		out := make([]uint64, cfg.Batch)
		harness.Chunks(hi-lo, cfg.Batch, func(clo, chi int) {
			k := keys[:chi-clo]
			for i := range k {
				k[i] = workload.Key(cfg.Seed, uint64(lo+clo+i))
			}
			for _, ok := range s.LookupBatch(k, out[:len(k)]) {
				if !ok {
					missesBy[w]++
				}
			}
		})
	})
	lookupDur := time.Since(start)
	misses := 0
	for _, m := range missesBy {
		misses += m
	}
	if misses > 0 {
		return ShardScaleRow{}, fmt.Errorf("%d unexpected misses", misses)
	}

	return ShardScaleRow{
		Shards:    shards,
		InsertMPS: float64(cfg.Entries) / insertDur.Seconds() / 1e6,
		LookupMPS: float64(cfg.Entries) / lookupDur.Seconds() / 1e6,
	}, nil
}

// ShardScaleRender formats the sweep with each row's speedup over the
// first row — the shards=1 single-lock baseline at the first procs
// setting. The procs column appears only when the sweep varied it.
func ShardScaleRender(rows []ShardScaleRow) *harness.Table {
	tbl := harness.NewTable("Shard scaling: parallel batched ops vs the single-lock store")
	multiProcs := false
	for _, r := range rows {
		if r.Procs != rows[0].Procs {
			multiProcs = true
		}
	}
	var baseIns, baseLk float64
	for i, r := range rows {
		if i == 0 {
			baseIns, baseLk = r.InsertMPS, r.LookupMPS
		}
		cells := make([]string, 0, 14)
		if multiProcs {
			cells = append(cells, "procs", fmt.Sprintf("%d", r.Procs))
		}
		cells = append(cells,
			"shards", fmt.Sprintf("%d", r.Shards),
			"insert M/s", fmt.Sprintf("%.2f", r.InsertMPS),
			"insert speedup", harness.Ratio(r.InsertMPS, baseIns),
			"lookup M/s", fmt.Sprintf("%.2f", r.LookupMPS),
			"lookup speedup", harness.Ratio(r.LookupMPS, baseLk),
		)
		tbl.AddRow(cells...)
	}
	return tbl
}

package experiments

import (
	"errors"
	"fmt"
	"time"

	"vmshortcut/internal/harness"
	"vmshortcut/internal/sys"
	"vmshortcut/internal/workload"
)

// AblationHugePagesReal runs the huge-page future-work experiment on real
// hardware: the same physically contiguous region (a fan-in-1 shortcut is
// exactly a linear mapping) is mapped once with 4 KB pages and once with
// 2 MB pages from the kernel's hugetlb pool, then random-read. The 2 MB
// variant multiplies TLB reach by 512 and removes one level from every
// page walk.
//
// Requires vm.nr_hugepages ≥ regionBytes / 2 MB; returns
// sys.ErrNoHugePages otherwise.
func AblationHugePagesReal(regionBytes int, accesses int, seed uint64) (*harness.Table, error) {
	if regionBytes <= 0 {
		regionBytes = 128 << 20
	}
	regionBytes = (regionBytes / sys.HugePageSize) * sys.HugePageSize
	if regionBytes == 0 {
		regionBytes = sys.HugePageSize
	}
	if accesses <= 0 {
		accesses = 2_000_000
	}

	// 2 MB-page variant: hugetlb-backed main-memory file.
	hfd, err := sys.MemfdCreateHuge("huge-ablation")
	if err != nil {
		return nil, err
	}
	defer sys.CloseFD(hfd)
	if err := sys.Ftruncate(hfd, int64(regionBytes)); err != nil {
		return nil, err
	}
	hugeBase, err := sys.MapSharedHuge(regionBytes, hfd, 0)
	if err != nil {
		return nil, err
	}
	defer sys.Unmap(hugeBase, regionBytes)

	// 4 KB-page variant: ordinary main-memory file of the same size.
	sfd, err := sys.MemfdCreate("small-ablation")
	if err != nil {
		return nil, err
	}
	defer sys.CloseFD(sfd)
	if err := sys.Ftruncate(sfd, int64(regionBytes)); err != nil {
		return nil, err
	}
	smallBase, err := sys.MapSharedNew(regionBytes, sfd, 0, true)
	if err != nil {
		return nil, err
	}
	defer sys.Unmap(smallBase, regionBytes)

	words := regionBytes / 8
	sys.Words(hugeBase, words)[words-1] = 1 // touch the extents
	sys.Words(smallBase, words)[words-1] = 1

	run := func(base uintptr) float64 {
		r := workload.NewRNG(seed)
		// Warm pass, then measured pass.
		for pass := 0; pass < 2; pass++ {
			start := time.Now()
			for i := 0; i < accesses; i++ {
				off := uintptr(r.Next()%uint64(regionBytes)) &^ 7
				sink += readWord(base + off)
			}
			if pass == 1 {
				return float64(time.Since(start).Nanoseconds()) / float64(accesses)
			}
			r = workload.NewRNG(seed)
		}
		return 0
	}
	smallNS := run(smallBase)
	hugeNS := run(hugeBase)

	t := harness.NewTable(fmt.Sprintf(
		"Ablation (real): 2 MB-page vs 4 KB-page region, %d MB, %d random reads",
		regionBytes>>20, accesses))
	t.AddRow(
		"mapping", "4 KB pages",
		"pages", fmt.Sprintf("%d", regionBytes/sys.PageSize()),
		"per access [ns]", fmt.Sprintf("%.1f", smallNS),
	)
	t.AddRow(
		"mapping", "2 MB pages",
		"pages", fmt.Sprintf("%d", regionBytes/sys.HugePageSize),
		"per access [ns]", fmt.Sprintf("%.1f", hugeNS),
	)
	t.AddRow(
		"mapping", "speedup",
		"pages", "-",
		"per access [ns]", harness.Ratio(smallNS, hugeNS),
	)
	return t, nil
}

// HugePagesAvailable reports whether the hugetlb pool can currently back
// at least one 2 MB mapping.
func HugePagesAvailable() bool {
	fd, err := sys.MemfdCreateHuge("huge-probe")
	if err != nil {
		return false
	}
	defer sys.CloseFD(fd)
	if err := sys.Ftruncate(fd, sys.HugePageSize); err != nil {
		return false
	}
	addr, err := sys.MapSharedHuge(sys.HugePageSize, fd, 0)
	if errors.Is(err, sys.ErrNoHugePages) || err != nil {
		return false
	}
	sys.Unmap(addr, sys.HugePageSize)
	return true
}

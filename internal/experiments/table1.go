package experiments

import (
	"fmt"
	"time"

	"vmshortcut/internal/core"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/sys"
	"vmshortcut/internal/vmsim"
	"vmshortcut/internal/workload"
)

// Table1Config parameterizes the Table 1 reproduction: the normalized cost
// of creating and then randomly accessing a wide inner node, comparing the
// traditional pointer array against shortcut nodes with lazy and eager
// page-table population.
type Table1Config struct {
	// Slots of the inner node. Paper: 2^22 (16 GB of leaves!). Default
	// 2^18 (1 GB of leaves).
	Slots int
	// Accesses in phases (4) and (5). Paper: 10^7.
	Accesses int
	Seed     uint64
	// Sim overrides the simulated machine for the vmsim variant.
	Sim vmsim.Config
}

func (c *Table1Config) fill() {
	if c.Slots <= 0 {
		c.Slots = 1 << 18
	}
	if c.Accesses <= 0 {
		c.Accesses = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Table1Row holds one variant's normalized phase costs: per-page
// microseconds for the construction phases and per-access nanoseconds for
// the access phases.
type Table1Row struct {
	Variant      string
	AllocPerPage float64 // µs
	SetPerPage   float64 // µs per indirection
	PopPerPage   float64 // µs (eager only)
	Access1      float64 // ns per access, first pass
	Access2      float64 // ns per access, second pass
}

// Table1 runs the real-backend Table 1 benchmark.
func Table1(cfg Table1Config) ([]Table1Row, error) {
	cfg.fill()
	var rows []Table1Row

	trad, err := table1Traditional(cfg)
	if err != nil {
		return nil, fmt.Errorf("table1 traditional: %w", err)
	}
	rows = append(rows, trad)

	lazy, err := table1Shortcut(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("table1 shortcut lazy: %w", err)
	}
	rows = append(rows, lazy)

	eager, err := table1Shortcut(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("table1 shortcut eager: %w", err)
	}
	rows = append(rows, eager)
	return rows, nil
}

func table1Traditional(cfg Table1Config) (Table1Row, error) {
	p, refs, err := leafSet(cfg.Slots)
	if err != nil {
		return Table1Row{}, err
	}
	defer p.Close()
	stampLeaves(p, refs)

	row := Table1Row{Variant: "Traditional"}
	n := float64(cfg.Slots)

	// (1) allocate: the pointer array.
	start := time.Now()
	node := core.NewTraditional(p, cfg.Slots)
	row.AllocPerPage = us(time.Since(start)) / n

	// (2) set n indirections: plain pointer stores.
	start = time.Now()
	for i := 0; i < cfg.Slots; i++ {
		node.Set(i, refs[i])
	}
	row.SetPerPage = us(time.Since(start)) / n

	// (4) + (5) random accesses.
	row.Access1 = table1AccessPass(cfg, func(slot int, off uintptr) {
		sink += readWord(node.LeafAddr(slot) + off)
	})
	row.Access2 = table1AccessPass(cfg, func(slot int, off uintptr) {
		sink += readWord(node.LeafAddr(slot) + off)
	})
	return row, nil
}

func table1Shortcut(cfg Table1Config, eager bool) (Table1Row, error) {
	p, refs, err := leafSet(cfg.Slots)
	if err != nil {
		return Table1Row{}, err
	}
	defer p.Close()
	stampLeaves(p, refs)

	variant := "Shortcut (lazy)"
	if eager {
		variant = "Shortcut (eager)"
	}
	row := Table1Row{Variant: variant}
	n := float64(cfg.Slots)

	// (1) allocate: one anonymous reservation.
	start := time.Now()
	sc, err := core.NewShortcut(p, cfg.Slots)
	if err != nil {
		return Table1Row{}, err
	}
	defer sc.Close()
	row.AllocPerPage = us(time.Since(start)) / n

	// (2) set n indirections: one mmap per slot — the paper's measured
	// worst case of individual calls (coalescing is the ablation).
	start = time.Now()
	for i := 0; i < cfg.Slots; i++ {
		if err := sc.Set(i, refs[i], false); err != nil {
			return Table1Row{}, err
		}
	}
	row.SetPerPage = us(time.Since(start)) / n

	// (3) optional eager population.
	if eager {
		start = time.Now()
		if err := sc.Populate(); err != nil {
			return Table1Row{}, err
		}
		row.PopPerPage = us(time.Since(start)) / n
	}

	// (4) + (5) random accesses straight through the shortcut.
	base := sc.Base()
	ps := uintptr(sys.PageSize())
	row.Access1 = table1AccessPass(cfg, func(slot int, off uintptr) {
		sink += readWord(base + uintptr(slot)*ps + off)
	})
	row.Access2 = table1AccessPass(cfg, func(slot int, off uintptr) {
		sink += readWord(base + uintptr(slot)*ps + off)
	})
	return row, nil
}

// table1AccessPass streams random slot accesses through fn and returns
// nanoseconds per access.
func table1AccessPass(cfg Table1Config, fn func(slot int, off uintptr)) float64 {
	wpp := wordsPerPage()
	start := time.Now()
	workload.SlotStream(cfg.Seed, cfg.Slots, cfg.Accesses, func(slot int) {
		fn(slot, uintptr((slot&(wpp-1))*8))
	})
	return float64(time.Since(start).Nanoseconds()) / float64(cfg.Accesses)
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }

// Table1Render converts rows into a harness table formatted like the
// paper's Table 1.
func Table1Render(rows []Table1Row) *harness.Table {
	t := harness.NewTable("Table 1: cost of creating and accessing a wide inner node (normalized)")
	for _, r := range rows {
		pop := "-"
		if r.PopPerPage > 0 {
			pop = fmt.Sprintf("%.3f", r.PopPerPage)
		}
		t.AddRow(
			"variant", r.Variant,
			"alloc [us/page]", fmt.Sprintf("%.4f", r.AllocPerPage),
			"set-indir [us/page]", fmt.Sprintf("%.3f", r.SetPerPage),
			"populate [us/page]", pop,
			"1st access [ns]", fmt.Sprintf("%.1f", r.Access1),
			"2nd access [ns]", fmt.Sprintf("%.1f", r.Access2),
		)
	}
	return t
}

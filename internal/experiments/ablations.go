package experiments

import (
	"fmt"
	"time"

	"vmshortcut"
	"vmshortcut/internal/core"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/vmsim"
	"vmshortcut/internal/workload"
)

// AblationCoalesce quantifies the paper's §2.1 remark that neighbouring
// virtual pages mapping to neighbouring physical pages can be rewired in a
// single mmap call: it builds the same shortcut per-slot and coalesced and
// reports calls and time.
func AblationCoalesce(slots int) (*harness.Table, error) {
	if slots <= 0 {
		slots = 1 << 14
	}
	p, refs, err := leafSet(slots)
	if err != nil {
		return nil, err
	}
	defer p.Close()

	t := harness.NewTable("Ablation: per-slot vs coalesced shortcut construction")

	scA, err := core.NewShortcut(p, slots)
	if err != nil {
		return nil, err
	}
	defer scA.Close()
	start := time.Now()
	for i, r := range refs {
		if err := scA.Set(i, r, true); err != nil {
			return nil, err
		}
	}
	perSlot := time.Since(start)
	t.AddRow(
		"strategy", "per-slot mmap",
		"mmap calls", fmt.Sprintf("%d", scA.Remaps),
		"total [ms]", fmt.Sprintf("%.2f", us(perSlot)/1000),
		"per slot [us]", fmt.Sprintf("%.3f", us(perSlot)/float64(slots)),
	)

	scB, err := core.NewShortcut(p, slots)
	if err != nil {
		return nil, err
	}
	defer scB.Close()
	start = time.Now()
	calls, err := scB.SetAll(refs, true)
	if err != nil {
		return nil, err
	}
	coalesced := time.Since(start)
	t.AddRow(
		"strategy", "coalesced mmap",
		"mmap calls", fmt.Sprintf("%d", calls),
		"total [ms]", fmt.Sprintf("%.2f", us(coalesced)/1000),
		"per slot [us]", fmt.Sprintf("%.3f", us(coalesced)/float64(slots)),
	)
	return t, nil
}

// AblationThreshold derives the optimal fan-in routing threshold from the
// Figure 4 data: for each fan-in it reports which access path is faster,
// locating the crossover the paper pins at 8–16.
func AblationThreshold(cfg Fig4Config) (*harness.Table, error) {
	series, err := Fig4(cfg)
	if err != nil {
		return nil, err
	}
	trad, short := series[0], series[1]
	t := harness.NewTable("Ablation: fan-in routing threshold (derived from Figure 4)")
	for i := range trad.Points {
		faster := "shortcut"
		if trad.Points[i].Y < short.Points[i].Y {
			faster = "traditional"
		}
		t.AddRow(
			"fan-in", trad.Points[i].X,
			"traditional [ms]", fmt.Sprintf("%.2f", trad.Points[i].Y),
			"shortcut [ms]", fmt.Sprintf("%.2f", short.Points[i].Y),
			"faster path", faster,
		)
	}
	return t, nil
}

// AblationPollInterval measures how the mapper's polling frequency trades
// insertion-side overhead against time-to-sync after an insert burst
// (paper §4.1 empirically picks 25ms).
func AblationPollInterval(entries int, intervals []time.Duration) (*harness.Table, error) {
	if entries <= 0 {
		entries = 500_000
	}
	if len(intervals) == 0 {
		intervals = []time.Duration{
			time.Millisecond, 5 * time.Millisecond,
			25 * time.Millisecond, 100 * time.Millisecond,
		}
	}
	t := harness.NewTable("Ablation: mapper poll interval")
	for _, iv := range intervals {
		tbl, err := vmshortcut.Open(vmshortcut.KindShortcutEH,
			vmshortcut.WithPollInterval(iv),
			vmshortcut.WithPoolConfig(poolConfigFor(entries)))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < entries; i++ {
			if err := tbl.Insert(workload.Key(7, uint64(i)), uint64(i)); err != nil {
				tbl.Close()
				return nil, err
			}
		}
		insertDur := time.Since(start)
		start = time.Now()
		synced := tbl.WaitSync(60 * time.Second)
		syncDur := time.Since(start)
		st := tbl.Stats()
		t.AddRow(
			"poll interval", iv.String(),
			"insert total [ms]", fmt.Sprintf("%.1f", us(insertDur)/1000),
			"time-to-sync after burst [ms]", fmt.Sprintf("%.1f", us(syncDur)/1000),
			"synced", fmt.Sprintf("%v", synced),
			"updates applied", fmt.Sprintf("%d", st.UpdatesApplied),
			"superseded", fmt.Sprintf("%d", st.UpdatesSuperseded),
			"creates", fmt.Sprintf("%d", st.CreatesApplied),
		)
		tbl.Close()
	}
	return t, nil
}

// AblationHugePagesSim explores the paper's future-work direction on the
// simulator: expressing a fan-in-1 shortcut with 2 MB pages multiplies TLB
// reach by 512 and shortens walks by one level. It compares per-access
// simulated cost of the traditional node, the 4 KB shortcut, and the 2 MB
// shortcut across working-set sizes.
func AblationHugePagesSim(accesses int, slotCounts []int) (*harness.Table, error) {
	if accesses <= 0 {
		accesses = 500_000
	}
	if len(slotCounts) == 0 {
		slotCounts = []int{1 << 14, 1 << 16, 1 << 18, 1 << 20}
	}
	t := harness.NewTable("Ablation (sim): 2 MB-page shortcuts at fan-in 1")
	for _, slots := range slotCounts {
		// Traditional and 4 KB shortcut.
		m4 := vmsim.New(vmsim.Config{})
		simSetup(m4, slots, slots)
		m4.ResetTime()
		workload.SlotStream(7, slots, accesses, func(slot int) {
			simTraditionalAccess(m4, slot, slots, 1)
		})
		tradNS := m4.Time() / float64(accesses)

		m4.ResetTime()
		workload.SlotStream(7, slots, accesses, func(slot int) {
			simShortcutAccess(m4, slot)
		})
		smallNS := m4.Time() / float64(accesses)

		// 2 MB shortcut: same virtual layout, mapped with huge frames
		// (valid because fan-in 1 over physically contiguous leaves).
		mh := vmsim.New(vmsim.Config{})
		hugeFrames := (slots + 511) / 512
		for h := 0; h < hugeFrames; h++ {
			mh.MapHuge(simShortBase>>21+uint64(h), uint64(h))
		}
		mh.ResetTime()
		workload.SlotStream(7, slots, accesses, func(slot int) {
			simShortcutAccess(mh, slot)
		})
		hugeNS := mh.Time() / float64(accesses)

		t.AddRow(
			"slots", fmt.Sprintf("%d", slots),
			"traditional [ns]", fmt.Sprintf("%.1f", tradNS),
			"shortcut 4K [ns]", fmt.Sprintf("%.1f", smallNS),
			"shortcut 2M [ns]", fmt.Sprintf("%.1f", hugeNS),
			"2M vs 4K", harness.Ratio(smallNS, hugeNS),
		)
	}
	return t, nil
}

// AblationSyncMaintenance compares asynchronous shortcut maintenance (the
// paper's design) against synchronous maintenance on the insert path and
// against a raw EH table with no shortcut at all — quantifying §3.1/§3.3's
// "hide the cost of creation". Each variant runs three times; the minimum
// is reported to suppress scheduler noise.
func AblationSyncMaintenance(entries int) (*harness.Table, error) {
	if entries <= 0 {
		entries = 500_000
	}
	t := harness.NewTable("Ablation: shortcut maintenance strategy (insert cost, best of 3)")
	run := func(open func() (vmshortcut.Store, error)) (time.Duration, error) {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			tbl, err := open()
			if err != nil {
				return 0, err
			}
			start := time.Now()
			for i := 0; i < entries; i++ {
				if err := tbl.Insert(workload.Key(9, uint64(i)), uint64(i)); err != nil {
					tbl.Close()
					return 0, err
				}
			}
			d := time.Since(start)
			tbl.Close()
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	poolOpt := vmshortcut.WithPoolConfig(poolConfigFor(entries))
	variants := []struct {
		name string
		open func() (vmshortcut.Store, error)
	}{
		{"async mapper (paper)", func() (vmshortcut.Store, error) {
			return vmshortcut.Open(vmshortcut.KindShortcutEH, poolOpt)
		}},
		{"synchronous maintenance", func() (vmshortcut.Store, error) {
			return vmshortcut.Open(vmshortcut.KindShortcutEH, poolOpt,
				vmshortcut.WithSynchronousMaintenance(true))
		}},
		{"raw EH (no shortcut, no mapper)", func() (vmshortcut.Store, error) {
			return vmshortcut.Open(vmshortcut.KindEH, poolOpt)
		}},
	}
	for _, v := range variants {
		dur, err := run(v.open)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			"variant", v.name,
			"insert total [ms]", fmt.Sprintf("%.1f", us(dur)/1000),
			"per insert [ns]", fmt.Sprintf("%.1f", float64(dur.Nanoseconds())/float64(entries)),
		)
	}
	return t, nil
}

package experiments

import (
	"fmt"
	"time"

	"vmshortcut"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/workload"
)

// Fig8Config parameterizes the mixed-workload synchronization experiment:
// bulk-load both EH and Shortcut-EH, then fire waves of accesses whose
// first 1% are insertions. The insertion bursts desync the shortcut
// directory; the experiment tracks per-batch lookup latency and both
// version numbers to show the shortcut catching up and the lookup time of
// Shortcut-EH dropping back below EH.
type Fig8Config struct {
	// BulkLoad entries inserted up front. Paper: 92M. Default 1M.
	BulkLoad int
	// Waves and their shape. Paper: 4 waves of 2M accesses, 1% inserts.
	Waves          int
	WaveAccesses   int     // default BulkLoad/46 ≈ paper's 2M:92M ratio
	InsertFraction float64 // default 0.01
	// Batch is the lookup-latency reporting granularity. Paper: 10k.
	Batch int
	Seed  uint64
	// PollInterval for the shortcut mapper. Default 25ms (paper).
	PollInterval time.Duration
}

func (c *Fig8Config) fill() {
	if c.BulkLoad <= 0 {
		c.BulkLoad = 1_000_000
	}
	if c.Waves <= 0 {
		c.Waves = 4
	}
	if c.WaveAccesses <= 0 {
		c.WaveAccesses = c.BulkLoad / 46
		if c.WaveAccesses < 100 {
			c.WaveAccesses = 100
		}
	}
	if c.InsertFraction <= 0 {
		c.InsertFraction = 0.01
	}
	if c.Batch <= 0 {
		c.Batch = c.WaveAccesses / 20
		if c.Batch < 1 {
			c.Batch = 1
		}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
}

// Fig8Point is one reporting batch.
type Fig8Point struct {
	Accesses    int     // accesses performed so far
	EHBatchUS   float64 // EH: lookup time of this batch, µs
	SCBatchUS   float64 // Shortcut-EH: lookup time of this batch, µs
	TradVer     uint64  // version of the traditional directory
	ShortcutVer uint64  // version of the shortcut directory
	InSync      bool
	// ShortcutFrac is the fraction of this batch's Shortcut-EH lookups
	// answered through the shortcut directory. It exposes desync windows
	// even when versions have re-converged by sampling time.
	ShortcutFrac float64
}

// Fig8 runs the mixed workload against EH and Shortcut-EH.
func Fig8(cfg Fig8Config) ([]Fig8Point, error) {
	cfg.fill()

	poolOpt := vmshortcut.WithPoolConfig(poolConfigFor(cfg.BulkLoad * 2))
	ehTbl, err := vmshortcut.Open(vmshortcut.KindEH, poolOpt)
	if err != nil {
		return nil, err
	}
	defer ehTbl.Close()

	scTbl, err := vmshortcut.Open(vmshortcut.KindShortcutEH, poolOpt,
		vmshortcut.WithPollInterval(cfg.PollInterval))
	if err != nil {
		return nil, err
	}
	defer scTbl.Close()

	// Bulk load both indexes with the same keyspace.
	for i := 0; i < cfg.BulkLoad; i++ {
		k := workload.Key(cfg.Seed, uint64(i))
		if err := ehTbl.Insert(k, uint64(i)); err != nil {
			return nil, fmt.Errorf("fig8 EH bulk: %w", err)
		}
		if err := scTbl.Insert(k, uint64(i)); err != nil {
			return nil, fmt.Errorf("fig8 SCEH bulk: %w", err)
		}
	}
	// Let the shortcut catch up before the waves start, like the paper.
	scTbl.WaitSync(30 * time.Second)

	waves := make([]workload.Wave, cfg.Waves)
	for i := range waves {
		waves[i] = workload.Wave{Accesses: cfg.WaveAccesses, InsertFraction: cfg.InsertFraction}
	}

	// Materialize the op stream once so both indexes replay it equally.
	var ops []workload.MixedOp
	workload.MixedWaves(cfg.Seed, cfg.BulkLoad, waves, func(op workload.MixedOp) {
		ops = append(ops, op)
	})

	var points []Fig8Point
	var ehBatch, scBatch time.Duration
	lastStats := scTbl.Stats()
	for i, op := range ops {
		if op.Insert {
			if err := ehTbl.Insert(op.Key, op.Value); err != nil {
				return nil, err
			}
			if err := scTbl.Insert(op.Key, op.Value); err != nil {
				return nil, err
			}
		} else {
			start := time.Now()
			if _, ok := ehTbl.Lookup(op.Key); !ok {
				return nil, fmt.Errorf("fig8 EH lost key %d", op.Key)
			}
			ehBatch += time.Since(start)

			start = time.Now()
			if _, ok := scTbl.Lookup(op.Key); !ok {
				return nil, fmt.Errorf("fig8 SCEH lost key %d", op.Key)
			}
			scBatch += time.Since(start)
		}
		if (i+1)%cfg.Batch == 0 || i == len(ops)-1 {
			st := scTbl.Stats()
			dSC := st.ShortcutLookups - lastStats.ShortcutLookups
			dTR := st.TraditionalLookups - lastStats.TraditionalLookups
			frac := 0.0
			if dSC+dTR > 0 {
				frac = float64(dSC) / float64(dSC+dTR)
			}
			lastStats = st
			points = append(points, Fig8Point{
				Accesses:     i + 1,
				EHBatchUS:    us(ehBatch),
				SCBatchUS:    us(scBatch),
				TradVer:      st.TradVersion,
				ShortcutVer:  st.ShortcutVersion,
				InSync:       st.InSync,
				ShortcutFrac: frac,
			})
			ehBatch, scBatch = 0, 0
		}
	}
	return points, nil
}

// Fig8Render formats the synchronization trace.
func Fig8Render(points []Fig8Point) *harness.Table {
	t := harness.NewTable("Figure 8: synchronization under a mixed workload (1% inserts, waves)")
	for _, p := range points {
		t.AddRow(
			"accesses", fmt.Sprintf("%d", p.Accesses),
			"EH batch [us]", fmt.Sprintf("%.1f", p.EHBatchUS),
			"Shortcut-EH batch [us]", fmt.Sprintf("%.1f", p.SCBatchUS),
			"trad ver", fmt.Sprintf("%d", p.TradVer),
			"shortcut ver", fmt.Sprintf("%d", p.ShortcutVer),
			"in sync", fmt.Sprintf("%v", p.InSync),
			"via shortcut", fmt.Sprintf("%.0f%%", 100*p.ShortcutFrac),
		)
	}
	return t
}

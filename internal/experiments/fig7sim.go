package experiments

import (
	"fmt"

	"vmshortcut"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/hashfn"
	"vmshortcut/internal/vmsim"
	"vmshortcut/internal/workload"
)

// Fig7bSim reproduces the lookup comparison of Figure 7b on the simulated
// MMU, for the three structurally distinct competitors:
//
//   - HT: one open-addressing array — a single data access.
//   - EH: pointer directory then bucket — two dependent accesses.
//   - Shortcut-EH: one access through the shortcut directory, whose
//     virtual size is fan-in × the bucket set.
//
// The table *shape* (global depth, bucket count, average fan-in) comes
// from a real extendible hash table when the configured size is affordable
// to build, and otherwise from the empirically calibrated growth law
// (≈ n/61 buckets at load 0.35; directory one doubling past the bucket
// count). Note the regime dependence: the paper's ordering (HT fastest,
// Shortcut-EH close behind, EH last) emerges once the EH *directory*
// itself outgrows the caches — i.e. at the paper's 100M-entry scale — while
// at cache-resident sizes the directory indirection is nearly free and the
// shortcut's larger virtual footprint can even lose (see EXPERIMENTS.md).
func Fig7bSim(cfg Fig7Config) (map[string]float64, *harness.Table, error) {
	cfg.fill()

	var gd uint
	var buckets int
	if cfg.Entries <= 4_000_000 {
		// Build a real table through the facade to extract the exact shape.
		st, err := vmshortcut.Open(vmshortcut.KindEH,
			vmshortcut.WithPoolConfig(poolConfigFor(cfg.Entries)))
		if err != nil {
			return nil, nil, err
		}
		defer st.Close()
		for i := 0; i < cfg.Entries; i++ {
			if err := st.Insert(workload.Key(cfg.Seed, uint64(i)), uint64(i)); err != nil {
				return nil, nil, err
			}
		}
		shape := st.Stats()
		gd = shape.GlobalDepth
		buckets = shape.Buckets
	} else {
		// Synthesize the shape (calibrated on 1M/2M real builds).
		buckets = cfg.Entries / 61
		for gd = 1; 1<<gd < buckets; gd++ {
		}
		gd++
	}
	slots := 1 << gd
	fanIn := slots / buckets
	if fanIn < 1 {
		fanIn = 1
	}

	out := harness.NewTable(fmt.Sprintf(
		"Figure 7b (sim): per-lookup cost at n=%d (gd=%d, %d buckets, fan-in %.2f)",
		cfg.Entries, gd, buckets, float64(slots)/float64(buckets)))
	lookups := cfg.Entries
	if lookups > 1_000_000 {
		lookups = 1_000_000
	}
	perLookup := map[string]float64{}

	// Each variant runs the loop twice: a warm-up pass that maps the
	// region (AutoFault) and warms TLBs/caches — the state a table has
	// after its insertion phase — then the measured pass.
	measure := func(m *vmsim.MMU, loop func()) float64 {
		loop()
		m.ResetTime()
		loop()
		return m.Time() / float64(lookups)
	}

	// HT: one array of n/0.35 slots ≈ entries*16B/0.35 — model as a flat
	// physical region accessed by key hash.
	{
		m := vmsim.New(cfg.Sim)
		m.AutoFault = true
		htBytes := uint64(float64(cfg.Entries) * 16 / 0.35)
		perLookup["HT"] = measure(m, func() {
			for i := 0; i < lookups; i++ {
				k := workload.Key(cfg.Seed, uint64(i%cfg.Entries))
				off := hashfn.Hash(k) % htBytes &^ 7
				m.MustAccess(simLeafBase + off)
			}
		})
		out.AddRow("index", "HT (sim)",
			"per lookup [ns]", fmt.Sprintf("%.1f", perLookup["HT"]))
	}

	// EH: read the directory slot (pointer array), then the bucket page.
	{
		m := vmsim.New(cfg.Sim)
		m.AutoFault = true
		perLookup["EH"] = measure(m, func() {
			for i := 0; i < lookups; i++ {
				k := workload.Key(cfg.Seed, uint64(i%cfg.Entries))
				h := hashfn.Hash(k)
				slot := hashfn.DirIndex(h, gd)
				m.MustAccess(simTradBase + slot*8)
				bucketIdx := slot / uint64(fanIn) % uint64(buckets)
				off := hashfn.Hash2(k) % (simPage - 8) &^ 7
				m.MustAccess(simLeafBase + bucketIdx*simPage + off)
			}
		})
		out.AddRow("index", "EH (sim)",
			"per lookup [ns]", fmt.Sprintf("%.1f", perLookup["EH"]))
	}

	// Shortcut-EH: a single access into the 2^gd-page shortcut directory.
	{
		m := vmsim.New(cfg.Sim)
		m.AutoFault = true
		perLookup["Shortcut-EH"] = measure(m, func() {
			for i := 0; i < lookups; i++ {
				k := workload.Key(cfg.Seed, uint64(i%cfg.Entries))
				h := hashfn.Hash(k)
				slot := hashfn.DirIndex(h, gd)
				off := hashfn.Hash2(k) % (simPage - 8) &^ 7
				m.MustAccess(simShortBase + slot*simPage + off)
			}
		})
		out.AddRow("index", "Shortcut-EH (sim)",
			"per lookup [ns]", fmt.Sprintf("%.1f", perLookup["Shortcut-EH"]))
	}
	return perLookup, out, nil
}

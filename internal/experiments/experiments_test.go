package experiments

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"vmshortcut/internal/harness"
	"vmshortcut/internal/vmsim"
)

func TestFig2TinyRuns(t *testing.T) {
	series, err := Fig2(Fig2Config{Accesses: 20000, Scale: 1.0 / 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(fig2Points) {
			t.Fatalf("%s has %d points, want %d", s.Label, len(s.Points), len(fig2Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s point %s non-positive", s.Label, p.X)
			}
		}
	}
}

func TestTable1TinyRuns(t *testing.T) {
	rows, err := Table1(Table1Config{Slots: 1 << 10, Accesses: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	trad, lazy, eager := rows[0], rows[1], rows[2]
	// Setting pointers must be far cheaper than setting mmaps.
	if trad.SetPerPage >= lazy.SetPerPage {
		t.Fatalf("pointer set %.3f >= mmap set %.3f", trad.SetPerPage, lazy.SetPerPage)
	}
	if eager.PopPerPage <= 0 {
		t.Fatal("eager variant must report populate cost")
	}
	if lazy.PopPerPage != 0 {
		t.Fatal("lazy variant must not populate")
	}
	// Render sanity.
	var sb strings.Builder
	Table1Render(rows).Render(&sb)
	if !strings.Contains(sb.String(), "Shortcut (eager)") {
		t.Fatal("render missing variant")
	}
}

func TestFig4TinyRuns(t *testing.T) {
	series, err := Fig4(Fig4Config{Slots: 1 << 12, Accesses: 20000, FanIns: []int{16, 4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("%s has %d points", s.Label, len(s.Points))
		}
	}
}

func TestFig5TinyRuns(t *testing.T) {
	results, err := Fig5(Fig5Config{RegionPages: 1 << 10, Remaps: 1 << 8, ReaderCounts: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].RemapUS <= 0 {
		t.Fatal("no remap cost measured")
	}
	// Reader costs are only meaningful if the readers actually got CPU
	// time during the shooting phase (not guaranteed on one core).
	if results[1].PagesReadPerRead > 0 {
		if results[1].ReadWithShootUS <= 0 || results[1].ReadQuietUS <= 0 {
			t.Fatal("reader costs missing despite pages read")
		}
	}
	var sb strings.Builder
	Fig5Render(results).Render(&sb)
	if !strings.Contains(sb.String(), "shooter") {
		t.Fatal("render broken")
	}
}

func TestFig7TinyRuns(t *testing.T) {
	res, err := Fig7(Fig7Config{Entries: 30000, Checkpoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Insert) != len(IndexNames) {
		t.Fatalf("insert series = %d", len(res.Insert))
	}
	for _, s := range res.Insert {
		if len(s.Points) != 5 {
			t.Fatalf("%s: %d checkpoints", s.Label, len(s.Points))
		}
		last := 0.0
		for _, p := range s.Points {
			if p.Y < last {
				t.Fatalf("%s accumulated time decreased", s.Label)
			}
			last = p.Y
		}
	}
	for _, name := range IndexNames {
		if res.LookupMS[name] <= 0 {
			t.Fatalf("%s lookup time missing", name)
		}
	}
}

func TestFig7bSimShape(t *testing.T) {
	// Paper scale (100M entries): the EH directory itself (2^22 slots ×
	// 8 B = 32 MB) no longer fits the caches, which is exactly the
	// indirection cost the shortcut eliminates. The shape is synthesized
	// from the calibrated growth law; only 1M lookups are simulated.
	ns, tbl, err := Fig7bSim(Fig7Config{Entries: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tbl.Render(&sb)
	for _, want := range []string{"HT (sim)", "EH (sim)", "Shortcut-EH (sim)"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("missing %q:\n%s", want, sb.String())
		}
	}
	// Paper ordering on native-like hardware: HT fastest, Shortcut-EH
	// close behind, EH last.
	if !(ns["HT"] <= ns["Shortcut-EH"] && ns["Shortcut-EH"] < ns["EH"]) {
		t.Fatalf("sim ordering wrong: HT %.1f, Shortcut-EH %.1f, EH %.1f",
			ns["HT"], ns["Shortcut-EH"], ns["EH"])
	}
	// At cache-resident scales the ordering legitimately differs (see
	// EXPERIMENTS.md); just verify it runs.
	if _, _, err := Fig7bSim(Fig7Config{Entries: 200000}); err != nil {
		t.Fatal(err)
	}
}

func TestFig8TinyRuns(t *testing.T) {
	points, err := Fig8(Fig8Config{
		BulkLoad:     20000,
		Waves:        2,
		WaveAccesses: 2000,
		Batch:        500,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 4 {
		t.Fatalf("only %d points", len(points))
	}
	// Versions never regress and end in sync (mapper catches up).
	var lastTrad, lastSc uint64
	for _, p := range points {
		if p.TradVer < lastTrad || p.ShortcutVer < lastSc {
			t.Fatal("versions regressed")
		}
		if p.ShortcutVer > p.TradVer {
			t.Fatal("shortcut version ahead")
		}
		lastTrad, lastSc = p.TradVer, p.ShortcutVer
	}
}

func TestFig2SimShapeShortcutWins(t *testing.T) {
	series, err := Fig2Sim(Fig2Config{Accesses: 50000, Scale: 1.0 / 1024})
	if err != nil {
		t.Fatal(err)
	}
	trad, short := series[0], series[1]
	// Figure 2's headline: the shortcut is faster at every size (fan-in
	// here is ~1, far below the crossover).
	wins := 0
	for i := range trad.Points {
		if short.Points[i].Y < trad.Points[i].Y {
			wins++
		}
	}
	if wins < len(trad.Points)-1 {
		t.Fatalf("shortcut won only %d/%d sim configurations", wins, len(trad.Points))
	}
}

func TestFig4SimCrossover(t *testing.T) {
	// The paper runs 2^22 slots on a 25 MB L3: the shortcut's PTE
	// footprint (32 MB) spills out of cache while the traditional node's
	// stays resident. At test scale (2^18 slots → 2 MB of PTEs) the same
	// asymmetry needs a proportionally smaller simulated cache.
	series, err := Fig4Sim(Fig4Config{
		Slots:    1 << 18,
		Accesses: 200000,
		FanIns:   []int{512, 64, 8, 1},
		Sim: vmsim.Config{
			L2Size: 128 << 10,
			L3Size: 1 << 20,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	trad, short := series[0], series[1]
	// Paper shape: traditional wins at fan-in 512; shortcut wins at 1.
	if trad.Points[0].Y >= short.Points[0].Y {
		t.Fatalf("fan-in 512: traditional %.2f should beat shortcut %.2f",
			trad.Points[0].Y, short.Points[0].Y)
	}
	last := len(trad.Points) - 1
	if short.Points[last].Y >= trad.Points[last].Y {
		t.Fatalf("fan-in 1: shortcut %.2f should beat traditional %.2f",
			short.Points[last].Y, trad.Points[last].Y)
	}
}

func TestTable1SimShape(t *testing.T) {
	rows, err := Table1Sim(Table1Config{Slots: 1 << 14, Accesses: 100000})
	if err != nil {
		t.Fatal(err)
	}
	trad, lazy, eager := rows[0], rows[1], rows[2]
	if trad.SetPerPage >= lazy.SetPerPage {
		t.Fatal("sim: pointer set should be cheaper than remap")
	}
	// Lazy first access pays faults; eager does not.
	if lazy.Access1 <= eager.Access1 {
		t.Fatalf("sim: lazy 1st access %.1f should exceed eager %.1f",
			lazy.Access1, eager.Access1)
	}
	// Second passes converge.
	ratio := lazy.Access2 / eager.Access2
	if ratio > 1.5 || ratio < 0.67 {
		t.Fatalf("sim: 2nd accesses diverge: lazy %.1f vs eager %.1f",
			lazy.Access2, eager.Access2)
	}
}

func TestFig5SimShape(t *testing.T) {
	results, err := Fig5Sim(Fig5Config{RegionPages: 1 << 12, Remaps: 1 << 10, ReaderCounts: []int{0, 1, 3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	// Shooter cost grows with reader count...
	for i := 1; i < len(results); i++ {
		if results[i].RemapUS <= results[i-1].RemapUS {
			t.Fatalf("remap cost did not grow: %v -> %v", results[i-1].RemapUS, results[i].RemapUS)
		}
	}
	// ...while readers stay within a small factor of quiet reads.
	for _, r := range results[1:] {
		if r.ReadWithShootUS > r.ReadQuietUS*2 {
			t.Fatalf("readers slowed too much: %.3f vs %.3f", r.ReadWithShootUS, r.ReadQuietUS)
		}
	}
}

func TestAblationCoalesce(t *testing.T) {
	tbl, err := AblationCoalesce(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "coalesced") {
		t.Fatal("missing coalesced row")
	}
}

func TestAblationThreshold(t *testing.T) {
	tbl, err := AblationThreshold(Fig4Config{Slots: 1 << 10, Accesses: 10000, FanIns: []int{8, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "faster path") {
		t.Fatal("missing verdict column")
	}
}

func TestAblationPollInterval(t *testing.T) {
	tbl, err := AblationPollInterval(20000, []time.Duration{time.Millisecond, 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "time-to-sync") {
		t.Fatal("missing sync column")
	}
}

func TestAblationSyncMaintenance(t *testing.T) {
	tbl, err := AblationSyncMaintenance(20000)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tbl.Render(&sb)
	for _, want := range []string{"async mapper", "synchronous", "raw EH"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("missing variant %q", want)
		}
	}
}

func TestFig4SimNestedPagingShiftsCrossover(t *testing.T) {
	// EXPERIMENTS.md observes that on the (virtualized) measurement host
	// the fan-in crossover sits far below the paper's 8–16. With
	// NestedPaging the simulator must show the same directional shift:
	// nested paging penalizes the walk-heavy shortcut more than the
	// TLB-friendly traditional node, moving the crossover toward lower
	// fan-ins (i.e. at a mid fan-in where they were close, the traditional
	// node's relative position improves).
	base := vmsim.Config{L2Size: 128 << 10, L3Size: 1 << 20}
	nested := base
	nested.NestedPaging = true

	ratioAt := func(cfg vmsim.Config, fanIn int) float64 {
		s, err := Fig4Sim(Fig4Config{
			Slots: 1 << 16, Accesses: 100000, FanIns: []int{fanIn}, Sim: cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s[1].Points[0].Y / s[0].Points[0].Y // shortcut / traditional
	}
	const fanIn = 32
	nativeRatio := ratioAt(base, fanIn)
	nestedRatio := ratioAt(nested, fanIn)
	if nestedRatio <= nativeRatio {
		t.Fatalf("nested paging should hurt the shortcut relatively: native %.3f, nested %.3f",
			nativeRatio, nestedRatio)
	}
}

func TestAblationHugePagesSim(t *testing.T) {
	tbl, err := AblationHugePagesSim(50000, []int{1 << 12, 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "shortcut 2M") {
		t.Fatal("missing 2M column")
	}
}

func TestAblationHugePagesSimShape(t *testing.T) {
	// At a TLB-thrashing working set, the 2 MB shortcut must beat the
	// 4 KB shortcut decisively (TLB reach × 512, walks one level shorter).
	const slots = 1 << 18
	const accesses = 100000
	m4 := vmsim.New(vmsim.Config{})
	simSetup(m4, slots, slots)
	m4.ResetTime()
	for i := 0; i < accesses; i++ {
		simShortcutAccess(m4, (i*2654435761)%slots)
	}
	small := m4.Time()

	mh := vmsim.New(vmsim.Config{})
	for h := 0; h < slots/512; h++ {
		mh.MapHuge(simShortBase>>21+uint64(h), uint64(h))
	}
	mh.ResetTime()
	for i := 0; i < accesses; i++ {
		simShortcutAccess(mh, (i*2654435761)%slots)
	}
	huge := mh.Time()
	if huge*2 >= small {
		t.Fatalf("2M shortcut should at least halve cost: %.0f vs %.0f", huge, small)
	}
}

func TestAblationHugePagesReal(t *testing.T) {
	if !HugePagesAvailable() {
		t.Skip("hugetlb pool unavailable (vm.nr_hugepages = 0)")
	}
	tbl, err := AblationHugePagesReal(16<<20, 100000, 42)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tbl.Render(&sb)
	for _, want := range []string{"4 KB pages", "2 MB pages", "speedup"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("missing row %q:\n%s", want, sb.String())
		}
	}
}

func TestRenderSeriesIntegration(t *testing.T) {
	series, err := Fig2Sim(Fig2Config{Accesses: 5000, Scale: 1.0 / 8192})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	harness.RenderSeries(&sb, "Figure 2 (sim)", "dirMB,bucketMB", series)
	if !strings.Contains(sb.String(), "Shortcut (sim)") {
		t.Fatal("series render broken")
	}
}

func TestShardScaleTinyRuns(t *testing.T) {
	rows, err := ShardScale(ShardScaleConfig{Entries: 40000, Shards: []int{1, 2}, Workers: 2, Batch: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Shards != 1 || rows[1].Shards != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.InsertMPS <= 0 || r.LookupMPS <= 0 {
			t.Fatalf("non-positive throughput: %+v", r)
		}
		if r.Procs != runtime.GOMAXPROCS(0) {
			t.Fatalf("default sweep should run at the current GOMAXPROCS: %+v", r)
		}
	}
	var sb strings.Builder
	ShardScaleRender(rows).Render(&sb)
	for _, want := range []string{"shards", "insert M/s", "lookup speedup", "1.00x"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("rendered table missing %q:\n%s", want, sb.String())
		}
	}
	if strings.Contains(sb.String(), "procs") {
		t.Fatalf("single-procs sweep should omit the procs column:\n%s", sb.String())
	}
}

// TestShardScaleProcsGrid crosses the GOMAXPROCS axis with shard counts
// — the library-level twin of cmd/ehbench's scaling sweep — and checks
// the sweep restores the scheduler setting it mutated.
func TestShardScaleProcsGrid(t *testing.T) {
	before := runtime.GOMAXPROCS(0)
	rows, err := ShardScale(ShardScaleConfig{
		Entries: 30000, Shards: []int{1, 2}, Procs: []int{1, 2}, Workers: 2, Batch: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if after := runtime.GOMAXPROCS(0); after != before {
		t.Fatalf("GOMAXPROCS not restored: %d -> %d", before, after)
	}
	if len(rows) != 4 {
		t.Fatalf("procs×shards grid has %d rows, want 4: %+v", len(rows), rows)
	}
	want := [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	for i, r := range rows {
		if r.Procs != want[i][0] || r.Shards != want[i][1] {
			t.Fatalf("row %d = procs %d shards %d, want %v", i, r.Procs, r.Shards, want[i])
		}
		if r.InsertMPS <= 0 || r.LookupMPS <= 0 {
			t.Fatalf("non-positive throughput: %+v", r)
		}
	}
	var sb strings.Builder
	ShardScaleRender(rows).Render(&sb)
	if !strings.Contains(sb.String(), "procs") {
		t.Fatalf("multi-procs sweep must render the procs column:\n%s", sb.String())
	}
}

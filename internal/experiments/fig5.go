package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut/internal/core"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/sys"
	"vmshortcut/internal/vmsim"
	"vmshortcut/internal/workload"
)

// Fig5Config parameterizes the Figure 5 reproduction: the cost of TLB
// shootdowns. A shooting thread performs populated remaps of randomly
// selected pages of a large mapped region while n reader threads
// sequentially scan the region; afterwards the readers re-read the same
// number of pages without the shooter.
//
// The paper reports (a) the shooter's time per remap, (b) a reader's time
// per page with the shooter running, and (c) without. On a multi-core
// host the shooter slows down with reader count (it must IPI every active
// core) while readers stay flat. Note: on a single-core host the threads
// merely timeshare and the effect disappears — use the vmsim variant
// (Fig5Sim) for the deterministic shape.
type Fig5Config struct {
	// RegionPages is the size of the mapped region. Paper: 8 GB (2^21
	// pages). Default 2^16 pages (256 MB).
	RegionPages int
	// Remaps performed by the shooting thread. Paper: 2^19. Default 2^14.
	Remaps int
	// ReaderCounts to sweep. Default {0, 1, 3, 7} like the paper.
	ReaderCounts []int
	Seed         uint64
	// Sim overrides the simulated machine for the vmsim variant.
	Sim vmsim.Config
}

func (c *Fig5Config) fill() {
	if c.RegionPages <= 0 {
		c.RegionPages = 1 << 16
	}
	if c.Remaps <= 0 {
		c.Remaps = 1 << 14
	}
	if len(c.ReaderCounts) == 0 {
		c.ReaderCounts = []int{0, 1, 3, 7}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Fig5Result holds the three bars for one reader count, in microseconds.
type Fig5Result struct {
	Readers          int
	RemapUS          float64 // (a) shooter: µs per remap
	ReadWithShootUS  float64 // (b) reader: µs per page, shooter active
	ReadQuietUS      float64 // (c) reader: µs per page, no shooter
	PagesReadPerRead int64   // pages each reader covered during (b)
}

// Fig5 runs the real-thread shootdown experiment.
func Fig5(cfg Fig5Config) ([]Fig5Result, error) {
	cfg.fill()
	var out []Fig5Result
	for _, readers := range cfg.ReaderCounts {
		r, err := fig5One(cfg, readers)
		if err != nil {
			return nil, fmt.Errorf("fig5 readers=%d: %w", readers, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func fig5One(cfg Fig5Config, readers int) (Fig5Result, error) {
	p, refs, err := leafSet(cfg.RegionPages)
	if err != nil {
		return Fig5Result{}, err
	}
	defer p.Close()

	// The region under fire: a shortcut area covering all pool pages.
	sc, err := core.NewShortcut(p, cfg.RegionPages)
	if err != nil {
		return Fig5Result{}, err
	}
	defer sc.Close()
	if _, err := sc.SetAll(refs, true); err != nil {
		return Fig5Result{}, err
	}
	base := sc.Base()
	ps := uintptr(sys.PageSize())

	var done atomic.Bool
	var pagesRead int64
	var readNS int64

	runReaders := func(stopAt int64) {
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
				var local int64
				start := time.Now()
				for !done.Load() {
					for pg := 0; pg < cfg.RegionPages; pg += 1 {
						sink += readWord(base + uintptr(pg)*ps)
						local++
						if stopAt > 0 && local >= stopAt {
							goto out
						}
					}
					if stopAt <= 0 && done.Load() {
						break
					}
				}
			out:
				atomic.AddInt64(&pagesRead, local)
				atomic.AddInt64(&readNS, time.Since(start).Nanoseconds())
			}()
		}
		wg.Wait()
	}

	// Phase (a)+(b): shooter remaps while readers scan.
	rng := workload.NewRNG(cfg.Seed)
	var remapDur time.Duration
	shooter := func() time.Duration {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
		start := time.Now()
		for i := 0; i < cfg.Remaps; i++ {
			slot := rng.Intn(cfg.RegionPages)
			target := refs[rng.Intn(len(refs))]
			if err := sc.Set(slot, target, true); err != nil {
				break
			}
		}
		return time.Since(start)
	}

	if readers == 0 {
		remapDur = shooter()
	} else {
		done.Store(false)
		readersDone := make(chan struct{})
		go func() {
			runReaders(0)
			close(readersDone)
		}()
		// Give the readers a head start so they are actually scanning when
		// the shooting begins (essential on few-core machines where the
		// shooter could otherwise finish before readers are scheduled).
		time.Sleep(10 * time.Millisecond)
		remapDur = shooter()
		done.Store(true)
		<-readersDone
	}

	res := Fig5Result{Readers: readers}
	res.RemapUS = us(remapDur) / float64(cfg.Remaps)

	if readers > 0 {
		totalPages := atomic.LoadInt64(&pagesRead)
		totalNS := atomic.LoadInt64(&readNS)
		if totalPages > 0 {
			res.ReadWithShootUS = float64(totalNS) / float64(totalPages) / 1000
		}
		res.PagesReadPerRead = totalPages / int64(readers)

		// Phase (c): same page count, no shooter. Skip if the readers
		// never got scheduled during (b) — possible on one core.
		if res.PagesReadPerRead > 0 {
			pagesRead, readNS = 0, 0
			done.Store(false)
			runReaders(res.PagesReadPerRead)
			quietPages := atomic.LoadInt64(&pagesRead)
			quietNS := atomic.LoadInt64(&readNS)
			if quietPages > 0 {
				res.ReadQuietUS = float64(quietNS) / float64(quietPages) / 1000
			}
		}
	}
	return res, nil
}

// Fig5Render formats results like the paper's grouped bars.
func Fig5Render(results []Fig5Result) *harness.Table {
	t := harness.NewTable("Figure 5: effect of TLB shootdowns (per-page times)")
	for _, r := range results {
		row := []string{
			"readers n", fmt.Sprintf("%d", r.Readers),
			"(a) shooter [us/remap]", fmt.Sprintf("%.3f", r.RemapUS),
		}
		if r.Readers > 0 {
			row = append(row,
				"(b) reader w/ shooter [us/page]", fmt.Sprintf("%.4f", r.ReadWithShootUS),
				"(c) reader quiet [us/page]", fmt.Sprintf("%.4f", r.ReadQuietUS),
			)
		} else {
			row = append(row,
				"(b) reader w/ shooter [us/page]", "-",
				"(c) reader quiet [us/page]", "-",
			)
		}
		t.AddRow(row...)
	}
	return t
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"vmshortcut"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/vmsim"
	"vmshortcut/internal/workload"
)

// IndexNames lists the five competitors in the paper's legend order.
var IndexNames = []string{"HT", "HTI", "CH", "EH", "Shortcut-EH"}

// buildIndex constructs one competitor through the public Open facade,
// sized for n insertions. Closing the returned store releases everything
// Open created, including the page pool of the EH-backed kinds. The
// structures themselves are deliberately NOT pre-sized (no WithCapacity):
// the insertion experiments measure growth behavior from the paper's 4 KB
// starting point.
func buildIndex(name string, n int) (vmshortcut.Store, error) {
	kind, err := vmshortcut.ParseKind(strings.ToLower(name))
	if err != nil {
		return nil, fmt.Errorf("unknown index %q: %w", name, err)
	}
	var opts []vmshortcut.Option
	switch kind {
	case vmshortcut.KindCH:
		// The paper grants CH a fixed 1 GB table for 100M entries; keep
		// the same bytes-per-entry ratio at any scale.
		bytes := n * 10
		if bytes < 4096 {
			bytes = 4096
		}
		opts = append(opts, vmshortcut.WithTableBytes(bytes))
	case vmshortcut.KindEH, vmshortcut.KindShortcutEH:
		opts = append(opts, vmshortcut.WithPoolConfig(poolConfigFor(n)))
	}
	return vmshortcut.Open(kind, opts...)
}

// poolConfigFor sizes a page pool for n entries at the 0.35 load factor
// (≈ n/89 buckets) with generous headroom for splits in flight.
func poolConfigFor(n int) vmshortcut.PoolConfig {
	pages := n/32 + (1 << 12)
	return vmshortcut.PoolConfig{GrowChunkPages: 1 << 10, MaxPages: pages * 4}
}

// Fig7Config parameterizes the insertion/lookup comparison.
type Fig7Config struct {
	// Entries inserted (Fig 7a) and lookups fired (Fig 7b). Paper: 100M
	// each. Default 2M.
	Entries int
	// Checkpoints along the insertion sequence for the accumulated-time
	// series. Default 20.
	Checkpoints int
	// Indexes to run. Default all five.
	Indexes []string
	Seed    uint64
	// Sim overrides the simulated machine for Fig7bSim.
	Sim vmsim.Config
}

func (c *Fig7Config) fill() {
	if c.Entries <= 0 {
		c.Entries = 2_000_000
	}
	if c.Checkpoints <= 0 {
		c.Checkpoints = 20
	}
	if len(c.Indexes) == 0 {
		c.Indexes = IndexNames
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Fig7Result bundles the insertion series (Fig 7a) and the lookup totals
// (Fig 7b).
type Fig7Result struct {
	Insert []harness.Series // accumulated seconds at each checkpoint
	Lookup *harness.Table   // total lookup milliseconds per index
	// LookupMS maps index name to its Figure 7b total.
	LookupMS map[string]float64
	// InsertTotalS maps index name to its total insertion seconds.
	InsertTotalS map[string]float64
}

// Fig7 runs insertions (7a) and the subsequent hit-only lookups (7b).
func Fig7(cfg Fig7Config) (*Fig7Result, error) {
	cfg.fill()
	res := &Fig7Result{
		Lookup:       harness.NewTable("Figure 7b: 100%-hit lookups after insertion"),
		LookupMS:     map[string]float64{},
		InsertTotalS: map[string]float64{},
	}
	step := cfg.Entries / cfg.Checkpoints
	if step < 1 {
		step = 1
	}

	for _, name := range cfg.Indexes {
		idx, err := buildIndex(name, cfg.Entries)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", name, err)
		}
		cleanup := func() { idx.Close() }

		// --- Figure 7a: insertion sequence with checkpoints.
		series := harness.Series{Label: name}
		var elapsed time.Duration
		inserted := 0
		for inserted < cfg.Entries {
			batch := step
			if cfg.Entries-inserted < batch {
				batch = cfg.Entries - inserted
			}
			start := time.Now()
			for i := 0; i < batch; i++ {
				k := workload.Key(cfg.Seed, uint64(inserted+i))
				if err := idx.Insert(k, uint64(inserted+i)); err != nil {
					cleanup()
					return nil, fmt.Errorf("fig7 %s insert: %w", name, err)
				}
			}
			elapsed += time.Since(start)
			inserted += batch
			series.Points = append(series.Points, harness.Point{
				X: fmt.Sprintf("%d", inserted),
				Y: elapsed.Seconds(),
			})
		}
		res.Insert = append(res.Insert, series)
		res.InsertTotalS[name] = elapsed.Seconds()

		// --- Figure 7b: hit-only lookups on the filled index. The paper
		// notes the shortcut is in sync before the lookup phase; kinds
		// without asynchronous maintenance report in-sync immediately.
		if !idx.WaitSync(30 * time.Second) {
			cleanup()
			return nil, fmt.Errorf("fig7 %s: shortcut never synced", name)
		}
		start := time.Now()
		misses := 0
		workload.LookupStream(cfg.Seed, cfg.Entries, cfg.Entries, func(i int) {
			k := workload.Key(cfg.Seed, uint64(i))
			if _, ok := idx.Lookup(k); !ok {
				misses++
			}
		})
		lookupMS := us(time.Since(start)) / 1000
		if misses > 0 {
			cleanup()
			return nil, fmt.Errorf("fig7 %s: %d unexpected lookup misses", name, misses)
		}
		res.LookupMS[name] = lookupMS
		res.Lookup.AddRow(
			"index", name,
			"lookup total [ms]", fmt.Sprintf("%.1f", lookupMS),
			"per lookup [ns]", fmt.Sprintf("%.1f", lookupMS*1e6/float64(cfg.Entries)),
		)
		cleanup()
	}
	return res, nil
}

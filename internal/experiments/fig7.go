package experiments

import (
	"fmt"
	"time"

	"vmshortcut/internal/ch"
	"vmshortcut/internal/eh"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/ht"
	"vmshortcut/internal/hti"
	"vmshortcut/internal/pool"
	"vmshortcut/internal/sceh"
	"vmshortcut/internal/vmsim"
	"vmshortcut/internal/workload"
)

// Index is the common operation surface of the five evaluated indexes.
type Index interface {
	Insert(key, value uint64) error
	Lookup(key uint64) (uint64, bool)
	Len() int
}

// IndexNames lists the five competitors in the paper's legend order.
var IndexNames = []string{"HT", "HTI", "CH", "EH", "Shortcut-EH"}

// buildIndex constructs one competitor sized for n insertions, plus a
// cleanup function.
func buildIndex(name string, n int) (Index, func(), error) {
	switch name {
	case "HT":
		return ht.New(ht.Config{}), func() {}, nil
	case "HTI":
		return hti.New(hti.Config{}), func() {}, nil
	case "CH":
		// The paper grants CH a fixed 1 GB table for 100M entries; keep
		// the same bytes-per-entry ratio at any scale.
		bytes := n * 10
		if bytes < 4096 {
			bytes = 4096
		}
		return ch.New(ch.Config{TableBytes: bytes}), func() {}, nil
	case "EH":
		p, err := poolFor(n)
		if err != nil {
			return nil, nil, err
		}
		t, err := eh.New(p, eh.Config{})
		if err != nil {
			p.Close()
			return nil, nil, err
		}
		return t, func() { p.Close() }, nil
	case "Shortcut-EH":
		p, err := poolFor(n)
		if err != nil {
			return nil, nil, err
		}
		t, err := sceh.New(p, sceh.Config{})
		if err != nil {
			p.Close()
			return nil, nil, err
		}
		return t, func() { t.Close(); p.Close() }, nil
	}
	return nil, nil, fmt.Errorf("unknown index %q", name)
}

// poolFor sizes a page pool for n entries at the 0.35 load factor
// (≈ n/89 buckets) with generous headroom for splits in flight.
func poolFor(n int) (*pool.Pool, error) {
	pages := n/32 + (1 << 12)
	return pool.New(pool.Config{GrowChunkPages: 1 << 10, MaxPages: pages * 4})
}

// Fig7Config parameterizes the insertion/lookup comparison.
type Fig7Config struct {
	// Entries inserted (Fig 7a) and lookups fired (Fig 7b). Paper: 100M
	// each. Default 2M.
	Entries int
	// Checkpoints along the insertion sequence for the accumulated-time
	// series. Default 20.
	Checkpoints int
	// Indexes to run. Default all five.
	Indexes []string
	Seed    uint64
	// Sim overrides the simulated machine for Fig7bSim.
	Sim vmsim.Config
}

func (c *Fig7Config) fill() {
	if c.Entries <= 0 {
		c.Entries = 2_000_000
	}
	if c.Checkpoints <= 0 {
		c.Checkpoints = 20
	}
	if len(c.Indexes) == 0 {
		c.Indexes = IndexNames
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Fig7Result bundles the insertion series (Fig 7a) and the lookup totals
// (Fig 7b).
type Fig7Result struct {
	Insert []harness.Series // accumulated seconds at each checkpoint
	Lookup *harness.Table   // total lookup milliseconds per index
	// LookupMS maps index name to its Figure 7b total.
	LookupMS map[string]float64
	// InsertTotalS maps index name to its total insertion seconds.
	InsertTotalS map[string]float64
}

// Fig7 runs insertions (7a) and the subsequent hit-only lookups (7b).
func Fig7(cfg Fig7Config) (*Fig7Result, error) {
	cfg.fill()
	res := &Fig7Result{
		Lookup:       harness.NewTable("Figure 7b: 100%-hit lookups after insertion"),
		LookupMS:     map[string]float64{},
		InsertTotalS: map[string]float64{},
	}
	step := cfg.Entries / cfg.Checkpoints
	if step < 1 {
		step = 1
	}

	for _, name := range cfg.Indexes {
		idx, cleanup, err := buildIndex(name, cfg.Entries)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", name, err)
		}

		// --- Figure 7a: insertion sequence with checkpoints.
		series := harness.Series{Label: name}
		var elapsed time.Duration
		inserted := 0
		for inserted < cfg.Entries {
			batch := step
			if cfg.Entries-inserted < batch {
				batch = cfg.Entries - inserted
			}
			start := time.Now()
			for i := 0; i < batch; i++ {
				k := workload.Key(cfg.Seed, uint64(inserted+i))
				if err := idx.Insert(k, uint64(inserted+i)); err != nil {
					cleanup()
					return nil, fmt.Errorf("fig7 %s insert: %w", name, err)
				}
			}
			elapsed += time.Since(start)
			inserted += batch
			series.Points = append(series.Points, harness.Point{
				X: fmt.Sprintf("%d", inserted),
				Y: elapsed.Seconds(),
			})
		}
		res.Insert = append(res.Insert, series)
		res.InsertTotalS[name] = elapsed.Seconds()

		// --- Figure 7b: hit-only lookups on the filled index.
		if sct, ok := idx.(*sceh.Table); ok {
			// The paper notes the shortcut is in sync before the lookup
			// phase and is used for all lookups.
			if !sct.WaitSync(30 * time.Second) {
				cleanup()
				return nil, fmt.Errorf("fig7 %s: shortcut never synced", name)
			}
		}
		start := time.Now()
		misses := 0
		workload.LookupStream(cfg.Seed, cfg.Entries, cfg.Entries, func(i int) {
			k := workload.Key(cfg.Seed, uint64(i))
			if _, ok := idx.Lookup(k); !ok {
				misses++
			}
		})
		lookupMS := us(time.Since(start)) / 1000
		if misses > 0 {
			cleanup()
			return nil, fmt.Errorf("fig7 %s: %d unexpected lookup misses", name, misses)
		}
		res.LookupMS[name] = lookupMS
		res.Lookup.AddRow(
			"index", name,
			"lookup total [ms]", fmt.Sprintf("%.1f", lookupMS),
			"per lookup [ns]", fmt.Sprintf("%.1f", lookupMS*1e6/float64(cfg.Entries)),
		)
		cleanup()
	}
	return res, nil
}

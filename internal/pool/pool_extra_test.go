package pool

import (
	"testing"

	"vmshortcut/internal/sys"
)

func TestDefaultPoolAndAccessors(t *testing.T) {
	p, err := Default()
	if err != nil {
		t.Fatalf("Default: %v", err)
	}
	defer p.Close()
	if p.FD() < 0 {
		t.Fatal("FD invalid")
	}
	if p.PageSize() != sys.PageSize() {
		t.Fatal("PageSize mismatch")
	}
	if p.Window() == 0 {
		t.Fatal("window not reserved")
	}
	r, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	p.Page(r)[0] = 1
}

func TestFreeN(t *testing.T) {
	p := newTestPool(t, Config{GrowChunkPages: 4})
	refs, err := p.AllocN(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FreeN(refs); err != nil {
		t.Fatalf("FreeN: %v", err)
	}
	if s := p.Stats(); s.UsedPages != 0 || s.Frees != 6 {
		t.Fatalf("stats after FreeN: %+v", s)
	}
	// FreeN must stop at the first invalid ref.
	r2, _ := p.Alloc()
	if err := p.FreeN([]Ref{r2, Ref(999)}); err == nil {
		t.Fatal("invalid ref accepted")
	}
}

func TestAllocContiguousReusesFreeRun(t *testing.T) {
	p := newTestPool(t, Config{GrowChunkPages: 4, ShrinkThresholdPages: 1 << 20, MaxPages: 256})
	ps := sys.PageSize()

	// Build a fragmented free list: allocate 12, free a contiguous run of
	// 4 in the middle plus scattered singles.
	refs, err := p.AllocN(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{4, 5, 6, 7, 0, 10} {
		if err := p.Free(refs[i]); err != nil {
			t.Fatal(err)
		}
	}
	filePages := p.Stats().FilePages

	run, err := p.AllocContiguous(4)
	if err != nil {
		t.Fatalf("AllocContiguous: %v", err)
	}
	// The run must be the recycled middle block, not fresh growth.
	if run != refs[4] {
		t.Fatalf("run = %d, want recycled %d", run, refs[4])
	}
	if p.Stats().FilePages != filePages {
		t.Fatal("contiguous alloc grew the file despite a free run")
	}
	for i := 0; i < 4; i++ {
		pg := p.Page(run + Ref(i*ps))
		pg[0] = byte(i + 1)
	}
	// Scattered singles must still be free (not consumed by the run).
	if s := p.Stats(); s.FreePages != 2 {
		t.Fatalf("free pages = %d, want 2 scattered singles", s.FreePages)
	}
}

func TestAllocContiguousZeroAndNegative(t *testing.T) {
	p := newTestPool(t, Config{})
	if r, err := p.AllocContiguous(0); err != nil || r != NoRef {
		t.Fatalf("AllocContiguous(0) = %d, %v", r, err)
	}
}

func TestWindowStableAcrossGrowth(t *testing.T) {
	p := newTestPool(t, Config{GrowChunkPages: 1, MaxPages: 1 << 12})
	base := p.Window()
	first, _ := p.Alloc()
	p.Page(first)[0] = 9
	for i := 0; i < 500; i++ {
		if _, err := p.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Window() != base {
		t.Fatal("window moved during growth")
	}
	if p.Page(first)[0] != 9 {
		t.Fatal("early page lost data across growth")
	}
}

package pool

import (
	"errors"
	"fmt"
	"sync"

	"vmshortcut/internal/sys"
)

// Ref identifies a physical page by its byte offset into the main-memory
// file. Refs stay valid until the page is freed.
type Ref int64

// NoRef is the zero-value sentinel for "no page".
const NoRef Ref = -1

// Config tunes a Pool. The zero value selects sane defaults.
type Config struct {
	// InitialPages is the number of physical pages the file starts with.
	// Default 0 (grow on first Alloc).
	InitialPages int
	// GrowChunkPages is the minimum number of pages added per ftruncate
	// grow, amortising syscalls. Default 64.
	GrowChunkPages int
	// ShrinkThresholdPages: the file tail is only truncated away while the
	// file is larger than this. Default 1024 pages (4 MiB).
	ShrinkThresholdPages int
	// MaxPages caps the pool (and sizes the stable virtual window).
	// Default 1<<22 pages (16 GiB of virtual space, costing nothing
	// until backed).
	MaxPages int
	// Name labels the memfd for diagnostics.
	Name string
}

func (c *Config) fill() {
	if c.GrowChunkPages <= 0 {
		c.GrowChunkPages = 64
	}
	if c.ShrinkThresholdPages <= 0 {
		c.ShrinkThresholdPages = 1024
	}
	if c.MaxPages <= 0 {
		c.MaxPages = 1 << 22
	}
	if c.Name == "" {
		c.Name = "vmshortcut-pool"
	}
	if c.InitialPages < 0 {
		c.InitialPages = 0
	}
}

// Stats reports pool occupancy and syscall activity.
type Stats struct {
	FilePages  int // current size of the main-memory file in pages
	UsedPages  int // pages handed out and not yet freed
	FreePages  int // pages in the free queue (plus reclaimable tail)
	Grows      int // ftruncate calls that grew the file
	Shrinks    int // ftruncate calls that shrank the file
	Allocs     int // total Alloc'd pages over the pool lifetime
	Frees      int // total freed pages over the pool lifetime
	PeakPages  int // high-water mark of FilePages
	WindowBase uintptr
}

// Pool is a pool of physical pages backed by one main-memory file.
// It is safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	cfg    Config
	fd     int
	window uintptr // stable v_pool base, MaxPages*pagesize of reserved VA
	pages  int     // current file size in pages
	used   int
	free   []Ref // FIFO queue of reusable offsets
	stats  Stats
	closed bool
}

// ErrClosed is returned by operations on a closed pool.
var ErrClosed = errors.New("pool: closed")

// ErrExhausted is returned when MaxPages would be exceeded.
var ErrExhausted = errors.New("pool: max pages exhausted")

// New creates a pool according to cfg.
func New(cfg Config) (*Pool, error) {
	cfg.fill()
	fd, err := sys.MemfdCreate(cfg.Name)
	if err != nil {
		return nil, fmt.Errorf("pool: creating main-memory file: %w", err)
	}
	win, err := sys.ReserveNone(cfg.MaxPages * sys.PageSize())
	if err != nil {
		sys.CloseFD(fd)
		return nil, fmt.Errorf("pool: reserving window: %w", err)
	}
	p := &Pool{cfg: cfg, fd: fd, window: win}
	p.stats.WindowBase = win
	if cfg.InitialPages > 0 {
		p.mu.Lock()
		err := p.growLocked(cfg.InitialPages)
		p.mu.Unlock()
		if err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// Default returns a pool with default configuration.
func Default() (*Pool, error) { return New(Config{}) }

// FD exposes the main-memory file descriptor; shortcut construction maps
// slots of its virtual area onto offsets of this file.
func (p *Pool) FD() int { return p.fd }

// Window returns the base address of v_pool, the stable linear mapping of
// the whole main-memory file.
func (p *Pool) Window() uintptr { return p.window }

// PageSize returns the pool's page size in bytes.
func (p *Pool) PageSize() int { return sys.PageSize() }

// growLocked extends the file by at least n pages and rewires the window
// tail onto the new file region. New file pages are zero-filled by
// ftruncate; MAP_POPULATE pre-faults them so later accesses take no hard
// fault (paper §2.1).
func (p *Pool) growLocked(n int) error {
	if n < p.cfg.GrowChunkPages {
		n = p.cfg.GrowChunkPages
	}
	newPages := p.pages + n
	if newPages > p.cfg.MaxPages {
		newPages = p.cfg.MaxPages
		if newPages <= p.pages {
			return ErrExhausted
		}
		n = newPages - p.pages
	}
	ps := sys.PageSize()
	if err := sys.Ftruncate(p.fd, int64(newPages)*int64(ps)); err != nil {
		return err
	}
	// Map the fresh file tail into the stable window and pre-fault it.
	addr := p.window + uintptr(p.pages*ps)
	if err := sys.MapShared(addr, n*ps, p.fd, int64(p.pages)*int64(ps), true); err != nil {
		// Roll the file size back so state stays consistent.
		_ = sys.Ftruncate(p.fd, int64(p.pages)*int64(ps))
		return err
	}
	for i := p.pages; i < newPages; i++ {
		p.free = append(p.free, Ref(int64(i)*int64(ps)))
	}
	p.pages = newPages
	p.stats.Grows++
	if p.pages > p.stats.PeakPages {
		p.stats.PeakPages = p.pages
	}
	return nil
}

// Alloc hands out one zeroed physical page.
func (p *Pool) Alloc() (Ref, error) {
	refs, err := p.AllocN(1)
	if err != nil {
		return NoRef, err
	}
	return refs[0], nil
}

// AllocN hands out n zeroed physical pages. The pages are not guaranteed
// to be contiguous in the file.
func (p *Pool) AllocN(n int) ([]Ref, error) {
	if n <= 0 {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	for len(p.free) < n {
		if err := p.growLocked(n - len(p.free)); err != nil {
			return nil, err
		}
	}
	out := make([]Ref, n)
	copy(out, p.free[:n])
	p.free = p.free[n:]
	p.used += n
	p.stats.Allocs += n
	// Zero recycled pages so Alloc always returns clean memory.
	for _, r := range out {
		clearPage(p.pageLocked(r))
	}
	return out, nil
}

// AllocContiguous hands out n physically contiguous pages (contiguous in
// the main-memory file), growing the file tail if necessary. Contiguity
// lets a shortcut cover them with a single coalesced mmap call.
func (p *Pool) AllocContiguous(n int) (Ref, error) {
	if n <= 0 {
		return NoRef, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return NoRef, ErrClosed
	}
	run, ok := p.findRunLocked(n)
	if !ok {
		// Force the run to come from a fresh tail extension.
		tail := p.pages
		if err := p.growLocked(n); err != nil {
			return NoRef, err
		}
		run = Ref(int64(tail) * int64(sys.PageSize()))
		p.takeRunLocked(run, n)
	} else {
		p.takeRunLocked(run, n)
	}
	p.used += n
	p.stats.Allocs += n
	ps := sys.PageSize()
	for i := 0; i < n; i++ {
		clearPage(p.pageLocked(run + Ref(i*ps)))
	}
	return run, nil
}

// findRunLocked searches the free queue for n consecutive page offsets.
func (p *Pool) findRunLocked(n int) (Ref, bool) {
	if len(p.free) < n {
		return NoRef, false
	}
	ps := int64(sys.PageSize())
	present := make(map[Ref]struct{}, len(p.free))
	for _, r := range p.free {
		present[r] = struct{}{}
	}
	for _, r := range p.free {
		ok := true
		for i := 1; i < n; i++ {
			if _, hit := present[r+Ref(int64(i)*ps)]; !hit {
				ok = false
				break
			}
		}
		if ok {
			return r, true
		}
	}
	return NoRef, false
}

// takeRunLocked removes the n-page run starting at run from the free queue.
func (p *Pool) takeRunLocked(run Ref, n int) {
	ps := int64(sys.PageSize())
	want := make(map[Ref]struct{}, n)
	for i := 0; i < n; i++ {
		want[run+Ref(int64(i)*ps)] = struct{}{}
	}
	kept := p.free[:0]
	for _, r := range p.free {
		if _, hit := want[r]; hit {
			delete(want, r)
			continue
		}
		kept = append(kept, r)
	}
	p.free = kept
}

// Free returns a page to the pool. If the freed page sits at the file tail
// and the file is above the shrink threshold, the tail is truncated away
// (paper §2.1); otherwise the offset is queued for reuse.
func (p *Pool) Free(r Ref) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	ps := int64(sys.PageSize())
	if r < 0 || int64(r)%ps != 0 || int64(r) >= int64(p.pages)*ps {
		return fmt.Errorf("pool: Free(%d): invalid page ref", r)
	}
	p.used--
	p.stats.Frees++
	p.free = append(p.free, r)
	p.maybeShrinkLocked()
	return nil
}

// FreeN frees a batch of pages.
func (p *Pool) FreeN(refs []Ref) error {
	for _, r := range refs {
		if err := p.Free(r); err != nil {
			return err
		}
	}
	return nil
}

// maybeShrinkLocked truncates free pages off the file tail when the pool
// is above the shrink threshold. To avoid syscall thrash under
// alloc/free churn (shrink one page, regrow a chunk, repeat), the whole
// free tail run is truncated in one ftruncate, and only when it exceeds
// twice the grow chunk; one grow chunk of slack is kept.
func (p *Pool) maybeShrinkLocked() {
	if p.pages <= p.cfg.ShrinkThresholdPages {
		return
	}
	ps := int64(sys.PageSize())
	inFree := make(map[Ref]struct{}, len(p.free))
	for _, r := range p.free {
		inFree[r] = struct{}{}
	}
	// Length of the contiguous free run ending at the file tail.
	run := 0
	for run < p.pages {
		tail := Ref(int64(p.pages-1-run) * ps)
		if _, ok := inFree[tail]; !ok {
			break
		}
		run++
	}
	slack := p.cfg.GrowChunkPages
	if run < 2*slack {
		return
	}
	cut := run - slack
	if p.pages-cut < p.cfg.ShrinkThresholdPages {
		cut = p.pages - p.cfg.ShrinkThresholdPages
	}
	if cut <= 0 {
		return
	}
	newPages := p.pages - cut
	// Detach the window region beyond the new EOF first: a mapped page
	// past EOF would SIGBUS on access.
	addr := p.window + uintptr(int64(newPages)*ps)
	if err := sys.MapAnonFixed(addr, cut*int(ps)); err != nil {
		return
	}
	if err := sys.Ftruncate(p.fd, int64(newPages)*ps); err != nil {
		return
	}
	limit := Ref(int64(newPages) * ps)
	kept := p.free[:0]
	for _, r := range p.free {
		if r < limit {
			kept = append(kept, r)
		}
	}
	p.free = kept
	p.pages = newPages
	p.stats.Shrinks++
}

// Page returns the byte view of page r through the stable window.
func (p *Pool) Page(r Ref) []byte {
	return sys.Bytes(p.Addr(r), sys.PageSize())
}

// pageLocked is Page without re-entering the lock (callers hold p.mu).
func (p *Pool) pageLocked(r Ref) []byte {
	return sys.Bytes(p.window+uintptr(int64(r)), sys.PageSize())
}

// Addr returns the stable window address of page r.
func (p *Pool) Addr(r Ref) uintptr {
	return p.window + uintptr(int64(r))
}

// RefOf inverts Addr: given a window address of a pooled page, it returns
// the page's file offset. This is the linear v_pool→p_pool mapping the
// shortcut construction exploits (paper §2.1).
func (p *Pool) RefOf(addr uintptr) (Ref, error) {
	ps := uintptr(sys.PageSize())
	if addr < p.window {
		return NoRef, fmt.Errorf("pool: address %#x below window", addr)
	}
	off := addr - p.window
	p.mu.Lock()
	pages := p.pages
	p.mu.Unlock()
	if off >= uintptr(pages)*ps {
		return NoRef, fmt.Errorf("pool: address %#x beyond window", addr)
	}
	return Ref(off - off%ps), nil
}

// Stats returns a snapshot of pool statistics.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.FilePages = p.pages
	s.UsedPages = p.used
	s.FreePages = len(p.free)
	return s
}

// Close releases the window and the main-memory file. Pages handed out
// become invalid.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	var firstErr error
	if err := sys.Unmap(p.window, p.cfg.MaxPages*sys.PageSize()); err != nil {
		firstErr = err
	}
	if err := sys.CloseFD(p.fd); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

func clearPage(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

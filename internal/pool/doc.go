// Package pool implements the self-managed pool of physical pages that
// memory rewiring requires (paper §2.1). The pool is represented by a
// single main-memory file created with memfd_create. It resizes on demand
// at page granularity via ftruncate, keeps a FIFO queue of free page
// offsets for reuse, and maintains a stable virtual window (v_pool) that
// maps linearly onto the entire file so every physical page is always
// addressable.
//
// All physical memory of nodes that a shortcut may ever point to must be
// allocated from this pool: a shortcut directory slot is populated by
// mmap'ing the slot's virtual page onto the leaf's file offset, and the
// construction recovers that offset from the leaf's window address via
// offset = addr - window. Rewiring a slot is therefore one mmap(MAP_FIXED)
// over the memfd — the page table itself becomes the index's inner node.
//
// A Pool is safe for concurrent use: one internal mutex serializes
// allocation, free and window management. That makes a single pool
// shareable between the shards of a sharded store (vmshortcut.WithShards)
// and the asynchronous mapper threads of Shortcut-EH tables — though
// shards default to one pool each, which keeps allocation uncontended and
// lets Close release each shard's file independently.
package pool

package pool

import (
	"errors"
	"testing"
	"testing/quick"

	"vmshortcut/internal/sys"
)

func newTestPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestAllocReturnsZeroedDistinctPages(t *testing.T) {
	p := newTestPool(t, Config{})
	refs, err := p.AllocN(16)
	if err != nil {
		t.Fatalf("AllocN: %v", err)
	}
	seen := map[Ref]bool{}
	for _, r := range refs {
		if seen[r] {
			t.Fatalf("page %d handed out twice", r)
		}
		seen[r] = true
		pg := p.Page(r)
		for i, b := range pg {
			if b != 0 {
				t.Fatalf("page %d byte %d = %d, want 0", r, i, b)
			}
		}
	}
}

func TestPageWritesAreIsolated(t *testing.T) {
	p := newTestPool(t, Config{})
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	p.Page(a)[0] = 1
	p.Page(b)[0] = 2
	if p.Page(a)[0] != 1 || p.Page(b)[0] != 2 {
		t.Fatal("pages alias each other")
	}
}

func TestFreeRecyclesAndZeroes(t *testing.T) {
	p := newTestPool(t, Config{GrowChunkPages: 4, MaxPages: 8})
	var refs []Ref
	for i := 0; i < 8; i++ {
		r, err := p.Alloc()
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		p.Page(r)[0] = byte(i + 1)
		refs = append(refs, r)
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("Alloc beyond MaxPages = %v, want ErrExhausted", err)
	}
	if err := p.Free(refs[3]); err != nil {
		t.Fatalf("Free: %v", err)
	}
	r, err := p.Alloc()
	if err != nil {
		t.Fatalf("Alloc after free: %v", err)
	}
	if r != refs[3] {
		t.Fatalf("expected recycled page %d, got %d", refs[3], r)
	}
	if p.Page(r)[0] != 0 {
		t.Fatal("recycled page not zeroed")
	}
}

func TestShrinkTruncatesTail(t *testing.T) {
	p := newTestPool(t, Config{GrowChunkPages: 1, ShrinkThresholdPages: 2, MaxPages: 64})
	refs, err := p.AllocN(16)
	if err != nil {
		t.Fatalf("AllocN: %v", err)
	}
	before := p.Stats()
	if before.FilePages < 16 {
		t.Fatalf("file should hold >= 16 pages, has %d", before.FilePages)
	}
	// Free from the tail inward: the file should shrink down to the
	// threshold (2 pages) plus whatever is still used.
	for i := len(refs) - 1; i >= 4; i-- {
		if err := p.Free(refs[i]); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	after := p.Stats()
	if after.Shrinks == 0 {
		t.Fatal("expected at least one shrink")
	}
	if after.FilePages >= before.FilePages {
		t.Fatalf("file did not shrink: %d -> %d", before.FilePages, after.FilePages)
	}
	// Remaining pages must still be readable and hold their data.
	p.Page(refs[0])[5] = 42
	if p.Page(refs[0])[5] != 42 {
		t.Fatal("surviving page lost data after shrink")
	}
}

func TestFreeMiddleGoesToQueue(t *testing.T) {
	p := newTestPool(t, Config{GrowChunkPages: 1, ShrinkThresholdPages: 1, MaxPages: 64})
	refs, _ := p.AllocN(4)
	if err := p.Free(refs[1]); err != nil {
		t.Fatalf("Free: %v", err)
	}
	s := p.Stats()
	if s.FreePages != 1 {
		t.Fatalf("free queue = %d, want 1", s.FreePages)
	}
	r, _ := p.Alloc()
	if r != refs[1] {
		t.Fatalf("middle page not recycled: got %d want %d", r, refs[1])
	}
}

func TestAllocContiguous(t *testing.T) {
	p := newTestPool(t, Config{GrowChunkPages: 2, MaxPages: 256})
	run, err := p.AllocContiguous(8)
	if err != nil {
		t.Fatalf("AllocContiguous: %v", err)
	}
	ps := sys.PageSize()
	for i := 0; i < 8; i++ {
		pg := sys.Bytes(p.Addr(run+Ref(i*ps)), ps)
		pg[0] = byte(i)
	}
	for i := 0; i < 8; i++ {
		if p.Page(run + Ref(i*ps))[0] != byte(i) {
			t.Fatalf("contiguous page %d corrupted", i)
		}
	}
}

func TestRefOfInvertsAddr(t *testing.T) {
	p := newTestPool(t, Config{})
	refs, _ := p.AllocN(5)
	for _, r := range refs {
		got, err := p.RefOf(p.Addr(r))
		if err != nil {
			t.Fatalf("RefOf: %v", err)
		}
		if got != r {
			t.Fatalf("RefOf(Addr(%d)) = %d", r, got)
		}
		// Interior address must round down to the page ref.
		got, err = p.RefOf(p.Addr(r) + 123)
		if err != nil || got != r {
			t.Fatalf("RefOf interior = %d, %v", got, err)
		}
	}
	if _, err := p.RefOf(p.Window() - 1); err == nil {
		t.Fatal("RefOf below window should fail")
	}
}

func TestFreeValidation(t *testing.T) {
	p := newTestPool(t, Config{})
	if _, err := p.AllocN(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(Ref(12345)); err == nil {
		t.Fatal("Free of unaligned ref should fail")
	}
	if err := p.Free(Ref(1 << 40)); err == nil {
		t.Fatal("Free beyond file should fail")
	}
}

func TestClosedPool(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := p.Alloc()
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Alloc on closed = %v", err)
	}
	if err := p.Free(r); !errors.Is(err, ErrClosed) {
		t.Fatalf("Free on closed = %v", err)
	}
}

func TestGrowFailureRollsBack(t *testing.T) {
	p := newTestPool(t, Config{GrowChunkPages: 1})
	boom := errors.New("boom")
	sys.SetFaultHook(func(op sys.Op) error {
		if op == sys.OpFtruncate {
			return boom
		}
		return nil
	})
	_, err := p.Alloc()
	sys.SetFaultHook(nil)
	if !errors.Is(err, boom) {
		t.Fatalf("Alloc during fault = %v, want boom", err)
	}
	// Pool must still be usable after the fault clears.
	r, err := p.Alloc()
	if err != nil {
		t.Fatalf("Alloc after fault: %v", err)
	}
	p.Page(r)[0] = 7
}

func TestStatsAccounting(t *testing.T) {
	p := newTestPool(t, Config{GrowChunkPages: 4})
	refs, _ := p.AllocN(6)
	for _, r := range refs[:3] {
		p.Free(r)
	}
	s := p.Stats()
	if s.Allocs != 6 || s.Frees != 3 || s.UsedPages != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.PeakPages < 6 {
		t.Fatalf("peak = %d, want >= 6", s.PeakPages)
	}
}

// TestQuickAllocFreeInvariant drives random alloc/free sequences and checks
// that the pool never double-hands-out a live page and that used+free
// accounting stays consistent.
func TestQuickAllocFreeInvariant(t *testing.T) {
	p := newTestPool(t, Config{GrowChunkPages: 2, ShrinkThresholdPages: 4, MaxPages: 512})
	live := map[Ref]byte{}
	seq := byte(0)

	step := func(op uint8, _ uint16) bool {
		if op%3 != 0 || len(live) == 0 { // bias toward alloc
			r, err := p.Alloc()
			if err != nil {
				return false
			}
			if _, dup := live[r]; dup {
				t.Errorf("page %d handed out while live", r)
				return false
			}
			seq++
			p.Page(r)[100] = seq
			live[r] = seq
		} else {
			for r := range live {
				if p.Page(r)[100] != live[r] {
					t.Errorf("page %d lost its marker", r)
					return false
				}
				if err := p.Free(r); err != nil {
					return false
				}
				delete(live, r)
				break
			}
		}
		s := p.Stats()
		return s.UsedPages == len(live) && s.FilePages >= s.UsedPages
	}
	if err := quick.Check(step, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	p := newTestPool(t, Config{GrowChunkPages: 8, MaxPages: 4096})
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var mine []Ref
			for i := 0; i < 200; i++ {
				r, err := p.Alloc()
				if err != nil {
					done <- err
					return
				}
				p.Page(r)[0] = byte(w + 1)
				mine = append(mine, r)
				if len(mine) > 10 {
					r := mine[0]
					mine = mine[1:]
					if p.Page(r)[0] != byte(w+1) {
						done <- errors.New("page corrupted by another worker")
						return
					}
					if err := p.Free(r); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

package vmsim

import "testing"

func TestMapHugeTranslates(t *testing.T) {
	m := New(Config{})
	m.MapHuge(3, 7) // vaddrs [3*2MB, 4*2MB) -> paddrs [7*2MB, 8*2MB)
	// Any 4 KB page inside the huge frame must translate.
	vaddr := uint64(3)<<21 + 5<<12 + 123
	c, err := m.Access(vaddr)
	if err != nil {
		t.Fatalf("Access under huge mapping: %v", err)
	}
	if c <= 0 {
		t.Fatal("no cost charged")
	}
	// Second access: huge-TLB hit, only the (overlapped) data ref.
	c2, err := m.Access(vaddr)
	if err != nil {
		t.Fatal(err)
	}
	if want := m.Config().LatL1 / m.Config().MLP; c2 != want {
		t.Fatalf("huge-TLB-hit access = %.2f, want %.2f", c2, want)
	}
}

func TestHugeWalkIsShorter(t *testing.T) {
	// A 2 MB walk reads 3 entries; a 4 KB walk reads 4. With cold caches
	// and cold TLBs, the huge access must be cheaper.
	small := New(Config{})
	small.Map(1<<18, 42)
	huge := New(Config{})
	huge.MapHuge(1<<9, 42)

	cs, err := small.Access(uint64(1) << 30)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := huge.Access(uint64(1) << 30)
	if err != nil {
		t.Fatal(err)
	}
	if ch >= cs {
		t.Fatalf("huge walk %.1f >= 4K walk %.1f", ch, cs)
	}
}

func TestHugeShadowsSmall(t *testing.T) {
	m := New(Config{})
	m.Map(512, 1000)  // 4 KB mapping inside huge frame 1
	m.MapHuge(1, 500) // huge frame 1 -> huge phys frame 500
	ppn, _, err := m.translate(512)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(500)<<9 | 0; ppn != want {
		t.Fatalf("translate = %#x, want huge-derived %#x", ppn, want)
	}
}

func TestHugeTLBReach(t *testing.T) {
	// 4096 pages of working set: thrashes the 4 KB TLBs (needs walks),
	// but 8 huge pages sit entirely in the huge TLB.
	cfg := Config{TLB1Entries: 64, TLB1Ways: 4, TLB2Entries: 256, TLB2Ways: 4}
	smallPages := New(cfg)
	for p := uint64(0); p < 4096; p++ {
		smallPages.Map(p, p)
	}
	hugePages := New(cfg)
	for h := uint64(0); h < 8; h++ {
		hugePages.MapHuge(h, h)
	}

	var smallCost, hugeCost float64
	for r := 0; r < 3; r++ {
		for p := uint64(0); p < 4096; p++ {
			c1 := smallPages.MustAccess(p << 12)
			c2 := hugePages.MustAccess(p << 12)
			if r > 0 { // skip the cold pass
				smallCost += c1
				hugeCost += c2
			}
		}
	}
	if hugeCost >= smallCost/2 {
		t.Fatalf("huge pages should at least halve translation cost: %.0f vs %.0f",
			hugeCost, smallCost)
	}
	if w := hugePages.Stats().Walks; w > 16 {
		t.Fatalf("huge mapping still walked %d times", w)
	}
}

func TestMapHugeInvalidatesStaleEntry(t *testing.T) {
	m := New(Config{})
	m.MapHuge(2, 10)
	m.MustAccess(2 << 21) // cache the translation
	m.MapHuge(2, 20)      // remap must invalidate
	ppn, _, err := m.translate(2 << 9)
	if err != nil {
		t.Fatal(err)
	}
	if ppn>>9 != 20 {
		t.Fatalf("stale huge translation survived: ppn=%#x", ppn)
	}
}

package vmsim

// Machine models a small multi-core system for the TLB-shootdown analysis
// (paper §3.3, Figure 5): all cores share one page table, but each core
// has private TLBs and caches. TLBs have no hardware coherency, so a core
// that remaps a page must have the OS deliver inter-processor interrupts
// (IPIs) to every other core running the process — the cost lands on the
// *shooting* core, while readers merely lose a TLB entry and re-walk.
type Machine struct {
	cfg   Config
	pt    *pageTable
	cores []*MMU
}

// NewMachine creates a machine with n cores sharing one page table.
func NewMachine(cfg Config, n int) *Machine {
	cfg.fill()
	ma := &Machine{cfg: cfg, pt: newPageTable(uint64(1) << cfg.PageShift)}
	for i := 0; i < n; i++ {
		c := New(cfg)
		c.pt = ma.pt // share the page table
		ma.cores = append(ma.cores, c)
	}
	return ma
}

// Core returns core i's MMU for issuing accesses.
func (ma *Machine) Core(i int) *MMU { return ma.cores[i] }

// Cores returns the number of cores.
func (ma *Machine) Cores() int { return len(ma.cores) }

// Remap performs one mmap(MAP_FIXED)-style remap of npages pages at vpn
// onto ppn from core shooter, while the cores listed in active are
// concurrently running threads of the same process. The shooting core is
// charged the remap plus one IPI per active remote core; each remote core
// loses its TLB entries for the remapped pages (counted as shootdowns).
// Returns the cost charged to the shooter.
func (ma *Machine) Remap(shooter int, vpn, ppn uint64, npages int, active []int) float64 {
	sc := ma.cores[shooter]
	cost := sc.cfg.LatRemap
	for i := 0; i < npages; i++ {
		v, p := vpn+uint64(i), ppn+uint64(i)
		ma.pt.insert(v, p)
		sc.tlb1.invalidate(v)
		sc.tlb2.invalidate(v)
	}
	sc.stats.Remaps++
	remotes := 0
	for _, a := range active {
		if a == shooter {
			continue
		}
		remotes++
		rc := ma.cores[a]
		for i := 0; i < npages; i++ {
			v := vpn + uint64(i)
			if rc.tlb1.invalidate(v) {
				rc.stats.Shootdowns++
			}
			if rc.tlb2.invalidate(v) {
				rc.stats.Shootdowns++
			}
		}
	}
	cost += float64(remotes) * sc.cfg.LatIPI
	sc.timeNS += cost
	return cost
}

// MapShared installs a translation visible to every core without charging
// anyone (setup helper for experiments).
func (ma *Machine) MapShared(vpn, ppn uint64, npages int) {
	for i := 0; i < npages; i++ {
		ma.pt.insert(vpn+uint64(i), ppn+uint64(i))
	}
}

// Package vmsim is a deterministic software simulation of the virtual
// memory subsystem the paper's technique exploits: a 4-level radix page
// table walked by a hardware page-table walker, a two-level
// set-associative TLB, and a three-level set-associative data cache
// hierarchy in front of DRAM.
//
// The real-hardware experiments of the paper (Table 1, Figures 2, 4, 5)
// depend on TLB reach, page-walk locality, and TLB-shootdown IPIs —
// effects that are noisy or virtualised away inside VMs and containers.
// vmsim regenerates the *shape* of those results deterministically: every
// Access returns a cost in simulated nanoseconds derived from which level
// of the TLB/cache hierarchy served it, and page-table entries live at
// simulated physical addresses so page walks compete for cache space with
// the data they translate — the mechanism behind the fan-in crossover of
// Figure 4.
//
// The default parameters mirror the paper's Intel i7-12700KF test machine
// (§3): L1 TLB with 256 entries for 4 KB pages, L2 TLB with 3072 entries.
package vmsim

// Config describes the simulated machine. Zero fields take the defaults of
// the paper's evaluation platform.
type Config struct {
	// PageShift is log2 of the page size. Default 12 (4 KB pages).
	PageShift uint

	// TLB geometry. Defaults: 256-entry 4-way L1, 3072-entry 12-way L2
	// (i7-12700KF, 4 KB pages).
	TLB1Entries, TLB1Ways int
	TLB2Entries, TLB2Ways int

	// Data cache geometry. Defaults: 48 KB 12-way L1D, 1.25 MB 10-way L2,
	// 25 MB 10-way shared L3, 64 B lines.
	L1Size, L1Ways int
	L2Size, L2Ways int
	L3Size, L3Ways int
	LineSize       int

	// Latencies in simulated nanoseconds.
	LatL1      float64 // L1D hit. Default 1.
	LatL2      float64 // L2 hit. Default 4.
	LatL3      float64 // L3 hit. Default 14.
	LatDRAM    float64 // DRAM access. Default 80.
	LatTLB1    float64 // added when L1 TLB misses but L2 TLB hits. Default 7.
	LatFault   float64 // soft page fault (kernel entry, PTE insert). Default 1600.
	LatRemap   float64 // base cost of one mmap(MAP_FIXED) remap. Default 450.
	LatIPI     float64 // TLB-shootdown IPI cost per active remote core. Default 120.
	LatPopMmap float64 // per-page cost of MAP_POPULATE population. Default 74.

	// MLP is the memory-level-parallelism factor: out-of-order cores
	// overlap independent data misses across loop iterations, dividing
	// their effective cost, while page-table walks are chains of dependent
	// loads that cannot overlap. Data-access costs are divided by MLP;
	// walk references are charged in full. Default 4.
	MLP float64

	// NestedPaging models running inside a VM with hardware-assisted
	// nested paging (Intel EPT / AMD NPT): every guest page-table entry
	// read during a walk must itself be translated through the host's
	// page table, multiplying walk memory references. With 4-level guest
	// and host tables a worst-case 2D walk is 24 references instead of 4.
	// This is the knob that reproduces this repo's cloud-VM measurements
	// (see EXPERIMENTS.md): TLB misses become so expensive that the
	// shortcut's fan-in crossover drops below 2.
	NestedPaging bool
	// EPTLevels is the depth of the host page table for NestedPaging.
	// Default 4.
	EPTLevels int

	// PageWalkCache enables the paging-structure caches (PWC): partial
	// translations of the upper page-table levels are cached so most TLB
	// misses read only the final PTE instead of all four levels. Off by
	// default to keep the base model simple; enable to study how PWCs
	// soften the shortcut's TLB-thrashing penalty.
	PageWalkCache bool
}

func (c *Config) fill() {
	if c.PageShift == 0 {
		c.PageShift = 12
	}
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.TLB1Entries, 256)
	def(&c.TLB1Ways, 4)
	def(&c.TLB2Entries, 3072)
	def(&c.TLB2Ways, 12)
	def(&c.L1Size, 48<<10)
	def(&c.L1Ways, 12)
	def(&c.L2Size, 1280<<10)
	def(&c.L2Ways, 10)
	def(&c.L3Size, 25<<20)
	def(&c.L3Ways, 10)
	def(&c.LineSize, 64)
	deff := func(v *float64, d float64) {
		if *v <= 0 {
			*v = d
		}
	}
	deff(&c.LatL1, 1)
	deff(&c.LatL2, 4)
	deff(&c.LatL3, 14)
	deff(&c.LatDRAM, 80)
	deff(&c.LatTLB1, 7)
	deff(&c.LatFault, 1600)
	deff(&c.LatRemap, 450)
	deff(&c.LatIPI, 120)
	deff(&c.LatPopMmap, 74)
	deff(&c.MLP, 4)
	def(&c.EPTLevels, 4)
}

// Stats counts simulator events.
type Stats struct {
	Accesses   uint64
	TLB1Hits   uint64
	TLB2Hits   uint64
	Walks      uint64 // full page-table walks (both TLBs missed)
	PageFaults uint64
	L1Hits     uint64
	L2Hits     uint64
	L3Hits     uint64
	DRAM       uint64
	Remaps     uint64
	Shootdowns uint64 // remote TLB invalidations delivered
	EPTRefs    uint64 // host page-table reads issued by nested walks
	PWCSkips   uint64 // page-table levels skipped thanks to the walk caches
}

package vmsim

// The simulated page table is a 4-level radix tree with 512 children per
// node, mirroring x86-64: a 48-bit virtual address is translated using
// four 9-bit indices. Each node occupies one simulated physical page, so a
// page-table walk issues four memory references that compete for cache
// space with the application's data — exactly the effect that makes wide
// shortcut nodes pay for their larger virtual footprint (Figure 4).

const (
	ptFanout    = 512
	ptIdxBits   = 9
	ptLevels    = 4
	ptEntrySize = 8
)

// ptNode is one radix node. Upper levels use children; the leaf level
// stores ppn+1 in entries (0 = not present).
type ptNode struct {
	children [ptFanout]*ptNode
	entries  []uint64 // allocated only at leaf level
	// hugeEntries holds 2 MB translations (hppn+1) at the PMD level,
	// shadowing any 4 KB subtree below the same index (see huge.go).
	hugeEntries []uint64
	paddr       uint64 // simulated physical address of this node
}

// pageTable is the 4-level radix tree plus a bump allocator for the
// simulated physical addresses of its nodes.
type pageTable struct {
	root      *ptNode
	nextPaddr uint64
	pageSize  uint64
	nodes     int
}

// ptRegionBase places page-table node pages in a high physical region so
// they never collide with data pages, yet still index into the same
// simulated caches.
const ptRegionBase = uint64(1) << 46

func newPageTable(pageSize uint64) *pageTable {
	pt := &pageTable{nextPaddr: ptRegionBase, pageSize: pageSize}
	pt.root = pt.newNode(false)
	return pt
}

func (pt *pageTable) newNode(leaf bool) *ptNode {
	n := &ptNode{paddr: pt.nextPaddr}
	pt.nextPaddr += pt.pageSize
	pt.nodes++
	if leaf {
		n.entries = make([]uint64, ptFanout)
	}
	return n
}

// indices splits a vpn into the four per-level radix indices, most
// significant first.
func indices(vpn uint64) [ptLevels]uint64 {
	var idx [ptLevels]uint64
	for l := ptLevels - 1; l >= 0; l-- {
		idx[l] = vpn & (ptFanout - 1)
		vpn >>= ptIdxBits
	}
	return idx
}

// walk descends the tree for vpn and returns, per level, the simulated
// physical address of the entry the hardware walker reads. If the
// translation exists, ppn holds it. The walk stops early at a missing
// node; levels reports how many entry reads happened.
func (pt *pageTable) walk(vpn uint64) (refs [ptLevels]uint64, levels int, ppn uint64, ok bool) {
	n := pt.root
	idx := indices(vpn)
	for l := 0; l < ptLevels; l++ {
		refs[l] = n.paddr + idx[l]*ptEntrySize
		levels = l + 1
		if l == ptLevels-1 {
			e := n.entries[idx[l]]
			if e == 0 {
				return refs, levels, 0, false
			}
			return refs, levels, e - 1, true
		}
		next := n.children[idx[l]]
		if next == nil {
			return refs, levels, 0, false
		}
		n = next
	}
	return refs, levels, 0, false
}

// insert maps vpn → ppn, allocating intermediate nodes as needed.
func (pt *pageTable) insert(vpn, ppn uint64) {
	n := pt.root
	idx := indices(vpn)
	for l := 0; l < ptLevels-1; l++ {
		next := n.children[idx[l]]
		if next == nil {
			next = pt.newNode(l == ptLevels-2)
			n.children[idx[l]] = next
		}
		n = next
	}
	n.entries[idx[ptLevels-1]] = ppn + 1
}

// remove unmaps vpn, reporting whether a translation existed. Empty
// intermediate nodes are not reclaimed (matching real kernels, which
// reclaim lazily at best).
func (pt *pageTable) remove(vpn uint64) bool {
	n := pt.root
	idx := indices(vpn)
	for l := 0; l < ptLevels-1; l++ {
		next := n.children[idx[l]]
		if next == nil {
			return false
		}
		n = next
	}
	if n.entries[idx[ptLevels-1]] == 0 {
		return false
	}
	n.entries[idx[ptLevels-1]] = 0
	return true
}

// lookup returns the translation without simulating costs.
func (pt *pageTable) lookup(vpn uint64) (uint64, bool) {
	_, _, ppn, ok := pt.walk(vpn)
	return ppn, ok
}

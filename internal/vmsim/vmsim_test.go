package vmsim

import (
	"testing"
	"testing/quick"
)

func TestPageTableInsertWalkRemove(t *testing.T) {
	pt := newPageTable(4096)
	pt.insert(0x12345, 0x777)
	if ppn, ok := pt.lookup(0x12345); !ok || ppn != 0x777 {
		t.Fatalf("lookup = %#x,%v", ppn, ok)
	}
	if _, ok := pt.lookup(0x12346); ok {
		t.Fatal("phantom translation")
	}
	refs, levels, ppn, ok := pt.walk(0x12345)
	if !ok || levels != ptLevels || ppn != 0x777 {
		t.Fatalf("walk = levels %d ppn %#x ok %v", levels, ppn, ok)
	}
	// Entry addresses must be distinct and within the PT region.
	seen := map[uint64]bool{}
	for _, r := range refs {
		if r < ptRegionBase {
			t.Fatalf("PT entry ref %#x below PT region", r)
		}
		if seen[r] {
			t.Fatal("duplicate PT entry refs in one walk")
		}
		seen[r] = true
	}
	if !pt.remove(0x12345) {
		t.Fatal("remove failed")
	}
	if pt.remove(0x12345) {
		t.Fatal("double remove succeeded")
	}
	if _, ok := pt.lookup(0x12345); ok {
		t.Fatal("translation survived remove")
	}
}

func TestPageTableQuickModel(t *testing.T) {
	pt := newPageTable(4096)
	model := map[uint64]uint64{}
	check := func(vRaw uint32, ppn uint64, op uint8) bool {
		vpn := uint64(vRaw % 100000)
		switch op % 3 {
		case 0:
			pt.insert(vpn, ppn)
			model[vpn] = ppn
		case 1:
			got, ok := pt.lookup(vpn)
			want, mok := model[vpn]
			if ok != mok || (ok && got != want) {
				return false
			}
		case 2:
			_, mok := model[vpn]
			if pt.remove(vpn) != mok {
				return false
			}
			delete(model, vpn)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBLRUWithinSet(t *testing.T) {
	tl := newTLB(8, 2) // 4 sets, 2 ways
	// Three vpns in the same set (stride = number of sets).
	tl.insert(0, 100)
	tl.insert(4, 104)
	if _, ok := tl.lookup(0); !ok {
		t.Fatal("entry 0 evicted too early")
	}
	tl.insert(8, 108) // set is full; LRU is vpn 4
	if _, ok := tl.lookup(4); ok {
		t.Fatal("vpn 4 should have been the LRU victim")
	}
	if _, ok := tl.lookup(0); !ok {
		t.Fatal("vpn 0 (recently used) evicted")
	}
	if ppn, ok := tl.lookup(8); !ok || ppn != 108 {
		t.Fatal("vpn 8 missing")
	}
}

func TestCacheLRUAndHits(t *testing.T) {
	c := newCache(1024, 2, 64) // 8 sets, 2 ways
	if c.access(0) {
		t.Fatal("cold access hit")
	}
	if !c.access(0) {
		t.Fatal("warm access missed")
	}
	if !c.access(32) {
		t.Fatal("same line (different offset) missed")
	}
	// Two more lines in set 0: 8 sets * 64 B = 512 B stride.
	c.access(512)
	c.access(0) // refresh 0
	c.access(1024)
	if c.access(512) {
		t.Fatal("LRU victim 512 still cached")
	}
}

func TestAccessCostOrdering(t *testing.T) {
	m := New(Config{})
	m.AutoFault = true
	// First access: page fault + walk + DRAM — the most expensive.
	cFault, err := m.Access(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	// Second access to the same line: TLB hit + L1 hit — the cheapest.
	cHot, _ := m.Access(0x1008)
	if cHot >= cFault {
		t.Fatalf("hot %.1f >= faulting %.1f", cHot, cFault)
	}
	if want := m.Config().LatL1 / m.Config().MLP; cHot != want {
		t.Fatalf("hot access = %.2f, want overlapped L1 %.2f", cHot, want)
	}
	st := m.Stats()
	if st.PageFaults != 1 || st.Walks == 0 || st.TLB1Hits == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if m.Time() != cFault+cHot {
		t.Fatalf("clock %.1f != %.1f", m.Time(), cFault+cHot)
	}
}

func TestUnmappedAccessErrorsWithoutAutoFault(t *testing.T) {
	m := New(Config{})
	if _, err := m.Access(0x5000); err == nil {
		t.Fatal("unmapped access should error")
	}
	m.Map(5, 77)
	if _, err := m.Access(0x5000); err != nil {
		t.Fatalf("mapped access failed: %v", err)
	}
	if ppn, ok := m.Mapped(5); !ok || ppn != 77 {
		t.Fatalf("Mapped = %d,%v", ppn, ok)
	}
}

func TestPopulateAvoidsFaults(t *testing.T) {
	m := New(Config{})
	m.AutoFault = true
	const pages = 64
	m.Populate(100, pages)
	for i := uint64(0); i < pages; i++ {
		if _, err := m.Access((100 + i) << 12); err != nil {
			t.Fatal(err)
		}
	}
	if f := m.Stats().PageFaults; f != 0 {
		t.Fatalf("%d faults despite populate", f)
	}

	// Lazy variant for comparison: every first touch faults.
	lazy := New(Config{})
	lazy.AutoFault = true
	for i := uint64(0); i < pages; i++ {
		lazy.Access((200 + i) << 12)
	}
	if f := lazy.Stats().PageFaults; f != pages {
		t.Fatalf("lazy faults = %d, want %d", f, pages)
	}
}

func TestRemapDropsTLBEntry(t *testing.T) {
	m := New(Config{})
	m.Map(1, 10)
	m.Access(1 << 12) // loads TLB
	w1 := m.Stats().Walks
	m.Access(1 << 12)
	if m.Stats().Walks != w1 {
		t.Fatal("second access should TLB-hit")
	}
	m.RemapCost(1, 20, 1)
	m.Access(1 << 12)
	if m.Stats().Walks != w1+1 {
		t.Fatal("remap must force a re-walk")
	}
	if ppn, _ := m.Mapped(1); ppn != 20 {
		t.Fatalf("remap lost: ppn = %d", ppn)
	}
}

func TestTLBReachEffect(t *testing.T) {
	// Accessing a working set within TLB reach must be much cheaper per
	// access than one far beyond it — the mechanism behind Figure 4.
	cfg := Config{}
	small := New(cfg)
	small.AutoFault = true
	big := New(cfg)
	big.AutoFault = true

	const rounds = 4
	// Small: 128 pages (fits the 256-entry L1 TLB).
	for r := 0; r < rounds; r++ {
		for p := uint64(0); p < 128; p++ {
			small.Access(p << 12)
		}
	}
	// Big: 16384 pages (beyond even the L2 TLB).
	for r := 0; r < rounds; r++ {
		for p := uint64(0); p < 16384; p++ {
			big.Access(p << 12)
		}
	}
	smallPer := small.Time() / float64(small.Stats().Accesses)
	bigPer := big.Time() / float64(big.Stats().Accesses)
	if smallPer >= bigPer {
		t.Fatalf("TLB reach has no effect: small %.2f >= big %.2f", smallPer, bigPer)
	}
}

func TestMachineShootdownCosts(t *testing.T) {
	ma := NewMachine(Config{}, 8)
	ma.MapShared(0, 0, 1024)

	// Remap with no active remotes: base cost only.
	base := ma.Remap(0, 5, 2000, 1, nil)
	// Remap with 7 active remotes: base + 7 IPIs.
	withReaders := ma.Remap(0, 6, 2001, 1, []int{1, 2, 3, 4, 5, 6, 7})
	cfg := ma.Core(0).Config()
	if base != cfg.LatRemap {
		t.Fatalf("base remap = %.1f, want %.1f", base, cfg.LatRemap)
	}
	want := cfg.LatRemap + 7*cfg.LatIPI
	if withReaders != want {
		t.Fatalf("remap w/ 7 readers = %.1f, want %.1f", withReaders, want)
	}
	if withReaders <= base {
		t.Fatal("shootdowns must penalize the shooter")
	}
}

func TestMachineReadersBarelyAffected(t *testing.T) {
	// Paper §3.3: shootdowns slow the shooter, not the targeted readers.
	ma := NewMachine(Config{}, 2)
	const pages = 4096
	ma.MapShared(0, 0, pages)

	reader := ma.Core(1)
	// Warm pass without shootdowns.
	for p := uint64(0); p < pages; p++ {
		reader.MustAccess(p << 12)
	}
	reader.ResetTime()
	for p := uint64(0); p < pages; p++ {
		reader.MustAccess(p << 12)
	}
	quiet := reader.Time()

	// Same pass with the shooter remapping 512 random-ish pages.
	reader.ResetTime()
	for p := uint64(0); p < pages; p++ {
		if p%8 == 0 {
			ma.Remap(0, (p*37)%pages, 1<<20+p, 1, []int{1})
		}
		reader.MustAccess(p << 12)
	}
	noisy := reader.Time()
	if noisy > quiet*1.5 {
		t.Fatalf("reader slowed too much by shootdowns: %.0f vs %.0f", noisy, quiet)
	}
	if ma.Core(1).Stats().Shootdowns == 0 {
		t.Fatal("no shootdowns were delivered")
	}
}

func TestPageTableNodesGrow(t *testing.T) {
	m := New(Config{})
	before := m.PageTableNodes()
	for v := uint64(0); v < 10_000; v += 512 {
		m.Map(v, v)
	}
	if m.PageTableNodes() <= before {
		t.Fatal("page table did not allocate nodes")
	}
}

func TestWalkCompetesForCache(t *testing.T) {
	// A huge data working set must evict page-table nodes from the caches,
	// making walks expensive (DRAM refs from PT region).
	m := New(Config{})
	m.AutoFault = true
	for p := uint64(0); p < 1_000_000; p += 7 {
		m.Access(p << 12)
	}
	st := m.Stats()
	if st.DRAM == 0 {
		t.Fatal("no DRAM accesses in a 4 GB working set")
	}
	if st.Walks == 0 {
		t.Fatal("no walks despite TLB-thrashing working set")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		m := New(Config{})
		m.AutoFault = true
		x := uint64(12345)
		for i := 0; i < 50000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			m.Access((x % (1 << 22)) << 3)
		}
		return m.Time()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("simulation not deterministic: %.2f != %.2f", a, b)
	}
}

package vmsim

import (
	"testing"
	"testing/quick"
)

// refCache is a straightforward reference implementation of a
// set-associative LRU cache, used to property-check the optimized one.
type refCache struct {
	sets      map[uint64][]uint64 // set index -> line tags, MRU first
	ways      int
	lineShift uint
	setMask   uint64
}

func newRefCache(size, ways, lineSize int) *refCache {
	lines := size / lineSize
	numSets := lines / ways
	if numSets < 1 {
		numSets = 1
	}
	for numSets&(numSets-1) != 0 {
		numSets &= numSets - 1
	}
	var shift uint
	for ls := lineSize; ls > 1; ls >>= 1 {
		shift++
	}
	return &refCache{
		sets: map[uint64][]uint64{}, ways: ways,
		lineShift: shift, setMask: uint64(numSets - 1),
	}
}

func (c *refCache) access(paddr uint64) bool {
	line := paddr >> c.lineShift
	set := line & c.setMask
	lst := c.sets[set]
	for i, tag := range lst {
		if tag == line {
			// Move to front (MRU).
			copy(lst[1:i+1], lst[:i])
			lst[0] = line
			return true
		}
	}
	lst = append([]uint64{line}, lst...)
	if len(lst) > c.ways {
		lst = lst[:c.ways]
	}
	c.sets[set] = lst
	return false
}

// TestQuickCacheMatchesReference: the optimized stamp-LRU cache must
// behave identically to the explicit MRU-list reference on random access
// streams.
func TestQuickCacheMatchesReference(t *testing.T) {
	check := func(addrs []uint16) bool {
		fast := newCache(2048, 4, 64) // 8 sets, 4 ways
		ref := newRefCache(2048, 4, 64)
		for _, a := range addrs {
			if fast.access(uint64(a)) != ref.access(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// refTLB mirrors the same approach for the TLB.
type refTLB struct {
	sets    map[uint64][][2]uint64 // set -> [vpn, ppn], MRU first
	ways    int
	setMask uint64
}

func newRefTLB(entries, ways int) *refTLB {
	numSets := entries / ways
	if numSets < 1 {
		numSets = 1
	}
	for numSets&(numSets-1) != 0 {
		numSets &= numSets - 1
	}
	return &refTLB{sets: map[uint64][][2]uint64{}, ways: ways, setMask: uint64(numSets - 1)}
}

func (t *refTLB) lookup(vpn uint64) (uint64, bool) {
	set := vpn & t.setMask
	lst := t.sets[set]
	for i, e := range lst {
		if e[0] == vpn {
			copy(lst[1:i+1], lst[:i])
			lst[0] = e
			return e[1], true
		}
	}
	return 0, false
}

func (t *refTLB) insert(vpn, ppn uint64) {
	set := vpn & t.setMask
	lst := t.sets[set]
	for i, e := range lst {
		if e[0] == vpn {
			copy(lst[1:i+1], lst[:i])
			lst[0] = [2]uint64{vpn, ppn}
			t.sets[set] = lst
			return
		}
	}
	lst = append([][2]uint64{{vpn, ppn}}, lst...)
	if len(lst) > t.ways {
		lst = lst[:t.ways]
	}
	t.sets[set] = lst
}

func TestQuickTLBMatchesReference(t *testing.T) {
	check := func(ops []uint16) bool {
		fast := newTLB(16, 2) // 8 sets, 2 ways
		ref := newRefTLB(16, 2)
		for i, o := range ops {
			vpn := uint64(o % 64)
			if i%3 == 0 {
				fast.insert(vpn, vpn*10)
				ref.insert(vpn, vpn*10)
				continue
			}
			fp, fok := fast.lookup(vpn)
			rp, rok := ref.lookup(vpn)
			if fok != rok || (fok && fp != rp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

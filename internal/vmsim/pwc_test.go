package vmsim

import "testing"

func TestPWCSkipsUpperLevels(t *testing.T) {
	m := New(Config{PageWalkCache: true, TLB1Entries: 4, TLB1Ways: 4, TLB2Entries: 4, TLB2Ways: 4})
	// Map many pages under the same upper-level subtree; tiny TLBs force
	// a walk on almost every access, but the PWC covers the shared upper
	// levels after the first walk.
	const pages = 1 << 10
	for p := uint64(0); p < pages; p++ {
		m.Map(p, p)
	}
	for p := uint64(0); p < pages; p++ {
		m.MustAccess(p << 12)
	}
	st := m.Stats()
	if st.PWCSkips == 0 {
		t.Fatal("walk cache never skipped a level")
	}
	// Nearly every walk after the first should skip 3 levels.
	if st.Walks > 1 && st.PWCSkips < (st.Walks-1)*2 {
		t.Fatalf("PWC too weak: %d skips over %d walks", st.PWCSkips, st.Walks)
	}
}

func TestPWCMakesLocalWalksCheaper(t *testing.T) {
	run := func(pwcOn bool) float64 {
		m := New(Config{
			PageWalkCache: pwcOn,
			TLB1Entries:   4, TLB1Ways: 4, TLB2Entries: 4, TLB2Ways: 4,
		})
		const pages = 1 << 12
		for p := uint64(0); p < pages; p++ {
			m.Map(p, p)
		}
		m.ResetTime()
		for r := 0; r < 3; r++ {
			for p := uint64(0); p < pages; p++ {
				m.MustAccess(p << 12)
			}
		}
		return m.Time()
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("PWC did not help: %.0f vs %.0f", with, without)
	}
}

func TestPWCDisabledByDefault(t *testing.T) {
	m := New(Config{})
	m.Map(1, 1)
	m.MustAccess(1 << 12)
	if m.Stats().PWCSkips != 0 {
		t.Fatal("PWC active without being configured")
	}
}

func TestPWCPrefixMath(t *testing.T) {
	// vpn with distinct 9-bit groups: level prefixes must nest.
	vpn := uint64(5)<<27 | uint64(6)<<18 | uint64(7)<<9 | 8
	p0 := pwcPrefix(vpn, 0)
	p1 := pwcPrefix(vpn, 1)
	p2 := pwcPrefix(vpn, 2)
	if p0 != 5 || p1 != 5<<9|6 || p2 != (5<<9|6)<<9|7 {
		t.Fatalf("prefixes = %d, %d, %d", p0, p1, p2)
	}
}

package vmsim

import "testing"

func TestNestedPagingChargesEPTRefs(t *testing.T) {
	m := New(Config{NestedPaging: true})
	m.Map(5, 5)
	m.MustAccess(5 << 12)
	st := m.Stats()
	if st.EPTRefs == 0 {
		t.Fatal("no EPT references charged on a walk")
	}
	// One 4-level guest walk → 4 entry reads × 4 EPT levels = 16.
	if st.EPTRefs != 16 {
		t.Fatalf("EPTRefs = %d, want 16 for one full walk", st.EPTRefs)
	}
}

func TestNestedPagingMakesWalksMoreExpensive(t *testing.T) {
	run := func(nested bool) float64 {
		m := New(Config{NestedPaging: nested})
		// TLB-thrashing working set so every access walks.
		const pages = 1 << 16
		for p := uint64(0); p < pages; p++ {
			m.Map(p, p)
		}
		x := uint64(99)
		for i := 0; i < 100000; i++ {
			x = x*6364136223846793005 + 1
			m.MustAccess((x % pages) << 12)
		}
		return m.Time()
	}
	native, nested := run(false), run(true)
	if nested <= native*1.2 {
		t.Fatalf("nested paging too cheap: %.0f vs native %.0f", nested, native)
	}
}

func TestNestedPagingNoCostOnTLBHit(t *testing.T) {
	m := New(Config{NestedPaging: true})
	m.Map(1, 1)
	m.MustAccess(1 << 12) // walk (charges EPT)
	before := m.Stats().EPTRefs
	m.MustAccess(1 << 12) // TLB hit — combined translation is cached
	if m.Stats().EPTRefs != before {
		t.Fatal("TLB hit must not pay EPT refs")
	}
}

package vmsim

import "fmt"

// MMU simulates one core's view of the memory subsystem: its private TLBs,
// the cache hierarchy, and the shared page table. Every Access accumulates
// simulated time; the caller reads Time() afterwards.
//
// An MMU can run in auto-fault mode (AutoFault true), where an access to
// an unmapped page behaves like anonymous memory: it costs a soft page
// fault and maps a fresh physical page — the lazy page-table population of
// Table 1. With AutoFault off, unmapped accesses are an error, catching
// simulation bugs.
type MMU struct {
	cfg Config
	pt  *pageTable

	tlb1, tlb2 *tlb
	hugeTLB    *tlb // dedicated 2 MB-page TLB, created on first MapHuge
	walkCache  *pwc // paging-structure caches (nil unless configured)
	l1, l2, l3 *cache

	// AutoFault enables map-on-access semantics for unmapped pages.
	AutoFault bool

	nextAnonPPN uint64
	timeNS      float64
	stats       Stats
}

// New creates an MMU with the given configuration.
func New(cfg Config) *MMU {
	cfg.fill()
	m := &MMU{
		cfg:         cfg,
		pt:          newPageTable(uint64(1) << cfg.PageShift),
		tlb1:        newTLB(cfg.TLB1Entries, cfg.TLB1Ways),
		tlb2:        newTLB(cfg.TLB2Entries, cfg.TLB2Ways),
		l1:          newCache(cfg.L1Size, cfg.L1Ways, cfg.LineSize),
		l2:          newCache(cfg.L2Size, cfg.L2Ways, cfg.LineSize),
		l3:          newCache(cfg.L3Size, cfg.L3Ways, cfg.LineSize),
		nextAnonPPN: 1 << 30, // anonymous pages live in a high ppn region
	}
	if cfg.PageWalkCache {
		m.walkCache = newPWC()
	}
	return m
}

// Config returns the effective (defaults-filled) configuration.
func (m *MMU) Config() Config { return m.cfg }

// Time returns the accumulated simulated time in nanoseconds.
func (m *MMU) Time() float64 { return m.timeNS }

// ResetTime zeroes the simulated clock (stats and state are kept).
func (m *MMU) ResetTime() { m.timeNS = 0 }

// Stats returns a snapshot of the event counters.
func (m *MMU) Stats() Stats { return m.stats }

// memRef simulates one memory reference to paddr through the cache
// hierarchy and returns its cost.
func (m *MMU) memRef(paddr uint64) float64 {
	if m.l1.access(paddr) {
		m.stats.L1Hits++
		return m.cfg.LatL1
	}
	if m.l2.access(paddr) {
		m.stats.L2Hits++
		return m.cfg.LatL2
	}
	if m.l3.access(paddr) {
		m.stats.L3Hits++
		return m.cfg.LatL3
	}
	m.stats.DRAM++
	return m.cfg.LatDRAM
}

// eptRegionBase places the host (EPT) page-table pages in their own
// simulated physical region, distinct from guest data and guest PT nodes.
const eptRegionBase = uint64(1) << 47

// walkRef charges one guest page-table entry read at guest-physical
// address gpa. Under NestedPaging the hardware walker first translates
// gpa through the host page table: EPTLevels extra reads whose upper
// levels are heavily shared (and thus cache-resident) while the leaf
// level spreads with the guest PT footprint — the 2D-walk cost structure
// of Intel EPT.
func (m *MMU) walkRef(gpa uint64) float64 {
	cost := 0.0
	if m.cfg.NestedPaging {
		for l := 0; l < m.cfg.EPTLevels; l++ {
			shift := uint(12 + 9*(m.cfg.EPTLevels-1-l))
			cost += m.memRef(eptRegionBase + (gpa>>shift)*ptEntrySize)
			m.stats.EPTRefs++
		}
	}
	return cost + m.memRef(gpa)
}

// translate resolves vpn to ppn, simulating TLB lookups and, on a double
// miss, the hardware page-table walk (whose entry reads go through the
// cache hierarchy). Returns the translation cost.
func (m *MMU) translate(vpn uint64) (uint64, float64, error) {
	// Huge mappings shadow 4 KB ones (checked first, like the hardware
	// walker honouring a PMD-level PS bit).
	if ppn, cost, ok := m.translateHuge(vpn); ok {
		return ppn, cost, nil
	}
	if ppn, ok := m.tlb1.lookup(vpn); ok {
		m.stats.TLB1Hits++
		return ppn, 0, nil
	}
	if ppn, ok := m.tlb2.lookup(vpn); ok {
		m.stats.TLB2Hits++
		m.tlb1.insert(vpn, ppn)
		return ppn, m.cfg.LatTLB1, nil
	}
	// Full walk. The paging-structure caches, when enabled, skip the
	// upper levels whose partial translation was walked recently.
	m.stats.Walks++
	cost := m.cfg.LatTLB1
	refs, levels, ppn, ok := m.pt.walk(vpn)
	skip := 0
	if m.walkCache != nil {
		skip = m.walkCache.lookup(vpn)
		if skip > levels {
			skip = levels
		}
		m.stats.PWCSkips += uint64(skip)
	}
	for l := skip; l < levels; l++ {
		cost += m.walkRef(refs[l])
	}
	if m.walkCache != nil && ok {
		m.walkCache.insert(vpn)
	}
	if !ok {
		if !m.AutoFault {
			return 0, cost, fmt.Errorf("vmsim: access to unmapped vpn %#x", vpn)
		}
		// Soft fault: the kernel allocates an anonymous page and inserts
		// the PTE; the walk is then repeated.
		m.stats.PageFaults++
		cost += m.cfg.LatFault
		ppn = m.nextAnonPPN
		m.nextAnonPPN++
		m.pt.insert(vpn, ppn)
		refs2, levels2, _, _ := m.pt.walk(vpn)
		for l := 0; l < levels2; l++ {
			cost += m.walkRef(refs2[l])
		}
	}
	m.tlb1.insert(vpn, ppn)
	m.tlb2.insert(vpn, ppn)
	return ppn, cost, nil
}

// Access simulates one data access to virtual address vaddr and returns
// its cost in simulated nanoseconds (also added to the clock).
func (m *MMU) Access(vaddr uint64) (float64, error) {
	m.stats.Accesses++
	vpn := vaddr >> m.cfg.PageShift
	off := vaddr & ((1 << m.cfg.PageShift) - 1)
	ppn, cost, err := m.translate(vpn)
	if err != nil {
		m.timeNS += cost
		return cost, err
	}
	// Data misses overlap across independent accesses (MLP); translation
	// walks, being dependent load chains, were charged in full above.
	cost += m.memRef(ppn<<m.cfg.PageShift|off) / m.cfg.MLP
	m.timeNS += cost
	return cost, nil
}

// MustAccess is Access for callers that guarantee the page is mapped (or
// AutoFault is on); it panics on unmapped access.
func (m *MMU) MustAccess(vaddr uint64) float64 {
	c, err := m.Access(vaddr)
	if err != nil {
		panic(err)
	}
	return c
}

// Map installs the translation vpn → ppn without simulating cost (the
// caller accounts for the mmap itself, e.g. via RemapCost). The stale TLB
// entry for vpn, if any, is invalidated — this core's TLB only; remote
// cores need Machine.Remap for shootdown accounting.
func (m *MMU) Map(vpn, ppn uint64) {
	m.pt.insert(vpn, ppn)
	m.tlb1.invalidate(vpn)
	m.tlb2.invalidate(vpn)
}

// Unmap removes the translation for vpn, dropping TLB entries — the model
// of mmap over an existing mapping dropping the PTE (paper §2.1 Details).
func (m *MMU) Unmap(vpn uint64) bool {
	m.tlb1.invalidate(vpn)
	m.tlb2.invalidate(vpn)
	return m.pt.remove(vpn)
}

// Mapped reports the current translation for vpn.
func (m *MMU) Mapped(vpn uint64) (uint64, bool) { return m.pt.lookup(vpn) }

// Populate eagerly installs translations for npages pages starting at
// vpn, charging the per-page MAP_POPULATE cost (Table 1 phase 3). Pages
// already mapped are recharged too, like a real MAP_POPULATE re-touch.
func (m *MMU) Populate(vpn uint64, npages int) float64 {
	cost := 0.0
	for i := 0; i < npages; i++ {
		v := vpn + uint64(i)
		if _, ok := m.pt.lookup(v); !ok {
			m.pt.insert(v, m.nextAnonPPN)
			m.nextAnonPPN++
		}
		cost += m.cfg.LatPopMmap
	}
	m.timeNS += cost
	return cost
}

// RemapCost charges the base cost of one mmap(MAP_SHARED|MAP_FIXED) call
// covering npages pages and performs the remap of those pages onto the
// physical pages starting at ppn. TLB entries are invalidated locally.
func (m *MMU) RemapCost(vpn, ppn uint64, npages int) float64 {
	cost := m.cfg.LatRemap
	for i := 0; i < npages; i++ {
		m.Map(vpn+uint64(i), ppn+uint64(i))
	}
	m.stats.Remaps++
	m.timeNS += cost
	return cost
}

// FlushTLB empties all TLB levels and paging-structure caches
// (context-switch model).
func (m *MMU) FlushTLB() {
	m.tlb1.invalidateAll()
	m.tlb2.invalidateAll()
	if m.hugeTLB != nil {
		m.hugeTLB.invalidateAll()
	}
	if m.walkCache != nil {
		m.walkCache.invalidateAll()
	}
}

// DropCaches empties the data caches (cold-start model).
func (m *MMU) DropCaches() {
	m.l1.invalidateAll()
	m.l2.invalidateAll()
	m.l3.invalidateAll()
}

// PageTableNodes reports how many radix nodes the page table allocated —
// the simulated memory footprint of the translation structure itself.
func (m *MMU) PageTableNodes() int { return m.pt.nodes }

package vmsim

// Page-walk caches (PWC) — the MMU structure the basic model omits: real
// walkers cache *partial* translations (PML4E/PDPTE/PDE entries), so a TLB
// miss whose upper page-table levels were recently walked only reads the
// missing lower levels from memory. Intel calls these the paging-structure
// caches; they are the reason adjacent-page walks cost ~1 memory reference
// rather than 4.
//
// Modeling them matters for shortcut analysis: a shortcut node spreads
// accesses over a huge virtual range, but consecutive directory slots
// share upper-level entries — with a PWC the walk cost becomes one PTE
// read for most misses, which is precisely why the paper's shortcut stays
// competitive even while TLB-thrashing.

// pwc caches partial translations per level: key = vpn prefix at that
// level, mapping to the ptNode resolved at the next level down.
type pwc struct {
	levels [ptLevels - 1]*tlb // level l caches the prefix covering levels 0..l
}

// pwcEntries/pwcWays size each paging-structure cache level (small,
// fully-practical values similar to measured Intel parts).
const (
	pwcEntries = 32
	pwcWays    = 4
)

func newPWC() *pwc {
	p := &pwc{}
	for i := range p.levels {
		p.levels[i] = newTLB(pwcEntries, pwcWays)
	}
	return p
}

// prefix returns the vpn prefix that identifies a partial walk through
// level l (0 = root level): the upper (l+1)*9 bits of the vpn.
func pwcPrefix(vpn uint64, l int) uint64 {
	return vpn >> uint(ptIdxBits*(ptLevels-1-l))
}

// lookup returns the deepest cached level (the number of levels that can
// be skipped) for vpn: 0 = nothing cached, up to ptLevels-1.
func (p *pwc) lookup(vpn uint64) int {
	for l := ptLevels - 2; l >= 0; l-- {
		if _, ok := p.levels[l].lookup(pwcPrefix(vpn, l)); ok {
			return l + 1
		}
	}
	return 0
}

// insert caches the partial translations of a completed walk.
func (p *pwc) insert(vpn uint64) {
	for l := 0; l < ptLevels-1; l++ {
		p.levels[l].insert(pwcPrefix(vpn, l), 1)
	}
}

// invalidateAll flushes the paging-structure caches.
func (p *pwc) invalidateAll() {
	for _, t := range p.levels {
		t.invalidateAll()
	}
}

package vmsim

// Huge-page support — the paper's natural future-work direction: a
// shortcut whose neighbouring slots map contiguous physical pages can be
// expressed as a single 2 MB mapping, multiplying TLB reach by 512 and
// shortening the page walk by one level. This only applies at fan-in 1
// (a huge page cannot alias the same 4 KB leaf from many slots), which is
// exactly extendible hashing's directory right after splits complete.
//
// The model mirrors x86-64: a 2 MB translation terminates at the PMD
// level (3 entry reads instead of 4) and is cached in a dedicated small
// L1 TLB for huge pages plus the shared L2 TLB.

const hugeShiftDelta = 9 // 2 MB page = 512 * 4 KB pages

// hugeTLBEntries / hugeTLBWays size the dedicated 2 MB-page L1 TLB
// (32 entries on the paper's i7-12700KF).
const (
	hugeTLBEntries = 32
	hugeTLBWays    = 4
)

// MapHuge installs a 2 MB translation: hvpn and hppn are huge-frame
// numbers (vaddr >> (PageShift+9)). Any 4 KB translations below it are
// shadowed by the walk order (huge entry wins).
func (m *MMU) MapHuge(hvpn, hppn uint64) {
	m.ensureHugeTLB()
	m.pt.insertHuge(hvpn, hppn)
	m.hugeTLB.invalidate(hvpn)
}

func (m *MMU) ensureHugeTLB() {
	if m.hugeTLB == nil {
		m.hugeTLB = newTLB(hugeTLBEntries, hugeTLBWays)
	}
}

// translateHuge attempts a 2 MB translation for vpn (a 4 KB-frame
// number). Returns the physical 4 KB frame, the cost, and whether a huge
// mapping covered the address.
func (m *MMU) translateHuge(vpn uint64) (uint64, float64, bool) {
	if m.hugeTLB == nil {
		return 0, 0, false
	}
	hvpn := vpn >> hugeShiftDelta
	sub := vpn & (1<<hugeShiftDelta - 1)
	if hppn, ok := m.hugeTLB.lookup(hvpn); ok {
		m.stats.TLB1Hits++
		return hppn<<hugeShiftDelta | sub, 0, true
	}
	// Walk: 3 entry reads, terminating at the PMD level.
	refs, levels, hppn, ok := m.pt.walkHuge(hvpn)
	if !ok {
		return 0, 0, false
	}
	m.stats.Walks++
	cost := m.cfg.LatTLB1
	for l := 0; l < levels; l++ {
		cost += m.walkRef(refs[l])
	}
	m.hugeTLB.insert(hvpn, hppn)
	return hppn<<hugeShiftDelta | sub, cost, true
}

// insertHuge stores a 2 MB translation at the PMD level.
func (pt *pageTable) insertHuge(hvpn, hppn uint64) {
	n := pt.root
	idxh := indicesHuge(hvpn)
	for l := 0; l < 2; l++ {
		next := n.children[idxh[l]]
		if next == nil {
			next = pt.newNode(false)
			n.children[idxh[l]] = next
		}
		n = next
	}
	if n.hugeEntries == nil {
		n.hugeEntries = make([]uint64, ptFanout)
	}
	n.hugeEntries[idxh[2]] = hppn + 1
}

// walkHuge walks 3 levels for a huge-frame number.
func (pt *pageTable) walkHuge(hvpn uint64) (refs [ptLevels]uint64, levels int, hppn uint64, ok bool) {
	n := pt.root
	idxh := indicesHuge(hvpn)
	for l := 0; l < 3; l++ {
		refs[l] = n.paddr + idxh[l]*ptEntrySize
		levels = l + 1
		if l == 2 {
			if n.hugeEntries == nil || n.hugeEntries[idxh[l]] == 0 {
				return refs, levels, 0, false
			}
			return refs, levels, n.hugeEntries[idxh[l]] - 1, true
		}
		next := n.children[idxh[l]]
		if next == nil {
			return refs, levels, 0, false
		}
		n = next
	}
	return refs, levels, 0, false
}

// indicesHuge splits a huge-frame number into the three upper radix
// indices (PGD, PUD, PMD).
func indicesHuge(hvpn uint64) [3]uint64 {
	var idx [3]uint64
	for l := 2; l >= 0; l-- {
		idx[l] = hvpn & (ptFanout - 1)
		hvpn >>= ptIdxBits
	}
	return idx
}

package vmsim

// cache is one set-associative cache level with LRU replacement. Tags are
// line addresses (paddr >> lineShift); an age counter per set implements
// LRU without timestamps on every line.
type cache struct {
	sets      [][]cacheLine
	ways      int
	lineShift uint
	setMask   uint64
	tick      uint64
}

type cacheLine struct {
	tag   uint64 // line address + 1 (0 = invalid)
	stamp uint64
}

func newCache(size, ways, lineSize int) *cache {
	lines := size / lineSize
	numSets := lines / ways
	if numSets < 1 {
		numSets = 1
	}
	// Round down to a power of two so the set index is a mask.
	for numSets&(numSets-1) != 0 {
		numSets &= numSets - 1
	}
	c := &cache{
		sets:    make([][]cacheLine, numSets),
		ways:    ways,
		setMask: uint64(numSets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, ways)
	}
	for ls := lineSize; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	return c
}

// access looks up the line containing paddr, inserting it on miss.
// It reports whether the line was already present.
func (c *cache) access(paddr uint64) bool {
	line := paddr >> c.lineShift
	tag := line + 1
	set := c.sets[line&c.setMask]
	c.tick++
	victim := 0
	for i := range set {
		if set[i].tag == tag {
			set[i].stamp = c.tick
			return true
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	set[victim] = cacheLine{tag: tag, stamp: c.tick}
	return false
}

// invalidateAll drops every line (used by Reset).
func (c *cache) invalidateAll() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{}
		}
	}
}

// tlb is a set-associative TLB with LRU replacement, mapping vpn → ppn.
type tlb struct {
	sets    [][]tlbEntry
	ways    int
	setMask uint64
	tick    uint64
}

type tlbEntry struct {
	vpn   uint64 // vpn + 1 (0 = invalid)
	ppn   uint64
	stamp uint64
}

func newTLB(entries, ways int) *tlb {
	numSets := entries / ways
	if numSets < 1 {
		numSets = 1
	}
	for numSets&(numSets-1) != 0 {
		numSets &= numSets - 1
	}
	t := &tlb{sets: make([][]tlbEntry, numSets), ways: ways, setMask: uint64(numSets - 1)}
	for i := range t.sets {
		t.sets[i] = make([]tlbEntry, ways)
	}
	return t
}

// lookup returns the cached translation for vpn.
func (t *tlb) lookup(vpn uint64) (uint64, bool) {
	set := t.sets[vpn&t.setMask]
	t.tick++
	for i := range set {
		if set[i].vpn == vpn+1 {
			set[i].stamp = t.tick
			return set[i].ppn, true
		}
	}
	return 0, false
}

// insert caches vpn → ppn.
func (t *tlb) insert(vpn, ppn uint64) {
	set := t.sets[vpn&t.setMask]
	t.tick++
	victim := 0
	for i := range set {
		if set[i].vpn == vpn+1 {
			set[i].ppn = ppn
			set[i].stamp = t.tick
			return
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	set[victim] = tlbEntry{vpn: vpn + 1, ppn: ppn, stamp: t.tick}
}

// invalidate drops the translation for vpn if present, reporting whether
// an entry was dropped.
func (t *tlb) invalidate(vpn uint64) bool {
	set := t.sets[vpn&t.setMask]
	for i := range set {
		if set[i].vpn == vpn+1 {
			set[i] = tlbEntry{}
			return true
		}
	}
	return false
}

// invalidateAll flushes the TLB.
func (t *tlb) invalidateAll() {
	for _, set := range t.sets {
		for i := range set {
			set[i] = tlbEntry{}
		}
	}
}

// Replication protocol frames. A follower opens an ordinary client
// connection and sends one REPLSYNC request; from then on the connection
// leaves the request/response regime and becomes a replication stream:
// the primary pushes snapshot and record frames downstream while the
// follower sends REPLACK frames upstream, both directions flowing
// independently.
//
//	OpReplSync       u64 fromLSN, u8 flags    follower → primary handshake:
//	                 stream every record after fromLSN (0 = everything);
//	                 ReplFlagChained requests per-record chain digests
//	OpPromote        (empty)                  admin: replica becomes primary
//	                 (StatusOK ack; StatusErr when the server is not a
//	                 replica)
//
// Stream frames (primary → follower after a REPLSYNC):
//
//	ReplSnapBegin    u64 snapLSN, u64 size    a full sync is coming: a
//	                 persist-format snapshot covering the log through
//	                 snapLSN, size bytes in total
//	ReplSnapChunk    raw snapshot bytes
//	ReplSnapEnd      (empty)                  snapshot complete (persist's
//	                 own CRC trailer authenticates the content)
//	ReplRecord       u64 lsn, u8 code, batch payload — one WAL record,
//	                 payload byte-identical to the primary's log (and to
//	                 the frame the write arrived in: zero re-encode)
//	ReplRecordHashed u64 lsn, u8 code, 32-byte chain digest, batch payload
//	ReplHeartbeat    u64 lastLSN              keepalive + lag beacon while idle
//
// Upstream (follower → primary):
//
//	ReplAck          u64 appliedLSN           everything ≤ appliedLSN is
//	                 applied on the follower (basis for synchronous
//	                 replication and the primary's lag accounting)
//
// A record frame carrying a maximum batch plus the stream prefix can
// exceed MaxFrame by a few dozen bytes, so stream readers admit
// MaxReplFrame via ReadReplFrame; request-path readers keep the tighter
// bound.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Admin / handshake opcodes (request path).
const (
	OpReplSync byte = 0x10
	OpPromote  byte = 0x11
)

// Stream frame tags (replication stream only, never on the request path).
const (
	ReplSnapBegin byte = 0x20 + iota
	ReplSnapChunk
	ReplSnapEnd
	ReplRecord
	ReplRecordHashed
	ReplHeartbeat
	ReplAck
	// ReplTraceMeta (downstream) announces the trace identity of the next
	// record frame: u64 lsn, u64 traceID, i64 appendNS (the primary's wall
	// clock at WAL append, unix nanoseconds). Shipped only when the
	// follower negotiated ReplFlagTrace, so old followers never see it.
	ReplTraceMeta
	// ReplSpan (upstream) returns a follower's apply span to the primary:
	// u64 traceID, u64 lsn, u64 spanNS. The primary's ack reader skips
	// unknown upstream tags by design, so an old primary tolerates it.
	ReplSpan
)

// ReplFlagChained asks the primary to ship each record as
// ReplRecordHashed, carrying the stream chain's digest through that
// record. The chain is anchored at the handshake's effective start
// position (fromLSN, or the snapshot LSN after a full sync).
const ReplFlagChained byte = 1 << 0

// ReplFlagTrace asks the primary to interleave ReplTraceMeta frames into
// the stream (trace ID and append timestamp per shipped record) and to
// accept ReplSpan frames upstream. Followers must only set it against
// primaries known to understand it: like every REPLSYNC capability bit,
// an old primary rejects the handshake rather than shipping a stream
// with silently missing semantics.
const ReplFlagTrace byte = 1 << 1

// replFlagsKnown is the set of REPLSYNC capability bits this revision
// understands; DecodeReplSync rejects anything outside it.
const replFlagsKnown = ReplFlagChained | ReplFlagTrace

// ReplHashSize is the chain digest width in ReplRecordHashed frames
// (SHA-256; wal.ChainHashSize, restated here so wire stays free of the
// wal dependency).
const ReplHashSize = 32

// MaxReplFrame bounds stream frame lengths: MaxFrame plus the worst-case
// stream prefix (lsn + code + digest).
const MaxReplFrame = MaxFrame + 64

// replSyncSize is the OpReplSync payload: u64 fromLSN + u8 flags.
const replSyncSize = 9

// AppendReplSync appends the follower's handshake frame.
func AppendReplSync(dst []byte, fromLSN uint64, flags byte) []byte {
	dst = appendHeader(dst, OpReplSync, replSyncSize)
	dst = binary.LittleEndian.AppendUint64(dst, fromLSN)
	return append(dst, flags)
}

// DecodeReplSync decodes an OpReplSync payload. Unknown flag bits are
// rejected: a primary that silently ignored a capability bit would ship a
// stream the follower cannot verify.
func DecodeReplSync(p []byte) (fromLSN uint64, flags byte, err error) {
	if len(p) != replSyncSize {
		return 0, 0, fmt.Errorf("wire: REPLSYNC payload %d bytes, want %d", len(p), replSyncSize)
	}
	flags = p[8]
	if flags&^replFlagsKnown != 0 {
		return 0, 0, fmt.Errorf("wire: REPLSYNC unknown flags 0x%02x", flags&^replFlagsKnown)
	}
	return binary.LittleEndian.Uint64(p), flags, nil
}

// AppendReplSnapBegin appends the full-sync announcement: a snapshot
// covering the log through snapLSN, size bytes of persist stream to
// follow in ReplSnapChunk frames.
func AppendReplSnapBegin(dst []byte, snapLSN uint64, size int64) []byte {
	dst = appendHeader(dst, ReplSnapBegin, 16)
	dst = binary.LittleEndian.AppendUint64(dst, snapLSN)
	return binary.LittleEndian.AppendUint64(dst, uint64(size))
}

// DecodeReplSnapBegin decodes a ReplSnapBegin payload.
func DecodeReplSnapBegin(p []byte) (snapLSN uint64, size int64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("wire: SNAPBEGIN payload %d bytes, want 16", len(p))
	}
	snapLSN = binary.LittleEndian.Uint64(p)
	usize := binary.LittleEndian.Uint64(p[8:])
	if usize > 1<<62 {
		return 0, 0, fmt.Errorf("wire: SNAPBEGIN size %d out of range", usize)
	}
	return snapLSN, int64(usize), nil
}

// AppendReplRecord appends one shipped WAL record. With hash non-nil the
// frame is ReplRecordHashed and carries the chain digest through this
// record; the payload bytes are appended as given — the zero-re-encode
// path from the primary's log to the follower's socket.
func AppendReplRecord(dst []byte, lsn uint64, code byte, hash *[ReplHashSize]byte, payload []byte) []byte {
	if hash == nil {
		dst = appendHeader(dst, ReplRecord, 9+len(payload))
	} else {
		dst = appendHeader(dst, ReplRecordHashed, 9+ReplHashSize+len(payload))
	}
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = append(dst, code)
	if hash != nil {
		dst = append(dst, hash[:]...)
	}
	return append(dst, payload...)
}

// DecodeReplRecord decodes a ReplRecord or ReplRecordHashed payload. The
// returned hash is nil for ReplRecord and aliases p for ReplRecordHashed,
// as does the batch payload; the batch payload's structure is the op
// codec's concern (the follower's DecodeBatch validates it before apply).
func DecodeReplRecord(tag byte, p []byte) (lsn uint64, code byte, hash, payload []byte, err error) {
	prefix := 9
	if tag == ReplRecordHashed {
		prefix += ReplHashSize
	} else if tag != ReplRecord {
		return 0, 0, nil, nil, fmt.Errorf("wire: tag 0x%02x is not a record frame", tag)
	}
	// The smallest batch payload is its u32 count.
	if len(p) < prefix+4 {
		return 0, 0, nil, nil, fmt.Errorf("wire: record frame payload %d bytes, need at least %d", len(p), prefix+4)
	}
	lsn = binary.LittleEndian.Uint64(p)
	code = p[8]
	switch code {
	case OpPutBatch, OpDelBatch, OpMixedBatch:
	default:
		return 0, 0, nil, nil, fmt.Errorf("wire: record frame carries non-batch code 0x%02x", code)
	}
	if tag == ReplRecordHashed {
		hash = p[9:prefix]
	}
	return lsn, code, hash, p[prefix:], nil
}

// AppendReplU64 appends a ReplHeartbeat or ReplAck frame (both carry one
// u64: the sender's position).
func AppendReplU64(dst []byte, tag byte, lsn uint64) []byte {
	dst = appendHeader(dst, tag, 8)
	return binary.LittleEndian.AppendUint64(dst, lsn)
}

// DecodeReplU64 decodes a ReplHeartbeat or ReplAck payload.
func DecodeReplU64(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("wire: position frame payload %d bytes, want 8", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// replTraceSize is the ReplTraceMeta / ReplSpan payload: three u64s.
const replTraceSize = 24

// AppendReplTraceMeta appends the downstream trace announcement for the
// record at lsn: its trace ID (0 = unsampled, timestamp only) and the
// primary's append wall clock.
func AppendReplTraceMeta(dst []byte, lsn, traceID uint64, appendNS int64) []byte {
	dst = appendHeader(dst, ReplTraceMeta, replTraceSize)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = binary.LittleEndian.AppendUint64(dst, traceID)
	return binary.LittleEndian.AppendUint64(dst, uint64(appendNS))
}

// DecodeReplTraceMeta decodes a ReplTraceMeta payload.
func DecodeReplTraceMeta(p []byte) (lsn, traceID uint64, appendNS int64, err error) {
	if len(p) != replTraceSize {
		return 0, 0, 0, fmt.Errorf("wire: TRACEMETA payload %d bytes, want %d", len(p), replTraceSize)
	}
	return binary.LittleEndian.Uint64(p),
		binary.LittleEndian.Uint64(p[8:]),
		int64(binary.LittleEndian.Uint64(p[16:])), nil
}

// AppendReplSpan appends the upstream follower-apply span for the record
// at lsn under the given trace ID.
func AppendReplSpan(dst []byte, traceID, lsn, spanNS uint64) []byte {
	dst = appendHeader(dst, ReplSpan, replTraceSize)
	dst = binary.LittleEndian.AppendUint64(dst, traceID)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	return binary.LittleEndian.AppendUint64(dst, spanNS)
}

// DecodeReplSpan decodes a ReplSpan payload.
func DecodeReplSpan(p []byte) (traceID, lsn, spanNS uint64, err error) {
	if len(p) != replTraceSize {
		return 0, 0, 0, fmt.Errorf("wire: REPLSPAN payload %d bytes, want %d", len(p), replTraceSize)
	}
	return binary.LittleEndian.Uint64(p),
		binary.LittleEndian.Uint64(p[8:]),
		binary.LittleEndian.Uint64(p[16:]), nil
}

// ReadReplFrame reads one frame with the stream bound (MaxReplFrame)
// instead of the request bound. Same contract as ReadFrame otherwise.
func ReadReplFrame(r io.Reader, buf []byte) (tag byte, payload, newBuf []byte, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxReplFrame {
		return 0, nil, buf, fmt.Errorf("wire: stream frame length %d out of range [1, %d]", n, MaxReplFrame)
	}
	tag = hdr[4]
	body := int(n) - 1
	if cap(buf) < body {
		buf = make([]byte, body)
	}
	payload = buf[:body]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, fmt.Errorf("wire: short stream frame body: %w", err)
	}
	return tag, payload, buf, nil
}

// PrimaryReplCounters is the primary-side replication section of a STATS
// reply: the fan-out state of its replication source.
type PrimaryReplCounters struct {
	// Followers is the number of connected replication streams.
	Followers int `json:"followers"`
	// SyncMode reports synchronous replication: writes are acknowledged
	// only after a connected follower acknowledged them.
	SyncMode bool `json:"sync_mode"`
	// LastLSN is the log position; MinAckedLSN is the lowest position all
	// connected followers have acknowledged (0 without followers).
	LastLSN     uint64 `json:"last_lsn"`
	MinAckedLSN uint64 `json:"min_acked_lsn"`
	// RecordsShipped and BytesShipped count stream traffic; SnapshotsShipped
	// counts full syncs served.
	RecordsShipped   uint64 `json:"records_shipped"`
	BytesShipped     uint64 `json:"bytes_shipped"`
	SnapshotsShipped uint64 `json:"snapshots_shipped"`
	// SyncTimeouts counts writes acknowledged after the synchronous-
	// replication wait degraded (follower too slow or disconnected).
	SyncTimeouts uint64 `json:"sync_timeouts"`
	// ChainHead is the primary's live chain digest (hex), present only
	// with a chained WAL.
	ChainHead string `json:"chain_head,omitempty"`
	// LagRecords is LastLSN − MinAckedLSN while followers are connected
	// (how many records the slowest follower still owes an ack for);
	// LagMS is the append-to-ack time lag of the most recently
	// acknowledged record, milliseconds (-1: not yet measurable). Both
	// were added after the first replication release; old servers simply
	// omit them, so readers must treat absence as unknown, not zero lag.
	LagRecords uint64 `json:"lag_records"`
	LagMS      int64  `json:"lag_ms"`
}

// ReplicaReplCounters is the replica-side replication section of a STATS
// reply: the follower's view of its primary.
type ReplicaReplCounters struct {
	PrimaryAddr string `json:"primary_addr"`
	Connected   bool   `json:"connected"`
	// AppliedLSN is the primary log position the replica has applied;
	// PrimaryLSN is the primary's position as of the last heartbeat.
	AppliedLSN uint64 `json:"applied_lsn"`
	PrimaryLSN uint64 `json:"primary_lsn"`
	// LastContactMS is how long ago the primary was last heard from (-1:
	// never); StalenessBoundMS is the configured read bound (0: none);
	// Stale reports reads currently being rejected.
	LastContactMS    int64 `json:"last_contact_ms"`
	StalenessBoundMS int64 `json:"staleness_bound_ms"`
	Stale            bool  `json:"stale"`
	// Promoted reports a replica that has been promoted to primary.
	Promoted       bool   `json:"promoted"`
	FullSyncs      uint64 `json:"full_syncs"`
	Reconnects     uint64 `json:"reconnects"`
	RecordsApplied uint64 `json:"records_applied"`
	// LagRecords is PrimaryLSN − AppliedLSN (records known shipped but not
	// yet applied here); LagMS is the append-to-apply time lag of the most
	// recently applied record, milliseconds (-1: not yet measurable —
	// requires a trace-enabled stream for the primary's append timestamp).
	// Added after the first replication release: absent in old servers'
	// replies, so readers must treat absence as unknown, not zero lag.
	LagRecords uint64 `json:"lag_records"`
	LagMS      int64  `json:"lag_ms"`
}

// ReplicationStats is the STATS reply's replication section: either side
// may be present (a promoted replica that now serves followers has both).
type ReplicationStats struct {
	Primary *PrimaryReplCounters `json:"primary,omitempty"`
	Replica *ReplicaReplCounters `json:"replica,omitempty"`
}

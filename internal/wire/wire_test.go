package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"vmshortcut/internal/op"
)

// roundTrip feeds an encoded frame back through ReadFrame.
func roundTrip(t *testing.T, frame []byte) (byte, []byte) {
	t.Helper()
	tag, payload, _, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return tag, payload
}

func TestRequestFrameRoundTrips(t *testing.T) {
	tag, p := roundTrip(t, AppendKey(nil, OpGet, 0xDEADBEEF))
	if tag != OpGet || len(p) != 8 || Uint64(p, 0) != 0xDEADBEEF {
		t.Fatalf("GET frame = tag %d payload %x", tag, p)
	}

	tag, p = roundTrip(t, AppendPut(nil, 7, 42))
	if tag != OpPut || Uint64(p, 0) != 7 || Uint64(p, 8) != 42 {
		t.Fatalf("PUT frame = tag %d payload %x", tag, p)
	}

	tag, p = roundTrip(t, AppendEmpty(nil, OpStats))
	if tag != OpStats || len(p) != 0 {
		t.Fatalf("STATS frame = tag %d payload %x", tag, p)
	}

	keys := []uint64{1, 2, 3, ^uint64(0)}
	vals := []uint64{10, 20, 30, 40}

	tag, p = roundTrip(t, AppendKeyBatch(nil, OpGetBatch, keys))
	if tag != OpGetBatch {
		t.Fatalf("GETBATCH tag = %d", tag)
	}
	var b op.Batch
	if err := DecodeBatch(tag, p, &b); err != nil || b.Len() != len(keys) {
		t.Fatalf("GETBATCH decode = %d entries, %v", b.Len(), err)
	}
	for i, k := range keys {
		if b.Kinds()[i] != op.Get || b.Keys()[i] != k {
			t.Fatalf("GETBATCH entry[%d] = (%v, %d), want (GET, %d)", i, b.Kinds()[i], b.Keys()[i], k)
		}
	}

	tag, p = roundTrip(t, AppendPutBatch(nil, keys, vals))
	if tag != OpPutBatch {
		t.Fatalf("PUTBATCH tag = %d", tag)
	}
	if err := DecodeBatch(tag, p, &b); err != nil || b.Len() != len(keys) {
		t.Fatalf("PUTBATCH decode = %d entries, %v", b.Len(), err)
	}
	for i := range keys {
		if b.Kinds()[i] != op.Put || b.Keys()[i] != keys[i] || b.Vals()[i] != vals[i] {
			t.Fatalf("PUTBATCH entry[%d] mismatch", i)
		}
	}
}

func TestResponseFrameRoundTrips(t *testing.T) {
	tag, p := roundTrip(t, AppendValue(nil, 99))
	if tag != StatusOK || Uint64(p, 0) != 99 {
		t.Fatalf("value response = tag %d payload %x", tag, p)
	}

	tag, p = roundTrip(t, AppendEmpty(nil, StatusNotFound))
	if tag != StatusNotFound || len(p) != 0 {
		t.Fatalf("not-found response = tag %d payload %x", tag, p)
	}

	tag, p = roundTrip(t, AppendError(nil, "boom"))
	if tag != StatusErr || string(p) != "boom" {
		t.Fatalf("error response = tag %d payload %q", tag, p)
	}

	found := []bool{true, false, true}
	vals := []uint64{5, 0, 7}
	tag, p = roundTrip(t, AppendFoundValues(nil, found, vals))
	if tag != StatusOK {
		t.Fatalf("found-values tag = %d", tag)
	}
	if got := int(Uint32(p, 0)); got != 3 {
		t.Fatalf("found-values n = %d", got)
	}
	for i, ok := range found {
		if (p[4+i] == 1) != ok {
			t.Fatalf("found[%d] flag mismatch", i)
		}
		if got := Uint64(p, 4+len(found)+8*i); got != vals[i] {
			t.Fatalf("found-values value[%d] = %d", i, got)
		}
	}

	tag, p = roundTrip(t, AppendFound(nil, found))
	if tag != StatusOK || int(Uint32(p, 0)) != 3 || p[4] != 1 || p[5] != 0 || p[6] != 1 {
		t.Fatalf("found response = tag %d payload %x", tag, p)
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	zero := make([]byte, HeaderSize) // length 0
	if _, _, _, err := ReadFrame(bytes.NewReader(zero), nil); err == nil {
		t.Fatal("length 0 accepted")
	}
	huge := make([]byte, HeaderSize)
	binary.LittleEndian.PutUint32(huge, MaxFrame+1)
	if _, _, _, err := ReadFrame(bytes.NewReader(huge), nil); err == nil {
		t.Fatal("oversized length accepted")
	}
	// Truncated body: header promises 9 payload bytes, stream has 2.
	short := AppendKey(nil, OpGet, 1)[:HeaderSize+2]
	if _, _, _, err := ReadFrame(bytes.NewReader(short), nil); err == nil {
		t.Fatal("truncated body accepted")
	} else if !strings.Contains(err.Error(), "short frame body") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDecodeBatchRejectsMalformedPayloads(t *testing.T) {
	var b op.Batch
	if err := DecodeBatch(OpGetBatch, []byte{1, 2}, &b); err == nil {
		t.Fatal("short batch header accepted")
	}
	// Count says 2 elements, payload carries 1.
	p := binary.LittleEndian.AppendUint32(nil, 2)
	p = binary.LittleEndian.AppendUint64(p, 1)
	if err := DecodeBatch(OpGetBatch, p, &b); err == nil {
		t.Fatal("count/payload mismatch accepted")
	}
	// Count beyond the element cap.
	p = binary.LittleEndian.AppendUint32(nil, op.MaxElems+1)
	if err := DecodeBatch(OpDelBatch, p, &b); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	frame := AppendPut(nil, 1, 2)
	buf := make([]byte, 64)
	_, payload, newBuf, err := ReadFrame(bytes.NewReader(frame), buf)
	if err != nil {
		t.Fatal(err)
	}
	if &newBuf[0] != &buf[0] || &payload[0] != &buf[0] {
		t.Fatal("ReadFrame allocated despite a large enough buffer")
	}
}

// TestTraceCtxRoundTrips pins the trace-context envelope: a 9-byte
// payload, round-tripping exactly, with unknown flag bits tolerated on
// decode (the envelope is advisory metadata — a reader that errored on
// a future flag would turn a tracing upgrade into an outage).
func TestTraceCtxRoundTrips(t *testing.T) {
	frame := AppendTraceCtx(nil, 0xDEADBEEFCAFE, TraceFlagSampled)
	tag, p := roundTrip(t, frame)
	if tag != OpTraceCtx {
		t.Fatalf("TRACECTX tag = 0x%02x", tag)
	}
	id, flags, err := DecodeTraceCtx(p)
	if err != nil || id != 0xDEADBEEFCAFE || flags != TraceFlagSampled {
		t.Fatalf("TRACECTX decode = (%x, 0x%02x, %v)", id, flags, err)
	}

	// Unknown flag bits decode cleanly; the caller sees them and ignores
	// what it does not know.
	frame = AppendTraceCtx(nil, 7, TraceFlagSampled|0x80)
	if _, flags, err = DecodeTraceCtx(frame[HeaderSize:]); err != nil || flags&TraceFlagSampled == 0 {
		t.Fatalf("future flags rejected: (0x%02x, %v)", flags, err)
	}

	// Truncated payloads are errors, not zero-valued contexts.
	if _, _, err := DecodeTraceCtx(frame[HeaderSize : HeaderSize+8]); err == nil {
		t.Fatal("short TRACECTX accepted")
	}
}

// Package wire defines the compact length-prefixed binary protocol spoken
// between the network KV server (package server) and its Go client
// (package client). The format is built for pipelining: frames are fully
// self-delimiting, responses come back in request order, and the batch
// frames carry whole key sets so one round trip can become one
// InsertBatch/LookupBatch/DeleteBatch call against the store.
//
// Frame layout (all integers little-endian):
//
//	u32 length   payload length including the tag byte (≤ MaxFrame)
//	u8  tag      request opcode or response status
//	...          payload, per tag
//
// Request payloads:
//
//	OpGet       u64 key
//	OpPut       u64 key, u64 value
//	OpDel       u64 key
//	OpStats     (empty)
//	OpGetBatch  u32 n, n × u64 key
//	OpPutBatch  u32 n, n × (u64 key, u64 value)
//	OpDelBatch  u32 n, n × u64 key
//
// Response payloads:
//
//	StatusOK        op-specific: u64 value (GET); empty (PUT, STATS via
//	                JSON below); u32 n, n × u8 found, n × u64 value
//	                (GETBATCH); u32 n, n × u8 found (DELBATCH)
//	StatusNotFound  empty (GET, DEL miss)
//	StatusErr       UTF-8 error message
//
// The STATS response payload is JSON (StatsReply): it is off the hot path
// and keeps the reply extensible without protocol version bumps.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"vmshortcut"
)

// HeaderSize is the fixed frame prefix: u32 length + u8 tag.
const HeaderSize = 5

// MaxFrame bounds a frame's length field. It admits batches of ~64k pairs
// while keeping a malformed or hostile length prefix from ballooning a
// connection buffer.
const MaxFrame = 1 << 20

// MaxBatch is the largest element count a batch frame may carry; chosen so
// the largest batch frame (PUTBATCH) stays under MaxFrame.
const MaxBatch = (MaxFrame - HeaderSize - 4) / 16

// Request opcodes.
const (
	OpGet byte = 0x01 + iota
	OpPut
	OpDel
	OpStats
	OpGetBatch
	OpPutBatch
	OpDelBatch
)

// Response statuses.
const (
	StatusOK byte = 0x00 + iota
	StatusNotFound
	StatusErr
)

// StatsReply is the JSON payload of a successful OpStats response: the
// server's own counters next to the backing store's uniform Stats.
type StatsReply struct {
	Server ServerCounters   `json:"server"`
	Store  vmshortcut.Stats `json:"store"`
}

// ServerCounters are the serving-layer counters of one server.
type ServerCounters struct {
	// ActiveConns and TotalConns count currently open and lifetime
	// accepted connections.
	ActiveConns uint64 `json:"active_conns"`
	TotalConns  uint64 `json:"total_conns"`
	// Ops counts operations served (batch frames count each element).
	Ops uint64 `json:"ops"`
	// Frames counts request frames decoded.
	Frames uint64 `json:"frames"`
	// CoalescedBatches counts store batch calls produced by gathering
	// pipelined single-op frames; CoalescedOps counts the ops they carried.
	CoalescedBatches uint64 `json:"coalesced_batches"`
	CoalescedOps     uint64 `json:"coalesced_ops"`
	// Errors counts StatusErr responses sent.
	Errors uint64 `json:"errors"`
}

// appendHeader appends a frame header for a payload of n bytes (tag
// included in the length, as on the wire).
func appendHeader(dst []byte, tag byte, n int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n+1))
	return append(dst, tag)
}

// AppendFrame appends a complete frame with an opaque payload.
func AppendFrame(dst []byte, tag byte, payload []byte) []byte {
	dst = appendHeader(dst, tag, len(payload))
	return append(dst, payload...)
}

// AppendEmpty appends a frame with no payload (OpStats, StatusOK acks,
// StatusNotFound).
func AppendEmpty(dst []byte, tag byte) []byte { return appendHeader(dst, tag, 0) }

// AppendKey appends a one-key request frame (OpGet, OpDel).
func AppendKey(dst []byte, op byte, key uint64) []byte {
	dst = appendHeader(dst, op, 8)
	return binary.LittleEndian.AppendUint64(dst, key)
}

// AppendPut appends an OpPut frame.
func AppendPut(dst []byte, key, value uint64) []byte {
	dst = appendHeader(dst, OpPut, 16)
	dst = binary.LittleEndian.AppendUint64(dst, key)
	return binary.LittleEndian.AppendUint64(dst, value)
}

// AppendKeyBatch appends a keys-only batch request frame (OpGetBatch,
// OpDelBatch).
func AppendKeyBatch(dst []byte, op byte, keys []uint64) []byte {
	dst = appendHeader(dst, op, 4+8*len(keys))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}
	return dst
}

// AppendPutBatch appends an OpPutBatch frame; len(keys) must equal
// len(values).
func AppendPutBatch(dst []byte, keys, values []uint64) []byte {
	dst = appendHeader(dst, OpPutBatch, 4+16*len(keys))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for i, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
		dst = binary.LittleEndian.AppendUint64(dst, values[i])
	}
	return dst
}

// AppendValue appends a StatusOK response carrying one value (GET hit).
func AppendValue(dst []byte, value uint64) []byte {
	dst = appendHeader(dst, StatusOK, 8)
	return binary.LittleEndian.AppendUint64(dst, value)
}

// AppendError appends a StatusErr response with a message.
func AppendError(dst []byte, msg string) []byte {
	dst = appendHeader(dst, StatusErr, len(msg))
	return append(dst, msg...)
}

// AppendFoundValues appends the GETBATCH StatusOK response: per-key
// presence flags followed by the (zero-filled where absent) values.
func AppendFoundValues(dst []byte, found []bool, values []uint64) []byte {
	dst = appendHeader(dst, StatusOK, 4+len(found)+8*len(found))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(found)))
	for _, ok := range found {
		dst = append(dst, boolByte(ok))
	}
	for _, v := range values {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// AppendFound appends the DELBATCH StatusOK response: per-key presence.
func AppendFound(dst []byte, found []bool) []byte {
	dst = appendHeader(dst, StatusOK, 4+len(found))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(found)))
	for _, ok := range found {
		dst = append(dst, boolByte(ok))
	}
	return dst
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ReadFrame reads one frame from r, reusing buf for the payload when it
// fits. It returns the tag, the payload (valid until the next call that
// reuses buf), the possibly grown buffer, and the first error. A length
// below 1 or above MaxFrame is rejected before any payload is read.
func ReadFrame(r io.Reader, buf []byte) (tag byte, payload, newBuf []byte, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, buf, fmt.Errorf("wire: frame length %d out of range [1, %d]", n, MaxFrame)
	}
	tag = hdr[4]
	body := int(n) - 1
	if cap(buf) < body {
		buf = make([]byte, body)
	}
	payload = buf[:body]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, fmt.Errorf("wire: short frame body: %w", err)
	}
	return tag, payload, buf, nil
}

// Uint64 decodes the u64 at offset off of a payload.
func Uint64(p []byte, off int) uint64 { return binary.LittleEndian.Uint64(p[off:]) }

// Uint32 decodes the u32 at offset off of a payload.
func Uint32(p []byte, off int) uint32 { return binary.LittleEndian.Uint32(p[off:]) }

// BatchLen validates and returns the element count of a batch payload
// whose elements are elemSize bytes each.
func BatchLen(p []byte, elemSize int) (int, error) {
	if len(p) < 4 {
		return 0, fmt.Errorf("wire: batch payload %d bytes, need at least 4", len(p))
	}
	n := int(Uint32(p, 0))
	if n > MaxBatch {
		return 0, fmt.Errorf("wire: batch of %d elements exceeds max %d", n, MaxBatch)
	}
	if len(p) != 4+n*elemSize {
		return 0, fmt.Errorf("wire: batch payload %d bytes, want %d for %d elements", len(p), 4+n*elemSize, n)
	}
	return n, nil
}

// Package wire defines the compact length-prefixed binary protocol spoken
// between the network KV server (package server) and its Go client
// (package client). The format is built for pipelining: frames are fully
// self-delimiting, responses come back in request order, and the batch
// frames carry whole key sets so one round trip can become one
// InsertBatch/LookupBatch/DeleteBatch call against the store.
//
// Frame layout (all integers little-endian):
//
//	u32 length   payload length including the tag byte (≤ MaxFrame)
//	u8  tag      request opcode or response status
//	...          payload, per tag
//
// Request payloads:
//
//	OpGet         u64 key
//	OpPut         u64 key, u64 value
//	OpDel         u64 key
//	OpStats       (empty)
//	OpGetBatch    u32 n, n × u64 key
//	OpPutBatch    u32 n, n × (u64 key, u64 value)
//	OpDelBatch    u32 n, n × u64 key
//	OpMixedBatch  u32 n, n × u8 kind, n × u64 key, puts × u64 value
//
// The batch payloads are not defined here: they are the internal/op
// package's batch payload layouts, and the batch opcodes are its batch
// codes — the same bytes name a batch in a request frame and in a WAL
// record, so the wire→log path appends payloads without re-encoding.
// MIXEDBATCH carries an ordered mix of GET/PUT/DEL entries (columnar:
// kinds, keys, then one value per PUT entry in entry order), so one
// frame — and one store call, and one WAL record — can carry whatever a
// pipelined client had in flight.
//
// Response payloads:
//
//	StatusOK        op-specific: u64 value (GET); empty (PUT, STATS via
//	                JSON below); u32 n, n × u8 found, n × u64 value
//	                (GETBATCH); u32 n, n × u8 found (DELBATCH);
//	                u32 n, n × u8 flag, gets × u64 value (MIXEDBATCH —
//	                flag is presence for GET/DEL entries and acceptance
//	                for PUT entries; one value per GET entry in entry
//	                order, zero when absent)
//	StatusNotFound  empty (GET, DEL miss)
//	StatusErr       UTF-8 error message
//
// The STATS response payload is JSON (StatsReply): it is off the hot path
// and keeps the reply extensible without protocol version bumps.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"vmshortcut"
	"vmshortcut/internal/op"
)

// HeaderSize is the fixed frame prefix: u32 length + u8 tag.
const HeaderSize = 5

// MaxFrame bounds a frame's length field. It admits batches of ~64k pairs
// while keeping a malformed or hostile length prefix from ballooning a
// connection buffer.
const MaxFrame = 1 << 20

// MaxBatch is the largest element count a batch frame may carry; chosen so
// the largest batch frame (PUTBATCH) stays under MaxFrame.
const MaxBatch = (MaxFrame - HeaderSize - 4) / 16

// Request opcodes. The batch opcodes are the internal/op batch codes —
// not merely equal by convention but the same constants — so the frame
// tag, the store-facing batch representation, and the WAL record opcode
// agree by construction.
const (
	OpGet byte = 0x01 + iota
	OpPut
	OpDel
	OpStats
)

const (
	OpGetBatch   = op.CodeGetBatch
	OpPutBatch   = op.CodePutBatch
	OpDelBatch   = op.CodeDelBatch
	OpMixedBatch = op.CodeMixedBatch
)

// OpTraceCtx is the trace-context envelope: a request-path frame carrying
// u64 traceID, u8 flags that applies to the NEXT request frame on the
// connection and produces no response frame of its own. Making the
// context its own frame (rather than a flagged variant of every request)
// keeps the unsampled wire format byte-identical to older protocol
// revisions: a client that never samples emits exactly the old byte
// stream, and a sampling client talking to an old server fails fast with
// a visible unknown-opcode error instead of silently corrupting state.
const OpTraceCtx byte = 0x12

// TraceFlagSampled marks the next frame as sampled: the server records
// its spans in the flight recorder under the carried trace ID.
const TraceFlagSampled byte = 1 << 0

// traceCtxSize is the OpTraceCtx payload: u64 traceID + u8 flags.
const traceCtxSize = 9

// AppendTraceCtx appends a trace-context envelope frame.
func AppendTraceCtx(dst []byte, traceID uint64, flags byte) []byte {
	dst = appendHeader(dst, OpTraceCtx, traceCtxSize)
	dst = binary.LittleEndian.AppendUint64(dst, traceID)
	return append(dst, flags)
}

// DecodeTraceCtx decodes an OpTraceCtx payload. Unknown flag bits are
// ignored (not rejected): the envelope is advisory observability
// metadata, so a newer client bit must not break an older server that
// already understands the frame.
func DecodeTraceCtx(p []byte) (traceID uint64, flags byte, err error) {
	if len(p) != traceCtxSize {
		return 0, 0, fmt.Errorf("wire: TRACECTX payload %d bytes, want %d", len(p), traceCtxSize)
	}
	return binary.LittleEndian.Uint64(p), p[8], nil
}

// MaxMixedBatch is the largest element count a MIXEDBATCH frame may
// carry: its worst-case entry (a PUT) is 17 payload bytes.
const MaxMixedBatch = (MaxFrame - HeaderSize - 4) / 17

// Response statuses. ReadOnly and Stale are the replica's refusals: a
// replica rejects mutations until promoted, and rejects reads while it
// has not heard from its primary within its staleness bound. Both carry
// an optional UTF-8 message like StatusErr.
const (
	StatusOK byte = 0x00 + iota
	StatusNotFound
	StatusErr
	StatusReadOnly
	StatusStale
)

// StatsReply is the JSON payload of a successful OpStats response: the
// server's own counters next to the backing store's uniform Stats, plus
// an explicit durability section so remote clients (and the ehload /
// ehstore outputs) can read the WAL's state without knowing the Stats
// struct's field names.
// Forward compatibility is part of the contract: the payload is decoded
// with encoding/json defaults, which ignore unknown fields, so an old
// client reading a newer server's reply (extra sections, extra counters)
// sees everything it knows about and skips the rest — version skew
// between ehload/ehstore and the server is expected during rollouts.
// Fields must therefore never be removed or renamed, only added.
type StatsReply struct {
	Server ServerCounters   `json:"server"`
	Store  vmshortcut.Stats `json:"store"`
	// Durability mirrors the store's WAL counters (zero without WithWAL).
	Durability DurabilityCounters `json:"durability"`
	// Role is "primary" or "replica" ("" from servers predating
	// replication, which readers must treat as primary).
	Role string `json:"role,omitempty"`
	// Replication is present when the server replicates in either
	// direction (see repl.go).
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Obs is the observability section: per-stage latency summaries and
	// per-opcode frame counts, present when the server runs with metrics
	// enabled. Like every other section it only ever gains fields;
	// readers must ignore stages they do not know.
	Obs *ObsStats `json:"obs,omitempty"`
	// Hotkeys is the hot-key read-cache section, present when the store
	// serves reads through one (WithReadCache): the cache's hit rate and
	// the hottest resident keys. Same contract as every section: fields
	// are only ever added.
	Hotkeys *HotkeysStats `json:"hotkeys,omitempty"`
}

// HotkeysStats is the hotkeys section of StatsReply. HitRate is
// lifetime CacheReads / (CacheReads + CacheMisses); Top lists the
// hottest resident cache entries, hottest first.
type HotkeysStats struct {
	HitRate     float64  `json:"hit_rate"`
	CacheReads  uint64   `json:"cache_reads"`
	CacheMisses uint64   `json:"cache_misses"`
	Top         []HotKey `json:"top,omitempty"`
}

// HotKey is one entry of HotkeysStats.Top: a resident cached key and
// how many reads it has served from its slot.
type HotKey struct {
	Key  uint64 `json:"key"`
	Hits uint64 `json:"hits"`
}

// ObsStats is the observability section of StatsReply: summarized
// per-stage latency histograms keyed by stage name (frame_decode,
// coalesce_wait, shard_apply, wal_append, wal_fsync, repl_sync_ack,
// reply_write, batch_total — the set may grow), request frame counts by
// opcode name, and the slow-op count. Defined here rather than in
// internal/obs so the wire package stays dependency-free; the server
// fills it from its live histograms.
type ObsStats struct {
	Stages  map[string]HistSummary `json:"stages,omitempty"`
	Frames  map[string]uint64      `json:"frames_by_op,omitempty"`
	SlowOps uint64                 `json:"slow_ops"`
}

// HistSummary is one latency histogram summarized for JSON transport.
// All durations are nanoseconds; percentiles carry the source
// histogram's ~3% bucket resolution.
type HistSummary struct {
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  uint64  `json:"p50_ns"`
	P95NS  uint64  `json:"p95_ns"`
	P99NS  uint64  `json:"p99_ns"`
	MaxNS  uint64  `json:"max_ns"`
}

// DurabilityCounters is the durability state of the backing store: how
// many WAL records and fsyncs it has issued, the highest log position
// known to be on stable storage, and the newest snapshot's coverage.
type DurabilityCounters struct {
	WALRecords  uint64 `json:"wal_records"`
	WALSyncs    uint64 `json:"wal_syncs"`
	DurableLSN  uint64 `json:"durable_lsn"`
	SnapshotLSN uint64 `json:"snapshot_lsn"`
}

// DurabilityFrom extracts the durability section from a store Stats
// snapshot.
func DurabilityFrom(st vmshortcut.Stats) DurabilityCounters {
	return DurabilityCounters{
		WALRecords:  st.WALRecords,
		WALSyncs:    st.WALSyncs,
		DurableLSN:  st.DurableLSN,
		SnapshotLSN: st.SnapshotLSN,
	}
}

// ServerCounters are the serving-layer counters of one server.
type ServerCounters struct {
	// ActiveConns and TotalConns count currently open and lifetime
	// accepted connections.
	ActiveConns uint64 `json:"active_conns"`
	TotalConns  uint64 `json:"total_conns"`
	// Ops counts operations served (batch frames count each element).
	Ops uint64 `json:"ops"`
	// Frames counts request frames decoded.
	Frames uint64 `json:"frames"`
	// CoalescedBatches counts store batch calls produced by gathering
	// pipelined single-op frames; CoalescedOps counts the ops they carried.
	CoalescedBatches uint64 `json:"coalesced_batches"`
	CoalescedOps     uint64 `json:"coalesced_ops"`
	// Errors counts StatusErr responses sent.
	Errors uint64 `json:"errors"`
	// ReadOnlyRejects and StaleRejects count replica refusals: mutations
	// rejected pending promotion, and reads rejected past the staleness
	// bound.
	ReadOnlyRejects uint64 `json:"read_only_rejects,omitempty"`
	StaleRejects    uint64 `json:"stale_rejects,omitempty"`
}

// appendHeader appends a frame header for a payload of n bytes (tag
// included in the length, as on the wire).
func appendHeader(dst []byte, tag byte, n int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n+1))
	return append(dst, tag)
}

// AppendFrame appends a complete frame with an opaque payload.
func AppendFrame(dst []byte, tag byte, payload []byte) []byte {
	dst = appendHeader(dst, tag, len(payload))
	return append(dst, payload...)
}

// AppendEmpty appends a frame with no payload (OpStats, StatusOK acks,
// StatusNotFound).
func AppendEmpty(dst []byte, tag byte) []byte { return appendHeader(dst, tag, 0) }

// AppendKey appends a one-key request frame (OpGet, OpDel).
func AppendKey(dst []byte, op byte, key uint64) []byte {
	dst = appendHeader(dst, op, 8)
	return binary.LittleEndian.AppendUint64(dst, key)
}

// AppendPut appends an OpPut frame.
func AppendPut(dst []byte, key, value uint64) []byte {
	dst = appendHeader(dst, OpPut, 16)
	dst = binary.LittleEndian.AppendUint64(dst, key)
	return binary.LittleEndian.AppendUint64(dst, value)
}

// AppendKeyBatch appends a keys-only batch request frame (OpGetBatch,
// OpDelBatch) through the shared op codec.
func AppendKeyBatch(dst []byte, tag byte, keys []uint64) []byte {
	dst = appendHeader(dst, tag, 4+8*len(keys))
	return op.AppendKeysPayload(dst, keys)
}

// AppendPutBatch appends an OpPutBatch frame through the shared op
// codec; len(keys) must equal len(values).
func AppendPutBatch(dst []byte, keys, values []uint64) []byte {
	dst = appendHeader(dst, OpPutBatch, 4+16*len(keys))
	return op.AppendPairsPayload(dst, keys, values)
}

// AppendBatch appends a batch request frame carrying b's payload under
// its own code — the one encoder every layer shares. A batch decoded
// from received bytes re-emits them without an encoding pass.
func AppendBatch(dst []byte, b *op.Batch) []byte {
	code, payload := b.Payload()
	return AppendFrame(dst, code, payload)
}

// AppendMixedBatch appends an OpMixedBatch request frame, pinning the
// mixed layout even for a uniform batch — the response layout follows
// the request opcode, so the submitting client must know which one went
// out.
func AppendMixedBatch(dst []byte, b *op.Batch) []byte {
	n := b.PayloadSizeMixed()
	dst = appendHeader(dst, OpMixedBatch, n)
	return b.AppendMixedPayload(dst)
}

// DecodeBatch decodes a batch request payload (OpGetBatch, OpPutBatch,
// OpDelBatch, OpMixedBatch) into b. b retains payload (aliased) as its
// pre-encoded form, so the WAL can append it zero-copy; payload must
// stay untouched while b is in use.
func DecodeBatch(tag byte, payload []byte, b *op.Batch) error {
	return op.DecodePayload(tag, payload, b)
}

// AppendValue appends a StatusOK response carrying one value (GET hit).
func AppendValue(dst []byte, value uint64) []byte {
	dst = appendHeader(dst, StatusOK, 8)
	return binary.LittleEndian.AppendUint64(dst, value)
}

// AppendError appends a StatusErr response with a message.
func AppendError(dst []byte, msg string) []byte {
	dst = appendHeader(dst, StatusErr, len(msg))
	return append(dst, msg...)
}

// AppendFoundValues appends the GETBATCH StatusOK response: per-key
// presence flags followed by the (zero-filled where absent) values.
func AppendFoundValues(dst []byte, found []bool, values []uint64) []byte {
	dst = appendHeader(dst, StatusOK, 4+len(found)+8*len(found))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(found)))
	for _, ok := range found {
		dst = append(dst, boolByte(ok))
	}
	for _, v := range values {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// AppendMixedResults appends the MIXEDBATCH StatusOK response: one flag
// per entry (presence for GET/DEL, acceptance for PUT), then one u64
// value per GET entry in entry order (zero where absent).
func AppendMixedResults(dst []byte, b *op.Batch, r *op.Results) []byte {
	n := b.Len()
	dst = appendHeader(dst, StatusOK, 4+n+8*b.Gets())
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	for _, ok := range r.Found {
		dst = append(dst, boolByte(ok))
	}
	for i, k := range b.Kinds() {
		if k == op.Get {
			dst = binary.LittleEndian.AppendUint64(dst, r.Vals[i])
		}
	}
	return dst
}

// DecodeMixedResults decodes a MIXEDBATCH StatusOK payload against the
// kinds of the batch that was sent, filling r with one outcome per
// entry.
func DecodeMixedResults(payload []byte, kinds []op.Kind, r *op.Results) error {
	n := len(kinds)
	if len(payload) < 4 {
		return fmt.Errorf("wire: mixed batch response %d bytes, need at least 4", len(payload))
	}
	if got := int(Uint32(payload, 0)); got != n {
		return fmt.Errorf("wire: mixed batch response carries %d entries, want %d", got, n)
	}
	gets := 0
	for _, k := range kinds {
		if k == op.Get {
			gets++
		}
	}
	if want := 4 + n + 8*gets; len(payload) != want {
		return fmt.Errorf("wire: mixed batch response %d bytes, want %d", len(payload), want)
	}
	r.Reset(n)
	valCol := payload[4+n:]
	vi := 0
	for i, k := range kinds {
		r.Found[i] = payload[4+i] == 1
		if k == op.Get {
			r.Vals[i] = Uint64(valCol, 8*vi)
			vi++
		}
	}
	return nil
}

// AppendFound appends the DELBATCH StatusOK response: per-key presence.
func AppendFound(dst []byte, found []bool) []byte {
	dst = appendHeader(dst, StatusOK, 4+len(found))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(found)))
	for _, ok := range found {
		dst = append(dst, boolByte(ok))
	}
	return dst
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ReadFrame reads one frame from r, reusing buf for the payload when it
// fits. It returns the tag, the payload (valid until the next call that
// reuses buf), the possibly grown buffer, and the first error. A length
// below 1 or above MaxFrame is rejected before any payload is read.
func ReadFrame(r io.Reader, buf []byte) (tag byte, payload, newBuf []byte, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, buf, fmt.Errorf("wire: frame length %d out of range [1, %d]", n, MaxFrame)
	}
	tag = hdr[4]
	body := int(n) - 1
	if cap(buf) < body {
		buf = make([]byte, body)
	}
	payload = buf[:body]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, fmt.Errorf("wire: short frame body: %w", err)
	}
	return tag, payload, buf, nil
}

// Uint64 decodes the u64 at offset off of a payload.
func Uint64(p []byte, off int) uint64 { return binary.LittleEndian.Uint64(p[off:]) }

// Uint32 decodes the u32 at offset off of a payload.
func Uint32(p []byte, off int) uint32 { return binary.LittleEndian.Uint32(p[off:]) }

package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vmshortcut/internal/op"
)

func TestReplFrameRoundTrips(t *testing.T) {
	tag, p := roundTrip(t, AppendReplSync(nil, 42, ReplFlagChained))
	if tag != OpReplSync {
		t.Fatalf("REPLSYNC tag = %d", tag)
	}
	from, flags, err := DecodeReplSync(p)
	if err != nil || from != 42 || flags != ReplFlagChained {
		t.Fatalf("REPLSYNC decode = (%d, 0x%02x, %v)", from, flags, err)
	}

	tag, p = roundTrip(t, AppendReplSnapBegin(nil, 7, 123456))
	if tag != ReplSnapBegin {
		t.Fatalf("SNAPBEGIN tag = %d", tag)
	}
	lsn, size, err := DecodeReplSnapBegin(p)
	if err != nil || lsn != 7 || size != 123456 {
		t.Fatalf("SNAPBEGIN decode = (%d, %d, %v)", lsn, size, err)
	}

	var b op.Batch
	b.Put(1, 2)
	b.Del(3)
	b.Get(4)
	code, payload := b.Payload()

	tag, p = roundTrip(t, AppendReplRecord(nil, 9, code, nil, payload))
	if tag != ReplRecord {
		t.Fatalf("RECORD tag = %d", tag)
	}
	lsn, gotCode, hash, gotPayload, err := DecodeReplRecord(tag, p)
	if err != nil || lsn != 9 || gotCode != code || hash != nil {
		t.Fatalf("RECORD decode = (%d, 0x%02x, %v, %v)", lsn, gotCode, hash, err)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("RECORD payload not byte-identical")
	}

	var digest [ReplHashSize]byte
	for i := range digest {
		digest[i] = byte(i)
	}
	tag, p = roundTrip(t, AppendReplRecord(nil, 10, code, &digest, payload))
	if tag != ReplRecordHashed {
		t.Fatalf("RECORDHASHED tag = %d", tag)
	}
	lsn, gotCode, hash, gotPayload, err = DecodeReplRecord(tag, p)
	if err != nil || lsn != 10 || gotCode != code || !bytes.Equal(hash, digest[:]) {
		t.Fatalf("RECORDHASHED decode = (%d, 0x%02x, %x, %v)", lsn, gotCode, hash, err)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("RECORDHASHED payload not byte-identical")
	}

	for _, u64tag := range []byte{ReplHeartbeat, ReplAck} {
		tag, p = roundTrip(t, AppendReplU64(nil, u64tag, 1<<40))
		if tag != u64tag {
			t.Fatalf("u64 frame tag = %d, want %d", tag, u64tag)
		}
		if got, err := DecodeReplU64(p); err != nil || got != 1<<40 {
			t.Fatalf("u64 frame decode = (%d, %v)", got, err)
		}
	}

	tag, p = roundTrip(t, AppendReplSync(nil, 8, ReplFlagChained|ReplFlagTrace))
	if tag != OpReplSync {
		t.Fatalf("trace REPLSYNC tag = %d", tag)
	}
	if from, flags, err := DecodeReplSync(p); err != nil || from != 8 || flags != ReplFlagChained|ReplFlagTrace {
		t.Fatalf("trace REPLSYNC decode = (%d, 0x%02x, %v)", from, flags, err)
	}

	tag, p = roundTrip(t, AppendReplTraceMeta(nil, 21, 0xCAFEBABE, -42))
	if tag != ReplTraceMeta {
		t.Fatalf("TRACEMETA tag = %d", tag)
	}
	mLSN, mID, mNS, err := DecodeReplTraceMeta(p)
	if err != nil || mLSN != 21 || mID != 0xCAFEBABE || mNS != -42 {
		t.Fatalf("TRACEMETA decode = (%d, %x, %d, %v)", mLSN, mID, mNS, err)
	}

	tag, p = roundTrip(t, AppendReplSpan(nil, 0xCAFEBABE, 21, 999))
	if tag != ReplSpan {
		t.Fatalf("SPAN tag = %d", tag)
	}
	sID, sLSN, sNS, err := DecodeReplSpan(p)
	if err != nil || sID != 0xCAFEBABE || sLSN != 21 || sNS != 999 {
		t.Fatalf("SPAN decode = (%x, %d, %d, %v)", sID, sLSN, sNS, err)
	}
}

func TestDecodeReplRejectsMalformed(t *testing.T) {
	if _, _, err := DecodeReplSync([]byte{1, 2, 3}); err == nil {
		t.Fatal("short REPLSYNC accepted")
	}
	if _, _, err := DecodeReplSync(append(make([]byte, 8), 0xFE)); err == nil {
		t.Fatal("unknown REPLSYNC flags accepted")
	}
	if _, _, err := DecodeReplSnapBegin(make([]byte, 15)); err == nil {
		t.Fatal("short SNAPBEGIN accepted")
	}
	if _, _, _, _, err := DecodeReplRecord(ReplRecord, make([]byte, 12)); err == nil {
		t.Fatal("truncated record frame accepted")
	}
	bad := make([]byte, 13)
	bad[8] = OpGet // not a batch code
	if _, _, _, _, err := DecodeReplRecord(ReplRecord, bad); err == nil {
		t.Fatal("non-batch record code accepted")
	}
	if _, _, _, _, err := DecodeReplRecord(ReplHeartbeat, make([]byte, 64)); err == nil {
		t.Fatal("non-record tag accepted")
	}
	if _, err := DecodeReplU64(make([]byte, 7)); err == nil {
		t.Fatal("short position frame accepted")
	}
	if _, _, _, err := DecodeReplTraceMeta(make([]byte, 23)); err == nil {
		t.Fatal("short TRACEMETA accepted")
	}
	if _, _, _, err := DecodeReplSpan(make([]byte, 23)); err == nil {
		t.Fatal("short SPAN accepted")
	}
}

// TestReadReplFrameAdmitsOversizedRecords pins why ReadReplFrame exists:
// a max-size batch plus the stream prefix overflows the request bound,
// and must still flow on a replication stream.
func TestReadReplFrameAdmitsOversizedRecords(t *testing.T) {
	payload := make([]byte, MaxFrame+20)
	frame := AppendFrame(nil, ReplSnapChunk, payload)
	if _, _, _, err := ReadFrame(bytes.NewReader(frame), nil); err == nil {
		t.Fatal("request-path reader accepted an oversized frame")
	}
	tag, p, _, err := ReadReplFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("ReadReplFrame: %v", err)
	}
	if tag != ReplSnapChunk || len(p) != len(payload) {
		t.Fatalf("ReadReplFrame = tag %d, %d bytes", tag, len(p))
	}
	huge := make([]byte, HeaderSize)
	huge[0] = 0xFF
	huge[1] = 0xFF
	huge[2] = 0xFF
	huge[3] = 0x7F
	if _, _, _, err := ReadReplFrame(bytes.NewReader(huge), nil); err == nil {
		t.Fatal("ReadReplFrame accepted an unbounded length")
	}
}

// TestStatsReplyVersionSkew is the rollout contract (see StatsReply): an
// old binary must decode a newer server's reply — unknown sections and
// counters skipped, known fields intact — and a new binary must decode an
// old server's reply with the replication fields at their zero values.
func TestStatsReplyVersionSkew(t *testing.T) {
	// A "future" server: every known section has extra fields, plus a
	// whole unknown top-level section.
	future := `{
		"server": {"active_conns": 3, "ops": 77, "qps_estimate": 123.4},
		"store": {"len": 9},
		"durability": {"wal_records": 5, "wal_group_commits": 2},
		"role": "replica",
		"replication": {
			"primary": {"followers": 2, "lag_records": 9, "lag_ms": 4, "quorum_acks": 1},
			"replica": {"primary_addr": "h:1", "applied_lsn": 5, "lag_records": 3, "lag_ms": 12, "lag_histogram": [1,2,3]},
			"consensus": {"term": 7}
		},
		"obs": {
			"stages": {
				"shard_apply": {"count": 4, "p99_ns": 900, "p999_ns": 1200},
				"gpu_offload": {"count": 1, "p99_ns": 5}
			},
			"frames_by_op": {"get": 2, "teleport": 1},
			"slow_ops": 3,
			"trace_spans": 12
		},
		"hotkeys": {
			"hit_rate": 0.75,
			"cache_reads": 30,
			"cache_misses": 10,
			"top": [{"key": 7, "hits": 21, "last_seen_ns": 99}],
			"evictions": 5
		},
		"sharding": {"shards": 16}
	}`
	var r StatsReply
	if err := json.Unmarshal([]byte(future), &r); err != nil {
		t.Fatalf("future reply must decode: %v", err)
	}
	if r.Server.ActiveConns != 3 || r.Server.Ops != 77 || r.Durability.WALRecords != 5 {
		t.Fatalf("known fields lost: %+v", r)
	}
	if r.Role != "replica" || r.Replication == nil || r.Replication.Replica == nil {
		t.Fatalf("replication section lost: %+v", r.Replication)
	}
	if r.Replication.Replica.PrimaryAddr != "h:1" || r.Replication.Replica.AppliedLSN != 5 {
		t.Fatalf("replica counters lost: %+v", r.Replication.Replica)
	}
	// The lag gauges ride the same add-only contract on both ends.
	if r.Replication.Replica.LagRecords != 3 || r.Replication.Replica.LagMS != 12 {
		t.Fatalf("replica lag fields lost: %+v", r.Replication.Replica)
	}
	if r.Replication.Primary == nil || r.Replication.Primary.LagRecords != 9 || r.Replication.Primary.LagMS != 4 {
		t.Fatalf("primary lag fields lost: %+v", r.Replication.Primary)
	}
	// The obs section rides the same contract: stage maps keep keys this
	// binary has never heard of, and summaries tolerate extra percentile
	// fields.
	if r.Obs == nil || r.Obs.SlowOps != 3 {
		t.Fatalf("obs section lost: %+v", r.Obs)
	}
	if got := r.Obs.Stages["shard_apply"]; got.Count != 4 || got.P99NS != 900 {
		t.Fatalf("known stage summary lost: %+v", got)
	}
	if got := r.Obs.Stages["gpu_offload"]; got.Count != 1 {
		t.Fatalf("unknown stage key dropped: %+v", r.Obs.Stages)
	}
	if r.Obs.Frames["teleport"] != 1 {
		t.Fatalf("unknown frame opcode dropped: %+v", r.Obs.Frames)
	}
	// The hotkeys section rides the same contract: known fields intact,
	// extra fields (on the section and on each top entry) skipped.
	if r.Hotkeys == nil || r.Hotkeys.HitRate != 0.75 || r.Hotkeys.CacheReads != 30 || r.Hotkeys.CacheMisses != 10 {
		t.Fatalf("hotkeys section lost: %+v", r.Hotkeys)
	}
	if len(r.Hotkeys.Top) != 1 || r.Hotkeys.Top[0].Key != 7 || r.Hotkeys.Top[0].Hits != 21 {
		t.Fatalf("hotkeys top entries lost: %+v", r.Hotkeys.Top)
	}

	// An "old" server: no role, no replication, no hotkeys.
	old := `{"server": {"ops": 1}, "store": {}, "durability": {}}`
	r = StatsReply{}
	if err := json.Unmarshal([]byte(old), &r); err != nil {
		t.Fatalf("old reply must decode: %v", err)
	}
	if r.Role != "" || r.Replication != nil {
		t.Fatalf("old reply grew replication state: %+v", r)
	}
	if r.Hotkeys != nil {
		t.Fatalf("old reply grew a hotkeys section: %+v", r.Hotkeys)
	}

	// And the new fields stay out of the payload when unset, so old
	// strict readers (none exist, but the bytes are the contract) see the
	// shape they always saw.
	blob, err := json.Marshal(StatsReply{})
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"role", "replication", "read_only_rejects", "stale_rejects", "obs", "hotkeys"} {
		if strings.Contains(string(blob), banned) {
			t.Fatalf("zero-value reply leaks %q: %s", banned, blob)
		}
	}
}

// FuzzDecodeReplFrame throws arbitrary tag/payload pairs at the
// replication decoders: they must never panic, and whatever they accept
// must re-encode to the identical frame (the codec is bijective), same
// harness style as FuzzDecodeMixedPayload.
func FuzzDecodeReplFrame(f *testing.F) {
	var b op.Batch
	b.Put(1, 2)
	b.Get(3)
	code, payload := b.Payload()
	var digest [ReplHashSize]byte
	digest[0] = 0xAB
	seed := func(frame []byte) { f.Add(frame[4], frame[HeaderSize:]) }
	seed(AppendReplSync(nil, 0, 0))
	seed(AppendReplSync(nil, 99, ReplFlagChained))
	seed(AppendReplSnapBegin(nil, 12, 1<<20))
	seed(AppendReplRecord(nil, 13, code, nil, payload))
	seed(AppendReplRecord(nil, 13, code, &digest, payload))
	seed(AppendReplU64(nil, ReplHeartbeat, 5))
	seed(AppendReplU64(nil, ReplAck, 5))
	seed(AppendReplTraceMeta(nil, 6, 0xF00D, 123456789))
	seed(AppendReplSpan(nil, 0xF00D, 6, 4242))
	f.Add(ReplRecord, []byte{})
	f.Add(OpReplSync, make([]byte, replSyncSize))
	f.Fuzz(func(t *testing.T, tag byte, p []byte) {
		switch tag {
		case OpReplSync:
			from, flags, err := DecodeReplSync(p)
			if err != nil {
				return
			}
			if re := AppendReplSync(nil, from, flags)[HeaderSize:]; !bytes.Equal(re, p) {
				t.Fatalf("REPLSYNC re-encode differs: %x vs %x", re, p)
			}
		case ReplSnapBegin:
			lsn, size, err := DecodeReplSnapBegin(p)
			if err != nil {
				return
			}
			if re := AppendReplSnapBegin(nil, lsn, size)[HeaderSize:]; !bytes.Equal(re, p) {
				t.Fatalf("SNAPBEGIN re-encode differs: %x vs %x", re, p)
			}
		case ReplRecord, ReplRecordHashed:
			lsn, code, hash, payload, err := DecodeReplRecord(tag, p)
			if err != nil {
				return
			}
			var hp *[ReplHashSize]byte
			if hash != nil {
				hp = new([ReplHashSize]byte)
				copy(hp[:], hash)
			}
			re := AppendReplRecord(nil, lsn, code, hp, payload)
			if re[4] != tag || !bytes.Equal(re[HeaderSize:], p) {
				t.Fatalf("record re-encode differs")
			}
		case ReplHeartbeat, ReplAck:
			lsn, err := DecodeReplU64(p)
			if err != nil {
				return
			}
			if re := AppendReplU64(nil, tag, lsn)[HeaderSize:]; !bytes.Equal(re, p) {
				t.Fatalf("position re-encode differs: %x vs %x", re, p)
			}
		case ReplTraceMeta:
			lsn, id, ns, err := DecodeReplTraceMeta(p)
			if err != nil {
				return
			}
			if re := AppendReplTraceMeta(nil, lsn, id, ns)[HeaderSize:]; !bytes.Equal(re, p) {
				t.Fatalf("TRACEMETA re-encode differs: %x vs %x", re, p)
			}
		case ReplSpan:
			id, lsn, ns, err := DecodeReplSpan(p)
			if err != nil {
				return
			}
			if re := AppendReplSpan(nil, id, lsn, ns)[HeaderSize:]; !bytes.Equal(re, p) {
				t.Fatalf("SPAN re-encode differs: %x vs %x", re, p)
			}
		}
	})
}

package wire_test

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"vmshortcut/internal/op"
	"vmshortcut/internal/wire"
	"vmshortcut/wal"
)

// TestWALOpcodesMatchWire pins what is now true by construction: the
// wire protocol's batch opcodes and the WAL's record opcodes are the
// SAME constants — both alias internal/op's batch codes, so there is one
// code path and one set of values, not two kept equal by convention.
func TestWALOpcodesMatchWire(t *testing.T) {
	pairs := []struct {
		name          string
		walOp, wireOp byte
	}{
		{"put", wal.OpPut, wire.OpPutBatch},
		{"del", wal.OpDel, wire.OpDelBatch},
		{"mixed", wal.OpMixed, wire.OpMixedBatch},
	}
	for _, p := range pairs {
		if p.walOp != p.wireOp {
			t.Fatalf("%s: wal opcode %#x != wire opcode %#x", p.name, p.walOp, p.wireOp)
		}
	}
	if op.CodePutBatch != 0x06 || op.CodeDelBatch != 0x07 || op.CodeMixedBatch != 0x08 {
		t.Fatalf("op batch codes moved: %#x %#x %#x — on-disk WAL compatibility broken",
			op.CodePutBatch, op.CodeDelBatch, op.CodeMixedBatch)
	}
}

// TestWALRecordIsWirePayload drives the whole contract end to end
// through the REAL code paths: a batch frame's payload, decoded exactly
// as the server decodes it, appended to a real log via the zero-copy
// path, must appear on disk byte-for-byte as the record's payload — for
// a uniform PUT batch (the PR 4 layout, unchanged) and for a mixed
// batch. No re-encoding happened in between: op.Encodings stays flat
// across decode → Payload → append.
func TestWALRecordIsWirePayload(t *testing.T) {
	// Build the frames a client would send.
	putFrame := wire.AppendPutBatch(nil, []uint64{1, 2}, []uint64{10, 20})
	var m op.Batch
	m.Get(5)
	m.Put(6, 66)
	m.Del(7)
	mixedFrame := wire.AppendMixedBatch(nil, &m)

	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Mode: wal.FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wantPayloads [][]byte
	encBefore := op.Encodings()
	for _, frame := range [][]byte{putFrame, mixedFrame} {
		tag, payload := frame[4], frame[wire.HeaderSize:]
		var b op.Batch
		if err := wire.DecodeBatch(tag, payload, &b); err != nil {
			t.Fatal(err)
		}
		code, recPayload := b.Payload()
		if code != tag || !bytes.Equal(recPayload, payload) {
			t.Fatalf("decoded batch's payload (code %#x) differs from the frame payload", code)
		}
		if _, err := l.AppendBatch(code, recPayload); err != nil {
			t.Fatal(err)
		}
		wantPayloads = append(wantPayloads, payload)
	}
	if got := op.Encodings(); got != encBefore {
		t.Fatalf("wire→WAL path performed %d encoding passes, want 0", got-encBefore)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Parse the segment by hand and compare each record's payload (after
	// the 8-byte record header, the 8-byte LSN, and the code byte) to the
	// frame payload that produced it.
	blob, err := os.ReadFile(filepath.Join(dir, "wal-0000000000000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	offset := 0
	for i, want := range wantPayloads {
		payloadLen := int(binary.LittleEndian.Uint32(blob[offset:]))
		rec := blob[offset+8 : offset+8+payloadLen]
		lsn, code := binary.LittleEndian.Uint64(rec), rec[8]
		if lsn != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, lsn)
		}
		wantCode := wire.OpPutBatch
		if i == 1 {
			wantCode = wire.OpMixedBatch
		}
		if code != wantCode {
			t.Fatalf("record %d code %#x, want %#x", i, code, wantCode)
		}
		if !bytes.Equal(rec[9:], want) {
			t.Fatalf("record %d payload differs from the wire frame payload", i)
		}
		offset += 8 + payloadLen
	}
	if offset != len(blob) {
		t.Fatalf("segment has %d trailing bytes", len(blob)-offset)
	}
}

// TestShippedRecordIsWirePayload extends the zero-re-encode contract
// across the replication hop: a WAL record's payload, shipped in a
// ReplRecord frame and decoded exactly as a follower decodes it, must
// land in the follower's own log byte-identical to the primary's record
// — no encoding pass anywhere from the primary's disk to the replica's.
// This is what lets a replica's WAL be audited (and chain-verified)
// against the primary's.
func TestShippedRecordIsWirePayload(t *testing.T) {
	// The primary-side record: a mixed batch as a client frame would
	// produce it.
	var m op.Batch
	m.Get(5)
	m.Put(6, 66)
	m.Del(7)
	code, primaryPayload := m.Payload()

	// Ship it: primary side builds the frame straight from the record
	// bytes; follower side decodes it back out.
	frame := wire.AppendReplRecord(nil, 1, code, nil, primaryPayload)
	tag := frame[4]
	lsn, gotCode, hash, shipped, err := wire.DecodeReplRecord(tag, frame[wire.HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 1 || gotCode != code || hash != nil {
		t.Fatalf("DecodeReplRecord = lsn %d code %#x hash %v", lsn, gotCode, hash)
	}
	if !bytes.Equal(shipped, primaryPayload) {
		t.Fatal("shipped payload differs from the primary's record payload")
	}

	// Apply it the follower's way — DecodeBatch into the shared batch,
	// then the batch's Payload is what a durable follower appends — and
	// pin that the whole hop performed zero encoding passes.
	encBefore := op.Encodings()
	var b op.Batch
	if err := wire.DecodeBatch(gotCode, shipped, &b); err != nil {
		t.Fatal(err)
	}
	followerCode, followerPayload := b.Payload()
	if got := op.Encodings(); got != encBefore {
		t.Fatalf("replication hop performed %d encoding passes, want 0", got-encBefore)
	}
	if followerCode != code || !bytes.Equal(followerPayload, primaryPayload) {
		t.Fatal("follower's log payload differs from the primary's record payload")
	}

	// And on disk: append to a real follower-side log and compare the
	// raw record bytes.
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Mode: wal.FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(followerCode, followerPayload); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "wal-0000000000000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	payloadLen := int(binary.LittleEndian.Uint32(blob))
	rec := blob[8 : 8+payloadLen]
	if rec[8] != code || !bytes.Equal(rec[9:], primaryPayload) {
		t.Fatal("follower's on-disk record differs from the primary's payload bytes")
	}
}

package wire_test

import (
	"testing"

	"vmshortcut/internal/wire"
	"vmshortcut/wal"
)

// TestWALOpcodesMatchWire pins the cross-package contract the WAL's
// record format documents: its PUT/DEL opcodes are the wire protocol's
// batch opcodes, so a coalesced batch frame and the log record it becomes
// agree byte-for-byte on tag and element packing. (wal cannot import
// internal/wire — the dependency would be cyclic through the root
// package — so the equality is asserted here instead.)
func TestWALOpcodesMatchWire(t *testing.T) {
	if wal.OpPut != wire.OpPutBatch {
		t.Fatalf("wal.OpPut = %#x, wire.OpPutBatch = %#x", wal.OpPut, wire.OpPutBatch)
	}
	if wal.OpDel != wire.OpDelBatch {
		t.Fatalf("wal.OpDel = %#x, wire.OpDelBatch = %#x", wal.OpDel, wire.OpDelBatch)
	}
}

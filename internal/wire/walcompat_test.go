package wire_test

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"vmshortcut/internal/op"
	"vmshortcut/internal/wire"
	"vmshortcut/wal"
)

// TestWALOpcodesMatchWire pins what is now true by construction: the
// wire protocol's batch opcodes and the WAL's record opcodes are the
// SAME constants — both alias internal/op's batch codes, so there is one
// code path and one set of values, not two kept equal by convention.
func TestWALOpcodesMatchWire(t *testing.T) {
	pairs := []struct {
		name          string
		walOp, wireOp byte
	}{
		{"put", wal.OpPut, wire.OpPutBatch},
		{"del", wal.OpDel, wire.OpDelBatch},
		{"mixed", wal.OpMixed, wire.OpMixedBatch},
	}
	for _, p := range pairs {
		if p.walOp != p.wireOp {
			t.Fatalf("%s: wal opcode %#x != wire opcode %#x", p.name, p.walOp, p.wireOp)
		}
	}
	if op.CodePutBatch != 0x06 || op.CodeDelBatch != 0x07 || op.CodeMixedBatch != 0x08 {
		t.Fatalf("op batch codes moved: %#x %#x %#x — on-disk WAL compatibility broken",
			op.CodePutBatch, op.CodeDelBatch, op.CodeMixedBatch)
	}
}

// TestWALRecordIsWirePayload drives the whole contract end to end
// through the REAL code paths: a batch frame's payload, decoded exactly
// as the server decodes it, appended to a real log via the zero-copy
// path, must appear on disk byte-for-byte as the record's payload — for
// a uniform PUT batch (the PR 4 layout, unchanged) and for a mixed
// batch. No re-encoding happened in between: op.Encodings stays flat
// across decode → Payload → append.
func TestWALRecordIsWirePayload(t *testing.T) {
	// Build the frames a client would send.
	putFrame := wire.AppendPutBatch(nil, []uint64{1, 2}, []uint64{10, 20})
	var m op.Batch
	m.Get(5)
	m.Put(6, 66)
	m.Del(7)
	mixedFrame := wire.AppendMixedBatch(nil, &m)

	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Mode: wal.FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wantPayloads [][]byte
	encBefore := op.Encodings()
	for _, frame := range [][]byte{putFrame, mixedFrame} {
		tag, payload := frame[4], frame[wire.HeaderSize:]
		var b op.Batch
		if err := wire.DecodeBatch(tag, payload, &b); err != nil {
			t.Fatal(err)
		}
		code, recPayload := b.Payload()
		if code != tag || !bytes.Equal(recPayload, payload) {
			t.Fatalf("decoded batch's payload (code %#x) differs from the frame payload", code)
		}
		if _, err := l.AppendBatch(code, recPayload); err != nil {
			t.Fatal(err)
		}
		wantPayloads = append(wantPayloads, payload)
	}
	if got := op.Encodings(); got != encBefore {
		t.Fatalf("wire→WAL path performed %d encoding passes, want 0", got-encBefore)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Parse the segment by hand and compare each record's payload (after
	// the 8-byte record header, the 8-byte LSN, and the code byte) to the
	// frame payload that produced it.
	blob, err := os.ReadFile(filepath.Join(dir, "wal-0000000000000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	offset := 0
	for i, want := range wantPayloads {
		payloadLen := int(binary.LittleEndian.Uint32(blob[offset:]))
		rec := blob[offset+8 : offset+8+payloadLen]
		lsn, code := binary.LittleEndian.Uint64(rec), rec[8]
		if lsn != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, lsn)
		}
		wantCode := wire.OpPutBatch
		if i == 1 {
			wantCode = wire.OpMixedBatch
		}
		if code != wantCode {
			t.Fatalf("record %d code %#x, want %#x", i, code, wantCode)
		}
		if !bytes.Equal(rec[9:], want) {
			t.Fatalf("record %d payload differs from the wire frame payload", i)
		}
		offset += 8 + payloadLen
	}
	if offset != len(blob) {
		t.Fatalf("segment has %d trailing bytes", len(blob)-offset)
	}
}

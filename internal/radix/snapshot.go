package radix

// Snapshots for the radix map, mirroring eh's: occupied leaf pages plus
// their slot numbers serialize to a compact self-contained stream.

import (
	"encoding/binary"
	"fmt"
	"io"

	"vmshortcut/internal/pool"
	"vmshortcut/internal/sys"
)

// snapshotMagic identifies and versions the radix snapshot format.
const snapshotMagic = uint64(0x5643_5244_5853_0001) // "VCRDXS" v1

// WriteSnapshot serializes the map: header, then (slot, page) pairs for
// every occupied slot.
func (m *Map) WriteSnapshot(w io.Writer) error {
	occupied := 0
	for _, r := range m.refs {
		if r != pool.NoRef {
			occupied++
		}
	}
	hdr := []uint64{snapshotMagic, uint64(sys.PageSize()), m.cfg.Capacity,
		uint64(m.count), uint64(occupied)}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("radix: snapshot header: %w", err)
		}
	}
	for slot, r := range m.refs {
		if r == pool.NoRef {
			continue
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(slot)); err != nil {
			return fmt.Errorf("radix: snapshot slot: %w", err)
		}
		if _, err := w.Write(m.pool.Page(r)); err != nil {
			return fmt.Errorf("radix: snapshot page: %w", err)
		}
	}
	return nil
}

// RestoreMap reads a snapshot produced by WriteSnapshot into a fresh map
// backed by p. cfg.Capacity is taken from the snapshot; DisableShortcut is
// honoured from cfg.
func RestoreMap(p *pool.Pool, cfg Config, r io.Reader) (*Map, error) {
	var hdr [5]uint64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("radix: restore header: %w", err)
	}
	if hdr[0] != snapshotMagic {
		return nil, fmt.Errorf("radix: restore: bad magic %#x", hdr[0])
	}
	if hdr[1] != uint64(sys.PageSize()) {
		return nil, fmt.Errorf("radix: restore: page size %d != host %d", hdr[1], sys.PageSize())
	}
	cfg.Capacity = hdr[2]
	m, err := New(p, cfg)
	if err != nil {
		return nil, err
	}
	occupied := int(hdr[4])
	for i := 0; i < occupied; i++ {
		var slot uint64
		if err := binary.Read(r, binary.LittleEndian, &slot); err != nil {
			m.Close()
			return nil, fmt.Errorf("radix: restore slot: %w", err)
		}
		if slot >= uint64(m.slots) {
			m.Close()
			return nil, fmt.Errorf("radix: restore: slot %d out of %d", slot, m.slots)
		}
		ref, err := p.Alloc()
		if err != nil {
			m.Close()
			return nil, err
		}
		if _, err := io.ReadFull(r, p.Page(ref)); err != nil {
			p.Free(ref)
			m.Close()
			return nil, fmt.Errorf("radix: restore page: %w", err)
		}
		m.refs[slot] = ref
		m.trad.Set(int(slot), ref)
		if m.sc != nil {
			if err := m.sc.Set(int(slot), ref, true); err != nil {
				m.Close()
				return nil, err
			}
		}
		m.LeafAllocs++
	}
	m.count = int(hdr[3])
	return m, nil
}

package radix

import (
	"bytes"
	"testing"

	"vmshortcut/internal/pool"
)

func newBarePool(t testing.TB) *pool.Pool {
	t.Helper()
	p, err := pool.New(pool.Config{GrowChunkPages: 8, MaxPages: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestRadixSnapshotRoundTrip(t *testing.T) {
	_, src := newMap(t, Config{Capacity: 200000})
	for k := uint64(0); k < 200000; k += 13 {
		src.Set(k, k^7)
	}
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	dst, err := RestoreMap(newBarePool(t), Config{}, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("RestoreMap: %v", err)
	}
	defer dst.Close()
	if dst.Len() != src.Len() {
		t.Fatalf("len %d != %d", dst.Len(), src.Len())
	}
	for k := uint64(0); k < 200000; k++ {
		sv, sok := src.Get(k)
		dv, dok := dst.Get(k)
		if sok != dok || sv != dv {
			t.Fatalf("key %d: src (%d,%v) dst (%d,%v)", k, sv, sok, dv, dok)
		}
	}
	// Independence.
	src.Set(0, 999)
	if v, ok := dst.Get(0); ok && v == 999 {
		t.Fatal("restored map aliases the source")
	}
}

func TestRadixSnapshotRejectsGarbage(t *testing.T) {
	p := newBarePool(t)
	if _, err := RestoreMap(p, Config{}, bytes.NewReader([]byte("garbage stream here, not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated stream.
	_, src := newMap(t, Config{Capacity: 10000})
	for k := uint64(0); k < 10000; k += 3 {
		src.Set(k, k)
	}
	var buf bytes.Buffer
	src.WriteSnapshot(&buf)
	if _, err := RestoreMap(p, Config{}, bytes.NewReader(buf.Bytes()[:buf.Len()/3])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestRadixSnapshotRestoredGrows(t *testing.T) {
	_, src := newMap(t, Config{Capacity: 50000})
	for k := uint64(0); k < 25000; k += 5 {
		src.Set(k, k)
	}
	var buf bytes.Buffer
	src.WriteSnapshot(&buf)
	dst, err := RestoreMap(newBarePool(t), Config{}, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	// Keep writing into fresh and existing leaves.
	for k := uint64(25000); k < 50000; k += 5 {
		if err := dst.Set(k, k); err != nil {
			t.Fatalf("post-restore Set(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < 50000; k += 5 {
		if v, ok := dst.Get(k); !ok || v != k {
			t.Fatalf("post-restore Get(%d) = %d,%v", k, v, ok)
		}
	}
}

package radix

import (
	"errors"
	"testing"
	"testing/quick"

	"vmshortcut/internal/pool"
)

func newMap(t testing.TB, cfg Config) (*pool.Pool, *Map) {
	t.Helper()
	p, err := pool.New(pool.Config{GrowChunkPages: 8, MaxPages: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, cfg)
	if err != nil {
		p.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close(); p.Close() })
	return p, m
}

func TestSetGet(t *testing.T) {
	_, m := newMap(t, Config{Capacity: 100000})
	for k := uint64(0); k < 5000; k += 3 {
		if err := m.Set(k, k*2); err != nil {
			t.Fatalf("Set(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < 5000; k++ {
		v, ok := m.Get(k)
		if k%3 == 0 {
			if !ok || v != k*2 {
				t.Fatalf("Get(%d) = %d,%v", k, v, ok)
			}
		} else if ok {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestZeroValueIsStorable(t *testing.T) {
	// Presence comes from the bitmap, so storing value 0 must work.
	_, m := newMap(t, Config{Capacity: 1000})
	m.Set(7, 0)
	if v, ok := m.Get(7); !ok || v != 0 {
		t.Fatalf("Get(7) = %d,%v, want 0,true", v, ok)
	}
}

func TestShortcutAndTraditionalAgree(t *testing.T) {
	_, m := newMap(t, Config{Capacity: 50000})
	for k := uint64(0); k < 50000; k += 7 {
		m.Set(k, k+1)
	}
	for k := uint64(0); k < 50000; k++ {
		sv, sok := m.Get(k)
		tv, tok := m.GetTraditional(k)
		if sok != tok || sv != tv {
			t.Fatalf("key %d: shortcut (%d,%v) != traditional (%d,%v)", k, sv, sok, tv, tok)
		}
	}
}

func TestKeyRange(t *testing.T) {
	_, m := newMap(t, Config{Capacity: 100})
	if err := m.Set(100, 1); !errors.Is(err, ErrKeyRange) {
		t.Fatalf("Set out of range = %v", err)
	}
	if _, ok := m.Get(100); ok {
		t.Fatal("Get out of range succeeded")
	}
	if m.Delete(100) {
		t.Fatal("Delete out of range succeeded")
	}
	if err := m.Set(99, 1); err != nil {
		t.Fatalf("Set(99): %v", err)
	}
}

func TestLeafLifecycle(t *testing.T) {
	p, m := newMap(t, Config{Capacity: 10 * EntriesPerLeaf})
	before := p.Stats().UsedPages

	// Fill one leaf's range.
	base := uint64(3 * EntriesPerLeaf)
	for i := uint64(0); i < EntriesPerLeaf; i++ {
		m.Set(base+i, i)
	}
	if m.LeafAllocs != 1 {
		t.Fatalf("LeafAllocs = %d, want 1", m.LeafAllocs)
	}
	if p.Stats().UsedPages != before+1 {
		t.Fatalf("used pages = %d, want %d", p.Stats().UsedPages, before+1)
	}
	// Drain it: the page must go back to the pool.
	for i := uint64(0); i < EntriesPerLeaf; i++ {
		if !m.Delete(base + i) {
			t.Fatalf("Delete(%d) failed", base+i)
		}
	}
	if m.LeafFrees != 1 {
		t.Fatalf("LeafFrees = %d, want 1", m.LeafFrees)
	}
	if p.Stats().UsedPages != before {
		t.Fatalf("leaf page not returned: used = %d", p.Stats().UsedPages)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	// The range must be reusable.
	m.Set(base+5, 42)
	if v, ok := m.Get(base + 5); !ok || v != 42 {
		t.Fatal("slot not reusable after leaf free")
	}
}

func TestOverwriteKeepsCount(t *testing.T) {
	_, m := newMap(t, Config{Capacity: 1000})
	m.Set(1, 10)
	m.Set(1, 20)
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if v, _ := m.Get(1); v != 20 {
		t.Fatalf("value = %d", v)
	}
}

func TestRangeAscending(t *testing.T) {
	_, m := newMap(t, Config{Capacity: 5000})
	keys := []uint64{4999, 3, 481, 962, 0}
	for _, k := range keys {
		m.Set(k, k+1)
	}
	var got []uint64
	m.Range(func(k, v uint64) bool {
		if v != k+1 {
			t.Fatalf("Range saw (%d,%d)", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("Range visited %d keys", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("Range not ascending")
		}
	}
	// Early stop.
	n := 0
	m.Range(func(k, v uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDisableShortcut(t *testing.T) {
	_, m := newMap(t, Config{Capacity: 10000, DisableShortcut: true})
	for k := uint64(0); k < 10000; k += 11 {
		m.Set(k, k)
	}
	for k := uint64(0); k < 10000; k += 11 {
		if v, ok := m.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestSlotsAccessor(t *testing.T) {
	_, m := newMap(t, Config{Capacity: 10 * EntriesPerLeaf})
	if m.Slots() != 10 {
		t.Fatalf("Slots = %d, want 10", m.Slots())
	}
	_, m2 := newMap(t, Config{Capacity: 10*EntriesPerLeaf + 1})
	if m2.Slots() != 11 {
		t.Fatalf("Slots = %d, want 11 (round up)", m2.Slots())
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	_, m := newMap(t, Config{Capacity: 4096})
	model := map[uint64]uint64{}
	check := func(kRaw uint16, v uint64, op uint8) bool {
		k := uint64(kRaw % 4096)
		switch op % 4 {
		case 0, 1:
			if err := m.Set(k, v); err != nil {
				return false
			}
			model[k] = v
		case 2:
			got, ok := m.Get(k)
			want, mok := model[k]
			if ok != mok || (ok && got != want) {
				return false
			}
		case 3:
			_, mok := model[k]
			if m.Delete(k) != mok {
				return false
			}
			delete(model, k)
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRadixGet(b *testing.B) {
	p, err := pool.New(pool.Config{MaxPages: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	const capacity = 1 << 22
	m, err := New(p, Config{Capacity: capacity})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	for k := uint64(0); k < capacity; k += 16 {
		m.Set(k, k)
	}
	rng := uint64(12345)
	b.Run("Shortcut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			m.Get((rng >> 11) % capacity)
		}
	})
	b.Run("Traditional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			m.GetTraditional((rng >> 11) % capacity)
		}
	})
}

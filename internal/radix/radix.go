// Package radix implements a second shortcut application beyond extendible
// hashing: a sparse direct-mapped index (radix "map") over a bounded
// uint64 key space, the simplest instance of the paper's target class —
// index structures that (a) use page-size nodes and (b) perform a
// radix-style traversal (paper §1.1).
//
// The structure is one wide inner node whose slot i covers the key range
// [i*EntriesPerLeaf, (i+1)*EntriesPerLeaf), each occupied slot referencing
// a 4 KB leaf page holding the values and a presence bitmap. Leaves are
// allocated lazily on first write and freed when their last entry is
// removed.
//
// Unlike Shortcut-EH, the shortcut here is maintained synchronously: the
// inner node changes only when a leaf is allocated or freed — once per
// EntriesPerLeaf keys at worst — so the remap cost amortizes to nothing
// and no mapper thread is needed. This showcases the other end of the
// paper's design space (§3.1: hide creation cost *or* make it rare).
package radix

import (
	"errors"
	"fmt"

	"vmshortcut/internal/core"
	"vmshortcut/internal/pool"
	"vmshortcut/internal/sys"
)

// Leaf layout (4096 bytes, in 8-byte words):
//
//	words   0..479: values
//	words 480..487: presence bitmap (480 bits used)
//	word  488:      count of present entries
//	words 489..511: reserved
const (
	// EntriesPerLeaf is the number of keys covered by one leaf page.
	EntriesPerLeaf = 480
	bitmapWord     = 480
	countWord      = 488
)

// Config tunes a Map.
type Config struct {
	// Capacity is the exclusive upper bound of the key space. Required.
	Capacity uint64
	// DisableShortcut routes all reads through the pointer array
	// (baseline mode for benchmarks).
	DisableShortcut bool
}

// Map is a sparse direct-mapped uint64→uint64 index. Not safe for
// concurrent mutation; reads may run concurrently with each other.
type Map struct {
	pool  *pool.Pool
	trad  *core.Traditional
	sc    *core.Shortcut
	refs  []pool.Ref
	cfg   Config
	slots int
	count int

	// LeafAllocs and LeafFrees count inner-node modifications — the
	// (rare) events that require a remap.
	LeafAllocs int
	LeafFrees  int
}

// ErrKeyRange is returned for keys at or above the configured capacity.
var ErrKeyRange = errors.New("radix: key out of range")

// New creates a map covering keys [0, cfg.Capacity).
func New(p *pool.Pool, cfg Config) (*Map, error) {
	if cfg.Capacity == 0 {
		return nil, fmt.Errorf("radix: Capacity must be positive")
	}
	slots := int((cfg.Capacity + EntriesPerLeaf - 1) / EntriesPerLeaf)
	m := &Map{
		pool:  p,
		trad:  core.NewTraditional(p, slots),
		refs:  make([]pool.Ref, slots),
		cfg:   cfg,
		slots: slots,
	}
	for i := range m.refs {
		m.refs[i] = pool.NoRef
	}
	if !cfg.DisableShortcut {
		sc, err := core.NewShortcut(p, slots)
		if err != nil {
			return nil, err
		}
		m.sc = sc
	}
	return m, nil
}

// Len returns the number of stored entries.
func (m *Map) Len() int { return m.count }

// Slots returns the inner node's fan-out.
func (m *Map) Slots() int { return m.slots }

// leafWords returns the word view of the leaf for slot, or nil.
func (m *Map) leafWords(slot int) []uint64 {
	if m.refs[slot] == pool.NoRef {
		return nil
	}
	return sys.Words(m.pool.Addr(m.refs[slot]), 512)
}

// Set stores (key, value), allocating the covering leaf if needed.
func (m *Map) Set(key, value uint64) error {
	if key >= m.cfg.Capacity {
		return fmt.Errorf("%w: %d >= %d", ErrKeyRange, key, m.cfg.Capacity)
	}
	slot := int(key / EntriesPerLeaf)
	w := m.leafWords(slot)
	if w == nil {
		ref, err := m.pool.Alloc()
		if err != nil {
			return err
		}
		m.refs[slot] = ref
		m.trad.Set(slot, ref)
		if m.sc != nil {
			// Synchronous shortcut maintenance with eager population:
			// leaf allocation is rare, so the remap cost amortizes.
			if err := m.sc.Set(slot, ref, true); err != nil {
				return err
			}
		}
		m.LeafAllocs++
		w = m.leafWords(slot)
	}
	idx := int(key % EntriesPerLeaf)
	bit := uint64(1) << (idx & 63)
	if w[bitmapWord+idx/64]&bit == 0 {
		w[bitmapWord+idx/64] |= bit
		w[countWord]++
		m.count++
	}
	w[idx] = value
	return nil
}

// Insert stores (key, value) — Set under the name the Index interface
// expects.
func (m *Map) Insert(key, value uint64) error { return m.Set(key, value) }

// Lookup returns the value stored for key — Get under the name the Index
// interface expects.
func (m *Map) Lookup(key uint64) (uint64, bool) { return m.Get(key) }

// InsertBatch stores every (keys[i], values[i]) pair; semantically a loop
// of Set calls with the per-call overhead amortized.
func (m *Map) InsertBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("radix: InsertBatch: %d keys, %d values", len(keys), len(values))
	}
	for i, k := range keys {
		if err := m.Set(k, values[i]); err != nil {
			return err
		}
	}
	return nil
}

// LookupBatch looks up every key, writing values into out (which must
// have length at least len(keys)) and returning per-key presence.
func (m *Map) LookupBatch(keys []uint64, out []uint64) []bool {
	ok := make([]bool, len(keys))
	for i, k := range keys {
		out[i], ok[i] = m.Get(k)
	}
	return ok
}

// DeleteBatch removes every key, returning per-key presence; semantically
// a loop of Delete calls with the per-call overhead amortized.
func (m *Map) DeleteBatch(keys []uint64) []bool {
	ok := make([]bool, len(keys))
	for i, k := range keys {
		ok[i] = m.Delete(k)
	}
	return ok
}

// Get returns the value stored for key, routed through the shortcut when
// available — a single implicit indirection.
func (m *Map) Get(key uint64) (uint64, bool) {
	if key >= m.cfg.Capacity {
		return 0, false
	}
	slot := int(key / EntriesPerLeaf)
	idx := int(key % EntriesPerLeaf)
	if m.sc != nil && m.sc.Mapped(slot) {
		w := sys.Words(m.sc.LeafAddr(slot), 512)
		if w[bitmapWord+idx/64]&(1<<(idx&63)) == 0 {
			return 0, false
		}
		return w[idx], true
	}
	w := m.leafWords(slot)
	if w == nil || w[bitmapWord+idx/64]&(1<<(idx&63)) == 0 {
		return 0, false
	}
	return w[idx], true
}

// GetTraditional forces the pointer path (benchmark baseline).
func (m *Map) GetTraditional(key uint64) (uint64, bool) {
	if key >= m.cfg.Capacity {
		return 0, false
	}
	slot := int(key / EntriesPerLeaf)
	idx := int(key % EntriesPerLeaf)
	addr := m.trad.LeafAddr(slot)
	if addr == 0 {
		return 0, false
	}
	w := sys.Words(addr, 512)
	if w[bitmapWord+idx/64]&(1<<(idx&63)) == 0 {
		return 0, false
	}
	return w[idx], true
}

// Delete removes key, freeing the leaf when it empties.
func (m *Map) Delete(key uint64) bool {
	if key >= m.cfg.Capacity {
		return false
	}
	slot := int(key / EntriesPerLeaf)
	idx := int(key % EntriesPerLeaf)
	w := m.leafWords(slot)
	bit := uint64(1) << (idx & 63)
	if w == nil || w[bitmapWord+idx/64]&bit == 0 {
		return false
	}
	w[bitmapWord+idx/64] &^= bit
	w[idx] = 0
	w[countWord]--
	m.count--
	if w[countWord] == 0 {
		// Last entry gone: detach the slot, return the page.
		if m.sc != nil {
			if err := m.sc.ClearSlot(slot); err != nil {
				return true // entry is gone; the leaf just stays allocated
			}
		}
		m.trad.Clear(slot)
		m.pool.Free(m.refs[slot])
		m.refs[slot] = pool.NoRef
		m.LeafFrees++
	}
	return true
}

// Range calls fn for every present (key, value) in ascending key order
// until fn returns false.
func (m *Map) Range(fn func(key, value uint64) bool) {
	for slot := 0; slot < m.slots; slot++ {
		w := m.leafWords(slot)
		if w == nil {
			continue
		}
		base := uint64(slot) * EntriesPerLeaf
		for idx := 0; idx < EntriesPerLeaf; idx++ {
			if w[bitmapWord+idx/64]&(1<<(idx&63)) != 0 {
				if !fn(base+uint64(idx), w[idx]) {
					return
				}
			}
		}
	}
}

// Close releases the shortcut's virtual area and frees all leaves.
func (m *Map) Close() error {
	var firstErr error
	if m.sc != nil {
		if err := m.sc.Close(); err != nil {
			firstErr = err
		}
		m.sc = nil
	}
	for i, r := range m.refs {
		if r != pool.NoRef {
			if err := m.pool.Free(r); err != nil && firstErr == nil {
				firstErr = err
			}
			m.refs[i] = pool.NoRef
		}
	}
	return firstErr
}

// Package op defines the one batch representation the whole serving
// stack shares: a typed, arena-backed Batch carrying an ordered mix of
// GET/PUT/DEL operations over contiguous key/value storage, plus the one
// codec for its byte layout.
//
// Before this package existed, the same batch was re-packed four times on
// its way from the socket to the fsync: the wire layer decoded frames
// into ad-hoc slices, the server's coalescer gathered them into another
// set of slices, the store's batch calls took a third shape, and the WAL
// re-encoded the batch into its own record payload. The paper's core win
// — make the routing decision once per batch and amortize it down the
// stack — was being spent on re-marshalling. Now every layer passes a
// *Batch, and the encoded payload of a batch is ONE byte layout:
//
//	u32 n, n × u64 key                    CodeGetBatch, CodeDelBatch
//	u32 n, n × (u64 key, u64 value)       CodePutBatch
//	u32 n, n × u8 kind, n × u64 key,
//	       puts × u64 value               CodeMixedBatch
//
// (all integers little-endian; the mixed layout is columnar — kinds,
// then keys, then one value per PUT entry in entry order). The same code
// byte and payload bytes name the batch in a request frame
// (internal/wire) and in a WAL record (package wal), so wire/WAL layout
// equality holds by construction rather than by test: a batch decoded
// from the socket is appended to the log without re-encoding.
//
// A Batch decoded from received bytes retains them (DecodePayload), so
// Payload returns the original encoding zero-copy; a Batch built
// entry-by-entry (the server's coalescer) encodes once, into an arena
// the Batch reuses. Encodings counts actual encoding passes — the
// zero-re-encoding benchmark asserts it stays flat on the wire→WAL path.
package op

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"vmshortcut/internal/obs"
)

// Kind is the operation type of one batch entry. The numeric values are
// the wire encoding of the MIXEDBATCH kind column.
type Kind uint8

const (
	Get Kind = iota
	Put
	Del

	kindCount
)

// String returns the kind's conventional name.
func (k Kind) String() string {
	switch k {
	case Get:
		return "GET"
	case Put:
		return "PUT"
	case Del:
		return "DEL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Batch payload codes. On the wire these ARE the frame opcodes of the
// batch frames (internal/wire aliases them), and in the WAL they ARE the
// record opcodes (package wal aliases them): one constant, one layout.
const (
	CodeGetBatch   byte = 0x05
	CodePutBatch   byte = 0x06
	CodeDelBatch   byte = 0x07
	CodeMixedBatch byte = 0x08
)

// MaxElems bounds the element count one encoded batch payload may carry.
// It matches the WAL's per-record pair cap, so any batch that decodes
// here fits one log record.
const MaxElems = 1 << 16

// encodings counts encoding passes performed by AppendPayload/Payload —
// observability for the zero-re-encoding contract of the wire→WAL path.
var encodings atomic.Uint64

// Encodings returns how many payload encoding passes this process has
// performed. A batch whose Payload is its received bytes contributes 0.
func Encodings() uint64 { return encodings.Load() }

// Batch is an ordered mix of operations with contiguous storage: entry i
// is (Kinds()[i], Keys()[i], Vals()[i]), in caller submission order. The
// vals column is parallel to the keys column and meaningful only for Put
// entries. The zero value is an empty batch ready for use; Reset empties
// it again while keeping the arenas, so a steady-state producer (the
// server's per-connection coalescer) does not allocate.
type Batch struct {
	kinds []Kind
	keys  []uint64
	vals  []uint64
	puts  int
	dels  int

	// raw is the encoded payload this batch was decoded from, aliased —
	// not copied — from the decode input; rawCode is its batch code.
	// Mutating the batch drops them. Valid only as long as the decode
	// input buffer is.
	raw     []byte
	rawCode byte

	enc []byte // arena reused by Payload when no raw bytes exist

	// trace, when set, collects per-stage timings as the batch moves
	// through the pipeline (the durable layer fills apply and WAL-append
	// stages). Connection infrastructure, not batch content: Reset keeps
	// it, since the server installs it once per connection.
	trace *obs.Trace

	// traceID is the wire trace context of the request this batch came
	// from (0 = unsampled). Unlike trace it is batch content, not
	// connection infrastructure: Reset clears it.
	traceID uint64
	// lsn is the WAL position the batch's record landed at, filled by the
	// durable layer on the way back up (0 = not logged: pure reads, or a
	// non-durable store). Batch content; Reset clears it.
	lsn uint64
}

// SetTrace installs a per-stage timing collector carried by the batch
// through the pipeline. Layers that see only the batch (durability)
// record their stage durations into it; nil disables collection.
func (b *Batch) SetTrace(t *obs.Trace) { b.trace = t }

// Trace returns the installed timing collector, or nil.
func (b *Batch) Trace() *obs.Trace { return b.trace }

// SetTraceID tags the batch with its request's wire trace ID so layers
// below the server (durability, replication) can stamp the WAL record
// it produces. 0 means unsampled.
func (b *Batch) SetTraceID(id uint64) { b.traceID = id }

// TraceID returns the batch's wire trace ID (0 = unsampled).
func (b *Batch) TraceID() uint64 { return b.traceID }

// SetLSN reports the WAL position the batch's record was appended at;
// the durable layer calls it so the serving layer can correlate the
// batch's trace with the log.
func (b *Batch) SetLSN(lsn uint64) { b.lsn = lsn }

// LSN returns the batch's WAL position (0 = not logged).
func (b *Batch) LSN() uint64 { return b.lsn }

// Reset empties the batch, retaining its storage for reuse.
func (b *Batch) Reset() {
	b.kinds = b.kinds[:0]
	b.keys = b.keys[:0]
	b.vals = b.vals[:0]
	b.puts, b.dels = 0, 0
	b.raw, b.rawCode = nil, 0
	b.traceID, b.lsn = 0, 0
}

// Len returns the number of entries.
func (b *Batch) Len() int { return len(b.kinds) }

// Gets returns the number of Get entries.
func (b *Batch) Gets() int { return len(b.kinds) - b.puts - b.dels }

// Puts returns the number of Put entries.
func (b *Batch) Puts() int { return b.puts }

// Dels returns the number of Del entries.
func (b *Batch) Dels() int { return b.dels }

// Mutations returns the number of entries that change the keyspace —
// zero means the batch needs no WAL record.
func (b *Batch) Mutations() int { return b.puts + b.dels }

// Kinds returns the kind column. Read-only; valid until the next
// mutation or Reset.
func (b *Batch) Kinds() []Kind { return b.kinds }

// Keys returns the key column. Read-only; valid until the next mutation
// or Reset.
func (b *Batch) Keys() []uint64 { return b.keys }

// Vals returns the value column (parallel to Keys; zero for non-Put
// entries). Read-only; valid until the next mutation or Reset.
func (b *Batch) Vals() []uint64 { return b.vals }

// Grow pre-sizes the batch's arenas for n additional entries.
func (b *Batch) Grow(n int) {
	if cap(b.kinds)-len(b.kinds) >= n {
		return
	}
	want := len(b.kinds) + n
	kinds := make([]Kind, len(b.kinds), want)
	keys := make([]uint64, len(b.keys), want)
	vals := make([]uint64, len(b.vals), want)
	copy(kinds, b.kinds)
	copy(keys, b.keys)
	copy(vals, b.vals)
	b.kinds, b.keys, b.vals = kinds, keys, vals
}

// Get appends a lookup entry.
func (b *Batch) Get(key uint64) { b.add(Get, key, 0) }

// Put appends an upsert entry.
func (b *Batch) Put(key, value uint64) { b.add(Put, key, value) }

// Del appends a delete entry.
func (b *Batch) Del(key uint64) { b.add(Del, key, 0) }

// Add appends one entry of kind k (value is ignored unless k is Put).
func (b *Batch) Add(k Kind, key, value uint64) { b.add(k, key, value) }

func (b *Batch) add(k Kind, key, value uint64) {
	if k != Put {
		value = 0
	}
	b.kinds = append(b.kinds, k)
	b.keys = append(b.keys, key)
	b.vals = append(b.vals, value)
	switch k {
	case Put:
		b.puts++
	case Del:
		b.dels++
	}
	b.raw = nil // the retained encoding no longer matches
}

// Code returns the batch's payload code: the code it was decoded under,
// or — for a built batch — the most specific one (a uniform batch
// encodes as its kind-specific layout, anything else as CodeMixedBatch).
func (b *Batch) Code() byte {
	if b.raw != nil {
		return b.rawCode
	}
	n := b.Len()
	switch {
	case n == 0:
		return CodeMixedBatch
	case b.puts == n:
		return CodePutBatch
	case b.dels == n:
		return CodeDelBatch
	case b.puts == 0 && b.dels == 0:
		return CodeGetBatch
	}
	return CodeMixedBatch
}

// Payload returns the batch's encoded payload and its code. A batch
// decoded from received bytes returns them as-is — zero copy, zero
// re-encoding; a built batch encodes once into an arena the batch owns.
// The returned slice is valid until the next Payload call, mutation, or
// Reset (for decoded batches: as long as the decode input buffer is).
func (b *Batch) Payload() (code byte, payload []byte) {
	if b.raw != nil {
		return b.rawCode, b.raw
	}
	code = b.Code()
	b.enc = b.AppendPayload(b.enc[:0])
	return code, b.enc
}

// AppendPayload appends the batch's payload encoding (per Code) to dst.
// Unlike Payload it always encodes, so it counts toward Encodings.
func (b *Batch) AppendPayload(dst []byte) []byte {
	encodings.Add(1)
	switch b.Code() {
	case CodeGetBatch, CodeDelBatch:
		return AppendKeysPayload(dst, b.keys)
	case CodePutBatch:
		return AppendPairsPayload(dst, b.keys, b.vals)
	}
	return b.appendMixedPayload(dst)
}

// AppendKeysPayload appends the keys-only batch payload (CodeGetBatch,
// CodeDelBatch): u32 n, n × u64 key.
func AppendKeysPayload(dst []byte, keys []uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}
	return dst
}

// AppendPairsPayload appends the pairs batch payload (CodePutBatch):
// u32 n, n × (u64 key, u64 value). len(values) must equal len(keys).
func AppendPairsPayload(dst []byte, keys, values []uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for i, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
		dst = binary.LittleEndian.AppendUint64(dst, values[i])
	}
	return dst
}

// AppendMixedPayload appends the batch in the CodeMixedBatch layout
// regardless of uniformity — for callers that must pin the frame shape
// (the client's MIXEDBATCH submission, whose response layout follows the
// request opcode). It counts as an encoding pass.
func (b *Batch) AppendMixedPayload(dst []byte) []byte {
	encodings.Add(1)
	return b.appendMixedPayload(dst)
}

// appendMixedPayload appends the columnar mixed payload: u32 n, the kind
// column, the key column, then one value per Put entry in entry order.
func (b *Batch) appendMixedPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.kinds)))
	for _, k := range b.kinds {
		dst = append(dst, byte(k))
	}
	for _, k := range b.keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}
	for i, k := range b.kinds {
		if k == Put {
			dst = binary.LittleEndian.AppendUint64(dst, b.vals[i])
		}
	}
	return dst
}

// PayloadSize returns the encoded size of the batch's payload under its
// current Code.
func (b *Batch) PayloadSize() int {
	n := b.Len()
	switch b.Code() {
	case CodeGetBatch, CodeDelBatch:
		return 4 + 8*n
	case CodePutBatch:
		return 4 + 16*n
	}
	return b.PayloadSizeMixed()
}

// PayloadSizeMixed returns the encoded size of the batch's payload in
// the CodeMixedBatch layout.
func (b *Batch) PayloadSizeMixed() int {
	n := b.Len()
	return 4 + n + 8*n + 8*b.puts
}

// DecodePayload decodes a batch payload of the given code into b,
// replacing its contents. On success b retains p (aliased, not copied)
// as its pre-encoded payload, so Payload is zero-copy afterwards; p must
// stay immutable and alive for as long as that matters to the caller.
func DecodePayload(code byte, p []byte, b *Batch) error {
	if len(p) < 4 {
		return fmt.Errorf("op: batch payload %d bytes, need at least 4", len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n > MaxElems {
		return fmt.Errorf("op: batch of %d elements exceeds max %d", n, MaxElems)
	}
	b.Reset()
	b.Grow(n)
	switch code {
	case CodeGetBatch, CodeDelBatch:
		if len(p) != 4+8*n {
			return fmt.Errorf("op: batch payload %d bytes, want %d for %d keys", len(p), 4+8*n, n)
		}
		kind := Get
		if code == CodeDelBatch {
			kind = Del
			b.dels = n
		}
		for i := 0; i < n; i++ {
			b.kinds = append(b.kinds, kind)
			b.keys = append(b.keys, binary.LittleEndian.Uint64(p[4+8*i:]))
			b.vals = append(b.vals, 0)
		}
	case CodePutBatch:
		if len(p) != 4+16*n {
			return fmt.Errorf("op: batch payload %d bytes, want %d for %d pairs", len(p), 4+16*n, n)
		}
		b.puts = n
		for i := 0; i < n; i++ {
			b.kinds = append(b.kinds, Put)
			b.keys = append(b.keys, binary.LittleEndian.Uint64(p[4+16*i:]))
			b.vals = append(b.vals, binary.LittleEndian.Uint64(p[4+16*i+8:]))
		}
	case CodeMixedBatch:
		if len(p) < 4+n {
			return fmt.Errorf("op: mixed batch payload %d bytes, need %d for the kind column", len(p), 4+n)
		}
		kinds := p[4 : 4+n]
		puts := 0
		for _, k := range kinds {
			if Kind(k) >= kindCount {
				return fmt.Errorf("op: unknown entry kind %d", k)
			}
			if Kind(k) == Put {
				puts++
			}
		}
		if want := 4 + n + 8*n + 8*puts; len(p) != want {
			return fmt.Errorf("op: mixed batch payload %d bytes, want %d for %d entries (%d puts)",
				len(p), want, n, puts)
		}
		keyCol := p[4+n:]
		valCol := p[4+n+8*n:]
		vi := 0
		for i := 0; i < n; i++ {
			k := Kind(kinds[i])
			var v uint64
			if k == Put {
				v = binary.LittleEndian.Uint64(valCol[8*vi:])
				vi++
			}
			b.kinds = append(b.kinds, k)
			b.keys = append(b.keys, binary.LittleEndian.Uint64(keyCol[8*i:]))
			b.vals = append(b.vals, v)
			switch k {
			case Put:
				b.puts++
			case Del:
				b.dels++
			}
		}
	default:
		return fmt.Errorf("op: unknown batch code 0x%02x", code)
	}
	b.raw, b.rawCode = p, code
	return nil
}

// CountRuns returns, per kind, how many maximal same-kind runs of the
// kind column have more than one entry. This is the store layers' shared
// definition of a "batch call" for the Stats counters: a multi-entry run
// executes as one native batch call, a single entry as a single op.
func CountRuns(kinds []Kind) (runs [3]uint64) {
	for i := 0; i < len(kinds); {
		j := i + 1
		for j < len(kinds) && kinds[j] == kinds[i] {
			j++
		}
		if j-i > 1 {
			runs[kinds[i]]++
		}
		i = j
	}
	return runs
}

// Results holds the per-entry outcomes of an applied batch, parallel to
// the batch's entries: Found[i] is presence for Get and Del entries (and
// acceptance for Put entries), Vals[i] is the value of a Get hit. Reset
// sizes and zeroes it; the arenas are reused.
type Results struct {
	Found []bool
	Vals  []uint64
}

// Reset sizes the results for n entries, all zero.
func (r *Results) Reset(n int) {
	if cap(r.Found) < n {
		r.Found = make([]bool, n)
		r.Vals = make([]uint64, n)
	} else {
		r.Found = r.Found[:n]
		r.Vals = r.Vals[:n]
		for i := range r.Found {
			r.Found[i] = false
			r.Vals[i] = 0
		}
	}
}

package op

import (
	"bytes"
	"testing"
)

func TestBatchBuildAndCounts(t *testing.T) {
	var b Batch
	b.Get(1)
	b.Put(2, 20)
	b.Del(3)
	b.Put(4, 40)
	if b.Len() != 4 || b.Gets() != 1 || b.Puts() != 2 || b.Dels() != 1 || b.Mutations() != 3 {
		t.Fatalf("counts = len %d gets %d puts %d dels %d", b.Len(), b.Gets(), b.Puts(), b.Dels())
	}
	wantKinds := []Kind{Get, Put, Del, Put}
	wantKeys := []uint64{1, 2, 3, 4}
	wantVals := []uint64{0, 20, 0, 40}
	for i := range wantKinds {
		if b.Kinds()[i] != wantKinds[i] || b.Keys()[i] != wantKeys[i] || b.Vals()[i] != wantVals[i] {
			t.Fatalf("entry %d = (%v, %d, %d)", i, b.Kinds()[i], b.Keys()[i], b.Vals()[i])
		}
	}
	if b.Code() != CodeMixedBatch {
		t.Fatalf("Code = %#x, want mixed", b.Code())
	}
	b.Reset()
	if b.Len() != 0 || b.Mutations() != 0 {
		t.Fatalf("Reset left %d entries", b.Len())
	}
}

// TestUniformBatchesEncodeAsKindCodes pins the degenerate-batch contract:
// a uniform batch encodes exactly as its kind-specific payload, so WAL
// records of all-PUT/all-DEL batches keep the pre-mixed on-disk layout.
func TestUniformBatchesEncodeAsKindCodes(t *testing.T) {
	keys := []uint64{5, 6, 7}
	vals := []uint64{50, 60, 70}

	var puts Batch
	for i, k := range keys {
		puts.Put(k, vals[i])
	}
	code, payload := puts.Payload()
	if code != CodePutBatch || !bytes.Equal(payload, AppendPairsPayload(nil, keys, vals)) {
		t.Fatalf("uniform put batch encoded as %#x / %x", code, payload)
	}

	var dels Batch
	for _, k := range keys {
		dels.Del(k)
	}
	code, payload = dels.Payload()
	if code != CodeDelBatch || !bytes.Equal(payload, AppendKeysPayload(nil, keys)) {
		t.Fatalf("uniform del batch encoded as %#x / %x", code, payload)
	}

	var gets Batch
	for _, k := range keys {
		gets.Get(k)
	}
	if code, _ := gets.Payload(); code != CodeGetBatch {
		t.Fatalf("uniform get batch encoded as %#x", code)
	}
}

// TestDecodeRetainsPayloadZeroCopy pins the zero-re-encoding contract: a
// batch decoded from bytes hands the same bytes back from Payload,
// without an encoding pass.
func TestDecodeRetainsPayloadZeroCopy(t *testing.T) {
	var src Batch
	src.Get(1)
	src.Put(2, 22)
	src.Del(3)
	wire := src.AppendPayload(nil)

	var b Batch
	if err := DecodePayload(CodeMixedBatch, wire, &b); err != nil {
		t.Fatal(err)
	}
	before := Encodings()
	code, payload := b.Payload()
	if Encodings() != before {
		t.Fatal("Payload of a decoded batch performed an encoding pass")
	}
	if code != CodeMixedBatch || len(payload) != len(wire) || &payload[0] != &wire[0] {
		t.Fatalf("Payload did not return the received bytes (code %#x)", code)
	}
	// Mutating drops the retained encoding: Payload must re-encode.
	b.Put(9, 99)
	code, payload = b.Payload()
	if Encodings() == before {
		t.Fatal("mutated batch did not re-encode")
	}
	var back Batch
	if err := DecodePayload(code, payload, &back); err != nil {
		t.Fatalf("re-encoded payload does not decode: %v", err)
	}
	if back.Len() != 4 || back.Keys()[3] != 9 || back.Vals()[3] != 99 {
		t.Fatalf("round trip lost the appended entry: %+v", back)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	var b Batch
	cases := []struct {
		name string
		code byte
		p    []byte
	}{
		{"short header", CodeGetBatch, []byte{1, 2}},
		{"count/length mismatch", CodeDelBatch, []byte{2, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0}},
		{"unknown code", 0x42, []byte{0, 0, 0, 0}},
		{"mixed short kind column", CodeMixedBatch, []byte{5, 0, 0, 0, 0, 1}},
		{"mixed bad kind", CodeMixedBatch, append([]byte{1, 0, 0, 0, 7}, make([]byte, 8)...)},
		{"oversized count", CodePutBatch, []byte{0xFF, 0xFF, 0xFF, 0xFF}},
	}
	for _, tc := range cases {
		if err := DecodePayload(tc.code, tc.p, &b); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestPayloadSizeMatchesEncoding(t *testing.T) {
	var b Batch
	b.Get(1)
	b.Put(2, 3)
	b.Del(4)
	if got := len(b.AppendPayload(nil)); got != b.PayloadSize() {
		t.Fatalf("PayloadSize = %d, encoded %d", b.PayloadSize(), got)
	}
	var puts Batch
	puts.Put(1, 2)
	if got := len(puts.AppendPayload(nil)); got != puts.PayloadSize() {
		t.Fatalf("uniform PayloadSize = %d, encoded %d", puts.PayloadSize(), got)
	}
}

// FuzzDecodeMixedPayload mirrors the WAL's FuzzDecodePayload for the
// MIXEDBATCH layout: the decoder must never panic, and whatever it
// accepts must re-encode to the identical bytes (the codec is bijective
// on valid payloads).
func FuzzDecodeMixedPayload(f *testing.F) {
	var seed Batch
	seed.Get(1)
	seed.Put(2, 22)
	seed.Del(3)
	f.Add(seed.AppendPayload(nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{2, 0, 0, 0, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var b Batch
		if err := DecodePayload(CodeMixedBatch, payload, &b); err != nil {
			return
		}
		re := b.AppendPayload(nil)
		if !bytes.Equal(re, payload) {
			t.Fatalf("re-encoded %x from accepted payload %x", re, payload)
		}
	})
}

// FuzzDecodeAnyPayload extends the bijectivity property across every
// batch code, re-encoding under the code the payload was decoded with.
func FuzzDecodeAnyPayload(f *testing.F) {
	f.Add(CodePutBatch, AppendPairsPayload(nil, []uint64{1}, []uint64{2}))
	f.Add(CodeDelBatch, AppendKeysPayload(nil, []uint64{9}))
	f.Add(CodeGetBatch, AppendKeysPayload(nil, []uint64{7, 8}))
	f.Fuzz(func(t *testing.T, code byte, payload []byte) {
		var b Batch
		if err := DecodePayload(code, payload, &b); err != nil {
			return
		}
		if b.Code() != code {
			t.Fatalf("decoded under %#x but Code() = %#x", code, b.Code())
		}
		re := b.AppendPayload(nil)
		if !bytes.Equal(re, payload) {
			t.Fatalf("code %#x: re-encoded %x from accepted payload %x", code, re, payload)
		}
	})
}

package eh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vmshortcut/internal/bucket"
)

func mergingTable(t testing.TB) *Table {
	t.Helper()
	return newTable(t, Config{MergeLoadFactor: 0.1})
}

func TestMergeShrinksBuckets(t *testing.T) {
	tbl := mergingTable(t)
	const n = 30000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k)
	}
	grown := tbl.Buckets()
	gdGrown := tbl.GlobalDepth()
	for k := uint64(0); k < n; k++ {
		if !tbl.DeleteAndMerge(k) {
			t.Fatalf("DeleteAndMerge(%d) failed", k)
		}
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tbl.Len())
	}
	if tbl.Merges == 0 {
		t.Fatal("no merges happened")
	}
	if tbl.Buckets() >= grown {
		t.Fatalf("buckets did not shrink: %d -> %d", grown, tbl.Buckets())
	}
	if tbl.Halves == 0 || tbl.GlobalDepth() >= gdGrown {
		t.Fatalf("directory did not halve: gd %d -> %d, halves %d",
			gdGrown, tbl.GlobalDepth(), tbl.Halves)
	}
}

func TestMergePreservesRemainingEntries(t *testing.T) {
	tbl := mergingTable(t)
	const n = 20000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k*3)
	}
	// Delete 90%; survivors must stay intact through merges and halvings.
	for k := uint64(0); k < n; k++ {
		if k%10 != 0 {
			tbl.DeleteAndMerge(k)
		}
	}
	for k := uint64(0); k < n; k += 10 {
		v, ok := tbl.Lookup(k)
		if !ok || v != k*3 {
			t.Fatalf("survivor %d = %d,%v", k, v, ok)
		}
	}
	for k := uint64(1); k < n; k += 10 {
		if _, ok := tbl.Lookup(k); ok {
			t.Fatalf("deleted key %d still present", k)
		}
	}
}

func TestMergeKeepsDirectoryInvariants(t *testing.T) {
	tbl := mergingTable(t)
	rng := rand.New(rand.NewSource(5))
	live := map[uint64]uint64{}
	for i := 0; i < 60000; i++ {
		k := uint64(rng.Intn(8192))
		if rng.Intn(3) != 0 {
			tbl.Insert(k, k)
			live[k] = k
		} else {
			tbl.DeleteAndMerge(k)
			delete(live, k)
		}
	}
	if tbl.Len() != len(live) {
		t.Fatalf("Len %d != model %d", tbl.Len(), len(live))
	}
	// Directory structure invariant (same as the split-side test).
	gd := tbl.GlobalDepth()
	for i := uint64(0); i < uint64(tbl.DirSize()); {
		b := bucket.ViewAddr(tbl.DirAddr(i))
		ld := b.LocalDepth()
		if ld > gd {
			t.Fatalf("slot %d: ld %d > gd %d", i, ld, gd)
		}
		span := uint64(1) << (gd - ld)
		if i%span != 0 {
			t.Fatalf("slot %d misaligned for span %d", i, span)
		}
		for j := i; j < i+span; j++ {
			if tbl.DirAddr(j) != tbl.DirAddr(i) {
				t.Fatalf("slots %d and %d disagree", i, j)
			}
		}
		i += span
	}
	for k, v := range live {
		got, ok := tbl.Lookup(k)
		if !ok || got != v {
			t.Fatalf("model key %d = %d,%v", k, got, ok)
		}
	}
}

func TestMergeEventsReplayDirectory(t *testing.T) {
	// The event stream including merges and halvings must reconstruct the
	// directory — the property the shortcut mapper depends on.
	tbl := mergingTable(t)
	var snapshot []int64
	var lastVer uint64
	apply := func(e Event) {
		switch ev := e.(type) {
		case DoubleEvent:
			snapshot = make([]int64, len(ev.Refs))
			for i, r := range ev.Refs {
				snapshot[i] = int64(r)
			}
			lastVer = ev.Version
		case HalveEvent:
			snapshot = make([]int64, len(ev.Refs))
			for i, r := range ev.Refs {
				snapshot[i] = int64(r)
			}
			lastVer = ev.Version
		case SplitEvent:
			for s := ev.Lo0; s < ev.Hi0; s++ {
				snapshot[s] = int64(ev.Ref0)
			}
			for s := ev.Lo1; s < ev.Hi1; s++ {
				snapshot[s] = int64(ev.Ref1)
			}
			lastVer = ev.Version
		case MergeEvent:
			for s := ev.Lo; s < ev.Hi; s++ {
				snapshot[s] = int64(ev.Ref)
			}
			lastVer = ev.Version
		}
	}
	tbl.SetEventFunc(apply)

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40000; i++ {
		k := uint64(rng.Intn(4096))
		if rng.Intn(3) != 0 {
			tbl.Insert(k, k)
		} else {
			tbl.DeleteAndMerge(k)
		}
	}
	if lastVer != tbl.Version() {
		t.Fatalf("replay version %d != %d", lastVer, tbl.Version())
	}
	want := tbl.Refs()
	if len(snapshot) != len(want) {
		t.Fatalf("replay dir size %d != %d", len(snapshot), len(want))
	}
	for i := range want {
		if snapshot[i] != int64(want[i]) {
			t.Fatalf("slot %d: replay %d != %d", i, snapshot[i], want[i])
		}
	}
}

// TestQuickMergeModelEquivalence is the merging variant of the model test.
func TestQuickMergeModelEquivalence(t *testing.T) {
	tbl := mergingTable(t)
	model := map[uint64]uint64{}
	check := func(kRaw uint16, v uint64, opRaw uint8) bool {
		k := uint64(kRaw % 2048)
		switch opRaw % 4 {
		case 0, 1:
			if err := tbl.Insert(k, v); err != nil {
				return false
			}
			model[k] = v
		case 2:
			got, ok := tbl.Lookup(k)
			want, mok := model[k]
			if ok != mok || (ok && got != want) {
				return false
			}
		case 3:
			_, mok := model[k]
			if tbl.DeleteAndMerge(k) != mok {
				return false
			}
			delete(model, k)
		}
		return tbl.Len() == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

package eh

import (
	"vmshortcut/internal/bucket"
	"vmshortcut/internal/hashfn"
	"vmshortcut/internal/pool"
)

// Bucket merging and directory halving — the classical extendible-hashing
// coalescing step that the paper's prototype (like most implementations)
// leaves out. When enabled, a delete that leaves a bucket underfull merges
// it with its buddy bucket (the bucket whose hash prefix differs only in
// the last of the ld bits), and when no bucket uses the full global depth
// anymore the directory is halved. Both operations are directory
// modifications: they increment the version and are reported to the event
// subscriber so a shortcut directory replays them like splits and
// doublings.

// MergeEvent reports a bucket merge: directory slots [Lo, Hi) now all
// reference the merged page Ref.
type MergeEvent struct {
	Version uint64
	Lo, Hi  uint64
	Ref     pool.Ref
}

// HalveEvent reports a directory halving. Refs is a snapshot of every
// slot's page ref after the halving, in slot order.
type HalveEvent struct {
	Version     uint64
	GlobalDepth uint
	Refs        []pool.Ref
}

func (MergeEvent) isEvent() {}
func (HalveEvent) isEvent() {}

// maybeMerge coalesces the bucket at directory slot idx with its buddy if
// both are shallow enough to combine. Called after a delete when merging
// is enabled. Returns whether a merge happened.
func (t *Table) maybeMerge(idx uint64) bool {
	b := bucket.ViewAddr(t.dir[idx])
	ld := b.LocalDepth()
	if ld == 0 {
		return false // single bucket, nothing to merge with
	}
	// The buddy shares the (ld-1)-bit prefix and differs in bit ld-1.
	lo, hi := prefixRangeAt(idx, ld, t.gd)
	span := hi - lo
	var buddyLo uint64
	if (lo/span)%2 == 0 {
		buddyLo = lo + span
	} else {
		buddyLo = lo - span
	}
	buddy := bucket.ViewAddr(t.dir[buddyLo])
	if buddy.LocalDepth() != ld {
		return false // buddy is deeper; cannot merge yet
	}
	if b.Count()+buddy.Count() > t.mergeFill {
		return false
	}

	// Allocate the merged bucket at depth ld-1 and move both sides in.
	mergedRef, err := t.pool.Alloc()
	if err != nil {
		return false
	}
	merged := bucket.ViewAddr(t.pool.Addr(mergedRef))
	merged.Reset(ld - 1)
	move := func(src bucket.Bucket) {
		src.ForEach(func(k, v uint64) bool {
			merged.Insert(k, v)
			return true
		})
	}
	move(b)
	move(buddy)

	mLo := lo
	if buddyLo < lo {
		mLo = buddyLo
	}
	mHi := mLo + 2*span
	oldA := t.dir[idx]
	oldB := t.dir[buddyLo]
	for s := mLo; s < mHi; s++ {
		t.dir[s] = t.pool.Addr(mergedRef)
		t.refs[s] = mergedRef
	}
	if r, err := t.pool.RefOf(oldA); err == nil {
		t.pool.Free(r)
	}
	if r, err := t.pool.RefOf(oldB); err == nil {
		t.pool.Free(r)
	}
	t.buckets--
	t.version++
	t.Merges++
	if t.onEvent != nil {
		t.onEvent(MergeEvent{Version: t.version, Lo: mLo, Hi: mHi, Ref: mergedRef})
	}
	t.maybeHalve()
	return true
}

// prefixRangeAt computes the slot range sharing the bucket's ld-bit prefix
// from a slot index (rather than from a hash).
func prefixRangeAt(idx uint64, ld, gd uint) (lo, hi uint64) {
	span := uint64(1) << (gd - ld)
	lo = idx &^ (span - 1)
	return lo, lo + span
}

// maybeHalve halves the directory while no bucket uses the full global
// depth. Cheap check first: scan slot pairs only when the last merge made
// halving plausible.
func (t *Table) maybeHalve() {
	for t.gd > 0 {
		// Halving is legal iff every even/odd slot pair references the
		// same bucket, i.e. no bucket has local depth == gd.
		for i := 0; i < len(t.dir); i += 2 {
			if t.dir[i] != t.dir[i+1] {
				return
			}
		}
		newDir := make([]uintptr, len(t.dir)/2)
		newRefs := make([]pool.Ref, len(t.refs)/2)
		for i := range newDir {
			newDir[i] = t.dir[2*i]
			newRefs[i] = t.refs[2*i]
		}
		t.dir = newDir
		t.refs = newRefs
		t.gd--
		t.version++
		t.Halves++
		if t.onEvent != nil {
			t.onEvent(HalveEvent{Version: t.version, GlobalDepth: t.gd, Refs: t.Refs()})
		}
	}
}

// DeleteAndMerge removes key like Delete and, when merging is enabled via
// Config.MergeLoadFactor, coalesces underfull buckets and halves the
// directory when possible.
func (t *Table) DeleteAndMerge(key uint64) bool {
	idx := hashfn.DirIndex(hashfn.Hash(key), t.gd)
	b := bucket.ViewAddr(t.dir[idx])
	if !b.Delete(key) {
		return false
	}
	t.count--
	if t.mergeBelow > 0 && b.Count() <= t.mergeBelow {
		t.maybeMerge(idx)
	}
	return true
}

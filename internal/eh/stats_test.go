package eh

import "testing"

func TestForEachVisitsEveryEntryOnce(t *testing.T) {
	tbl := newTable(t, Config{})
	const n = 15000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k*2)
	}
	got := map[uint64]uint64{}
	tbl.ForEach(func(k, v uint64) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("key %d visited twice", k)
		}
		got[k] = v
		return true
	})
	if len(got) != n {
		t.Fatalf("visited %d entries, want %d", len(got), n)
	}
	for k, v := range got {
		if v != k*2 {
			t.Fatalf("entry %d = %d", k, v)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	tbl := newTable(t, Config{})
	for k := uint64(0); k < 5000; k++ {
		tbl.Insert(k, k)
	}
	visits := 0
	tbl.ForEach(func(k, v uint64) bool {
		visits++
		return visits < 10
	})
	if visits != 10 {
		t.Fatalf("early stop visited %d", visits)
	}
}

func TestStatsShape(t *testing.T) {
	tbl := newTable(t, Config{})
	const n = 20000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k)
	}
	s := tbl.Stats()
	if s.Entries != n || s.Buckets != tbl.Buckets() || s.GlobalDepth != tbl.GlobalDepth() {
		t.Fatalf("stats mismatch: %+v", s)
	}
	if s.DirectorySlots != 1<<s.GlobalDepth {
		t.Fatalf("dir slots %d != 2^%d", s.DirectorySlots, s.GlobalDepth)
	}
	if s.LoadFactor <= 0 || s.LoadFactor > 0.35+1e-9 {
		t.Fatalf("load factor %f outside (0, 0.35]", s.LoadFactor)
	}
	total := 0
	for ld, c := range s.DepthHistogram {
		if ld > s.GlobalDepth {
			t.Fatalf("histogram depth %d > gd", ld)
		}
		total += c
	}
	if total != s.Buckets {
		t.Fatalf("histogram sums to %d, want %d buckets", total, s.Buckets)
	}
	if s.MinLocalDepth > s.MaxLocalDepth || s.MaxLocalDepth > s.GlobalDepth {
		t.Fatalf("depth bounds broken: %d..%d gd %d",
			s.MinLocalDepth, s.MaxLocalDepth, s.GlobalDepth)
	}
	if s.BytesPerEntry <= 8 {
		t.Fatalf("bytes/entry %f implausible", s.BytesPerEntry)
	}
	if s.StructuralMods != tbl.Version() {
		t.Fatal("StructuralMods != version")
	}
}

func TestStatsEmptyTable(t *testing.T) {
	tbl := newTable(t, Config{})
	s := tbl.Stats()
	if s.Entries != 0 || s.Buckets != 1 || s.BytesPerEntry != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

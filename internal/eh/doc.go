// Package eh implements classical extendible hashing (Fagin et al. 1979)
// with a pointer-based directory, exactly as the paper's EH baseline
// (§4.2): the directory is indexed with the most significant bits of the
// hash, buckets are 4 KB pages using open addressing / linear probing, and
// a bucket split doubles the directory when local depth reaches global
// depth.
//
// The directory is the structure the paper's shortcut replaces: resolving
// a lookup through it costs one pointer dereference into the directory
// slice plus one jump to the bucket page. Because several directory slots
// may reference the same bucket (fan-in), the directory is a radix-style
// inner node of exactly the shape the rewiring layer (internal/core) can
// express in the page table.
//
// All buckets are allocated from a pool of physical pages so that a
// shortcut directory can be created alongside (package sceh). Every
// directory modification increments a version number and is reported to an
// optional event subscriber — the hook sceh uses to replay modifications
// into the shortcut directory asynchronously: a SplitEvent carries the two
// slot ranges to remap, a DoubleEvent a full snapshot of slot refs.
//
// A Table is single-writer, as in the paper. Concurrency is layered above
// it by the facade (vmshortcut.WithConcurrency's readers-writer lock and
// vmshortcut.WithShards' hash-partitioned lock striping), never inside
// this package.
package eh

package eh

import (
	"bytes"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := newTable(t, Config{})
	const n = 25000
	for k := uint64(0); k < n; k++ {
		src.Insert(k, k^0xBEEF)
	}

	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	dst, err := Restore(newPool(t), Config{}, &buf)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if dst.Len() != src.Len() || dst.GlobalDepth() != src.GlobalDepth() ||
		dst.Buckets() != src.Buckets() {
		t.Fatalf("shape mismatch: len %d/%d gd %d/%d buckets %d/%d",
			dst.Len(), src.Len(), dst.GlobalDepth(), src.GlobalDepth(),
			dst.Buckets(), src.Buckets())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := dst.Lookup(k)
		if !ok || v != k^0xBEEF {
			t.Fatalf("restored Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestSnapshotIndependence(t *testing.T) {
	src := newTable(t, Config{})
	for k := uint64(0); k < 5000; k++ {
		src.Insert(k, k)
	}
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := Restore(newPool(t), Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the source must not leak into the restored copy and vice
	// versa.
	for k := uint64(0); k < 5000; k++ {
		src.Insert(k, 999)
	}
	dst.Insert(10000, 1)
	for k := uint64(0); k < 5000; k += 53 {
		if v, _ := dst.Lookup(k); v != k {
			t.Fatalf("restored copy saw source mutation at %d: %d", k, v)
		}
	}
	if _, ok := src.Lookup(10000); ok {
		t.Fatal("source saw restored-copy insert")
	}
}

func TestSnapshotRestoredTableGrows(t *testing.T) {
	src := newTable(t, Config{})
	for k := uint64(0); k < 3000; k++ {
		src.Insert(k, k)
	}
	var buf bytes.Buffer
	src.WriteSnapshot(&buf)
	dst, err := Restore(newPool(t), Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// The restored table must keep splitting/doubling correctly.
	for k := uint64(3000); k < 40000; k++ {
		if err := dst.Insert(k, k); err != nil {
			t.Fatalf("post-restore Insert(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < 40000; k += 97 {
		if v, ok := dst.Lookup(k); !ok || v != k {
			t.Fatalf("post-restore Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestSnapshotSharedBucketsStaySharedAfterRestore(t *testing.T) {
	// Pre-sized directory: all 16 slots share one bucket. The snapshot
	// stores that page once and the restored directory must share it too.
	src := newTable(t, Config{InitialGlobalDepth: 4})
	src.Insert(1, 2)
	var buf bytes.Buffer
	src.WriteSnapshot(&buf)
	wantLen := 5*8 + 4096 + 16*4 // header + one page + 16 slot indexes
	if buf.Len() != wantLen {
		t.Fatalf("snapshot size %d, want %d (single shared page)", buf.Len(), wantLen)
	}
	dst, err := Restore(newPool(t), Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Buckets() != 1 || dst.DirSize() != 16 {
		t.Fatalf("restored shape: %d buckets, %d slots", dst.Buckets(), dst.DirSize())
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(newPool(t), Config{}, bytes.NewReader([]byte("not a snapshot, definitely not"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var empty bytes.Buffer
	if _, err := Restore(newPool(t), Config{}, &empty); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Truncated valid prefix.
	src := newTable(t, Config{})
	for k := uint64(0); k < 2000; k++ {
		src.Insert(k, k)
	}
	var buf bytes.Buffer
	src.WriteSnapshot(&buf)
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()/2])
	if _, err := Restore(newPool(t), Config{}, trunc); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

package eh

import (
	"vmshortcut/internal/bucket"
	"vmshortcut/internal/sys"
)

// Iteration and introspection helpers for the extendible hash table.

// ForEach calls fn for every stored entry until fn returns false. Entries
// are visited in bucket order (directory order, each bucket once); the
// order is deterministic for a given table state but not sorted.
func (t *Table) ForEach(fn func(key, value uint64) bool) {
	seen := make(map[uintptr]struct{}, t.buckets)
	stop := false
	for _, addr := range t.dir {
		if stop {
			return
		}
		if _, dup := seen[addr]; dup {
			continue
		}
		seen[addr] = struct{}{}
		bucket.ViewAddr(addr).ForEach(func(k, v uint64) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
	}
}

// MemStats describes the table's memory footprint and shape.
type MemStats struct {
	GlobalDepth    uint
	DirectorySlots int
	DirectoryBytes int // pointer array (slots * 8 bytes)
	Buckets        int
	BucketBytes    int // buckets * page size
	Entries        int
	LoadFactor     float64 // entries / (buckets * bucket capacity)
	AvgFanIn       float64
	DepthHistogram map[uint]int // local depth -> bucket count
	MinLocalDepth  uint
	MaxLocalDepth  uint
	BytesPerEntry  float64
	StructuralMods uint64 // version: splits + doubles (+ merges + halves)
}

// Stats scans the directory and returns shape and footprint statistics.
func (t *Table) Stats() MemStats {
	s := MemStats{
		GlobalDepth:    t.gd,
		DirectorySlots: len(t.dir),
		DirectoryBytes: len(t.dir) * 8,
		Buckets:        t.buckets,
		BucketBytes:    t.buckets * sys.PageSize(),
		Entries:        t.count,
		AvgFanIn:       t.AvgFanIn(),
		DepthHistogram: map[uint]int{},
		StructuralMods: t.version,
	}
	if t.buckets > 0 {
		s.LoadFactor = float64(t.count) / float64(t.buckets*bucket.Capacity)
	}
	seen := make(map[uintptr]struct{}, t.buckets)
	first := true
	for _, addr := range t.dir {
		if _, dup := seen[addr]; dup {
			continue
		}
		seen[addr] = struct{}{}
		ld := bucket.ViewAddr(addr).LocalDepth()
		s.DepthHistogram[ld]++
		if first || ld < s.MinLocalDepth {
			s.MinLocalDepth = ld
		}
		if first || ld > s.MaxLocalDepth {
			s.MaxLocalDepth = ld
		}
		first = false
	}
	if t.count > 0 {
		s.BytesPerEntry = float64(s.DirectoryBytes+s.BucketBytes) / float64(t.count)
	}
	return s
}

package eh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vmshortcut/internal/bucket"
	"vmshortcut/internal/hashfn"
	"vmshortcut/internal/pool"
)

func newPool(t testing.TB) *pool.Pool {
	t.Helper()
	p, err := pool.New(pool.Config{GrowChunkPages: 32, MaxPages: 1 << 18})
	if err != nil {
		t.Fatalf("pool.New: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func newTable(t testing.TB, cfg Config) *Table {
	t.Helper()
	tbl, err := New(newPool(t), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tbl
}

func TestEmptyTable(t *testing.T) {
	tbl := newTable(t, Config{})
	if tbl.Len() != 0 || tbl.GlobalDepth() != 0 || tbl.DirSize() != 1 || tbl.Buckets() != 1 {
		t.Fatalf("fresh table: len=%d gd=%d dir=%d buckets=%d",
			tbl.Len(), tbl.GlobalDepth(), tbl.DirSize(), tbl.Buckets())
	}
	if _, ok := tbl.Lookup(42); ok {
		t.Fatal("lookup in empty table succeeded")
	}
}

func TestInsertLookupSmall(t *testing.T) {
	tbl := newTable(t, Config{})
	for k := uint64(0); k < 50; k++ {
		if err := tbl.Insert(k, k*3); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if tbl.Len() != 50 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for k := uint64(0); k < 50; k++ {
		v, ok := tbl.Lookup(k)
		if !ok || v != k*3 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestUpsert(t *testing.T) {
	tbl := newTable(t, Config{})
	tbl.Insert(9, 1)
	tbl.Insert(9, 2)
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after upsert", tbl.Len())
	}
	if v, _ := tbl.Lookup(9); v != 2 {
		t.Fatalf("value = %d", v)
	}
}

func TestGrowthThroughSplitsAndDoubles(t *testing.T) {
	tbl := newTable(t, Config{})
	const n = 20000
	for k := uint64(0); k < n; k++ {
		if err := tbl.Insert(k, k+1); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d, want %d", tbl.Len(), n)
	}
	if tbl.Splits == 0 || tbl.Doubles == 0 {
		t.Fatalf("expected structural growth, splits=%d doubles=%d", tbl.Splits, tbl.Doubles)
	}
	if tbl.DirSize() != 1<<tbl.GlobalDepth() {
		t.Fatalf("dir size %d != 2^%d", tbl.DirSize(), tbl.GlobalDepth())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tbl.Lookup(k)
		if !ok || v != k+1 {
			t.Fatalf("Lookup(%d) after growth = %d,%v", k, v, ok)
		}
	}
	// Absent keys must miss.
	for k := uint64(n); k < n+1000; k++ {
		if _, ok := tbl.Lookup(k); ok {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestBucketLoadRespectsThreshold(t *testing.T) {
	tbl := newTable(t, Config{MaxLoadFactor: 0.35})
	for k := uint64(0); k < 50000; k++ {
		tbl.Insert(k, k)
	}
	loadLimit := 0.35
	maxFill := int(loadLimit * float64(bucket.Capacity))
	for i := uint64(0); i < uint64(tbl.DirSize()); i++ {
		b := bucket.ViewAddr(tbl.DirAddr(i))
		if b.Count() > maxFill {
			t.Fatalf("bucket at slot %d holds %d > %d entries", i, b.Count(), maxFill)
		}
	}
}

func TestDirectoryInvariants(t *testing.T) {
	tbl := newTable(t, Config{})
	for k := uint64(0); k < 30000; k++ {
		tbl.Insert(k*2654435761, k)
	}
	gd := tbl.GlobalDepth()
	// Every bucket with local depth ld must be referenced by exactly
	// 2^(gd-ld) contiguous, prefix-aligned slots.
	seen := map[uintptr]bool{}
	buckets := 0
	for i := uint64(0); i < uint64(tbl.DirSize()); {
		addr := tbl.DirAddr(i)
		b := bucket.ViewAddr(addr)
		ld := b.LocalDepth()
		if ld > gd {
			t.Fatalf("slot %d: local depth %d > global %d", i, ld, gd)
		}
		span := uint64(1) << (gd - ld)
		if i%span != 0 {
			t.Fatalf("slot %d not aligned to its span %d", i, span)
		}
		for j := i; j < i+span; j++ {
			if tbl.DirAddr(j) != addr {
				t.Fatalf("slot %d should share bucket with slot %d", j, i)
			}
		}
		if !seen[addr] {
			seen[addr] = true
			buckets++
		}
		i += span
	}
	if buckets != tbl.Buckets() {
		t.Fatalf("observed %d buckets, table claims %d", buckets, tbl.Buckets())
	}
}

func TestEntriesLandInPrefixBucket(t *testing.T) {
	tbl := newTable(t, Config{})
	for k := uint64(0); k < 10000; k++ {
		tbl.Insert(k, k)
	}
	gd := tbl.GlobalDepth()
	for i := uint64(0); i < uint64(tbl.DirSize()); i++ {
		b := bucket.ViewAddr(tbl.DirAddr(i))
		ld := b.LocalDepth()
		b.ForEach(func(k, v uint64) bool {
			h := hashfn.Hash(k)
			if hashfn.DirIndex(h, ld) != hashfn.DirIndex(h, gd)>>(gd-ld) {
				t.Errorf("key %d stored in bucket with wrong %d-bit prefix", k, ld)
				return false
			}
			return true
		})
	}
}

func TestDelete(t *testing.T) {
	tbl := newTable(t, Config{})
	const n = 5000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k)
	}
	for k := uint64(0); k < n; k += 3 {
		if !tbl.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tbl.Delete(n + 100) {
		t.Fatal("Delete of absent key succeeded")
	}
	want := n - (n+2)/3
	if tbl.Len() != want {
		t.Fatalf("Len = %d, want %d", tbl.Len(), want)
	}
	for k := uint64(0); k < n; k++ {
		_, ok := tbl.Lookup(k)
		if k%3 == 0 && ok {
			t.Fatalf("deleted key %d still present", k)
		}
		if k%3 != 0 && !ok {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestVersionCountsModifications(t *testing.T) {
	tbl := newTable(t, Config{})
	if tbl.Version() != 0 {
		t.Fatal("fresh version should be 0")
	}
	for k := uint64(0); k < 5000; k++ {
		tbl.Insert(k, k)
	}
	if got, want := tbl.Version(), uint64(tbl.Splits+tbl.Doubles); got != want {
		t.Fatalf("version %d != splits+doubles %d", got, want)
	}
	if tbl.Version() == 0 {
		t.Fatal("version should have advanced")
	}
}

func TestEventsReplayDirectory(t *testing.T) {
	// Replaying the event stream must reconstruct the directory exactly —
	// the property sceh's shortcut maintenance relies on.
	p := newPool(t)
	tbl, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var replay []pool.Ref
	var lastVer uint64
	tbl.SetEventFunc(func(e Event) {
		switch ev := e.(type) {
		case DoubleEvent:
			replay = make([]pool.Ref, len(ev.Refs))
			copy(replay, ev.Refs)
			lastVer = ev.Version
		case SplitEvent:
			for s := ev.Lo0; s < ev.Hi0; s++ {
				replay[s] = ev.Ref0
			}
			for s := ev.Lo1; s < ev.Hi1; s++ {
				replay[s] = ev.Ref1
			}
			lastVer = ev.Version
		}
	})
	for k := uint64(0); k < 30000; k++ {
		if err := tbl.Insert(k*0x9E3779B9, k); err != nil {
			t.Fatal(err)
		}
	}
	if lastVer != tbl.Version() {
		t.Fatalf("replay version %d != table version %d", lastVer, tbl.Version())
	}
	want := tbl.Refs()
	if len(replay) != len(want) {
		t.Fatalf("replay has %d slots, want %d", len(replay), len(want))
	}
	for i := range want {
		if replay[i] != want[i] {
			t.Fatalf("slot %d: replay %d != table %d", i, replay[i], want[i])
		}
	}
}

func TestInitialGlobalDepth(t *testing.T) {
	tbl := newTable(t, Config{InitialGlobalDepth: 4})
	if tbl.GlobalDepth() != 4 || tbl.DirSize() != 16 {
		t.Fatalf("gd=%d dir=%d", tbl.GlobalDepth(), tbl.DirSize())
	}
	if tbl.Buckets() != 1 {
		t.Fatalf("buckets = %d, want 1 (all slots share)", tbl.Buckets())
	}
	tbl.Insert(1, 2)
	if v, ok := tbl.Lookup(1); !ok || v != 2 {
		t.Fatal("lookup after pre-sizing failed")
	}
}

func TestMaxGlobalDepthEnforced(t *testing.T) {
	tbl := newTable(t, Config{MaxGlobalDepth: 3})
	var err error
	for k := uint64(0); k < 100000; k++ {
		if err = tbl.Insert(k, k); err != nil {
			break
		}
	}
	if err == nil {
		t.Skip("never hit directory limit (extremely balanced hash)")
	}
	if tbl.GlobalDepth() > 3 {
		t.Fatalf("gd = %d exceeded limit", tbl.GlobalDepth())
	}
}

func TestAvgFanIn(t *testing.T) {
	tbl := newTable(t, Config{})
	if tbl.AvgFanIn() != 1 {
		t.Fatalf("fresh fan-in = %f", tbl.AvgFanIn())
	}
	for k := uint64(0); k < 10000; k++ {
		tbl.Insert(k, k)
	}
	got := tbl.AvgFanIn()
	want := float64(tbl.DirSize()) / float64(tbl.Buckets())
	if got != want {
		t.Fatalf("fan-in %f != %f", got, want)
	}
	if got < 1 {
		t.Fatalf("fan-in %f < 1", got)
	}
}

// TestQuickModelEquivalence drives random operation streams against a map.
func TestQuickModelEquivalence(t *testing.T) {
	tbl := newTable(t, Config{})
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(7))

	check := func(kRaw uint16, v uint64, opRaw uint8) bool {
		k := uint64(kRaw) // small key space: heavy collisions, many upserts
		switch opRaw % 4 {
		case 0, 1: // insert twice as often
			if err := tbl.Insert(k, v); err != nil {
				return false
			}
			model[k] = v
		case 2:
			got, ok := tbl.Lookup(k)
			want, mok := model[k]
			if ok != mok || (ok && got != want) {
				return false
			}
		case 3:
			if tbl.Delete(k) != (func() bool { _, ok := model[k]; return ok })() {
				return false
			}
			delete(model, k)
		}
		if tbl.Len() != len(model) {
			return false
		}
		// Occasionally verify a random model key end-to-end.
		if len(model) > 0 && rng.Intn(8) == 0 {
			for mk, mv := range model {
				got, ok := tbl.Lookup(mk)
				return ok && got == mv
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomKeys(t *testing.T) {
	tbl := newTable(t, Config{})
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, 30000)
	for i := range keys {
		keys[i] = rng.Uint64()
		tbl.Insert(keys[i], uint64(i))
	}
	for i, k := range keys {
		v, ok := tbl.Lookup(k)
		if !ok || v != uint64(i) {
			// rng.Uint64 may repeat a key (overwritten value); tolerate
			// only exact duplicates.
			dup := false
			for j := i + 1; j < len(keys); j++ {
				if keys[j] == k {
					dup = true
					break
				}
			}
			if !dup {
				t.Fatalf("key %d (#%d) = %d,%v", k, i, v, ok)
			}
		}
	}
}

func BenchmarkEHInsert(b *testing.B) {
	tbl := newTable(b, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert(uint64(i)*0x9E3779B97F4A7C15+1, uint64(i))
	}
}

func BenchmarkEHLookup(b *testing.B) {
	tbl := newTable(b, Config{})
	const n = 1 << 20
	for i := 0; i < n; i++ {
		tbl.Insert(uint64(i), uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(uint64(i & (n - 1)))
	}
}

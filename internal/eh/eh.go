package eh

import (
	"errors"
	"fmt"

	"vmshortcut/internal/bucket"
	"vmshortcut/internal/hashfn"
	"vmshortcut/internal/pool"
)

// Event describes one directory modification, tagged with the directory
// version after the modification was applied.
type Event interface{ isEvent() }

// SplitEvent reports a bucket split: directory slots [Lo0,Hi0) now
// reference the page Ref0 and slots [Lo1,Hi1) reference Ref1.
type SplitEvent struct {
	Version  uint64
	Lo0, Hi0 uint64
	Ref0     pool.Ref
	Lo1, Hi1 uint64
	Ref1     pool.Ref
}

// DoubleEvent reports a directory doubling. Refs is a snapshot of every
// slot's page ref after the doubling, in slot order.
type DoubleEvent struct {
	Version     uint64
	GlobalDepth uint
	Refs        []pool.Ref
}

func (SplitEvent) isEvent()  {}
func (DoubleEvent) isEvent() {}

// Config tunes a Table. The zero value selects the paper's parameters.
type Config struct {
	// MaxLoadFactor triggers a bucket split when a bucket's occupancy
	// exceeds it. Default 0.35 (paper §4.2).
	MaxLoadFactor float64
	// MaxGlobalDepth bounds directory growth. Default 30 (a billion
	// slots) — effectively unbounded for in-memory use.
	MaxGlobalDepth uint
	// InitialGlobalDepth pre-sizes the directory (0 = single slot).
	InitialGlobalDepth uint
	// MergeLoadFactor enables bucket coalescing through DeleteAndMerge:
	// after a delete leaves a bucket at or below this occupancy, it merges
	// with its buddy if the combined bucket stays within MaxLoadFactor,
	// and the directory is halved when possible. 0 (default) disables
	// merging, matching the paper's prototype.
	MergeLoadFactor float64
}

func (c *Config) fill() {
	if c.MaxLoadFactor <= 0 || c.MaxLoadFactor > 1 {
		c.MaxLoadFactor = 0.35
	}
	if c.MaxGlobalDepth == 0 {
		c.MaxGlobalDepth = 30
	}
}

// ErrDirectoryLimit is returned when a split would exceed MaxGlobalDepth.
var ErrDirectoryLimit = errors.New("eh: directory reached MaxGlobalDepth")

// Table is an extendible hash table mapping uint64 keys to uint64 values.
// It is not safe for concurrent mutation; the paper's design has a single
// writer thread (lookups through sceh coordinate via version numbers).
type Table struct {
	pool       *pool.Pool
	dir        []uintptr // window address of each slot's bucket page
	refs       []pool.Ref
	gd         uint
	buckets    int
	count      int
	version    uint64
	maxFill    int
	mergeBelow int // merge trigger in entries; 0 disables
	mergeFill  int // max combined entries for a merged bucket
	cfg        Config
	onEvent    func(Event)

	// Splits, Doubles, Merges, and Halves count structural modifications
	// (recorded in EXPERIMENTS.md).
	Splits  int
	Doubles int
	Merges  int
	Halves  int
}

// New creates a table with a single empty bucket — the paper's starting
// point of 4 KB effective space.
func New(p *pool.Pool, cfg Config) (*Table, error) {
	cfg.fill()
	t := &Table{
		pool:    p,
		cfg:     cfg,
		maxFill: int(cfg.MaxLoadFactor * float64(bucket.Capacity)),
	}
	if t.maxFill < 1 {
		t.maxFill = 1
	}
	if t.maxFill > bucket.Capacity {
		t.maxFill = bucket.Capacity
	}
	if cfg.MergeLoadFactor > 0 {
		t.mergeBelow = int(cfg.MergeLoadFactor * float64(bucket.Capacity))
		t.mergeFill = t.maxFill
	}
	ref, err := p.Alloc()
	if err != nil {
		return nil, fmt.Errorf("eh: allocating first bucket: %w", err)
	}
	bucket.ViewAddr(p.Addr(ref)).Reset(0)
	t.dir = []uintptr{p.Addr(ref)}
	t.refs = []pool.Ref{ref}
	t.buckets = 1
	for t.gd < cfg.InitialGlobalDepth {
		if err := t.double(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SetEventFunc registers fn to observe directory modifications. Must be
// set before any mutation; events fire synchronously on the writer
// goroutine after the directory reflects the modification.
func (t *Table) SetEventFunc(fn func(Event)) { t.onEvent = fn }

// GlobalDepth returns the directory's global depth.
func (t *Table) GlobalDepth() uint { return t.gd }

// DirSize returns the number of directory slots (2^globalDepth).
func (t *Table) DirSize() int { return len(t.dir) }

// Buckets returns the number of distinct buckets.
func (t *Table) Buckets() int { return t.buckets }

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.count }

// Version returns the directory version: the count of modifications
// (splits and doublings) applied so far.
func (t *Table) Version() uint64 { return t.version }

// AvgFanIn returns the average number of directory slots per bucket.
func (t *Table) AvgFanIn() float64 { return float64(len(t.dir)) / float64(t.buckets) }

// Refs returns a snapshot of each directory slot's page ref.
func (t *Table) Refs() []pool.Ref {
	out := make([]pool.Ref, len(t.refs))
	copy(out, t.refs)
	return out
}

// DirAddr exposes slot i's bucket address — the traditional access path.
func (t *Table) DirAddr(i uint64) uintptr { return t.dir[i] }

// SlotOf returns the directory slot key hashes to.
func (t *Table) SlotOf(key uint64) uint64 {
	return hashfn.DirIndex(hashfn.Hash(key), t.gd)
}

// Insert upserts (key, value), splitting buckets and doubling the
// directory as needed.
func (t *Table) Insert(key, value uint64) error {
	h := hashfn.Hash(key)
	for {
		idx := hashfn.DirIndex(h, t.gd)
		b := bucket.ViewAddr(t.dir[idx])
		if _, exists := b.Lookup(key); exists {
			b.Insert(key, value)
			return nil
		}
		if b.Count() < t.maxFill {
			if !b.Insert(key, value) {
				return fmt.Errorf("eh: bucket rejected insert below fill threshold")
			}
			t.count++
			return nil
		}
		if err := t.split(idx); err != nil {
			return err
		}
	}
}

// Lookup returns the value stored for key.
func (t *Table) Lookup(key uint64) (uint64, bool) {
	idx := hashfn.DirIndex(hashfn.Hash(key), t.gd)
	return bucket.ViewAddr(t.dir[idx]).Lookup(key)
}

// InsertBatch upserts every (keys[i], values[i]) pair; semantically a loop
// of Insert calls with the per-call overhead amortized.
func (t *Table) InsertBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("eh: InsertBatch: %d keys, %d values", len(keys), len(values))
	}
	for i, k := range keys {
		if err := t.Insert(k, values[i]); err != nil {
			return err
		}
	}
	return nil
}

// LookupBatch looks up every key, writing values into out (which must
// have length at least len(keys)) and returning per-key presence. The
// directory depth is loaded once for the whole batch — inserts may not run
// concurrently, so it cannot change mid-batch.
func (t *Table) LookupBatch(keys []uint64, out []uint64) []bool {
	ok := make([]bool, len(keys))
	gd := t.gd
	for i, k := range keys {
		idx := hashfn.DirIndex(hashfn.Hash(k), gd)
		out[i], ok[i] = bucket.ViewAddr(t.dir[idx]).Lookup(k)
	}
	return ok
}

// Range calls fn for every stored entry until fn returns false. Each
// distinct bucket is visited once even when several directory slots fan in
// to it. Iteration order is unspecified. fn must not mutate the table.
func (t *Table) Range(fn func(key, value uint64) bool) {
	seen := make(map[pool.Ref]struct{}, t.buckets)
	stop := false
	for i, r := range t.refs {
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = struct{}{}
		bucket.ViewAddr(t.dir[i]).ForEach(func(k, v uint64) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Delete removes key and reports whether it was present. Buckets are not
// merged (the classical scheme leaves coalescing optional).
func (t *Table) Delete(key uint64) bool {
	idx := hashfn.DirIndex(hashfn.Hash(key), t.gd)
	if bucket.ViewAddr(t.dir[idx]).Delete(key) {
		t.count--
		return true
	}
	return false
}

// DeleteBatch removes every key, returning per-key presence. Like
// LookupBatch, the directory depth is loaded once for the whole batch —
// deletes without merging never change the directory shape.
func (t *Table) DeleteBatch(keys []uint64) []bool {
	ok := make([]bool, len(keys))
	gd := t.gd
	for i, k := range keys {
		idx := hashfn.DirIndex(hashfn.Hash(k), gd)
		if bucket.ViewAddr(t.dir[idx]).Delete(k) {
			t.count--
			ok[i] = true
		}
	}
	return ok
}

// DeleteAndMergeBatch removes every key through DeleteAndMerge, so
// underfull buckets coalesce when Config.MergeLoadFactor enables it.
func (t *Table) DeleteAndMergeBatch(keys []uint64) []bool {
	ok := make([]bool, len(keys))
	for i, k := range keys {
		ok[i] = t.DeleteAndMerge(k)
	}
	return ok
}

// split splits the bucket referenced by directory slot idx, doubling the
// directory first if its local depth has reached the global depth.
func (t *Table) split(idx uint64) error {
	oldAddr := t.dir[idx]
	b := bucket.ViewAddr(oldAddr)
	ld := b.LocalDepth()
	if ld >= 63 {
		return fmt.Errorf("eh: bucket local depth exhausted")
	}
	if ld == t.gd {
		if err := t.double(); err != nil {
			return err
		}
		idx = idx * 2 // the old slot's lower child still holds the bucket
	}

	newRefs, err := t.pool.AllocN(2)
	if err != nil {
		return fmt.Errorf("eh: allocating split buckets: %w", err)
	}
	b0 := bucket.ViewAddr(t.pool.Addr(newRefs[0]))
	b1 := bucket.ViewAddr(t.pool.Addr(newRefs[1]))
	b.SplitInto(b0, b1)

	// All slots sharing the bucket's ld-bit prefix split into two halves.
	span := uint64(1) << (t.gd - ld)
	lo := idx &^ (span - 1)
	hi := lo + span
	mid := lo + span/2
	for s := lo; s < mid; s++ {
		t.dir[s] = t.pool.Addr(newRefs[0])
		t.refs[s] = newRefs[0]
	}
	for s := mid; s < hi; s++ {
		t.dir[s] = t.pool.Addr(newRefs[1])
		t.refs[s] = newRefs[1]
	}
	// The split page is no longer referenced by any slot; recycle it.
	if oldRef, err := t.pool.RefOf(oldAddr); err == nil {
		t.pool.Free(oldRef)
	}
	t.buckets++
	t.version++
	t.Splits++
	if t.onEvent != nil {
		t.onEvent(SplitEvent{
			Version: t.version,
			Lo0:     lo, Hi0: mid, Ref0: newRefs[0],
			Lo1: mid, Hi1: hi, Ref1: newRefs[1],
		})
	}
	return nil
}

// double doubles the directory: slot i becomes slots 2i and 2i+1 (MSB
// indexing preserves prefix order).
func (t *Table) double() error {
	if t.gd >= t.cfg.MaxGlobalDepth {
		return ErrDirectoryLimit
	}
	newDir := make([]uintptr, 2*len(t.dir))
	newRefs := make([]pool.Ref, 2*len(t.refs))
	for i, addr := range t.dir {
		newDir[2*i] = addr
		newDir[2*i+1] = addr
		newRefs[2*i] = t.refs[i]
		newRefs[2*i+1] = t.refs[i]
	}
	t.dir = newDir
	t.refs = newRefs
	t.gd++
	t.version++
	t.Doubles++
	if t.onEvent != nil {
		t.onEvent(DoubleEvent{Version: t.version, GlobalDepth: t.gd, Refs: t.Refs()})
	}
	return nil
}

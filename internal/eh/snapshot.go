package eh

// Snapshots — the other application family of memory rewiring the paper
// cites ([7] RUMA, [9] AnyOLAP): because all bucket state lives in pool
// pages and the directory is just refs into the pool file, an extendible
// hash table serializes to a compact, self-contained stream and restores
// into any pool. The stream stores each distinct bucket page once,
// followed by the directory as indexes into that page list.

import (
	"encoding/binary"
	"fmt"
	"io"

	"vmshortcut/internal/bucket"
	"vmshortcut/internal/pool"
	"vmshortcut/internal/sys"
)

// snapshotMagic identifies and versions the snapshot format.
const snapshotMagic = uint64(0x5643_5348_4F54_0001) // "VCSHOT" v1

// WriteSnapshot serializes the table. The format is:
//
//	magic, pageSize, globalDepth, count, distinctPages
//	distinctPages × (page bytes)
//	2^globalDepth × (uint32 page index)
func (t *Table) WriteSnapshot(w io.Writer) error {
	ps := sys.PageSize()
	// Collect distinct pages in first-reference order.
	pageIndex := map[pool.Ref]uint32{}
	var order []pool.Ref
	for _, r := range t.refs {
		if _, ok := pageIndex[r]; !ok {
			pageIndex[r] = uint32(len(order))
			order = append(order, r)
		}
	}
	hdr := []uint64{snapshotMagic, uint64(ps), uint64(t.gd), uint64(t.count), uint64(len(order))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("eh: snapshot header: %w", err)
		}
	}
	for _, r := range order {
		if _, err := w.Write(t.pool.Page(r)); err != nil {
			return fmt.Errorf("eh: snapshot page: %w", err)
		}
	}
	idx := make([]uint32, len(t.refs))
	for i, r := range t.refs {
		idx[i] = pageIndex[r]
	}
	if err := binary.Write(w, binary.LittleEndian, idx); err != nil {
		return fmt.Errorf("eh: snapshot directory: %w", err)
	}
	return nil
}

// Restore reads a snapshot produced by WriteSnapshot into a fresh table
// whose buckets are allocated from p. The restored table is fully
// independent of the snapshot source.
func Restore(p *pool.Pool, cfg Config, r io.Reader) (*Table, error) {
	cfg.fill()
	var hdr [5]uint64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("eh: restore header: %w", err)
	}
	if hdr[0] != snapshotMagic {
		return nil, fmt.Errorf("eh: restore: bad magic %#x", hdr[0])
	}
	ps := sys.PageSize()
	if hdr[1] != uint64(ps) {
		return nil, fmt.Errorf("eh: restore: snapshot page size %d != host %d", hdr[1], ps)
	}
	gd := uint(hdr[2])
	if gd > cfg.MaxGlobalDepth {
		return nil, fmt.Errorf("eh: restore: snapshot depth %d exceeds MaxGlobalDepth %d",
			gd, cfg.MaxGlobalDepth)
	}
	distinct := int(hdr[4])

	pages, err := p.AllocN(distinct)
	if err != nil {
		return nil, fmt.Errorf("eh: restore: allocating %d pages: %w", distinct, err)
	}
	for _, ref := range pages {
		if _, err := io.ReadFull(r, p.Page(ref)); err != nil {
			return nil, fmt.Errorf("eh: restore: reading page: %w", err)
		}
	}
	idx := make([]uint32, 1<<gd)
	if err := binary.Read(r, binary.LittleEndian, idx); err != nil {
		return nil, fmt.Errorf("eh: restore: directory: %w", err)
	}

	t := &Table{
		pool:    p,
		cfg:     cfg,
		maxFill: int(cfg.MaxLoadFactor * float64(bucket.Capacity)),
		gd:      gd,
		count:   int(hdr[3]),
		dir:     make([]uintptr, 1<<gd),
		refs:    make([]pool.Ref, 1<<gd),
	}
	if t.maxFill < 1 {
		t.maxFill = 1
	}
	if cfg.MergeLoadFactor > 0 {
		t.mergeBelow = int(cfg.MergeLoadFactor * float64(bucket.Capacity))
		t.mergeFill = t.maxFill
	}
	seen := map[uint32]bool{}
	for i, pi := range idx {
		if int(pi) >= distinct {
			return nil, fmt.Errorf("eh: restore: slot %d references page %d of %d", i, pi, distinct)
		}
		t.dir[i] = p.Addr(pages[pi])
		t.refs[i] = pages[pi]
		if !seen[pi] {
			seen[pi] = true
			t.buckets++
		}
	}
	return t, nil
}

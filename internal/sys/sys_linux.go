//go:build linux

package sys

import (
	"syscall"
	"unsafe"
)

// mapPopulate is MAP_POPULATE: eagerly insert page-table entries during the
// mmap call instead of lazily on first access (paper §2.1, "Details").
const mapPopulate = 0x8000

// MemfdCreate creates a main-memory file: a file that behaves like a normal
// file but is backed by volatile physical memory. The returned descriptor is
// the application's handle to physical memory (paper §2). If the kernel does
// not support memfd_create, an unlinked tmpfs file is used instead.
func MemfdCreate(name string) (int, error) {
	if err := injected(OpMemfdCreate); err != nil {
		return -1, errOp(OpMemfdCreate, err)
	}
	p, err := syscall.BytePtrFromString(name)
	if err != nil {
		return -1, errOp(OpMemfdCreate, err)
	}
	fd, _, errno := syscall.Syscall(sysMemfdCreate, uintptr(unsafe.Pointer(p)), 0, 0)
	if errno == syscall.ENOSYS {
		return tmpfsFile(name)
	}
	if errno != 0 {
		return -1, errOp(OpMemfdCreate, errno)
	}
	return int(fd), nil
}

// Ftruncate resizes the main-memory file behind fd to size bytes, growing or
// shrinking the pool of physical pages at page granularity.
func Ftruncate(fd int, size int64) error {
	if err := injected(OpFtruncate); err != nil {
		return errOp(OpFtruncate, err)
	}
	if err := syscall.Ftruncate(fd, size); err != nil {
		return errOp(OpFtruncate, err)
	}
	return nil
}

// CloseFD closes a file descriptor obtained from MemfdCreate.
func CloseFD(fd int) error { return syscall.Close(fd) }

// ReserveAnon reserves a fresh virtual memory area of length bytes backed by
// anonymous memory (MAP_PRIVATE|MAP_ANON). This is a mere reservation: no
// physical memory is committed until a page is touched or rewired.
func ReserveAnon(length int) (uintptr, error) {
	if err := injected(OpReserve); err != nil {
		return 0, errOp(OpReserve, err)
	}
	addr, _, errno := syscall.Syscall6(syscall.SYS_MMAP, 0, uintptr(length),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_PRIVATE|syscall.MAP_ANON, ^uintptr(0), 0)
	if errno != 0 {
		return 0, errOp(OpReserve, errno)
	}
	return addr, nil
}

// ReserveNone reserves virtual address space with no access permissions.
// Useful for large stable windows whose interior is rewired piecemeal.
func ReserveNone(length int) (uintptr, error) {
	if err := injected(OpReserve); err != nil {
		return 0, errOp(OpReserve, err)
	}
	addr, _, errno := syscall.Syscall6(syscall.SYS_MMAP, 0, uintptr(length),
		syscall.PROT_NONE,
		syscall.MAP_PRIVATE|syscall.MAP_ANON, ^uintptr(0), 0)
	if errno != 0 {
		return 0, errOp(OpReserve, errno)
	}
	return addr, nil
}

// MapShared rewires the virtual pages [addr, addr+length) onto the physical
// pages of the main-memory file fd starting at offset off. The existing
// mapping at addr is replaced atomically (MAP_SHARED|MAP_FIXED); the old
// page-table entries are dropped. If populate is true the new page-table
// entries are inserted eagerly (MAP_POPULATE), otherwise the first access
// takes a soft page fault.
func MapShared(addr uintptr, length int, fd int, off int64, populate bool) error {
	if err := injected(OpMapShared); err != nil {
		return errOp(OpMapShared, err)
	}
	flags := uintptr(syscall.MAP_SHARED | syscall.MAP_FIXED)
	if populate {
		flags |= mapPopulate
	}
	_, _, errno := syscall.Syscall6(syscall.SYS_MMAP, addr, uintptr(length),
		syscall.PROT_READ|syscall.PROT_WRITE, flags, uintptr(fd), uintptr(off))
	if errno != 0 {
		return errOp(OpMapShared, errno)
	}
	return nil
}

// MapSharedNew maps length bytes of fd at offset off at a kernel-chosen
// address and returns it. Used for linear pool windows.
func MapSharedNew(length int, fd int, off int64, populate bool) (uintptr, error) {
	if err := injected(OpMapShared); err != nil {
		return 0, errOp(OpMapShared, err)
	}
	flags := uintptr(syscall.MAP_SHARED)
	if populate {
		flags |= mapPopulate
	}
	addr, _, errno := syscall.Syscall6(syscall.SYS_MMAP, 0, uintptr(length),
		syscall.PROT_READ|syscall.PROT_WRITE, flags, uintptr(fd), uintptr(off))
	if errno != 0 {
		return 0, errOp(OpMapShared, errno)
	}
	return addr, nil
}

// MapAnonFixed replaces the mapping at [addr, addr+length) with fresh
// anonymous memory, detaching it from any main-memory file. Used to blank
// out shortcut slots and to retire shrunk pool tails.
func MapAnonFixed(addr uintptr, length int) error {
	if err := injected(OpMapShared); err != nil {
		return errOp(OpMapShared, err)
	}
	_, _, errno := syscall.Syscall6(syscall.SYS_MMAP, addr, uintptr(length),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_PRIVATE|syscall.MAP_ANON|syscall.MAP_FIXED, ^uintptr(0), 0)
	if errno != 0 {
		return errOp(OpMapShared, errno)
	}
	return nil
}

// Unmap removes the mapping at [addr, addr+length).
func Unmap(addr uintptr, length int) error {
	if err := injected(OpUnmap); err != nil {
		return errOp(OpUnmap, err)
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MUNMAP, addr, uintptr(length), 0)
	if errno != 0 {
		return errOp(OpUnmap, errno)
	}
	return nil
}

// Populate walks [addr, addr+length) reading one byte per page, forcing the
// kernel to install a page-table entry for every page. This is the explicit
// "populate" phase of Table 1 when MAP_POPULATE was not passed at map time.
func Populate(addr uintptr, length int) error {
	if err := injected(OpPopulate); err != nil {
		return errOp(OpPopulate, err)
	}
	ps := uintptr(PageSize())
	var sink byte
	for p := addr; p < addr+uintptr(length); p += ps {
		sink += *(*byte)(AddrToPointer(p))
	}
	_ = sink
	return nil
}

// tmpfsFile is the memfd_create fallback: an unlinked file on tmpfs, which
// is also backed by physical memory.
func tmpfsFile(name string) (int, error) {
	dir := "/dev/shm"
	if st, err := statDir(dir); err != nil || !st {
		dir = "/tmp"
	}
	path := dir + "/." + name + "-fallback"
	fd, err := syscall.Open(path, syscall.O_RDWR|syscall.O_CREAT|syscall.O_EXCL, 0o600)
	if err != nil {
		return -1, errOp(OpMemfdCreate, err)
	}
	// Unlink immediately: the pool owns the only handle.
	if err := syscall.Unlink(path); err != nil {
		syscall.Close(fd)
		return -1, errOp(OpMemfdCreate, err)
	}
	return fd, nil
}

func statDir(path string) (bool, error) {
	var st syscall.Stat_t
	if err := syscall.Stat(path, &st); err != nil {
		return false, err
	}
	return st.Mode&syscall.S_IFDIR != 0, nil
}

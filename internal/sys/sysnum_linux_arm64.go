//go:build linux && arm64

package sys

// sysMemfdCreate is the memfd_create(2) syscall number on linux/arm64.
const sysMemfdCreate = 279

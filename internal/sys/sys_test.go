package sys

import (
	"errors"
	"testing"
)

func TestPageSize(t *testing.T) {
	ps := PageSize()
	if ps <= 0 || ps&(ps-1) != 0 {
		t.Fatalf("page size %d is not a positive power of two", ps)
	}
}

func TestPageCeil(t *testing.T) {
	ps := PageSize()
	tests := []struct {
		in, want int
	}{
		{0, 0},
		{1, ps},
		{ps, ps},
		{ps + 1, 2 * ps},
		{3*ps - 1, 3 * ps},
	}
	for _, tc := range tests {
		if got := PageCeil(tc.in); got != tc.want {
			t.Errorf("PageCeil(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestMemfdCreateAndResize(t *testing.T) {
	fd, err := MemfdCreate("sys-test")
	if err != nil {
		t.Fatalf("MemfdCreate: %v", err)
	}
	defer CloseFD(fd)
	if err := Ftruncate(fd, int64(4*PageSize())); err != nil {
		t.Fatalf("Ftruncate grow: %v", err)
	}
	if err := Ftruncate(fd, int64(2*PageSize())); err != nil {
		t.Fatalf("Ftruncate shrink: %v", err)
	}
}

func TestReserveAndUnmap(t *testing.T) {
	n := 8 * PageSize()
	addr, err := ReserveAnon(n)
	if err != nil {
		t.Fatalf("ReserveAnon: %v", err)
	}
	b := Bytes(addr, n)
	b[0] = 1
	b[n-1] = 2
	if b[0] != 1 || b[n-1] != 2 {
		t.Fatal("anonymous reservation not writable")
	}
	if err := Unmap(addr, n); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
}

func TestRewireAliasing(t *testing.T) {
	ps := PageSize()
	fd, err := MemfdCreate("sys-alias")
	if err != nil {
		t.Fatalf("MemfdCreate: %v", err)
	}
	defer CloseFD(fd)
	if err := Ftruncate(fd, int64(4*ps)); err != nil {
		t.Fatalf("Ftruncate: %v", err)
	}
	win, err := MapSharedNew(4*ps, fd, 0, true)
	if err != nil {
		t.Fatalf("MapSharedNew: %v", err)
	}
	defer Unmap(win, 4*ps)

	sc, err := ReserveAnon(2 * ps)
	if err != nil {
		t.Fatalf("ReserveAnon: %v", err)
	}
	defer Unmap(sc, 2*ps)

	// Rewire both shortcut slots onto physical page 3 of the pool.
	if err := MapShared(sc, ps, fd, int64(3*ps), true); err != nil {
		t.Fatalf("MapShared slot 0: %v", err)
	}
	if err := MapShared(sc+uintptr(ps), ps, fd, int64(3*ps), false); err != nil {
		t.Fatalf("MapShared slot 1: %v", err)
	}

	poolWords := Words(win+uintptr(3*ps), ps/8)
	slot0 := Words(sc, ps/8)
	slot1 := Words(sc+uintptr(ps), ps/8)

	poolWords[7] = 0xABCD
	if slot0[7] != 0xABCD || slot1[7] != 0xABCD {
		t.Fatalf("aliases disagree: slot0=%x slot1=%x", slot0[7], slot1[7])
	}
	slot1[9] = 77
	if poolWords[9] != 77 || slot0[9] != 77 {
		t.Fatalf("write through alias not visible: pool=%d slot0=%d", poolWords[9], slot0[9])
	}
}

func TestMapAnonFixedDetaches(t *testing.T) {
	ps := PageSize()
	fd, err := MemfdCreate("sys-detach")
	if err != nil {
		t.Fatalf("MemfdCreate: %v", err)
	}
	defer CloseFD(fd)
	if err := Ftruncate(fd, int64(ps)); err != nil {
		t.Fatalf("Ftruncate: %v", err)
	}
	area, err := ReserveAnon(ps)
	if err != nil {
		t.Fatalf("ReserveAnon: %v", err)
	}
	defer Unmap(area, ps)
	if err := MapShared(area, ps, fd, 0, true); err != nil {
		t.Fatalf("MapShared: %v", err)
	}
	Bytes(area, ps)[0] = 9
	if err := MapAnonFixed(area, ps); err != nil {
		t.Fatalf("MapAnonFixed: %v", err)
	}
	if got := Bytes(area, ps)[0]; got != 0 {
		t.Fatalf("detached page should read zero, got %d", got)
	}
	// The file page must still hold the value.
	win, err := MapSharedNew(ps, fd, 0, true)
	if err != nil {
		t.Fatalf("MapSharedNew: %v", err)
	}
	defer Unmap(win, ps)
	if got := Bytes(win, ps)[0]; got != 9 {
		t.Fatalf("file page lost its value, got %d", got)
	}
}

func TestPopulate(t *testing.T) {
	ps := PageSize()
	addr, err := ReserveAnon(16 * ps)
	if err != nil {
		t.Fatalf("ReserveAnon: %v", err)
	}
	defer Unmap(addr, 16*ps)
	if err := Populate(addr, 16*ps); err != nil {
		t.Fatalf("Populate: %v", err)
	}
}

func TestFaultInjection(t *testing.T) {
	boom := errors.New("boom")
	SetFaultHook(func(op Op) error {
		if op == OpFtruncate {
			return boom
		}
		return nil
	})
	defer SetFaultHook(nil)

	fd, err := MemfdCreate("sys-fault")
	if err != nil {
		t.Fatalf("MemfdCreate should pass through: %v", err)
	}
	defer CloseFD(fd)
	if err := Ftruncate(fd, int64(PageSize())); !errors.Is(err, boom) {
		t.Fatalf("Ftruncate error = %v, want wrapped boom", err)
	}
}

func TestWordsAlignment(t *testing.T) {
	ps := PageSize()
	addr, err := ReserveAnon(ps)
	if err != nil {
		t.Fatalf("ReserveAnon: %v", err)
	}
	defer Unmap(addr, ps)
	w := Words(addr, ps/8)
	if len(w) != ps/8 {
		t.Fatalf("len = %d, want %d", len(w), ps/8)
	}
	w[0], w[len(w)-1] = 1, 2
	b := Bytes(addr, ps)
	if b[0] != 1 || b[ps-8] != 2 {
		t.Fatal("word view does not alias byte view")
	}
}

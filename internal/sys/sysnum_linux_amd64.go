//go:build linux && amd64

package sys

// sysMemfdCreate is the memfd_create(2) syscall number on linux/amd64.
const sysMemfdCreate = 319

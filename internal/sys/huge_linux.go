//go:build linux

package sys

import (
	"fmt"
	"syscall"
	"unsafe"
)

// Real 2 MB huge-page support — the paper's future-work direction on
// actual hardware: a main-memory file backed by the hugetlb pool, mapped
// with 2 MB translations, multiplies TLB reach by 512 and shortens every
// page walk by one level. Requires a configured pool
// (sysctl vm.nr_hugepages > 0); callers must handle ErrNoHugePages.

const (
	mfdHugetlb  = 0x0004
	mapHugetlb  = 0x40000
	hugePageLog = 21
)

// HugePageSize is the huge page size used by the helpers below (2 MB).
const HugePageSize = 1 << hugePageLog

// ErrNoHugePages is returned when the kernel's hugetlb pool cannot back
// the request (vm.nr_hugepages unset or exhausted).
var ErrNoHugePages = fmt.Errorf("sys: hugetlb pool unavailable (set vm.nr_hugepages)")

// MemfdCreateHuge creates a main-memory file backed by 2 MB huge pages.
func MemfdCreateHuge(name string) (int, error) {
	if err := injected(OpMemfdCreate); err != nil {
		return -1, errOp(OpMemfdCreate, err)
	}
	p, err := syscall.BytePtrFromString(name)
	if err != nil {
		return -1, errOp(OpMemfdCreate, err)
	}
	fd, _, errno := syscall.Syscall(sysMemfdCreate, uintptr(unsafe.Pointer(p)), mfdHugetlb, 0)
	if errno == syscall.EINVAL || errno == syscall.ENOSYS {
		return -1, ErrNoHugePages
	}
	if errno != 0 {
		return -1, errOp(OpMemfdCreate, errno)
	}
	return int(fd), nil
}

// MapSharedHuge maps length bytes (a multiple of HugePageSize) of the
// hugetlb-backed file fd at a kernel-chosen address with 2 MB
// translations, pre-faulting the pages. Fails with ErrNoHugePages when
// the pool cannot satisfy the request.
func MapSharedHuge(length int, fd int, off int64) (uintptr, error) {
	if err := injected(OpMapShared); err != nil {
		return 0, errOp(OpMapShared, err)
	}
	if length%HugePageSize != 0 {
		return 0, fmt.Errorf("sys: huge mapping length %d not a multiple of %d", length, HugePageSize)
	}
	addr, _, errno := syscall.Syscall6(syscall.SYS_MMAP, 0, uintptr(length),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_SHARED|mapHugetlb|mapPopulate, uintptr(fd), uintptr(off))
	if errno == syscall.ENOMEM || errno == syscall.EINVAL {
		return 0, ErrNoHugePages
	}
	if errno != 0 {
		return 0, errOp(OpMapShared, errno)
	}
	return addr, nil
}

// Package sys provides the thin, page-granular virtual-memory syscall layer
// that memory rewiring is built on: main-memory files (memfd_create),
// on-demand resizing (ftruncate), virtual-area reservation (anonymous mmap),
// and page-table manipulation (mmap with MAP_SHARED|MAP_FIXED).
//
// All addresses handed out by this package live outside the Go heap. The
// garbage collector never scans or moves them, which is what makes page
// games safe in Go: the pages may only ever hold plain bytes, never Go
// pointers.
//
// The package also exposes a fault-injection hook so higher layers can test
// their error paths without a broken kernel.
package sys

import (
	"fmt"
	"os"
	"sync"
	"unsafe"
)

// Op identifies a syscall wrapper for fault injection.
type Op string

// Operations that can be intercepted by the fault hook.
const (
	OpMemfdCreate Op = "memfd_create"
	OpFtruncate   Op = "ftruncate"
	OpReserve     Op = "mmap_reserve"
	OpMapShared   Op = "mmap_shared"
	OpUnmap       Op = "munmap"
	OpPopulate    Op = "populate"
)

var (
	faultMu   sync.RWMutex
	faultHook func(Op) error
)

// SetFaultHook installs fn as a pre-syscall interceptor: if fn returns a
// non-nil error for an Op, the wrapper fails with that error instead of
// entering the kernel. Passing nil removes the hook. Intended for tests.
func SetFaultHook(fn func(Op) error) {
	faultMu.Lock()
	faultHook = fn
	faultMu.Unlock()
}

func injected(op Op) error {
	faultMu.RLock()
	fn := faultHook
	faultMu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn(op)
}

var pageSize = os.Getpagesize()

// PageSize returns the size of a small memory page on this host,
// typically 4096 bytes.
func PageSize() int { return pageSize }

// PageCeil rounds n up to the next multiple of the page size.
func PageCeil(n int) int {
	ps := PageSize()
	return (n + ps - 1) / ps * ps
}

// AddrToPointer converts a raw mapped address (as returned by the mmap
// wrappers in this package) to an unsafe.Pointer. The addresses handled
// here never point into the Go heap — they come straight from the kernel —
// so the usual vet concern about uintptr round-trips (a GC moving the
// object between the conversion steps) cannot apply. The double conversion
// keeps `go vet` satisfied while documenting exactly this one crossing
// point.
func AddrToPointer(addr uintptr) unsafe.Pointer {
	return *(*unsafe.Pointer)(unsafe.Pointer(&addr))
}

// Bytes reinterprets the n bytes starting at addr as a byte slice. The
// memory must stay mapped for as long as the slice is in use.
func Bytes(addr uintptr, n int) []byte {
	return unsafe.Slice((*byte)(AddrToPointer(addr)), n)
}

// Words reinterprets the memory starting at addr as a slice of n uint64
// words. addr must be 8-byte aligned (page-aligned addresses always are).
func Words(addr uintptr, n int) []uint64 {
	return unsafe.Slice((*uint64)(AddrToPointer(addr)), n)
}

// errOp wraps err with the failing operation for diagnosis.
func errOp(op Op, err error) error {
	return fmt.Errorf("sys: %s: %w", op, err)
}

package sys

import "testing"

// The tmpfs fallback is only reached on kernels without memfd_create, so
// exercise it directly: it must behave like a main-memory file.
func TestTmpfsFallbackBehavesLikeMemfd(t *testing.T) {
	fd, err := tmpfsFile("sys-fallback-test")
	if err != nil {
		t.Fatalf("tmpfsFile: %v", err)
	}
	defer CloseFD(fd)
	ps := PageSize()
	if err := Ftruncate(fd, int64(2*ps)); err != nil {
		t.Fatalf("Ftruncate: %v", err)
	}
	win, err := MapSharedNew(2*ps, fd, 0, true)
	if err != nil {
		t.Fatalf("MapSharedNew: %v", err)
	}
	defer Unmap(win, 2*ps)
	Bytes(win, ps)[0] = 42

	// Rewiring must work over the fallback file too.
	area, err := ReserveAnon(ps)
	if err != nil {
		t.Fatal(err)
	}
	defer Unmap(area, ps)
	if err := MapShared(area, ps, fd, 0, true); err != nil {
		t.Fatalf("MapShared over fallback: %v", err)
	}
	if Bytes(area, ps)[0] != 42 {
		t.Fatal("fallback file does not alias")
	}
}

func TestTmpfsFallbackUniqueNames(t *testing.T) {
	a, err := tmpfsFile("sys-dup")
	if err != nil {
		t.Fatal(err)
	}
	defer CloseFD(a)
	// The file is unlinked immediately, so the same name is reusable.
	b, err := tmpfsFile("sys-dup")
	if err != nil {
		t.Fatalf("second tmpfsFile with same name: %v", err)
	}
	CloseFD(b)
}

func TestReserveNone(t *testing.T) {
	ps := PageSize()
	addr, err := ReserveNone(4 * ps)
	if err != nil {
		t.Fatalf("ReserveNone: %v", err)
	}
	defer Unmap(addr, 4*ps)
	// PROT_NONE area: becomes usable once rewired.
	fd, err := MemfdCreate("sys-none")
	if err != nil {
		t.Fatal(err)
	}
	defer CloseFD(fd)
	if err := Ftruncate(fd, int64(ps)); err != nil {
		t.Fatal(err)
	}
	if err := MapShared(addr+uintptr(ps), ps, fd, 0, true); err != nil {
		t.Fatalf("MapShared into PROT_NONE window: %v", err)
	}
	Bytes(addr+uintptr(ps), ps)[0] = 7
	if Bytes(addr+uintptr(ps), ps)[0] != 7 {
		t.Fatal("rewired window page unusable")
	}
}

func TestStatDir(t *testing.T) {
	if ok, err := statDir("/tmp"); err != nil || !ok {
		t.Fatalf("statDir(/tmp) = %v, %v", ok, err)
	}
	if ok, _ := statDir("/etc/hostname"); ok {
		t.Fatal("file reported as directory")
	}
	if _, err := statDir("/does/not/exist"); err == nil {
		t.Fatal("missing path accepted")
	}
}

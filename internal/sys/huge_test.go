package sys

import (
	"errors"
	"testing"
)

// hugeAvailable reports whether the kernel's hugetlb pool can satisfy a
// single 2 MB mapping right now.
func hugeAvailable(t *testing.T) (int, uintptr, bool) {
	t.Helper()
	fd, err := MemfdCreateHuge("sys-huge-test")
	if errors.Is(err, ErrNoHugePages) {
		return 0, 0, false
	}
	if err != nil {
		t.Fatalf("MemfdCreateHuge: %v", err)
	}
	if err := Ftruncate(fd, HugePageSize); err != nil {
		CloseFD(fd)
		t.Fatalf("Ftruncate huge: %v", err)
	}
	addr, err := MapSharedHuge(HugePageSize, fd, 0)
	if errors.Is(err, ErrNoHugePages) {
		CloseFD(fd)
		return 0, 0, false
	}
	if err != nil {
		CloseFD(fd)
		t.Fatalf("MapSharedHuge: %v", err)
	}
	return fd, addr, true
}

func TestHugeMappingReadWrite(t *testing.T) {
	fd, addr, ok := hugeAvailable(t)
	if !ok {
		t.Skip("hugetlb pool unavailable (vm.nr_hugepages = 0)")
	}
	defer CloseFD(fd)
	defer Unmap(addr, HugePageSize)

	w := Words(addr, HugePageSize/8)
	w[0] = 0xAB
	w[len(w)-1] = 0xCD
	if w[0] != 0xAB || w[len(w)-1] != 0xCD {
		t.Fatal("huge mapping not read/writable across its extent")
	}

	// A second mapping of the same file must alias the same memory.
	addr2, err := MapSharedHuge(HugePageSize, fd, 0)
	if errors.Is(err, ErrNoHugePages) {
		t.Skip("pool too small for a second view")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer Unmap(addr2, HugePageSize)
	if Words(addr2, 8)[0] != 0xAB {
		t.Fatal("second huge view does not alias")
	}
}

func TestMapSharedHugeRejectsBadLength(t *testing.T) {
	fd, err := MemfdCreateHuge("sys-huge-len")
	if errors.Is(err, ErrNoHugePages) {
		t.Skip("hugetlb pool unavailable")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer CloseFD(fd)
	if _, err := MapSharedHuge(4096, fd, 0); err == nil {
		t.Fatal("non-multiple length accepted")
	}
}

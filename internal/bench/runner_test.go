package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// microCell is a sub-second cell against a real in-process server.
func microCell(t *testing.T, name string, mutate func(*Cell)) Cell {
	t.Helper()
	c := Cell{
		Experiment: name, Kind: "shortcut-eh", Mix: "A", Batch: BatchNone,
		Fsync: FsyncNone, Shards: 2, Load: 500, Conns: 2, Pipeline: 8,
		Duration: Duration(80 * time.Millisecond), Warmup: Duration(20 * time.Millisecond),
		Seed: 42, Repeats: 2,
	}
	if mutate != nil {
		mutate(&c)
	}
	c.Key = c.Experiment + "/micro"
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRunCellEndToEnd drives one memory-only cell and one replicated
// durable cell through the full artifact pipeline: run → write dir →
// read back → analyze → history append. This is the in-repo version of
// CI's bench-smoke job.
func TestRunCellEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real servers")
	}
	cells := []Cell{
		microCell(t, "plain", nil),
		microCell(t, "repl", func(c *Cell) {
			c.Fsync = "off"
			c.Batch = BatchMixed
			c.Repl = true
		}),
	}
	var results []*CellResult
	for _, c := range cells {
		res, err := RunCell(c, t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Runs) != c.Repeats {
			t.Fatalf("cell %s: %d runs, want %d", c.Key, len(res.Runs), c.Repeats)
		}
		for _, run := range res.Runs {
			r := run.Report
			if r.Ops == 0 || r.Errors != 0 || r.Throughput <= 0 {
				t.Fatalf("cell %s run %d: ops=%d errors=%d tput=%f",
					c.Key, run.Repeat, r.Ops, r.Errors, r.Throughput)
			}
			if r.Latency.P50 == 0 || r.Latency.P99 < r.Latency.P50 {
				t.Fatalf("cell %s run %d: implausible latency %+v", c.Key, run.Repeat, r.Latency)
			}
			if c.Fsync != FsyncNone && r.Durability.WALRecords == 0 {
				t.Fatalf("cell %s run %d: durable cell logged no WAL records", c.Key, run.Repeat)
			}
			if c.Repl && run.Follower == nil {
				t.Fatalf("cell %s run %d: replication cell has no follower counters", c.Key, run.Repeat)
			}
			if c.Repl && run.Follower.RecordsApplied == 0 && run.Follower.FullSyncs == 0 {
				t.Fatalf("cell %s run %d: follower neither applied records nor synced: %+v",
					c.Key, run.Repeat, run.Follower)
			}
		}
		results = append(results, res)
	}

	dir := filepath.Join(t.TempDir(), "20990101_000000")
	g := &Grid{Repeats: 2, Experiments: []Experiment{{Name: "plain"}, {Name: "repl"}}}
	sum := Summarize("20990101_000000", results)
	if err := WriteRunDir(dir, g, results, sum); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{RunsCSVName, SummaryName, GridCopyName} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	csv, err := os.ReadFile(filepath.Join(dir, RunsCSVName))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(csv), "\n"); lines != 1+4 {
		t.Fatalf("runs.csv has %d lines, want header + 4 runs", lines)
	}

	// The analyzer must reconstruct the same grouped summary from the
	// per-run records alone.
	asum, err := Analyze(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(asum.Cells) != 2 {
		t.Fatalf("analyze found %d cells, want 2", len(asum.Cells))
	}
	for i, cs := range asum.Cells {
		if cs.Repeats != 2 {
			t.Fatalf("analyzed cell %s: %d repeats, want 2", cs.Key, cs.Repeats)
		}
		if cs.Throughput.Mean <= 0 || cs.Throughput.Min > cs.Throughput.Max {
			t.Fatalf("analyzed cell %s: bad throughput stat %+v", cs.Key, cs.Throughput)
		}
		if cs.Key != sum.Cells[i].Key || cs.Throughput != sum.Cells[i].Throughput {
			t.Fatalf("analyze disagrees with the live summary at %s", cs.Key)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, AnalysisName)); err != nil {
		t.Fatalf("missing %s: %v", AnalysisName, err)
	}

	// History append + self-compare: the committed-baseline flow.
	hist := filepath.Join(t.TempDir(), "BENCH_history.json")
	if err := AppendHistory(hist, asum.Entry("test")); err != nil {
		t.Fatal(err)
	}
	base, err := LoadComparable(hist)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(base, asum, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatalf("self-compare of a fresh run failed: %s", cmp)
	}
	entries, err := ReadHistory(hist)
	if err != nil || len(entries) != 1 {
		t.Fatalf("history: %v entries, err %v", len(entries), err)
	}
}

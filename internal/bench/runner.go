package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"vmshortcut"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/wire"
	"vmshortcut/repl"
	"vmshortcut/server"
)

// RunRecord is one measured run of one cell — the per-run JSON artifact
// written under bench_runs/<stamp>/runs/.
type RunRecord struct {
	Cell   Cell    `json:"cell"`
	Repeat int     `json:"repeat"`
	Report *Report `json:"report"`
	// Follower is the attached in-process follower's final state, present
	// only for replication cells: its applied position against the
	// primary's gives the end-of-run replication lag.
	Follower *wire.ReplicaReplCounters `json:"follower,omitempty"`
}

// ReplLagRecords is the end-of-run replication lag in WAL records, or 0
// for non-replication runs.
func (r *RunRecord) ReplLagRecords() uint64 {
	if r.Follower == nil || r.Follower.PrimaryLSN < r.Follower.AppliedLSN {
		return 0
	}
	return r.Follower.PrimaryLSN - r.Follower.AppliedLSN
}

// CellResult is one cell's complete set of repeats.
type CellResult struct {
	Cell Cell
	Runs []*RunRecord
}

// RunCell executes every repeat of one cell: each repeat gets a fresh
// in-process server (fresh store, fresh WAL directory, fresh follower
// when the cell replicates), a preload, a warmup drive, and the measured
// run — so repeats are independent samples of the same configuration.
// logf receives progress lines; nil discards them.
func RunCell(cell Cell, logf func(format string, args ...any)) (*CellResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &CellResult{Cell: cell}
	for r := 0; r < cell.Repeats; r++ {
		rec, err := runRepeat(cell, r)
		if err != nil {
			return nil, err
		}
		logf("  repeat %d/%d: %.0f ops/s, p99 %s", r+1, cell.Repeats,
			rec.Report.Throughput, time.Duration(rec.Report.Latency.P99))
		res.Runs = append(res.Runs, rec)
	}
	return res, nil
}

// RunCells executes a set of cells with their repeats interleaved
// round-robin: repeat r of every cell runs before repeat r+1 of any.
// Back-to-back repeats make a cell's mean hostage to whatever multi-
// minute phase the host happens to be in while that one cell runs —
// on a shared box the phase drift dwarfs the effects the grid exists
// to measure; interleaving spreads every phase across every cell so
// cell-vs-cell comparisons stay honest. Results come back in cell
// order, shaped exactly as sequential RunCell calls would produce.
func RunCells(cells []Cell, logf func(format string, args ...any)) ([]*CellResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	results := make([]*CellResult, len(cells))
	maxRepeats := 0
	for i, c := range cells {
		results[i] = &CellResult{Cell: c}
		if c.Repeats > maxRepeats {
			maxRepeats = c.Repeats
		}
	}
	for r := 0; r < maxRepeats; r++ {
		for i, c := range cells {
			if r >= c.Repeats {
				continue
			}
			rec, err := runRepeat(c, r)
			if err != nil {
				return nil, err
			}
			logf("[round %d/%d] %s: %.0f ops/s, p99 %s", r+1, c.Repeats,
				c.Key, rec.Report.Throughput, time.Duration(rec.Report.Latency.P99))
			results[i].Runs = append(results[i].Runs, rec)
		}
	}
	return results, nil
}

// runRepeat runs one measured repeat of one cell, applying the cell's
// GOMAXPROCS override around just that run.
func runRepeat(cell Cell, r int) (*RunRecord, error) {
	if cell.Procs > 0 {
		prev := runtime.GOMAXPROCS(cell.Procs)
		defer runtime.GOMAXPROCS(prev)
	}
	rec, err := runOnce(cell, r)
	if err != nil {
		return nil, fmt.Errorf("cell %s repeat %d: %w", cell.Key, r, err)
	}
	return rec, nil
}

// node is one in-process server: store, listener, serving loop, the
// replication source when the store is durable, and an admin HTTP
// listener on a loopback port for the driver's /metrics scrapes.
type node struct {
	store     vmshortcut.Store
	srv       *server.Server
	source    *repl.Source
	addr      string
	adminLn   net.Listener
	adminAddr string
	done      chan error
	walDir    string
}

func startNode(cell Cell, walDir string) (*node, error) {
	// Every node carries metrics: the grid's reports embed the server-side
	// stage breakdown, and the instrumentation is allocation-free so the
	// measured numbers are the instrumented numbers — same as production.
	metrics := server.NewMetrics(obs.NewRegistry())
	opts := []vmshortcut.Option{
		vmshortcut.WithShards(cell.Shards),
		vmshortcut.WithConcurrency(true),
		vmshortcut.WithSeqlockRetryHist(metrics.Registry().Hist(
			"eh_seqlock_retry_attempts",
			"Retries needed per successful optimistic GET pass.")),
	}
	if cell.ReadCache {
		opts = append(opts, vmshortcut.WithReadCache(true))
	}
	if cell.Fsync != FsyncNone {
		mode, err := vmshortcut.ParseFsyncMode(cell.Fsync)
		if err != nil {
			return nil, err
		}
		opts = append(opts, vmshortcut.WithWAL(walDir), vmshortcut.WithFsync(mode),
			vmshortcut.WithFsyncHist(metrics.Pipeline().Hist(obs.StageWALFsync)))
	}
	kind, err := vmshortcut.ParseKind(cell.Kind)
	if err != nil {
		return nil, err
	}
	store, err := vmshortcut.Open(kind, opts...)
	if err != nil {
		return nil, err
	}
	n := &node{store: store, walDir: walDir, done: make(chan error, 1)}
	scfg := server.Config{Store: store, Metrics: metrics, BatchWindowAdaptive: cell.AdWin}
	if rep, ok := vmshortcut.AsReplicable(store); ok {
		n.source = repl.NewSource(rep, repl.SourceConfig{})
		scfg.Repl = n.source
	}
	srv, err := server.New(scfg)
	if err != nil {
		store.Close()
		return nil, err
	}
	n.srv = srv
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		store.Close()
		return nil, err
	}
	n.addr = ln.Addr().String()
	n.adminLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		store.Close()
		return nil, err
	}
	n.adminAddr = n.adminLn.Addr().String()
	go http.Serve(n.adminLn, srv.AdminHandler())
	go func() { n.done <- srv.Serve(ln) }()
	return n, nil
}

// stop tears the node down: drain, close the replication source, close
// the store, delete the WAL directory. The first error wins but every
// step runs.
func (n *node) stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := n.srv.Shutdown(ctx)
	<-n.done
	if n.adminLn != nil {
		n.adminLn.Close()
	}
	if n.source != nil {
		n.source.Close()
	}
	if cerr := n.store.Close(); err == nil {
		err = cerr
	}
	if n.walDir != "" {
		if rerr := os.RemoveAll(n.walDir); err == nil {
			err = rerr
		}
	}
	return err
}

// runOnce runs one repeat of one cell.
func runOnce(cell Cell, repeat int) (rec *RunRecord, err error) {
	var walDir string
	if cell.Fsync != FsyncNone {
		walDir, err = os.MkdirTemp("", "ehbench-wal-*")
		if err != nil {
			return nil, err
		}
	}
	n, err := startNode(cell, walDir)
	if err != nil {
		if walDir != "" {
			os.RemoveAll(walDir)
		}
		return nil, err
	}
	defer func() {
		if serr := n.stop(); err == nil && serr != nil {
			err = serr
		}
	}()

	// A replication cell attaches an in-process follower replaying the
	// primary's WAL stream into its own store; the measured run then
	// reports the follower's applied position as lag.
	var follower *repl.Follower
	var fstore vmshortcut.Store
	if cell.Repl {
		kind, _ := vmshortcut.ParseKind(cell.Kind)
		fstore, err = vmshortcut.Open(kind, vmshortcut.WithShards(cell.Shards), vmshortcut.WithConcurrency(true))
		if err != nil {
			return nil, fmt.Errorf("follower store: %w", err)
		}
		follower, err = repl.StartFollower(repl.FollowerConfig{Primary: n.addr, Store: fstore})
		if err != nil {
			fstore.Close()
			return nil, fmt.Errorf("follower: %w", err)
		}
		defer func() {
			follower.Close()
			if cerr := fstore.Close(); err == nil {
				err = cerr
			}
		}()
		if err := waitConnected(follower, 5*time.Second); err != nil {
			return nil, err
		}
	}

	cfg, err := cell.driverConfig()
	if err != nil {
		return nil, err
	}
	cfg.Addr = n.addr
	cfg.AdminAddr = n.adminAddr
	report, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	rec = &RunRecord{Cell: cell, Repeat: repeat, Report: report}
	if follower != nil {
		if ferr := follower.Err(); ferr != nil {
			return nil, fmt.Errorf("replication halted during the run: %w", ferr)
		}
		rec.Follower = follower.Counters()
	}
	return rec, nil
}

// waitConnected blocks until the follower's stream is attached, so the
// measured run never overlaps the initial sync handshake.
func waitConnected(f *repl.Follower, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if f.Counters().Connected {
			return nil
		}
		if err := f.Err(); err != nil {
			return fmt.Errorf("follower failed while attaching: %w", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("follower did not attach within %v", timeout)
}

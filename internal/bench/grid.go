package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vmshortcut"
	"vmshortcut/internal/workload"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("250ms", "1s") so experiments.json stays editable by hand.
type Duration time.Duration

// UnmarshalJSON accepts a duration string or a bare number of
// nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("bench: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Axes is one experiment's parameter lists. Scalar fields shape every
// cell; list fields are grid axes and the experiment runs their cross
// product. An empty field defers to the grid's defaults (and, past
// those, to built-in defaults).
type Axes struct {
	Kind     string   `json:"kind,omitempty"`
	Load     int      `json:"load,omitempty"`
	Duration Duration `json:"duration,omitempty"`
	Warmup   Duration `json:"warmup,omitempty"`
	Conns    int      `json:"conns,omitempty"`
	Pipeline int      `json:"pipeline,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`

	Mix  []string `json:"mix,omitempty"`
	Dist []string `json:"dist,omitempty"`
	// Batch axis values: "none", "mixed", or a decimal size for
	// same-kind batch frames.
	Batch []string `json:"batch,omitempty"`
	// Fsync axis values: "none" (memory-only store, no WAL), or the WAL
	// policies "off" | "interval" | "always".
	Fsync      []string `json:"fsync,omitempty"`
	Shards     []int    `json:"shards,omitempty"`
	Gomaxprocs []int    `json:"gomaxprocs,omitempty"` // 0 = leave the runtime default
	// Replication: true runs a primary with an attached in-process
	// follower (requires a WAL, i.e. fsync != "none") and records the
	// follower's applied position and lag.
	Replication []bool `json:"replication,omitempty"`
	// ReadCache: true opens the store with the hot-key read cache
	// (vmshortcut.WithReadCache) in front of the seqlock GET fast path.
	ReadCache []bool `json:"read_cache,omitempty"`
	// AdaptiveWindow: true serves with server.Config.BatchWindowAdaptive,
	// letting each connection retune its coalescing window from wait
	// outcomes (keep windows that data cuts short, collapse ones that
	// expire empty).
	AdaptiveWindow []bool `json:"adaptive_window,omitempty"`
}

// merge overlays exp over base: any field exp sets wins.
func (base Axes) merge(exp Axes) Axes {
	out := base
	if exp.Kind != "" {
		out.Kind = exp.Kind
	}
	if exp.Load != 0 {
		out.Load = exp.Load
	}
	if exp.Duration != 0 {
		out.Duration = exp.Duration
	}
	if exp.Warmup != 0 {
		out.Warmup = exp.Warmup
	}
	if exp.Conns != 0 {
		out.Conns = exp.Conns
	}
	if exp.Pipeline != 0 {
		out.Pipeline = exp.Pipeline
	}
	if exp.Seed != 0 {
		out.Seed = exp.Seed
	}
	if len(exp.Mix) > 0 {
		out.Mix = exp.Mix
	}
	if len(exp.Dist) > 0 {
		out.Dist = exp.Dist
	}
	if len(exp.Batch) > 0 {
		out.Batch = exp.Batch
	}
	if len(exp.Fsync) > 0 {
		out.Fsync = exp.Fsync
	}
	if len(exp.Shards) > 0 {
		out.Shards = exp.Shards
	}
	if len(exp.Gomaxprocs) > 0 {
		out.Gomaxprocs = exp.Gomaxprocs
	}
	if len(exp.Replication) > 0 {
		out.Replication = exp.Replication
	}
	if len(exp.ReadCache) > 0 {
		out.ReadCache = exp.ReadCache
	}
	if len(exp.AdaptiveWindow) > 0 {
		out.AdaptiveWindow = exp.AdaptiveWindow
	}
	return out
}

// fill applies the built-in defaults to whatever the grid left unset.
func (a Axes) fill() Axes {
	if a.Kind == "" {
		a.Kind = "shortcut-eh"
	}
	if a.Load == 0 {
		a.Load = 20_000
	}
	if a.Duration == 0 {
		a.Duration = Duration(time.Second)
	}
	if a.Conns == 0 {
		a.Conns = 4
	}
	if a.Pipeline == 0 {
		a.Pipeline = 32
	}
	if a.Seed == 0 {
		a.Seed = 42
	}
	if len(a.Mix) == 0 {
		a.Mix = []string{"A"}
	}
	if len(a.Dist) == 0 {
		a.Dist = []string{""} // the mix's own distribution
	}
	if len(a.Batch) == 0 {
		a.Batch = []string{BatchNone}
	}
	if len(a.Fsync) == 0 {
		a.Fsync = []string{FsyncNone}
	}
	if len(a.Shards) == 0 {
		a.Shards = []int{1}
	}
	if len(a.Gomaxprocs) == 0 {
		a.Gomaxprocs = []int{0}
	}
	if len(a.Replication) == 0 {
		a.Replication = []bool{false}
	}
	if len(a.ReadCache) == 0 {
		a.ReadCache = []bool{false}
	}
	if len(a.AdaptiveWindow) == 0 {
		a.AdaptiveWindow = []bool{false}
	}
	return a
}

// FsyncNone is the fsync-axis value for a memory-only store (no WAL at
// all); the remaining values are the store's WAL policies.
const FsyncNone = "none"

// Experiment is one named entry of the grid: a label plus its axis
// overrides.
type Experiment struct {
	Name string `json:"name"`
	Axes
}

// Grid is the experiments.json schema.
type Grid struct {
	// Repeats is the number of independent measured runs per cell;
	// summaries report mean/std over them.
	Repeats     int          `json:"repeats"`
	Defaults    Axes         `json:"defaults"`
	Experiments []Experiment `json:"experiments"`
}

// LoadGrid reads and validates an experiments.json.
func LoadGrid(path string) (*Grid, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Grid
	if err := json.Unmarshal(b, &g); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if g.Repeats <= 0 {
		g.Repeats = 3
	}
	if len(g.Experiments) == 0 {
		return nil, fmt.Errorf("bench: %s defines no experiments", path)
	}
	return &g, nil
}

// Cell is one fully resolved grid point: every axis pinned to a value.
type Cell struct {
	Experiment string `json:"experiment"`
	// Key names the cell uniquely across the grid; summaries, CSV rows
	// and the regression gate join on it, so it must be stable across
	// runs of the same grid.
	Key string `json:"key"`

	Kind      string   `json:"kind"`
	Mix       string   `json:"mix"`
	Dist      string   `json:"dist"`
	Batch     string   `json:"batch"`
	Fsync     string   `json:"fsync"`
	Shards    int      `json:"shards"`
	Procs     int      `json:"gomaxprocs"` // 0 = runtime default
	Repl      bool     `json:"replication"`
	ReadCache bool     `json:"read_cache"`
	AdWin     bool     `json:"batch_window_adaptive"`
	Load      int      `json:"load"`
	Conns     int      `json:"conns"`
	Pipeline  int      `json:"pipeline"`
	Duration  Duration `json:"duration"`
	Warmup    Duration `json:"warmup"`
	Seed      uint64   `json:"seed"`
	Repeats   int      `json:"repeats"`
}

// FileStem is the cell's key flattened into a filename-safe stem.
func (c Cell) FileStem() string {
	return strings.NewReplacer("/", "__", " ", "_").Replace(c.Key)
}

// driverConfig resolves the cell into the driver's Config (minus the
// address, which the runner learns when the server binds).
func (c Cell) driverConfig() (Config, error) {
	mix, ok := workload.MixByName(c.Mix)
	if !ok {
		return Config{}, fmt.Errorf("bench: cell %s: unknown mix %q", c.Key, c.Mix)
	}
	switch strings.ToLower(c.Dist) {
	case "":
	case "zipfian", "zipf":
		mix.Zipf = true
	case "uniform":
		mix.Zipf = false
	default:
		return Config{}, fmt.Errorf("bench: cell %s: unknown distribution %q", c.Key, c.Dist)
	}
	cfg := Config{
		Mix: mix, Conns: c.Conns, Pipeline: c.Pipeline,
		Load: c.Load, Duration: time.Duration(c.Duration),
		Warmup: time.Duration(c.Warmup), Seed: c.Seed,
	}
	switch strings.ToLower(c.Batch) {
	case "", "0", BatchNone:
		cfg.BatchMode = BatchNone
	case BatchMixed:
		cfg.BatchMode = BatchMixed
	default:
		n, err := strconv.Atoi(c.Batch)
		if err != nil || n <= 0 {
			return Config{}, fmt.Errorf("bench: cell %s: batch must be none, mixed, or a positive size, got %q", c.Key, c.Batch)
		}
		cfg.BatchMode, cfg.BatchSize = BatchKind, n
	}
	return cfg, cfg.Validate()
}

// validate checks the axes the driver config does not cover.
func (c Cell) validate() error {
	if _, err := vmshortcut.ParseKind(c.Kind); err != nil {
		return fmt.Errorf("bench: cell %s: %w", c.Key, err)
	}
	switch c.Fsync {
	case FsyncNone, "off", "interval", "always":
	default:
		return fmt.Errorf("bench: cell %s: fsync must be none, off, interval, or always, got %q", c.Key, c.Fsync)
	}
	if c.Shards <= 0 {
		return fmt.Errorf("bench: cell %s: shards must be positive", c.Key)
	}
	if c.Procs < 0 {
		return fmt.Errorf("bench: cell %s: gomaxprocs must be non-negative", c.Key)
	}
	if c.Repl && c.Fsync == FsyncNone {
		return fmt.Errorf("bench: cell %s: replication requires a WAL (fsync off|interval|always): the primary ships its log", c.Key)
	}
	if _, err := c.driverConfig(); err != nil {
		return err
	}
	return nil
}

// Cells expands the grid into its cells: for each experiment, the cross
// product of every axis list. Every cell is validated, so a malformed
// grid fails before the first server starts.
func (g *Grid) Cells() ([]Cell, error) {
	var cells []Cell
	seen := map[string]bool{}
	for _, exp := range g.Experiments {
		if exp.Name == "" {
			return nil, fmt.Errorf("bench: every experiment needs a name")
		}
		a := g.Defaults.merge(exp.Axes).fill()
		for _, mix := range a.Mix {
			for _, dist := range a.Dist {
				for _, batch := range a.Batch {
					for _, fsync := range a.Fsync {
						for _, shards := range a.Shards {
							for _, procs := range a.Gomaxprocs {
								for _, repl := range a.Replication {
									for _, rc := range a.ReadCache {
										for _, aw := range a.AdaptiveWindow {
											c := Cell{
												Experiment: exp.Name,
												Kind:       a.Kind, Mix: mix, Dist: dist,
												Batch: batch, Fsync: fsync,
												Shards: shards, Procs: procs, Repl: repl,
												ReadCache: rc, AdWin: aw,
												Load: a.Load, Conns: a.Conns, Pipeline: a.Pipeline,
												Duration: a.Duration, Warmup: a.Warmup,
												Seed: a.Seed, Repeats: g.Repeats,
											}
											c.Key = cellKey(c)
											if seen[c.Key] {
												return nil, fmt.Errorf("bench: duplicate cell %s (axes overlap within or across experiments)", c.Key)
											}
											seen[c.Key] = true
											if err := c.validate(); err != nil {
												return nil, err
											}
											cells = append(cells, c)
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// cellKey builds the stable cell identifier. Only axes appear in it:
// scalar knobs (load, conns, ...) are assumed constant per experiment
// and live in the cell's JSON instead.
func cellKey(c Cell) string {
	dist := c.Dist
	if dist == "" {
		dist = "mixdefault"
	}
	key := fmt.Sprintf("%s/mix%s-%s-batch_%s-fsync_%s-shards%d-procs%d",
		c.Experiment, c.Mix, dist, c.Batch, c.Fsync, c.Shards, c.Procs)
	if c.Repl {
		key += "-repl"
	}
	// The cache/window suffixes appear only when the axis is on, so
	// every cell key from grids that predate these axes is unchanged
	// and the regression gate still joins against old history entries.
	if c.ReadCache {
		key += "-readcache"
	}
	if c.AdWin {
		key += "-adwin"
	}
	return key
}

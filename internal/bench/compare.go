package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Regression is one cell whose throughput fell past the threshold.
type Regression struct {
	Key      string  `json:"key"`
	Old, New float64 `json:"-"`
	// Change is the relative throughput change, negative for a drop
	// (-0.25 = 25% slower).
	Change float64 `json:"change"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: throughput %.0f -> %.0f ops/s (%+.1f%%)",
		r.Key, r.Old, r.New, r.Change*100)
}

// Comparison is the regression gate's verdict over two summaries.
type Comparison struct {
	// Regressions are cells whose mean throughput dropped more than the
	// threshold — the gate fails on any.
	Regressions []Regression
	// Notes are non-fatal observations: p99 inflations past the
	// threshold, cells present on only one side.
	Notes []string
	// Matched counts cells compared on both sides.
	Matched int
}

// Failed reports whether the gate should exit non-zero.
func (c *Comparison) Failed() bool { return len(c.Regressions) > 0 }

func (c *Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compared %d cell(s): %d regression(s)\n", c.Matched, len(c.Regressions))
	for _, r := range c.Regressions {
		fmt.Fprintf(&b, "  REGRESSION %s\n", r)
	}
	for _, n := range c.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Compare checks cur against base cell by cell (joined on the cell
// key): a mean-throughput drop beyond threshold (e.g. 0.15 = 15%) is a
// regression; a p99 inflation beyond it is a note. Cells on one side
// only are noted, never fatal — grids are allowed to grow and shrink.
func Compare(base, cur *Summary, threshold float64) (*Comparison, error) {
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("bench: threshold must be in (0, 1), got %g", threshold)
	}
	oldByKey := map[string]CellSummary{}
	for _, c := range base.Cells {
		oldByKey[c.Key] = c
	}
	cmp := &Comparison{}
	for _, nc := range cur.Cells {
		oc, ok := oldByKey[nc.Key]
		if !ok {
			cmp.Notes = append(cmp.Notes, fmt.Sprintf("%s: new cell, no baseline", nc.Key))
			continue
		}
		delete(oldByKey, nc.Key)
		cmp.Matched++
		if oc.Throughput.Mean <= 0 {
			cmp.Notes = append(cmp.Notes, fmt.Sprintf("%s: baseline throughput is zero, skipped", nc.Key))
			continue
		}
		change := nc.Throughput.Mean/oc.Throughput.Mean - 1
		if change < -threshold {
			cmp.Regressions = append(cmp.Regressions, Regression{
				Key: nc.Key, Old: oc.Throughput.Mean, New: nc.Throughput.Mean, Change: change,
			})
		}
		if oc.P99.Mean > 0 && nc.P99.Mean/oc.P99.Mean-1 > threshold {
			cmp.Notes = append(cmp.Notes, fmt.Sprintf("%s: p99 %.0fns -> %.0fns (%+.1f%%)",
				nc.Key, oc.P99.Mean, nc.P99.Mean, (nc.P99.Mean/oc.P99.Mean-1)*100))
		}
	}
	for key := range oldByKey {
		cmp.Notes = append(cmp.Notes, fmt.Sprintf("%s: baseline cell missing from the new run", key))
	}
	if cmp.Matched == 0 {
		return nil, fmt.Errorf("bench: no cell key appears in both summaries — nothing to compare")
	}
	return cmp, nil
}

// LoadComparable reads a summary for the regression gate from either a
// summary.json (one object with "cells") or a BENCH_history.json (an
// array of entries — the newest is used).
func LoadComparable(path string) (*Summary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimLeftFunc(string(b), func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	if strings.HasPrefix(trimmed, "[") {
		var hist []HistoryEntry
		if err := json.Unmarshal(b, &hist); err != nil {
			return nil, fmt.Errorf("bench: parsing history %s: %w", path, err)
		}
		if len(hist) == 0 {
			return nil, fmt.Errorf("bench: %s is an empty trajectory", path)
		}
		e := hist[len(hist)-1]
		return &Summary{Stamp: e.Stamp, Go: e.Go, NumCPU: e.NumCPU, Cells: e.Cells}, nil
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("bench: parsing summary %s: %w", path, err)
	}
	if len(s.Cells) == 0 {
		return nil, fmt.Errorf("bench: %s summarizes no cells", path)
	}
	return &s, nil
}

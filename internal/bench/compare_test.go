package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func summaryWith(cells ...CellSummary) *Summary {
	return &Summary{Stamp: "test", Go: "go-test", NumCPU: 1, Cells: cells}
}

func cell(key string, tput, p99 float64) CellSummary {
	return CellSummary{
		Key:        key,
		Throughput: Stat{Mean: tput, Min: tput, Max: tput},
		P99:        Stat{Mean: p99, Min: p99, Max: p99},
	}
}

// TestCompareSelfPasses is the acceptance gate's identity property: a
// summary compared against itself reports zero regressions.
func TestCompareSelfPasses(t *testing.T) {
	s := summaryWith(cell("a", 1000, 500), cell("b", 2000, 900))
	cmp, err := Compare(s, s, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatalf("self-compare failed: %s", cmp)
	}
	if cmp.Matched != 2 || len(cmp.Notes) != 0 {
		t.Fatalf("self-compare: matched %d, notes %v", cmp.Matched, cmp.Notes)
	}
}

// TestCompareCatchesSyntheticRegression: a cell past the threshold fails
// the gate; one inside the threshold does not.
func TestCompareCatchesSyntheticRegression(t *testing.T) {
	base := summaryWith(cell("fast", 1000, 500), cell("steady", 1000, 500))
	cur := summaryWith(cell("fast", 800, 500), cell("steady", 950, 500)) // -20%, -5%
	cmp, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatalf("20%% drop passed a 15%% gate: %s", cmp)
	}
	if len(cmp.Regressions) != 1 || cmp.Regressions[0].Key != "fast" {
		t.Fatalf("regressions = %v, want exactly [fast]", cmp.Regressions)
	}
	if got := cmp.Regressions[0].Change; got > -0.19 || got < -0.21 {
		t.Fatalf("change = %v, want ~ -0.20", got)
	}

	// The same drop passes a looser gate.
	cmp, err = Compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatalf("20%% drop failed a 25%% gate: %s", cmp)
	}
}

// TestCompareImprovementAndNotes: speedups never fail; p99 inflation and
// asymmetric cell sets surface as notes only.
func TestCompareImprovementAndNotes(t *testing.T) {
	base := summaryWith(cell("a", 1000, 500), cell("gone", 10, 10))
	cur := summaryWith(cell("a", 2000, 1000), cell("fresh", 10, 10)) // 2× faster, 2× p99
	cmp, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatalf("an improvement failed the gate: %s", cmp)
	}
	joined := strings.Join(cmp.Notes, "\n")
	for _, want := range []string{"p99", "fresh", "gone"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes %q missing %q", joined, want)
		}
	}
}

func TestCompareRejectsDisjointSummaries(t *testing.T) {
	if _, err := Compare(summaryWith(cell("a", 1, 1)), summaryWith(cell("b", 1, 1)), 0.15); err == nil {
		t.Fatal("disjoint summaries compared without error")
	}
	if _, err := Compare(summaryWith(cell("a", 1, 1)), summaryWith(cell("a", 1, 1)), 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

// TestLoadComparable reads both accepted baseline shapes: a summary.json
// object and a BENCH_history.json trajectory (newest entry wins).
func TestLoadComparable(t *testing.T) {
	dir := t.TempDir()
	sum := summaryWith(cell("a", 1000, 500))

	sumPath := filepath.Join(dir, "summary.json")
	if err := writeJSON(sumPath, sum); err != nil {
		t.Fatal(err)
	}
	got, err := LoadComparable(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 1 || got.Cells[0].Key != "a" {
		t.Fatalf("summary load: %+v", got)
	}

	histPath := filepath.Join(dir, "BENCH_history.json")
	old := summaryWith(cell("a", 1, 1))
	if err := AppendHistory(histPath, old.Entry("old")); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(histPath, sum.Entry("new")); err != nil {
		t.Fatal(err)
	}
	got, err = LoadComparable(histPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cells[0].Throughput.Mean != 1000 {
		t.Fatalf("history load did not pick the newest entry: %+v", got.Cells[0])
	}

	// A history self-compare must pass — this is what CI's advisory run
	// does against the committed trajectory.
	cmp, err := Compare(got, sum, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatalf("history-vs-summary self compare failed: %s", cmp)
	}

	if _, err := LoadComparable(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline loaded without error")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte("[]\n"), 0o644)
	if _, err := LoadComparable(empty); err == nil {
		t.Fatal("empty trajectory loaded without error")
	}
}

func TestStatOf(t *testing.T) {
	s := statOf([]float64{2, 4, 6})
	if s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("statOf: %+v", s)
	}
	// Population std of {2,4,6} is sqrt(8/3) ≈ 1.633.
	if s.Std < 1.63 || s.Std > 1.64 {
		t.Fatalf("std = %v, want ~1.633", s.Std)
	}
	if z := statOf(nil); z != (Stat{}) {
		t.Fatalf("statOf(nil) = %+v, want zero", z)
	}
}

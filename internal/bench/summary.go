package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// Stat is one metric aggregated over a cell's repeats.
type Stat struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// statOf computes a Stat over samples; std is the population standard
// deviation (repeats are the whole population we measured, not a sample
// of a larger run set).
func statOf(samples []float64) Stat {
	if len(samples) == 0 {
		return Stat{}
	}
	s := Stat{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range samples {
		s.Mean += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Mean /= float64(len(samples))
	var ss float64
	for _, v := range samples {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(samples)))
	return s
}

// CellSummary is one cell's grouped result: mean/std/min/max per metric
// over its repeats. It is the unit the markdown table, the history
// trajectory, and the regression gate all consume.
type CellSummary struct {
	Key        string `json:"key"`
	Experiment string `json:"experiment"`
	Mix        string `json:"mix"`
	Dist       string `json:"dist"`
	Batch      string `json:"batch"`
	Fsync      string `json:"fsync"`
	Shards     int    `json:"shards"`
	Procs      int    `json:"gomaxprocs"`
	Repl       bool   `json:"replication"`
	ReadCache  bool   `json:"read_cache,omitempty"`
	AdWin      bool   `json:"batch_window_adaptive,omitempty"`
	Repeats    int    `json:"repeats"`
	Ops        uint64 `json:"total_ops"`
	Errors     uint64 `json:"total_errors"`

	Throughput Stat `json:"throughput_ops_per_sec"`
	P50        Stat `json:"p50_ns"`
	P95        Stat `json:"p95_ns"`
	P99        Stat `json:"p99_ns"`
	WALRecords Stat `json:"wal_records"`
	// ReplLag is the end-of-run follower lag in WAL records, present for
	// replication cells.
	ReplLag *Stat `json:"repl_lag_records,omitempty"`
	// CacheHitRate is the measured-window hot-key cache hit rate, present
	// for read-cache cells whose runs scraped a server delta.
	CacheHitRate *Stat `json:"cache_hit_rate,omitempty"`
}

// Summary is the grouped summary.json artifact: environment, then one
// entry per cell.
type Summary struct {
	Stamp      string        `json:"stamp"`
	Go         string        `json:"go"`
	NumCPU     int           `json:"num_cpu"`
	Gomaxprocs int           `json:"gomaxprocs"`
	Cells      []CellSummary `json:"cells"`
}

// Summarize groups per-run records into per-cell statistics. Results are
// ordered by cell key for stable diffs.
func Summarize(stamp string, results []*CellResult) *Summary {
	s := &Summary{
		Stamp:      stamp,
		Go:         runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
	}
	for _, cr := range results {
		c := cr.Cell
		cs := CellSummary{
			Key: c.Key, Experiment: c.Experiment, Mix: c.Mix, Dist: c.Dist,
			Batch: c.Batch, Fsync: c.Fsync, Shards: c.Shards, Procs: c.Procs,
			Repl: c.Repl, ReadCache: c.ReadCache, AdWin: c.AdWin,
			Repeats: len(cr.Runs),
		}
		var tput, p50, p95, p99, walRecs, lag, hitRate []float64
		for _, run := range cr.Runs {
			r := run.Report
			cs.Ops += r.Ops
			cs.Errors += r.Errors
			tput = append(tput, r.Throughput)
			p50 = append(p50, float64(r.Latency.P50))
			p95 = append(p95, float64(r.Latency.P95))
			p99 = append(p99, float64(r.Latency.P99))
			walRecs = append(walRecs, float64(r.Durability.WALRecords))
			if run.Follower != nil {
				lag = append(lag, float64(run.ReplLagRecords()))
			}
			if c.ReadCache && r.ServerDelta != nil {
				hitRate = append(hitRate, r.ServerDelta.CacheHitRate)
			}
		}
		cs.Throughput = statOf(tput)
		cs.P50, cs.P95, cs.P99 = statOf(p50), statOf(p95), statOf(p99)
		cs.WALRecords = statOf(walRecs)
		if len(lag) > 0 {
			l := statOf(lag)
			cs.ReplLag = &l
		}
		if len(hitRate) > 0 {
			h := statOf(hitRate)
			cs.CacheHitRate = &h
		}
		s.Cells = append(s.Cells, cs)
	}
	sort.Slice(s.Cells, func(i, j int) bool { return s.Cells[i].Key < s.Cells[j].Key })
	return s
}

// csvHeader is the runs.csv column set, one row per measured run.
var csvHeader = []string{
	"key", "experiment", "repeat", "mix", "dist", "batch", "fsync",
	"shards", "gomaxprocs", "replication", "ops", "errors",
	"duration_seconds", "throughput_ops_per_sec",
	"p50_ns", "p95_ns", "p99_ns", "max_ns",
	"wal_records", "wal_syncs", "coalesced_batches",
	"repl_applied_lsn", "repl_lag_records",
}

// WriteRunsCSV writes one row per run: the per-run CSV artifact.
func WriteRunsCSV(w io.Writer, results []*CellResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, cr := range results {
		for _, run := range cr.Runs {
			c, r := run.Cell, run.Report
			var appliedLSN, lag uint64
			if run.Follower != nil {
				appliedLSN, lag = run.Follower.AppliedLSN, run.ReplLagRecords()
			}
			row := []string{
				c.Key, c.Experiment, strconv.Itoa(run.Repeat),
				c.Mix, r.Dist, c.Batch, c.Fsync,
				strconv.Itoa(c.Shards), strconv.Itoa(c.Procs), strconv.FormatBool(c.Repl),
				strconv.FormatUint(r.Ops, 10), strconv.FormatUint(r.Errors, 10),
				strconv.FormatFloat(r.DurationS, 'f', 6, 64),
				strconv.FormatFloat(r.Throughput, 'f', 1, 64),
				strconv.FormatUint(r.Latency.P50, 10),
				strconv.FormatUint(r.Latency.P95, 10),
				strconv.FormatUint(r.Latency.P99, 10),
				strconv.FormatUint(r.Latency.Max, 10),
				strconv.FormatUint(r.Durability.WALRecords, 10),
				strconv.FormatUint(r.Durability.WALSyncs, 10),
				strconv.FormatUint(r.Server.CoalescedBatches, 10),
				strconv.FormatUint(appliedLSN, 10),
				strconv.FormatUint(lag, 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders the paper-ready per-cell table.
func (s *Summary) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "## Benchmark grid — %s\n\n", s.Stamp)
	fmt.Fprintf(w, "%s, %d CPU(s), GOMAXPROCS %d. Latency is per pipelined round trip; mean ± std over repeats.\n\n",
		s.Go, s.NumCPU, s.Gomaxprocs)
	fmt.Fprintln(w, "| cell | mix | batch | fsync | shards | procs | repl | kops/s (±std) | p50 | p95 | p99 | WAL recs | lag |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|---|---|---|---|")
	for _, c := range s.Cells {
		repl, lag := "", ""
		if c.Repl {
			repl = "on"
			if c.ReplLag != nil {
				lag = fmt.Sprintf("%.0f", c.ReplLag.Mean)
			}
		}
		wal := ""
		if c.WALRecords.Mean > 0 {
			wal = fmt.Sprintf("%.0f", c.WALRecords.Mean)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %d | %d | %s | %.1f ± %.1f | %s | %s | %s | %s | %s |\n",
			c.Experiment, c.Mix, c.Batch, c.Fsync, c.Shards, c.Procs, repl,
			c.Throughput.Mean/1000, c.Throughput.Std/1000,
			durMS(c.P50.Mean), durMS(c.P95.Mean), durMS(c.P99.Mean), wal, lag)
	}
}

// durMS renders nanoseconds as a compact human duration.
func durMS(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// HistoryEntry is one appended point of the BENCH_history.json
// trajectory: a stamp, the environment, and the full per-cell summary.
type HistoryEntry struct {
	Stamp  string `json:"stamp"`
	Label  string `json:"label,omitempty"`
	Go     string `json:"go"`
	NumCPU int    `json:"num_cpu"`
	// Cells carries every summarized metric — throughput, p50/p95/p99,
	// WAL records, replication lag — so the trajectory is diffable
	// without digging out the run directory.
	Cells []CellSummary `json:"cells"`
}

// Entry converts a summary into its history point.
func (s *Summary) Entry(label string) HistoryEntry {
	return HistoryEntry{
		Stamp: s.Stamp, Label: label, Go: s.Go, NumCPU: s.NumCPU, Cells: s.Cells,
	}
}

// ReadHistory loads a BENCH_history.json trajectory; a missing file is
// an empty trajectory.
func ReadHistory(path string) ([]HistoryEntry, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var hist []HistoryEntry
	if err := json.Unmarshal(b, &hist); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return hist, nil
}

// AppendHistory appends one entry to the trajectory file, creating it if
// needed. The file is always a JSON array — the perf trajectory other
// PRs diff against.
func AppendHistory(path string, e HistoryEntry) error {
	hist, err := ReadHistory(path)
	if err != nil {
		return err
	}
	hist = append(hist, e)
	b, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

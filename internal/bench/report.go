package bench

import (
	"fmt"
	"io"
	"time"

	"vmshortcut"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/wire"
)

// Report is the BENCH_server.json schema: one measured run. The field
// set is pinned by TestReportSchemaRoundTrip — fields may be added, but
// never silently renamed or dropped. (The deprecated "batch" int that
// PR 5 kept one release is gone; the kind-mode batch size now reports as
// "batch_size", absent in the other modes.)
type Report struct {
	Bench    string `json:"bench"`
	Addr     string `json:"addr"`
	Mix      string `json:"mix"`
	Dist     string `json:"dist"`
	Conns    int    `json:"conns"`
	Pipeline int    `json:"pipeline"`
	// BatchMode is how ops became frames: none | kind | mixed. BatchSize
	// is the kind-mode batch cap and is omitted in the other modes.
	BatchMode string `json:"batch_mode"`
	BatchSize int    `json:"batch_size,omitempty"`
	Loaded    int    `json:"loaded"`
	Seed      uint64 `json:"seed"`
	// Sample is the trace-sampling probability the workers ran with
	// (omitted when sampling was off).
	Sample float64 `json:"sample,omitempty"`
	// ReadCache / AdaptiveWindow record the server-side read-path knobs
	// the run was measured against (hot-key read cache, adaptive
	// coalescing window); both omitted when off.
	ReadCache      bool    `json:"read_cache,omitempty"`
	AdaptiveWindow bool    `json:"batch_window_adaptive,omitempty"`
	WarmupS        float64 `json:"warmup_seconds,omitempty"`
	DurationS      float64 `json:"duration_seconds"`
	Ops            uint64  `json:"ops"`
	Errors         uint64  `json:"errors"`
	Throughput     float64 `json:"throughput_ops_per_sec"`
	LoadS          float64 `json:"load_seconds"`
	LoadRate       float64 `json:"load_ops_per_sec"`

	// Latency of one pipelined round trip (Pipeline ops per sample),
	// nanoseconds.
	Latency LatencyNS `json:"latency_ns"`

	// OpCounts is operations by YCSB kind (an RMW counts once here but
	// is two wire ops).
	OpCounts map[string]uint64 `json:"op_counts"`

	Server wire.ServerCounters `json:"server"`
	Store  vmshortcut.Stats    `json:"store"`
	// Durability is the server store's WAL state (zero without -wal-dir).
	Durability wire.DurabilityCounters `json:"durability"`
	// Replication is the server's replication section, present when the
	// served store replicates in either direction.
	Replication *wire.ReplicationStats `json:"replication,omitempty"`
	// ServerDelta is the server-side view of exactly the measured window
	// (counters and per-stage latency percentiles from /metrics scrapes
	// bracketing the drive), present when Config.AdminAddr was set.
	ServerDelta *ServerDelta `json:"server_delta,omitempty"`
}

// LatencyNS is the report's latency block, nanoseconds.
type LatencyNS struct {
	Samples uint64  `json:"samples"`
	Mean    float64 `json:"mean"`
	Min     uint64  `json:"min"`
	P50     uint64  `json:"p50"`
	P95     uint64  `json:"p95"`
	P99     uint64  `json:"p99"`
	Max     uint64  `json:"max"`
}

// BatchLabel renders the batch configuration compactly: none, mixed, or
// kind(N).
func (r *Report) BatchLabel() string {
	if r.BatchMode == BatchKind {
		return fmt.Sprintf("%s(%d)", BatchKind, r.BatchSize)
	}
	return r.BatchMode
}

// WriteSummary prints the human-readable run summary ehload has always
// emitted.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "mix %s (%s)  conns=%d pipeline=%d batch=%s  loaded=%d\n",
		r.Mix, r.Dist, r.Conns, r.Pipeline, r.BatchLabel(), r.Loaded)
	fmt.Fprintf(w, "load: %d entries in %.2fs (%.0f ops/s)\n", r.Loaded, r.LoadS, r.LoadRate)
	fmt.Fprintf(w, "run:  %d ops in %.2fs = %.0f ops/s, %d errors\n",
		r.Ops, r.DurationS, r.Throughput, r.Errors)
	fmt.Fprintf(w, "latency per round trip (%d ops deep): p50 %s  p95 %s  p99 %s  max %s\n",
		r.Pipeline,
		time.Duration(r.Latency.P50), time.Duration(r.Latency.P95),
		time.Duration(r.Latency.P99), time.Duration(r.Latency.Max))
	fmt.Fprintf(w, "server: %d coalesced batches carrying %d ops; store batches I/L/D %d/%d/%d\n",
		r.Server.CoalescedBatches, r.Server.CoalescedOps,
		r.Store.InsertBatches, r.Store.LookupBatches, r.Store.DeleteBatches)
	if d := r.Durability; d.WALRecords > 0 {
		fmt.Fprintf(w, "durability: %d WAL records, %d fsyncs, durable LSN %d, snapshot LSN %d\n",
			d.WALRecords, d.WALSyncs, d.DurableLSN, d.SnapshotLSN)
	}
	if sd := r.ServerDelta; sd != nil {
		fmt.Fprintf(w, "server window: %d ops, %d frames, %d coalesced batches, %d rejects, %d slow\n",
			sd.Ops, sd.Frames, sd.CoalescedBatches, sd.Rejects, sd.SlowOps)
		if sd.FastpathCache+sd.FastpathSeqlock+sd.FastpathLocked > 0 {
			fmt.Fprintf(w, "read fastpath: cache %d (%.1f%% hit) / seqlock %d / locked %d\n",
				sd.FastpathCache, 100*sd.CacheHitRate, sd.FastpathSeqlock, sd.FastpathLocked)
		}
		fmt.Fprintf(w, "server stage p99:")
		for s := obs.Stage(0); s < obs.NumStages; s++ {
			if sw, ok := sd.Stages[s.String()]; ok {
				fmt.Fprintf(w, "  %s %s", s, time.Duration(sw.P99NS))
			}
		}
		fmt.Fprintln(w)
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Artifact names inside a bench_runs/<stamp>/ directory.
const (
	RunsDirName     = "runs"             // per-run RunRecord JSONs
	RunsCSVName     = "runs.csv"         // one CSV row per run
	SummaryName     = "summary.json"     // grouped mean/std per cell
	GridCopyName    = "experiments.json" // the grid actually executed, post-overrides
	AnalysisName    = "analysis.md"      // paper-ready markdown table
	DefaultRunsRoot = "bench_runs"
)

// WriteRunDir persists a completed grid execution: the resolved grid,
// every per-run record, the per-run CSV, and the grouped summary.
func WriteRunDir(dir string, g *Grid, results []*CellResult, sum *Summary) error {
	if err := os.MkdirAll(filepath.Join(dir, RunsDirName), 0o755); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, GridCopyName), g); err != nil {
		return err
	}
	for _, cr := range results {
		for _, run := range cr.Runs {
			name := fmt.Sprintf("%s-run%d.json", cr.Cell.FileStem(), run.Repeat)
			if err := writeJSON(filepath.Join(dir, RunsDirName, name), run); err != nil {
				return err
			}
		}
	}
	f, err := os.Create(filepath.Join(dir, RunsCSVName))
	if err != nil {
		return err
	}
	if err := WriteRunsCSV(f, results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, SummaryName), sum)
}

// ReadRunDir loads the per-run records back out of a run directory,
// regrouped by cell — the analyzer's input. The grouping key is the cell
// key, so records survive being moved or pruned.
func ReadRunDir(dir string) ([]*CellResult, error) {
	paths, err := filepath.Glob(filepath.Join(dir, RunsDirName, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("bench: no run records under %s/%s", dir, RunsDirName)
	}
	sort.Strings(paths)
	byKey := map[string]*CellResult{}
	var order []string
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var run RunRecord
		if err := json.Unmarshal(b, &run); err != nil {
			return nil, fmt.Errorf("bench: parsing %s: %w", p, err)
		}
		if run.Report == nil {
			return nil, fmt.Errorf("bench: %s carries no report", p)
		}
		cr, ok := byKey[run.Cell.Key]
		if !ok {
			cr = &CellResult{Cell: run.Cell}
			byKey[run.Cell.Key] = cr
			order = append(order, run.Cell.Key)
		}
		cr.Runs = append(cr.Runs, &run)
	}
	results := make([]*CellResult, 0, len(order))
	for _, key := range order {
		results = append(results, byKey[key])
	}
	return results, nil
}

// Analyze rebuilds the grouped summary from a run directory's per-run
// records, rewrites summary.json, and writes the markdown table. It
// returns the summary so the caller can append it to the history
// trajectory.
func Analyze(dir string) (*Summary, error) {
	results, err := ReadRunDir(dir)
	if err != nil {
		return nil, err
	}
	sum := Summarize(filepath.Base(dir), results)
	if err := writeJSON(filepath.Join(dir, SummaryName), sum); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, AnalysisName))
	if err != nil {
		return nil, err
	}
	sum.WriteMarkdown(f)
	if err := f.Close(); err != nil {
		return nil, err
	}
	return sum, nil
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

package bench

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"vmshortcut"
	"vmshortcut/internal/wire"
)

// fullReport returns a Report with every field populated, so marshaling
// exercises the whole schema (omitempty fields included).
func fullReport() *Report {
	return &Report{
		Bench: "server", Addr: "127.0.0.1:1", Mix: "A", Dist: "zipfian",
		Conns: 4, Pipeline: 32, BatchMode: BatchKind, BatchSize: 32,
		Loaded: 1000, Seed: 42, WarmupS: 0.25, DurationS: 1.5,
		ReadCache: true, AdaptiveWindow: true,
		Ops: 123456, Errors: 0, Throughput: 82304.0,
		LoadS: 0.1, LoadRate: 10000,
		Latency:  LatencyNS{Samples: 100, Mean: 1000.5, Min: 10, P50: 900, P95: 2000, P99: 3000, Max: 9999},
		OpCounts: map[string]uint64{"read": 60000, "update": 63456},
		Server:   wire.ServerCounters{Ops: 123456, Frames: 2, CoalescedBatches: 3},
		Store:    vmshortcut.Stats{Entries: 1000},
		Durability: wire.DurabilityCounters{
			WALRecords: 7, WALSyncs: 3, DurableLSN: 7, SnapshotLSN: 1,
		},
		Replication: &wire.ReplicationStats{
			Primary: &wire.PrimaryReplCounters{Followers: 1, LastLSN: 7, MinAckedLSN: 7},
		},
	}
}

// reportKeys is the pinned top-level key set of the BENCH_server.json
// schema. Adding a field means adding it here — deliberately; a field
// vanishing (or the deprecated "batch" int resurfacing) fails the test.
var reportKeys = []string{
	"addr", "batch_mode", "batch_size", "batch_window_adaptive", "bench",
	"conns", "dist", "durability", "duration_seconds", "errors",
	"latency_ns", "load_ops_per_sec", "load_seconds", "loaded", "mix",
	"op_counts", "ops", "pipeline", "read_cache", "replication", "seed",
	"server", "store", "throughput_ops_per_sec", "warmup_seconds",
}

var latencyKeys = []string{"max", "mean", "min", "p50", "p95", "p99", "samples"}

func TestReportSchemaRoundTrip(t *testing.T) {
	blob, err := json.Marshal(fullReport())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["batch"]; ok {
		t.Fatalf(`the deprecated "batch" int is back in the schema; it was removed after its one-release grace period`)
	}
	var got []string
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, reportKeys) {
		t.Fatalf("report schema drifted:\n got  %v\n want %v\n(update reportKeys deliberately when adding fields)", got, reportKeys)
	}
	var lat map[string]json.RawMessage
	if err := json.Unmarshal(m["latency_ns"], &lat); err != nil {
		t.Fatal(err)
	}
	var gotLat []string
	for k := range lat {
		gotLat = append(gotLat, k)
	}
	sort.Strings(gotLat)
	if !reflect.DeepEqual(gotLat, latencyKeys) {
		t.Fatalf("latency_ns schema drifted:\n got  %v\n want %v", gotLat, latencyKeys)
	}

	// Round trip: unmarshal into a fresh Report and re-marshal — no field
	// may be silently dropped or renamed on either direction.
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("report did not survive a JSON round trip:\n first  %s\n second %s", blob, blob2)
	}
}

// TestReportOmitsEmptyOptionals pins the omitempty contract: a plain
// memory-only, non-warmup, non-kind-batch run reports no batch_size, no
// warmup_seconds, and no replication section.
func TestReportOmitsEmptyOptionals(t *testing.T) {
	r := fullReport()
	r.BatchMode, r.BatchSize, r.WarmupS, r.Replication = BatchNone, 0, 0, nil
	r.ReadCache, r.AdaptiveWindow = false, false
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"batch", "batch_size", "warmup_seconds", "replication", "read_cache", "batch_window_adaptive"} {
		if _, ok := m[k]; ok {
			t.Errorf("key %q present in a run that has nothing to report under it", k)
		}
	}
}

package bench

import (
	"fmt"
	"net/http"
	"time"

	"vmshortcut/internal/obs"
)

// ServerDelta is the server-side view of the measured window, computed by
// scraping the admin /metrics endpoint immediately before and after the
// measured drive and differencing. Counters are exact window deltas;
// stage percentiles are windowed (before-buckets subtracted from
// after-buckets), so a long preload or warmup cannot pollute them.
type ServerDelta struct {
	Ops              uint64 `json:"ops"`
	Frames           uint64 `json:"frames"`
	CoalescedBatches uint64 `json:"coalesced_batches"`
	CoalescedOps     uint64 `json:"coalesced_ops"`
	Errors           uint64 `json:"errors"`
	Rejects          uint64 `json:"rejects"`
	SlowOps          uint64 `json:"slow_ops"`

	// Read fast-path deltas: GET entries served by each level during the
	// window, plus the cache probe misses and the resulting window hit
	// rate (0 when the store has no cache or took no probes).
	FastpathCache   uint64  `json:"fastpath_cache"`
	FastpathSeqlock uint64  `json:"fastpath_seqlock"`
	FastpathLocked  uint64  `json:"fastpath_locked"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`

	// Stages holds the windowed per-stage histograms, keyed by stage name
	// (frame_decode, shard_apply, ... — see obs.Stage). Only stages that
	// recorded during the window appear.
	Stages map[string]StageWindow `json:"stages,omitempty"`
}

// StageWindow is one pipeline stage's windowed latency summary,
// nanoseconds.
type StageWindow struct {
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  uint64  `json:"p50_ns"`
	P99NS  uint64  `json:"p99_ns"`
}

// scrapeMetrics fetches and parses one /metrics exposition from the
// admin address.
func scrapeMetrics(adminAddr string) (*obs.Scrape, error) {
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", adminAddr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: HTTP %d", adminAddr, resp.StatusCode)
	}
	s, err := obs.ParseMetrics(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", adminAddr, err)
	}
	return s, nil
}

// newServerDelta differences two scrapes into the report's server-side
// window block.
func newServerDelta(before, after *obs.Scrape) *ServerDelta {
	delta := func(name string) uint64 {
		return uint64(obs.ValueDelta(after, before, name))
	}
	d := &ServerDelta{
		Ops:              delta("eh_ops_total"),
		Frames:           delta("eh_frames_read_total"),
		CoalescedBatches: delta("eh_coalesced_batches_total"),
		CoalescedOps:     delta("eh_coalesced_ops_total"),
		Errors:           delta("eh_errors_total"),
		Rejects: delta(`eh_rejects_total{reason="read_only"}`) +
			delta(`eh_rejects_total{reason="stale"}`),
		SlowOps:         delta("eh_slow_ops_total"),
		FastpathCache:   delta(`eh_read_fastpath_total{level="cache"}`),
		FastpathSeqlock: delta(`eh_read_fastpath_total{level="seqlock"}`),
		FastpathLocked:  delta(`eh_read_fastpath_total{level="locked"}`),
		CacheMisses:     delta("eh_read_cache_misses_total"),
		Stages:          make(map[string]StageWindow),
	}
	if probes := d.FastpathCache + d.CacheMisses; probes > 0 {
		d.CacheHitRate = float64(d.FastpathCache) / float64(probes)
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		ah, ok := after.Hists[s.MetricName()]
		if !ok {
			continue
		}
		w := ah.Delta(before.Hists[s.MetricName()])
		if w.Count == 0 {
			continue
		}
		d.Stages[s.String()] = StageWindow{
			Count:  w.Count,
			MeanNS: w.Mean(),
			P50NS:  w.Percentile(50),
			P99NS:  w.Percentile(99),
		}
	}
	return d
}

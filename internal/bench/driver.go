// Package bench is the reusable server-benchmark driver and experiment
// machinery shared by cmd/ehload (one ad-hoc run) and cmd/ehbench (the
// reproducible experiment grid): preload a keyspace over the wire, drive
// a YCSB mix over N pipelined connections with every response verified,
// and report throughput plus an HDR latency histogram in the
// BENCH_server.json schema (Report).
//
// The package also owns the grid side of the story: experiments.json
// parsing and cross-product expansion (grid.go), in-process cell
// execution with warmup and repeats (runner.go), grouped mean/std
// summaries, CSV artifacts and the BENCH_history.json trajectory
// (summary.go), and the regression gate (compare.go).
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut/client"
	"vmshortcut/internal/harness"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/workload"
)

// Batch modes: how each worker turns its generated ops into wire frames.
const (
	BatchNone  = "none"  // pipelined single-op frames (the server coalesces)
	BatchKind  = "kind"  // same-kind runs as native GETBATCH/PUTBATCH frames
	BatchMixed = "mixed" // each round trip as ONE MIXEDBATCH frame
)

// Config shapes one measured run against a serving address.
type Config struct {
	Addr      string
	Mix       workload.Mix
	Conns     int
	Pipeline  int
	BatchSize int    // batch size in BatchKind mode; 0 otherwise
	BatchMode string // BatchNone | BatchKind | BatchMixed
	Load      int    // keyspace entries preloaded before the measured run
	// Warmup drives the workload for this long after the preload and
	// discards the results, so the measured run starts against warmed
	// caches, a settled shortcut directory, and resident WAL segments.
	Warmup   time.Duration
	Duration time.Duration
	Ops      int // fixed op budget per connection instead of Duration (0 = use Duration)
	Seed     uint64
	// AdminAddr is the server's admin HTTP address. When set, the driver
	// scrapes /metrics immediately before and after the measured drive and
	// reports the server-side window delta (counters and per-stage latency
	// percentiles) alongside the client-side numbers.
	AdminAddr string
	// SampleRate is the per-round-trip trace-sampling probability each
	// worker connection runs with (client.Conn.SetSampling). 0 disables
	// sampling; sampled traces land in the server's flight recorder
	// (/tracez on its admin listener).
	SampleRate float64
	// ReadCache and AdaptiveWindow record the server-side configuration
	// this run was measured against (the hot-key read cache and the
	// adaptive coalescing window). The driver cannot set them — they are
	// server knobs — but they flow into the report so runs remain
	// self-describing.
	ReadCache      bool
	AdaptiveWindow bool
}

// DistName is the distribution label runs are reported under.
func (c Config) DistName() string {
	if c.Mix.Zipf {
		return "zipfian"
	}
	return "uniform"
}

// Validate rejects configurations the driver cannot run. The commands
// layer their own flag-specific messages on top; this is the shared
// floor so a malformed experiments.json cell fails before dialing.
func (c Config) Validate() error {
	switch {
	case c.Load <= 0:
		return fmt.Errorf("bench: load must be positive: reads need a non-empty keyspace")
	case c.Conns <= 0 || c.Pipeline <= 0:
		return fmt.Errorf("bench: conns and pipeline must be positive")
	case c.Ops < 0:
		return fmt.Errorf("bench: ops must be non-negative")
	case c.Ops == 0 && c.Duration <= 0:
		return fmt.Errorf("bench: duration must be positive when ops is 0 (the run would never stop)")
	case c.BatchMode != BatchNone && c.BatchMode != BatchKind && c.BatchMode != BatchMixed:
		return fmt.Errorf("bench: unknown batch mode %q", c.BatchMode)
	case c.BatchMode == BatchKind && c.BatchSize <= 0:
		return fmt.Errorf("bench: kind batching needs a positive batch size")
	case c.SampleRate < 0 || c.SampleRate > 1:
		return fmt.Errorf("bench: sample rate must be in [0, 1]")
	}
	return nil
}

// workerResult is one connection's tally.
type workerResult struct {
	ops      uint64
	errors   uint64
	opCounts [4]uint64 // by workload.OpKind
	hist     harness.HDR
}

// Run executes one benchmark: preload, optional warmup, then the
// measured drive, finishing with a server/store stats snapshot.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Preload [0, load) across the connections, through native batch
	// frames — PutBatch is the bulk-load path.
	loadStart := time.Now()
	if err := preload(cfg); err != nil {
		return nil, fmt.Errorf("preload: %w", err)
	}
	loadDur := time.Since(loadStart)

	var warmupDur time.Duration
	if cfg.Warmup > 0 {
		wcfg := cfg
		wcfg.Duration, wcfg.Ops = cfg.Warmup, 0
		warmupStart := time.Now()
		if _, _, err := drive(wcfg); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
		warmupDur = time.Since(warmupStart)
	}

	// Bracket exactly the measured drive with /metrics scrapes: the delta
	// is the server's view of the same window the client-side histogram
	// covers, with the preload and warmup already behind both snapshots.
	var scrapeBefore *obs.Scrape
	if cfg.AdminAddr != "" {
		var err error
		if scrapeBefore, err = scrapeMetrics(cfg.AdminAddr); err != nil {
			return nil, err
		}
	}

	results, elapsed, err := drive(cfg)
	if err != nil {
		return nil, err
	}

	var serverDelta *ServerDelta
	if scrapeBefore != nil {
		scrapeAfter, err := scrapeMetrics(cfg.AdminAddr)
		if err != nil {
			return nil, err
		}
		serverDelta = newServerDelta(scrapeBefore, scrapeAfter)
	}

	rep := &Report{
		Bench: "server", Addr: cfg.Addr, Mix: cfg.Mix.Name, Dist: cfg.DistName(),
		Conns: cfg.Conns, Pipeline: cfg.Pipeline,
		BatchMode: cfg.BatchMode, BatchSize: cfg.BatchSize,
		Loaded: cfg.Load, Seed: cfg.Seed, Sample: cfg.SampleRate,
		ReadCache: cfg.ReadCache, AdaptiveWindow: cfg.AdaptiveWindow,
		WarmupS:   warmupDur.Seconds(),
		DurationS: elapsed.Seconds(),
		LoadS:     loadDur.Seconds(),
		OpCounts:  map[string]uint64{},
	}
	if s := loadDur.Seconds(); s > 0 {
		rep.LoadRate = float64(cfg.Load) / s
	}
	var hist harness.HDR
	for _, r := range results {
		rep.Ops += r.ops
		rep.Errors += r.errors
		hist.Merge(&r.hist)
		for kind, n := range r.opCounts {
			rep.OpCounts[opName(workload.OpKind(kind))] += n
		}
	}
	rep.Throughput = float64(rep.Ops) / elapsed.Seconds()
	rep.Latency = LatencyNS{
		Samples: hist.Count(),
		Mean:    hist.Mean(),
		Min:     hist.Min(),
		P50:     hist.Percentile(50),
		P95:     hist.Percentile(95),
		P99:     hist.Percentile(99),
		Max:     hist.Max(),
	}

	// Final server/store snapshot for the report.
	c, err := client.DialConn(cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return nil, err
	}
	rep.Server = st.Server
	rep.Store = st.Store
	rep.Durability = st.Durability
	rep.Replication = st.Replication
	rep.ServerDelta = serverDelta
	return rep, nil
}

// drive runs cfg.Conns workers until the duration elapses (or each
// worker's op budget runs out) and returns their tallies.
func drive(cfg Config) ([]*workerResult, time.Duration, error) {
	results := make([]*workerResult, cfg.Conns)
	errs := make([]error, cfg.Conns)
	var stop atomic.Bool
	if cfg.Ops == 0 {
		timer := time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
		defer timer.Stop()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = worker(cfg, w, &stop)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, elapsed, err
		}
	}
	return results, elapsed, nil
}

func opName(k workload.OpKind) string {
	switch k {
	case workload.OpRead:
		return "read"
	case workload.OpUpdate:
		return "update"
	case workload.OpInsert:
		return "insert"
	default:
		return "rmw"
	}
}

// preload bulk-loads keys [0, load) over cfg.Conns parallel connections.
func preload(cfg Config) error {
	const chunk = 4096
	errs := make([]error, cfg.Conns)
	harness.ParallelChunks(cfg.Load, cfg.Conns, func(w, lo, hi int) {
		c, err := client.DialConn(cfg.Addr)
		if err != nil {
			errs[w] = err
			return
		}
		defer c.Close()
		keys := make([]uint64, 0, chunk)
		vals := make([]uint64, 0, chunk)
		harness.Chunks(hi-lo, chunk, func(clo, chi int) {
			if errs[w] != nil {
				return
			}
			keys, vals = keys[:0], vals[:0]
			for i := lo + clo; i < lo+chi; i++ {
				keys = append(keys, workload.Key(cfg.Seed, uint64(i)))
				vals = append(vals, uint64(i))
			}
			errs[w] = c.PutBatch(keys, vals)
		})
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// expected tracks what one queued wire op must return for the run to be
// error-free.
type expected struct {
	read bool   // a GET whose value must equal idx
	idx  uint64 // global key index
}

// worker drives one connection until the stop flag (or its op budget) is
// reached. Each worker owns a disjoint insert range: its generator's
// fresh local indexes are strided across workers, so no worker ever reads
// a key another worker is concurrently inserting.
func worker(cfg Config, w int, stop *atomic.Bool) (*workerResult, error) {
	c, err := client.DialConn(cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if cfg.SampleRate > 0 {
		c.SetSampling(cfg.SampleRate)
	}

	res := &workerResult{}
	gen := workload.NewYCSB(cfg.Seed+uint64(w)*0x9E3779B9, cfg.Mix, cfg.Load)
	global := func(local uint64) uint64 {
		if local < uint64(cfg.Load) {
			return local
		}
		return uint64(cfg.Load) + (local-uint64(cfg.Load))*uint64(cfg.Conns) + uint64(w)
	}

	p := c.Pipeline()
	var exp []expected
	var mixed client.MixedBatch
	var batchKeys, batchVals []uint64
	var batchRead bool
	flushBatch := func() {
		if cfg.BatchMode == BatchMixed {
			// The whole round trip is one MIXEDBATCH frame: one decode,
			// one store call, one WAL record server-side.
			p.Mixed(&mixed)
			mixed.Reset()
			return
		}
		if len(batchKeys) == 0 {
			return
		}
		if batchRead {
			p.GetBatch(batchKeys)
		} else {
			p.PutBatch(batchKeys, batchVals)
		}
		batchKeys = batchKeys[:0]
		batchVals = batchVals[:0]
	}
	queue := func(read bool, idx uint64) {
		key := workload.Key(cfg.Seed, idx)
		switch {
		case cfg.BatchMode == BatchMixed:
			if read {
				mixed.Get(key)
			} else {
				mixed.Put(key, idx)
			}
		case cfg.BatchSize > 0:
			if len(batchKeys) > 0 && (batchRead != read || len(batchKeys) >= cfg.BatchSize) {
				flushBatch()
			}
			batchRead = read
			batchKeys = append(batchKeys, key)
			if !read {
				batchVals = append(batchVals, idx)
			}
		case read:
			p.Get(key)
		default:
			p.Put(key, idx)
		}
		exp = append(exp, expected{read: read, idx: idx})
	}

	budget := cfg.Ops
	var results []client.Result
	for !stop.Load() && (cfg.Ops == 0 || budget > 0) {
		exp = exp[:0]
		for i := 0; i < cfg.Pipeline; i++ {
			op := gen.Next()
			res.opCounts[op.Kind]++
			idx := global(op.KeyIndex)
			switch op.Kind {
			case workload.OpRead:
				queue(true, idx)
			case workload.OpUpdate, workload.OpInsert:
				queue(false, idx)
			case workload.OpReadModifyWrite:
				queue(true, idx)
				queue(false, idx)
			}
		}
		flushBatch()

		start := time.Now()
		results, err = p.Flush(results[:0])
		if err != nil {
			return nil, fmt.Errorf("conn %d: %w", w, err)
		}
		res.hist.Record(uint64(time.Since(start).Nanoseconds()))
		res.ops += uint64(len(results))
		budget -= len(results)
		for i, r := range results {
			e := exp[i]
			switch {
			case r.Err != nil:
				res.errors++
			case e.read && (!r.Found || r.Value != e.idx):
				res.errors++
			case !e.read && !r.Found:
				res.errors++
			}
		}
	}
	return res, nil
}

package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeGrid(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "experiments.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGridExpansion(t *testing.T) {
	path := writeGrid(t, `{
		"repeats": 2,
		"defaults": {"load": 1000, "duration": "100ms", "mix": ["A"], "shards": [2]},
		"experiments": [
			{"name": "batch", "batch": ["none", "16", "mixed"], "fsync": ["off"]},
			{"name": "scale", "mix": ["C"], "shards": [1, 2], "gomaxprocs": [1, 2]}
		]
	}`)
	g, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 + 4; len(cells) != want {
		t.Fatalf("expanded to %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Repeats != 2 {
			t.Errorf("cell %s: repeats %d, want 2 (grid-level)", c.Key, c.Repeats)
		}
		if c.Load != 1000 || time.Duration(c.Duration) != 100*time.Millisecond {
			t.Errorf("cell %s: defaults not inherited: load=%d duration=%v", c.Key, c.Load, c.Duration)
		}
	}
	// The scale experiment overrides mix but not load; the batch
	// experiment keeps the default mix A and layers its own axes.
	if cells[0].Mix != "A" || cells[0].Batch != "none" || cells[0].Fsync != "off" {
		t.Errorf("first batch cell wrong: %+v", cells[0])
	}
	if cells[3].Mix != "C" || cells[3].Shards != 1 || cells[3].Procs != 1 {
		t.Errorf("first scale cell wrong: %+v", cells[3])
	}
	// Keys must be unique and filename-safe after FileStem.
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key] {
			t.Errorf("duplicate key %s", c.Key)
		}
		seen[c.Key] = true
		if strings.ContainsAny(c.FileStem(), "/ ") {
			t.Errorf("FileStem %q not filename-safe", c.FileStem())
		}
	}
}

func TestGridRejectsBadCells(t *testing.T) {
	tests := []struct {
		name, body, want string
	}{
		{"unknown mix", `{"experiments": [{"name": "x", "mix": ["Z"]}]}`, "unknown mix"},
		{"unknown fsync", `{"experiments": [{"name": "x", "fsync": ["sometimes"]}]}`, "fsync"},
		{"unknown kind", `{"experiments": [{"name": "x", "kind": "btree"}]}`, "kind"},
		{"bad batch", `{"experiments": [{"name": "x", "batch": ["banana"]}]}`, "batch"},
		{"zero shards", `{"experiments": [{"name": "x", "shards": [-1]}]}`, "shards"},
		{"repl without wal", `{"experiments": [{"name": "x", "replication": [true]}]}`, "replication requires a WAL"},
		{"nameless", `{"experiments": [{"mix": ["A"]}]}`, "name"},
		{"no experiments", `{"experiments": []}`, "no experiments"},
		{"duplicate cells", `{"experiments": [{"name": "x", "mix": ["A"]}, {"name": "x", "mix": ["A"]}]}`, "duplicate"},
		{"bad duration", `{"experiments": [{"name": "x", "duration": "fast"}]}`, "duration"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g, err := LoadGrid(writeGrid(t, tc.body))
			if err == nil {
				_, err = g.Cells()
			}
			if err == nil {
				t.Fatalf("grid %s accepted, want an error mentioning %q", tc.body, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestGridKeysStable pins the cell-key format: the regression gate joins
// baselines across PRs on these strings, so changing the format breaks
// every committed baseline.
func TestGridKeysStable(t *testing.T) {
	path := writeGrid(t, `{
		"experiments": [{"name": "e", "mix": ["A"], "batch": ["mixed"], "fsync": ["interval"],
		                 "shards": [2], "gomaxprocs": [4], "replication": [true], "dist": ["uniform"]}]
	}`)
	g, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	want := "e/mixA-uniform-batch_mixed-fsync_interval-shards2-procs4-repl"
	if cells[0].Key != want {
		t.Fatalf("cell key = %q, want %q", cells[0].Key, want)
	}
}

package hti

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	tbl := New(Config{})
	const n = 10000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k+1)
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tbl.Lookup(k)
		if !ok || v != k+1 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestIncrementalMigrationHappens(t *testing.T) {
	tbl := New(Config{MigrationBatch: 4})
	// Fill until a resize starts.
	k := uint64(1)
	for !tbl.Migrating() {
		tbl.Insert(k, k)
		k++
		if k > 1<<20 {
			t.Fatal("resize never started")
		}
	}
	if tbl.Resizes != 1 {
		t.Fatalf("Resizes = %d", tbl.Resizes)
	}
	// During migration, all keys must remain visible.
	for q := uint64(1); q < k; q++ {
		if _, ok := tbl.Lookup(q); !ok {
			t.Fatalf("key %d invisible during migration", q)
		}
	}
	// Keep accessing until migration finishes; each access moves a batch.
	steps := 0
	for tbl.Migrating() {
		tbl.Lookup(1)
		steps++
		if steps > 1<<20 {
			t.Fatal("migration never finished")
		}
	}
	if tbl.MovedEntries == 0 {
		t.Fatal("no entries were migrated")
	}
	for q := uint64(1); q < k; q++ {
		if v, ok := tbl.Lookup(q); !ok || v != q {
			t.Fatalf("key %d broken after migration: %d,%v", q, v, ok)
		}
	}
}

func TestUpsertDuringMigration(t *testing.T) {
	tbl := New(Config{MigrationBatch: 1})
	k := uint64(1)
	for !tbl.Migrating() {
		tbl.Insert(k, k)
		k++
	}
	// Upsert keys that still sit in the old table; Len must not grow.
	before := tbl.Len()
	for q := uint64(1); q < k && tbl.Migrating(); q++ {
		tbl.Insert(q, q*100)
	}
	if tbl.Len() != before {
		t.Fatalf("Len changed by upserts: %d -> %d", before, tbl.Len())
	}
	for q := uint64(1); q < k; q++ {
		v, ok := tbl.Lookup(q)
		if !ok || (v != q && v != q*100) {
			t.Fatalf("key %d = %d,%v", q, v, ok)
		}
	}
}

func TestDeleteAcrossTables(t *testing.T) {
	tbl := New(Config{MigrationBatch: 2})
	k := uint64(1)
	for !tbl.Migrating() {
		tbl.Insert(k, k)
		k++
	}
	// Delete every third key while migration is in flight.
	deleted := map[uint64]bool{}
	for q := uint64(1); q < k; q += 3 {
		if !tbl.Delete(q) {
			t.Fatalf("Delete(%d) failed mid-migration", q)
		}
		deleted[q] = true
	}
	for tbl.Migrating() {
		tbl.Lookup(0)
	}
	for q := uint64(1); q < k; q++ {
		_, ok := tbl.Lookup(q)
		if deleted[q] && ok {
			t.Fatalf("deleted key %d reappeared", q)
		}
		if !deleted[q] && !ok {
			t.Fatalf("key %d lost", q)
		}
	}
}

func TestZeroKeyMigration(t *testing.T) {
	tbl := New(Config{MigrationBatch: 1})
	tbl.Insert(0, 42)
	k := uint64(1)
	for !tbl.Migrating() {
		tbl.Insert(k, k)
		k++
	}
	for tbl.Migrating() {
		tbl.Lookup(5)
	}
	if v, ok := tbl.Lookup(0); !ok || v != 42 {
		t.Fatalf("zero key after migration = %d,%v", v, ok)
	}
}

func TestMultipleResizes(t *testing.T) {
	tbl := New(Config{})
	const n = 200000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k)
	}
	if tbl.Resizes < 2 {
		t.Fatalf("Resizes = %d, want several", tbl.Resizes)
	}
	miss := 0
	for k := uint64(0); k < n; k++ {
		if v, ok := tbl.Lookup(k); !ok || v != k {
			miss++
		}
	}
	if miss != 0 {
		t.Fatalf("%d keys broken after %d resizes", miss, tbl.Resizes)
	}
}

// TestNoStrandedEntriesAfterOldTableDelete is the regression test for a
// lost-update bug: deleting from the old table during a migration (the
// update-in-place path of Insert) compacts with backward shifting, which
// can move a not-yet-migrated entry behind the migration cursor. The
// cursor then reaches the end with entries still in the old table, and
// dropping it at that point lost them. The fix rescans until the old
// table is empty; this test drives exactly that interleaving, many times,
// and requires every key to survive.
func TestNoStrandedEntriesAfterOldTableDelete(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		tbl := New(Config{MigrationBatch: 1})
		model := map[uint64]uint64{}
		// Fill until a migration starts, then keep updating keys that
		// still live in the old table (forcing old-table deletes) while
		// the per-access migration races the cursor forward.
		rng := seed
		next := func(n uint64) uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return (rng >> 33) % n
		}
		for k := uint64(1); !tbl.Migrating(); k++ {
			tbl.Insert(k, k)
			model[k] = k
		}
		for i := 0; i < 2000; i++ {
			k := next(uint64(len(model))) + 1
			tbl.Insert(k, k*7)
			model[k] = k * 7
		}
		for tbl.Migrating() {
			tbl.Lookup(0)
		}
		if tbl.Len() != len(model) {
			t.Fatalf("seed %d: Len = %d after migration, want %d (entries stranded)",
				seed, tbl.Len(), len(model))
		}
		for k, want := range model {
			if got, ok := tbl.Lookup(k); !ok || got != want {
				t.Fatalf("seed %d: key %d = %d,%v, want %d", seed, k, got, ok, want)
			}
		}
	}
}

// TestSeededModelEquivalence is the deterministic sibling of the
// time-seeded quick check below: a fixed family of seeds drives random
// insert/lookup/delete interleavings against a map model, checking Len
// after every op. Seed 33 of this family is the sequence that exposed
// the chain-cutting migration bug (step() zeroing probe slots).
func TestSeededModelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl := New(Config{MigrationBatch: 3})
		model := map[uint64]uint64{}
		for i := 0; i < 4000; i++ {
			k := uint64(rng.Intn(2048))
			v := rng.Uint64()
			op := uint8(rng.Intn(4))
			switch op {
			case 0, 1:
				tbl.Insert(k, v)
				model[k] = v
			case 2:
				got, ok := tbl.Lookup(k)
				want, mok := model[k]
				if ok != mok || (ok && got != want) {
					t.Fatalf("seed %d step %d: lookup(%d) = %d,%v want %d,%v",
						seed, i, k, got, ok, want, mok)
				}
			case 3:
				_, mok := model[k]
				if tbl.Delete(k) != mok {
					t.Fatalf("seed %d step %d: delete(%d) != %v", seed, i, k, mok)
				}
				delete(model, k)
			}
			if tbl.Len() != len(model) {
				t.Fatalf("seed %d step %d (op %d k=%d): Len=%d model=%d migrating=%v",
					seed, i, op, k, tbl.Len(), len(model), tbl.Migrating())
			}
		}
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	tbl := New(Config{MigrationBatch: 3})
	model := map[uint64]uint64{}
	check := func(kRaw uint16, v uint64, op uint8) bool {
		k := uint64(kRaw % 2048)
		switch op % 4 {
		case 0, 1:
			tbl.Insert(k, v)
			model[k] = v
		case 2:
			got, ok := tbl.Lookup(k)
			want, mok := model[k]
			if ok != mok || (ok && got != want) {
				return false
			}
		case 3:
			_, mok := model[k]
			if tbl.Delete(k) != mok {
				return false
			}
			delete(model, k)
		}
		return tbl.Len() == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

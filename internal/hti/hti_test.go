package hti

import (
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	tbl := New(Config{})
	const n = 10000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k+1)
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tbl.Lookup(k)
		if !ok || v != k+1 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestIncrementalMigrationHappens(t *testing.T) {
	tbl := New(Config{MigrationBatch: 4})
	// Fill until a resize starts.
	k := uint64(1)
	for !tbl.Migrating() {
		tbl.Insert(k, k)
		k++
		if k > 1<<20 {
			t.Fatal("resize never started")
		}
	}
	if tbl.Resizes != 1 {
		t.Fatalf("Resizes = %d", tbl.Resizes)
	}
	// During migration, all keys must remain visible.
	for q := uint64(1); q < k; q++ {
		if _, ok := tbl.Lookup(q); !ok {
			t.Fatalf("key %d invisible during migration", q)
		}
	}
	// Keep accessing until migration finishes; each access moves a batch.
	steps := 0
	for tbl.Migrating() {
		tbl.Lookup(1)
		steps++
		if steps > 1<<20 {
			t.Fatal("migration never finished")
		}
	}
	if tbl.MovedEntries == 0 {
		t.Fatal("no entries were migrated")
	}
	for q := uint64(1); q < k; q++ {
		if v, ok := tbl.Lookup(q); !ok || v != q {
			t.Fatalf("key %d broken after migration: %d,%v", q, v, ok)
		}
	}
}

func TestUpsertDuringMigration(t *testing.T) {
	tbl := New(Config{MigrationBatch: 1})
	k := uint64(1)
	for !tbl.Migrating() {
		tbl.Insert(k, k)
		k++
	}
	// Upsert keys that still sit in the old table; Len must not grow.
	before := tbl.Len()
	for q := uint64(1); q < k && tbl.Migrating(); q++ {
		tbl.Insert(q, q*100)
	}
	if tbl.Len() != before {
		t.Fatalf("Len changed by upserts: %d -> %d", before, tbl.Len())
	}
	for q := uint64(1); q < k; q++ {
		v, ok := tbl.Lookup(q)
		if !ok || (v != q && v != q*100) {
			t.Fatalf("key %d = %d,%v", q, v, ok)
		}
	}
}

func TestDeleteAcrossTables(t *testing.T) {
	tbl := New(Config{MigrationBatch: 2})
	k := uint64(1)
	for !tbl.Migrating() {
		tbl.Insert(k, k)
		k++
	}
	// Delete every third key while migration is in flight.
	deleted := map[uint64]bool{}
	for q := uint64(1); q < k; q += 3 {
		if !tbl.Delete(q) {
			t.Fatalf("Delete(%d) failed mid-migration", q)
		}
		deleted[q] = true
	}
	for tbl.Migrating() {
		tbl.Lookup(0)
	}
	for q := uint64(1); q < k; q++ {
		_, ok := tbl.Lookup(q)
		if deleted[q] && ok {
			t.Fatalf("deleted key %d reappeared", q)
		}
		if !deleted[q] && !ok {
			t.Fatalf("key %d lost", q)
		}
	}
}

func TestZeroKeyMigration(t *testing.T) {
	tbl := New(Config{MigrationBatch: 1})
	tbl.Insert(0, 42)
	k := uint64(1)
	for !tbl.Migrating() {
		tbl.Insert(k, k)
		k++
	}
	for tbl.Migrating() {
		tbl.Lookup(5)
	}
	if v, ok := tbl.Lookup(0); !ok || v != 42 {
		t.Fatalf("zero key after migration = %d,%v", v, ok)
	}
}

func TestMultipleResizes(t *testing.T) {
	tbl := New(Config{})
	const n = 200000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k)
	}
	if tbl.Resizes < 2 {
		t.Fatalf("Resizes = %d, want several", tbl.Resizes)
	}
	miss := 0
	for k := uint64(0); k < n; k++ {
		if v, ok := tbl.Lookup(k); !ok || v != k {
			miss++
		}
	}
	if miss != 0 {
		t.Fatalf("%d keys broken after %d resizes", miss, tbl.Resizes)
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	tbl := New(Config{MigrationBatch: 3})
	model := map[uint64]uint64{}
	check := func(kRaw uint16, v uint64, op uint8) bool {
		k := uint64(kRaw % 2048)
		switch op % 4 {
		case 0, 1:
			tbl.Insert(k, v)
			model[k] = v
		case 2:
			got, ok := tbl.Lookup(k)
			want, mok := model[k]
			if ok != mok || (ok && got != want) {
				return false
			}
		case 3:
			_, mok := model[k]
			if tbl.Delete(k) != mok {
				return false
			}
			delete(model, k)
		}
		return tbl.Len() == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

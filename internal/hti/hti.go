// Package hti implements the paper's Hash Table Incremental (HTI) baseline
// (§4.2), modelled after the dictionary of the Redis key-value store: it
// resembles HT in all aspects except that a resize does not rehash
// everything in one go. Instead, the old and the new table coexist, and
// every subsequent access migrates a batch of b entries until the old
// table is drained. While both tables coexist, lookups may have to inspect
// both, starting with the one containing more entries.
package hti

import (
	"fmt"

	"vmshortcut/internal/hashfn"
)

const slotBytes = 16

// Config tunes a Table. The zero value selects the paper's parameters.
type Config struct {
	// MaxLoadFactor triggers an incremental resize. Default 0.35.
	MaxLoadFactor float64
	// InitialBytes sizes the first table. Default 4096 (one page).
	InitialBytes int
	// MigrationBatch is the number of entries moved per access while a
	// resize is in progress. Default 64.
	MigrationBatch int
}

func (c *Config) fill() {
	if c.MaxLoadFactor <= 0 || c.MaxLoadFactor >= 1 {
		c.MaxLoadFactor = 0.35
	}
	if c.InitialBytes < slotBytes*2 {
		c.InitialBytes = 4096
	}
	if c.MigrationBatch <= 0 {
		c.MigrationBatch = 64
	}
}

// subtable is one open-addressing table.
type subtable struct {
	keys    []uint64
	vals    []uint64
	mask    uint64
	count   int
	zeroSet bool
	zeroVal uint64
}

func newSubtable(slots int) *subtable {
	return &subtable{
		keys: make([]uint64, slots),
		vals: make([]uint64, slots),
		mask: uint64(slots - 1),
	}
}

func (s *subtable) totalCount() int { return s.count }

func (s *subtable) insert(key, value uint64) bool {
	if key == 0 {
		grew := !s.zeroSet
		s.zeroSet = true
		s.zeroVal = value
		if grew {
			s.count++
		}
		return grew
	}
	i := hashfn.Hash(key) & s.mask
	for s.keys[i] != 0 {
		if s.keys[i] == key {
			s.vals[i] = value
			return false
		}
		i = (i + 1) & s.mask
	}
	s.keys[i] = key
	s.vals[i] = value
	s.count++
	return true
}

func (s *subtable) lookup(key uint64) (uint64, bool) {
	if key == 0 {
		return s.zeroVal, s.zeroSet
	}
	i := hashfn.Hash(key) & s.mask
	for {
		k := s.keys[i]
		if k == key {
			return s.vals[i], true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & s.mask
	}
}

func (s *subtable) delete(key uint64) bool {
	if key == 0 {
		if !s.zeroSet {
			return false
		}
		s.zeroSet = false
		s.zeroVal = 0
		s.count--
		return true
	}
	i := hashfn.Hash(key) & s.mask
	for {
		k := s.keys[i]
		if k == 0 {
			return false
		}
		if k == key {
			break
		}
		i = (i + 1) & s.mask
	}
	hole := i
	j := i
	for {
		j = (j + 1) & s.mask
		k := s.keys[j]
		if k == 0 {
			break
		}
		ideal := hashfn.Hash(k) & s.mask
		var inHoleToJ bool
		if hole <= j {
			inHoleToJ = ideal > hole && ideal <= j
		} else {
			inHoleToJ = ideal > hole || ideal <= j
		}
		if !inHoleToJ {
			s.keys[hole] = k
			s.vals[hole] = s.vals[j]
			hole = j
		}
	}
	s.keys[hole] = 0
	s.vals[hole] = 0
	s.count--
	return true
}

// Table is an incrementally rehashing hash table. Not safe for concurrent
// use.
type Table struct {
	active    *subtable // the table new entries go to
	migrating *subtable // the table being drained (nil when not resizing)
	cursor    int       // migration scan position in migrating.keys
	cfg       Config
	maxFill   int

	// Resizes counts started incremental resizes.
	Resizes int
	// MovedEntries counts entries migrated between tables.
	MovedEntries int
}

// New creates an empty table.
func New(cfg Config) *Table {
	cfg.fill()
	slots := nextPow2(cfg.InitialBytes / slotBytes)
	t := &Table{cfg: cfg, active: newSubtable(slots)}
	t.maxFill = maxFill(cfg.MaxLoadFactor, slots)
	return t
}

func maxFill(lf float64, slots int) int {
	f := int(lf * float64(slots))
	if f < 1 {
		f = 1
	}
	return f
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Len returns the number of stored entries across both tables.
func (t *Table) Len() int {
	n := t.active.totalCount()
	if t.migrating != nil {
		n += t.migrating.totalCount()
	}
	return n
}

// Migrating reports whether an incremental resize is in progress.
func (t *Table) Migrating() bool { return t.migrating != nil }

// step migrates up to MigrationBatch entries from the old table. Called on
// every access while a resize is in progress ("subsequent accesses then
// also move b entries until everything is migrated").
func (t *Table) step() {
	if t.migrating == nil {
		return
	}
	moved := 0
	m := t.migrating
	if m.zeroSet {
		t.active.insert(0, m.zeroVal)
		m.zeroSet = false
		m.count--
		moved++
		t.MovedEntries++
	}
	for moved < t.cfg.MigrationBatch && t.cursor < len(m.keys) {
		k := m.keys[t.cursor]
		if k == 0 {
			t.cursor++
			continue
		}
		v := m.vals[t.cursor]
		// Remove through the backward-shift delete so the old table's
		// probe chains stay intact for the keys not yet migrated —
		// zeroing the slot directly cuts the chain and strands every
		// displaced key probing through it (unreachable to lookups and,
		// worse, to Insert's update-in-place check, which then
		// duplicated the key into the new table). The shift may pull
		// another entry into the cursor slot, so the cursor only
		// advances on empty slots.
		m.delete(k)
		t.active.insert(k, v)
		moved++
		t.MovedEntries++
	}
	if m.count == 0 {
		t.migrating = nil
		t.cursor = 0
	} else if t.cursor >= len(m.keys) {
		// Entries can survive a full scan: deleting from the old table
		// (the update-in-place path of Insert, or Delete) compacts with
		// backward shifting, which may move a not-yet-migrated entry
		// behind the cursor. Rescan until the table is truly empty —
		// nothing is ever inserted into the old table, so every pass
		// makes progress and the resize still terminates.
		t.cursor = 0
	}
}

// startResize begins migrating into a table of twice the combined size.
func (t *Table) startResize() {
	newSlots := len(t.active.keys) * 2
	if t.migrating != nil {
		// Resize requested while still migrating (possible under extreme
		// load factors): finish the old migration first, in one go.
		for t.migrating != nil {
			t.step()
		}
	}
	t.migrating = t.active
	t.active = newSubtable(newSlots)
	t.cursor = 0
	t.maxFill = maxFill(t.cfg.MaxLoadFactor, newSlots)
	t.Resizes++
}

// Insert upserts (key, value), migrating a batch if a resize is running.
func (t *Table) Insert(key, value uint64) error {
	t.step()
	if t.migrating != nil {
		// Update-in-place if the key still lives in the old table.
		if _, ok := t.migrating.lookup(key); ok {
			t.migrating.delete(key)
			t.active.insert(key, value)
			return nil
		}
	}
	grew := t.active.insert(key, value)
	if grew && t.migrating == nil && t.active.count > t.maxFill {
		t.startResize()
	}
	return nil
}

// Lookup returns the value stored for key. While two tables coexist, the
// one containing more entries is inspected first (paper §4.2).
func (t *Table) Lookup(key uint64) (uint64, bool) {
	t.step()
	if t.migrating == nil {
		return t.active.lookup(key)
	}
	first, second := t.active, t.migrating
	if t.migrating.totalCount() > t.active.totalCount() {
		first, second = t.migrating, t.active
	}
	if v, ok := first.lookup(key); ok {
		return v, true
	}
	return second.lookup(key)
}

// InsertBatch upserts every (keys[i], values[i]) pair. Each element still
// counts as one access for the incremental-migration contract: a resize in
// progress moves one batch of entries per element, exactly as a loop of
// Insert calls would.
func (t *Table) InsertBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("hti: InsertBatch: %d keys, %d values", len(keys), len(values))
	}
	for i, k := range keys {
		if err := t.Insert(k, values[i]); err != nil {
			return err
		}
	}
	return nil
}

// LookupBatch looks up every key, writing values into out (which must
// have length at least len(keys)) and returning per-key presence. Each
// element counts as one access for migration purposes.
func (t *Table) LookupBatch(keys []uint64, out []uint64) []bool {
	ok := make([]bool, len(keys))
	for i, k := range keys {
		out[i], ok[i] = t.Lookup(k)
	}
	return ok
}

// Range calls fn for every stored entry until fn returns false. Unlike
// Lookup, Range is a pure read: it does not advance the incremental
// migration, so it can run while a resize is in progress without moving
// entries under the caller. Iteration order is unspecified. fn must not
// mutate the table.
func (t *Table) Range(fn func(key, value uint64) bool) {
	tables := []*subtable{t.active}
	if t.migrating != nil {
		tables = append(tables, t.migrating)
	}
	for _, s := range tables {
		if s.zeroSet && !fn(0, s.zeroVal) {
			return
		}
		for i, k := range s.keys {
			if k != 0 && !fn(k, s.vals[i]) {
				return
			}
		}
	}
}

// Delete removes key from whichever table holds it.
func (t *Table) Delete(key uint64) bool {
	t.step()
	if t.active.delete(key) {
		return true
	}
	if t.migrating != nil {
		return t.migrating.delete(key)
	}
	return false
}

// DeleteBatch removes every key, returning per-key presence. Each element
// counts as one access for the incremental-migration contract, exactly as
// a loop of Delete calls would.
func (t *Table) DeleteBatch(keys []uint64) []bool {
	ok := make([]bool, len(keys))
	for i, k := range keys {
		ok[i] = t.Delete(k)
	}
	return ok
}

// Package sceh implements Shortcut-EH (paper §4.1): extendible hashing
// whose directory is additionally expressed as a shortcut in the page
// table of the OS.
//
// # The shortcut mechanism
//
// A traditional EH lookup resolves two indirections: directory slot →
// bucket pointer → bucket page. The shortcut collapses the first one into
// the MMU. The directory is mirrored as a contiguous virtual area with one
// page per slot, and each slot's virtual page is rewired (mmap MAP_FIXED
// over the pool's memfd) onto the physical page of its bucket. Reading
// shortcutBase + slot*pageSize then IS the bucket access — the page-table
// walk the CPU performs anyway replaces the pointer chase, and the TLB
// caches it.
//
// # Asynchronous maintenance
//
// The traditional pointer directory stays authoritative: every
// directory-modifying operation is applied to it synchronously. A separate
// mapper thread replays those modifications into the shortcut directory
// asynchronously, driven by a concurrent lock-free FIFO queue of
// maintenance requests:
//
//   - a bucket split enqueues an update request (remap the two affected
//     slot ranges onto the two new bucket pages);
//   - a directory doubling enqueues a create request (destroy the shortcut
//     and build a new one from a snapshot of all slot refs) — pending
//     update requests are superseded by it.
//
// Both directories carry version numbers. The shortcut's version advances
// only after the page-table population of the replayed request completes,
// so an in-sync shortcut never takes a page fault. Lookups route through
// the shortcut only when (a) the versions match and (b) the average fan-in
// is at most FanInThreshold (paper §3.2: high fan-in thrashes the TLB).
//
// # Concurrency
//
// A Table is single-writer, matching the paper. Concurrent, the
// readers-writer wrapper in this package, lifts that to one writer at a
// time with parallel readers — the facade's WithConcurrency reimplements
// the same discipline with lifecycle handling on top. To scale writers
// across cores, the facade's WithShards hash-partitions the keyspace over
// several independent Tables (each with its own mapper thread and lock
// stripe) instead of sharing one lock.
package sceh

package sceh

import (
	"sync"
	"time"

	"vmshortcut/internal/eh"
	"vmshortcut/internal/pool"
)

// Concurrent wraps a Table behind a readers-writer lock, lifting the
// paper's single-writer model to safe multi-goroutine use: any number of
// concurrent Lookups, exclusive Insert/Delete. The mapper thread needs no
// part in this locking — its interaction with readers is already race-free
// through the version protocol — so reads scale until a writer arrives.
//
// One lock still serializes all writers; for write-heavy multi-core
// traffic prefer the facade's sharded store (vmshortcut.WithShards),
// which stripes this lock per hash-partitioned shard.
type Concurrent struct {
	mu sync.RWMutex
	t  *Table
}

// NewConcurrent creates a concurrency-safe Shortcut-EH table.
func NewConcurrent(p *pool.Pool, cfg Config) (*Concurrent, error) {
	t, err := New(p, cfg)
	if err != nil {
		return nil, err
	}
	return &Concurrent{t: t}, nil
}

// Insert upserts (key, value) under the write lock.
func (c *Concurrent) Insert(key, value uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Insert(key, value)
}

// Lookup returns the value stored for key under a read lock.
func (c *Concurrent) Lookup(key uint64) (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Lookup(key)
}

// Delete removes key under the write lock.
func (c *Concurrent) Delete(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Delete(key)
}

// Len returns the number of stored entries.
func (c *Concurrent) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Len()
}

// InsertBatch upserts every pair under one write-lock acquisition — the
// lock overhead amortizes across the batch.
func (c *Concurrent) InsertBatch(keys, values []uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.InsertBatch(keys, values)
}

// LookupBatch answers every key under one read-lock acquisition.
func (c *Concurrent) LookupBatch(keys []uint64, out []uint64) []bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.LookupBatch(keys, out)
}

// DeleteBatch removes every key under one write-lock acquisition.
func (c *Concurrent) DeleteBatch(keys []uint64) []bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.DeleteBatch(keys)
}

// WaitSync blocks until the shortcut directory catches up (no lock held
// while waiting; the mapper needs the table quiescent only logically).
func (c *Concurrent) WaitSync(timeout time.Duration) bool { return c.t.WaitSync(timeout) }

// MemStats returns the underlying traditional directory's shape statistics
// under a read lock (the scan must not race a writer).
func (c *Concurrent) MemStats() eh.MemStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.EH().Stats()
}

// Stats returns the underlying table's counters.
func (c *Concurrent) Stats() Stats { return c.t.Stats() }

// Table exposes the wrapped table for read-only inspection. The caller
// must not mutate through it concurrently with this wrapper.
func (c *Concurrent) Table() *Table { return c.t }

// Close stops the mapper thread and releases the shortcut areas.
func (c *Concurrent) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Close()
}

package sceh

import (
	"sync"
	"testing"
	"time"

	"vmshortcut/internal/workload"
)

func TestConcurrentMixedWorkload(t *testing.T) {
	p := newPool(t)
	c, err := NewConcurrent(p, Config{PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const writers = 2
	const readers = 4
	const perWriter = 15000

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	// Writers own disjoint key ranges; value == key.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * perWriter
			for i := uint64(0); i < perWriter; i++ {
				if err := c.Insert(base+i+1, base+i+1); err != nil {
					errs <- err
					return
				}
				if i%7 == 0 {
					c.Delete(base + i/2 + 1)
				}
			}
			errs <- nil
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := workload.NewRNG(seed)
			for i := 0; i < 40000; i++ {
				k := uint64(rng.Intn(writers*perWriter)) + 1
				if v, ok := c.Lookup(k); ok && v != k {
					errs <- errValue(k, v)
					return
				}
			}
			errs <- nil
		}(uint64(r + 100))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if !c.WaitSync(10 * time.Second) {
		t.Fatal("never synced")
	}
	// Verify all surviving keys (deletions removed some of the first half
	// of each writer's range).
	for w := 0; w < writers; w++ {
		base := uint64(w) * perWriter
		for i := uint64(perWriter/2 + 1); i < perWriter; i++ {
			k := base + i + 1
			if v, ok := c.Lookup(k); !ok || v != k {
				t.Fatalf("key %d = %d,%v", k, v, ok)
			}
		}
	}
}

func TestConcurrentLenAndStats(t *testing.T) {
	p := newPool(t)
	c, err := NewConcurrent(p, Config{PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for k := uint64(1); k <= 1000; k++ {
		c.Insert(k, k)
	}
	if c.Len() != 1000 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.WaitSync(5 * time.Second)
	c.Lookup(5)
	s := c.Stats()
	if s.ShortcutLookups+s.TraditionalLookups == 0 {
		t.Fatal("stats not wired through")
	}
	if c.Table().Len() != 1000 {
		t.Fatal("Table() accessor broken")
	}
}

package sceh

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut/internal/bucket"
	"vmshortcut/internal/core"
	"vmshortcut/internal/eh"
	"vmshortcut/internal/fifo"
	"vmshortcut/internal/hashfn"
	"vmshortcut/internal/pool"
	"vmshortcut/internal/sys"
)

// pageShift converts a directory slot number into a byte offset inside a
// shortcut directory (slot << pageShift).
var pageShift = uint(log2(sys.PageSize()))

// Config tunes Shortcut-EH. The zero value selects the paper's parameters.
type Config struct {
	// EH configures the underlying traditional extendible hash table.
	EH eh.Config
	// PollInterval is the mapper thread's queue polling frequency.
	// Default 25ms (paper §4.1: "empirically determined 25ms to work
	// well"). Tests and benchmarks shorten it.
	PollInterval time.Duration
	// FanInThreshold routes lookups through the shortcut only while the
	// average directory fan-in is at most this. Default 8 (paper §4.1).
	FanInThreshold float64
	// AdaptiveRouting replaces the fixed fan-in threshold with online
	// measurement: the router periodically times a window of lookups on
	// each access path and prefers the faster one. The fan-in crossover
	// is host-dependent (virtualized TLBs shift it far below the paper's
	// 8–16), so measuring beats guessing on unknown hardware.
	AdaptiveRouting bool
	// Synchronous applies maintenance requests on the writer goroutine
	// immediately instead of via the mapper thread. Ablation only: it
	// exposes the full remap + TLB-shootdown cost to insertions.
	Synchronous bool
	// DisableShortcut routes every lookup through the traditional
	// directory (turns Shortcut-EH back into EH; used by ablations).
	DisableShortcut bool
}

func (c *Config) fill() {
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.FanInThreshold <= 0 {
		c.FanInThreshold = 8
	}
}

// request is one maintenance request on the queue.
type request struct {
	create  bool
	version uint64

	// update fields: remap [lo0,hi0) onto ref0 and [lo1,hi1) onto ref1.
	lo0, hi0 uint64
	ref0     pool.Ref
	lo1, hi1 uint64
	ref1     pool.Ref

	// create fields: rebuild with 2^gd slots mapped onto refs.
	gd   uint
	refs []pool.Ref
}

// scState is the atomically published snapshot lookups read: the in-sync
// shortcut directory base, its depth, and the version it reflects.
type scState struct {
	base    uintptr
	gd      uint
	version uint64
}

// Stats exposes counters for the experiments.
type Stats struct {
	ShortcutLookups    uint64 // lookups answered through the shortcut
	TraditionalLookups uint64 // lookups answered through the pointer directory
	UpdatesApplied     uint64 // update requests replayed
	CreatesApplied     uint64 // create requests replayed
	UpdatesSuperseded  uint64 // update requests dropped due to a newer create
	Remaps             uint64 // mmap calls issued by the mapper
}

// Table is a Shortcut-EH index.
//
// Concurrency model (mirroring the paper §4.1): a single goroutine issues
// Insert/Delete/Lookup; the mapper thread runs concurrently and only
// touches the shortcut directory. Additional goroutines may call Lookup
// concurrently with the mapper while the writer is quiescent — the version
// check, shortcut publication, and retirement of old generations are all
// race-free. Lookups concurrent with Insert/Delete require external
// synchronization, exactly as in the original C++ prototype.
type Table struct {
	cfg  Config
	pool *pool.Pool
	eh   *eh.Table

	queue   *fifo.Queue[request]
	tradVer atomic.Uint64
	fanIn   atomic.Uint64 // float64 bits of the current average fan-in

	published atomic.Pointer[scState]

	// mapper-owned state
	sc      *core.Shortcut
	retired []*core.Shortcut // previous generations, unmapped lazily

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	scLookups   atomic.Uint64
	tradLookups atomic.Uint64
	updates     atomic.Uint64
	creates     atomic.Uint64
	superseded  atomic.Uint64
	remaps      atomic.Uint64

	// adaptive-routing state (see lookupAdaptive)
	adaptN      atomic.Uint64
	adaptT0     atomic.Int64
	adaptSCNS   atomic.Int64
	adaptPrefSC atomic.Bool
}

// Adaptive routing window sizes: every adaptPeriod lookups, one sample
// window per path is timed and the preference re-decided.
const (
	adaptPeriod = 1 << 14
	adaptSample = 1 << 9
)

// New creates a Shortcut-EH table over the given page pool and starts its
// mapper thread (unless cfg.Synchronous).
func New(p *pool.Pool, cfg Config) (*Table, error) {
	cfg.fill()
	inner, err := eh.New(p, cfg.EH)
	if err != nil {
		return nil, err
	}
	t := &Table{
		cfg:   cfg,
		pool:  p,
		eh:    inner,
		queue: fifo.New[request](),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	t.storeFanIn(inner.AvgFanIn())
	t.tradVer.Store(inner.Version()) // pre-sized directories start above 0
	inner.SetEventFunc(t.onEvent)

	// Build the initial shortcut synchronously so lookups can use it from
	// the start.
	if err := t.applyCreate(request{
		create:  true,
		version: inner.Version(),
		gd:      inner.GlobalDepth(),
		refs:    inner.Refs(),
	}); err != nil {
		return nil, fmt.Errorf("sceh: building initial shortcut: %w", err)
	}
	if !cfg.Synchronous {
		go t.mapperLoop()
	} else {
		close(t.done)
	}
	return t, nil
}

// onEvent runs synchronously on the writer goroutine after each directory
// modification of the traditional table.
func (t *Table) onEvent(e eh.Event) {
	var req request
	switch ev := e.(type) {
	case eh.SplitEvent:
		req = request{
			version: ev.Version,
			lo0:     ev.Lo0, hi0: ev.Hi0, ref0: ev.Ref0,
			lo1: ev.Lo1, hi1: ev.Hi1, ref1: ev.Ref1,
		}
	case eh.MergeEvent:
		// A merge remaps one slot range onto the coalesced bucket; the
		// second range of the request stays empty.
		req = request{
			version: ev.Version,
			lo0:     ev.Lo, hi0: ev.Hi, ref0: ev.Ref,
		}
	case eh.DoubleEvent:
		req = request{create: true, version: ev.Version, gd: ev.GlobalDepth, refs: ev.Refs}
	case eh.HalveEvent:
		// Halving shrinks the directory: rebuild the shortcut from the
		// snapshot, exactly like a doubling.
		req = request{create: true, version: ev.Version, gd: ev.GlobalDepth, refs: ev.Refs}
	}
	t.storeFanIn(t.eh.AvgFanIn())
	if t.cfg.Synchronous {
		t.tradVer.Store(req.version)
		t.apply(req)
		return
	}
	t.queue.Push(req)
	// Publish the new traditional version last: once lookups observe it,
	// the shortcut is considered stale until the mapper catches up.
	t.tradVer.Store(req.version)
}

// mapperLoop is the mapper thread: it polls the request queue at the
// configured frequency and replays pending modifications into the shortcut
// directory (paper §4.1).
func (t *Table) mapperLoop() {
	// The mapper performs a continuous stream of mmap syscalls and is the
	// thread TLB shootdowns penalize; pin it to an OS thread like the
	// paper's dedicated mapper thread.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	defer close(t.done)
	ticker := time.NewTicker(t.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			// Final drain so WaitSync during shutdown can still succeed.
			t.drainAndApply()
			return
		case <-ticker.C:
			t.drainAndApply()
		}
	}
}

// drainAndApply replays every pending request. Update requests older than
// a pending create request became outdated the moment the directory
// doubled; they are dropped, mirroring the paper's "pop all pending update
// requests" before pushing a create.
func (t *Table) drainAndApply() {
	reqs := t.queue.Drain()
	if len(reqs) == 0 {
		return
	}
	lastCreate := -1
	for i, r := range reqs {
		if r.create {
			lastCreate = i
		}
	}
	for i, r := range reqs {
		if i < lastCreate && !r.create {
			t.superseded.Add(1)
			continue
		}
		t.apply(r)
	}
}

// apply replays one request and publishes the resulting shortcut state.
func (t *Table) apply(r request) {
	if r.create {
		if err := t.applyCreate(r); err != nil {
			// Leave the shortcut stale; lookups keep using the
			// traditional directory. The next create retries from a
			// fresh snapshot.
			return
		}
		return
	}
	if t.sc == nil {
		return
	}
	// Remap the two slot ranges onto the split buckets. Every slot in a
	// range maps onto the same physical page, so the calls cannot
	// coalesce — this is the fan-in situation of paper §3.2.
	for s := r.lo0; s < r.hi0; s++ {
		if err := t.sc.Set(int(s), r.ref0, true); err != nil {
			return
		}
		t.remaps.Add(1)
	}
	for s := r.lo1; s < r.hi1; s++ {
		if err := t.sc.Set(int(s), r.ref1, true); err != nil {
			return
		}
		t.remaps.Add(1)
	}
	t.updates.Add(1)
	// MAP_POPULATE installed the page-table entries during the remaps, so
	// the version can advance immediately (paper §4.1: populate before
	// bumping the version).
	t.publish(r.version)
}

// applyCreate destroys the current shortcut directory and builds a new one
// from the snapshot in r (paper §4.1, directory doubling).
func (t *Table) applyCreate(r request) error {
	sc, err := core.NewShortcut(t.pool, 1<<r.gd)
	if err != nil {
		return err
	}
	calls, err := sc.SetAll(r.refs, true)
	if err != nil {
		sc.Close()
		return err
	}
	t.remaps.Add(uint64(calls))

	// Retire the previous generation instead of unmapping it immediately:
	// a concurrent lookup that just passed its version check may still be
	// dereferencing the old base. By the time two further creates have
	// happened (two poll intervals at minimum), any such lookup has long
	// finished; only then is the area reclaimed.
	if t.sc != nil {
		t.retired = append(t.retired, t.sc)
		if len(t.retired) > 2 {
			t.retired[0].Close()
			t.retired = t.retired[1:]
		}
	}
	t.sc = sc
	t.creates.Add(1)
	t.publish(r.version)
	return nil
}

func (t *Table) publish(version uint64) {
	t.published.Store(&scState{base: t.sc.Base(), gd: uint(log2(t.sc.Slots())), version: version})
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func (t *Table) storeFanIn(f float64) { t.fanIn.Store(math.Float64bits(f)) }

func (t *Table) loadFanIn() float64 { return math.Float64frombits(t.fanIn.Load()) }

// Insert upserts (key, value). Directory modifications are applied to the
// traditional directory synchronously and to the shortcut asynchronously.
func (t *Table) Insert(key, value uint64) error {
	return t.eh.Insert(key, value)
}

// Lookup returns the value stored for key. It routes through the shortcut
// directory when it is in sync and the fan-in permits (or, with
// AdaptiveRouting, when the shortcut path measured faster), and through
// the traditional directory otherwise.
func (t *Table) Lookup(key uint64) (uint64, bool) {
	if !t.cfg.DisableShortcut {
		st := t.published.Load()
		if st != nil && st.version == t.tradVer.Load() {
			if t.cfg.AdaptiveRouting {
				if t.adaptWantShortcut() {
					return t.lookupVia(st, key)
				}
			} else if t.loadFanIn() <= t.cfg.FanInThreshold {
				return t.lookupVia(st, key)
			}
		}
	}
	t.tradLookups.Add(1)
	return t.eh.Lookup(key)
}

// InsertBatch upserts every (keys[i], values[i]) pair into the traditional
// directory; shortcut maintenance is enqueued per modification as usual.
func (t *Table) InsertBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("sceh: InsertBatch: %d keys, %d values", len(keys), len(values))
	}
	for i, k := range keys {
		if err := t.eh.Insert(k, values[i]); err != nil {
			return err
		}
	}
	return nil
}

// LookupBatch looks up every key, writing values into out (which must have
// length at least len(keys)) and returning per-key presence. The routing
// decision — published-state load, version comparison, fan-in check — is
// made once for the whole batch instead of once per key, which is the
// per-lookup overhead a batch amortizes. Holding one published state across
// the batch relies on the table's concurrency model (see the Table doc):
// the fast path is only entered on a version match, which implies the
// maintenance queue is drained, and with the writer quiescent — or
// excluded by external synchronization — for the duration of the call, no
// create can be enqueued that would retire the pinned shortcut area. A
// batch racing an unsynchronized writer is undefined, exactly as a single
// Lookup racing Insert already is.
func (t *Table) LookupBatch(keys []uint64, out []uint64) []bool {
	ok := make([]bool, len(keys))
	if len(keys) == 0 {
		return ok
	}
	if t.cfg.DisableShortcut || t.cfg.AdaptiveRouting {
		// Adaptive routing samples per lookup; keep its bookkeeping exact.
		for i, k := range keys {
			out[i], ok[i] = t.Lookup(k)
		}
		return ok
	}
	st := t.published.Load()
	if st != nil && st.version == t.tradVer.Load() && t.loadFanIn() <= t.cfg.FanInThreshold {
		for i, k := range keys {
			slot := hashfn.DirIndex(hashfn.Hash(k), st.gd)
			out[i], ok[i] = bucket.ViewAddr(st.base + uintptr(slot)<<pageShift).Lookup(k)
		}
		t.scLookups.Add(uint64(len(keys)))
		return ok
	}
	for i, k := range keys {
		out[i], ok[i] = t.eh.Lookup(k)
	}
	t.tradLookups.Add(uint64(len(keys)))
	return ok
}

// lookupVia answers through the in-sync shortcut directory st.
func (t *Table) lookupVia(st *scState, key uint64) (uint64, bool) {
	h := hashfn.Hash(key)
	slot := hashfn.DirIndex(h, st.gd)
	t.scLookups.Add(1)
	return bucket.ViewAddr(st.base + uintptr(slot)<<pageShift).Lookup(key)
}

// adaptWantShortcut implements the measuring router: lookups 0..adaptSample
// of each period run via the shortcut, the next adaptSample via the
// traditional directory, both windows are wall-clock timed, and the rest
// of the period follows the winner. Timing is approximate under
// concurrency — windows may interleave with inserts — but the decision
// re-converges every period.
func (t *Table) adaptWantShortcut() bool {
	n := t.adaptN.Add(1) % adaptPeriod
	switch {
	case n == 1:
		t.adaptT0.Store(time.Now().UnixNano())
		return true
	case n < adaptSample:
		return true
	case n == adaptSample:
		now := time.Now().UnixNano()
		t.adaptSCNS.Store(now - t.adaptT0.Load())
		t.adaptT0.Store(now)
		return false
	case n < 2*adaptSample:
		return false
	case n == 2*adaptSample:
		now := time.Now().UnixNano()
		t.adaptPrefSC.Store(now-t.adaptT0.Load() >= t.adaptSCNS.Load())
		return t.adaptPrefSC.Load()
	default:
		return t.adaptPrefSC.Load()
	}
}

// LookupShortcut forces the shortcut path (benchmarks; caller must ensure
// the table is in sync, e.g. via WaitSync).
func (t *Table) LookupShortcut(key uint64) (uint64, bool) {
	st := t.published.Load()
	h := hashfn.Hash(key)
	slot := hashfn.DirIndex(h, st.gd)
	return bucket.ViewAddr(st.base + uintptr(slot)<<pageShift).Lookup(key)
}

// Delete removes key. With merging disabled (the paper's configuration)
// bucket contents are shared physical pages and no shortcut maintenance is
// needed; with Config.EH.MergeLoadFactor set, merges and halvings are
// replayed like any other directory modification.
func (t *Table) Delete(key uint64) bool {
	if t.cfg.EH.MergeLoadFactor > 0 {
		return t.eh.DeleteAndMerge(key)
	}
	return t.eh.Delete(key)
}

// DeleteBatch removes every key, returning per-key presence — the delete
// counterpart of InsertBatch, with the merge-vs-plain decision made once
// for the whole batch instead of once per key.
func (t *Table) DeleteBatch(keys []uint64) []bool {
	if t.cfg.EH.MergeLoadFactor > 0 {
		return t.eh.DeleteAndMergeBatch(keys)
	}
	return t.eh.DeleteBatch(keys)
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.eh.Len() }

// Range calls fn for every stored entry until fn returns false, walking
// the traditional directory (bucket contents are shared with the shortcut,
// so no synchronization with the mapper is needed — but Range must not
// race mutations, exactly like Lookup). fn must not mutate the table.
func (t *Table) Range(fn func(key, value uint64) bool) { t.eh.Range(fn) }

// EH exposes the underlying traditional table (read-only use).
func (t *Table) EH() *eh.Table { return t.eh }

// TradVersion returns the traditional directory's version number.
func (t *Table) TradVersion() uint64 { return t.tradVer.Load() }

// ShortcutVersion returns the version the shortcut directory reflects.
func (t *Table) ShortcutVersion() uint64 {
	if st := t.published.Load(); st != nil {
		return st.version
	}
	return 0
}

// InSync reports whether the shortcut directory has caught up.
func (t *Table) InSync() bool { return t.ShortcutVersion() == t.tradVer.Load() }

// UsingShortcut reports whether the next lookup would take the shortcut.
func (t *Table) UsingShortcut() bool {
	return !t.cfg.DisableShortcut && t.InSync() && t.loadFanIn() <= t.cfg.FanInThreshold
}

// AvgFanIn returns the current average directory fan-in.
func (t *Table) AvgFanIn() float64 { return t.loadFanIn() }

// WaitSync blocks until the shortcut directory is in sync or the timeout
// elapses, reporting success.
func (t *Table) WaitSync(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for !t.InSync() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// Stats returns a snapshot of the table's counters.
func (t *Table) Stats() Stats {
	return Stats{
		ShortcutLookups:    t.scLookups.Load(),
		TraditionalLookups: t.tradLookups.Load(),
		UpdatesApplied:     t.updates.Load(),
		CreatesApplied:     t.creates.Load(),
		UpdatesSuperseded:  t.superseded.Load(),
		Remaps:             t.remaps.Load(),
	}
}

// Close stops the mapper thread and releases all shortcut virtual areas.
// The underlying pool and its bucket pages belong to the caller.
func (t *Table) Close() error {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
	var firstErr error
	for _, r := range t.retired {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.retired = nil
	if t.sc != nil {
		if err := t.sc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		t.sc = nil
	}
	return firstErr
}

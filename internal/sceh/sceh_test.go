package sceh

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"vmshortcut/internal/eh"
	"vmshortcut/internal/pool"
)

func newPool(t testing.TB) *pool.Pool {
	t.Helper()
	p, err := pool.New(pool.Config{GrowChunkPages: 32, MaxPages: 1 << 18})
	if err != nil {
		t.Fatalf("pool.New: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func newTable(t testing.TB, cfg Config) *Table {
	t.Helper()
	if cfg.PollInterval == 0 {
		cfg.PollInterval = time.Millisecond
	}
	tbl, err := New(newPool(t), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { tbl.Close() })
	return tbl
}

func TestFreshTableInSync(t *testing.T) {
	tbl := newTable(t, Config{})
	if !tbl.InSync() {
		t.Fatal("fresh table should be in sync")
	}
	if !tbl.UsingShortcut() {
		t.Fatal("fresh table should route through the shortcut")
	}
	if _, ok := tbl.Lookup(1); ok {
		t.Fatal("phantom key")
	}
	s := tbl.Stats()
	if s.ShortcutLookups != 1 || s.TraditionalLookups != 0 {
		t.Fatalf("lookup routing stats: %+v", s)
	}
}

func TestInsertLookupThroughShortcut(t *testing.T) {
	tbl := newTable(t, Config{})
	const n = 30000
	for k := uint64(0); k < n; k++ {
		if err := tbl.Insert(k, k^0xFF); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if !tbl.WaitSync(5 * time.Second) {
		t.Fatalf("shortcut never synced: trad=%d sc=%d",
			tbl.TradVersion(), tbl.ShortcutVersion())
	}
	if !tbl.UsingShortcut() {
		t.Fatalf("should use shortcut: fan-in=%f", tbl.AvgFanIn())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tbl.Lookup(k)
		if !ok || v != k^0xFF {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	s := tbl.Stats()
	if s.ShortcutLookups == 0 {
		t.Fatal("no lookups went through the shortcut")
	}
	if s.CreatesApplied == 0 {
		t.Fatal("directory doublings should have triggered creates")
	}
}

func TestShortcutAndTraditionalAgree(t *testing.T) {
	tbl := newTable(t, Config{})
	const n = 20000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k*2654435761+1, k)
	}
	if !tbl.WaitSync(5 * time.Second) {
		t.Fatal("never synced")
	}
	for k := uint64(0); k < n; k++ {
		key := k*2654435761 + 1
		sv, sok := tbl.LookupShortcut(key)
		tv, tok := tbl.EH().Lookup(key)
		if sok != tok || sv != tv {
			t.Fatalf("key %d: shortcut (%d,%v) != traditional (%d,%v)", key, sv, sok, tv, tok)
		}
	}
}

func TestOutOfSyncFallsBackToTraditional(t *testing.T) {
	// A long poll interval keeps the shortcut stale after inserts, so
	// lookups must route through the traditional directory and still be
	// correct.
	tbl := newTable(t, Config{PollInterval: time.Hour})
	const n = 20000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k+7)
	}
	if tbl.InSync() {
		t.Skip("no directory modification happened (impossible at this n)")
	}
	if tbl.UsingShortcut() {
		t.Fatal("stale shortcut must not be used")
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tbl.Lookup(k)
		if !ok || v != k+7 {
			t.Fatalf("fallback Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	s := tbl.Stats()
	if s.ShortcutLookups != 0 {
		t.Fatalf("%d lookups used a stale shortcut", s.ShortcutLookups)
	}
}

func TestVersionsAdvanceMonotonically(t *testing.T) {
	tbl := newTable(t, Config{})
	lastSc := uint64(0)
	for k := uint64(0); k < 30000; k++ {
		tbl.Insert(k, k)
		if sv := tbl.ShortcutVersion(); sv < lastSc {
			t.Fatalf("shortcut version went backwards: %d -> %d", lastSc, sv)
		} else {
			lastSc = sv
		}
		if tbl.ShortcutVersion() > tbl.TradVersion() {
			t.Fatal("shortcut version ahead of traditional")
		}
	}
	if !tbl.WaitSync(5 * time.Second) {
		t.Fatal("never synced")
	}
	if tbl.ShortcutVersion() != tbl.TradVersion() {
		t.Fatal("versions differ after sync")
	}
}

func TestSynchronousMode(t *testing.T) {
	tbl := newTable(t, Config{Synchronous: true})
	const n = 20000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k*2)
	}
	// Synchronous maintenance keeps the shortcut permanently in sync.
	if !tbl.InSync() {
		t.Fatalf("synchronous table out of sync: trad=%d sc=%d",
			tbl.TradVersion(), tbl.ShortcutVersion())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tbl.Lookup(k)
		if !ok || v != k*2 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestDisableShortcut(t *testing.T) {
	tbl := newTable(t, Config{DisableShortcut: true})
	for k := uint64(0); k < 5000; k++ {
		tbl.Insert(k, k)
	}
	tbl.WaitSync(5 * time.Second)
	for k := uint64(0); k < 5000; k++ {
		if _, ok := tbl.Lookup(k); !ok {
			t.Fatalf("key %d lost", k)
		}
	}
	if s := tbl.Stats(); s.ShortcutLookups != 0 {
		t.Fatalf("disabled shortcut served %d lookups", s.ShortcutLookups)
	}
}

func TestFanInThresholdRouting(t *testing.T) {
	// Pre-size the directory so global depth is large while only one
	// bucket exists: fan-in = dirSize, far above the threshold.
	tbl := newTable(t, Config{EH: ehInitial(6)})
	if !tbl.WaitSync(5 * time.Second) {
		t.Fatal("never synced")
	}
	if tbl.AvgFanIn() != 64 {
		t.Fatalf("fan-in = %f, want 64", tbl.AvgFanIn())
	}
	if tbl.UsingShortcut() {
		t.Fatal("fan-in 64 must route traditionally")
	}
	tbl.Insert(1, 2)
	if v, ok := tbl.Lookup(1); !ok || v != 2 {
		t.Fatal("lookup misrouted")
	}
	if s := tbl.Stats(); s.ShortcutLookups != 0 {
		t.Fatal("shortcut used despite fan-in")
	}
}

func TestDelete(t *testing.T) {
	tbl := newTable(t, Config{})
	for k := uint64(0); k < 10000; k++ {
		tbl.Insert(k, k)
	}
	tbl.WaitSync(5 * time.Second)
	for k := uint64(0); k < 10000; k += 2 {
		if !tbl.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	// Deletes do not touch the directory: still in sync, and the shortcut
	// must observe the removals (shared physical pages).
	if !tbl.InSync() {
		t.Fatal("delete desynced the directory")
	}
	for k := uint64(0); k < 10000; k++ {
		_, ok := tbl.LookupShortcut(k)
		if k%2 == 0 && ok {
			t.Fatalf("deleted key %d visible through shortcut", k)
		}
		if k%2 == 1 && !ok {
			t.Fatalf("key %d lost", k)
		}
	}
	if tbl.Len() != 5000 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestConcurrentLookupsDuringMapperReplay(t *testing.T) {
	// The paper's concurrency model: one writer goroutine (which also
	// issues its own lookups) plus the mapper thread. Here readers race
	// against the *mapper* while it is still replaying a burst of
	// directory modifications — exercising the version check, the atomic
	// publication of new shortcut generations, and the deferred unmap of
	// retired ones. Run with -race.
	tbl := newTable(t, Config{PollInterval: 2 * time.Millisecond})
	const n = 60000
	// Writer phase: create a large backlog of maintenance requests.
	for k := uint64(0); k < n; k++ {
		if err := tbl.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Reader phase: writer is quiet, mapper is (likely) still replaying.
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50000; i++ {
				k := uint64(rng.Intn(n))
				v, ok := tbl.Lookup(k)
				if !ok || v != k {
					errs <- errValue(k, v)
					return
				}
			}
			errs <- nil
		}(int64(r))
	}
	for r := 0; r < 4; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if !tbl.WaitSync(5 * time.Second) {
		t.Fatal("never synced after concurrent phase")
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := tbl.Lookup(k); !ok || v != k {
			t.Fatalf("post-phase Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

type valueErr struct{ k, v uint64 }

func (e valueErr) Error() string { return "wrong value" }

func errValue(k, v uint64) error { return valueErr{k, v} }

func TestSupersededUpdates(t *testing.T) {
	// With a slow mapper, doublings arrive while updates are still queued;
	// the mapper must drop the superseded ones and still converge.
	tbl := newTable(t, Config{PollInterval: 50 * time.Millisecond})
	for k := uint64(0); k < 50000; k++ {
		tbl.Insert(k, k)
	}
	if !tbl.WaitSync(10 * time.Second) {
		t.Fatal("never synced")
	}
	s := tbl.Stats()
	if s.UpdatesSuperseded == 0 {
		t.Log("no updates were superseded (mapper kept up); acceptable but unusual")
	}
	for k := uint64(0); k < 50000; k += 97 {
		if v, ok := tbl.Lookup(k); !ok || v != k {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestCloseIsIdempotentAndStopsMapper(t *testing.T) {
	p := newPool(t)
	tbl, err := New(p, Config{PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1000; k++ {
		tbl.Insert(k, k)
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestQuickModelEquivalence: random op streams against a map model, with
// sync waits sprinkled in so both access paths get exercised.
func TestQuickModelEquivalence(t *testing.T) {
	tbl := newTable(t, Config{PollInterval: time.Millisecond})
	model := map[uint64]uint64{}
	ops := 0

	check := func(kRaw uint16, v uint64, opRaw uint8) bool {
		k := uint64(kRaw % 4096)
		ops++
		if ops%500 == 0 {
			tbl.WaitSync(2 * time.Second)
		}
		switch opRaw % 4 {
		case 0, 1:
			if err := tbl.Insert(k, v); err != nil {
				return false
			}
			model[k] = v
		case 2:
			got, ok := tbl.Lookup(k)
			want, mok := model[k]
			if ok != mok || (ok && got != want) {
				return false
			}
		case 3:
			_, mok := model[k]
			if tbl.Delete(k) != mok {
				return false
			}
			delete(model, k)
		}
		return tbl.Len() == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// ehInitial builds an eh.Config with the given initial global depth.
func ehInitial(gd uint) (c eh.Config) {
	c.InitialGlobalDepth = gd
	return
}

func TestAdaptiveRoutingCorrectAndSamplesBothPaths(t *testing.T) {
	tbl := newTable(t, Config{AdaptiveRouting: true})
	const n = 30000
	for k := uint64(1); k <= n; k++ {
		tbl.Insert(k, k*3)
	}
	if !tbl.WaitSync(5 * time.Second) {
		t.Fatal("never synced")
	}
	// Enough lookups to cross several adaptation periods.
	for round := 0; round < 5; round++ {
		for k := uint64(1); k <= n; k++ {
			v, ok := tbl.Lookup(k)
			if !ok || v != k*3 {
				t.Fatalf("adaptive Lookup(%d) = %d,%v", k, v, ok)
			}
		}
	}
	s := tbl.Stats()
	if s.ShortcutLookups == 0 || s.TraditionalLookups == 0 {
		t.Fatalf("adaptive router never sampled both paths: %+v", s)
	}
	// The steady-state path must dominate the sampling windows.
	total := s.ShortcutLookups + s.TraditionalLookups
	if s.ShortcutLookups < total/10 && s.TraditionalLookups < total/10 {
		t.Fatalf("no dominant path emerged: %+v", s)
	}
}

func TestAdaptiveRoutingFallsBackWhenStale(t *testing.T) {
	tbl := newTable(t, Config{AdaptiveRouting: true, PollInterval: time.Hour})
	for k := uint64(1); k <= 20000; k++ {
		tbl.Insert(k, k)
	}
	if tbl.InSync() {
		t.Skip("table unexpectedly in sync")
	}
	for k := uint64(1); k <= 20000; k++ {
		if v, ok := tbl.Lookup(k); !ok || v != k {
			t.Fatalf("stale adaptive Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if s := tbl.Stats(); s.ShortcutLookups != 0 {
		t.Fatalf("stale shortcut used %d times", s.ShortcutLookups)
	}
}

func TestMergingRepliesThroughShortcut(t *testing.T) {
	// With merging enabled, deletes trigger merges and halvings that the
	// mapper must replay; lookups through the shortcut stay correct
	// through grow-then-shrink cycles.
	tbl := newTable(t, Config{EH: eh.Config{MergeLoadFactor: 0.1}})
	const n = 30000
	for k := uint64(1); k <= n; k++ {
		tbl.Insert(k, k)
	}
	gdGrown := tbl.EH().GlobalDepth()
	for k := uint64(1); k <= n; k++ {
		if k%5 != 0 {
			if !tbl.Delete(k) {
				t.Fatalf("Delete(%d) failed", k)
			}
		}
	}
	if tbl.EH().Merges == 0 {
		t.Fatal("no merges under 80% deletion")
	}
	if !tbl.WaitSync(10 * time.Second) {
		t.Fatalf("never synced after merges: trad=%d sc=%d",
			tbl.TradVersion(), tbl.ShortcutVersion())
	}
	if tbl.EH().GlobalDepth() >= gdGrown {
		t.Logf("directory did not halve (gd %d); acceptable if depth histogram blocks it", gdGrown)
	}
	for k := uint64(1); k <= n; k++ {
		v, ok := tbl.Lookup(k)
		if k%5 == 0 && (!ok || v != k) {
			t.Fatalf("survivor %d = %d,%v", k, v, ok)
		}
		if k%5 != 0 && ok {
			t.Fatalf("deleted key %d visible", k)
		}
	}
}

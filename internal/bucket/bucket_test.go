package bucket

import (
	"testing"
	"testing/quick"

	"vmshortcut/internal/hashfn"
)

func newBucket() Bucket {
	page := make([]byte, 4096)
	b := View(page)
	b.Reset(0)
	return b
}

func TestInsertLookup(t *testing.T) {
	b := newBucket()
	keys := []uint64{1, 7, 42, 1 << 40, ^uint64(0)}
	for i, k := range keys {
		if !b.Insert(k, uint64(i)*10) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if b.Count() != len(keys) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(keys))
	}
	for i, k := range keys {
		v, ok := b.Lookup(k)
		if !ok || v != uint64(i)*10 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := b.Lookup(999); ok {
		t.Fatal("absent key found")
	}
}

func TestZeroKey(t *testing.T) {
	b := newBucket()
	if _, ok := b.Lookup(0); ok {
		t.Fatal("zero key present in empty bucket")
	}
	if !b.Insert(0, 77) {
		t.Fatal("Insert(0) failed")
	}
	if v, ok := b.Lookup(0); !ok || v != 77 {
		t.Fatalf("Lookup(0) = %d,%v", v, ok)
	}
	if b.Count() != 1 {
		t.Fatalf("Count = %d", b.Count())
	}
	// Upsert must not bump the count.
	b.Insert(0, 78)
	if v, _ := b.Lookup(0); v != 78 || b.Count() != 1 {
		t.Fatal("zero-key upsert broken")
	}
	if !b.Delete(0) {
		t.Fatal("Delete(0) failed")
	}
	if _, ok := b.Lookup(0); ok || b.Count() != 0 {
		t.Fatal("zero key survived delete")
	}
	if b.Delete(0) {
		t.Fatal("second Delete(0) should fail")
	}
}

func TestUpsertKeepsCount(t *testing.T) {
	b := newBucket()
	b.Insert(5, 1)
	b.Insert(5, 2)
	if b.Count() != 1 {
		t.Fatalf("Count = %d after upsert", b.Count())
	}
	if v, _ := b.Lookup(5); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

func TestFillToCapacity(t *testing.T) {
	b := newBucket()
	var k uint64
	inserted := 0
	for k = 1; inserted < Capacity-1; k++ {
		if b.Insert(k, k) {
			inserted++
		} else {
			t.Fatalf("Insert failed at %d/%d", inserted, Capacity)
		}
	}
	b.Insert(0, 0)
	inserted++
	if b.Count() != Capacity || !b.Full() {
		t.Fatalf("Count = %d, Full = %v", b.Count(), b.Full())
	}
	if b.Insert(k+1, 1) {
		t.Fatal("Insert into full bucket should fail")
	}
	// Upsert of an existing key must still succeed when full.
	if !b.Insert(1, 999) {
		t.Fatal("upsert into full bucket should succeed")
	}
	if v, _ := b.Lookup(1); v != 999 {
		t.Fatal("upsert lost value")
	}
	// All entries must still be findable at capacity (wrap-around probes).
	for i := uint64(1); i < k; i++ {
		if _, ok := b.Lookup(i); !ok {
			t.Fatalf("key %d lost at capacity", i)
		}
	}
}

func TestDeleteBackwardShift(t *testing.T) {
	b := newBucket()
	// Fill densely so clusters form, then delete half and verify the rest.
	const n = 200
	for k := uint64(1); k <= n; k++ {
		b.Insert(k, k*2)
	}
	for k := uint64(1); k <= n; k += 2 {
		if !b.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	for k := uint64(1); k <= n; k++ {
		v, ok := b.Lookup(k)
		if k%2 == 1 {
			if ok {
				t.Fatalf("deleted key %d still present", k)
			}
		} else if !ok || v != k*2 {
			t.Fatalf("surviving key %d broken: %d,%v", k, v, ok)
		}
	}
	if b.Count() != n/2 {
		t.Fatalf("Count = %d, want %d", b.Count(), n/2)
	}
	// Reinsertion into freed space must work.
	for k := uint64(1); k <= n; k += 2 {
		if !b.Insert(k, k+1) {
			t.Fatalf("reinsert %d failed", k)
		}
	}
	if b.Count() != n {
		t.Fatalf("Count = %d after reinsert", b.Count())
	}
}

func TestForEachVisitsAll(t *testing.T) {
	b := newBucket()
	want := map[uint64]uint64{0: 5, 3: 6, 9: 7, 1 << 50: 8}
	for k, v := range want {
		b.Insert(k, v)
	}
	got := map[uint64]uint64{}
	b.ForEach(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %d = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	visits := 0
	b.ForEach(func(k, v uint64) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("early stop visited %d", visits)
	}
}

func TestResetClears(t *testing.T) {
	b := newBucket()
	b.Insert(1, 2)
	b.Insert(0, 3)
	b.Reset(7)
	if b.Count() != 0 || b.LocalDepth() != 7 {
		t.Fatalf("after Reset: count=%d depth=%d", b.Count(), b.LocalDepth())
	}
	if _, ok := b.Lookup(1); ok {
		t.Fatal("entry survived Reset")
	}
}

func TestSplitInto(t *testing.T) {
	b := newBucket()
	b.SetLocalDepth(2)
	const n = 80
	for k := uint64(0); k < n; k++ {
		b.Insert(k, k+1000)
	}
	d0, d1 := newBucket(), newBucket()
	n0, n1 := b.SplitInto(d0, d1)
	if n0+n1 != n {
		t.Fatalf("split lost entries: %d + %d != %d", n0, n1, n)
	}
	if d0.LocalDepth() != 3 || d1.LocalDepth() != 3 {
		t.Fatalf("child depths = %d, %d, want 3", d0.LocalDepth(), d1.LocalDepth())
	}
	for k := uint64(0); k < n; k++ {
		bit := hashfn.SplitBit(hashfn.Hash(k), 2)
		dst := d0
		other := d1
		if bit == 1 {
			dst, other = d1, d0
		}
		if v, ok := dst.Lookup(k); !ok || v != k+1000 {
			t.Fatalf("key %d missing from split side %d", k, bit)
		}
		if _, ok := other.Lookup(k); ok {
			t.Fatalf("key %d leaked to wrong side", k)
		}
	}
}

func TestLocalDepthPersistsInPage(t *testing.T) {
	page := make([]byte, 4096)
	View(page).Reset(5)
	// A second view over the same page must observe the same header.
	if View(page).LocalDepth() != 5 {
		t.Fatal("local depth not stored in the page itself")
	}
}

// TestQuickModelEquivalence drives random operation sequences against a
// map model.
func TestQuickModelEquivalence(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16 // small key space to force collisions and clusters
		Val  uint64
	}
	check := func(ops []op) bool {
		b := newBucket()
		model := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o.Key % 512)
			switch o.Kind % 3 {
			case 0:
				if len(model) >= Capacity {
					continue
				}
				if !b.Insert(k, o.Val) {
					return false
				}
				model[k] = o.Val
			case 1:
				v, ok := b.Lookup(k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 2:
				ok := b.Delete(k)
				_, mok := model[k]
				if ok != mok {
					return false
				}
				delete(model, k)
			}
			if b.Count() != len(model) {
				return false
			}
		}
		for k, v := range model {
			got, ok := b.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBucketInsert(b *testing.B) {
	bk := newBucket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if bk.Count() > 80 {
			bk.Reset(0)
		}
		bk.Insert(uint64(i)|1, 1)
	}
}

func BenchmarkBucketLookup(b *testing.B) {
	bk := newBucket()
	for k := uint64(1); k <= 80; k++ {
		bk.Insert(k, k)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bk.Lookup(uint64(i%80) + 1)
	}
}

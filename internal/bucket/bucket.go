// Package bucket implements the page-sized hash bucket that extendible
// hashing indexes (paper §4: fixed-size leaves of 4 KB, open addressing /
// linear probing within each bucket).
//
// A bucket is a raw view over exactly one memory page, so it can live in
// pool pages and be aliased by shortcut slots. The layout (in 8-byte
// words) is:
//
//	word 0: local depth
//	word 1: entry count (including the zero key)
//	word 2: zero-key-present flag
//	word 3: zero-key value
//	words 4..511: 254 open-addressed (key, value) pairs
//
// A key word of 0 marks an empty probe slot; the real key 0 is stored in
// the header instead, the classic open-addressing trick. Since the header
// lives inside the page, a bucket split needs no side lookups and aliased
// views through shortcuts always see a consistent local depth.
package bucket

import (
	"fmt"
	"unsafe"

	"vmshortcut/internal/hashfn"
	"vmshortcut/internal/sys"
)

const (
	wordsPerPage = 512 // 4096 / 8
	headerWords  = 4
	// ProbeSlots is the number of open-addressed (key,value) pairs.
	ProbeSlots = (wordsPerPage - headerWords) / 2 // 254
	// Capacity is the maximum number of entries, including key 0.
	Capacity = ProbeSlots + 1 // 255
)

// Bucket is a view over one page. It holds no state of its own; copying it
// is free and all methods operate on the underlying page.
type Bucket struct {
	w []uint64
}

// View wraps a 4 KB page as a bucket. The page must be 8-byte aligned
// (page-aligned mappings and Go heap allocations both are).
func View(page []byte) Bucket {
	if len(page) < wordsPerPage*8 {
		panic(fmt.Sprintf("bucket: page of %d bytes is too small", len(page)))
	}
	return Bucket{w: unsafe.Slice((*uint64)(unsafe.Pointer(&page[0])), wordsPerPage)}
}

// ViewAddr wraps the mapped page at addr as a bucket — the hot path used
// by index lookups, where addr comes from a pool window or shortcut slot.
func ViewAddr(addr uintptr) Bucket {
	return Bucket{w: sys.Words(addr, wordsPerPage)}
}

// Reset zeroes the bucket and sets its local depth.
func (b Bucket) Reset(localDepth uint) {
	for i := range b.w {
		b.w[i] = 0
	}
	b.w[0] = uint64(localDepth)
}

// LocalDepth returns the bucket's local depth.
func (b Bucket) LocalDepth() uint { return uint(b.w[0]) }

// SetLocalDepth updates the bucket's local depth.
func (b Bucket) SetLocalDepth(d uint) { b.w[0] = uint64(d) }

// Count returns the number of stored entries.
func (b Bucket) Count() int { return int(b.w[1]) }

// Full reports whether no further entry fits.
func (b Bucket) Full() bool { return b.Count() >= Capacity }

// LoadFactor returns Count / Capacity.
func (b Bucket) LoadFactor() float64 { return float64(b.Count()) / float64(Capacity) }

// Insert upserts (key, value). It returns ok=false when the bucket is full
// and the key is not already present — the caller must then split.
func (b Bucket) Insert(key, value uint64) bool {
	if key == 0 {
		if b.w[2] == 0 {
			if b.Count() >= Capacity {
				return false
			}
			b.w[2] = 1
			b.w[1]++
		}
		b.w[3] = value
		return true
	}
	i := int(hashfn.Hash2(key) % ProbeSlots)
	for probes := 0; probes < ProbeSlots; probes++ {
		k := b.w[headerWords+2*i]
		if k == key {
			b.w[headerWords+2*i+1] = value
			return true
		}
		if k == 0 {
			if b.Count() >= Capacity {
				return false
			}
			b.w[headerWords+2*i] = key
			b.w[headerWords+2*i+1] = value
			b.w[1]++
			return true
		}
		i++
		if i == ProbeSlots {
			i = 0
		}
	}
	return false
}

// Lookup returns the value stored for key.
func (b Bucket) Lookup(key uint64) (uint64, bool) {
	if key == 0 {
		if b.w[2] == 0 {
			return 0, false
		}
		return b.w[3], true
	}
	i := int(hashfn.Hash2(key) % ProbeSlots)
	for probes := 0; probes < ProbeSlots; probes++ {
		k := b.w[headerWords+2*i]
		if k == key {
			return b.w[headerWords+2*i+1], true
		}
		if k == 0 {
			return 0, false
		}
		i++
		if i == ProbeSlots {
			i = 0
		}
	}
	return 0, false
}

// Delete removes key, compacting the probe sequence with backward-shift
// deletion so no tombstones accumulate. It reports whether the key was
// present.
func (b Bucket) Delete(key uint64) bool {
	if key == 0 {
		if b.w[2] == 0 {
			return false
		}
		b.w[2], b.w[3] = 0, 0
		b.w[1]--
		return true
	}
	i := int(hashfn.Hash2(key) % ProbeSlots)
	found := -1
	for probes := 0; probes < ProbeSlots; probes++ {
		k := b.w[headerWords+2*i]
		if k == key {
			found = i
			break
		}
		if k == 0 {
			return false
		}
		i++
		if i == ProbeSlots {
			i = 0
		}
	}
	if found < 0 {
		return false
	}
	// Backward-shift: walk the cluster after the hole; pull back any entry
	// whose ideal slot lies cyclically outside (hole, current].
	hole := found
	j := found
	for {
		j++
		if j == ProbeSlots {
			j = 0
		}
		k := b.w[headerWords+2*j]
		if k == 0 {
			break
		}
		ideal := int(hashfn.Hash2(k) % ProbeSlots)
		inHoleToJ := false
		if hole <= j {
			inHoleToJ = ideal > hole && ideal <= j
		} else {
			inHoleToJ = ideal > hole || ideal <= j
		}
		if !inHoleToJ {
			b.w[headerWords+2*hole] = k
			b.w[headerWords+2*hole+1] = b.w[headerWords+2*j+1]
			hole = j
		}
	}
	b.w[headerWords+2*hole] = 0
	b.w[headerWords+2*hole+1] = 0
	b.w[1]--
	return true
}

// ForEach calls fn for every stored entry until fn returns false.
func (b Bucket) ForEach(fn func(key, value uint64) bool) {
	if b.w[2] != 0 {
		if !fn(0, b.w[3]) {
			return
		}
	}
	for i := 0; i < ProbeSlots; i++ {
		k := b.w[headerWords+2*i]
		if k != 0 {
			if !fn(k, b.w[headerWords+2*i+1]) {
				return
			}
		}
	}
}

// SplitInto rehashes every entry of b into dst0 or dst1 according to hash
// bit number ld (the bucket's current local depth, counted from the MSB):
// entries whose bit is 0 go to dst0, others to dst1. Both destinations
// must be empty buckets; their local depth is set to ld+1, and b is left
// untouched. It returns the destination counts.
func (b Bucket) SplitInto(dst0, dst1 Bucket) (n0, n1 int) {
	ld := b.LocalDepth()
	dst0.Reset(ld + 1)
	dst1.Reset(ld + 1)
	b.ForEach(func(k, v uint64) bool {
		if hashfn.SplitBit(hashfn.Hash(k), ld) == 0 {
			dst0.Insert(k, v)
		} else {
			dst1.Insert(k, v)
		}
		return true
	})
	return dst0.Count(), dst1.Count()
}

package ht

import (
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	tbl := New(Config{})
	const n = 10000
	for k := uint64(0); k < n; k++ {
		tbl.Insert(k, k*7)
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tbl.Lookup(k)
		if !ok || v != k*7 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tbl.Lookup(n + 5); ok {
		t.Fatal("phantom key")
	}
}

func TestZeroKey(t *testing.T) {
	tbl := New(Config{})
	if _, ok := tbl.Lookup(0); ok {
		t.Fatal("zero key in empty table")
	}
	tbl.Insert(0, 9)
	if v, ok := tbl.Lookup(0); !ok || v != 9 {
		t.Fatalf("Lookup(0) = %d,%v", v, ok)
	}
	tbl.Insert(0, 10)
	if tbl.Len() != 1 {
		t.Fatal("zero-key upsert grew the table")
	}
	if !tbl.Delete(0) || tbl.Delete(0) {
		t.Fatal("zero-key delete misbehaves")
	}
}

func TestUpsert(t *testing.T) {
	tbl := New(Config{})
	tbl.Insert(3, 1)
	tbl.Insert(3, 2)
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if v, _ := tbl.Lookup(3); v != 2 {
		t.Fatalf("v = %d", v)
	}
}

func TestDoublingStaircase(t *testing.T) {
	tbl := New(Config{})
	startSlots := tbl.Slots()
	if startSlots != 256 {
		t.Fatalf("initial slots = %d, want 256 (4 KB)", startSlots)
	}
	for k := uint64(0); k < 100000; k++ {
		tbl.Insert(k+1, k)
	}
	if tbl.Rehashes == 0 {
		t.Fatal("no rehashes happened")
	}
	if tbl.Slots()&(tbl.Slots()-1) != 0 {
		t.Fatal("slot count not a power of two")
	}
	// Load factor must respect the threshold after growth.
	if lf := float64(tbl.Len()) / float64(tbl.Slots()); lf > 0.35 {
		t.Fatalf("load factor %f exceeds threshold", lf)
	}
	// MovedEntries across all rehashes ≈ sum of table sizes at rehash
	// time; it must be at least Len (each entry moved at least once).
	if tbl.MovedEntries < tbl.Len() {
		t.Fatalf("MovedEntries = %d < Len = %d", tbl.MovedEntries, tbl.Len())
	}
}

func TestDeleteBackwardShift(t *testing.T) {
	tbl := New(Config{})
	const n = 3000
	for k := uint64(1); k <= n; k++ {
		tbl.Insert(k, k)
	}
	for k := uint64(1); k <= n; k += 2 {
		if !tbl.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tbl.Delete(n + 1) {
		t.Fatal("deleted absent key")
	}
	for k := uint64(1); k <= n; k++ {
		_, ok := tbl.Lookup(k)
		if k%2 == 1 && ok {
			t.Fatalf("deleted key %d present", k)
		}
		if k%2 == 0 && !ok {
			t.Fatalf("key %d lost after neighbour deletes", k)
		}
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	tbl := New(Config{})
	model := map[uint64]uint64{}
	check := func(kRaw uint16, v uint64, op uint8) bool {
		k := uint64(kRaw % 2048)
		switch op % 4 {
		case 0, 1:
			tbl.Insert(k, v)
			model[k] = v
		case 2:
			got, ok := tbl.Lookup(k)
			want, mok := model[k]
			if ok != mok || (ok && got != want) {
				return false
			}
		case 3:
			_, mok := model[k]
			if tbl.Delete(k) != mok {
				return false
			}
			delete(model, k)
		}
		return tbl.Len() == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

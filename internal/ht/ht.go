// Package ht implements the paper's Hash Table (HT) baseline (§4.2): a
// single open-addressing / linear-probing hash table with n slots. If the
// load factor exceeds the configured threshold, a table of size 2n is
// allocated and ALL entries are rehashed over in one go — producing the
// staircase-shaped insertion profile of Figure 7a.
package ht

import (
	"fmt"

	"vmshortcut/internal/hashfn"
)

// slotBytes is the size of one (key, value) slot.
const slotBytes = 16

// DefaultInitialBytes gives the table the paper's starting footprint of a
// single 4 KB page (256 slots).
const DefaultInitialBytes = 4096

// Config tunes a Table. The zero value selects the paper's parameters.
type Config struct {
	// MaxLoadFactor triggers the doubling rehash. Default 0.35.
	MaxLoadFactor float64
	// InitialBytes sizes the first table. Default 4096 (one page).
	InitialBytes int
}

func (c *Config) fill() {
	if c.MaxLoadFactor <= 0 || c.MaxLoadFactor >= 1 {
		c.MaxLoadFactor = 0.35
	}
	if c.InitialBytes < slotBytes*2 {
		c.InitialBytes = DefaultInitialBytes
	}
}

// Table is an open-addressing hash table mapping uint64 keys to uint64
// values. Not safe for concurrent use.
type Table struct {
	keys    []uint64
	vals    []uint64
	mask    uint64
	count   int
	zeroSet bool
	zeroVal uint64
	maxFill int
	cfg     Config

	// Rehashes counts full-table rehashes (each one is a Figure 7a step).
	Rehashes int
	// MovedEntries counts entries moved by rehashing.
	MovedEntries int
}

// New creates an empty table.
func New(cfg Config) *Table {
	cfg.fill()
	n := nextPow2(cfg.InitialBytes / slotBytes)
	t := &Table{cfg: cfg}
	t.grow(n)
	return t
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.count }

// Slots returns the current table capacity in slots.
func (t *Table) Slots() int { return len(t.keys) }

// grow allocates a table of n slots and rehashes everything into it.
func (t *Table) grow(n int) {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, n)
	t.vals = make([]uint64, n)
	t.mask = uint64(n - 1)
	t.maxFill = int(t.cfg.MaxLoadFactor * float64(n))
	if t.maxFill < 1 {
		t.maxFill = 1
	}
	if oldKeys != nil {
		t.Rehashes++
		for i, k := range oldKeys {
			if k != 0 {
				t.place(k, oldVals[i])
				t.MovedEntries++
			}
		}
	}
}

// place inserts a key known to be absent, without occupancy checks.
func (t *Table) place(key, value uint64) {
	i := hashfn.Hash(key) & t.mask
	for t.keys[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.keys[i] = key
	t.vals[i] = value
}

// Insert upserts (key, value), doubling the table when the load factor
// threshold is exceeded.
func (t *Table) Insert(key, value uint64) error {
	if key == 0 {
		if !t.zeroSet {
			t.zeroSet = true
			t.count++
		}
		t.zeroVal = value
		return nil
	}
	i := hashfn.Hash(key) & t.mask
	for t.keys[i] != 0 {
		if t.keys[i] == key {
			t.vals[i] = value
			return nil
		}
		i = (i + 1) & t.mask
	}
	if t.count+1 > t.maxFill {
		t.grow(len(t.keys) * 2)
		t.place(key, value)
	} else {
		t.keys[i] = key
		t.vals[i] = value
	}
	t.count++
	return nil
}

// InsertBatch upserts every (keys[i], values[i]) pair. Semantically
// identical to a loop of Insert calls; hot loading loops use it to
// amortize per-call dispatch overhead.
func (t *Table) InsertBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("ht: InsertBatch: %d keys, %d values", len(keys), len(values))
	}
	for i, k := range keys {
		if err := t.Insert(k, values[i]); err != nil {
			return err
		}
	}
	return nil
}

// LookupBatch looks up every key, writing values into out (which must
// have length at least len(keys)) and returning per-key presence.
func (t *Table) LookupBatch(keys []uint64, out []uint64) []bool {
	ok := make([]bool, len(keys))
	for i, k := range keys {
		out[i], ok[i] = t.Lookup(k)
	}
	return ok
}

// DeleteBatch removes every key, returning per-key presence; semantically
// a loop of Delete calls with the per-call overhead amortized.
func (t *Table) DeleteBatch(keys []uint64) []bool {
	ok := make([]bool, len(keys))
	for i, k := range keys {
		ok[i] = t.Delete(k)
	}
	return ok
}

// Range calls fn for every stored entry until fn returns false. Iteration
// order is unspecified. fn must not mutate the table.
func (t *Table) Range(fn func(key, value uint64) bool) {
	if t.zeroSet && !fn(0, t.zeroVal) {
		return
	}
	for i, k := range t.keys {
		if k != 0 && !fn(k, t.vals[i]) {
			return
		}
	}
}

// Lookup returns the value stored for key.
func (t *Table) Lookup(key uint64) (uint64, bool) {
	if key == 0 {
		return t.zeroVal, t.zeroSet
	}
	i := hashfn.Hash(key) & t.mask
	for {
		k := t.keys[i]
		if k == key {
			return t.vals[i], true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// Delete removes key with backward-shift compaction and reports whether it
// was present.
func (t *Table) Delete(key uint64) bool {
	if key == 0 {
		if !t.zeroSet {
			return false
		}
		t.zeroSet = false
		t.zeroVal = 0
		t.count--
		return true
	}
	i := hashfn.Hash(key) & t.mask
	for {
		k := t.keys[i]
		if k == 0 {
			return false
		}
		if k == key {
			break
		}
		i = (i + 1) & t.mask
	}
	hole := i
	j := i
	for {
		j = (j + 1) & t.mask
		k := t.keys[j]
		if k == 0 {
			break
		}
		ideal := hashfn.Hash(k) & t.mask
		var inHoleToJ bool
		if hole <= j {
			inHoleToJ = ideal > hole && ideal <= j
		} else {
			inHoleToJ = ideal > hole || ideal <= j
		}
		if !inHoleToJ {
			t.keys[hole] = k
			t.vals[hole] = t.vals[j]
			hole = j
		}
	}
	t.keys[hole] = 0
	t.vals[hole] = 0
	t.count--
	return true
}

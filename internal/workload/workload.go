// Package workload generates the deterministic workloads of the paper's
// evaluation: uniform random 64-bit keys for insertion (Figure 7a), random
// hit-only lookup streams (Figure 7b), the wide-inner-node access streams
// of the microbenchmarks (Table 1, Figures 2 and 4), and the wave-shaped
// mixed workload of Figure 8.
//
// All generators are seeded and reproducible. Distinct keys are produced
// by passing a counter through an invertible 64-bit mixer, so key i is
// unique by construction — no rejection sampling, no set of seen keys.
package workload

// RNG is a splitmix64 pseudo-random generator: tiny, fast, and good enough
// for uniform workload generation.
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// mix64 is an invertible finalizer (same structure as splitmix64's): used
// to derive unique uniform-looking keys from a counter.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Key returns the i-th key of the keyspace identified by seed. Keys are
// pairwise distinct for distinct i (mix64 is a bijection) and uniformly
// spread over 64 bits.
func Key(seed uint64, i uint64) uint64 {
	return mix64(i + 1 + seed*0x9E3779B97F4A7C15)
}

// Keys materializes keys [0, n) of a keyspace. For paper-scale runs prefer
// streaming via Key to avoid the 8n-byte slice.
func Keys(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = Key(seed, uint64(i))
	}
	return out
}

// LookupStream yields count indices in [0, n) for hit-only lookups
// (Figure 7b: "100M random lookups (only hits)"): pass each index through
// Key to obtain an existing key.
func LookupStream(seed uint64, n int, count int, fn func(idx int)) {
	r := NewRNG(seed ^ 0xABCD)
	for i := 0; i < count; i++ {
		fn(r.Intn(n))
	}
}

// Wave describes one burst of the Figure 8 mixed workload: Accesses
// operations of which the first InsertFraction are insertions and the rest
// are hit-only lookups.
type Wave struct {
	Accesses       int
	InsertFraction float64
}

// MixedOp is one operation of a mixed workload.
type MixedOp struct {
	Insert bool
	Key    uint64
	Value  uint64
}

// MixedWaves streams the Figure 8 workload: the index is bulk-loaded with
// loaded entries already; waves are fired in order, each inserting its
// first InsertFraction·Accesses fresh keys and then looking up uniformly
// random existing keys. fn receives every operation in order.
func MixedWaves(seed uint64, loaded int, waves []Wave, fn func(op MixedOp)) {
	r := NewRNG(seed ^ 0x5117)
	inserted := loaded
	for _, w := range waves {
		nIns := int(float64(w.Accesses) * w.InsertFraction)
		for i := 0; i < w.Accesses; i++ {
			if i < nIns {
				k := Key(seed, uint64(inserted))
				fn(MixedOp{Insert: true, Key: k, Value: uint64(inserted)})
				inserted++
			} else {
				idx := r.Intn(inserted)
				fn(MixedOp{Key: Key(seed, uint64(idx)), Value: uint64(idx)})
			}
		}
	}
}

// SlotStream yields count uniformly random slot numbers in [0, slots) —
// the random inner-node access pattern of Table 1 and Figures 2/4.
func SlotStream(seed uint64, slots int, count int, fn func(slot int)) {
	r := NewRNG(seed ^ 0xF00D)
	for i := 0; i < count; i++ {
		fn(r.Intn(slots))
	}
}

package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	a = NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestKeysAreDistinct(t *testing.T) {
	const n = 200000
	seen := make(map[uint64]bool, n)
	for i := uint64(0); i < n; i++ {
		k := Key(1, i)
		if seen[k] {
			t.Fatalf("duplicate key at index %d", i)
		}
		seen[k] = true
	}
}

func TestQuickKeyBijective(t *testing.T) {
	check := func(i, j uint64, seed uint64) bool {
		if i == j {
			return true
		}
		return Key(seed, i) != Key(seed, j)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestKeysMatchesKey(t *testing.T) {
	ks := Keys(9, 100)
	for i, k := range ks {
		if k != Key(9, uint64(i)) {
			t.Fatalf("Keys[%d] mismatch", i)
		}
	}
}

func TestKeysSpreadAcrossPrefixes(t *testing.T) {
	// Directory indexing uses the hash MSBs, but key MSBs spreading is a
	// cheap sanity check on uniformity.
	counts := [16]int{}
	for i := uint64(0); i < 16000; i++ {
		counts[Key(2, i)>>60]++
	}
	for b, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("prefix %x count %d far from uniform (1000)", b, c)
		}
	}
}

func TestLookupStreamHitsOnly(t *testing.T) {
	n := 1000
	count := 0
	LookupStream(5, n, 5000, func(idx int) {
		if idx < 0 || idx >= n {
			t.Fatalf("index %d out of range", idx)
		}
		count++
	})
	if count != 5000 {
		t.Fatalf("stream yielded %d ops", count)
	}
}

func TestMixedWavesShape(t *testing.T) {
	waves := []Wave{{Accesses: 1000, InsertFraction: 0.01}, {Accesses: 1000, InsertFraction: 0.01}}
	var ops []MixedOp
	MixedWaves(11, 500, waves, func(op MixedOp) { ops = append(ops, op) })
	if len(ops) != 2000 {
		t.Fatalf("got %d ops", len(ops))
	}
	// First 10 of each wave are inserts, the rest lookups.
	for w := 0; w < 2; w++ {
		base := w * 1000
		for i := 0; i < 1000; i++ {
			op := ops[base+i]
			if i < 10 && !op.Insert {
				t.Fatalf("wave %d op %d should be insert", w, i)
			}
			if i >= 10 && op.Insert {
				t.Fatalf("wave %d op %d should be lookup", w, i)
			}
		}
	}
	// Inserted keys continue the bulk-loaded keyspace.
	if ops[0].Key != Key(11, 500) {
		t.Fatal("first inserted key must continue the keyspace")
	}
	// Lookup keys must reference already-inserted indices.
	for _, op := range ops {
		if !op.Insert && op.Value >= 520 {
			t.Fatalf("lookup references not-yet-inserted index %d", op.Value)
		}
	}
}

func TestSlotStreamRange(t *testing.T) {
	SlotStream(3, 64, 1000, func(s int) {
		if s < 0 || s >= 64 {
			t.Fatalf("slot %d out of range", s)
		}
	})
}

package workload

import (
	"math"
	"testing"
)

func TestZipfianRangeAndSkew(t *testing.T) {
	const n = 10000
	z := NewZipfian(7, n, 0.99)
	counts := map[uint64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k >= n {
			t.Fatalf("zipf key %d out of range", k)
		}
		counts[k]++
	}
	// Skew: the hottest key must receive far more than uniform share, and
	// the head must dominate.
	uniform := draws / n
	if counts[0] < uniform*20 {
		t.Fatalf("key 0 drawn %d times; uniform share is %d — no skew?", counts[0], uniform)
	}
	head := 0
	for k := uint64(0); k < 100; k++ {
		head += counts[k]
	}
	if float64(head) < 0.3*draws {
		t.Fatalf("hottest 1%% of keys got only %.1f%% of draws", 100*float64(head)/draws)
	}
}

func TestZipfianDeterminism(t *testing.T) {
	a, b := NewZipfian(3, 1000, 0.99), NewZipfian(3, 1000, 0.99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZipfianBadThetaFallsBack(t *testing.T) {
	z := NewZipfian(1, 100, 5.0) // invalid theta -> 0.99
	if math.IsNaN(float64(z.Next())) {
		t.Fatal("NaN from fallback theta")
	}
}

func TestYCSBMixProportions(t *testing.T) {
	const count = 100000
	for _, mix := range Mixes {
		got := map[OpKind]int{}
		YCSB(9, mix, 10000, count, func(op YCSBOp) { got[op.Kind]++ })
		total := 0
		for _, c := range got {
			total += c
		}
		if total != count {
			t.Fatalf("%s: generated %d ops", mix.Name, total)
		}
		checks := []struct {
			kind OpKind
			want float64
		}{
			{OpRead, mix.Read}, {OpUpdate, mix.Update},
			{OpInsert, mix.Insert}, {OpReadModifyWrite, mix.RMW},
		}
		for _, c := range checks {
			frac := float64(got[c.kind]) / count
			if math.Abs(frac-c.want) > 0.02 {
				t.Fatalf("%s: kind %d fraction %.3f, want %.3f", mix.Name, c.kind, frac, c.want)
			}
		}
	}
}

func TestYCSBReadsTargetLoadedKeys(t *testing.T) {
	const loaded = 5000
	maxInsert := uint64(loaded)
	YCSB(4, MixD, loaded, 50000, func(op YCSBOp) {
		switch op.Kind {
		case OpInsert:
			if op.KeyIndex != maxInsert {
				t.Fatalf("insert index %d, want %d (sequential)", op.KeyIndex, maxInsert)
			}
			maxInsert++
		default:
			if op.KeyIndex >= maxInsert {
				t.Fatalf("read of not-yet-inserted index %d", op.KeyIndex)
			}
		}
	})
	if maxInsert == loaded {
		t.Fatal("mix D generated no inserts")
	}
}

func TestYCSBZipfReadsAreSkewed(t *testing.T) {
	counts := map[uint64]int{}
	YCSB(5, MixC, 10000, 100000, func(op YCSBOp) { counts[op.KeyIndex]++ })
	if counts[0] < 1000 {
		t.Fatalf("mix C not skewed: key 0 read %d times", counts[0])
	}
}

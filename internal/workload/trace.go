package workload

// Trace replay: a minimal line-oriented operation log so real application
// traces (or synthetic ones from other tools) can be replayed against any
// index. Format, one op per line:
//
//	I <key> <value>   insert/upsert
//	L <key>           lookup
//	D <key>           delete
//	# ...             comment (ignored), as are blank lines
//
// Keys and values are decimal or 0x-prefixed hex uint64.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TraceOp is one parsed trace operation.
type TraceOp struct {
	Kind  byte // 'I', 'L', or 'D'
	Key   uint64
	Value uint64 // inserts only
}

// ReadTrace parses ops from r, calling fn for each. It stops at EOF or on
// the first malformed line (reported with its line number).
func ReadTrace(r io.Reader, fn func(op TraceOp) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, err := parseTraceLine(line)
		if err != nil {
			return fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		if err := fn(op); err != nil {
			return fmt.Errorf("trace line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

func parseTraceLine(line string) (TraceOp, error) {
	fields := strings.Fields(line)
	kind := strings.ToUpper(fields[0])
	switch kind {
	case "I":
		if len(fields) != 3 {
			return TraceOp{}, fmt.Errorf("insert needs key and value")
		}
		k, err := parseU64(fields[1])
		if err != nil {
			return TraceOp{}, err
		}
		v, err := parseU64(fields[2])
		if err != nil {
			return TraceOp{}, err
		}
		return TraceOp{Kind: 'I', Key: k, Value: v}, nil
	case "L", "D":
		if len(fields) != 2 {
			return TraceOp{}, fmt.Errorf("%s needs exactly one key", kind)
		}
		k, err := parseU64(fields[1])
		if err != nil {
			return TraceOp{}, err
		}
		return TraceOp{Kind: kind[0], Key: k}, nil
	}
	return TraceOp{}, fmt.Errorf("unknown op %q", fields[0])
}

func parseU64(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

// WriteTrace serializes ops to w in the trace format.
func WriteTrace(w io.Writer, ops []TraceOp) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		var err error
		switch op.Kind {
		case 'I':
			_, err = fmt.Fprintf(bw, "I %d %d\n", op.Key, op.Value)
		case 'L', 'D':
			_, err = fmt.Fprintf(bw, "%c %d\n", op.Kind, op.Key)
		default:
			err = fmt.Errorf("workload: unknown trace op %q", op.Kind)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

package workload

// YCSB-style operation mixes — the standard cloud-serving workloads used
// to exercise key-value indexes beyond the paper's uniform streams. The
// Zipfian request distribution follows the rejection-free incremental
// method of Gray et al. ("Quickly generating billion-record synthetic
// databases", SIGMOD 1994), the same generator YCSB itself uses.

import (
	"math"
	"strings"
)

// Zipfian draws keys in [0, n) with the classic YCSB skew
// (theta = 0.99 by default: a few keys dominate).
type Zipfian struct {
	rng      *RNG
	n        uint64
	theta    float64
	alpha    float64
	zetan    float64
	eta      float64
	zeta2    float64
	halfPowT float64
}

// NewZipfian creates a generator over [0, n) with skew theta in (0, 1).
func NewZipfian(seed uint64, n int, theta float64) *Zipfian {
	if theta <= 0 || theta >= 1 {
		theta = 0.99
	}
	z := &Zipfian{rng: NewRNG(seed), n: uint64(n), theta: theta}
	z.zetan = zeta(uint64(n), theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	z.halfPowT = 1 + math.Pow(0.5, theta)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next key index.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.halfPowT {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// OpKind is a YCSB operation type.
type OpKind uint8

// Operation kinds of the standard mixes.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpReadModifyWrite
)

// Mix describes an operation mix as proportions summing to 1.
type Mix struct {
	Name   string
	Read   float64
	Update float64
	Insert float64
	RMW    float64
	// Zipf selects the skewed request distribution (YCSB default);
	// false = uniform.
	Zipf bool
}

// Standard YCSB core workload mixes over a key-value store.
var (
	MixA = Mix{Name: "A", Read: 0.5, Update: 0.5, Zipf: true}
	MixB = Mix{Name: "B", Read: 0.95, Update: 0.05, Zipf: true}
	MixC = Mix{Name: "C", Read: 1.0, Zipf: true}
	MixD = Mix{Name: "D", Read: 0.95, Insert: 0.05} // latest-ish: uniform over recent
	MixF = Mix{Name: "F", Read: 0.5, RMW: 0.5, Zipf: true}
)

// Mixes lists the implemented standard mixes.
var Mixes = []Mix{MixA, MixB, MixC, MixD, MixF}

// MixByName resolves a standard mix by its YCSB letter (case-insensitive:
// "A", "a", ...).
func MixByName(name string) (Mix, bool) {
	for _, m := range Mixes {
		if strings.EqualFold(m.Name, name) {
			return m, true
		}
	}
	return Mix{}, false
}

// YCSBOp is one generated operation. KeyIndex is an index into the loaded
// keyspace for reads/updates (resolve via Key), or the next fresh index
// for inserts.
type YCSBOp struct {
	Kind     OpKind
	KeyIndex uint64
}

// YCSBGen is a stateful generator of one YCSB operation stream —
// the streaming counterpart of YCSB for drivers that do not know the
// operation count up front (the duration-bounded load generator
// cmd/ehload runs one YCSBGen per connection). It is not safe for
// concurrent use; give each goroutine its own generator.
type YCSBGen struct {
	mix    Mix
	opRNG  *RNG
	keyRNG *RNG
	zipf   *Zipfian
	next   uint64
}

// NewYCSB creates a generator for mix over a store pre-loaded with loaded
// entries (loaded must be positive: reads need a non-empty keyspace).
// Inserts extend the keyspace; reads/updates draw from the currently
// loaded prefix (zipfian or uniform).
func NewYCSB(seed uint64, mix Mix, loaded int) *YCSBGen {
	g := &YCSBGen{
		mix:    mix,
		opRNG:  NewRNG(seed ^ 0xDADA),
		keyRNG: NewRNG(seed ^ 0xFEED),
		next:   uint64(loaded),
	}
	if mix.Zipf {
		g.zipf = NewZipfian(seed^0x21F, loaded, 0.99)
	}
	return g
}

// Loaded returns the current keyspace extent: the initial loaded count
// plus every insert generated so far.
func (g *YCSBGen) Loaded() uint64 { return g.next }

func (g *YCSBGen) draw() uint64 {
	if g.zipf != nil {
		k := g.zipf.Next()
		if k >= g.next {
			k = g.next - 1
		}
		return k
	}
	return g.keyRNG.Next() % g.next
}

// Next generates the next operation of the stream.
func (g *YCSBGen) Next() YCSBOp {
	r := g.opRNG.Float64()
	switch {
	case r < g.mix.Read:
		return YCSBOp{Kind: OpRead, KeyIndex: g.draw()}
	case r < g.mix.Read+g.mix.Update:
		return YCSBOp{Kind: OpUpdate, KeyIndex: g.draw()}
	case r < g.mix.Read+g.mix.Update+g.mix.Insert:
		op := YCSBOp{Kind: OpInsert, KeyIndex: g.next}
		g.next++
		return op
	default:
		return YCSBOp{Kind: OpReadModifyWrite, KeyIndex: g.draw()}
	}
}

// YCSB streams count operations of the mix over a store pre-loaded with
// loaded entries. Inserts extend the keyspace; reads/updates draw from the
// currently loaded prefix (zipfian or uniform).
func YCSB(seed uint64, mix Mix, loaded int, count int, fn func(op YCSBOp)) {
	g := NewYCSB(seed, mix, loaded)
	for i := 0; i < count; i++ {
		fn(g.Next())
	}
}

package workload

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadTraceBasics(t *testing.T) {
	in := `
# a comment
I 1 100
L 1
i 2 0x2a
d 2
L 0xdeadbeef
`
	var ops []TraceOp
	err := ReadTrace(strings.NewReader(in), func(op TraceOp) error {
		ops = append(ops, op)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	want := []TraceOp{
		{'I', 1, 100},
		{'L', 1, 0},
		{'I', 2, 42},
		{'D', 2, 0},
		{'L', 0xdeadbeef, 0},
	}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops", len(ops))
	}
	for i, op := range ops {
		if op != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, op, want[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"X 1",     // unknown op
		"I 1",     // missing value
		"L",       // missing key
		"L 1 2",   // extra field
		"I foo 1", // bad key
		"I 1 bar", // bad value
		"D 0xzz",  // bad hex
	}
	for _, in := range cases {
		err := ReadTrace(strings.NewReader(in), func(TraceOp) error { return nil })
		if err == nil {
			t.Fatalf("malformed line %q accepted", in)
		}
		if !strings.Contains(err.Error(), "line 1") {
			t.Fatalf("error lacks line number: %v", err)
		}
	}
}

func TestReadTraceCallbackErrorStops(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := ReadTrace(strings.NewReader("L 1\nL 2\nL 3"), func(TraceOp) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestQuickTraceRoundTrip(t *testing.T) {
	check := func(kinds []uint8, keys []uint64, vals []uint64) bool {
		n := len(kinds)
		if len(keys) < n {
			n = len(keys)
		}
		if len(vals) < n {
			n = len(vals)
		}
		ops := make([]TraceOp, 0, n)
		for i := 0; i < n; i++ {
			kind := []byte{'I', 'L', 'D'}[kinds[i]%3]
			op := TraceOp{Kind: kind, Key: keys[i]}
			if kind == 'I' {
				op.Value = vals[i]
			}
			ops = append(ops, op)
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, ops); err != nil {
			return false
		}
		var got []TraceOp
		if err := ReadTrace(&buf, func(op TraceOp) error {
			got = append(got, op)
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(ops) {
			return false
		}
		for i := range ops {
			if got[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTraceRejectsUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []TraceOp{{Kind: 'Q'}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

package fifo

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPushPopOrder(t *testing.T) {
	q := New[int]()
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestEmptyAndLen(t *testing.T) {
	q := New[string]()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("fresh queue should be empty")
	}
	q.Push("a")
	if q.Empty() || q.Len() != 1 {
		t.Fatal("queue with one element misreports")
	}
	q.Pop()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("drained queue misreports")
	}
}

func TestDrain(t *testing.T) {
	q := New[int]()
	for i := 0; i < 10; i++ {
		q.Push(i * i)
	}
	got := q.Drain()
	if len(got) != 10 {
		t.Fatalf("Drain returned %d elements", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Drain[%d] = %d", i, v)
		}
	}
	if len(q.Drain()) != 0 {
		t.Fatal("second Drain should be empty")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := New[int]()
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < round%5+1; i++ {
			q.Push(round*10 + i)
		}
		for {
			v, ok := q.Pop()
			if !ok {
				break
			}
			_ = v
			next++
		}
	}
	if next != totalPushed(50) {
		t.Fatalf("popped %d, want %d", next, totalPushed(50))
	}
}

func totalPushed(rounds int) int {
	n := 0
	for r := 0; r < rounds; r++ {
		n += r%5 + 1
	}
	return n
}

// TestConcurrentProducersFIFOPerProducer: with multiple producers the
// global order is unspecified, but each producer's own elements must
// arrive in their push order, and nothing may be lost or duplicated.
func TestConcurrentProducersFIFOPerProducer(t *testing.T) {
	const producers = 8
	const perProducer = 5000
	q := New[[2]int]() // [producer, seq]

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push([2]int{p, i})
			}
		}(p)
	}

	lastSeen := make([]int, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	got := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	for got < producers*perProducer {
		v, ok := q.Pop()
		if !ok {
			select {
			case <-done:
				// producers finished; drain what's left
				if v, ok = q.Pop(); !ok && got < producers*perProducer {
					// give the final Push's next-pointer store a chance
					continue
				}
				if !ok {
					continue
				}
			default:
				continue
			}
		}
		p, seq := v[0], v[1]
		if seq != lastSeen[p]+1 {
			t.Fatalf("producer %d: got seq %d after %d", p, seq, lastSeen[p])
		}
		lastSeen[p] = seq
		got++
	}
	for p, last := range lastSeen {
		if last != perProducer-1 {
			t.Fatalf("producer %d: only %d elements arrived", p, last+1)
		}
	}
}

func TestQuickSequentialModel(t *testing.T) {
	// Against a slice model: any sequence of pushes and pops matches.
	check := func(ops []int16) bool {
		q := New[int16]()
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				q.Push(op)
				model = append(model, op)
			} else {
				v, ok := q.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		for _, want := range model {
			v, ok := q.Pop()
			if !ok || v != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPush(b *testing.B) {
	q := New[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

// Package fifo implements the concurrent lock-free FIFO queue that
// coordinates the asynchronous maintenance of the shortcut directory
// (paper §4.1): the main thread pushes maintenance requests as soon as the
// traditional directory is modified, and the mapper thread polls and drains
// the queue at a fixed frequency.
//
// The queue is an intrusive Vyukov-style MPSC queue: any number of
// producers may Push concurrently; a single consumer Pops. All operations
// are wait-free for producers and lock-free overall.
package fifo

import "sync/atomic"

type node[T any] struct {
	next atomic.Pointer[node[T]]
	val  T
}

// Queue is a multi-producer single-consumer lock-free FIFO.
// The zero value is not ready for use; call New.
type Queue[T any] struct {
	head atomic.Pointer[node[T]] // producers swap here
	tail *node[T]                // consumer-owned
	size atomic.Int64
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	stub := &node[T]{}
	q.head.Store(stub)
	q.tail = stub
	return q
}

// Push enqueues v. Safe for concurrent use by any number of goroutines.
func (q *Queue[T]) Push(v T) {
	n := &node[T]{val: v}
	prev := q.head.Swap(n)
	prev.next.Store(n)
	q.size.Add(1)
}

// Pop dequeues the oldest element. Only one goroutine may call Pop
// (the mapper thread). Returns ok=false when the queue is empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	next := q.tail.next.Load()
	if next == nil {
		return v, false
	}
	q.tail = next
	v = next.val
	var zero T
	next.val = zero // release references held by the detached node
	q.size.Add(-1)
	return v, true
}

// Drain pops every element currently visible and returns them in FIFO
// order. Consumer-only, like Pop.
func (q *Queue[T]) Drain() []T {
	var out []T
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Len reports the approximate number of queued elements.
func (q *Queue[T]) Len() int { return int(q.size.Load()) }

// Empty reports whether the queue currently appears empty.
func (q *Queue[T]) Empty() bool { return q.tail.next.Load() == nil }

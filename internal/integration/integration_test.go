// Package integration_test crosses module boundaries: pool ↔ core ↔ sceh
// interactions that no single package test exercises — pool shrinking
// underneath live shortcuts, syscall failures during mapper replay, and
// full-stack churn.
package integration_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"vmshortcut/internal/core"
	"vmshortcut/internal/pool"
	"vmshortcut/internal/sceh"
	"vmshortcut/internal/sys"
	"vmshortcut/internal/workload"
)

// TestShortcutSurvivesPoolChurn covers the deferred-unmap / recycling
// hazard: buckets split, their old pages are freed and recycled into new
// buckets while stale shortcut slots still alias them. As long as the
// versions are respected, no lookup may ever observe a wrong value.
func TestShortcutSurvivesPoolChurn(t *testing.T) {
	p, err := pool.New(pool.Config{
		GrowChunkPages:       4,
		ShrinkThresholdPages: 8, // aggressive shrinking
		MaxPages:             1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tbl, err := sceh.New(p, sceh.Config{PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()

	const n = 60000
	for i := 0; i < n; i++ {
		k := workload.Key(3, uint64(i))
		if err := tbl.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
		// Interleave lookups of earlier keys during heavy split churn.
		if i%97 == 0 {
			probe := workload.Key(3, uint64(i/2))
			if v, ok := tbl.Lookup(probe); !ok || v != uint64(i/2) {
				t.Fatalf("churn lookup(%d) = %d,%v", i/2, v, ok)
			}
		}
	}
	if !tbl.WaitSync(10 * time.Second) {
		t.Fatal("never synced")
	}
	for i := 0; i < n; i += 13 {
		k := workload.Key(3, uint64(i))
		if v, ok := tbl.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("final lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

// TestMapperSurvivesSyscallFaults injects mmap failures into the mapper's
// replay path: the shortcut must simply stay stale (lookups keep using the
// traditional directory and stay correct) and recover once the faults
// clear.
func TestMapperSurvivesSyscallFaults(t *testing.T) {
	// Pre-size the pool so insertions never grow the file: the injected
	// MapShared faults then only ever hit the mapper's remap path, not
	// pool growth (growth failures are pool_test territory).
	p, err := pool.New(pool.Config{
		InitialPages:         1 << 13,
		ShrinkThresholdPages: 1 << 13,
		MaxPages:             1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tbl, err := sceh.New(p, sceh.Config{PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()

	// Fill a little so the shortcut exists and is in sync.
	for i := 0; i < 5000; i++ {
		tbl.Insert(workload.Key(5, uint64(i)), uint64(i))
	}
	tbl.WaitSync(5 * time.Second)

	// Now fail every MapShared — the mapper cannot apply anything.
	var failing atomic.Bool
	failing.Store(true)
	boom := errors.New("injected mmap failure")
	sys.SetFaultHook(func(op sys.Op) error {
		if failing.Load() && op == sys.OpMapShared {
			return boom
		}
		return nil
	})
	defer sys.SetFaultHook(nil)

	for i := 5000; i < 30000; i++ {
		if err := tbl.Insert(workload.Key(5, uint64(i)), uint64(i)); err != nil {
			t.Fatalf("insert during faults: %v", err)
		}
	}
	// Lookups must be correct regardless of the broken mapper.
	for i := 0; i < 30000; i += 111 {
		k := workload.Key(5, uint64(i))
		if v, ok := tbl.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("lookup during faults(%d) = %d,%v", i, v, ok)
		}
	}

	// Clear the faults; trigger more modifications so fresh create/update
	// requests flow, and verify the mapper recovers to sync.
	failing.Store(false)
	for i := 30000; i < 60000; i++ {
		if err := tbl.Insert(workload.Key(5, uint64(i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !tbl.WaitSync(10 * time.Second) {
		t.Fatalf("mapper did not recover: trad=%d sc=%d",
			tbl.TradVersion(), tbl.ShortcutVersion())
	}
	for i := 0; i < 60000; i += 131 {
		k := workload.Key(5, uint64(i))
		if v, ok := tbl.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("post-recovery lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

// TestManyShortcutsOneShrinkingPool stresses several independent shortcut
// nodes aliasing one pool whose tail keeps being truncated and regrown.
func TestManyShortcutsOneShrinkingPool(t *testing.T) {
	p, err := pool.New(pool.Config{
		GrowChunkPages:       2,
		ShrinkThresholdPages: 4,
		MaxPages:             1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const nodes = 8
	const slots = 16
	scs := make([]*core.Shortcut, nodes)
	refs := make([][]pool.Ref, nodes)
	for i := range scs {
		sc, err := core.NewShortcut(p, slots)
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		scs[i] = sc
		rs, err := p.AllocN(slots)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = rs
		for s, r := range rs {
			p.Page(r)[0] = byte(i*16 + s + 1)
			if err := sc.Set(s, r, true); err != nil {
				t.Fatal(err)
			}
		}
	}

	rng := workload.NewRNG(1)
	for round := 0; round < 200; round++ {
		// Free one node's pages entirely (its shortcut slots become
		// stale and must be cleared first), then reallocate.
		i := rng.Intn(nodes)
		for s := 0; s < slots; s++ {
			if err := scs[i].ClearSlot(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.FreeN(refs[i]); err != nil {
			t.Fatal(err)
		}
		rs, err := p.AllocN(slots)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = rs
		for s, r := range rs {
			p.Page(r)[0] = byte(i*16 + s + 1)
			if err := scs[i].Set(s, r, true); err != nil {
				t.Fatal(err)
			}
		}
		// All nodes must still resolve their own leaves.
		for j := 0; j < nodes; j++ {
			s := rng.Intn(slots)
			if got := scs[j].Leaf(s)[0]; got != byte(j*16+s+1) {
				t.Fatalf("round %d: node %d slot %d reads %d", round, j, s, got)
			}
		}
	}
}

// TestPoolWindowAndShortcutAgreeUnderWrites does randomized writes through
// randomly chosen views (pool window vs shortcut alias) and verifies both
// views and a model agree.
func TestPoolWindowAndShortcutAgreeUnderWrites(t *testing.T) {
	p, err := pool.New(pool.Config{MaxPages: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const slots = 32
	refs, err := p.AllocN(slots)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := core.NewShortcut(p, slots)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.SetAll(refs, true); err != nil {
		t.Fatal(err)
	}

	model := make(map[[2]int]byte)
	rng := workload.NewRNG(2)
	for i := 0; i < 5000; i++ {
		slot := rng.Intn(slots)
		off := rng.Intn(sys.PageSize())
		val := byte(rng.Intn(255) + 1)
		if rng.Intn(2) == 0 {
			p.Page(refs[slot])[off] = val
		} else {
			sc.Leaf(slot)[off] = val
		}
		model[[2]int{slot, off}] = val
	}
	for ko, want := range model {
		if got := p.Page(refs[ko[0]])[ko[1]]; got != want {
			t.Fatalf("window view slot %d off %d = %d, want %d", ko[0], ko[1], got, want)
		}
		if got := sc.Leaf(ko[0])[ko[1]]; got != want {
			t.Fatalf("shortcut view slot %d off %d = %d, want %d", ko[0], ko[1], got, want)
		}
	}
}

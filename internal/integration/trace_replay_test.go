package integration_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vmshortcut"
	"vmshortcut/internal/workload"
)

// openSharded opens a 4-shard Shortcut-EH store for the replay tests.
func openSharded(t *testing.T) vmshortcut.Store {
	t.Helper()
	s, err := vmshortcut.Open(vmshortcut.KindShortcutEH,
		vmshortcut.WithShards(4), vmshortcut.WithPollInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// replay drives a trace into a store the way cmd/ehstore's -trace path
// does: inserts, lookups, and deletes dispatched per op.
func replay(s vmshortcut.Store, r *strings.Reader) (lookups, hits int, err error) {
	err = workload.ReadTrace(r, func(op workload.TraceOp) error {
		switch op.Kind {
		case 'I':
			return s.Insert(op.Key, op.Value)
		case 'L':
			lookups++
			if _, ok := s.Lookup(op.Key); ok {
				hits++
			}
		case 'D':
			s.Delete(op.Key)
		}
		return nil
	})
	return lookups, hits, err
}

// TestTraceReplayThroughShardedStore round-trips a generated trace —
// inserts, interleaved lookups, deletes — through a 4-shard store and
// verifies the surviving population key by key. The trace generator and
// the replay path cross a real module boundary here: WriteTrace output
// must drive the sharded Store exactly like direct calls would.
func TestTraceReplayThroughShardedStore(t *testing.T) {
	s := openSharded(t)

	const n = 5000
	var ops []workload.TraceOp
	for i := uint64(0); i < n; i++ {
		k := workload.Key(7, i)
		ops = append(ops, workload.TraceOp{Kind: 'I', Key: k, Value: i})
		if i%5 == 0 {
			ops = append(ops, workload.TraceOp{Kind: 'L', Key: k})
		}
		if i%3 == 0 {
			ops = append(ops, workload.TraceOp{Kind: 'D', Key: k})
		}
	}
	var sb strings.Builder
	if err := workload.WriteTrace(&sb, ops); err != nil {
		t.Fatal(err)
	}

	lookups, hits, err := replay(s, strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if lookups != n/5 || hits != lookups {
		t.Fatalf("lookups %d (want %d), hits %d: trace ops lost or misrouted", lookups, n/5, hits)
	}

	// Survivors: every index not divisible by 3.
	wantLen := 0
	for i := uint64(0); i < n; i++ {
		k := workload.Key(7, i)
		v, ok := s.Lookup(k)
		if i%3 == 0 {
			if ok {
				t.Fatalf("deleted key %d (index %d) still present", k, i)
			}
			continue
		}
		wantLen++
		if !ok || v != i {
			t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", k, v, ok, i)
		}
	}
	if got := s.Len(); got != wantLen {
		t.Fatalf("Len = %d, want %d", got, wantLen)
	}
}

// TestTraceReplayHexAndComments replays a hand-written trace with
// 0x-prefixed hex keys, mixed-case op letters, comments, and blank lines
// through a sharded store; hex and decimal spellings of the same key must
// hit the same shard.
func TestTraceReplayHexAndComments(t *testing.T) {
	s := openSharded(t)

	trace := `
# bulk phase
I 0xDEADBEEF 1
i 4022250974 2
I 0x10 16

L 0xdeadbeef
l 16
d 0x10
L 0x10
`
	lookups, hits, err := replay(s, strings.NewReader(trace))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if lookups != 3 || hits != 2 {
		t.Fatalf("lookups=%d hits=%d, want 3/2", lookups, hits)
	}
	// 0xDEADBEEF == 3735928559; the second insert overwrote a different
	// key (4022250974 == 0xEFBEADDE), so both live. 0x10 was deleted.
	if v, ok := s.Lookup(0xDEADBEEF); !ok || v != 1 {
		t.Fatalf("hex key = (%d, %v)", v, ok)
	}
	if v, ok := s.Lookup(4022250974); !ok || v != 2 {
		t.Fatalf("decimal key = (%d, %v)", v, ok)
	}
	if _, ok := s.Lookup(0x10); ok {
		t.Fatal("deleted hex key still present")
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

// TestTraceReplayMalformedLineStopsCleanly checks the error contract end
// to end: replay stops at the first malformed line, reports its line
// number, and everything before it has been applied to the store.
func TestTraceReplayMalformedLineStopsCleanly(t *testing.T) {
	cases := []struct {
		name  string
		bad   string
		line  int
		count int // entries applied before the bad line
	}{
		{"unknown op", "I 1 10\nI 2 20\nX 3\nI 4 40", 3, 2},
		{"missing value", "I 1 10\nI 2\n", 2, 1},
		{"bad hex key", "I 0xzz 1\n", 1, 0},
		{"extra field", "I 1 10\nL 1 2\n", 2, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openSharded(t)
			_, _, err := replay(s, strings.NewReader(tc.bad))
			if err == nil {
				t.Fatal("malformed trace accepted")
			}
			if want := fmt.Sprintf("line %d", tc.line); !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q lacks %q", err, want)
			}
			if got := s.Len(); got != tc.count {
				t.Fatalf("store has %d entries after failed replay, want %d", got, tc.count)
			}
		})
	}
}

package vmshortcut

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut/internal/hashfn"
	"vmshortcut/internal/op"
)

// shardFanOutMin is the batch size below which the per-shard sub-batches
// run on the calling goroutine: spawning goroutines for a handful of keys
// costs more than it parallelizes.
const shardFanOutMin = 128

// sharded is the Store behind Open(kind, WithShards(n)) for n > 1: the
// keyspace hash-partitioned across n independent sub-stores. Each shard is
// a full store with its own lock stripe (openSharded forces the concurrent
// wrapper), so the sharded store is safe for any number of goroutines and
// writers to different shards never contend. The sharded layer itself
// holds no mutable state — routing is a pure function of the key — so it
// needs no lock of its own; lifecycle (ErrClosed, idempotent Close) is
// delegated to the shards.
type sharded struct {
	kind   Kind
	shards []Store

	// Caller-facing batch counters: one increment per InsertBatch /
	// LookupBatch / DeleteBatch call on this store. Stats reports these
	// instead of the sum of the shards' counters, which would count every
	// fan-out sub-batch.
	insertBatches atomic.Uint64
	lookupBatches atomic.Uint64
	deleteBatches atomic.Uint64
}

// openSharded builds the n sub-stores behind WithShards(n). Each shard
// gets a copy of the options with the concurrent wrapper forced on (the
// per-shard lock stripes replacing WithConcurrency's single lock) and
// every explicit size budget divided across the shards, so the total
// stays what the caller asked for: the capacity hint, WithTableBytes'
// directory, WithPoolConfig's page counts, and WithInitialGlobalDepth's
// pre-sized directory (shrunk by log2 n). The exception is KindRadix,
// whose capacity is the exclusive keyspace bound: hash-routing sends any
// key in [0, cap) to any shard, so every shard must cover the full bound
// (the virtual span is reserved lazily, so this costs address space, not
// memory).
func openSharded(kind Kind, o *storeOptions) (Store, error) {
	n := o.shards
	shards := make([]Store, n)
	for i := range shards {
		so := *o
		so.shards = 1
		so.concurrent = true
		if so.capacity > 0 && kind != KindRadix {
			so.capacity = (o.capacity + n - 1) / n
		}
		if so.tableBytes > 0 {
			so.tableBytes = (o.tableBytes + n - 1) / n
		}
		if so.initialGDSet {
			if shift := uint(bits.Len(uint(n - 1))); so.initialGD > shift {
				so.initialGD -= shift
			} else {
				so.initialGD = 0
			}
		}
		if so.poolCfg.MaxPages > 0 {
			so.poolCfg.MaxPages = (o.poolCfg.MaxPages + n - 1) / n
		}
		if so.poolCfg.InitialPages > 0 {
			so.poolCfg.InitialPages = (o.poolCfg.InitialPages + n - 1) / n
		}
		s, err := openStore(kind, &so)
		if err != nil {
			for _, prev := range shards[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("vmshortcut: opening shard %d/%d: %w", i, n, err)
		}
		shards[i] = s
	}
	return &sharded{kind: kind, shards: shards}, nil
}

func (s *sharded) Kind() Kind { return s.kind }

// shardOf routes a key to its shard. The same key always routes to the
// same shard, on both the single and the batch paths.
func (s *sharded) shardOf(key uint64) int { return hashfn.ShardOf(key, len(s.shards)) }

func (s *sharded) Insert(key, value uint64) error {
	return s.shards[s.shardOf(key)].Insert(key, value)
}

func (s *sharded) Lookup(key uint64) (uint64, bool) {
	return s.shards[s.shardOf(key)].Lookup(key)
}

func (s *sharded) Delete(key uint64) bool {
	return s.shards[s.shardOf(key)].Delete(key)
}

func (s *sharded) Len() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.Len()
	}
	return total
}

// split partitions keys by shard in two passes: count, then scatter. All
// sub-batches are slices of two flat backing arrays laid out in shard
// order, so the allocation count is constant in the shard count — no
// append growth, no per-shard make. pos records each key's original
// position so batch lookups can gather results back in caller order;
// counts feeds fanOut.
func (s *sharded) split(keys []uint64) (byShard [][]uint64, pos [][]int, counts []int) {
	n := len(s.shards)
	counts = make([]int, n)
	route := make([]uint32, len(keys))
	for i, k := range keys {
		sh := s.shardOf(k)
		route[i] = uint32(sh)
		counts[sh]++
	}
	flatK := make([]uint64, len(keys))
	flatP := make([]int, len(keys))
	byShard = make([][]uint64, n)
	pos = make([][]int, n)
	off := 0
	for sh, c := range counts {
		byShard[sh] = flatK[off : off : off+c]
		pos[sh] = flatP[off : off : off+c]
		off += c
	}
	for i, k := range keys {
		sh := route[i]
		byShard[sh] = append(byShard[sh], k)
		pos[sh] = append(pos[sh], i)
	}
	return byShard, pos, counts
}

// fanOut runs fn for every shard whose sub-batch is non-empty (per
// counts). Small batches (or a batch that routed entirely to one shard)
// run on the calling goroutine; otherwise one goroutine is spawned per
// additional shard and the first hit shard runs on the caller — the
// caller would only block on wg.Wait anyway, so this saves one spawn per
// batch.
func (s *sharded) fanOut(counts []int, total int, fn func(sh int)) {
	hit := 0
	for _, c := range counts {
		if c > 0 {
			hit++
		}
	}
	if hit <= 1 || total < shardFanOutMin {
		for sh, c := range counts {
			if c > 0 {
				fn(sh)
			}
		}
		return
	}
	var wg sync.WaitGroup
	inline := -1
	for sh, c := range counts {
		if c == 0 {
			continue
		}
		if inline < 0 {
			inline = sh
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			fn(sh)
		}(sh)
	}
	fn(inline)
	wg.Wait()
}

// InsertBatch splits the batch by shard and upserts the sub-batches in
// parallel, one goroutine per hit shard, so each shard's index sees one
// contiguous batch (Shortcut-EH makes its routing decision once per
// sub-batch). The first error in shard order is returned; the other
// sub-batches still run to completion.
func (s *sharded) InsertBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("vmshortcut: InsertBatch: %d keys but %d values", len(keys), len(values))
	}
	s.insertBatches.Add(1)
	byShard, pos, counts := s.split(keys)
	flatV := make([]uint64, len(keys))
	valsByShard := make([][]uint64, len(s.shards))
	off := 0
	for sh, ps := range pos {
		vs := flatV[off : off+len(ps)]
		for j, i := range ps {
			vs[j] = values[i]
		}
		valsByShard[sh] = vs
		off += len(ps)
	}
	errs := make([]error, len(s.shards))
	s.fanOut(counts, len(keys), func(sh int) {
		errs[sh] = s.shards[sh].InsertBatch(byShard[sh], valsByShard[sh])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// LookupBatch splits the probe set by shard, looks the sub-batches up in
// parallel, and gathers values and presence back into caller order. Each
// goroutine writes only its own shard's disjoint positions of out and the
// result slice, so no synchronization beyond the final join is needed.
func (s *sharded) LookupBatch(keys []uint64, out []uint64) []bool {
	s.lookupBatches.Add(1)
	oks := make([]bool, len(keys))
	byShard, pos, counts := s.split(keys)
	flatOut := make([]uint64, len(keys)) // sliced per shard; ranges disjoint
	subOuts := make([][]uint64, len(s.shards))
	off := 0
	for sh, ks := range byShard {
		subOuts[sh] = flatOut[off : off+len(ks)]
		off += len(ks)
	}
	s.fanOut(counts, len(keys), func(sh int) {
		subOks := s.shards[sh].LookupBatch(byShard[sh], subOuts[sh])
		for j, i := range pos[sh] {
			out[i] = subOuts[sh][j]
			oks[i] = subOks[j]
		}
	})
	return oks
}

// DeleteBatch splits the keys by shard, deletes the sub-batches in
// parallel, and gathers per-key presence back into caller order — the
// delete counterpart of LookupBatch, with the same disjoint-write
// guarantee: each goroutine writes only its own shard's positions.
func (s *sharded) DeleteBatch(keys []uint64) []bool {
	s.deleteBatches.Add(1)
	oks := make([]bool, len(keys))
	byShard, pos, counts := s.split(keys)
	s.fanOut(counts, len(keys), func(sh int) {
		subOks := s.shards[sh].DeleteBatch(byShard[sh])
		for j, i := range pos[sh] {
			oks[i] = subOks[j]
		}
	})
	return oks
}

// ApplyBatch splits a mixed batch across the shards in ONE pass — each
// entry is routed by its key, so the per-key operation order of the
// caller's batch is preserved inside the owning shard's sub-batch — fans
// the per-shard sub-batches out in parallel, and gathers the per-entry
// outcomes back into caller order. The batch counters count the
// caller-facing batch's same-kind runs once, like the other batch paths;
// the per-shard sub-batches are not double counted. The first shard
// error (in shard order) fails the whole batch, per the ApplyBatch
// unit-failure contract.
func (s *sharded) ApplyBatch(b *op.Batch, res *op.Results) error {
	n := b.Len()
	res.Reset(n)
	if n == 0 {
		return nil
	}
	kinds, keys, vals := b.Kinds(), b.Keys(), b.Vals()
	ns := len(s.shards)
	counts := make([]int, ns)
	route := make([]uint32, n)
	for i, k := range keys {
		sh := s.shardOf(k)
		route[i] = uint32(sh)
		counts[sh]++
	}
	sub := make([]op.Batch, ns)
	flatP := make([]int, n)
	pos := make([][]int, ns)
	off := 0
	for sh, c := range counts {
		sub[sh].Grow(c)
		pos[sh] = flatP[off : off : off+c]
		off += c
	}
	for i, k := range keys {
		sh := route[i]
		sub[sh].Add(kinds[i], k, vals[i])
		pos[sh] = append(pos[sh], i)
	}
	runs := op.CountRuns(kinds)
	s.lookupBatches.Add(runs[op.Get])
	s.insertBatches.Add(runs[op.Put])
	s.deleteBatches.Add(runs[op.Del])

	subRes := make([]op.Results, ns)
	errs := make([]error, ns)
	s.fanOut(counts, n, func(sh int) {
		errs[sh] = s.shards[sh].ApplyBatch(&sub[sh], &subRes[sh])
	})
	for sh := range pos {
		for j, i := range pos[sh] {
			res.Found[i] = subRes[sh].Found[j]
			res.Vals[i] = subRes[sh].Vals[j]
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Range calls fn for every stored entry until fn returns false, visiting
// the shards sequentially. Each shard's iteration runs under that shard's
// read lock, so Range is safe against concurrent mutation — but entries
// mutated while the iteration is between shards may or may not be
// observed, the usual weakly consistent contract of concurrent ranges.
func (s *sharded) Range(fn func(key, value uint64) bool) {
	stop := false
	for _, sh := range s.shards {
		sh.Range(func(k, v uint64) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Stats aggregates across shards: entries, shape counts and every counter
// are summed, GlobalDepth is the deepest shard's, and the ratios are
// recombined from the sums — AvgFanIn as total slots over total buckets,
// LoadFactor as total entries over the total capacity the per-shard ratios
// imply. InSync and UsingShortcut report the conjunction: the sharded
// store is in sync only when every shard's shortcut directory is.
//
// The summed TradVersion/ShortcutVersion preserve the classic
// "versions equal ⇔ in sync" reading: each shard's snapshot is taken
// under that shard's lock, where the traditional version is frozen and
// the mapper can only catch the shortcut version up to it, never past it
// (shortcut_i ≤ trad_i always). Sums of such pairs are equal exactly when
// every pair is — offsetting desyncs cannot occur.
func (s *sharded) Stats() Stats {
	agg := Stats{Kind: s.kind, InSync: true, UsingShortcut: true}
	capacity := 0.0 // implied entry capacity summed across shards
	for _, sh := range s.shards {
		st := sh.Stats()
		agg.Entries += st.Entries
		if st.GlobalDepth > agg.GlobalDepth {
			agg.GlobalDepth = st.GlobalDepth
		}
		agg.DirectorySlots += st.DirectorySlots
		agg.Buckets += st.Buckets
		agg.StructuralMods += st.StructuralMods
		agg.ShortcutLookups += st.ShortcutLookups
		agg.TraditionalLookups += st.TraditionalLookups
		agg.UpdatesApplied += st.UpdatesApplied
		agg.CreatesApplied += st.CreatesApplied
		agg.UpdatesSuperseded += st.UpdatesSuperseded
		agg.Remaps += st.Remaps
		agg.TradVersion += st.TradVersion
		agg.ShortcutVersion += st.ShortcutVersion
		agg.InSync = agg.InSync && st.InSync
		agg.UsingShortcut = agg.UsingShortcut && st.UsingShortcut
		agg.FastpathCacheReads += st.FastpathCacheReads
		agg.FastpathSeqlockReads += st.FastpathSeqlockReads
		agg.FastpathLockedReads += st.FastpathLockedReads
		agg.CacheMisses += st.CacheMisses
		agg.SeqlockRetries += st.SeqlockRetries
		agg.SeqlockFallbacks += st.SeqlockFallbacks
		if st.LoadFactor > 0 {
			capacity += float64(st.Entries) / st.LoadFactor
		}
	}
	if capacity > 0 {
		agg.LoadFactor = float64(agg.Entries) / capacity
	}
	if agg.Buckets > 0 {
		agg.AvgFanIn = float64(agg.DirectorySlots) / float64(agg.Buckets)
	}
	// Batch counters report caller-facing calls, not the per-shard
	// sub-batches the summation above would have accumulated.
	agg.InsertBatches = s.insertBatches.Load()
	agg.LookupBatches = s.lookupBatches.Load()
	agg.DeleteBatches = s.deleteBatches.Load()
	return agg
}

// WaitSync fans out to every shard with the same timeout (the shards catch
// up concurrently, so the total wait is bounded by the slowest shard, not
// the sum) and reports whether all of them synchronized in time.
func (s *sharded) WaitSync(timeout time.Duration) bool {
	oks := make([]bool, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh Store) {
			defer wg.Done()
			oks[i] = sh.WaitSync(timeout)
		}(i, sh)
	}
	wg.Wait()
	for _, ok := range oks {
		if !ok {
			return false
		}
	}
	return true
}

// Close closes every shard — in parallel, since each shard's Close drains
// its in-flight operations and releases its own pool — and returns the
// first error in shard order. A failing shard never prevents the remaining
// shards from closing, so no mapped pages leak past Close. Idempotency is
// inherited from the shards' own Close.
func (s *sharded) Close() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh Store) {
			defer wg.Done()
			errs[i] = sh.Close()
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

//go:build !race

package vmshortcut

// raceEnabled is false in normal builds: the seqlock read path is live.
// See race_on.go for why -race builds turn it off.
const raceEnabled = false

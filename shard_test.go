package vmshortcut

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vmshortcut/internal/hashfn"
)

// openShardedSCEH opens a sharded Shortcut-EH store with a fast mapper
// poll, cleaned up with the test.
func openShardedSCEH(tb testing.TB, shards int, extra ...Option) Store {
	tb.Helper()
	opts := append([]Option{
		WithShards(shards),
		WithPollInterval(time.Millisecond),
	}, extra...)
	s, err := Open(KindShortcutEH, opts...)
	if err != nil {
		tb.Fatalf("Open(shortcut-eh, shards=%d): %v", shards, err)
	}
	tb.Cleanup(func() { s.Close() })
	return s
}

// TestShardRoutingStability checks that the batch and single operation
// paths agree on shard placement: every key inserted through InsertBatch
// must be found by a single Lookup (which routes independently), deleted
// by a single Delete, and re-found by LookupBatch — any routing divergence
// shows up as a miss against a different shard.
func TestShardRoutingStability(t *testing.T) {
	const n, shards = 20000, 5
	s := openShardedSCEH(t, shards)

	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 2654435761 // spread keys; routing must not care
		vals[i] = uint64(i) + 7
	}
	if err := s.InsertBatch(keys, vals); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i, k := range keys {
		v, ok := s.Lookup(k)
		if !ok || v != vals[i] {
			t.Fatalf("single Lookup(%d) = (%d, %v), want (%d, true): batch and single paths disagree on shard", k, v, ok, vals[i])
		}
	}
	// Delete the first half through the single path, then verify presence
	// through the batch path.
	for _, k := range keys[:n/2] {
		if !s.Delete(k) {
			t.Fatalf("single Delete(%d) missed a batch-inserted key", k)
		}
	}
	out := make([]uint64, n)
	oks := s.LookupBatch(keys, out)
	for i := range keys {
		want := i >= n/2
		if oks[i] != want {
			t.Fatalf("LookupBatch presence[%d] = %v, want %v", i, oks[i], want)
		}
		if want && out[i] != vals[i] {
			t.Fatalf("LookupBatch out[%d] = %d, want %d", i, out[i], vals[i])
		}
	}
}

// TestShardedDeleteBatch checks the delete fan-out: per-key presence comes
// back in caller order across shard boundaries, duplicates within one
// batch resolve in order (first occurrence deletes, second misses), and
// the Stats batch counters count caller-facing calls exactly once — not
// the per-shard sub-batches of the fan-out.
func TestShardedDeleteBatch(t *testing.T) {
	const n, shards = 10000, 4
	s := openShardedSCEH(t, shards)

	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)*7919 + 3
		vals[i] = uint64(i)
	}
	if err := s.InsertBatch(keys, vals); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}

	// Delete the even positions plus a duplicate and a never-inserted key.
	dels := make([]uint64, 0, n/2+2)
	for i := 0; i < n; i += 2 {
		dels = append(dels, keys[i])
	}
	dels = append(dels, keys[0], 1) // duplicate; absent key
	oks := s.DeleteBatch(dels)
	for i := 0; i < n/2; i++ {
		if !oks[i] {
			t.Fatalf("DeleteBatch[%d] (key %d) = false, want true", i, dels[i])
		}
	}
	if oks[n/2] || oks[n/2+1] {
		t.Fatalf("duplicate/absent keys reported deleted: %v %v", oks[n/2], oks[n/2+1])
	}
	if got := s.Len(); got != n/2 {
		t.Fatalf("Len after DeleteBatch = %d, want %d", got, n/2)
	}
	// Odd positions survive, even positions are gone — on the single path,
	// so batch deletion and single routing agree on shard placement.
	for i, k := range keys {
		_, ok := s.Lookup(k)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Lookup(%d) presence = %v, want %v", k, ok, want)
		}
	}

	st := s.Stats()
	if st.InsertBatches != 1 || st.LookupBatches != 0 || st.DeleteBatches != 1 {
		t.Fatalf("batch counters = {I:%d L:%d D:%d}, want {1 0 1}",
			st.InsertBatches, st.LookupBatches, st.DeleteBatches)
	}
}

// TestShardOfCoversAllShards checks the routing hash is total and spreads:
// every shard index is produced, results stay in range, and the function
// is deterministic.
// TestShardedApplyBatch drives a large mixed batch through a sharded
// store: the one-pass split must route every entry to its key's shard
// with per-key order preserved, fan out in parallel, and gather results
// back into caller order — checked against a reference run on an
// unsharded store.
func TestShardedApplyBatch(t *testing.T) {
	s := openShardedSCEH(t, 4)
	ref, err := Open(KindHT)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })

	// A deterministic pseudo-random mix, well above the fan-out
	// threshold, with repeated keys so same-key order matters.
	const n = 4096
	var b OpBatch
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		key := rng % 257 // dense: plenty of same-key collisions
		switch rng >> 61 {
		case 0, 1, 2:
			b.Put(key, rng)
		case 3, 4, 5:
			b.Get(key)
		default:
			b.Del(key)
		}
	}
	var got, want OpResults
	if err := s.ApplyBatch(&b, &got); err != nil {
		t.Fatalf("sharded ApplyBatch: %v", err)
	}
	if err := ref.ApplyBatch(&b, &want); err != nil {
		t.Fatalf("reference ApplyBatch: %v", err)
	}
	for i := 0; i < n; i++ {
		if got.Found[i] != want.Found[i] || got.Vals[i] != want.Vals[i] {
			t.Fatalf("entry %d = (%v, %d), reference (%v, %d)",
				i, got.Found[i], got.Vals[i], want.Found[i], want.Vals[i])
		}
	}
	if s.Len() != ref.Len() {
		t.Fatalf("sharded Len %d, reference %d", s.Len(), ref.Len())
	}
}

func TestShardOfCoversAllShards(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		hit := make([]int, n)
		for k := uint64(0); k < 4096; k++ {
			sh := hashfn.ShardOf(k, n)
			if sh < 0 || sh >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", k, n, sh)
			}
			if sh != hashfn.ShardOf(k, n) {
				t.Fatalf("ShardOf(%d, %d) not deterministic", k, n)
			}
			hit[sh]++
		}
		for sh, c := range hit {
			if c == 0 {
				t.Fatalf("n=%d: shard %d never hit over 4096 keys", n, sh)
			}
		}
	}
}

// TestShardedStatsAggregation inserts a known population and checks the
// aggregate Stats against the per-shard truth: entries sum, every shard
// holds a share, GlobalDepth is the deepest shard's, and after WaitSync
// the conjunction InSync holds.
func TestShardedStatsAggregation(t *testing.T) {
	const n, shards = 50000, 4
	s := openShardedSCEH(t, shards)
	for i := uint64(0); i < n; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if !s.WaitSync(30 * time.Second) {
		t.Fatal("shards never synced")
	}

	sh, ok := s.(*sharded)
	if !ok {
		t.Fatalf("Open(WithShards(%d)) returned %T, want *sharded", shards, s)
	}
	sumEntries, maxDepth := 0, uint(0)
	for i, sub := range sh.shards {
		st := sub.Stats()
		if st.Entries == 0 {
			t.Fatalf("shard %d holds no entries — keys are not spreading", i)
		}
		sumEntries += st.Entries
		if st.GlobalDepth > maxDepth {
			maxDepth = st.GlobalDepth
		}
	}
	agg := s.Stats()
	if sumEntries != n || agg.Entries != n {
		t.Fatalf("entries: shards sum to %d, aggregate %d, want %d", sumEntries, agg.Entries, n)
	}
	if agg.GlobalDepth != maxDepth {
		t.Fatalf("aggregate GlobalDepth = %d, want max shard depth %d", agg.GlobalDepth, maxDepth)
	}
	if agg.Kind != KindShortcutEH {
		t.Fatalf("aggregate Kind = %v", agg.Kind)
	}
	if !agg.InSync {
		t.Fatal("aggregate InSync = false after WaitSync reported true")
	}
	if agg.Buckets == 0 || agg.DirectorySlots == 0 {
		t.Fatalf("aggregate shape empty: %+v", agg)
	}
}

// stubStore is a minimal Store for exercising the sharded lifecycle
// without real indexes; Close records the call and returns a fixed error.
type stubStore struct {
	closeErr error
	closed   atomic.Bool
}

func (s *stubStore) Insert(key, value uint64) error            { return nil }
func (s *stubStore) Lookup(key uint64) (uint64, bool)          { return 0, false }
func (s *stubStore) Delete(key uint64) bool                    { return false }
func (s *stubStore) Len() int                                  { return 0 }
func (s *stubStore) InsertBatch(keys, values []uint64) error   { return nil }
func (s *stubStore) LookupBatch(k []uint64, o []uint64) []bool { return make([]bool, len(k)) }
func (s *stubStore) DeleteBatch(k []uint64) []bool             { return make([]bool, len(k)) }
func (s *stubStore) Range(fn func(key, value uint64) bool)     {}
func (s *stubStore) ApplyBatch(b *OpBatch, res *OpResults) error {
	res.Reset(b.Len())
	return nil
}
func (s *stubStore) Stats() Stats                        { return Stats{} }
func (s *stubStore) WaitSync(timeout time.Duration) bool { return true }
func (s *stubStore) Kind() Kind                          { return KindShortcutEH }
func (s *stubStore) Close() error {
	s.closed.Store(true)
	return s.closeErr
}

// TestShardedCloseClosesAllOnError checks the Close contract: the first
// shard error (in shard order) is returned, but every shard is still
// closed — an early return would leak the healthy shards' mapped pages.
func TestShardedCloseClosesAllOnError(t *testing.T) {
	errA := errors.New("shard 1 failed")
	errB := errors.New("shard 3 failed")
	stubs := []*stubStore{{}, {closeErr: errA}, {}, {closeErr: errB}, {}}
	shards := make([]Store, len(stubs))
	for i, st := range stubs {
		shards[i] = st
	}
	s := &sharded{kind: KindShortcutEH, shards: shards}

	if err := s.Close(); !errors.Is(err, errA) {
		t.Fatalf("Close = %v, want first shard error %v", err, errA)
	}
	for i, st := range stubs {
		if !st.closed.Load() {
			t.Fatalf("shard %d was not closed after an earlier shard errored", i)
		}
	}
}

// TestShardedLifecycle checks the facade lifecycle contract holds through
// the sharded layer: ops after Close fail with ErrClosed or report "not
// found", and a second Close is a nil no-op.
func TestShardedLifecycle(t *testing.T) {
	s := openShardedSCEH(t, 3)
	if err := s.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Insert(3, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close = %v, want ErrClosed", err)
	}
	if _, ok := s.Lookup(1); ok {
		t.Fatal("Lookup after Close reported a hit")
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len after Close = %d", got)
	}
	if err := s.InsertBatch([]uint64{1}, []uint64{2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("InsertBatch after Close = %v, want ErrClosed", err)
	}
	if st := s.Stats(); st.Entries != 0 || st.Kind != KindShortcutEH {
		t.Fatalf("Stats after Close = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

// TestShardedConcurrentWriters drives disjoint key ranges from many
// goroutines — single and batch ops mixed — and verifies the full
// population afterwards. Run under -race this is the shard-striping data
// race check.
func TestShardedConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 4000
	s := openShardedSCEH(t, 4)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perWriter)
			if w%2 == 0 { // half the writers batch, half go single-op
				keys := make([]uint64, perWriter)
				vals := make([]uint64, perWriter)
				for i := range keys {
					keys[i] = base + uint64(i)
					vals[i] = base + uint64(i) + 1
				}
				if err := s.InsertBatch(keys, vals); err != nil {
					t.Errorf("writer %d: %v", w, err)
				}
				return
			}
			for i := uint64(0); i < perWriter; i++ {
				if err := s.Insert(base+i, base+i+1); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%64 == 0 { // interleave reads with the writes
					s.Lookup(base + i)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := s.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
	for k := uint64(0); k < writers*perWriter; k += 97 {
		if v, ok := s.Lookup(k); !ok || v != k+1 {
			t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", k, v, ok, k+1)
		}
	}
}

// TestShardedKindsConformance runs a small insert/lookup/delete workload
// through every kind with sharding enabled — the sharded layer must be
// kind-agnostic, including KindRadix where each shard keeps the full
// keyspace bound.
func TestShardedKindsConformance(t *testing.T) {
	const n = 5000
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			opts := []Option{WithShards(3), WithCapacity(n)}
			if kind == KindShortcutEH {
				opts = append(opts, WithPollInterval(time.Millisecond))
			}
			s, err := Open(kind, opts...)
			if err != nil {
				t.Fatalf("Open(%s, shards=3): %v", kind, err)
			}
			defer s.Close()
			for k := uint64(0); k < n; k++ {
				if err := s.Insert(k, k*3); err != nil {
					t.Fatalf("Insert(%d): %v", k, err)
				}
			}
			s.WaitSync(10 * time.Second)
			for k := uint64(0); k < n; k++ {
				if v, ok := s.Lookup(k); !ok || v != k*3 {
					t.Fatalf("Lookup(%d) = (%d, %v)", k, v, ok)
				}
			}
			if !s.Delete(42) || s.Delete(42) {
				t.Fatal("Delete semantics broken through shards")
			}
			if got := s.Len(); got != n-1 {
				t.Fatalf("Len = %d, want %d", got, n-1)
			}
		})
	}
}

// TestShardedBudgetDivision checks that explicit size budgets are divided
// across shards rather than multiplied by the shard count: KindCH's fixed
// directory bytes and the EH kinds' pre-sized directory must total
// roughly what the unsharded store would allocate.
func TestShardedBudgetDivision(t *testing.T) {
	const tableBytes = 1 << 20
	single, err := Open(KindCH, WithTableBytes(tableBytes))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	shardedCH, err := Open(KindCH, WithShards(4), WithTableBytes(tableBytes))
	if err != nil {
		t.Fatal(err)
	}
	defer shardedCH.Close()
	got, want := shardedCH.Stats().DirectorySlots, single.Stats().DirectorySlots
	// Per-shard rounding to the slot granularity gives a little slack.
	if got < want || got > want+4*64 {
		t.Fatalf("sharded CH directory totals %d slots, unsharded %d — the byte budget must divide, not multiply", got, want)
	}

	ehSharded, err := Open(KindEH, WithShards(4), WithInitialGlobalDepth(10))
	if err != nil {
		t.Fatal(err)
	}
	defer ehSharded.Close()
	// 4 shards at depth 10-log2(4)=8 pre-size 4*2^8 = 2^10 slots total.
	if got := ehSharded.Stats().DirectorySlots; got != 1<<10 {
		t.Fatalf("sharded EH pre-sizes %d directory slots, want %d", got, 1<<10)
	}
}

// TestWithShardsValidation checks option validation and the shards=1
// passthrough (which must keep today's unsharded semantics and concrete
// As* escape hatches).
func TestWithShardsValidation(t *testing.T) {
	if _, err := Open(KindHT, WithShards(0)); err == nil {
		t.Fatal("WithShards(0) was accepted")
	}
	if _, err := Open(KindHT, WithShards(-4)); err == nil {
		t.Fatal("WithShards(-4) was accepted")
	}
	s, err := Open(KindShortcutEH, WithShards(1), WithPollInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.(*store); !ok {
		t.Fatalf("WithShards(1) returned %T, want the unsharded *store", s)
	}
	if _, ok := AsShortcutEH(s); !ok {
		t.Fatal("WithShards(1) lost the AsShortcutEH escape hatch")
	}
	m, err := Open(KindShortcutEH, WithShards(4), WithPollInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, ok := AsShortcutEH(m); ok {
		t.Fatal("AsShortcutEH must report false for a sharded store")
	}
}

package vmshortcut

import (
	"sort"
	"sync/atomic"

	"vmshortcut/internal/hashfn"
)

// Hot-key read cache (WithReadCache): a small per-shard open-addressed
// cache fronting the pure-GET fast path. It is built from fixed arrays
// of atomics, so a probe is lock-free and allocation-free, and it is
// keyed by the shard's write sequence counter (lockedIndex.seq): a slot
// is valid only while its stamp equals the current counter, so any
// write to the shard invalidates the whole cache in O(1) — the slots
// simply stop matching and are re-stamped by subsequent reads. A tiny
// two-row frequency sketch gates admission, so only keys seen
// repeatedly (the zipfian head) occupy slots.
const (
	cacheGroupBits = 7
	cacheGroups    = 1 << cacheGroupBits // 4-way set-associative
	cacheWays      = 4
	cacheSlots     = cacheGroups * cacheWays

	sketchSlots = 2048 // power of two; two rows folded into one array
	sketchMask  = sketchSlots - 1
	// admitThreshold is the sketch estimate a key must reach before it
	// may displace nothing-yet (an empty or stale slot); displacing a
	// live resident additionally requires beating its estimate.
	admitThreshold = 2
	// sketchDecayEvery resets the sketch after this many offers, so a
	// key that stopped being hot stops looking hot.
	sketchDecayEvery = 1 << 16
)

// readCache is one shard's cache. Each slot is guarded by its own
// version counter (odd = an admission is rewriting the slot), so a
// reader validates a consistent (key, val, stamp) snapshot from racing
// admitters with two loads, and the stamp comparison against the
// shard's sequence counter does the actual freshness check. The zero
// value is ready to use: stamp 0 never equals a live sequence counter
// (it starts at 2), so all slots begin empty.
type readCache struct {
	ver   [cacheSlots]atomic.Uint64
	key   [cacheSlots]atomic.Uint64
	val   [cacheSlots]atomic.Uint64
	stamp [cacheSlots]atomic.Uint64
	hits  [cacheSlots]atomic.Uint64

	sketch    [sketchSlots]atomic.Uint32
	sketchOps atomic.Uint64
}

func cacheGroup(key uint64) int {
	return int(hashfn.Hash(key) >> (64 - cacheGroupBits))
}

// estimate is the sketch's (over-)count for key: the minimum of two
// rows addressed by independent hashes, count-min style.
func (c *readCache) estimate(key uint64) uint32 {
	n1 := c.sketch[hashfn.Hash(key)&sketchMask].Load()
	n2 := c.sketch[hashfn.Hash2(key)&sketchMask].Load()
	return min(n1, n2)
}

// probe looks key up at sequence stamp seq (which the caller read from
// the shard's counter, even = stable). It is the zero-alloc hit path.
func (c *readCache) probe(key, seq uint64) (uint64, bool) {
	base := cacheGroup(key) * cacheWays
	for i := base; i < base+cacheWays; i++ {
		v1 := c.ver[i].Load()
		if v1&1 != 0 {
			continue
		}
		if c.stamp[i].Load() != seq || c.key[i].Load() != key {
			continue
		}
		val := c.val[i].Load()
		if c.ver[i].Load() != v1 {
			continue // an admission rewrote the slot mid-read
		}
		c.hits[i].Add(1)
		return val, true
	}
	return 0, false
}

// offer records one observed read of (key, val) — current as of
// sequence stamp s — and admits it to a slot if the key looks hot. It
// is called by reader goroutines after a successful locked or
// seqlock-validated lookup; admissions racing on one slot are
// serialized by the slot's version CAS, and losing simply drops the
// offer (the next read re-offers).
func (c *readCache) offer(key, val, s uint64) {
	if s&1 != 0 {
		return
	}
	n1 := c.sketch[hashfn.Hash(key)&sketchMask].Add(1)
	n2 := c.sketch[hashfn.Hash2(key)&sketchMask].Add(1)
	if c.sketchOps.Add(1)%sketchDecayEvery == 0 {
		for i := range c.sketch {
			c.sketch[i].Store(0)
		}
	}
	base := cacheGroup(key) * cacheWays
	// Resident already: refresh the stamp (and value) if a write
	// invalidated it since admission. Hit history survives a refresh.
	for i := base; i < base+cacheWays; i++ {
		if c.ver[i].Load()&1 == 0 && c.key[i].Load() == key {
			if c.stamp[i].Load() != s {
				c.install(i, key, val, s, false)
			}
			return
		}
	}
	if min(n1, n2) < admitThreshold {
		return
	}
	// Victim: prefer an empty or stale slot; a live resident is only
	// displaced by a candidate with a higher sketch estimate, and the
	// coldest (fewest recorded hits) goes first.
	victim := -1
	var victimHits uint64
	for i := base; i < base+cacheWays; i++ {
		if c.stamp[i].Load() != s {
			victim = i
			victimHits = 0
			break
		}
		if h := c.hits[i].Load(); victim == -1 || h < victimHits {
			victim, victimHits = i, h
		}
	}
	if c.stamp[victim].Load() == s && c.estimate(c.key[victim].Load()) >= min(n1, n2) {
		return
	}
	c.install(victim, key, val, s, true)
}

// install rewrites slot i under its version guard. resetHits is false
// when the slot already holds key (a stamp refresh).
func (c *readCache) install(i int, key, val, s uint64, resetHits bool) {
	v := c.ver[i].Load()
	if v&1 != 0 || !c.ver[i].CompareAndSwap(v, v+1) {
		return // another admitter owns the slot; theirs wins
	}
	c.key[i].Store(key)
	c.val[i].Store(val)
	if resetHits {
		c.hits[i].Store(0)
	}
	c.stamp[i].Store(s)
	c.ver[i].Store(v + 2)
}

// residents appends every occupied slot (fresh or stale — a stale slot
// is a recently hot key awaiting re-admission) to out.
func (c *readCache) residents(out []HotKey) []HotKey {
	for i := range c.key {
		if c.stamp[i].Load() == 0 || c.ver[i].Load()&1 != 0 {
			continue
		}
		out = append(out, HotKey{Key: c.key[i].Load(), Hits: c.hits[i].Load()})
	}
	return out
}

// HotKey is one resident read-cache entry, as reported by HotKeys.
type HotKey struct {
	Key  uint64
	Hits uint64
}

// HotKeys reports the hottest resident keys of a store's read caches
// (WithReadCache), hottest first, at most k entries, gathered across
// shards and through the durable wrapper. ok is false when the store
// runs no read cache, so callers can distinguish "no cache" from "cache
// still empty".
func HotKeys(s Store, k int) (top []HotKey, ok bool) {
	var all []HotKey
	var found bool
	var gather func(Store)
	gather = func(s Store) {
		switch v := s.(type) {
		case *durableStore:
			gather(v.inner)
		case *sharded:
			for _, sh := range v.shards {
				gather(sh)
			}
		case *store:
			if v.lck != nil && v.lck.cache != nil {
				found = true
				all = v.lck.cache.residents(all)
			}
		}
	}
	gather(s)
	if !found {
		return nil, false
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Hits > all[j].Hits })
	if k >= 0 && len(all) > k {
		all = all[:k]
	}
	return all, true
}

package vmshortcut

import (
	"runtime"
	"testing"
	"time"
)

// TestRangeConformance checks the Range contract on every kind (and on
// the sharded and concurrent wrappers): every inserted entry is visited
// exactly once, deleted entries are not, and returning false stops the
// iteration.
func TestRangeConformance(t *testing.T) {
	const n = uint64(3000)
	variants := []struct {
		name string
		open func(kind Kind) (Store, error)
	}{
		{"plain", func(kind Kind) (Store, error) {
			return Open(kind, WithCapacity(int(n)))
		}},
		{"concurrent", func(kind Kind) (Store, error) {
			return Open(kind, WithCapacity(int(n)), WithConcurrency(true))
		}},
		{"sharded", func(kind Kind) (Store, error) {
			return Open(kind, WithCapacity(int(n)), WithShards(3))
		}},
	}
	for _, kind := range Kinds() {
		for _, v := range variants {
			t.Run(kind.String()+"/"+v.name, func(t *testing.T) {
				s, err := v.open(kind)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				// Keys include 0 (the open-addressing special case) and
				// stay below n for KindRadix's bound.
				for i := uint64(0); i < n; i++ {
					if err := s.Insert(i, i*3); err != nil {
						t.Fatal(err)
					}
				}
				for i := uint64(0); i < n; i += 7 {
					if !s.Delete(i) {
						t.Fatalf("delete %d missed", i)
					}
				}
				seen := make(map[uint64]uint64, n)
				s.Range(func(k, val uint64) bool {
					if _, dup := seen[k]; dup {
						t.Fatalf("key %d visited twice", k)
					}
					seen[k] = val
					return true
				})
				for i := uint64(0); i < n; i++ {
					val, ok := seen[i]
					if i%7 == 0 {
						if ok {
							t.Fatalf("deleted key %d was visited", i)
						}
						continue
					}
					if !ok || val != i*3 {
						t.Fatalf("key %d: visited=%v val=%d, want %d", i, ok, val, i*3)
					}
				}
				if len(seen) != s.Len() {
					t.Fatalf("Range visited %d entries, Len reports %d", len(seen), s.Len())
				}

				// Early stop: fn returning false ends the iteration.
				visited := 0
				s.Range(func(_, _ uint64) bool {
					visited++
					return visited < 10
				})
				if visited != 10 {
					t.Fatalf("early stop visited %d entries, want 10", visited)
				}

				// A closed store ranges over nothing.
				s.Close()
				s.Range(func(_, _ uint64) bool {
					t.Fatal("Range visited an entry after Close")
					return false
				})
			})
		}
	}
}

// TestCloseStopsBackgroundGoroutines pins the documented Close ordering
// guarantee: once Close returns — on a sharded store too — every
// background maintenance goroutine the store started (the Shortcut-EH
// mapper per shard, the WAL's interval syncer) has exited.
func TestCloseStopsBackgroundGoroutines(t *testing.T) {
	countGoroutines := func() int {
		runtime.GC()
		return runtime.NumGoroutine()
	}
	baseline := countGoroutines()

	s, err := Open(KindShortcutEH, WithShards(4),
		WithWAL(t.TempDir()), WithFsync(FsyncInterval), WithFsyncInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := runtime.NumGoroutine(); got <= baseline {
		t.Fatalf("expected background goroutines while open: %d <= baseline %d", got, baseline)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close must have joined them already; poll a little to absorb
	// unrelated runtime goroutines winding down.
	deadline := time.Now().Add(5 * time.Second)
	for countGoroutines() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline after Close: %d > %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodePayload throws arbitrary bytes at the record payload decoder:
// it must never panic, and whatever it accepts must re-encode to the same
// payload (the codec is bijective on valid records).
func FuzzDecodePayload(f *testing.F) {
	f.Add(appendRecord(nil, 1, OpPut, []uint64{1, 2}, []uint64{3, 4})[recordHeaderSize:])
	f.Add(appendRecord(nil, 9, OpDel, []uint64{42}, nil)[recordHeaderSize:])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, OpPut, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, payload []byte) {
		lsn, op, keys, values, err := decodePayload(payload)
		if err != nil {
			return
		}
		re := appendRecord(nil, lsn, op, keys, values)[recordHeaderSize:]
		if len(re) != len(payload) {
			t.Fatalf("re-encoded %d bytes from a %d-byte payload", len(re), len(payload))
		}
		for i := range re {
			if re[i] != payload[i] {
				t.Fatalf("re-encoding differs at byte %d", i)
			}
		}
	})
}

// FuzzOpenSegment feeds arbitrary bytes to the segment scanner as a
// final segment: Open must never panic and never fail (a final segment's
// tail damage is always repairable by truncation), and the resulting log
// must accept an append and survive a reopen.
func FuzzOpenSegment(f *testing.F) {
	intact := appendRecord(nil, 1, OpPut, []uint64{5}, []uint64{6})
	f.Add(intact)
	f.Add(intact[:len(intact)-3])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, blob []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		var replayed uint64
		l, err := Open(dir, Options{Mode: FsyncOff}, func(lsn uint64, _ byte, _, _ []uint64) error {
			replayed = lsn
			return nil
		})
		if err != nil {
			t.Fatalf("Open on a damaged final segment must repair, got %v", err)
		}
		lsn, err := l.AppendDelete([]uint64{1})
		if err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if lsn != replayed+1 {
			t.Fatalf("append got LSN %d after replaying up to %d", lsn, replayed)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{Mode: FsyncOff}, nil); err != nil {
			t.Fatalf("reopen after repair+append: %v", err)
		}
	})
}

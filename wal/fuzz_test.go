package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vmshortcut/internal/op"
)

// FuzzDecodePayload throws arbitrary bytes at the record payload decoder:
// it must never panic, and whatever it accepts must re-encode to the same
// payload (the codec is bijective on valid records) — across all three
// record codes, including OpMixed's variable-stride layout.
func FuzzDecodePayload(f *testing.F) {
	f.Add(appendRecord(nil, 1, OpPut, op.AppendPairsPayload(nil, []uint64{1, 2}, []uint64{3, 4}))[recordHeaderSize:])
	f.Add(appendRecord(nil, 9, OpDel, op.AppendKeysPayload(nil, []uint64{42}))[recordHeaderSize:])
	var mixed op.Batch
	mixed.Get(5)
	mixed.Put(6, 66)
	mixed.Del(7)
	f.Add(appendRecord(nil, 3, OpMixed, mixed.AppendPayload(nil))[recordHeaderSize:])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, OpPut, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var b op.Batch
		lsn, code, err := decodeRecordPayload(payload, &b)
		if err != nil {
			return
		}
		re := appendRecord(nil, lsn, code, b.AppendPayload(nil))[recordHeaderSize:]
		if !bytes.Equal(re, payload) {
			t.Fatalf("re-encoded %d bytes differ from the %d-byte payload", len(re), len(payload))
		}
	})
}

// FuzzOpenSegment feeds arbitrary bytes to the segment scanner as a
// final segment: Open must never panic and never fail (a final segment's
// tail damage is always repairable by truncation), and the resulting log
// must accept an append and survive a reopen.
func FuzzOpenSegment(f *testing.F) {
	intact := appendRecord(nil, 1, OpPut, op.AppendPairsPayload(nil, []uint64{5}, []uint64{6}))
	var mixed op.Batch
	mixed.Put(1, 2)
	mixed.Get(3)
	withMixed := appendRecord(intact, 2, OpMixed, mixed.AppendPayload(nil))
	f.Add(intact)
	f.Add(intact[:len(intact)-3])
	f.Add(withMixed)
	f.Add(withMixed[:len(withMixed)-5])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, blob []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		var replayed uint64
		l, err := Open(dir, Options{Mode: FsyncOff}, func(lsn uint64, _ *op.Batch) error {
			replayed = lsn
			return nil
		})
		if err != nil {
			t.Fatalf("Open on a damaged final segment must repair, got %v", err)
		}
		lsn, err := l.AppendDelete([]uint64{1})
		if err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if lsn != replayed+1 {
			t.Fatalf("append got LSN %d after replaying up to %d", lsn, replayed)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{Mode: FsyncOff}, nil); err != nil {
			t.Fatalf("reopen after repair+append: %v", err)
		}
	})
}

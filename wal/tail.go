// Tail subscription: the replication primary's feed. Tail streams every
// record after a starting position to a callback — first catching up from
// the segment files, then following live appends via a notification
// channel — without buffering records in memory or holding the log lock
// while reading. The design leans on two append-only facts: bytes written
// to a segment never change, and a record is wholly on disk before the
// log publishes its LSN (the tailer flushes the segment writer under the
// log lock and snapshots lastLSN in the same critical section, then reads
// the files outside any lock, stopping at the snapshot — so it can never
// observe a partially-written record).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrCompacted is returned by Tail when the requested position has been
// compacted away: the records the caller still needs exist nowhere in the
// log, so it must full-sync from a snapshot instead.
var ErrCompacted = errors.New("wal: tail position compacted away")

// TailRecord is one record delivered by Tail: the sequence number, the
// batch code, and the batch payload exactly as it sits on disk (and
// exactly as it arrived on the wire — the zero-re-encode invariant). The
// payload aliases a buffer reused between records: the callback must
// consume or copy it before returning.
type TailRecord struct {
	LSN     uint64
	Code    byte
	Payload []byte
}

// TailFunc receives records from Tail in LSN order. Returning an error
// stops the tail and surfaces the error from Tail.
type TailFunc func(r TailRecord) error

// Tail delivers every record with LSN > from to fn, in order, then blocks
// following the log: each new append is delivered as it becomes readable
// (before any fsync — shipping does not wait on the sync policy). It
// returns nil when stop closes, ErrClosed once the log closes (after
// delivering every record appended before Close began), ErrCompacted when
// record from+1 no longer exists, and fn's error if fn fails. Multiple
// Tails may run concurrently with each other and with appenders.
func (l *Log) Tail(from uint64, stop <-chan struct{}, fn TailFunc) error {
	l.mu.Lock()
	last, closed := l.lastLSN, l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if from > last {
		return fmt.Errorf("wal: tail from LSN %d but the log ends at %d", from, last)
	}
	l.tailers.Add(1)
	defer l.tailers.Add(-1)
	t := tailer{l: l, next: from + 1}
	defer t.closeFile()
	for {
		target, err := t.sync()
		if err != nil {
			return err
		}
		if target >= t.next {
			if err := t.deliver(target, fn); err != nil {
				return err
			}
			continue // more may have arrived while delivering
		}
		// Caught up. Grab the wake channel BEFORE re-checking the
		// position: an append between the check and the select would
		// otherwise be a missed wakeup.
		ch := l.wakeChan()
		if l.LastLSN() >= t.next {
			continue
		}
		select {
		case <-ch:
		case <-stop:
			return nil
		case <-l.stopc:
			// Close begins by signalling stopc; drain what was appended
			// before it, then report closed. Appends racing with Close
			// itself have no delivery guarantee.
			if target, err := t.sync(); err == nil && target >= t.next {
				if err := t.deliver(target, fn); err != nil {
					return err
				}
			}
			return ErrClosed
		}
	}
}

// tailer is one Tail call's cursor: the next LSN owed to the callback and
// the open segment it is reading from.
type tailer struct {
	l        *Log
	next     uint64
	f        *os.File
	br       *bufio.Reader
	segFirst uint64 // firstLSN of the open segment
	buf      []byte // payload scratch, reused across records
}

// sync flushes the log's segment writer and snapshots the delivery
// target, both under the log lock: every record with LSN ≤ the returned
// target is fully on disk before this returns. It also re-checks that the
// cursor has not been compacted out from under us.
func (t *tailer) sync() (uint64, error) {
	l := t.l
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	if !l.closed {
		if err := l.bw.Flush(); err != nil {
			l.err = err
			l.mu.Unlock()
			return 0, err
		}
	}
	target := l.lastLSN
	oldest := l.segs[0].firstLSN
	l.mu.Unlock()
	if t.next < oldest {
		return 0, ErrCompacted
	}
	return target, nil
}

// deliver reads records from the segment files and feeds [next, target]
// to fn. Records below next (the head of a segment entered mid-way on
// resume) are skipped; a clean EOF below target means the segment was
// sealed by rotation and the cursor moves to its successor.
func (t *tailer) deliver(target uint64, fn TailFunc) error {
	for t.next <= target {
		if t.f == nil {
			if err := t.openSegment(); err != nil {
				return err
			}
		}
		lsn, code, payload, err := t.readRecord()
		if err == io.EOF {
			prev := t.segFirst
			t.closeFile()
			if err := t.openSegment(); err != nil {
				return err
			}
			if t.segFirst == prev {
				return fmt.Errorf("%w: record %d missing from segment starting at LSN %d",
					ErrCorrupt, t.next, prev)
			}
			continue
		}
		if err != nil {
			return err
		}
		if lsn < t.next {
			continue
		}
		if lsn != t.next {
			return fmt.Errorf("%w: tail read LSN %d, expected %d", ErrCorrupt, lsn, t.next)
		}
		if err := fn(TailRecord{LSN: lsn, Code: code, Payload: payload}); err != nil {
			return err
		}
		t.next = lsn + 1
	}
	return nil
}

// openSegment opens the segment that contains (or will contain) record
// next. A segment file deleted between the lookup and the open was
// compacted, which implies next was too.
func (t *tailer) openSegment() error {
	l := t.l
	l.mu.Lock()
	var seg segment
	found := false
	for i := len(l.segs) - 1; i >= 0; i-- {
		if l.segs[i].firstLSN <= t.next {
			seg = l.segs[i]
			found = true
			break
		}
	}
	l.mu.Unlock()
	if !found {
		return ErrCompacted
	}
	f, err := os.Open(seg.path)
	if err != nil {
		if os.IsNotExist(err) {
			return ErrCompacted
		}
		return fmt.Errorf("wal: tail opening %s: %w", seg.path, err)
	}
	t.f = f
	t.segFirst = seg.firstLSN
	if t.br == nil {
		t.br = bufio.NewReaderSize(f, 256<<10)
	} else {
		t.br.Reset(f)
	}
	return nil
}

// readRecord reads one record at the cursor, verifying its CRC. It
// returns io.EOF at a clean segment end; any other shortfall is
// corruption, because deliver never reads past a position sync proved to
// be fully on disk. The payload aliases the tailer's scratch buffer.
func (t *tailer) readRecord() (lsn uint64, code byte, payload []byte, err error) {
	var hdr [recordHeaderSize]byte
	n, err := io.ReadFull(t.br, hdr[:])
	if err == io.EOF && n == 0 {
		return 0, 0, nil, io.EOF
	}
	if err != nil {
		return 0, 0, nil, fmt.Errorf("%w: tail: partial record header in segment at LSN %d", ErrCorrupt, t.segFirst)
	}
	payloadLen := int(binary.LittleEndian.Uint32(hdr[:4]))
	if payloadLen < minPayload || payloadLen > maxPayload {
		return 0, 0, nil, fmt.Errorf("%w: tail: payload length %d out of range", ErrCorrupt, payloadLen)
	}
	if cap(t.buf) < payloadLen {
		t.buf = make([]byte, payloadLen)
	}
	t.buf = t.buf[:payloadLen]
	if _, err := io.ReadFull(t.br, t.buf); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: tail: partial record payload", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(t.buf) != binary.LittleEndian.Uint32(hdr[4:]) {
		return 0, 0, nil, fmt.Errorf("%w: tail: CRC mismatch at LSN %d", ErrCorrupt, binary.LittleEndian.Uint64(t.buf))
	}
	lsn = binary.LittleEndian.Uint64(t.buf)
	code = t.buf[8]
	switch code {
	case OpPut, OpDel, OpMixed:
	default:
		return 0, 0, nil, fmt.Errorf("%w: tail: unknown opcode 0x%02x", ErrCorrupt, code)
	}
	return lsn, code, t.buf[payloadPrefixSize:], nil
}

// closeFile releases the open segment file, if any.
func (t *tailer) closeFile() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
}

// wakeChan returns the channel the next append will close.
func (l *Log) wakeChan() <-chan struct{} {
	l.wakeMu.Lock()
	ch := l.wakeC
	l.wakeMu.Unlock()
	return ch
}

// wakeTailers signals waiting tailers that the log grew. The tailer count
// keeps the no-subscriber hot path to one atomic load.
func (l *Log) wakeTailers() {
	if l.tailers.Load() == 0 {
		return
	}
	l.wakeMu.Lock()
	close(l.wakeC)
	l.wakeC = make(chan struct{})
	l.wakeMu.Unlock()
}

// scanRecords is the auditor-side strict segment scan used by
// VerifyChain: unlike replay it treats every shortfall — including a torn
// tail — as corruption, and repairs nothing. It returns how many records
// the segment holds. filepath.Base keeps messages stable across dirs.
func scanRecords(path string, fn func(lsn uint64, code byte, payload []byte) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var (
		hdr     [recordHeaderSize]byte
		payload []byte
		count   int
	)
	base := filepath.Base(path)
	for {
		n, err := io.ReadFull(br, hdr[:])
		if err == io.EOF && n == 0 {
			return count, nil
		}
		if err != nil {
			return count, fmt.Errorf("%w: %s: torn record header", ErrCorrupt, base)
		}
		payloadLen := int(binary.LittleEndian.Uint32(hdr[:4]))
		if payloadLen < minPayload || payloadLen > maxPayload {
			return count, fmt.Errorf("%w: %s: payload length %d out of range", ErrCorrupt, base, payloadLen)
		}
		if cap(payload) < payloadLen {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return count, fmt.Errorf("%w: %s: torn record payload", ErrCorrupt, base)
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
			return count, fmt.Errorf("%w: %s: CRC mismatch", ErrCorrupt, base)
		}
		lsn := binary.LittleEndian.Uint64(payload)
		code := payload[8]
		switch code {
		case OpPut, OpDel, OpMixed:
		default:
			return count, fmt.Errorf("%w: %s: unknown opcode 0x%02x", ErrCorrupt, base, code)
		}
		if err := fn(lsn, code, payload[payloadPrefixSize:]); err != nil {
			return count, err
		}
		count++
	}
}

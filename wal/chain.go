// Tamper-evident chained hashes. A Chain is a running SHA-256 over a
// record sequence: each link covers the previous link's digest plus the
// record's (lsn, code, payload), so the digest after record n attests the
// exact bytes of every record since the chain's anchor — flip one bit
// anywhere in that prefix and every later digest changes. This is the
// ledger pattern (hash-linked entries under a published head) applied to
// the WAL's record stream: a follower receiving records with their chain
// digests can verify it holds an untampered prefix of the primary's log,
// and an auditor can recompute the chain over the segment files on disk
// (VerifyChain) and compare heads out of band.
//
// A chain is anchored AFTER a record position: NewChain(n) seeds the
// digest from n itself, so two chains agree only when they start at the
// same position and saw the same records — a replication stream resumed
// from LSN n and the follower's own chain state meet at the same anchor
// by construction. The anchor digest is derived, not stored; compacting
// the log away below the anchor does not invalidate the chain above it,
// but a reopened log re-anchors at its new oldest record.
package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// ChainHashSize is the digest width of a chain link (SHA-256).
const ChainHashSize = sha256.Size

// chainSeed derives the anchor digest for a chain starting after record
// `anchor`. The domain tag keeps WAL chain digests from colliding with
// any other SHA-256 use of the same payload bytes.
func chainSeed(anchor uint64) [ChainHashSize]byte {
	h := sha256.New()
	h.Write([]byte("vmshortcut/wal chain v1\x00"))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], anchor)
	h.Write(b[:])
	var sum [ChainHashSize]byte
	h.Sum(sum[:0])
	return sum
}

// Chain is a running tamper-evidence digest over a record sequence. The
// zero value is not valid; construct with NewChain. A Chain is not safe
// for concurrent use.
type Chain struct {
	lsn uint64
	sum [ChainHashSize]byte
}

// NewChain returns a chain anchored after record position anchor: the
// first Extend must be record anchor+1.
func NewChain(anchor uint64) Chain {
	return Chain{lsn: anchor, sum: chainSeed(anchor)}
}

// LSN returns the position of the newest record the chain covers (the
// anchor, before any Extend).
func (c *Chain) LSN() uint64 { return c.lsn }

// Sum returns the current head digest.
func (c *Chain) Sum() [ChainHashSize]byte { return c.sum }

// Extend folds record (lsn, code, payload) into the chain and returns the
// new head digest. lsn must be exactly the successor of the chain's
// position — a gap would silently exempt the skipped records from the
// attestation, so it is an error instead.
func (c *Chain) Extend(lsn uint64, code byte, payload []byte) ([ChainHashSize]byte, error) {
	if lsn != c.lsn+1 {
		return [ChainHashSize]byte{}, fmt.Errorf("wal: chain at LSN %d cannot extend with record %d", c.lsn, lsn)
	}
	h := sha256.New()
	h.Write(c.sum[:])
	var pre [9]byte
	binary.LittleEndian.PutUint64(pre[:], lsn)
	pre[8] = code
	h.Write(pre[:])
	h.Write(payload)
	h.Sum(c.sum[:0])
	c.lsn = lsn
	return c.sum, nil
}

// VerifyChain recomputes the chain over the segment files in dir — the
// auditor's entry point. Unlike Open it mutates nothing and repairs
// nothing: any structural damage (a CRC mismatch, a torn record, an LSN
// gap) fails with ErrCorrupt even at the tail, because an auditor cannot
// distinguish a crash artifact from tampering. It returns the chain's
// anchor (the position before the oldest record on disk), the last
// record's LSN, and the head digest; comparing the head against one
// published out of band (the primary's ChainHead, a prior audit) proves
// the prefix is intact. An empty log verifies trivially: anchor == last
// and the head is the anchor seed.
func VerifyChain(dir string) (anchor, last uint64, head [ChainHashSize]byte, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, 0, head, err
	}
	if len(segs) == 0 {
		return 0, 0, chainSeed(0), nil
	}
	anchor = segs[0].firstLSN - 1
	chain := NewChain(anchor)
	expect := anchor + 1
	for i, seg := range segs {
		if seg.firstLSN != expect {
			// A named-but-empty successor segment is legal (crash between
			// rotation and the first flushed record) only when nothing
			// follows it; mid-list the gap means lost records.
			return 0, 0, head, fmt.Errorf("%w: segment %s starts at LSN %d, expected %d",
				ErrCorrupt, seg.path, seg.firstLSN, expect)
		}
		n, err := scanRecords(seg.path, func(lsn uint64, code byte, payload []byte) error {
			if lsn != expect {
				return fmt.Errorf("%w: record LSN %d, expected %d", ErrCorrupt, lsn, expect)
			}
			if _, err := chain.Extend(lsn, code, payload); err != nil {
				return err
			}
			expect = lsn + 1
			return nil
		})
		if err != nil {
			return 0, 0, head, err
		}
		if i < len(segs)-1 && n == 0 {
			return 0, 0, head, fmt.Errorf("%w: segment %s is empty but has a successor", ErrCorrupt, seg.path)
		}
	}
	return anchor, chain.LSN(), chain.Sum(), nil
}

package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"vmshortcut/internal/op"
)

// collectTail runs Tail(from) until n records arrive (or a timeout),
// returning the records and Tail's error.
func collectTail(t *testing.T, l *Log, from uint64, n int) ([]TailRecord, error) {
	t.Helper()
	var (
		mu   sync.Mutex
		recs []TailRecord
	)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- l.Tail(from, stop, func(r TailRecord) error {
			mu.Lock()
			recs = append(recs, TailRecord{LSN: r.LSN, Code: r.Code, Payload: append([]byte(nil), r.Payload...)})
			got := len(recs)
			mu.Unlock()
			if got == n {
				close(stop)
			}
			return nil
		})
	}()
	select {
	case err := <-errc:
		mu.Lock()
		defer mu.Unlock()
		return recs, err
	case <-time.After(10 * time.Second):
		t.Fatalf("tail did not deliver %d records in time", n)
		return nil, nil
	}
}

func TestTailCatchUpThenLive(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 5; i++ {
		if _, err := l.AppendPut([]uint64{i}, []uint64{i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	// Appends racing the tail exercise the live path.
	go func() {
		for i := uint64(6); i <= 20; i++ {
			l.AppendPut([]uint64{i}, []uint64{i * 10})
		}
	}()
	recs, err := collectTail(t, l, 0, 20)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
		if r.Code != OpPut {
			t.Fatalf("record %d has code 0x%02x", i, r.Code)
		}
		var b op.Batch
		if err := op.DecodePayload(r.Code, r.Payload, &b); err != nil {
			t.Fatalf("record %d payload: %v", i, err)
		}
		if b.Len() != 1 || b.Keys()[0] != r.LSN {
			t.Fatalf("record %d decoded to %d pairs, key %d", i, b.Len(), b.Keys()[0])
		}
	}
}

func TestTailResumeFromMidLog(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 10; i++ {
		if _, err := l.AppendDelete([]uint64{i}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := collectTail(t, l, 7, 3)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	if len(recs) != 3 || recs[0].LSN != 8 || recs[2].LSN != 10 {
		t.Fatalf("resume from 7 delivered %+v", recs)
	}
}

func TestTailAcrossRotation(t *testing.T) {
	// Tiny segments: every few records rotate, so both the catch-up scan
	// and the live follow cross segment boundaries.
	l, err := Open(t.TempDir(), Options{Mode: FsyncOff, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 50
	for i := uint64(1); i <= n/2; i++ {
		if _, err := l.AppendPut([]uint64{i}, []uint64{i}); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		for i := uint64(n/2 + 1); i <= n; i++ {
			l.AppendPut([]uint64{i}, []uint64{i})
		}
	}()
	recs, err := collectTail(t, l, 0, n)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("test wanted rotation, got %d segments", st.Segments)
	}
}

func TestTailCompactedPosition(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Mode: FsyncOff, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 30; i++ {
		if _, err := l.AppendPut([]uint64{i}, []uint64{i}); err != nil {
			t.Fatal(err)
		}
	}
	if removed, err := l.Compact(20); err != nil || removed == 0 {
		t.Fatalf("compact removed %d segments, err %v", removed, err)
	}
	oldest := l.OldestLSN()
	if oldest <= 1 {
		t.Fatalf("compact left oldest at %d", oldest)
	}
	err = l.Tail(0, nil, func(TailRecord) error { return nil })
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("tail from 0 after compact: %v, want ErrCompacted", err)
	}
	// From the compaction horizon onward the tail still works.
	recs, err := collectTail(t, l, oldest-1, int(30-(oldest-1)))
	if err != nil {
		t.Fatalf("tail from %d: %v", oldest-1, err)
	}
	if recs[0].LSN != oldest {
		t.Fatalf("first record %d, want %d", recs[0].LSN, oldest)
	}
}

func TestTailEndsOnClose(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendPut([]uint64{1}, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	errc := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		first := true
		errc <- l.Tail(0, nil, func(r TailRecord) error {
			got = append(got, r.LSN)
			if first {
				first = false
				close(started)
			}
			return nil
		})
	}()
	<-started
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("tail after close: %v, want ErrClosed", err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("tail delivered %v before close", got)
	}
}

func TestTailFromBeyondEnd(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendPut([]uint64{1}, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Tail(5, nil, func(TailRecord) error { return nil }); err == nil {
		t.Fatal("tail from beyond the log end must fail")
	}
}

func TestTailCallbackErrorStops(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 3; i++ {
		if _, err := l.AppendPut([]uint64{i}, []uint64{i}); err != nil {
			t.Fatal(err)
		}
	}
	boom := fmt.Errorf("boom")
	err = l.Tail(0, nil, func(r TailRecord) error {
		if r.LSN == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("tail: %v, want the callback's error", err)
	}
}

// TestTailManyConcurrent runs several tailers against a writer storm:
// each must see every LSN exactly once, in order — under -race this also
// vets the wake-channel handoff.
func TestTailManyConcurrent(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Mode: FsyncOff, SegmentBytes: 4096}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 400
	const tails = 3
	var wg sync.WaitGroup
	errs := make([]error, tails)
	seqs := make([][]uint64, tails)
	for ti := 0; ti < tails; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			stop := make(chan struct{})
			errs[ti] = l.Tail(0, stop, func(r TailRecord) error {
				seqs[ti] = append(seqs[ti], r.LSN)
				if r.LSN == n {
					close(stop)
				}
				return nil
			})
		}(ti)
	}
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < n/4; i++ {
				l.AppendPut([]uint64{uint64(w)}, []uint64{uint64(i)})
			}
		}(w)
	}
	wg.Wait()
	for ti := 0; ti < tails; ti++ {
		if errs[ti] != nil {
			t.Fatalf("tailer %d: %v", ti, errs[ti])
		}
		if len(seqs[ti]) != n {
			t.Fatalf("tailer %d saw %d records, want %d", ti, len(seqs[ti]), n)
		}
		for i, lsn := range seqs[ti] {
			if lsn != uint64(i+1) {
				t.Fatalf("tailer %d: record %d has LSN %d", ti, i, lsn)
			}
		}
	}
}

package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vmshortcut/internal/op"
)

// rec is one replayed record, for collection-based assertions.
type rec struct {
	lsn    uint64
	op     byte
	keys   []uint64
	values []uint64
}

// collect returns a ReplayFunc appending into out. The batch is reused
// between callbacks, so its columns are copied out.
func collect(out *[]rec) ReplayFunc {
	return func(lsn uint64, b *op.Batch) error {
		r := rec{lsn: lsn, op: b.Code(), keys: append([]uint64(nil), b.Keys()...)}
		if b.Puts() > 0 {
			r.values = append([]uint64(nil), b.Vals()...)
		}
		*out = append(*out, r)
		return nil
	}
}

func TestParseFsyncMode(t *testing.T) {
	for _, m := range []FsyncMode{FsyncAlways, FsyncInterval, FsyncOff} {
		got, err := ParseFsyncMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("ParseFsyncMode accepted an unknown mode")
	}
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn, err := l.AppendPut([]uint64{1, 2, 3}, []uint64{10, 20, 30}); err != nil || lsn != 1 {
		t.Fatalf("AppendPut = %d, %v", lsn, err)
	}
	if lsn, err := l.AppendDelete([]uint64{2}); err != nil || lsn != 2 {
		t.Fatalf("AppendDelete = %d, %v", lsn, err)
	}
	if lsn, err := l.AppendPut([]uint64{0}, []uint64{99}); err != nil || lsn != 3 {
		t.Fatalf("AppendPut = %d, %v", lsn, err)
	}
	st := l.Stats()
	if st.LastLSN != 3 || st.SyncedLSN != 3 || st.Segments != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []rec
	l2, err := Open(dir, Options{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	want := []rec{
		{lsn: 1, op: OpPut, keys: []uint64{1, 2, 3}, values: []uint64{10, 20, 30}},
		{lsn: 2, op: OpDel, keys: []uint64{2}},
		{lsn: 3, op: OpPut, keys: []uint64{0}, values: []uint64{99}},
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.lsn != w.lsn || g.op != w.op || !equalU64(g.keys, w.keys) || !equalU64(g.values, w.values) {
			t.Fatalf("record %d = %+v, want %+v", i, g, w)
		}
	}
	// Appends continue from the replayed position.
	if lsn, err := l2.AppendDelete([]uint64{7}); err != nil || lsn != 4 {
		t.Fatalf("post-replay append = %d, %v", lsn, err)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTornTailEveryOffset is the torn-write table test: a one-segment log
// truncated at every byte offset must open cleanly, replay exactly the
// records that fit completely before the cut, and accept new appends.
func TestTornTailEveryOffset(t *testing.T) {
	src := t.TempDir()
	l, err := Open(src, Options{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A few records of different shapes and sizes.
	var boundaries []int64 // file size after each complete record
	segPath := filepath.Join(src, segName(1))
	appendAndMark := func(op byte, keys, values []uint64) {
		t.Helper()
		if op == OpPut {
			_, err = l.AppendPut(keys, values)
		} else {
			_, err = l.AppendDelete(keys)
		}
		if err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, fi.Size())
	}
	appendAndMark(OpPut, []uint64{1, 2}, []uint64{11, 22})
	appendAndMark(OpDel, []uint64{2, 3, 4}, nil)
	// A mixed record in the middle: torn-tail repair must handle the
	// variable-stride layout exactly like the uniform ones.
	var mixed op.Batch
	mixed.Get(7)
	mixed.Put(8, 88)
	mixed.Del(9)
	if _, err := l.AppendBatch(OpMixed, mixed.AppendPayload(nil)); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(segPath); err != nil {
		t.Fatal(err)
	} else {
		boundaries = append(boundaries, fi.Size())
	}
	appendAndMark(OpPut, []uint64{5}, []uint64{55})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(whole); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []rec
		l2, err := Open(dir, Options{Mode: FsyncOff}, collect(&got))
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		wantRecords := 0
		for _, b := range boundaries {
			if int64(cut) >= b {
				wantRecords++
			}
		}
		if len(got) != wantRecords {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), wantRecords)
		}
		// The log stays appendable and the new record survives a reopen.
		newLSN, err := l2.AppendPut([]uint64{100}, []uint64{200})
		if err != nil {
			t.Fatalf("cut at %d: append after truncation: %v", cut, err)
		}
		if want := uint64(wantRecords) + 1; newLSN != want {
			t.Fatalf("cut at %d: new LSN %d, want %d", cut, newLSN, want)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut at %d: close: %v", cut, err)
		}
		got = got[:0]
		l3, err := Open(dir, Options{Mode: FsyncOff}, collect(&got))
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		if len(got) != wantRecords+1 || got[len(got)-1].keys[0] != 100 {
			t.Fatalf("cut at %d: after reappend replayed %d records", cut, len(got))
		}
		l3.Close()
	}
}

func TestRotationAndCompact(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record is ~45 bytes, so rotation is frequent.
	l, err := Open(dir, Options{Mode: FsyncOff, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := uint64(1); i <= n; i++ {
		if _, err := l.AppendPut([]uint64{i}, []uint64{i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected several segments, got %d", st.Segments)
	}
	// Compacting up to LSN 20 must keep every record after 20 replayable.
	removed, err := l.Compact(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("Compact removed nothing")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []rec
	l2, err := Open(dir, Options{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) == 0 || got[len(got)-1].lsn != n {
		t.Fatalf("replay after compact ended at %d records", len(got))
	}
	for _, g := range got {
		if g.lsn > 20 && g.keys[0] != g.lsn {
			t.Fatalf("record %d carries key %d", g.lsn, g.keys[0])
		}
	}
	first := got[0].lsn
	if first > 21 {
		t.Fatalf("compact removed records past LSN 20: first replayed is %d", first)
	}
}

func TestCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: FsyncOff, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if _, err := l.AppendPut([]uint64{i}, []uint64{i}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 2 {
		t.Fatal("need at least two segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the FIRST segment: that is corruption, not
	// a torn tail, and recovery must refuse rather than drop records.
	path := filepath.Join(dir, segName(1))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[recordHeaderSize+9] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt middle segment = %v, want ErrCorrupt", err)
	}
}

// TestMissingMiddleSegmentFails pins the cross-segment continuity check:
// a lost segment between two surviving ones is a hole of acknowledged
// records and must fail Open, not replay around it.
func TestMissingMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: FsyncOff, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 30; i++ {
		if _, err := l.AppendPut([]uint64{i}, []uint64{i}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("need ≥3 segments, got %d", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove a middle segment (neither the first nor the last).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segNames []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			segNames = append(segNames, e.Name())
		}
	}
	if err := os.Remove(filepath.Join(dir, segNames[1])); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over a segment gap = %v, want ErrCorrupt", err)
	}
}

// TestEmptySegmentSeedsLSNFromName pins the LSN floor: a lone segment
// that replays empty (crash between rotation and the first flushed
// record, predecessors compacted) must still resume LSNs after its name,
// never restart at 1 — reused LSNs would collide with snapshot coverage
// and be dropped on the next recovery.
func TestEmptySegmentSeedsLSNFromName(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(101)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().LastLSN; got != 100 {
		t.Fatalf("LastLSN = %d, want 100 (from the segment name)", got)
	}
	lsn, err := l.AppendPut([]uint64{1}, []uint64{1})
	if err != nil || lsn != 101 {
		t.Fatalf("first append = %d, %v, want LSN 101", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The record must survive the next recovery (it is the segment's
	// first record and matches the name).
	var got []rec
	l2, err := Open(dir, Options{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 1 || got[0].lsn != 101 {
		t.Fatalf("replayed %+v, want one record at LSN 101", got)
	}
}

// TestGroupCommitSharesFsyncs drives many concurrent FsyncAlways
// appenders and checks the cohort actually shares fsyncs: the fsync
// count must come out well below the append count (every appender
// issuing its own would make them equal).
func TestGroupCommitSharesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const workers, perWorker = 16, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := l.AppendPut([]uint64{uint64(w)}, []uint64{uint64(i)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	total := uint64(workers * perWorker)
	if st.SyncedLSN != total {
		t.Fatalf("synced %d of %d appended", st.SyncedLSN, total)
	}
	if st.Syncs >= total {
		t.Fatalf("%d fsyncs for %d appends: group commit shared nothing", st.Syncs, total)
	}
	t.Logf("group commit: %d appends covered by %d fsyncs", total, st.Syncs)
}

// TestLargeBatchSplits checks that a batch beyond MaxRecordPairs lands as
// several records that replay back to the same pairs.
func TestLargeBatchSplits(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := MaxRecordPairs + 100
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = uint64(i) * 2
	}
	lsn, err := l.AppendPut(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 2 {
		t.Fatalf("last LSN = %d, want 2 (two records)", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var gotK, gotV []uint64
	l2, err := Open(dir, Options{}, func(_ uint64, b *op.Batch) error {
		gotK = append(gotK, b.Keys()...)
		gotV = append(gotV, b.Vals()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !equalU64(gotK, keys) || !equalU64(gotV, vals) {
		t.Fatalf("split batch did not replay identically (%d pairs back)", len(gotK))
	}
}

// TestConcurrentAppends drives appenders from many goroutines under
// FsyncAlways (group commit) and checks every append is replayed exactly
// once. Run under -race this also validates the locking.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := uint64(w*perWorker + i)
				if _, err := l.AppendPut([]uint64{key}, []uint64{key}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.LastLSN != workers*perWorker {
		t.Fatalf("LastLSN = %d, want %d", st.LastLSN, workers*perWorker)
	}
	if st.SyncedLSN != st.LastLSN {
		t.Fatalf("FsyncAlways left synced=%d behind last=%d", st.SyncedLSN, st.LastLSN)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	l2, err := Open(dir, Options{}, func(_ uint64, b *op.Batch) error {
		seen[b.Keys()[0]] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(seen) != workers*perWorker {
		t.Fatalf("replayed %d distinct keys, want %d", len(seen), workers*perWorker)
	}
}

func TestIntervalModeSyncsAndCloses(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: FsyncInterval, Interval: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendPut([]uint64{1}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	// Close performs the final sync and must stop the ticker goroutine.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendPut([]uint64{2}, []uint64{2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after Close = %v, want ErrClosed", err)
	}
	var got []rec
	l2, err := Open(dir, Options{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
}

// TestRecordEncoding pins the on-disk framing so a refactor cannot
// silently change the format: a known record must produce known bytes,
// and the streamed append path (writeRecordLocked) must produce the
// exact bytes the in-memory helper does.
func TestRecordEncoding(t *testing.T) {
	pairs := op.AppendPairsPayload(nil, []uint64{0x1122334455667788}, []uint64{0x99})
	got := appendRecord(nil, 7, OpPut, pairs)
	if len(got) != recordHeaderSize+payloadPrefixSize+4+16 {
		t.Fatalf("record length %d", len(got))
	}
	// payloadLen field.
	if want := payloadPrefixSize + 4 + 16; int(got[0])|int(got[1])<<8 != want {
		t.Fatalf("payloadLen = %d, want %d", int(got[0])|int(got[1])<<8, want)
	}
	// The payload must start with the LSN and op and decode back.
	var b op.Batch
	lsn, code, err := decodeRecordPayload(got[recordHeaderSize:], &b)
	if err != nil || lsn != 7 || code != OpPut || b.Keys()[0] != 0x1122334455667788 || b.Vals()[0] != 0x99 {
		t.Fatalf("decode = %d %#x %v %v %v", lsn, code, b.Keys(), b.Vals(), err)
	}
	if !bytes.Equal(appendRecord(nil, 7, OpPut, pairs), got) {
		t.Fatal("encoding is not deterministic")
	}

	// The real append path writes the identical bytes: one record through
	// a live log equals the helper's framing (the first record has LSN 1).
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendPut([]uint64{0x1122334455667788}, []uint64{0x99}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, appendRecord(nil, 1, OpPut, pairs)) {
		t.Fatalf("streamed record %x differs from framed record", onDisk)
	}
}

// TestAppendBatchZeroCopyRoundTrip drives the zero-copy append path: a
// pre-encoded payload (as the wire layer hands it over) must land as one
// record whose payload bytes are exactly the input, and replay must
// reproduce the batch — including a mixed record whose GET entries are
// carried but ignored as mutations.
func TestAppendBatchZeroCopyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mixed op.Batch
	mixed.Get(1)
	mixed.Put(2, 22)
	mixed.Del(3)
	mixed.Put(4, 44)
	payload := mixed.AppendPayload(nil)
	lsn, err := l.AppendBatch(OpMixed, payload)
	if err != nil || lsn != 1 {
		t.Fatalf("AppendBatch = %d, %v", lsn, err)
	}
	pairs := op.AppendPairsPayload(nil, []uint64{9}, []uint64{90})
	if lsn, err = l.AppendBatch(OpPut, pairs); err != nil || lsn != 2 {
		t.Fatalf("AppendBatch(put) = %d, %v", lsn, err)
	}
	if _, err := l.AppendBatch(0x42, payload); err == nil {
		t.Fatal("AppendBatch accepted an invalid code")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The record's payload bytes on disk are the input bytes.
	onDisk, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	rec1 := appendRecord(nil, 1, OpMixed, payload)
	rec2 := appendRecord(nil, 2, OpPut, pairs)
	if !bytes.Equal(onDisk, append(rec1, rec2...)) {
		t.Fatalf("on-disk bytes differ from the zero-copy framing")
	}

	var got []rec
	l2, err := Open(dir, Options{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 2 || got[0].op != OpMixed || got[1].op != OpPut {
		t.Fatalf("replayed %+v", got)
	}
	if !equalU64(got[0].keys, []uint64{1, 2, 3, 4}) || !equalU64(got[0].values, []uint64{0, 22, 0, 44}) {
		t.Fatalf("mixed record replayed as %+v", got[0])
	}
}

// TestSegmentNames pins the name scheme replay ordering depends on.
func TestSegmentNames(t *testing.T) {
	for _, lsn := range []uint64{1, 255, 1 << 40} {
		name := segName(lsn)
		got, ok := parseSegName(name)
		if !ok || got != lsn {
			t.Fatalf("parseSegName(%q) = %d, %v", name, got, ok)
		}
	}
	if _, ok := parseSegName("snap-0000000000000001.snap"); ok {
		t.Fatal("parseSegName accepted a snapshot name")
	}
	if fmt.Sprintf("wal-%016x.log", uint64(16)) <= fmt.Sprintf("wal-%016x.log", uint64(9)) {
		t.Fatal("hex segment names must sort in LSN order")
	}
}

package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"vmshortcut/internal/op"
)

// buildChainedLog writes a small multi-segment chained log and returns
// its dir. Mixed record codes exercise every code path of the digest.
func buildChainedLog(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: FsyncOff, SegmentBytes: 160, Chained: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 6; i++ {
		if _, err := l.AppendPut([]uint64{i, i + 100}, []uint64{i * 3, i * 7}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.AppendDelete([]uint64{101, 102}); err != nil {
		t.Fatal(err)
	}
	var b op.Batch
	b.Get(1)
	b.Put(9, 99)
	b.Del(2)
	code, payload := b.Payload()
	if _, err := l.AppendBatch(code, payload); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestChainExtendRejectsGaps(t *testing.T) {
	c := NewChain(5)
	if _, err := c.Extend(7, OpPut, []byte{0, 0, 0, 0}); err == nil {
		t.Fatal("extending 5 with record 7 must fail")
	}
	if _, err := c.Extend(5, OpPut, []byte{0, 0, 0, 0}); err == nil {
		t.Fatal("re-extending with the anchor must fail")
	}
	if _, err := c.Extend(6, OpPut, []byte{0, 0, 0, 0}); err != nil {
		t.Fatalf("extending 5 with record 6: %v", err)
	}
}

func TestChainAnchorsDiffer(t *testing.T) {
	a, b := NewChain(0), NewChain(1)
	sa, _ := a.Extend(1, OpPut, []byte{1, 0, 0, 0})
	sb, _ := b.Extend(2, OpPut, []byte{1, 0, 0, 0})
	if sa == sb {
		t.Fatal("chains with different anchors agreed on the same payload")
	}
}

// TestChainHeadMatchesVerify pins that the live chain (built record by
// record through the append path), the replay-rebuilt chain (a reopen),
// and the offline auditor all converge on one digest.
func TestChainHeadMatchesVerify(t *testing.T) {
	dir := buildChainedLog(t)
	anchor, last, head, err := VerifyChain(dir)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if anchor != 0 || last != 8 {
		t.Fatalf("verify anchor %d last %d, want 0 and 8", anchor, last)
	}
	l, err := Open(dir, Options{Mode: FsyncOff, Chained: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	la, ll, lh, ok := l.ChainHead()
	if !ok {
		t.Fatal("chained log reports no chain head")
	}
	if la != anchor || ll != last || lh != head {
		t.Fatalf("reopened head (%d,%d,%x) differs from audit (%d,%d,%x)", la, ll, lh, anchor, last, head)
	}
	if _, _, _, ok := mustOpenPlain(t, dir).ChainHead(); ok {
		t.Fatal("unchained log must report no chain head")
	}
}

func mustOpenPlain(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir, Options{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestVerifyChainTamperTable flips every single byte of every segment in
// turn: each flip must be detected, either structurally (ErrCorrupt — the
// CRC or framing catches it) or by the head digest changing. This is the
// acceptance property: one flipped byte anywhere in the shipped prefix
// cannot go unnoticed.
func TestVerifyChainTamperTable(t *testing.T) {
	dir := buildChainedLog(t)
	_, _, head0, err := VerifyChain(dir)
	if err != nil {
		t.Fatalf("baseline verify: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("test wants a multi-segment log, got %d segments", len(segs))
	}
	for _, seg := range segs {
		blob, err := os.ReadFile(seg.path)
		if err != nil {
			t.Fatal(err)
		}
		for off := range blob {
			tampered := append([]byte(nil), blob...)
			tampered[off] ^= 0x40
			if err := os.WriteFile(seg.path, tampered, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, head, verr := VerifyChain(dir)
			if verr == nil && head == head0 {
				t.Fatalf("flip at %s offset %d went undetected", filepath.Base(seg.path), off)
			}
		}
		if err := os.WriteFile(seg.path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVerifyChainCRCFixedTamper is the attack the CRC alone cannot catch:
// flip a payload byte and recompute the record's CRC so the log is
// structurally pristine. Only the chain digest exposes it.
func TestVerifyChainCRCFixedTamper(t *testing.T) {
	dir := buildChainedLog(t)
	_, _, head0, err := VerifyChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// First record: u32 len | u32 crc | payload. Flip a batch byte (past
	// the lsn+code prefix, so framing and contiguity stay intact) and
	// re-seal the CRC.
	payloadLen := int(binary.LittleEndian.Uint32(blob))
	payload := blob[recordHeaderSize : recordHeaderSize+payloadLen]
	payload[payloadPrefixSize+4] ^= 0x01 // a key byte in the batch
	binary.LittleEndian.PutUint32(blob[4:], crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(segs[0].path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, head, err := VerifyChain(dir)
	if err != nil {
		t.Fatalf("CRC-fixed tamper must verify structurally, got %v", err)
	}
	if head == head0 {
		t.Fatal("CRC-fixed tamper did not change the chain head")
	}
}

// TestVerifyChainRejectsTornTail pins the strictness gap between the
// auditor and recovery: Open repairs a torn final record, VerifyChain
// reports it.
func TestVerifyChainRejectsTornTail(t *testing.T) {
	dir := buildChainedLog(t)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1].path
	blob, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, blob[:len(blob)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := VerifyChain(dir); err == nil {
		t.Fatal("auditor accepted a torn tail")
	}
}

// TestChainReanchorsAfterCompact: compaction discards the chain's prefix;
// a reopen re-anchors at the new oldest record and the auditor agrees.
func TestChainReanchorsAfterCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: FsyncOff, SegmentBytes: 128, Chained: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if _, err := l.AppendPut([]uint64{i}, []uint64{i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Compact(15); err != nil {
		t.Fatal(err)
	}
	oldest := l.OldestLSN()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	anchor, last, head, err := VerifyChain(dir)
	if err != nil {
		t.Fatalf("verify after compact: %v", err)
	}
	if anchor != oldest-1 || last != 20 {
		t.Fatalf("verify anchor %d last %d, want %d and 20", anchor, last, oldest-1)
	}
	l2, err := Open(dir, Options{Mode: FsyncOff, Chained: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	a2, l2last, h2, ok := l2.ChainHead()
	if !ok || a2 != anchor || l2last != last || h2 != head {
		t.Fatalf("reopened head (%d,%d,%x) differs from audit (%d,%d,%x)", a2, l2last, h2, anchor, last, head)
	}
}

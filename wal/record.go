// Record codec. A record is one durable unit of the log — a whole PUT or
// DEL batch — framed so that replay can both detect corruption and
// recognize a torn tail:
//
//	u32 payloadLen   length of everything after the crc field
//	u32 crc          IEEE CRC32 of the payload
//	payload:
//	  u64 lsn        the record's log sequence number (strictly increasing)
//	  u8  op         OpPut or OpDel
//	  u32 n          element count
//	  n × u64 key            (OpDel)
//	  n × (u64 key, u64 val) (OpPut)
//
// All integers are little-endian. The payload past the lsn is laid out
// exactly like the body of an internal/wire OpPutBatch / OpDelBatch frame
// (same op byte values, same count prefix, same element packing), so the
// server's coalesced batches translate into log records without
// re-encoding concepts — the log is the wire protocol's batch frames,
// made durable.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record opcodes. The values deliberately equal wire.OpPutBatch and
// wire.OpDelBatch (asserted by a test in the root package; wal cannot
// import internal/wire without a cycle).
const (
	OpPut byte = 0x06
	OpDel byte = 0x07
)

// MaxRecordPairs caps the elements one record may carry. Append splits
// larger batches across several records (still covered by one fsync), so
// the cap bounds replay buffers without bounding caller batches.
const MaxRecordPairs = 1 << 16

// recordHeaderSize is the fixed prefix: u32 payloadLen + u32 crc.
const recordHeaderSize = 8

// payloadHeaderSize is the fixed payload prefix: u64 lsn + u8 op + u32 n.
const payloadHeaderSize = 13

// maxPayload is the largest valid payload: a full PUT record.
const maxPayload = payloadHeaderSize + MaxRecordPairs*16

// ErrCorrupt reports a record that is structurally invalid in a position
// where a torn write cannot explain it (CRC mismatch or malformed payload
// in a non-final segment, or an inconsistent element count anywhere).
var ErrCorrupt = errors.New("wal: corrupt record")

// appendRecord appends one framed record to dst. For OpDel, values must be
// nil; for OpPut, len(values) must equal len(keys).
func appendRecord(dst []byte, lsn uint64, op byte, keys, values []uint64) []byte {
	elem := 8
	if op == OpPut {
		elem = 16
	}
	payloadLen := payloadHeaderSize + elem*len(keys)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	payloadAt := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = append(dst, op)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for i, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
		if op == OpPut {
			dst = binary.LittleEndian.AppendUint64(dst, values[i])
		}
	}
	crc := crc32.ChecksumIEEE(dst[payloadAt:])
	binary.LittleEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

// decodePayload decodes a record payload whose CRC already matched. It
// returns the lsn, opcode, and the decoded keys (and, for OpPut, values).
// The returned slices alias nothing — they are fresh allocations safe to
// retain.
func decodePayload(p []byte) (lsn uint64, op byte, keys, values []uint64, err error) {
	if len(p) < payloadHeaderSize {
		return 0, 0, nil, nil, fmt.Errorf("%w: payload %d bytes, need at least %d",
			ErrCorrupt, len(p), payloadHeaderSize)
	}
	lsn = binary.LittleEndian.Uint64(p)
	op = p[8]
	n := int(binary.LittleEndian.Uint32(p[9:]))
	if n > MaxRecordPairs {
		return 0, 0, nil, nil, fmt.Errorf("%w: %d elements exceeds max %d", ErrCorrupt, n, MaxRecordPairs)
	}
	elem := 8
	switch op {
	case OpPut:
		elem = 16
	case OpDel:
	default:
		return 0, 0, nil, nil, fmt.Errorf("%w: unknown opcode 0x%02x", ErrCorrupt, op)
	}
	if len(p) != payloadHeaderSize+n*elem {
		return 0, 0, nil, nil, fmt.Errorf("%w: payload %d bytes, want %d for %d elements",
			ErrCorrupt, len(p), payloadHeaderSize+n*elem, n)
	}
	body := p[payloadHeaderSize:]
	keys = make([]uint64, n)
	if op == OpPut {
		values = make([]uint64, n)
		for i := 0; i < n; i++ {
			keys[i] = binary.LittleEndian.Uint64(body[16*i:])
			values[i] = binary.LittleEndian.Uint64(body[16*i+8:])
		}
	} else {
		for i := 0; i < n; i++ {
			keys[i] = binary.LittleEndian.Uint64(body[8*i:])
		}
	}
	return lsn, op, keys, values, nil
}

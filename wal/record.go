// Record codec. A record is one durable unit of the log — one whole
// operation batch — framed so that replay can both detect corruption and
// recognize a torn tail:
//
//	u32 payloadLen   length of everything after the crc field
//	u32 crc          IEEE CRC32 of the payload
//	payload:
//	  u64 lsn        the record's log sequence number (strictly increasing)
//	  u8  op         the batch code: OpPut, OpDel, or OpMixed
//	  ...            the batch's payload, in the internal/op layout
//
// All integers are little-endian. The payload past the lsn is NOT a
// private format: the op byte and the bytes after it are exactly an
// internal/op batch payload — the same constants and the same codec the
// wire protocol's batch frames use (OpPut is op.CodePutBatch is
// wire.OpPutBatch, and so on). A batch frame received from the socket
// therefore becomes a log record by prefixing lsn and code; nothing is
// re-encoded between the read syscall and the fsync. OpMixed records
// (an ordered GET/PUT/DEL mix) may contain GET entries when the wire
// payload did; replay applies the mutations and treats the GETs as
// no-ops.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"vmshortcut/internal/op"
)

// Record opcodes: the internal/op batch codes, shared — by construction,
// not convention — with the wire protocol's batch frame opcodes.
const (
	OpPut   = op.CodePutBatch
	OpDel   = op.CodeDelBatch
	OpMixed = op.CodeMixedBatch
)

// MaxRecordPairs caps the elements one record may carry. AppendPut and
// AppendDelete split larger batches across several records (still
// covered by one fsync), so the cap bounds replay buffers without
// bounding caller batches. It equals op.MaxElems, so any batch the wire
// layer accepts fits one record.
const MaxRecordPairs = op.MaxElems

// recordHeaderSize is the fixed prefix: u32 payloadLen + u32 crc.
const recordHeaderSize = 8

// payloadPrefixSize is the fixed payload prefix: u64 lsn + u8 op. The
// batch payload that follows carries at least its own u32 count.
const payloadPrefixSize = 9

// minPayload is the smallest valid record payload: prefix + empty batch.
const minPayload = payloadPrefixSize + 4

// maxPayload is the largest valid payload: a full mixed record whose
// entries are all PUTs (1 kind byte + 16 pair bytes each).
const maxPayload = payloadPrefixSize + 4 + MaxRecordPairs*17

// ErrCorrupt reports a record that is structurally invalid in a position
// where a torn write cannot explain it (CRC mismatch or malformed payload
// in a non-final segment, or an inconsistent element count anywhere).
var ErrCorrupt = errors.New("wal: corrupt record")

// appendRecord appends one framed record carrying an already-encoded
// batch payload. The append hot path streams the identical layout via
// writeRecordLocked; this helper exists for tests and fuzzers that build
// records in memory.
func appendRecord(dst []byte, lsn uint64, code byte, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadPrefixSize+len(payload)))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	payloadAt := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = append(dst, code)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[payloadAt:])
	binary.LittleEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

// decodeRecordPayload decodes a record payload whose CRC already matched
// into b (replacing its contents; b is safe to reuse across records).
// Every structural failure wraps ErrCorrupt — the caller decides whether
// the position makes it a torn tail instead.
func decodeRecordPayload(p []byte, b *op.Batch) (lsn uint64, code byte, err error) {
	if len(p) < minPayload {
		return 0, 0, fmt.Errorf("%w: payload %d bytes, need at least %d", ErrCorrupt, len(p), minPayload)
	}
	lsn = binary.LittleEndian.Uint64(p)
	code = p[8]
	switch code {
	case OpPut, OpDel, OpMixed:
	default:
		return 0, 0, fmt.Errorf("%w: unknown opcode 0x%02x", ErrCorrupt, code)
	}
	if err := op.DecodePayload(code, p[payloadPrefixSize:], b); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return lsn, code, nil
}

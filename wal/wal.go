// Package wal is the durability subsystem's write-ahead log: an
// append-only, CRC32-checked, length-prefixed record log over rotating
// segment files. Each record carries a whole PUT or DEL batch, so the
// store's batch-oriented hot path — the server's coalescer, the sharded
// fan-out — costs one log append (and, with FsyncAlways, one shared
// fsync) per batch, not per operation.
//
// # Durability policies
//
// FsyncAlways syncs before Append returns, with group commit: one
// appender at a time leads a sync — flushing everything appended so far
// and fsyncing outside the log lock, so appends continue during the
// fsync — while concurrent appenders wait on the published durable
// position and piggyback on that one fsync instead of issuing their own.
// FsyncInterval
// syncs on a background ticker (bounded data loss, no sync on the append
// path). FsyncOff leaves syncing to the OS (rotation and Close still
// sync).
//
// # Segments and recovery
//
// The log is a directory of segment files named wal-<first-lsn>.log. Open
// scans them in order, replays every intact record through the caller's
// callback, and truncates a torn final record — a crash mid-write leaves
// at most one, always at the tail of the last segment. Corruption
// anywhere else (a CRC mismatch in the middle of the log) is not a torn
// write and fails Open with ErrCorrupt rather than silently dropping
// acknowledged records. Compact removes whole segments that a snapshot
// has made redundant.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut/internal/obs"
	"vmshortcut/internal/op"
)

// FsyncMode selects when appended records reach stable storage.
type FsyncMode int

const (
	// FsyncAlways syncs before Append returns (group-committed): an
	// acknowledged append survives any crash.
	FsyncAlways FsyncMode = iota
	// FsyncInterval syncs on a background ticker: a crash loses at most
	// the last interval's appends.
	FsyncInterval
	// FsyncOff never syncs explicitly (except on rotation and Close): a
	// crash loses whatever the OS had not written back.
	FsyncOff
)

var fsyncNames = [...]string{"always", "interval", "off"}

// String returns the mode's flag-style name.
func (m FsyncMode) String() string {
	if m < 0 || int(m) >= len(fsyncNames) {
		return fmt.Sprintf("FsyncMode(%d)", int(m))
	}
	return fsyncNames[m]
}

// ParseFsyncMode maps a flag-style name onto its FsyncMode.
func ParseFsyncMode(name string) (FsyncMode, error) {
	for i, n := range fsyncNames {
		if n == name {
			return FsyncMode(i), nil
		}
	}
	return 0, fmt.Errorf("wal: unknown fsync mode %q (want always, interval, or off)", name)
}

// Options tunes a Log. The zero value selects FsyncAlways, 64 MiB
// segments, and a 100 ms sync interval (used only by FsyncInterval).
type Options struct {
	// Mode is the fsync policy. Default FsyncAlways.
	Mode FsyncMode
	// Interval is the background sync period for FsyncInterval. Default
	// 100 ms.
	Interval time.Duration
	// SegmentBytes rotates the active segment when it would exceed this
	// size. Default 64 MiB.
	SegmentBytes int64
	// Chained maintains a running tamper-evidence digest (see Chain) over
	// the record sequence: Open recomputes it across the replayed records
	// and every append extends it. ChainHead exposes the current head for
	// publication; VerifyChain audits the segment files against it.
	Chained bool
	// FsyncHist, when set, records the duration of every fsync syscall
	// the log issues (group-commit leader syncs and rotation seals) in
	// nanoseconds. Nil disables recording at zero cost.
	FsyncHist *obs.Hist
}

func (o *Options) fill() {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// ReplayFunc receives one decoded record during Open as an operation
// batch — the same representation every other layer passes around. The
// batch is reused between calls: the callback must apply or copy it
// before returning. Returning an error aborts Open.
type ReplayFunc func(lsn uint64, b *op.Batch) error

// segment is one log file and what Open or appends learned about it.
type segment struct {
	path     string
	firstLSN uint64
	size     int64
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// LastLSN is the sequence number of the newest appended record (0
	// when the log is empty).
	LastLSN uint64
	// SyncedLSN is the highest LSN known to be on stable storage.
	SyncedLSN uint64
	// Syncs counts fsync calls issued since Open.
	Syncs uint64
	// Segments is the number of live segment files.
	Segments int
	// Bytes is the total size of all live segments.
	Bytes int64
}

// Log is an append-only record log. All methods are safe for concurrent
// use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // active segment
	bw      *bufio.Writer
	segs    []segment // in LSN order; the last one is active
	lastLSN uint64    // newest appended record
	pbuf    []byte    // payload scratch for the keys/values append path
	err     error     // sticky I/O error; the log is dead once set
	closed  bool

	// Chained-hash state (Options.Chained), under mu. The chain tracks
	// lastLSN exactly: every appended record extends it.
	chain       Chain
	chainAnchor uint64

	// Tail-subscription wakeup (see tail.go). Appenders close-and-replace
	// wakeC after publishing a new lastLSN; the counter lets the
	// no-subscriber hot path skip the channel churn.
	tailers atomic.Int32
	wakeMu  sync.Mutex
	wakeC   chan struct{}

	// Group-commit state. One appender at a time is the sync leader: it
	// flushes under mu, then fsyncs OUTSIDE all locks — so other
	// appenders keep appending during the fsync — and publishes the
	// durable position. Followers wait on the condition variable; every
	// record appended before the leader's flush is covered by the
	// leader's one fsync.
	syncMu  sync.Mutex
	syncC   *sync.Cond
	syncing bool   // a leader's fsync is in flight
	synced  uint64 // newest record known durable
	syncErr error  // sticky: a sync failed; waiters must not report durable
	syncs   uint64

	stopOnce sync.Once
	stopc    chan struct{}
	done     chan struct{} // closed when the interval syncer exits
}

// segName formats the segment filename for its first LSN.
func segName(firstLSN uint64) string { return fmt.Sprintf("wal-%016x.log", firstLSN) }

// parseSegName extracts the first LSN from a segment filename.
func parseSegName(name string) (uint64, bool) {
	var lsn uint64
	if _, err := fmt.Sscanf(name, "wal-%016x.log", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// listSegments returns dir's segment files in LSN order. Shared by Open
// and the offline auditor (VerifyChain), which must agree on what the
// log's on-disk contents are.
func listSegments(dir string) ([]segment, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range names {
		if lsn, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segment{path: filepath.Join(dir, e.Name()), firstLSN: lsn})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// SyncDir fsyncs a directory so entry creation, removal, and renames
// inside it survive a crash. The log uses it around segment lifecycle;
// the snapshot layer shares it for publishing snapshot renames.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Open opens (creating if necessary) the log in dir, replays every intact
// record through replay (which may be nil), truncates a torn record at the
// tail of the last segment, and positions the log for appending. The
// caller filters replayed records by LSN when a snapshot already covers a
// prefix.
func Open(dir string, opts Options, replay ReplayFunc) (*Log, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}

	l := &Log{dir: dir, opts: opts, stopc: make(chan struct{}), done: make(chan struct{}), wakeC: make(chan struct{})}
	l.syncC = sync.NewCond(&l.syncMu)
	if opts.Chained {
		// Anchor the chain just below the oldest record on disk; replay
		// extends it record by record.
		if len(segs) > 0 {
			l.chainAnchor = segs[0].firstLSN - 1
		}
		l.chain = NewChain(l.chainAnchor)
	}
	for i := range segs {
		// LSNs must run contiguously across segment boundaries: rotation
		// names the next segment lastLSN+1, so a gap means a whole
		// segment of acknowledged records is missing (lost file, bad
		// restore) — refuse rather than silently serve a hole. The first
		// remaining segment is exempt: compaction legitimately removes
		// the prefix.
		if i > 0 && segs[i].firstLSN != l.lastLSN+1 {
			return nil, fmt.Errorf("%w: segment %s starts at LSN %d but the previous segment ends at %d",
				ErrCorrupt, filepath.Base(segs[i].path), segs[i].firstLSN, l.lastLSN)
		}
		final := i == len(segs)-1
		size, last, err := l.replaySegment(&segs[i], final, replay)
		if err != nil {
			return nil, err
		}
		segs[i].size = size
		if last > l.lastLSN {
			l.lastLSN = last
		}
		// A segment's name alone proves records < firstLSN once existed,
		// even when the segment replays empty (a crash between rotation
		// and the first flushed record, with the predecessors already
		// compacted). Without this floor the LSN counter would restart
		// below positions a snapshot may cover, and the reused LSNs
		// would be skipped — or truncated as torn — on the next
		// recovery.
		if segs[i].firstLSN > 0 && segs[i].firstLSN-1 > l.lastLSN {
			l.lastLSN = segs[i].firstLSN - 1
		}
	}
	l.segs = segs
	l.synced = l.lastLSN // everything replayed is on disk by definition
	if opts.Chained && l.chain.LSN() != l.lastLSN {
		// A named-but-empty segment bumped lastLSN past the last replayed
		// record: the chain cannot span records that no longer exist, so
		// it re-anchors at the log's position.
		l.chainAnchor = l.lastLSN
		l.chain = NewChain(l.lastLSN)
	}

	if len(l.segs) == 0 {
		if err := l.openSegmentLocked(l.lastLSN + 1); err != nil {
			return nil, err
		}
	} else {
		active := &l.segs[len(l.segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: opening active segment: %w", err)
		}
		l.f = f
		l.bw = bufio.NewWriterSize(f, 64<<10)
	}

	if opts.Mode == FsyncInterval {
		go l.intervalSyncer()
	} else {
		close(l.done)
	}
	return l, nil
}

// replaySegment scans one segment, feeding intact records to replay. It
// returns the validated size (the segment is truncated to it when a torn
// record was found at the tail of the final segment) and the last LSN
// seen. Corruption in a non-final position fails with ErrCorrupt.
func (l *Log) replaySegment(seg *segment, final bool, replay ReplayFunc) (int64, uint64, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: opening %s: %w", seg.path, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var (
		offset  int64
		lastLSN uint64
		hdr     [recordHeaderSize]byte
		payload []byte
		batch   op.Batch // reused across records; ReplayFunc must not retain it
	)
	expect := seg.firstLSN
	for {
		n, err := io.ReadFull(br, hdr[:])
		if err == io.EOF && n == 0 {
			return offset, lastLSN, nil // clean end of segment
		}
		torn := func(reason string) (int64, uint64, error) {
			if !final {
				return 0, 0, fmt.Errorf("%w: %s in non-final segment %s at offset %d",
					ErrCorrupt, reason, filepath.Base(seg.path), offset)
			}
			// Torn tail: drop the partial record, keep everything before it.
			if err := os.Truncate(seg.path, offset); err != nil {
				return 0, 0, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
			}
			return offset, lastLSN, nil
		}
		if err != nil {
			return torn("partial record header")
		}
		payloadLen := int(binary.LittleEndian.Uint32(hdr[:4]))
		if payloadLen < minPayload || payloadLen > maxPayload {
			return torn(fmt.Sprintf("payload length %d out of range", payloadLen))
		}
		if cap(payload) < payloadLen {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return torn("partial record payload")
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
			return torn("CRC mismatch")
		}
		lsn, code, err := decodeRecordPayload(payload, &batch)
		if err != nil {
			return torn(err.Error())
		}
		if lsn != expect {
			return torn(fmt.Sprintf("LSN %d, expected %d", lsn, expect))
		}
		if l.opts.Chained {
			if _, err := l.chain.Extend(lsn, code, payload[payloadPrefixSize:]); err != nil {
				return 0, 0, err
			}
		}
		if replay != nil {
			if err := replay(lsn, &batch); err != nil {
				return 0, 0, fmt.Errorf("wal: replaying record %d: %w", lsn, err)
			}
		}
		offset += int64(recordHeaderSize + payloadLen)
		lastLSN = lsn
		expect = lsn + 1
	}
}

// openSegmentLocked creates a fresh segment whose first record will be
// firstLSN and makes it the active one. Caller holds mu (or is Open).
func (l *Log) openSegmentLocked(firstLSN uint64) error {
	path := filepath.Join(l.dir, segName(firstLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if err := SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing dir after segment create: %w", err)
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 64<<10)
	l.segs = append(l.segs, segment{path: path, firstLSN: firstLSN})
	return nil
}

// rotateLocked seals the active segment (flush, fsync, close) and opens a
// new one. Everything appended so far becomes durable, so the synced
// position advances to lastLSN — waking any group-commit followers whose
// records the rotation just covered. Caller holds mu.
func (l *Log) rotateLocked() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	syncStart := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.opts.FsyncHist.RecordSince(syncStart)
	if err := l.f.Close(); err != nil {
		return err
	}
	l.syncMu.Lock()
	l.syncs++
	if l.lastLSN > l.synced {
		l.synced = l.lastLSN
	}
	l.syncC.Broadcast()
	l.syncMu.Unlock()
	return l.openSegmentLocked(l.lastLSN + 1)
}

// AppendPut appends one PUT batch — len(values) must equal len(keys) —
// and returns the LSN of its (last) record. With FsyncAlways the record
// is on stable storage when AppendPut returns.
func (l *Log) AppendPut(keys, values []uint64) (uint64, error) {
	if len(keys) != len(values) {
		return 0, fmt.Errorf("wal: AppendPut: %d keys, %d values", len(keys), len(values))
	}
	return l.append(OpPut, keys, values)
}

// AppendDelete appends one DEL batch and returns the LSN of its (last)
// record, with the same durability contract as AppendPut.
func (l *Log) AppendDelete(keys []uint64) (uint64, error) {
	return l.append(OpDel, keys, nil)
}

// AppendBatch appends one record whose payload is an already-encoded
// batch payload in the internal/op layout, under its batch code (OpPut,
// OpDel, or OpMixed — a mixed payload may contain GET entries, which
// replay ignores). This is the serving stack's zero-copy path: the bytes
// a batch frame arrived with are the bytes the log writes, with only the
// (lsn, code) prefix added — no re-encoding between the socket and the
// fsync. The payload must be structurally valid for its code (the wire
// layer's decode, or op.Batch.Payload, guarantees that); its element
// count must be at most MaxRecordPairs. The configured sync policy
// applies exactly as for AppendPut.
func (l *Log) AppendBatch(code byte, payload []byte) (uint64, error) {
	switch code {
	case OpPut, OpDel, OpMixed:
	default:
		return 0, fmt.Errorf("wal: AppendBatch: invalid batch code 0x%02x", code)
	}
	if len(payload) < 4 {
		return 0, fmt.Errorf("wal: AppendBatch: payload %d bytes, need at least 4", len(payload))
	}
	if n := binary.LittleEndian.Uint32(payload); n > MaxRecordPairs {
		return 0, fmt.Errorf("wal: AppendBatch: %d elements exceeds max %d", n, MaxRecordPairs)
	}
	l.mu.Lock()
	if err := l.appendableLocked(); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	lsn := l.lastLSN + 1
	if err := l.writeRecordLocked(lsn, code, payload); err != nil {
		l.err = err
		l.mu.Unlock()
		return 0, err
	}
	l.lastLSN = lsn
	if l.opts.Chained {
		l.chain.Extend(lsn, code, payload) // cannot gap: lsn tracks the chain position
	}
	l.mu.Unlock()
	l.wakeTailers()
	return lsn, l.maybeSync(lsn)
}

// append writes the batch as one record (several when it exceeds
// MaxRecordPairs — still covered by a single fsync) and applies the
// configured sync policy. This is the keys/values convenience path; the
// payload is encoded through the same op codec AppendBatch's callers
// used, into a scratch buffer the log reuses.
func (l *Log) append(code byte, keys, values []uint64) (uint64, error) {
	l.mu.Lock()
	if err := l.appendableLocked(); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	var lsn uint64
	for len(keys) > 0 {
		n := len(keys)
		if n > MaxRecordPairs {
			n = MaxRecordPairs
		}
		if code == OpPut {
			l.pbuf = op.AppendPairsPayload(l.pbuf[:0], keys[:n], values[:n])
			values = values[n:]
		} else {
			l.pbuf = op.AppendKeysPayload(l.pbuf[:0], keys[:n])
		}
		keys = keys[n:]
		lsn = l.lastLSN + 1
		if err := l.writeRecordLocked(lsn, code, l.pbuf); err != nil {
			l.err = err
			l.mu.Unlock()
			return 0, err
		}
		l.lastLSN = lsn
		if l.opts.Chained {
			l.chain.Extend(lsn, code, l.pbuf)
		}
	}
	l.mu.Unlock()
	l.wakeTailers()
	return lsn, l.maybeSync(lsn)
}

// appendableLocked reports whether the log can accept an append: not
// closed, no sticky write error, and no sticky sync error. Fail-stop
// applies to sync failures too: under FsyncInterval/FsyncOff nothing on
// the append path would otherwise ever consult syncErr, and the log
// would keep acknowledging writes forever on a disk that stopped syncing
// — unbounded loss instead of the documented one-interval window.
func (l *Log) appendableLocked() error {
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	l.syncMu.Lock()
	serr := l.syncErr
	l.syncMu.Unlock()
	return serr
}

// writeRecordLocked streams one record — header, CRC, lsn, code, then
// the payload bytes as given — into the active segment, rotating first
// when it would overflow. The payload is written directly (one copy into
// the segment writer's buffer, no intermediate record buffer). Caller
// holds mu.
func (l *Log) writeRecordLocked(lsn uint64, code byte, payload []byte) error {
	// pre is everything before the payload: u32 len | u32 crc | u64 lsn |
	// u8 code. The CRC covers lsn, code, and payload ("everything after
	// the crc field"), computed incrementally so the payload is not
	// copied to be summed.
	var pre [recordHeaderSize + payloadPrefixSize]byte
	payloadLen := payloadPrefixSize + len(payload)
	binary.LittleEndian.PutUint32(pre[0:], uint32(payloadLen))
	binary.LittleEndian.PutUint64(pre[8:], lsn)
	pre[16] = code
	crc := crc32.ChecksumIEEE(pre[8:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(pre[4:], crc)

	recLen := int64(recordHeaderSize + payloadLen)
	active := &l.segs[len(l.segs)-1]
	if active.size > 0 && active.size+recLen > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
		active = &l.segs[len(l.segs)-1]
	}
	if _, err := l.bw.Write(pre[:]); err != nil {
		return err
	}
	if _, err := l.bw.Write(payload); err != nil {
		return err
	}
	active.size += recLen
	return nil
}

// maybeSync applies the configured sync policy after an append: under
// FsyncAlways it blocks until a group-commit leader's fsync covers lsn —
// joining an in-flight cohort instead of issuing its own fsync whenever
// one is already pending.
func (l *Log) maybeSync(lsn uint64) error {
	if l.opts.Mode != FsyncAlways {
		return nil
	}
	return l.syncTo(lsn)
}

// syncTo blocks until every record up to target is on stable storage.
// Exactly one caller at a time acts as the sync leader: it flushes the
// buffered writer under mu (covering everything appended so far, not just
// its own record), fsyncs outside all locks so appends continue
// meanwhile, and publishes the new durable position; the other callers
// wait on the condition variable and piggyback on that one fsync.
func (l *Log) syncTo(target uint64) error {
	l.syncMu.Lock()
	for {
		if l.synced >= target {
			l.syncMu.Unlock()
			return nil
		}
		if l.syncErr != nil {
			err := l.syncErr
			l.syncMu.Unlock()
			return err
		}
		if l.syncing {
			l.syncC.Wait()
			continue
		}
		l.syncing = true
		l.syncMu.Unlock()

		l.mu.Lock()
		ferr := l.err
		var f *os.File
		var cur uint64
		if ferr == nil {
			if ferr = l.bw.Flush(); ferr != nil {
				l.err = ferr
			} else {
				cur = l.lastLSN
				f = l.f
			}
		}
		l.mu.Unlock()
		var serr error
		if ferr == nil {
			syncStart := time.Now()
			serr = f.Sync()
			l.opts.FsyncHist.RecordSince(syncStart)
		}

		l.syncMu.Lock()
		l.syncing = false
		switch {
		case ferr != nil:
			l.syncErr = ferr
		case serr == nil:
			l.syncs++
			if cur > l.synced {
				l.synced = cur
			}
		case l.synced >= cur:
			// A rotation raced the leader: it flushed, fsynced, and
			// closed the captured file, so the Sync failure is benign —
			// everything up to cur reached disk through the rotation's
			// own fsync (a genuine I/O failure there would have left
			// synced behind and the sticky l.err set).
		default:
			l.syncErr = serr
		}
		l.syncC.Broadcast()
		// Loop: re-check target against the published position.
	}
}

// Sync forces everything appended so far onto stable storage, regardless
// of the configured policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	target := l.lastLSN
	l.mu.Unlock()
	if target == 0 {
		return nil
	}
	return l.syncTo(target)
}

// intervalSyncer is the FsyncInterval background goroutine. It exits —
// and signals done — when Close stops it.
func (l *Log) intervalSyncer() {
	defer close(l.done)
	ticker := time.NewTicker(l.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stopc:
			return
		case <-ticker.C:
			l.Sync() // sticky l.err / syncErr preserve any failure
		}
	}
}

// LastLSN returns the newest appended record's sequence number.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// ChainHead returns the live tamper-evidence chain: its anchor (the
// position just below the oldest record it covers), the newest record it
// covers (always the log's last LSN), and the head digest. ok is false
// when the log was opened without Options.Chained.
func (l *Log) ChainHead() (anchor, lsn uint64, head [ChainHashSize]byte, ok bool) {
	if !l.opts.Chained {
		return 0, 0, head, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chainAnchor, l.chain.LSN(), l.chain.Sum(), true
}

// OldestLSN returns the lowest sequence number the log can still
// replay — the first segment's first LSN. Recovery uses it to detect a
// hole between a snapshot and the log: records after the snapshot's
// position but before OldestLSN exist nowhere.
func (l *Log) OldestLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].firstLSN
}

// Compact removes whole segments every record of which has LSN ≤ upTo —
// typically the position covered by a snapshot. The active segment is
// never removed. It returns how many segments were deleted.
func (l *Log) Compact(upTo uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	// A segment is redundant when its successor starts at or before
	// upTo+1: every record it holds is then ≤ upTo.
	for len(l.segs) > 1 && l.segs[1].firstLSN <= upTo+1 {
		if err := os.Remove(l.segs[0].path); err != nil {
			return removed, fmt.Errorf("wal: removing %s: %w", l.segs[0].path, err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		if err := SyncDir(l.dir); err != nil {
			return removed, fmt.Errorf("wal: syncing dir after compact: %w", err)
		}
	}
	return removed, nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	st := Stats{
		LastLSN:  l.lastLSN,
		Segments: len(l.segs),
	}
	for _, s := range l.segs {
		st.Bytes += s.size
	}
	l.mu.Unlock()
	l.syncMu.Lock()
	st.SyncedLSN = l.synced
	st.Syncs = l.syncs
	l.syncMu.Unlock()
	return st
}

// Close stops the background syncer (waiting for it to exit), flushes and
// fsyncs the active segment, and closes it. Close is idempotent; appends
// after Close fail with ErrClosed.
func (l *Log) Close() error {
	l.stopOnce.Do(func() { close(l.stopc) })
	<-l.done
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	target := l.lastLSN
	l.mu.Unlock()
	var firstErr error
	if target > 0 {
		firstErr = l.syncTo(target)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	cerr := l.f.Close()
	l.mu.Unlock()
	if cerr != nil && firstErr == nil {
		firstErr = cerr
	}
	return firstErr
}

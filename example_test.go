package vmshortcut_test

import (
	"fmt"
	"time"

	"vmshortcut"
)

// ExampleNewShortcutEH builds the paper's index, inserts entries, waits
// for the shortcut directory to synchronize, and looks the entries up
// through the page table.
func ExampleNewShortcutEH() {
	pool, err := vmshortcut.NewPool(vmshortcut.PoolConfig{})
	if err != nil {
		panic(err)
	}
	defer pool.Close()

	idx, err := vmshortcut.NewShortcutEH(pool, vmshortcut.ShortcutEHConfig{
		PollInterval: time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer idx.Close()

	for k := uint64(1); k <= 100_000; k++ {
		if err := idx.Insert(k, k*k); err != nil {
			panic(err)
		}
	}
	idx.WaitSync(5 * time.Second)

	v, ok := idx.Lookup(262)
	fmt.Println(v, ok, idx.UsingShortcut())
	// Output: 68644 true true
}

// ExampleNewShortcutNode shows the rewiring layer directly: a shortcut
// node aliasing pooled leaf pages so both views read the same bytes.
func ExampleNewShortcutNode() {
	pool, err := vmshortcut.NewPool(vmshortcut.PoolConfig{})
	if err != nil {
		panic(err)
	}
	defer pool.Close()

	leaves, err := pool.AllocN(2)
	if err != nil {
		panic(err)
	}
	copy(pool.Page(leaves[0]), "hello")
	copy(pool.Page(leaves[1]), "world")

	sc, err := vmshortcut.NewShortcutNode(pool, 2)
	if err != nil {
		panic(err)
	}
	defer sc.Close()
	sc.Set(0, leaves[0], true)
	sc.Set(1, leaves[1], true)

	fmt.Printf("%s %s\n", sc.Leaf(0)[:5], sc.Leaf(1)[:5])
	// Output: hello world
}

// ExampleNewRadixMap shows the sparse direct-mapped index.
func ExampleNewRadixMap() {
	pool, err := vmshortcut.NewPool(vmshortcut.PoolConfig{})
	if err != nil {
		panic(err)
	}
	defer pool.Close()

	m, err := vmshortcut.NewRadixMap(pool, vmshortcut.RadixMapConfig{Capacity: 1_000_000})
	if err != nil {
		panic(err)
	}
	defer m.Close()

	m.Set(123_456, 42)
	v, ok := m.Get(123_456)
	_, miss := m.Get(123_457)
	fmt.Println(v, ok, miss, m.Len())
	// Output: 42 true false 1
}

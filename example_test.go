package vmshortcut_test

import (
	"fmt"
	"sync"
	"time"

	"vmshortcut"
)

// ExampleOpen builds the paper's index with the single facade constructor,
// inserts entries, waits for the shortcut directory to synchronize, and
// looks the entries up through the page table. Open creates and owns the
// backing page pool; Close releases both.
func ExampleOpen() {
	idx, err := vmshortcut.Open(vmshortcut.KindShortcutEH,
		vmshortcut.WithPollInterval(time.Millisecond))
	if err != nil {
		panic(err)
	}
	defer idx.Close()

	for k := uint64(1); k <= 100_000; k++ {
		if err := idx.Insert(k, k*k); err != nil {
			panic(err)
		}
	}
	idx.WaitSync(5 * time.Second)

	v, ok := idx.Lookup(262)
	fmt.Println(v, ok, idx.Stats().UsingShortcut)
	// Output: 68644 true true
}

// ExampleOpen_batch loads and reads through the batch operations, which
// amortize per-call overhead and, for Shortcut-EH, make the shortcut
// routing decision once per batch.
func ExampleOpen_batch() {
	idx, err := vmshortcut.Open(vmshortcut.KindShortcutEH,
		vmshortcut.WithPollInterval(time.Millisecond))
	if err != nil {
		panic(err)
	}
	defer idx.Close()

	keys := make([]uint64, 10_000)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = uint64(i+1) * 10
	}
	if err := idx.InsertBatch(keys, vals); err != nil {
		panic(err)
	}
	idx.WaitSync(5 * time.Second)

	out := make([]uint64, len(keys))
	ok := idx.LookupBatch(keys, out)
	fmt.Println(idx.Len(), out[41], ok[41])
	// Output: 10000 420 true
}

// ExampleOpen_sharded hash-partitions the keyspace across four shards —
// each an independent Shortcut-EH index with its own lock stripe and page
// pool — and loads it from four concurrent writers. Single operations
// route by key hash; batches split by shard and fan out in parallel, so
// writers to different shards never contend. Stats and Len aggregate
// across shards; WaitSync and Close fan out and drain.
func ExampleOpen_sharded() {
	idx, err := vmshortcut.Open(vmshortcut.KindShortcutEH,
		vmshortcut.WithShards(4),
		vmshortcut.WithPollInterval(time.Millisecond))
	if err != nil {
		panic(err)
	}
	defer idx.Close()

	const perWriter = 25_000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := make([]uint64, perWriter)
			vals := make([]uint64, perWriter)
			for i := range keys {
				keys[i] = uint64(w*perWriter + i)
				vals[i] = keys[i] * 2
			}
			if err := idx.InsertBatch(keys, vals); err != nil {
				panic(err)
			}
		}(w)
	}
	wg.Wait()
	idx.WaitSync(5 * time.Second)

	v, ok := idx.Lookup(99_999)
	fmt.Println(idx.Len(), v, ok, idx.Stats().InSync)
	// Output: 100000 199998 true true
}

// ExampleOpen_sweep runs the same workload over every hash-index kind
// through the uniform Store surface — the facade makes the five
// competitors of the paper's evaluation interchangeable.
func ExampleOpen_sweep() {
	for _, kind := range []vmshortcut.Kind{
		vmshortcut.KindHT, vmshortcut.KindHTI, vmshortcut.KindCH,
		vmshortcut.KindEH, vmshortcut.KindShortcutEH,
	} {
		idx, err := vmshortcut.Open(kind, vmshortcut.WithCapacity(10_000),
			vmshortcut.WithPollInterval(time.Millisecond))
		if err != nil {
			panic(err)
		}
		for k := uint64(1); k <= 1000; k++ {
			if err := idx.Insert(k, k+7); err != nil {
				panic(err)
			}
		}
		idx.WaitSync(5 * time.Second)
		v, ok := idx.Lookup(999)
		fmt.Println(kind, idx.Len(), v, ok)
		idx.Close()
	}
	// Output:
	// ht 1000 1006 true
	// hti 1000 1006 true
	// ch 1000 1006 true
	// eh 1000 1006 true
	// shortcut-eh 1000 1006 true
}

// ExampleOpen_radix shows the sparse direct-mapped index; WithCapacity
// bounds its key space. The concrete map stays reachable for Range.
func ExampleOpen_radix() {
	idx, err := vmshortcut.Open(vmshortcut.KindRadix, vmshortcut.WithCapacity(1_000_000))
	if err != nil {
		panic(err)
	}
	defer idx.Close()

	idx.Insert(123_456, 42)
	v, ok := idx.Lookup(123_456)
	_, miss := idx.Lookup(123_457)

	m, _ := vmshortcut.AsRadixMap(idx)
	sum := uint64(0)
	m.Range(func(k, val uint64) bool { sum += val; return true })
	fmt.Println(v, ok, miss, idx.Len(), sum)
	// Output: 42 true false 1 42
}

// ExampleNewShortcutNode shows the rewiring layer directly: a shortcut
// node aliasing pooled leaf pages so both views read the same bytes.
func ExampleNewShortcutNode() {
	pool, err := vmshortcut.NewPool(vmshortcut.PoolConfig{})
	if err != nil {
		panic(err)
	}
	defer pool.Close()

	leaves, err := pool.AllocN(2)
	if err != nil {
		panic(err)
	}
	copy(pool.Page(leaves[0]), "hello")
	copy(pool.Page(leaves[1]), "world")

	sc, err := vmshortcut.NewShortcutNode(pool, 2)
	if err != nil {
		panic(err)
	}
	defer sc.Close()
	sc.Set(0, leaves[0], true)
	sc.Set(1, leaves[1], true)

	fmt.Printf("%s %s\n", sc.Leaf(0)[:5], sc.Leaf(1)[:5])
	// Output: hello world
}
